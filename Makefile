GO ?= go
VET := bin/desword-vet

.PHONY: all check build test vet fmt race bench bench-smoke telemetry-smoke events-smoke store-smoke saturation-smoke lint analyzers tidy fuzz-short

all: check

# check is the tier-1 gate plus static hygiene: build, tests, vet,
# formatting, and the race detector on the concurrency-heavy packages.
check: build test vet fmt race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./internal/obs ./internal/node ./internal/core ./internal/trace ./internal/wire ./internal/zkedb ./internal/zkedb/store ./internal/poc ./internal/telemetry ./internal/events ./internal/reputation

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke runs a tiny crypto-engine experiment (E10) end to end and
# asserts from the JSON metrics snapshot that the proof cache actually served
# hits — a cheap CI guard that the bench harness, the -metrics-out JSON path
# and the cache instrumentation stay wired together.
bench-smoke:
	$(GO) run ./cmd/desword-bench -exp crypto -fast -reps 2 -db 4 -metrics-out bench-smoke.json
	@hits=$$(awk -F'"value":' '/desword_proofcache_hits/ {gsub(/[^0-9].*/, "", $$2); print $$2}' bench-smoke.json); \
	rm -f bench-smoke.json; \
	if [ -z "$$hits" ] || [ "$$hits" -lt 1 ]; then \
		echo "bench-smoke: expected desword_proofcache_hits >= 1, got '$$hits'"; exit 1; \
	fi; \
	echo "bench-smoke: desword_proofcache_hits = $$hits"

# telemetry-smoke runs the fleet-telemetry pipeline end to end over real TCP
# (see TestTelemetrySmoke): traced queries against a served chain, registry
# pulls over the wire telemetry message, then asserts /debug/statusz?format=json
# carries per-peer quantiles and SLO states and that a slow-query exemplar's
# trace id resolves at /debug/traces/<id>.
telemetry-smoke:
	$(GO) test -run '^TestTelemetrySmoke$$' -count=1 -v ./internal/telemetry

# events-smoke runs the query flight recorder end to end over real TCP
# (see TestEventsSmoke): journaled queries against a served chain, then an
# offline desword-events-style scan asserting the journal's aggregates match
# the proxy's live metrics and that slow queries carry hop breakdowns.
events-smoke:
	$(GO) test -run '^TestEventsSmoke$$' -count=1 -v ./internal/events

# store-smoke runs the durable node-store lifecycle end to end (see
# TestStoreSmoke): commit a file-backed tree with small batches, update it
# incrementally, reopen it cold and verify ownership and non-ownership
# proofs against the updated commitment — the whole DESIGN.md §13 path a
# restarted participant depends on.
store-smoke:
	$(GO) test -run '^TestStoreSmoke$$' -count=1 -v ./internal/zkedb

# saturation-smoke runs a miniature E14 end to end (see TestSaturationSmoke):
# open-loop load against sharded and unsharded proxy deployments over real
# TCP, then assertions on the recorded JSON report — per-shard walk counters
# account for every completed query, and the forced-overload pass actually
# shed through the admission gate.
saturation-smoke:
	$(GO) test -run '^TestSaturationSmoke$$' -count=1 -v ./internal/bench

# lint is the correctness gate beyond tier-1: the project analyzers
# (desword-vet, see DESIGN.md §9) run through go vet's unitchecker driver
# so results cache per package, plus formatting, module tidiness, and the
# analyzer suite's own golden tests. Checkers that live outside the repo
# (govulncheck, x/tools nilness) run only when the host has them
# installed — the build image has no module proxy access, so they are
# advisory extras rather than gates.
lint: analyzers fmt tidy
	$(GO) vet -vettool=$(abspath $(VET)) ./...
	cd tools/analyzers && $(GO) vet -vettool=$(abspath $(VET)) ./...
	cd tools/analyzers && $(GO) test ./...
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi
	@if command -v nilness >/dev/null 2>&1; then \
		nilness ./...; \
	else \
		echo "lint: nilness not installed; skipping (go install golang.org/x/tools/go/analysis/passes/nilness/cmd/nilness@latest)"; \
	fi

# analyzers builds the desword-vet multichecker from its own module.
analyzers:
	cd tools/analyzers && $(GO) build -o $(abspath $(VET)) ./cmd/desword-vet

# tidy fails if go mod tidy would change either module.
tidy:
	$(GO) mod tidy -diff
	cd tools/analyzers && $(GO) mod tidy -diff

# fuzz-short exercises every wire/envelope fuzz target briefly; CI runs it
# so decoder regressions surface without waiting for a long fuzz campaign.
fuzz-short:
	$(GO) test -run='^$$' -fuzz='^FuzzProofUnmarshal$$' -fuzztime=20s ./internal/zkedb
	$(GO) test -run='^$$' -fuzz='^FuzzStoreReopen$$' -fuzztime=20s ./internal/zkedb/store
	$(GO) test -run='^$$' -fuzz='^FuzzReadMessage$$' -fuzztime=20s ./internal/wire
	$(GO) test -run='^$$' -fuzz='^FuzzEnvelopeHeaderCompat$$' -fuzztime=20s ./internal/wire
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeProof$$' -fuzztime=20s ./internal/wire
