GO ?= go

.PHONY: all check build test vet fmt race bench

all: check

# check is the tier-1 gate plus static hygiene: build, tests, vet,
# formatting, and the race detector on the concurrency-heavy packages.
check: build test vet fmt race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./internal/obs ./internal/node ./internal/core ./internal/trace ./internal/wire

bench:
	$(GO) test -bench=. -benchmem ./...
