// Package apps implements the three supply-chain applications DE-Sword's
// introduction motivates — contamination localization, counterfeit
// detection, and targeted product recall — as library functions on top of
// verifiable path queries. They are the "supply chain apps" box of the
// paper's Figure 2: each turns one or more good/bad product path queries
// into an actionable report.
//
// Applications speak to the proxy through the QueryClient interface, which
// both the in-process *core.Proxy and the TCP *node.ProxyClient satisfy, so
// the same application code runs embedded or distributed.
package apps

import (
	"context"
	"errors"
	"fmt"

	"desword/internal/core"
	"desword/internal/poc"
)

// QueryClient is the slice of proxy functionality applications consume.
// *core.Proxy and *node.ProxyClient both implement it.
type QueryClient interface {
	QueryPath(ctx context.Context, id poc.ProductID, quality core.Quality) (*core.Result, error)
}

// Errors reported by this package.
var (
	ErrNoPath = errors.New("apps: no verifiable path exists for product")
)

// ContaminationReport is the outcome of a contamination localization run.
type ContaminationReport struct {
	// Product is the contaminated product that triggered the investigation.
	Product poc.ProductID
	// Path is its verified path.
	Path []poc.ParticipantID
	// Source is the localized contamination source (the earliest verified
	// processor).
	Source poc.ParticipantID
	// Affected lists other market products whose verified paths pass
	// through the source.
	Affected []poc.ProductID
	// Violations aggregates every dishonest behaviour detected across the
	// investigation's queries.
	Violations []core.Violation
}

// LocalizeContamination runs the paper's first application: given a product
// that failed a quality check, recover its verified path (bad-product
// query), take the earliest processor as the contamination source, then
// sweep the given market products (good-product queries — they still pass
// checks) and flag every product that passed through the source.
func LocalizeContamination(ctx context.Context, client QueryClient, bad poc.ProductID, market []poc.ProductID) (*ContaminationReport, error) {
	result, err := client.QueryPath(ctx, bad, core.Bad)
	if err != nil {
		return nil, fmt.Errorf("apps: querying contaminated product: %w", err)
	}
	if len(result.Path) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoPath, bad)
	}
	report := &ContaminationReport{
		Product:    bad,
		Path:       result.Path,
		Source:     result.Path[0],
		Violations: result.Violations,
	}
	for _, id := range market {
		if id == bad {
			continue
		}
		res, err := client.QueryPath(ctx, id, core.Good)
		if err != nil {
			return nil, fmt.Errorf("apps: sweeping %s: %w", id, err)
		}
		report.Violations = append(report.Violations, res.Violations...)
		for _, v := range res.Path {
			if v == report.Source {
				report.Affected = append(report.Affected, id)
				break
			}
		}
	}
	return report, nil
}

// CounterfeitReport is the outcome of authenticating one product.
type CounterfeitReport struct {
	Product poc.ProductID
	// Genuine reports whether a complete verifiable path exists.
	Genuine bool
	// Path is the authenticated path when genuine.
	Path []poc.ParticipantID
	// Reason explains a negative verdict.
	Reason string
	// Violations lists dishonest behaviours detected while authenticating.
	Violations []core.Violation
}

// DetectCounterfeit runs the paper's second application: a product is
// genuine only if some initial participant proves ownership and the verified
// path reaches a leaf of the POC list. Products nobody can prove an origin
// for — the WHO's 10%-of-market scenario — are flagged.
func DetectCounterfeit(ctx context.Context, client QueryClient, id poc.ProductID) (*CounterfeitReport, error) {
	result, err := client.QueryPath(ctx, id, core.Good)
	if err != nil {
		return nil, fmt.Errorf("apps: authenticating %s: %w", id, err)
	}
	report := &CounterfeitReport{Product: id, Violations: result.Violations}
	switch {
	case len(result.Path) == 0:
		report.Reason = "no participant holds an ownership proof: no verifiable origin"
	case !result.Complete:
		report.Path = result.Path
		report.Reason = "path does not reach a leaf participant: chain of custody broken"
	default:
		report.Genuine = true
		report.Path = result.Path
	}
	return report, nil
}

// RecallReport is the outcome of a targeted recall.
type RecallReport struct {
	// FailurePoint is the participant whose output is being recalled.
	FailurePoint poc.ParticipantID
	// Recalled lists candidate products confirmed to have passed through
	// the failure point, with their verified paths.
	Recalled map[poc.ProductID][]poc.ParticipantID
	// Cleared lists candidates whose verified paths avoid the failure point.
	Cleared []poc.ProductID
	// Violations aggregates detections across the recall queries.
	Violations []core.Violation
}

// TargetedRecall runs the paper's third application: given a failure point
// (e.g. a participant whose cold chain broke), verify the path of every
// candidate product and split them into recalled and cleared sets.
func TargetedRecall(ctx context.Context, client QueryClient, failurePoint poc.ParticipantID, candidates []poc.ProductID) (*RecallReport, error) {
	report := &RecallReport{
		FailurePoint: failurePoint,
		Recalled:     make(map[poc.ProductID][]poc.ParticipantID),
	}
	for _, id := range candidates {
		res, err := client.QueryPath(ctx, id, core.Good)
		if err != nil {
			return nil, fmt.Errorf("apps: recall query for %s: %w", id, err)
		}
		report.Violations = append(report.Violations, res.Violations...)
		hit := false
		for _, v := range res.Path {
			if v == failurePoint {
				hit = true
				break
			}
		}
		if hit {
			report.Recalled[id] = res.Path
		} else {
			report.Cleared = append(report.Cleared, id)
		}
	}
	return report, nil
}
