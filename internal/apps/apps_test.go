package apps

import (
	"context"
	"testing"

	"desword/internal/core"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/zkedb"
)

var _appsPS *poc.PublicParams

func appsPS(t *testing.T) *poc.PublicParams {
	t.Helper()
	if _appsPS == nil {
		ps, err := poc.PSGen(zkedb.TestParams())
		if err != nil {
			t.Fatal(err)
		}
		_appsPS = ps
	}
	return _appsPS
}

type fixture struct {
	proxy   *core.Proxy
	ground  *supplychain.TaskResult
	members map[poc.ParticipantID]*core.Member
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ps := appsPS(t)
	g := supplychain.FigureOneGraph()
	members := make(map[poc.ParticipantID]*core.Member)
	for _, v := range g.Participants() {
		members[v] = core.NewMember(ps, supplychain.NewParticipant(v))
	}
	tags, err := supplychain.MintTags("app", 8)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := core.RunDistribution(ps, g, members, "v0", tags, nil,
		supplychain.RoundRobinSplitter, "apps-task")
	if err != nil {
		t.Fatal(err)
	}
	resolver := func(v poc.ParticipantID) (core.Responder, error) { return members[v], nil }
	proxy := core.NewProxy(ps, reputation.DefaultStrategy(), resolver)
	if err := proxy.RegisterList(dist.TaskID, dist.List); err != nil {
		t.Fatal(err)
	}
	return &fixture{proxy: proxy, ground: dist.Ground, members: members}
}

// The in-process proxy must satisfy the application-facing interface.
var _ QueryClient = (*core.Proxy)(nil)

func (fx *fixture) market() []poc.ProductID {
	out := make([]poc.ProductID, 0, len(fx.ground.Paths))
	for id := range fx.ground.Paths {
		out = append(out, id)
	}
	return out
}

func TestLocalizeContamination(t *testing.T) {
	fx := newFixture(t)
	var bad poc.ProductID
	for id := range fx.ground.Paths {
		bad = id
		break
	}
	report, err := LocalizeContamination(context.Background(), fx.proxy, bad, fx.market())
	if err != nil {
		t.Fatal(err)
	}
	if report.Source != fx.ground.Paths[bad][0] {
		t.Fatalf("source = %s, want %s", report.Source, fx.ground.Paths[bad][0])
	}
	// Every product flows from v0 in this task, so every other product must
	// be affected.
	if len(report.Affected) != len(fx.ground.Paths)-1 {
		t.Fatalf("affected = %v", report.Affected)
	}
	if len(report.Violations) != 0 {
		t.Fatalf("honest chain must produce no violations: %+v", report.Violations)
	}
}

func TestLocalizeContaminationUnknownProduct(t *testing.T) {
	fx := newFixture(t)
	if _, err := LocalizeContamination(context.Background(), fx.proxy, "not-a-product", nil); err == nil {
		t.Fatal("unknown product must be rejected")
	}
}

func TestDetectCounterfeit(t *testing.T) {
	fx := newFixture(t)
	var genuine poc.ProductID
	for id := range fx.ground.Paths {
		genuine = id
		break
	}
	report, err := DetectCounterfeit(context.Background(), fx.proxy, genuine)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Genuine || len(report.Path) != len(fx.ground.Paths[genuine]) {
		t.Fatalf("genuine product misclassified: %+v", report)
	}

	fake, err := DetectCounterfeit(context.Background(), fx.proxy, "knockoff-1")
	if err != nil {
		t.Fatal(err)
	}
	if fake.Genuine || fake.Reason == "" {
		t.Fatalf("counterfeit misclassified: %+v", fake)
	}
}

func TestTargetedRecall(t *testing.T) {
	fx := newFixture(t)
	// Pick a mid-chain failure point that carried some but not all products.
	counts := make(map[poc.ParticipantID]int)
	for _, path := range fx.ground.Paths {
		for _, v := range path[1:] {
			counts[v]++
		}
	}
	var failurePoint poc.ParticipantID
	for v, n := range counts {
		if n > 0 && n < len(fx.ground.Paths) {
			failurePoint = v
			break
		}
	}
	if failurePoint == "" {
		t.Skip("no partial-coverage participant in fixture")
	}
	report, err := TargetedRecall(context.Background(), fx.proxy, failurePoint, fx.market())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Recalled) != counts[failurePoint] {
		t.Fatalf("recalled %d products, ground truth says %d", len(report.Recalled), counts[failurePoint])
	}
	if len(report.Recalled)+len(report.Cleared) != len(fx.ground.Paths) {
		t.Fatal("every candidate must be either recalled or cleared")
	}
	for id, path := range report.Recalled {
		found := false
		for _, v := range path {
			if v == failurePoint {
				found = true
			}
		}
		if !found {
			t.Fatalf("recalled %s with a path avoiding the failure point: %v", id, path)
		}
	}
}
