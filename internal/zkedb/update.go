package zkedb

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"desword/internal/obs"
	"desword/internal/trace"
)

// This file implements incremental commitment: revising a committed tree
// for a batch of new (or changed) keys by recomputing only the k
// root-to-leaf paths they touch, instead of rebuilding the whole tree the
// way a fresh Commit would. In DE-Sword terms this is what a participant
// does when a new distribution task hands it k product ids: the POC it has
// already registered must advance to cover the new ids without paying for
// the millions it already committed to.
//
// Byte-identity invariant: for a seeded tree, Update(delta) produces the
// exact bytes a fresh seeded Commit over (db ∪ delta) would — the same
// commitment, the same stored node records, the same serialized
// decommitment. This holds because all commitment randomness is keyed by
// tree position, never by draw order (drbg.go): a recommitted path node
// re-derives its original stream, untouched slots keep their old messages
// verbatim, and fresh subtrees draw exactly what a from-scratch build at
// those positions would. The equivalence is pinned by
// TestUpdateMatchesFreshRebuild.
//
// Soft-entry hygiene: a position that transitions empty→occupied had a
// pinned soft commitment (and possibly a lazily grown chain below it from
// past non-ownership proofs). Those records are purged before the new
// subtree is built, both because they are unreachable afterwards and
// because a fresh rebuild would not contain them — leaving them would break
// the byte-identity of the serialized state. Purging them is sound: they
// were only ever teased (soft commitments bind to nothing), and the
// commitment they hung off no longer exists.

// updateMetrics times incremental updates, labelled by store backend. The
// registry caches series, so the lookup is cheap relative to an update.
func updateMetrics(backend string) *obs.Histogram {
	return obs.Default.Histogram("desword_zkedb_update_seconds",
		"ZK-EDB incremental commitment update time.", nil,
		"backend", backend)
}

// Update revises the committed database with delta (inserting new keys,
// overwriting existing ones) and returns the new commitment, recomputing
// only the tree paths delta touches. It excludes concurrent Prove calls for
// its duration; proofs issued before an Update verify only against the old
// commitment, which is the intended semantics — each registered POC version
// answers for its own snapshot.
//
// Update is not crash-atomic on a file store: a crash mid-update can leave
// the tree between versions (batches auto-commit when full). A reopened
// store remains structurally valid — every committed batch is internally
// consistent — but callers that need all-or-nothing task registration
// should snapshot (SaveFile) before updating.
func (d *Decommitment) Update(ctx context.Context, delta map[string][]byte) (Commitment, error) {
	_, span := trace.Default.StartChild(ctx, "zkedb.update",
		trace.Int("keys", len(delta)),
		trace.Int("q", d.crs.Params.Q), trace.Int("h", d.crs.Params.H),
		trace.String("store", d.kv.Name()))
	timer := obs.StartTimer()
	com, err := d.update(ctx, delta)
	if err == nil {
		updateMetrics(d.kv.Name()).ObserveTimer(timer)
	}
	span.SetError(err)
	span.End()
	return com, err
}

func (d *Decommitment) update(ctx context.Context, delta map[string][]byte) (Commitment, error) {
	d.treeMu.Lock()
	defer d.treeMu.Unlock()
	if len(delta) == 0 {
		return Commitment{Root: d.root.qCom}, nil
	}
	items := make([]keyItem, 0, len(delta))
	for k, v := range delta {
		cp := make([]byte, len(v))
		copy(cp, v)
		items = append(items, keyItem{key: k, value: cp, digits: d.crs.digits(d.crs.digest(k))})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].key < items[j].key })
	for _, it := range items {
		if err := d.kv.Put(dbStoreKey(it.key), it.value); err != nil {
			return Commitment{}, fmt.Errorf("zkedb: storing db entry: %w", err)
		}
	}
	// The update walk is serial: for realistic k it touches k·H nodes, and
	// keeping it single-threaded keeps first-error behaviour trivially
	// deterministic. Fresh subtrees still go through builder.build, so they
	// reproduce exactly what a from-scratch build would.
	b := &builder{crs: d.crs, dec: d, seed: d.seed}
	newRoot, err := d.updateNode(ctx, b, 0, nil, d.root, items)
	if err != nil {
		return Commitment{}, err
	}
	if err := d.kv.Flush(); err != nil {
		return Commitment{}, fmt.Errorf("zkedb: flushing store: %w", err)
	}
	d.root = newRoot
	return Commitment{Root: newRoot.qCom}, nil
}

// updateNode recomputes the node at level/prefix for the touched items,
// reusing the old node's untouched slot messages and re-deriving its
// commitment randomness from the position-keyed stream. old is the current
// node at this position (never nil: the caller only recurses into occupied
// slots).
func (d *Decommitment) updateNode(ctx context.Context, b *builder, level int, prefix []int, old *node, items []keyItem) (*node, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("zkedb: update cancelled at level %d: %w", level, err)
	}
	c := d.crs
	if level == c.Params.H {
		if len(items) != 1 {
			return nil, fmt.Errorf("%w: %d keys at leaf %v", ErrDigestCollision, len(items), prefix)
		}
		if old.leafKey != items[0].key {
			return nil, fmt.Errorf("%w: leaf holds %q, updating %q", ErrDigestCollision, old.leafKey, items[0].key)
		}
		// Value overwrite: recommit the leaf. In seeded mode the position
		// stream re-derives the same randomness a fresh build would use.
		return b.build(level, prefix, items)
	}
	bySlot := make(map[int][]keyItem)
	for _, it := range items {
		s := it.digits[level]
		bySlot[s] = append(bySlot[s], it)
	}
	touched := make([]int, 0, len(bySlot))
	for s := range bySlot {
		touched = append(touched, s)
	}
	sort.Ints(touched)

	n := &node{level: level, slots: append([]int(nil), old.slots...)}
	messages := append([]*big.Int(nil), old.qDec.Messages...)
	for _, slot := range touched {
		childPrefix := append(append(make([]int, 0, level+1), prefix...), slot)
		slotItems := bySlot[slot]
		var child *node
		var err error
		if old.hasSlot(slot) {
			oldChild, cerr := d.childAt(childPrefix, nil)
			if cerr != nil {
				return nil, cerr
			}
			child, err = d.updateNode(ctx, b, level+1, childPrefix, oldChild, slotItems)
		} else {
			// Empty → occupied: drop the pinned soft entry (and any lazily
			// grown chain below it), then build the subtree from scratch.
			if err = d.purgeSoftsUnder(prefixKey(childPrefix)); err != nil {
				return nil, err
			}
			child, err = b.build(level+1, childPrefix, slotItems)
			if err == nil {
				i := sort.SearchInts(n.slots, slot)
				n.slots = append(n.slots, 0)
				copy(n.slots[i+1:], n.slots[i:])
				n.slots[i] = slot
			}
		}
		if err != nil {
			return nil, err
		}
		messages[slot] = slotHash(child.commitment())
	}
	qCom, qDec, err := c.Key.HComFrom(b.rnd(prefix), messages)
	if err != nil {
		return nil, fmt.Errorf("zkedb: recommitting node at level %d: %w", level, err)
	}
	n.qCom = qCom
	n.qDec = qDec
	if err := d.putNode(prefixKey(prefix), n); err != nil {
		return nil, err
	}
	return n, nil
}

// purgeSoftsUnder deletes every stored (and cached) soft entry at or below
// a digit-path key. Keys are one byte per digit, so the string-prefix scan
// is exactly the subtree scan.
func (d *Decommitment) purgeSoftsUnder(pk string) error {
	keys, err := d.kv.List(softStoreKey(pk))
	if err != nil {
		return fmt.Errorf("zkedb: listing soft entries under %x: %w", pk, err)
	}
	for _, k := range keys {
		if !strings.HasPrefix(k, nsSoft) {
			continue
		}
		if err := d.kv.Delete(k); err != nil {
			return fmt.Errorf("zkedb: deleting soft entry %q: %w", k, err)
		}
		d.mu.Lock()
		d.cacheDeleteLocked(k)
		d.mu.Unlock()
	}
	return nil
}
