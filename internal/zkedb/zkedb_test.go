package zkedb

import (
	"context"
	"fmt"
	"math/big"
	"testing"

	"desword/internal/qmercurial"
)

// testCRS builds one small CRS shared by the tests in this file; CRS
// generation involves RSA keygen, so amortize it.
var _testCRS *CRS

func testCRS(t *testing.T) *CRS {
	t.Helper()
	if _testCRS == nil {
		crs, err := CRSGen(TestParams())
		if err != nil {
			t.Fatalf("CRSGen: %v", err)
		}
		_testCRS = crs
	}
	return _testCRS
}

func testDB(n int) map[string][]byte {
	db := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		db[fmt.Sprintf("product-%03d", i)] = []byte(fmt.Sprintf("trace-data-%03d", i))
	}
	return db
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"default", DefaultParams(), true},
		{"test", TestParams(), true},
		{"q not power of two", Params{Q: 6, H: 16, KeyBits: 32, ModulusBits: 512}, false},
		{"q too small", Params{Q: 1, H: 16, KeyBits: 32, ModulusBits: 512}, false},
		{"zero height", Params{Q: 8, H: 0, KeyBits: 32, ModulusBits: 512}, false},
		{"coverage too small", Params{Q: 8, H: 4, KeyBits: 32, ModulusBits: 512}, false},
		{"keybits too large", Params{Q: 16, H: 80, KeyBits: 300, ModulusBits: 512}, false},
		{"tiny modulus", Params{Q: 8, H: 8, KeyBits: 24, ModulusBits: 64}, false},
		{"table2 row q8", Params{Q: 8, H: 43, KeyBits: 128, ModulusBits: 512}, true},
		{"table2 row q128", Params{Q: 128, H: 19, KeyBits: 128, ModulusBits: 512}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if tc.ok && err != nil {
				t.Fatalf("expected valid, got %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestDigitsCoverDigestExactly(t *testing.T) {
	crs := testCRS(t)
	digest := crs.digest("some-key")
	digits := crs.digits(digest)
	if len(digits) != crs.Params.H {
		t.Fatalf("got %d digits, want %d", len(digits), crs.Params.H)
	}
	// Reassemble the digest from digits and compare.
	b := crs.Params.digitBits()
	var bits []byte
	for _, d := range digits {
		for k := b - 1; k >= 0; k-- {
			bits = append(bits, byte(d>>k)&1)
		}
	}
	for i := 0; i < crs.Params.KeyBits; i++ {
		want := (digest[i/8] >> (7 - i%8)) & 1
		if bits[i] != want {
			t.Fatalf("bit %d mismatch", i)
		}
	}
	for _, d := range digits {
		if d < 0 || d >= crs.Params.Q {
			t.Fatalf("digit %d out of range", d)
		}
	}
}

func TestCommitProveVerifyOwnership(t *testing.T) {
	crs := testCRS(t)
	db := testDB(8)
	com, dec, err := crs.Commit(db, CommitOptions{})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	for key, want := range db {
		proof, err := dec.Prove(context.Background(), key)
		if err != nil {
			t.Fatalf("Prove(%q): %v", key, err)
		}
		if proof.Kind != ProofOwnership {
			t.Fatalf("expected ownership proof for %q", key)
		}
		value, present, err := crs.Verify(com, key, proof)
		if err != nil {
			t.Fatalf("Verify(%q): %v", key, err)
		}
		if !present || string(value) != string(want) {
			t.Fatalf("Verify(%q) = (%q, %v), want (%q, true)", key, value, present, want)
		}
	}
}

func TestCommitProveVerifyNonOwnership(t *testing.T) {
	crs := testCRS(t)
	db := testDB(8)
	com, dec, err := crs.Commit(db, CommitOptions{})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	for _, key := range []string{"absent-1", "absent-2", "never-seen"} {
		proof, err := dec.Prove(context.Background(), key)
		if err != nil {
			t.Fatalf("Prove(%q): %v", key, err)
		}
		if proof.Kind != ProofNonOwnership {
			t.Fatalf("expected non-ownership proof for %q", key)
		}
		value, present, err := crs.Verify(com, key, proof)
		if err != nil {
			t.Fatalf("Verify(%q): %v", key, err)
		}
		if present || value != nil {
			t.Fatalf("Verify(%q) must report absence", key)
		}
	}
}

func TestEmptyDatabase(t *testing.T) {
	crs := testCRS(t)
	com, dec, err := crs.Commit(nil, CommitOptions{})
	if err != nil {
		t.Fatalf("Commit(nil): %v", err)
	}
	proof, err := dec.Prove(context.Background(), "anything")
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if _, present, err := crs.Verify(com, "anything", proof); err != nil || present {
		t.Fatalf("empty DB must prove absence for all keys: %v", err)
	}
}

func TestSingleKeyDatabase(t *testing.T) {
	crs := testCRS(t)
	db := map[string][]byte{"only": []byte("value")}
	com, dec, err := crs.Commit(db, CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dec.Prove(context.Background(), "only")
	if err != nil {
		t.Fatal(err)
	}
	v, present, err := crs.Verify(com, "only", proof)
	if err != nil || !present || string(v) != "value" {
		t.Fatalf("single key must verify: %v", err)
	}
}

func TestRepeatedNonOwnershipQueriesConsistent(t *testing.T) {
	crs := testCRS(t)
	_, dec, err := crs.Commit(testDB(4), CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := dec.Prove(context.Background(), "ghost")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := dec.Prove(context.Background(), "ghost")
	if err != nil {
		t.Fatal(err)
	}
	// The soft-commitment chain must be reused: the presented child
	// commitments must be identical across queries.
	if len(p1.Levels) != len(p2.Levels) {
		t.Fatal("level counts differ")
	}
	for i := range p1.Levels {
		if !p1.Levels[i].Child.Equal(p2.Levels[i].Child) {
			t.Fatalf("level %d child commitment differs across repeated queries", i)
		}
	}
}

func TestProofWrongKeyRejected(t *testing.T) {
	crs := testCRS(t)
	db := testDB(4)
	com, dec, err := crs.Commit(db, CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dec.Prove(context.Background(), "product-001")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := crs.Verify(com, "product-002", proof); err == nil {
		t.Fatal("ownership proof replayed for a different key must fail")
	}
	absent, err := dec.Prove(context.Background(), "ghost-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := crs.Verify(com, "ghost-b", absent); err == nil {
		t.Fatal("non-ownership proof replayed for a different key must fail")
	}
}

func TestProofWrongCommitmentRejected(t *testing.T) {
	crs := testCRS(t)
	com1, dec1, err := crs.Commit(testDB(4), CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	com2, _, err := crs.Commit(map[string][]byte{"other": []byte("db")}, CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if com1.Equal(com2) {
		t.Fatal("distinct databases must have distinct commitments")
	}
	proof, err := dec1.Prove(context.Background(), "product-001")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := crs.Verify(com2, "product-001", proof); err == nil {
		t.Fatal("proof must not verify against another commitment")
	}
}

func TestTamperedValueRejected(t *testing.T) {
	crs := testCRS(t)
	db := testDB(4)
	com, dec, err := crs.Commit(db, CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dec.Prove(context.Background(), "product-000")
	if err != nil {
		t.Fatal(err)
	}
	proof.Value = []byte("forged trace data")
	if _, _, err := crs.Verify(com, "product-000", proof); err == nil {
		t.Fatal("tampered value must be rejected")
	}
}

func TestTamperedLevelRejected(t *testing.T) {
	crs := testCRS(t)
	com, dec, err := crs.Commit(testDB(4), CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dec.Prove(context.Background(), "product-000")
	if err != nil {
		t.Fatal(err)
	}
	proof.Levels[2].Hard.Message = new(big.Int).Add(proof.Levels[2].Hard.Message, big.NewInt(1))
	if _, _, err := crs.Verify(com, "product-000", proof); err == nil {
		t.Fatal("tampered level message must be rejected")
	}
}

func TestTruncatedProofRejected(t *testing.T) {
	crs := testCRS(t)
	com, dec, err := crs.Commit(testDB(4), CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dec.Prove(context.Background(), "product-000")
	if err != nil {
		t.Fatal(err)
	}
	proof.Levels = proof.Levels[:len(proof.Levels)-1]
	if _, _, err := crs.Verify(com, "product-000", proof); err == nil {
		t.Fatal("truncated proof must be rejected")
	}
}

func TestMixedKindProofRejected(t *testing.T) {
	crs := testCRS(t)
	com, dec, err := crs.Commit(testDB(4), CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	owned, err := dec.Prove(context.Background(), "product-000")
	if err != nil {
		t.Fatal(err)
	}
	// Claim it's a non-ownership proof while all levels are hard openings.
	owned.Kind = ProofNonOwnership
	if _, _, err := crs.Verify(com, "product-000", owned); err == nil {
		t.Fatal("kind/opening mismatch must be rejected")
	}
	if _, _, err := crs.Verify(com, "product-000", nil); err == nil {
		t.Fatal("nil proof must be rejected")
	}
	bad := &Proof{Kind: ProofKind(9)}
	if _, _, err := crs.Verify(com, "product-000", bad); err == nil {
		t.Fatal("unknown kind must be rejected")
	}
}

func TestCannotProveNonOwnershipOfPresentKey(t *testing.T) {
	crs := testCRS(t)
	_, dec, err := crs.Commit(testDB(2), CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.proveNonOwnership(context.Background(), "product-000", &proveStats{}); err == nil {
		t.Fatal("honest prover must refuse non-ownership of a present key")
	}
}

func TestCommitmentHidesCardinality(t *testing.T) {
	crs := testCRS(t)
	comSmall, _, err := crs.Commit(testDB(1), CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	comLarge, _, err := crs.Commit(testDB(16), CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(comSmall.Bytes()) != len(comLarge.Bytes()) {
		t.Fatal("commitment size must not depend on database size")
	}
}

func TestProofBinaryRoundTrip(t *testing.T) {
	crs := testCRS(t)
	com, dec, err := crs.Commit(testDB(4), CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"product-001", "missing-key"} {
		proof, err := dec.Prove(context.Background(), key)
		if err != nil {
			t.Fatal(err)
		}
		data, err := proof.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Proof
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if _, _, err := crs.Verify(com, key, &back); err != nil {
			t.Fatalf("decoded proof must verify: %v", err)
		}
	}
}

func TestProofBinaryRejectsGarbage(t *testing.T) {
	var p Proof
	if err := p.UnmarshalBinary(nil); err == nil {
		t.Fatal("empty encoding must be rejected")
	}
	if err := p.UnmarshalBinary([]byte{99}); err == nil {
		t.Fatal("unknown kind must be rejected")
	}
	crs := testCRS(t)
	_, dec, err := crs.Commit(testDB(2), CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dec.Prove(context.Background(), "product-000")
	if err != nil {
		t.Fatal(err)
	}
	data, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UnmarshalBinary(data[:len(data)/2]); err == nil {
		t.Fatal("truncated encoding must be rejected")
	}
	if err := p.UnmarshalBinary(append(data, 0)); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
}

func TestOwnershipLargerThanNonOwnership(t *testing.T) {
	// Table II: ownership proofs are consistently larger than non-ownership
	// proofs at every (q,h).
	crs := testCRS(t)
	_, dec, err := crs.Commit(testDB(4), CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	own, err := dec.Prove(context.Background(), "product-000")
	if err != nil {
		t.Fatal(err)
	}
	non, err := dec.Prove(context.Background(), "missing")
	if err != nil {
		t.Fatal(err)
	}
	ownSize, err := own.Size()
	if err != nil {
		t.Fatal(err)
	}
	nonSize, err := non.Size()
	if err != nil {
		t.Fatal(err)
	}
	if ownSize <= nonSize {
		t.Fatalf("ownership proof (%dB) must exceed non-ownership proof (%dB)", ownSize, nonSize)
	}
}

func TestVerifierSeesOnlyQueriedSlot(t *testing.T) {
	// Privacy probe: a proof for one key must not contain any other key's
	// leaf commitment or value bytes.
	crs := testCRS(t)
	db := map[string][]byte{
		"target": []byte("target-value"),
		"secret": []byte("super-secret-value"),
	}
	_, dec, err := crs.Commit(db, CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dec.Prove(context.Background(), "target")
	if err != nil {
		t.Fatal(err)
	}
	data, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if containsSubslice(data, []byte("super-secret-value")) {
		t.Fatal("proof for one key must not leak another key's value")
	}
}

func containsSubslice(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestCRSRehydrate(t *testing.T) {
	crs := testCRS(t)
	clone := &CRS{Params: crs.Params, Key: &qmercurial.PublicKey{VC: crs.Key.VC}}
	if err := clone.Rehydrate(); err != nil {
		t.Fatal(err)
	}
	db := testDB(2)
	com, dec, err := crs.Commit(db, CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dec.Prove(context.Background(), "product-000")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := clone.Verify(com, "product-000", proof); err != nil {
		t.Fatalf("rehydrated CRS must verify proofs: %v", err)
	}
	var empty CRS
	if err := empty.Rehydrate(); err == nil {
		t.Fatal("empty CRS must fail rehydration")
	}
}
