package zkedb

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"sort"

	"desword/internal/group"
	"desword/internal/mercurial"
	"desword/internal/qmercurial"
)

// This file makes the prover's secret state (Decommitment / DE-Sword's DPOC)
// durable. A participant stores its DPOC in its own database to answer
// queries later (§IV.B); re-running Commit after a restart would produce a
// *different* commitment (fresh randomness) and orphan the POC already
// submitted to the proxy, so the exact tree — including the position-pinned
// soft commitments already shown to verifiers — must round-trip.

// ErrBadState reports a malformed serialized decommitment.
var ErrBadState = errors.New("zkedb: malformed decommitment state")

// persistState is the serializable image of a Decommitment.
type persistState struct {
	Params Params            `json:"params"`
	DB     map[string][]byte `json:"db"`
	Root   *persistNode      `json:"root"`
	Soft   []persistSoft     `json:"soft"`
}

// persistNode mirrors node.
type persistNode struct {
	Level    int                  `json:"level"`
	Children map[int]*persistNode `json:"children,omitempty"`

	QCom *persistCommitment `json:"q_com,omitempty"`
	QDec *persistHardDec    `json:"q_dec,omitempty"`

	LeafCom   *persistCommitment `json:"leaf_com,omitempty"`
	LeafDec   *persistMercHard   `json:"leaf_dec,omitempty"`
	LeafKey   string             `json:"leaf_key,omitempty"`
	LeafValue []byte             `json:"leaf_value,omitempty"`
}

// persistCommitment carries a mercurial commitment's two points.
type persistCommitment struct {
	C0 []byte `json:"c0"`
	C1 []byte `json:"c1"`
}

// persistHardDec mirrors qmercurial.HardDecommit.
type persistHardDec struct {
	Messages []*big.Int      `json:"messages"`
	Hiding   *big.Int        `json:"hiding"`
	V        *big.Int        `json:"v"`
	MCDec    persistMercHard `json:"mc_dec"`
}

// persistMercHard mirrors mercurial.HardDecommit.
type persistMercHard struct {
	M  *big.Int `json:"m"`
	R0 *big.Int `json:"r0"`
	R1 *big.Int `json:"r1"`
}

// persistSoft mirrors one soft-cache entry.
type persistSoft struct {
	Prefix []int             `json:"prefix"`
	Com    persistCommitment `json:"com"`
	R0     *big.Int          `json:"r0"`
	R1     *big.Int          `json:"r1"`
}

func encodeCommitment(c mercurial.Commitment) *persistCommitment {
	return &persistCommitment{C0: c.C0.Bytes(), C1: c.C1.Bytes()}
}

func decodeCommitment(p *persistCommitment) (mercurial.Commitment, error) {
	if p == nil {
		return mercurial.Commitment{}, ErrBadState
	}
	grp := group.P256()
	c0, err := grp.DecodePoint(p.C0)
	if err != nil {
		return mercurial.Commitment{}, fmt.Errorf("%w: %w", ErrBadState, err)
	}
	c1, err := grp.DecodePoint(p.C1)
	if err != nil {
		return mercurial.Commitment{}, fmt.Errorf("%w: %w", ErrBadState, err)
	}
	return mercurial.Commitment{C0: c0, C1: c1}, nil
}

func encodeNode(n *node) *persistNode {
	out := &persistNode{Level: n.level}
	if n.children == nil {
		leafCom := n.leafCom
		out.LeafCom = encodeCommitment(leafCom)
		out.LeafDec = &persistMercHard{M: n.leafDec.M, R0: n.leafDec.R0, R1: n.leafDec.R1}
		out.LeafKey = n.leafKey
		out.LeafValue = n.leafValue
		return out
	}
	out.QCom = encodeCommitment(n.qCom.MC)
	out.QDec = &persistHardDec{
		Messages: n.qDec.Messages,
		Hiding:   n.qDec.Hiding,
		V:        n.qDec.V,
		MCDec:    persistMercHard{M: n.qDec.MCDec.M, R0: n.qDec.MCDec.R0, R1: n.qDec.MCDec.R1},
	}
	out.Children = make(map[int]*persistNode, len(n.children))
	for slot, child := range n.children {
		out.Children[slot] = encodeNode(child)
	}
	return out
}

func decodeNode(p *persistNode, params Params) (*node, error) {
	if p == nil {
		return nil, ErrBadState
	}
	n := &node{level: p.Level}
	if p.Children == nil && p.QCom == nil {
		// Leaf node.
		if p.LeafDec == nil || p.LeafKey == "" {
			return nil, fmt.Errorf("%w: leaf at level %d incomplete", ErrBadState, p.Level)
		}
		com, err := decodeCommitment(p.LeafCom)
		if err != nil {
			return nil, err
		}
		n.leafCom = com
		n.leafDec = mercurial.HardDecommit{M: p.LeafDec.M, R0: p.LeafDec.R0, R1: p.LeafDec.R1}
		n.leafKey = p.LeafKey
		n.leafValue = p.LeafValue
		return n, nil
	}
	if p.QDec == nil || len(p.QDec.Messages) != params.Q {
		return nil, fmt.Errorf("%w: internal node at level %d incomplete", ErrBadState, p.Level)
	}
	com, err := decodeCommitment(p.QCom)
	if err != nil {
		return nil, err
	}
	n.qCom = qmercurial.Commitment{MC: com}
	n.qDec = qmercurial.HardDecommit{
		Messages: p.QDec.Messages,
		Hiding:   p.QDec.Hiding,
		V:        p.QDec.V,
		MCDec:    mercurial.HardDecommit{M: p.QDec.MCDec.M, R0: p.QDec.MCDec.R0, R1: p.QDec.MCDec.R1},
	}
	n.children = make(map[int]*node, len(p.Children))
	for slot, child := range p.Children {
		if slot < 0 || slot >= params.Q {
			return nil, fmt.Errorf("%w: child slot %d out of range", ErrBadState, slot)
		}
		decoded, err := decodeNode(child, params)
		if err != nil {
			return nil, err
		}
		n.children[slot] = decoded
	}
	return n, nil
}

// MarshalJSON serializes the full prover state. The output contains every
// secret the participant holds (trace values, decommitment randomness) and
// must be stored as confidentially as the database itself.
func (d *Decommitment) MarshalJSON() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	state := persistState{
		Params: d.crs.Params,
		DB:     d.db,
		Root:   encodeNode(d.root),
		Soft:   make([]persistSoft, 0, len(d.soft)),
	}
	// Soft entries are serialized in sorted prefix order so the same tree
	// always marshals to the same bytes (desword/determinism): the audit
	// trail may hash persisted state, and map iteration order must not
	// leak into it.
	prefixes := make([]string, 0, len(d.soft))
	for prefix := range d.soft {
		prefixes = append(prefixes, prefix)
	}
	sort.Strings(prefixes)
	for _, prefix := range prefixes {
		entry := d.soft[prefix]
		digits := make([]int, len(prefix))
		for i := 0; i < len(prefix); i++ {
			digits[i] = int(prefix[i])
		}
		state.Soft = append(state.Soft, persistSoft{
			Prefix: digits,
			Com:    *encodeCommitment(entry.com),
			R0:     entry.dec.R0,
			R1:     entry.dec.R1,
		})
	}
	return json.Marshal(state)
}

// RestoreDecommitment reconstructs a Decommitment under the given CRS from
// the JSON produced by MarshalJSON. The CRS must be the one the state was
// committed under (the geometry is checked; the key material is trusted).
func RestoreDecommitment(crs *CRS, data []byte) (*Decommitment, error) {
	var state persistState
	if err := json.Unmarshal(data, &state); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadState, err)
	}
	if state.Params != crs.Params {
		return nil, fmt.Errorf("%w: state geometry %+v does not match CRS %+v",
			ErrBadState, state.Params, crs.Params)
	}
	root, err := decodeNode(state.Root, crs.Params)
	if err != nil {
		return nil, err
	}
	dec := &Decommitment{
		crs:  crs,
		db:   state.DB,
		root: root,
		soft: make(map[string]*softEntry, len(state.Soft)),
	}
	if dec.db == nil {
		dec.db = make(map[string][]byte)
	}
	for _, s := range state.Soft {
		com, err := decodeCommitment(&s.Com)
		if err != nil {
			return nil, err
		}
		if s.R0 == nil || s.R1 == nil {
			return nil, fmt.Errorf("%w: soft entry missing randomness", ErrBadState)
		}
		dec.soft[prefixKey(s.Prefix)] = &softEntry{
			com: com,
			dec: mercurial.SoftDecommit{R0: s.R0, R1: s.R1},
		}
	}
	return dec, nil
}
