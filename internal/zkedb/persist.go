package zkedb

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"desword/internal/group"
	"desword/internal/mercurial"
	"desword/internal/qmercurial"
	"desword/internal/zkedb/store"
)

// This file makes the prover's secret state (Decommitment / DE-Sword's DPOC)
// durable as a portable JSON snapshot. A participant stores its DPOC in its
// own database to answer queries later (§IV.B); re-running Commit after a
// restart would produce a *different* commitment (fresh randomness) and
// orphan the POC already submitted to the proxy, so the exact tree —
// including the position-pinned soft commitments already shown to verifiers —
// must round-trip.
//
// The snapshot is one self-contained JSON document regardless of which node
// store backs the tree: MarshalJSON walks the store, so the same tree
// marshals to the same bytes on every backend (pinned by the cross-backend
// tests). File-store deployments normally rely on the store itself for
// durability (OpenDecommitment) and use snapshots for export/migration;
// RestoreDecommitmentStore loads a legacy snapshot into any empty store.

// ErrBadState reports a malformed serialized decommitment.
var ErrBadState = errors.New("zkedb: malformed decommitment state")

// persistState is the serializable image of a Decommitment.
type persistState struct {
	Params Params            `json:"params"`
	DB     map[string][]byte `json:"db"`
	Root   *persistNode      `json:"root"`
	Soft   []persistSoft     `json:"soft"`
	Seed   []byte            `json:"seed,omitempty"`
}

// persistNode mirrors node.
type persistNode struct {
	Level    int                  `json:"level"`
	Children map[int]*persistNode `json:"children,omitempty"`

	QCom *persistCommitment `json:"q_com,omitempty"`
	QDec *persistHardDec    `json:"q_dec,omitempty"`

	LeafCom   *persistCommitment `json:"leaf_com,omitempty"`
	LeafDec   *persistMercHard   `json:"leaf_dec,omitempty"`
	LeafKey   string             `json:"leaf_key,omitempty"`
	LeafValue []byte             `json:"leaf_value,omitempty"`
}

// persistCommitment carries a mercurial commitment's two points.
type persistCommitment struct {
	C0 []byte `json:"c0"`
	C1 []byte `json:"c1"`
}

// persistHardDec mirrors qmercurial.HardDecommit.
type persistHardDec struct {
	Messages []*big.Int      `json:"messages"`
	Hiding   *big.Int        `json:"hiding"`
	V        *big.Int        `json:"v"`
	MCDec    persistMercHard `json:"mc_dec"`
}

// persistMercHard mirrors mercurial.HardDecommit.
type persistMercHard struct {
	M  *big.Int `json:"m"`
	R0 *big.Int `json:"r0"`
	R1 *big.Int `json:"r1"`
}

// persistSoft mirrors one soft entry.
type persistSoft struct {
	Prefix []int             `json:"prefix"`
	Com    persistCommitment `json:"com"`
	R0     *big.Int          `json:"r0"`
	R1     *big.Int          `json:"r1"`
}

func encodeCommitment(c mercurial.Commitment) *persistCommitment {
	return &persistCommitment{C0: c.C0.Bytes(), C1: c.C1.Bytes()}
}

func decodeCommitment(p *persistCommitment) (mercurial.Commitment, error) {
	if p == nil {
		return mercurial.Commitment{}, ErrBadState
	}
	grp := group.P256()
	c0, err := grp.DecodePoint(p.C0)
	if err != nil {
		return mercurial.Commitment{}, fmt.Errorf("%w: %w", ErrBadState, err)
	}
	c1, err := grp.DecodePoint(p.C1)
	if err != nil {
		return mercurial.Commitment{}, fmt.Errorf("%w: %w", ErrBadState, err)
	}
	return mercurial.Commitment{C0: c0, C1: c1}, nil
}

// peekNode resolves a node for a persistence walk: cache first, then the
// store, without inserting into the cache — snapshotting a bounded-cache
// tree must not evict the prover's working set.
func (d *Decommitment) peekNode(pk string) (*node, error) {
	if pk == "" {
		return d.root, nil
	}
	sk := nodeStoreKey(pk)
	d.mu.Lock()
	if el, ok := d.ents[sk]; ok {
		n := el.Value.(*cacheSlot).n
		d.mu.Unlock()
		return n, nil
	}
	d.mu.Unlock()
	val, ok, err := d.kv.Get(sk)
	if err != nil {
		return nil, fmt.Errorf("zkedb: loading node %q: %w", pk, err)
	}
	if !ok {
		return nil, fmt.Errorf("%w: node %x missing from store", ErrBadState, pk)
	}
	n, err := decodeNodeRecord(val, d.crs.Params)
	if err != nil {
		return nil, fmt.Errorf("zkedb: node %x: %w", pk, err)
	}
	return n, nil
}

// persistTree converts the stored subtree at pk into its snapshot form.
func (d *Decommitment) persistTree(pk string, n *node) (*persistNode, error) {
	out := &persistNode{Level: n.level}
	if n.leaf {
		out.LeafCom = encodeCommitment(n.leafCom)
		out.LeafDec = &persistMercHard{M: n.leafDec.M, R0: n.leafDec.R0, R1: n.leafDec.R1}
		out.LeafKey = n.leafKey
		out.LeafValue = n.leafValue
		return out, nil
	}
	out.QCom = encodeCommitment(n.qCom.MC)
	out.QDec = &persistHardDec{
		Messages: n.qDec.Messages,
		Hiding:   n.qDec.Hiding,
		V:        n.qDec.V,
		MCDec:    persistMercHard{M: n.qDec.MCDec.M, R0: n.qDec.MCDec.R0, R1: n.qDec.MCDec.R1},
	}
	out.Children = make(map[int]*persistNode, len(n.slots))
	for _, slot := range n.slots {
		childPk := pk + string([]byte{byte(slot)})
		child, err := d.peekNode(childPk)
		if err != nil {
			return nil, err
		}
		rec, err := d.persistTree(childPk, child)
		if err != nil {
			return nil, err
		}
		out.Children[slot] = rec
	}
	return out, nil
}

// MarshalJSON serializes the full prover state by walking the node store.
// The output contains every secret the participant holds (trace values,
// decommitment randomness, the build seed if any) and must be stored as
// confidentially as the database itself.
func (d *Decommitment) MarshalJSON() ([]byte, error) {
	d.treeMu.RLock()
	defer d.treeMu.RUnlock()
	root, err := d.persistTree("", d.root)
	if err != nil {
		return nil, err
	}
	state := persistState{
		Params: d.crs.Params,
		DB:     make(map[string][]byte),
		Root:   root,
		Seed:   d.seed,
	}
	dbKeys, err := d.kv.List(nsDB)
	if err != nil {
		return nil, fmt.Errorf("zkedb: listing db entries: %w", err)
	}
	for _, sk := range dbKeys {
		val, ok, err := d.kv.Get(sk)
		if err != nil {
			return nil, fmt.Errorf("zkedb: reading db entry %q: %w", sk, err)
		}
		if !ok {
			return nil, fmt.Errorf("%w: db entry %q vanished", ErrBadState, sk)
		}
		state.DB[strings.TrimPrefix(sk, nsDB)] = val
	}
	// Soft entries serialize in sorted prefix order so the same tree always
	// marshals to the same bytes (desword/determinism): the audit trail may
	// hash persisted state, and store iteration order must not leak into it.
	// List already returns sorted keys, and the "s/"-prefixed order equals
	// the prefix order the legacy format used.
	softKeys, err := d.kv.List(nsSoft)
	if err != nil {
		return nil, fmt.Errorf("zkedb: listing soft entries: %w", err)
	}
	state.Soft = make([]persistSoft, 0, len(softKeys))
	for _, sk := range softKeys {
		val, ok, err := d.kv.Get(sk)
		if err != nil {
			return nil, fmt.Errorf("zkedb: reading soft entry %q: %w", sk, err)
		}
		if !ok {
			return nil, fmt.Errorf("%w: soft entry %q vanished", ErrBadState, sk)
		}
		entry, err := decodeSoftRecord(val)
		if err != nil {
			return nil, fmt.Errorf("zkedb: soft entry %q: %w", sk, err)
		}
		prefix := strings.TrimPrefix(sk, nsSoft)
		digits := make([]int, len(prefix))
		for i := 0; i < len(prefix); i++ {
			digits[i] = int(prefix[i])
		}
		state.Soft = append(state.Soft, persistSoft{
			Prefix: digits,
			Com:    *encodeCommitment(entry.com),
			R0:     entry.dec.R0,
			R1:     entry.dec.R1,
		})
	}
	return json.Marshal(state)
}

// restoreNode loads one snapshot node (and its subtree) into the store.
func (d *Decommitment) restoreNode(pk string, p *persistNode) (*node, error) {
	if p == nil {
		return nil, ErrBadState
	}
	params := d.crs.Params
	n := &node{level: p.Level}
	if p.Children == nil && p.QCom == nil {
		// Leaf node.
		if p.LeafDec == nil || p.LeafKey == "" {
			return nil, fmt.Errorf("%w: leaf at level %d incomplete", ErrBadState, p.Level)
		}
		com, err := decodeCommitment(p.LeafCom)
		if err != nil {
			return nil, err
		}
		n.leaf = true
		n.leafCom = com
		n.leafDec = mercurial.HardDecommit{M: p.LeafDec.M, R0: p.LeafDec.R0, R1: p.LeafDec.R1}
		n.leafKey = p.LeafKey
		n.leafValue = p.LeafValue
		if err := d.putNode(pk, n); err != nil {
			return nil, err
		}
		return n, nil
	}
	if p.QDec == nil || len(p.QDec.Messages) != params.Q {
		return nil, fmt.Errorf("%w: internal node at level %d incomplete", ErrBadState, p.Level)
	}
	com, err := decodeCommitment(p.QCom)
	if err != nil {
		return nil, err
	}
	n.qCom = qmercurial.Commitment{MC: com}
	n.qDec = qmercurial.HardDecommit{
		Messages: p.QDec.Messages,
		Hiding:   p.QDec.Hiding,
		V:        p.QDec.V,
		MCDec:    mercurial.HardDecommit{M: p.QDec.MCDec.M, R0: p.QDec.MCDec.R0, R1: p.QDec.MCDec.R1},
	}
	n.slots = make([]int, 0, len(p.Children))
	for slot := range p.Children {
		if slot < 0 || slot >= params.Q {
			return nil, fmt.Errorf("%w: child slot %d out of range", ErrBadState, slot)
		}
		n.slots = append(n.slots, slot)
	}
	sort.Ints(n.slots)
	for _, slot := range n.slots {
		childPk := pk + string([]byte{byte(slot)})
		if _, err := d.restoreNode(childPk, p.Children[slot]); err != nil {
			return nil, err
		}
	}
	if err := d.putNode(pk, n); err != nil {
		return nil, err
	}
	return n, nil
}

// RestoreDecommitment reconstructs a Decommitment under the given CRS from
// the JSON produced by MarshalJSON, backed by a fresh in-memory store. The
// CRS must be the one the state was committed under (the geometry is
// checked; the key material is trusted).
func RestoreDecommitment(crs *CRS, data []byte) (*Decommitment, error) {
	return RestoreDecommitmentStore(crs, data, nil, 0)
}

// RestoreDecommitmentStore is RestoreDecommitment into a caller-supplied
// empty store — the migration path from a legacy JSON snapshot to a
// file-backed tree. kv == nil selects a fresh in-memory store; cacheNodes
// bounds the hydrated cache as CommitOptions.CacheNodes does.
func RestoreDecommitmentStore(crs *CRS, data []byte, kv store.KV, cacheNodes int) (*Decommitment, error) {
	var state persistState
	if err := json.Unmarshal(data, &state); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadState, err)
	}
	if state.Params != crs.Params {
		return nil, fmt.Errorf("%w: state geometry %+v does not match CRS %+v",
			ErrBadState, state.Params, crs.Params)
	}
	if kv == nil {
		kv = store.NewMem()
	}
	if _, ok, err := kv.Get(metaParamsKey); err != nil {
		return nil, fmt.Errorf("zkedb: probing store: %w", err)
	} else if ok {
		return nil, ErrStoreInUse
	}
	dec := newDecommitment(crs, kv, state.Seed, cacheNodes)
	if err := dec.writeMeta(); err != nil {
		return nil, err
	}
	dbKeys := make([]string, 0, len(state.DB))
	for k := range state.DB {
		dbKeys = append(dbKeys, k)
	}
	sort.Strings(dbKeys)
	for _, k := range dbKeys {
		if err := kv.Put(dbStoreKey(k), state.DB[k]); err != nil {
			return nil, fmt.Errorf("zkedb: storing db entry: %w", err)
		}
	}
	root, err := dec.restoreNode("", state.Root)
	if err != nil {
		return nil, err
	}
	if root.leaf {
		return nil, fmt.Errorf("%w: malformed root node", ErrBadState)
	}
	dec.root = root
	for _, s := range state.Soft {
		com, err := decodeCommitment(&s.Com)
		if err != nil {
			return nil, err
		}
		if s.R0 == nil || s.R1 == nil {
			return nil, fmt.Errorf("%w: soft entry missing randomness", ErrBadState)
		}
		entry := &softEntry{com: com, dec: mercurial.SoftDecommit{R0: s.R0, R1: s.R1}}
		if err := dec.putSoft(prefixKey(s.Prefix), entry); err != nil {
			return nil, err
		}
	}
	if err := kv.Flush(); err != nil {
		return nil, fmt.Errorf("zkedb: flushing store: %w", err)
	}
	return dec, nil
}

// SaveFile atomically writes the serialized decommitment to path: the
// snapshot lands in a temp file in the same directory (mode 0600 — it holds
// every secret the participant has), is synced, and is renamed over the
// target, so a crash mid-save can never leave a torn or half-written
// snapshot where a good one used to be.
func (d *Decommitment) SaveFile(path string) error {
	data, err := json.Marshal(d)
	if err != nil {
		return fmt.Errorf("zkedb: serializing decommitment: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("zkedb: creating snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("zkedb: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("zkedb: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("zkedb: closing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("zkedb: publishing snapshot: %w", err)
	}
	return nil
}

// LoadDecommitmentFile restores a decommitment from a SaveFile snapshot.
func LoadDecommitmentFile(crs *CRS, path string) (*Decommitment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("zkedb: reading snapshot: %w", err)
	}
	return RestoreDecommitment(crs, data)
}
