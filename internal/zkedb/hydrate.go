package zkedb

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"desword/internal/obs"
	"desword/internal/zkedb/store"
)

// This file is the lazy-hydration layer between the prover and its node
// store: every node and soft entry lives encoded in the store, and a bounded
// LRU of decoded copies fronts it. With an unbounded cache (the default, and
// the only mode the Mem backend needs) everything built stays resident and
// proofs never touch the store — the pre-store behaviour. With a bound, a
// proof hydrates the ≤ H nodes on its path and eviction keeps peak memory
// proportional to the working set instead of the tree (DESIGN.md §13).

// cacheMetrics are the hydration counters, labelled by store backend.
type cacheMetrics struct {
	loaded  *obs.Counter
	evicted *obs.Counter
}

// cacheMetricsRegistry interns the per-backend counter sets.
type cacheMetricsRegistry struct {
	mu sync.Mutex
	m  map[string]*cacheMetrics // guarded by mu
}

var cacheReg = cacheMetricsRegistry{m: make(map[string]*cacheMetrics)}

// cacheMetricsFor returns the counters for one backend, building them once
// per backend name.
func cacheMetricsFor(backend string) *cacheMetrics {
	cacheReg.mu.Lock()
	defer cacheReg.mu.Unlock()
	if m, ok := cacheReg.m[backend]; ok {
		return m
	}
	m := &cacheMetrics{
		loaded: obs.Default.Counter("desword_zkedb_store_nodes_loaded",
			"ZK-EDB tree nodes and soft entries hydrated from the node store.",
			"backend", backend),
		evicted: obs.Default.Counter("desword_zkedb_store_nodes_evicted",
			"ZK-EDB hydrated tree nodes and soft entries evicted from the resident cache.",
			"backend", backend),
	}
	cacheReg.m[backend] = m
	return m
}

// cacheInsertLocked registers a hydrated entry, evicting from the LRU tail when
// the bound is exceeded. d.mu must be held. The root is never inserted (it
// is pinned on the Decommitment itself), so eviction can never orphan the
// tree.
func (d *Decommitment) cacheInsertLocked(key string, cs *cacheSlot) {
	if el, ok := d.ents[key]; ok {
		el.Value = cs
		d.ll.MoveToFront(el)
		return
	}
	d.ents[key] = d.ll.PushFront(cs)
	if d.bound <= 0 {
		return
	}
	for d.ll.Len() > d.bound {
		back := d.ll.Back()
		if back == nil {
			break
		}
		d.ll.Remove(back)
		delete(d.ents, back.Value.(*cacheSlot).key)
		d.cm.evicted.Inc()
	}
}

// cacheDeleteLocked drops a hydrated entry, if resident. d.mu must be held.
func (d *Decommitment) cacheDeleteLocked(key string) {
	if el, ok := d.ents[key]; ok {
		d.ll.Remove(el)
		delete(d.ents, key)
	}
}

// ResidentNodes reports how many hydrated nodes and soft entries are
// currently cached (excluding the pinned root). Benchmarks use it to show
// peak memory staying bounded below tree size.
func (d *Decommitment) ResidentNodes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ll.Len()
}

// putNode writes a node through to the store and caches the decoded copy.
// The root (pk == "") is not cached: callers pin it on d.root directly.
func (d *Decommitment) putNode(pk string, n *node) error {
	if err := d.kv.Put(nodeStoreKey(pk), encodeNodeRecord(n)); err != nil {
		return fmt.Errorf("zkedb: storing node %q: %w", pk, err)
	}
	if pk == "" {
		return nil
	}
	d.mu.Lock()
	d.cacheInsertLocked(nodeStoreKey(pk), &cacheSlot{key: nodeStoreKey(pk), n: n})
	d.mu.Unlock()
	return nil
}

// nodeAt resolves the node at a digit-path key, hydrating it from the store
// on a cache miss. The tree is immutable while callers hold treeMu (shared
// for proofs, exclusive for Update), so a racing double-hydration of the
// same node is harmless: both copies decode identical bytes.
func (d *Decommitment) nodeAt(pk string, st *proveStats) (*node, error) {
	if pk == "" {
		return d.root, nil
	}
	sk := nodeStoreKey(pk)
	d.mu.Lock()
	if el, ok := d.ents[sk]; ok {
		d.ll.MoveToFront(el)
		n := el.Value.(*cacheSlot).n
		d.mu.Unlock()
		return n, nil
	}
	d.mu.Unlock()
	val, ok, err := d.kv.Get(sk)
	if err != nil {
		return nil, fmt.Errorf("zkedb: loading node %q: %w", pk, err)
	}
	if !ok {
		return nil, fmt.Errorf("%w: node %x missing from store", ErrBadState, pk)
	}
	n, err := decodeNodeRecord(val, d.crs.Params)
	if err != nil {
		return nil, fmt.Errorf("zkedb: node %x: %w", pk, err)
	}
	if st != nil {
		st.loaded++
	}
	d.cm.loaded.Inc()
	d.mu.Lock()
	d.cacheInsertLocked(sk, &cacheSlot{key: sk, n: n})
	d.mu.Unlock()
	return n, nil
}

// childAt resolves the node at a digit-path prefix.
func (d *Decommitment) childAt(prefix []int, st *proveStats) (*node, error) {
	return d.nodeAt(prefixKey(prefix), st)
}

// putSoft writes a soft entry through to the store and caches it.
func (d *Decommitment) putSoft(pk string, entry *softEntry) error {
	if err := d.kv.Put(softStoreKey(pk), encodeSoftRecord(entry)); err != nil {
		return fmt.Errorf("zkedb: storing soft entry %q: %w", pk, err)
	}
	d.mu.Lock()
	d.cacheInsertLocked(softStoreKey(pk), &cacheSlot{key: softStoreKey(pk), s: entry})
	d.mu.Unlock()
	return nil
}

// softAt resolves the soft entry pinned at a tree position, hydrating it
// from the store or creating it lazily on first use (non-ownership proofs
// extend soft chains below the commit-time pinned entries on demand).
// Creation happens under d.mu so concurrent proofs of the same absent key
// see one consistent chain — repeat queries must answer with the same soft
// commitments (persist.go explains why). Lazily created entries draw from
// the position-keyed DRBG when the build was seeded, so seeded trees produce
// identical soft chains on every backend and after every reopen.
func (d *Decommitment) softAt(prefix []int, st *proveStats) (*softEntry, error) {
	pk := prefixKey(prefix)
	sk := softStoreKey(pk)
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.ents[sk]; ok {
		d.ll.MoveToFront(el)
		return el.Value.(*cacheSlot).s, nil
	}
	val, ok, err := d.kv.Get(sk)
	if err != nil {
		return nil, fmt.Errorf("zkedb: loading soft entry %q: %w", pk, err)
	}
	if ok {
		entry, err := decodeSoftRecord(val)
		if err != nil {
			return nil, fmt.Errorf("zkedb: soft entry %x: %w", pk, err)
		}
		if st != nil {
			st.loaded++
		}
		d.cm.loaded.Inc()
		d.cacheInsertLocked(sk, &cacheSlot{key: sk, s: entry})
		return entry, nil
	}
	var rnd io.Reader = rand.Reader
	if d.seed != nil {
		rnd = newCommitDRBG(d.seed, prefix)
	}
	com, sdec := d.crs.Key.TMC.SComFrom(rnd)
	entry := &softEntry{com: com, dec: sdec}
	if err := d.kv.Put(sk, encodeSoftRecord(entry)); err != nil {
		return nil, fmt.Errorf("zkedb: storing soft entry %q: %w", pk, err)
	}
	if st != nil {
		st.created++
	}
	d.cacheInsertLocked(sk, &cacheSlot{key: sk, s: entry})
	return entry, nil
}

// writeMeta records the tree geometry (and build seed, if any) in the
// store, marking it as holding a committed tree.
func (d *Decommitment) writeMeta() error {
	pj, err := json.Marshal(d.crs.Params)
	if err != nil {
		return fmt.Errorf("zkedb: encoding params: %w", err)
	}
	if err := d.kv.Put(metaParamsKey, pj); err != nil {
		return fmt.Errorf("zkedb: storing params: %w", err)
	}
	if d.seed != nil {
		cp := make([]byte, len(d.seed))
		copy(cp, d.seed)
		if err := d.kv.Put(metaSeedKey, cp); err != nil {
			return fmt.Errorf("zkedb: storing seed: %w", err)
		}
	}
	return nil
}

// OpenDecommitment reopens the prover state from a store that already holds
// a committed tree — typically a *store.File across a process restart. Only
// the root node is loaded eagerly; everything else hydrates on demand during
// proofs, so reopening a million-node tree is O(1). cacheNodes bounds the
// resident hydrated-state cache exactly as CommitOptions.CacheNodes does.
//
// The CRS must be the one the tree was committed under: the geometry is
// checked against the store's metadata, the key material is trusted (as with
// RestoreDecommitment).
func OpenDecommitment(crs *CRS, kv store.KV, cacheNodes int) (*Decommitment, error) {
	pj, ok, err := kv.Get(metaParamsKey)
	if err != nil {
		return nil, fmt.Errorf("zkedb: reading store metadata: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("%w: store holds no committed tree", ErrBadState)
	}
	var params Params
	if err := json.Unmarshal(pj, &params); err != nil {
		return nil, fmt.Errorf("%w: store params: %w", ErrBadState, err)
	}
	if params != crs.Params {
		return nil, fmt.Errorf("%w: store geometry %+v does not match CRS %+v",
			ErrBadState, params, crs.Params)
	}
	seed, _, err := kv.Get(metaSeedKey)
	if err != nil {
		return nil, fmt.Errorf("zkedb: reading store metadata: %w", err)
	}
	dec := newDecommitment(crs, kv, seed, cacheNodes)
	rootRec, ok, err := kv.Get(nodeStoreKey(""))
	if err != nil {
		return nil, fmt.Errorf("zkedb: loading root: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("%w: store missing root node", ErrBadState)
	}
	root, err := decodeNodeRecord(rootRec, crs.Params)
	if err != nil {
		return nil, fmt.Errorf("zkedb: root: %w", err)
	}
	if root.leaf || root.level != 0 {
		return nil, fmt.Errorf("%w: malformed root node", ErrBadState)
	}
	dec.root = root
	return dec, nil
}
