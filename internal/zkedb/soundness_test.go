package zkedb

import (
	"context"
	"testing"

	"desword/internal/mercurial"
)

// This file plays the malicious prover of the paper's §V: each test crafts
// the strongest forgery available without breaking the underlying
// commitments, and asserts the verifier rejects it. The tests map onto
// Claim 1 (no key can have both an ownership and a non-ownership proof) and
// Claim 2 (no key can have two ownership proofs with different values).

// claim1Fixture commits a database and returns a valid ownership proof for a
// present key.
func claim1Fixture(t *testing.T) (*CRS, Commitment, *Decommitment, string) {
	t.Helper()
	crs := testCRS(t)
	db := map[string][]byte{
		"committed-key": []byte("committed-value"),
		"other-key":     []byte("other-value"),
	}
	com, dec, err := crs.Commit(db, CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return crs, com, dec, "committed-key"
}

func TestClaim1ForgedNonOwnershipViaTeases(t *testing.T) {
	// The strongest Claim-1 forgery: every hard opening along the committed
	// key's path can legitimately be converted into a tease (SOpenHard), so
	// the adversary builds a structurally perfect non-ownership proof — and
	// is stopped only at the leaf, which is hard-committed to the key/value
	// message and therefore cannot tease to the "absent" message.
	crs, com, dec, key := claim1Fixture(t)
	own, err := dec.Prove(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}

	forged := &Proof{Kind: ProofNonOwnership, Levels: make([]LevelOpening, 0, len(own.Levels))}
	cur := dec.root
	digits := crs.digits(crs.digest(key))
	for level := 0; level < crs.Params.H; level++ {
		sop, serr := crs.Key.SOpenHard(cur.qDec, digits[level])
		if serr != nil {
			t.Fatal(serr)
		}
		child, cerr := dec.childAt(digits[:level+1], nil)
		if cerr != nil {
			t.Fatal(cerr)
		}
		forged.Levels = append(forged.Levels, LevelOpening{Soft: &sop, Child: child.commitment()})
		cur = child
	}
	// Best effort at the leaf: tease with the REAL leaf randomness but claim
	// the absent message.
	leafTease := crs.Key.TMC.SOpenHard(cur.leafDec)
	leafTease.M = crs.absentMessage(key)
	forged.LeafTease = &leafTease

	if _, _, err := crs.Verify(com, key, forged); err == nil {
		t.Fatal("Claim 1 violated: forged non-ownership proof for a committed key verified")
	}
	// Sanity: the honest ownership proof does verify.
	if _, present, err := crs.Verify(com, key, own); err != nil || !present {
		t.Fatalf("honest ownership proof must verify: %v", err)
	}
}

func TestClaim1ForgedOwnershipForAbsentKey(t *testing.T) {
	// Dual forgery: the adversary holds a valid non-ownership proof for an
	// absent key and tries to flip it into an ownership proof by appending a
	// self-made hard leaf. The parent's teased slot message binds the soft
	// chain, not the forged leaf.
	crs, com, dec, _ := claim1Fixture(t)
	absent := "never-committed"
	nOwn, err := dec.Prove(context.Background(), absent)
	if err != nil {
		t.Fatal(err)
	}

	// Build a fresh hard leaf committing to (absent, forged value).
	forgedValue := []byte("fabricated")
	leafCom, leafDec := crs.Key.TMC.HCom(crs.leafMessage(absent, forgedValue))
	leafOpen := crs.Key.TMC.HOpen(leafDec)

	forged := &Proof{
		Kind:     ProofOwnership,
		Value:    forgedValue,
		Levels:   make([]LevelOpening, len(nOwn.Levels)),
		LeafHard: &leafOpen,
	}
	copy(forged.Levels, nOwn.Levels)
	// Swap the last child for the forged leaf commitment.
	forged.Levels[len(forged.Levels)-1].Child = leafCom
	if _, _, err := crs.Verify(com, absent, forged); err == nil {
		t.Fatal("Claim 1 violated: forged ownership proof for an absent key verified")
	}
}

func TestClaim2SecondValueViaForgedLeaf(t *testing.T) {
	// Claim 2: substitute a different value by re-building the leaf. The
	// level-H-1 hard opening binds the real leaf's hash, so the swapped leaf
	// commitment must be rejected by the slot-message check.
	crs, com, dec, key := claim1Fixture(t)
	own, err := dec.Prove(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	forgedValue := []byte("a different trace")
	leafCom, leafDec := crs.Key.TMC.HCom(crs.leafMessage(key, forgedValue))
	leafOpen := crs.Key.TMC.HOpen(leafDec)

	forged := &Proof{
		Kind:     ProofOwnership,
		Value:    forgedValue,
		Levels:   make([]LevelOpening, len(own.Levels)),
		LeafHard: &leafOpen,
	}
	copy(forged.Levels, own.Levels)
	forged.Levels[len(forged.Levels)-1].Child = leafCom
	if _, _, err := crs.Verify(com, key, forged); err == nil {
		t.Fatal("Claim 2 violated: second ownership proof with a different value verified")
	}
}

func TestSpliceAttackAcrossKeys(t *testing.T) {
	// Splice the hard prefix of one key's proof with the soft tail of
	// another's: every hybrid must die at the seam, where the presented
	// child no longer matches the opened slot message (or the slot index no
	// longer matches the queried key's digits).
	crs := testCRS(t)
	db := map[string][]byte{"key-a": []byte("va"), "key-b": []byte("vb")}
	com, dec, err := crs.Commit(db, CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ownA, err := dec.Prove(context.Background(), "key-a")
	if err != nil {
		t.Fatal(err)
	}
	nOwnGhost, err := dec.Prove(context.Background(), "ghost")
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < crs.Params.H; cut++ {
		spliced := &Proof{
			Kind:      ProofNonOwnership,
			Levels:    make([]LevelOpening, 0, crs.Params.H),
			LeafTease: nOwnGhost.LeafTease,
		}
		// Hard prefix converted to teases is not directly available to an
		// outsider; instead splice the ghost's own soft levels onto key-a's
		// children, which an eavesdropper of both proofs holds.
		for i := 0; i < cut; i++ {
			lo := nOwnGhost.Levels[i]
			lo.Child = ownA.Levels[i].Child
			spliced.Levels = append(spliced.Levels, lo)
		}
		spliced.Levels = append(spliced.Levels, nOwnGhost.Levels[cut:]...)
		if _, _, err := crs.Verify(com, "ghost", spliced); err == nil {
			t.Fatalf("splice at level %d verified", cut)
		}
	}
}

func TestReplayOwnershipUnderOtherCRS(t *testing.T) {
	crs := testCRS(t)
	other, err := CRSGen(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	db := map[string][]byte{"k": []byte("v")}
	com, dec, err := crs.Commit(db, CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dec.Prove(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	// Same commitment bytes, different CRS (different RSA modulus/primes):
	// the RSA witnesses cannot verify.
	if _, _, err := other.Verify(com, "k", proof); err == nil {
		t.Fatal("proof must not verify under a different CRS")
	}
}

func TestSlotIndexForgery(t *testing.T) {
	// Open the right node at the WRONG slot whose content the adversary
	// controls: verification must pin the slot to the queried key's digit.
	crs, com, dec, key := claim1Fixture(t)
	own, err := dec.Prove(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	digits := crs.digits(crs.digest(key))
	// Re-open level 0 at a different slot (valid opening of that slot!) and
	// present the soft commitment pinned there as the child.
	wrongSlot := (digits[0] + 1) % crs.Params.Q
	op, oerr := crs.Key.HOpen(dec.root.qDec, wrongSlot)
	if oerr != nil {
		t.Fatal(oerr)
	}
	var child mercurial.Commitment
	if dec.root.hasSlot(wrongSlot) {
		c, cerr := dec.childAt([]int{wrongSlot}, nil)
		if cerr != nil {
			t.Fatal(cerr)
		}
		child = c.commitment()
	} else {
		entry, serr := dec.softAt([]int{wrongSlot}, nil)
		if serr != nil {
			t.Fatal(serr)
		}
		child = entry.com
	}
	forged := &Proof{
		Kind:     ProofOwnership,
		Value:    own.Value,
		Levels:   make([]LevelOpening, len(own.Levels)),
		LeafHard: own.LeafHard,
	}
	copy(forged.Levels, own.Levels)
	forged.Levels[0] = LevelOpening{Hard: &op, Child: child}
	if _, _, err := crs.Verify(com, key, forged); err == nil {
		t.Fatal("opening a different slot must be rejected")
	}
}

func TestSoftRootCannotAnchorOwnership(t *testing.T) {
	// A committer who publishes a SOFT root (hoping to equivocate later)
	// cannot hard-open it: ownership proofs against such a "commitment" must
	// always fail.
	crs := testCRS(t)
	softCom, _ := crs.Key.SCom()
	fakeCom := Commitment{Root: softCom}
	_, dec, err := crs.Commit(map[string][]byte{"k": []byte("v")}, CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dec.Prove(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := crs.Verify(fakeCom, "k", proof); err == nil {
		t.Fatal("ownership proof must not verify against a soft root")
	}
}

func TestMixedFlavourLevels(t *testing.T) {
	// A proof that claims ownership but smuggles a soft opening at one level
	// (or vice versa) must be rejected by the flavour check, not silently
	// accepted.
	crs, com, dec, key := claim1Fixture(t)
	own, err := dec.Prove(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	ghost, err := dec.Prove(context.Background(), "some-ghost")
	if err != nil {
		t.Fatal(err)
	}
	hybrid := &Proof{
		Kind:     ProofOwnership,
		Value:    own.Value,
		Levels:   make([]LevelOpening, len(own.Levels)),
		LeafHard: own.LeafHard,
	}
	copy(hybrid.Levels, own.Levels)
	hybrid.Levels[2] = ghost.Levels[2] // a Soft opening inside an ownership proof
	if _, _, err := crs.Verify(com, key, hybrid); err == nil {
		t.Fatal("soft opening inside an ownership proof must be rejected")
	}
}

func TestForgedWitnessAgainstRealV(t *testing.T) {
	// Strong-RSA probe at the zkedb layer: keep the real V but present a
	// witness for a different message at the queried slot.
	crs, com, dec, key := claim1Fixture(t)
	own, err := dec.Prove(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	forged := &Proof{
		Kind:     ProofOwnership,
		Value:    own.Value,
		Levels:   make([]LevelOpening, len(own.Levels)),
		LeafHard: own.LeafHard,
	}
	copy(forged.Levels, own.Levels)
	lvl := *forged.Levels[1].Hard
	// Fabricate a (V', Λ') pair that opens the slot to the real message —
	// but V' ≠ V means the mercurial layer's H(V) binding must reject it.
	vPrime, wPrime, err := crs.Key.VC.Fabricate(lvl.Slot, lvl.Message)
	if err != nil {
		t.Fatal(err)
	}
	lvl.V = vPrime
	lvl.Witness = wPrime
	forged.Levels[1].Hard = &lvl
	if _, _, err := crs.Verify(com, key, forged); err == nil {
		t.Fatal("substituted (V, Λ) must be rejected by the mercurial binding")
	}
}

func TestLeafFlavourConfusion(t *testing.T) {
	// Present a non-ownership proof whose leaf tease reuses the committed
	// leaf's tease (which binds to the key/value message, not the absent
	// message): rejected by the absent-message check.
	crs, com, dec, key := claim1Fixture(t)
	ghost, err := dec.Prove(context.Background(), "ghost-key")
	if err != nil {
		t.Fatal(err)
	}
	digits := crs.digits(crs.digest(key))
	cur, err := dec.childAt(digits, nil)
	if err != nil {
		t.Fatal(err)
	}
	leafTease := crs.Key.TMC.SOpenHard(cur.leafDec)

	forged := &Proof{
		Kind:      ProofNonOwnership,
		Levels:    ghost.Levels,
		LeafTease: &leafTease,
	}
	if _, _, err := crs.Verify(com, "ghost-key", forged); err == nil {
		t.Fatal("leaf tease bound to another message must be rejected")
	}
}
