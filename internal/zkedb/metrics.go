package zkedb

import (
	"strconv"

	"desword/internal/obs"
)

// proofMetrics are the per-geometry proof timing histograms, labelled by the
// tree geometry (q, h) and the proof kind. They are built once per CRS and
// cached, so Prove/Verify pay one atomic pointer load per call.
type proofMetrics struct {
	proveOwn  *obs.Histogram
	proveNon  *obs.Histogram
	verifyOwn *obs.Histogram
	verifyNon *obs.Histogram
}

// metrics returns the CRS's cached timing histograms, building them on first
// use (the CRS may have arrived over the wire via JSON, which bypasses
// CRSGen). A lost creation race is harmless: the registry returns the same
// underlying series to every builder.
func (c *CRS) metrics() *proofMetrics {
	if m := c.pm.Load(); m != nil {
		return m
	}
	q := strconv.Itoa(c.Params.Q)
	h := strconv.Itoa(c.Params.H)
	m := &proofMetrics{
		proveOwn: obs.Default.Histogram("desword_proof_generate_seconds",
			"ZK-EDB proof generation time by proof kind and tree geometry.", nil,
			"kind", "ownership", "q", q, "h", h),
		proveNon: obs.Default.Histogram("desword_proof_generate_seconds",
			"ZK-EDB proof generation time by proof kind and tree geometry.", nil,
			"kind", "nonownership", "q", q, "h", h),
		verifyOwn: obs.Default.Histogram("desword_proof_verify_seconds",
			"ZK-EDB proof verification time by proof kind and tree geometry.", nil,
			"kind", "ownership", "q", q, "h", h),
		verifyNon: obs.Default.Histogram("desword_proof_verify_seconds",
			"ZK-EDB proof verification time by proof kind and tree geometry.", nil,
			"kind", "nonownership", "q", q, "h", h),
	}
	c.pm.CompareAndSwap(nil, m)
	return c.pm.Load()
}

// prove selects the generation histogram for a proof kind.
func (m *proofMetrics) prove(kind ProofKind) *obs.Histogram {
	if kind == ProofOwnership {
		return m.proveOwn
	}
	return m.proveNon
}

// verify selects the verification histogram for a proof kind.
func (m *proofMetrics) verify(kind ProofKind) *obs.Histogram {
	if kind == ProofOwnership {
		return m.verifyOwn
	}
	return m.verifyNon
}
