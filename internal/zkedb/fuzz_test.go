package zkedb

import (
	"context"
	"testing"
)

// FuzzProofUnmarshal hammers the compact binary proof decoder — the one
// parser in the system that consumes bytes from untrusted participants
// before any cryptographic check runs. It must never panic, and any input it
// accepts must re-encode losslessly.
func FuzzProofUnmarshal(f *testing.F) {
	crs, err := CRSGen(TestParams())
	if err != nil {
		f.Fatal(err)
	}
	db := map[string][]byte{"seed-key": []byte("seed-value")}
	_, dec, err := crs.Commit(db, CommitOptions{})
	if err != nil {
		f.Fatal(err)
	}
	own, err := dec.Prove(context.Background(), "seed-key")
	if err != nil {
		f.Fatal(err)
	}
	ownBytes, err := own.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	nOwn, err := dec.Prove(context.Background(), "seed-missing")
	if err != nil {
		f.Fatal(err)
	}
	nOwnBytes, err := nOwn.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ownBytes)
	f.Add(nOwnBytes)
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{2, 0, 0})
	f.Add(ownBytes[:len(ownBytes)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Proof
		if err := p.UnmarshalBinary(data); err != nil {
			return // rejected is fine; panicking is not
		}
		// Accepted inputs must round-trip to the same bytes.
		re, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted proof failed to re-encode: %v", err)
		}
		var p2 Proof
		if err := p2.UnmarshalBinary(re); err != nil {
			t.Fatalf("re-encoded proof failed to decode: %v", err)
		}
	})
}
