package zkedb

import (
	"crypto/sha256"
	"encoding/binary"
)

// commitDRBG is the deterministic randomness stream behind seeded commits
// (CommitOptions.Seed): SHA-256 in counter mode, keyed by the seed and one
// tree position. Keying by position rather than by draw sequence is what
// makes the parallel build order-independent — every worker schedule reads
// the same bytes for the same commitment, so serial and parallel builds are
// byte-identical (pinned by TestCommitParallelByteIdentical).
//
// This is a reproducibility tool, not a CSPRNG for production key material:
// anyone holding the seed can regenerate every commitment's randomness.
type commitDRBG struct {
	key     [sha256.Size]byte
	counter uint64
	buf     []byte
}

// newCommitDRBG derives the stream key as
// H(tag ‖ len(seed) ‖ seed ‖ position), with the position encoded one byte
// per digit exactly as prefixKey does.
func newCommitDRBG(seed []byte, prefix []int) *commitDRBG {
	h := sha256.New()
	h.Write([]byte("zkedb/commit-drbg/v1"))
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(seed)))
	h.Write(lenBuf[:])
	h.Write(seed)
	h.Write([]byte(prefixKey(prefix)))
	d := &commitDRBG{}
	h.Sum(d.key[:0])
	return d
}

// Read implements io.Reader; it never fails.
func (d *commitDRBG) Read(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		if len(d.buf) == 0 {
			var block [sha256.Size + 8]byte
			copy(block[:], d.key[:])
			binary.BigEndian.PutUint64(block[sha256.Size:], d.counter)
			d.counter++
			sum := sha256.Sum256(block[:])
			d.buf = sum[:]
		}
		n := copy(p, d.buf)
		d.buf = d.buf[n:]
		p = p[n:]
	}
	return total, nil
}
