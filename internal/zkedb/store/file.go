package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

// This file implements the durable backend: a single append-only log of
// length-prefixed, CRC-guarded records with explicit commit markers.
//
// Layout:
//
//	header:  "DSWKV1\n"
//	put:     0x01 ‖ uvarint(len key) ‖ key ‖ uvarint(len val) ‖ val ‖ crc32
//	delete:  0x02 ‖ uvarint(len key) ‖ key ‖ crc32
//	commit:  0x03 ‖ uvarint(records in batch) ‖ crc32
//
// Every crc32 (IEEE) covers the record from its type byte up to the
// checksum. A batch is the run of put/delete records since the previous
// commit marker; Flush writes the staged records in sorted key order
// followed by one marker, so a batch is applied all-or-nothing: a reopen
// replays records into a staging set and merges it into the live index only
// at a valid marker. Anything after the last valid marker — a torn write, a
// truncated batch, trailing garbage — is discarded and the file truncated
// back to the last committed byte, which is what makes a mid-batch crash
// recoverable instead of corrupting the tree (FuzzStoreReopen pins this).
//
// The log is append-only: a re-put appends a fresh record and moves the
// in-memory index; stale versions remain in the file until a future
// compaction. Get serves committed records by offset via ReadAt and staged
// records from the pending buffer, so readers always observe their writes.

// File header and record types.
const (
	fileHeader = "DSWKV1\n"

	recPut    = 0x01
	recDelete = 0x02
	recCommit = 0x03
)

// DefaultBatchPuts is the staged-record count that triggers an automatic
// Flush when FileOptions.BatchPuts is left at zero.
const DefaultBatchPuts = 1024

// ErrBadFile reports a store file whose header is not a DSWKV log.
var ErrBadFile = errors.New("store: not a node-store file")

// FileOptions configures a File store.
type FileOptions struct {
	// BatchPuts auto-flushes once this many records are staged. 0 selects
	// DefaultBatchPuts; negative disables auto-flush (explicit Flush only).
	BatchPuts int
	// Sync fsyncs the file on every Flush. Without it a machine crash can
	// lose recently committed batches; a process crash cannot lose anything
	// past the kernel's page cache either way.
	Sync bool
}

// span locates a committed value inside the file.
type span struct {
	off int64
	n   int
}

// File is the append-only durable backend. Safe for concurrent use.
type File struct {
	opts FileOptions
	path string

	mu         sync.Mutex
	f          *os.File            // guarded by mu
	size       int64               // guarded by mu; committed append offset
	index      map[string]span     // guarded by mu
	pendingPut map[string][]byte   // guarded by mu
	pendingDel map[string]struct{} // guarded by mu
	closed     bool                // guarded by mu
}

// OpenFile opens (or creates) a file-backed store at path, replaying every
// committed batch and truncating any torn tail.
func OpenFile(path string, opts FileOptions) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	s := &File{
		opts:       opts,
		path:       path,
		f:          f,
		index:      make(map[string]span),
		pendingPut: make(map[string][]byte),
		pendingDel: make(map[string]struct{}),
	}
	if err := s.replayLocked(); err != nil {
		_ = f.Close()
		return nil, err
	}
	return s, nil
}

// replayLocked scans the log, rebuilding the index from committed batches, and
// truncates the file back to the end of the last valid commit marker.
func (s *File) replayLocked() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat %s: %w", s.path, err)
	}
	if info.Size() == 0 {
		if _, err := s.f.WriteAt([]byte(fileHeader), 0); err != nil {
			return fmt.Errorf("store: writing header: %w", err)
		}
		s.size = int64(len(fileHeader))
		return nil
	}
	header := make([]byte, len(fileHeader))
	if _, err := io.ReadFull(io.NewSectionReader(s.f, 0, int64(len(fileHeader))), header); err != nil || string(header) != fileHeader {
		return fmt.Errorf("%w: %s", ErrBadFile, s.path)
	}

	data := make([]byte, info.Size()-int64(len(fileHeader)))
	if _, err := io.ReadFull(io.NewSectionReader(s.f, int64(len(fileHeader)), int64(len(data))), data); err != nil {
		return fmt.Errorf("store: reading %s: %w", s.path, err)
	}

	base := int64(len(fileHeader))
	committed := int64(0) // offset into data of the last applied marker's end
	staged := make(map[string]*span)
	stagedDel := make(map[string]struct{})
	stagedCount := 0
	off := int64(0)
	for off < int64(len(data)) {
		rec, next, ok := scanRecord(data, off)
		if !ok {
			break // torn or corrupt tail
		}
		switch rec.typ {
		case recPut:
			sp := rec.val
			staged[string(rec.key)] = &sp
			delete(stagedDel, string(rec.key))
			stagedCount++
		case recDelete:
			delete(staged, string(rec.key))
			stagedDel[string(rec.key)] = struct{}{}
			stagedCount++
		case recCommit:
			if rec.count != uint64(stagedCount) {
				// Marker disagrees with the batch it closes: treat as torn.
				off = int64(len(data)) + 1
				break
			}
			for k, sp := range staged {
				s.index[k] = span{off: base + sp.off, n: sp.n}
			}
			for k := range stagedDel {
				delete(s.index, k)
			}
			staged = make(map[string]*span)
			stagedDel = make(map[string]struct{})
			stagedCount = 0
			committed = next
		}
		if off == int64(len(data))+1 {
			break
		}
		off = next
	}
	s.size = base + committed
	if s.size < info.Size() {
		if err := s.f.Truncate(s.size); err != nil {
			return fmt.Errorf("store: truncating torn tail of %s: %w", s.path, err)
		}
	}
	return nil
}

// scannedRecord is one decoded log record.
type scannedRecord struct {
	typ   byte
	key   []byte
	val   span   // for puts: value position relative to data start
	count uint64 // for commit markers
}

// scanRecord decodes the record at data[off:], returning it, the offset of
// the next record, and whether the record was complete and CRC-valid.
func scanRecord(data []byte, off int64) (scannedRecord, int64, bool) {
	var rec scannedRecord
	i := off
	if i >= int64(len(data)) {
		return rec, 0, false
	}
	rec.typ = data[i]
	i++
	readUvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(data[i:])
		if n <= 0 {
			return 0, false
		}
		i += int64(n)
		return v, true
	}
	readBytes := func() ([]byte, bool) {
		n, ok := readUvarint()
		if !ok || n > uint64(int64(len(data))-i) {
			return nil, false
		}
		b := data[i : i+int64(n)]
		i += int64(n)
		return b, true
	}
	switch rec.typ {
	case recPut:
		key, ok := readBytes()
		if !ok {
			return rec, 0, false
		}
		rec.key = key
		n, ok := readUvarint()
		if !ok || n > uint64(int64(len(data))-i) {
			return rec, 0, false
		}
		rec.val = span{off: i, n: int(n)}
		i += int64(n)
	case recDelete:
		key, ok := readBytes()
		if !ok {
			return rec, 0, false
		}
		rec.key = key
	case recCommit:
		n, ok := readUvarint()
		if !ok {
			return rec, 0, false
		}
		rec.count = n
	default:
		return rec, 0, false
	}
	if int64(len(data))-i < 4 {
		return rec, 0, false
	}
	want := binary.BigEndian.Uint32(data[i : i+4])
	if crc32.ChecksumIEEE(data[off:i]) != want {
		return rec, 0, false
	}
	return rec, i + 4, true
}

// Name implements KV.
func (s *File) Name() string { return "file" }

// Get implements KV: staged writes first, then the committed index.
func (s *File) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, fmt.Errorf("store: %s is closed", s.path)
	}
	if val, ok := s.pendingPut[key]; ok {
		out := make([]byte, len(val))
		copy(out, val)
		return out, true, nil
	}
	if _, ok := s.pendingDel[key]; ok {
		return nil, false, nil
	}
	sp, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	out := make([]byte, sp.n)
	if _, err := s.f.ReadAt(out, sp.off); err != nil {
		return nil, false, fmt.Errorf("store: reading %s at %d: %w", s.path, sp.off, err)
	}
	return out, true, nil
}

// Put implements KV.
func (s *File) Put(key string, val []byte) error {
	cp := make([]byte, len(val))
	copy(cp, val)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("store: %s is closed", s.path)
	}
	s.pendingPut[key] = cp
	delete(s.pendingDel, key)
	full := s.batchFullLocked()
	s.mu.Unlock()
	if full {
		return s.Flush()
	}
	return nil
}

// Delete implements KV.
func (s *File) Delete(key string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("store: %s is closed", s.path)
	}
	delete(s.pendingPut, key)
	s.pendingDel[key] = struct{}{}
	full := s.batchFullLocked()
	s.mu.Unlock()
	if full {
		return s.Flush()
	}
	return nil
}

// batchFullLocked reports whether the staged batch has reached the auto-flush
// threshold. Caller holds s.mu.
func (s *File) batchFullLocked() bool {
	if s.opts.BatchPuts < 0 {
		return false
	}
	limit := s.opts.BatchPuts
	if limit == 0 {
		limit = DefaultBatchPuts
	}
	return len(s.pendingPut)+len(s.pendingDel) >= limit
}

// List implements KV.
func (s *File) List(prefix string) ([]string, error) {
	s.mu.Lock()
	keys := make([]string, 0, len(s.index)+len(s.pendingPut))
	for k := range s.index {
		if _, del := s.pendingDel[k]; del {
			continue
		}
		if _, staged := s.pendingPut[k]; staged {
			continue
		}
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	for k := range s.pendingPut {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys, nil
}

// Flush implements KV: it appends the staged batch — records in sorted key
// order, then one commit marker — and merges it into the live index.
func (s *File) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *File) flushLocked() error {
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.path)
	}
	total := len(s.pendingPut) + len(s.pendingDel)
	if total == 0 {
		return nil
	}
	putKeys := make([]string, 0, len(s.pendingPut))
	for k := range s.pendingPut {
		putKeys = append(putKeys, k)
	}
	sort.Strings(putKeys)
	delKeys := make([]string, 0, len(s.pendingDel))
	for k := range s.pendingDel {
		delKeys = append(delKeys, k)
	}
	sort.Strings(delKeys)

	buf := make([]byte, 0, 1024)
	spans := make(map[string]span, len(putKeys))
	appendRecord := func(build func([]byte) []byte) {
		start := len(buf)
		buf = build(buf)
		var crc [4]byte
		binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf[start:]))
		buf = append(buf, crc[:]...)
	}
	for _, k := range putKeys {
		val := s.pendingPut[k]
		appendRecord(func(b []byte) []byte {
			b = append(b, recPut)
			b = binary.AppendUvarint(b, uint64(len(k)))
			b = append(b, k...)
			b = binary.AppendUvarint(b, uint64(len(val)))
			spans[k] = span{off: s.size + int64(len(b)), n: len(val)}
			return append(b, val...)
		})
	}
	for _, k := range delKeys {
		appendRecord(func(b []byte) []byte {
			b = append(b, recDelete)
			b = binary.AppendUvarint(b, uint64(len(k)))
			return append(b, k...)
		})
	}
	appendRecord(func(b []byte) []byte {
		b = append(b, recCommit)
		return binary.AppendUvarint(b, uint64(total))
	})

	if _, err := s.f.WriteAt(buf, s.size); err != nil {
		return fmt.Errorf("store: appending batch to %s: %w", s.path, err)
	}
	if s.opts.Sync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing %s: %w", s.path, err)
		}
	}
	s.size += int64(len(buf))
	for k, sp := range spans {
		s.index[k] = sp
	}
	for _, k := range delKeys {
		delete(s.index, k)
	}
	s.pendingPut = make(map[string][]byte)
	s.pendingDel = make(map[string]struct{})

	m := fileMetrics()
	m.batches.Inc()
	m.batchPuts.Add(uint64(len(putKeys)))
	m.bytesWritten.Add(uint64(len(buf)))
	return nil
}

// Close implements KV: flush, then release the file handle.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	s.closed = true
	return s.f.Close()
}

var _ KV = (*File)(nil)
