// Package store provides the pluggable node-store backends the ZK-EDB
// keeps its commitment tree in (DESIGN.md §13).
//
// A KV is a flat namespace of byte records keyed by generalized tree index
// in the merkledb idiom: a one-letter namespace plus the digit-path prefix
// of the tree position ("n/" nodes, "s/" soft entries, "d/" database
// entries, "m/" metadata — see package zkedb for the encodings). The store
// knows nothing about the tree; it only promises durable, batch-atomic
// puts, so the zkedb layer above can hydrate nodes lazily during proofs
// instead of holding the whole tree in memory.
//
// Two backends ship:
//
//   - Mem: the legacy behaviour — every record in one in-process map.
//   - File: an append-only log with batched puts and crash-safe commit
//     markers; a reopen replays only fully committed batches and truncates
//     any torn tail (see file.go).
package store

import (
	"sort"
	"sync"

	"desword/internal/obs"
)

// KV is the pluggable node-store interface. Implementations must be safe
// for concurrent use: the parallel commit builder puts from many
// goroutines, and concurrent proofs get while a batch is pending.
//
// Put and Delete stage into the current batch; records become durable (and
// survive a crash, for durable backends) only once Flush commits the batch.
// Get and List observe staged writes immediately — the batch is a
// write-through buffer, not a fork.
type KV interface {
	// Name identifies the backend ("mem", "file") for metrics and spans.
	Name() string
	// Get returns the record for key, or ok=false if absent.
	Get(key string) ([]byte, bool, error)
	// Put stages a record into the current batch.
	Put(key string, val []byte) error
	// Delete stages a removal into the current batch.
	Delete(key string) error
	// List returns every live key with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Flush atomically commits the staged batch.
	Flush() error
	// Close flushes and releases the backend.
	Close() error
}

// metrics are the process-wide store counters, labelled by backend.
type metrics struct {
	batches      *obs.Counter
	batchPuts    *obs.Counter
	bytesWritten *obs.Counter
}

func newMetrics(backend string) *metrics {
	return &metrics{
		batches: obs.Default.Counter("desword_zkedb_store_batches",
			"ZK-EDB node-store batch commits (Flush calls that wrote records).",
			"backend", backend),
		batchPuts: obs.Default.Counter("desword_zkedb_store_batch_puts",
			"ZK-EDB node-store records written through batched puts.",
			"backend", backend),
		bytesWritten: obs.Default.Counter("desword_zkedb_store_bytes_written",
			"ZK-EDB node-store bytes appended to the backing medium.",
			"backend", backend),
	}
}

var (
	memMetrics  = sync.OnceValue(func() *metrics { return newMetrics("mem") })
	fileMetrics = sync.OnceValue(func() *metrics { return newMetrics("file") })
)

// Mem is the in-memory backend: one map, no durability. It is the default
// store and reproduces the pre-store behaviour of the ZK-EDB exactly.
type Mem struct {
	mu sync.RWMutex
	m  map[string][]byte // guarded by mu
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{m: make(map[string][]byte)}
}

// Name implements KV.
func (s *Mem) Name() string { return "mem" }

// Get implements KV.
func (s *Mem) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	val, ok := s.m[key]
	if !ok {
		return nil, false, nil
	}
	out := make([]byte, len(val))
	copy(out, val)
	return out, true, nil
}

// Put implements KV.
func (s *Mem) Put(key string, val []byte) error {
	cp := make([]byte, len(val))
	copy(cp, val)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
	m := memMetrics()
	m.batchPuts.Inc()
	m.bytesWritten.Add(uint64(len(key) + len(val)))
	return nil
}

// Delete implements KV.
func (s *Mem) Delete(key string) error {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
	return nil
}

// List implements KV.
func (s *Mem) List(prefix string) ([]string, error) {
	s.mu.RLock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys, nil
}

// Flush implements KV; the map is always consistent, so it only counts the
// batch boundary.
func (s *Mem) Flush() error {
	memMetrics().batches.Inc()
	return nil
}

// Close implements KV.
func (s *Mem) Close() error { return nil }

var _ KV = (*Mem)(nil)
