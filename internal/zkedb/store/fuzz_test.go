package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreReopen hammers the log replay path with arbitrary file contents —
// torn tails, truncated batches, bit flips, stray markers. Replay must never
// panic; when it accepts a file, the recovered store must be coherent (Get
// agrees with List) and must keep accepting committed batches that survive
// another reopen.
func FuzzStoreReopen(f *testing.F) {
	// Seed with a real two-batch log and mutations of it.
	seedPath := filepath.Join(f.TempDir(), "seed.kv")
	s, err := OpenFile(seedPath, FileOptions{})
	if err != nil {
		f.Fatal(err)
	}
	for _, k := range []string{"n/", "n/a", "s/ab", "d/key-1", "m/params"} {
		if err := s.Put(k, []byte("value of "+k)); err != nil {
			f.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		f.Fatal(err)
	}
	if err := s.Delete("s/ab"); err != nil {
		f.Fatal(err)
	}
	if err := s.Put("n/b", []byte("second batch")); err != nil {
		f.Fatal(err)
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])     // torn commit marker
	f.Add(seed[:len(seed)*2/3])   // truncated mid-batch
	f.Add(seed[:len(fileHeader)]) // header only
	f.Add([]byte{})
	f.Add([]byte("DSWKV1\n\x01\x03n/x\x05hello"))
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.kv")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		kv, err := OpenFile(path, FileOptions{})
		if err != nil {
			return // refused: acceptable for arbitrary bytes
		}
		defer kv.Close()
		keys, err := kv.List("")
		if err != nil {
			t.Fatalf("List on recovered store: %v", err)
		}
		for _, k := range keys {
			if _, ok, err := kv.Get(k); err != nil || !ok {
				t.Fatalf("Get(%q) = ok=%v err=%v for listed key", k, ok, err)
			}
		}
		// The recovered store must still take writes that survive a reopen.
		if err := kv.Put("n/fuzz-probe", []byte("probe")); err != nil {
			t.Fatalf("Put on recovered store: %v", err)
		}
		if err := kv.Close(); err != nil {
			t.Fatalf("Close on recovered store: %v", err)
		}
		re, err := OpenFile(path, FileOptions{})
		if err != nil {
			t.Fatalf("reopen after recovery: %v", err)
		}
		defer re.Close()
		if _, ok, err := re.Get("n/fuzz-probe"); err != nil || !ok {
			t.Fatalf("probe record lost across reopen: ok=%v err=%v", ok, err)
		}
	})
}
