package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// openTestFile opens a file store under t.TempDir and registers cleanup.
func openTestFile(t *testing.T, opts FileOptions) (*File, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.kv")
	s, err := OpenFile(path, opts)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, path
}

// TestKVContract runs the behaviour both backends must share: staged writes
// are read-your-own, deletes hide records, List is sorted and
// prefix-filtered.
func TestKVContract(t *testing.T) {
	backends := []struct {
		name string
		open func(t *testing.T) KV
	}{
		{"mem", func(t *testing.T) KV { return NewMem() }},
		{"file", func(t *testing.T) KV { s, _ := openTestFile(t, FileOptions{BatchPuts: -1}); return s }},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			kv := b.open(t)
			if _, ok, err := kv.Get("missing"); err != nil || ok {
				t.Fatalf("Get(missing) = ok=%v err=%v, want absent", ok, err)
			}
			puts := map[string]string{
				"n/a": "node-a", "n/ab": "node-ab", "s/a": "soft-a", "m/params": "geometry",
			}
			for k, v := range puts {
				if err := kv.Put(k, []byte(v)); err != nil {
					t.Fatalf("Put(%s): %v", k, err)
				}
			}
			// Staged writes must be visible before any Flush.
			for k, v := range puts {
				got, ok, err := kv.Get(k)
				if err != nil || !ok || string(got) != v {
					t.Fatalf("Get(%s) = %q ok=%v err=%v, want %q", k, got, ok, err, v)
				}
			}
			keys, err := kv.List("n/")
			if err != nil {
				t.Fatalf("List: %v", err)
			}
			if want := []string{"n/a", "n/ab"}; !reflect.DeepEqual(keys, want) {
				t.Fatalf("List(n/) = %v, want %v", keys, want)
			}
			if err := kv.Delete("n/ab"); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if _, ok, _ := kv.Get("n/ab"); ok {
				t.Fatal("deleted key still visible")
			}
			if err := kv.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			keys, err = kv.List("n/")
			if err != nil {
				t.Fatalf("List after flush: %v", err)
			}
			if want := []string{"n/a"}; !reflect.DeepEqual(keys, want) {
				t.Fatalf("List(n/) after delete = %v, want %v", keys, want)
			}
			// Overwrite moves the record, not duplicates it.
			if err := kv.Put("n/a", []byte("node-a-v2")); err != nil {
				t.Fatalf("re-Put: %v", err)
			}
			got, ok, err := kv.Get("n/a")
			if err != nil || !ok || string(got) != "node-a-v2" {
				t.Fatalf("Get after overwrite = %q ok=%v err=%v", got, ok, err)
			}
		})
	}
}

// TestFileReopen pins durability: committed batches survive a close/reopen
// byte for byte, including deletes and overwrites.
func TestFileReopen(t *testing.T) {
	s, path := openTestFile(t, FileOptions{})
	records := map[string]string{"n/": "root", "n/a": "child", "d/key": "value", "m/seed": "seed"}
	for k, v := range records {
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := s.Put("n/gone", []byte("ephemeral")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := s.Delete("n/gone"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Put("n/a", []byte("child-v2")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	records["n/a"] = "child-v2"
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	for k, v := range records {
		got, ok, err := re.Get(k)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("after reopen Get(%s) = %q ok=%v err=%v, want %q", k, got, ok, err, v)
		}
	}
	if _, ok, _ := re.Get("n/gone"); ok {
		t.Fatal("deleted record resurrected by reopen")
	}
}

// TestFileUncommittedBatchNotDurable pins the batch boundary: records staged
// but never flushed are invisible to a second handle replaying the log —
// exactly what a crashed process would leave behind.
func TestFileUncommittedBatchNotDurable(t *testing.T) {
	s, path := openTestFile(t, FileOptions{BatchPuts: -1})
	if err := s.Put("n/committed", []byte("yes")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := s.Put("n/staged", []byte("no")); err != nil {
		t.Fatalf("Put: %v", err)
	}

	crashed, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer crashed.Close()
	if _, ok, _ := crashed.Get("n/committed"); !ok {
		t.Fatal("committed record lost")
	}
	if _, ok, _ := crashed.Get("n/staged"); ok {
		t.Fatal("staged-only record survived the simulated crash")
	}
}

// TestFileAutoFlush pins the BatchPuts threshold: the Nth staged record
// commits the batch without an explicit Flush.
func TestFileAutoFlush(t *testing.T) {
	s, path := openTestFile(t, FileOptions{BatchPuts: 3})
	for _, k := range []string{"n/a", "n/b", "n/c"} {
		if err := s.Put(k, []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	re, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	keys, err := re.List("n/")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(keys) != 3 {
		t.Fatalf("auto-flush wrote %d records, want 3", len(keys))
	}
}

// TestFileTornTailTruncated pins crash recovery: garbage appended after the
// last commit marker is discarded on reopen and the file truncated back to
// the committed prefix, after which the store accepts new batches.
func TestFileTornTailTruncated(t *testing.T) {
	s, path := openTestFile(t, FileOptions{})
	if err := s.Put("n/good", []byte("kept")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	committed, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("append open: %v", err)
	}
	if _, err := f.Write([]byte{recPut, 0xff, 0x03, 0x01}); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if got, ok, _ := re.Get("n/good"); !ok || string(got) != "kept" {
		t.Fatalf("committed record lost to torn tail: %q ok=%v", got, ok)
	}
	if err := re.Put("n/after", []byte("new")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(after) <= len(committed) {
		t.Fatalf("recovered file did not grow past committed prefix: %d <= %d", len(after), len(committed))
	}
	if string(after[:len(committed)]) != string(committed) {
		t.Fatal("recovery rewrote the committed prefix")
	}
}

// TestFileTruncatedBatchDropped pins batch atomicity: a batch whose commit
// marker was cut off is dropped whole, leaving earlier batches intact.
func TestFileTruncatedBatchDropped(t *testing.T) {
	s, path := openTestFile(t, FileOptions{})
	if err := s.Put("n/first", []byte("batch1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := s.Put("n/second", []byte("batch2")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	// Cut into batch2's commit marker (marker = 1 type + 1 uvarint + 4 crc).
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	re, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if _, ok, _ := re.Get("n/first"); !ok {
		t.Fatal("batch1 lost")
	}
	if _, ok, _ := re.Get("n/second"); ok {
		t.Fatal("half-committed batch2 applied")
	}
}

// TestFileCommitCountMismatch pins the marker sanity check: a CRC-valid
// commit marker whose record count disagrees with the batch it closes is
// treated as a torn tail, not applied.
func TestFileCommitCountMismatch(t *testing.T) {
	s, path := openTestFile(t, FileOptions{})
	if err := s.Put("n/base", []byte("ok")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Append a stray marker claiming a 5-record batch where none was staged.
	marker := []byte{recCommit}
	marker = binary.AppendUvarint(marker, 5)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(marker))
	marker = append(marker, crc[:]...)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("append open: %v", err)
	}
	if _, err := f.Write(marker); err != nil {
		t.Fatalf("append marker: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if _, ok, _ := re.Get("n/base"); !ok {
		t.Fatal("valid batch before the stray marker was lost")
	}
}

// TestFileBadHeader pins that foreign files are refused, not replayed.
func TestFileBadHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-store")
	if err := os.WriteFile(path, []byte("{\"json\": true}\n"), 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := OpenFile(path, FileOptions{}); !errors.Is(err, ErrBadFile) {
		t.Fatalf("OpenFile(foreign) = %v, want ErrBadFile", err)
	}
}

// TestFileClosedRejects pins the closed-store error paths.
func TestFileClosedRejects(t *testing.T) {
	s, _ := openTestFile(t, FileOptions{})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Put("n/x", nil); err == nil {
		t.Fatal("Put on closed store succeeded")
	}
	if _, _, err := s.Get("n/x"); err == nil {
		t.Fatal("Get on closed store succeeded")
	}
}
