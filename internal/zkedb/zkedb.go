// Package zkedb implements a zero-knowledge elementary database (ZK-EDB) in
// the tree paradigm of Micali–Rabin–Kilian and Chase et al., with q-ary
// fan-out and constant-size per-level openings as in Catalano–Fiore and
// Libert–Yung — the primitive DE-Sword (ICDCS 2017, §IV.A) builds its product
// ownership credentials on.
//
// An elementary database D is a set of key/value pairs. The committer
// produces a single constant-size commitment to D and can later prove, for
// any key x, either that D(x) = y (an ownership proof, in DE-Sword's terms)
// or that x ∉ [D] (a non-ownership proof), revealing nothing else about D —
// not even its cardinality.
//
// Construction. Keys are hashed to KeyBits-bit digests, which index the
// leaves of a q-ary tree of height H (q^H ≥ 2^KeyBits). A leaf holding key x
// carries a hard trapdoor mercurial commitment (package mercurial) to
// H(x, D(x)); each internal node carries a hard q-mercurial commitment
// (package qmercurial) to the vector of its children's hashes. Child slots
// whose subtree contains no keys hold soft mercurial commitments: they commit
// to nothing, and during a non-ownership proof the prover extends a chain of
// fresh soft commitments down to the queried leaf and teases it to a
// designated "absent" message. Soft chains are cached per tree position so
// repeated queries answer consistently.
//
// Soundness: the root is hard, hard commitments tease only to their committed
// message, the committed slot message fixes the child commitment by collision
// resistance, and soft commitments can never be hard-opened — so no
// polynomial-time committer can produce both an ownership and a
// non-ownership proof for the same key (DE-Sword Claim 1), nor two ownership
// proofs with different values (Claim 2).
//
// The four algorithms match the paper's ZK-EDB API: CRSGen, (crs) Commit
// [EDB-commit], (dec) Prove [EDB-proof], (crs) Verify [EDB-Verify]. Beyond
// the paper, Update (update.go) revises a commitment incrementally, and the
// tree itself lives in a pluggable node store (package zkedb/store) with
// lazy hydration, so a database is no longer bounded by RAM (DESIGN.md §13).
package zkedb

import (
	"container/list"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"desword/internal/mercurial"
	"desword/internal/obs"
	"desword/internal/qmercurial"
	"desword/internal/rsavc"
	"desword/internal/trace"
	"desword/internal/zkedb/store"
)

// slotMessageBits is the size of the hash binding a child commitment into
// its parent's vector slot.
const slotMessageBits = 128

// Errors reported by this package.
var (
	ErrBadParams       = errors.New("zkedb: invalid parameters")
	ErrDigestCollision = errors.New("zkedb: two keys share a digest path")
	ErrBadProof        = errors.New("zkedb: proof rejected")
	ErrUnknownKey      = errors.New("zkedb: key not covered by this decommitment")
	ErrStoreInUse      = errors.New("zkedb: store already holds a committed tree")
)

// Params fixes the tree geometry. Q is the branching factor (a power of
// two), H the tree height, KeyBits the digest length; Q^H must cover
// 2^KeyBits. ModulusBits sizes the RSA layer of the q-mercurial commitments.
type Params struct {
	Q           int `json:"q"`
	H           int `json:"h"`
	KeyBits     int `json:"key_bits"`
	ModulusBits int `json:"modulus_bits"`
}

// DefaultParams returns the production geometry: a 16-ary tree of height 32
// covering 128-bit digests, the middle row of the paper's Table II.
func DefaultParams() Params {
	return Params{Q: 16, H: 32, KeyBits: 128, ModulusBits: rsavc.DefaultModulusBits}
}

// TestParams returns a small geometry (24-bit digests) for fast unit tests.
func TestParams() Params {
	return Params{Q: 8, H: 8, KeyBits: 24, ModulusBits: 512}
}

// Validate checks the geometry invariants.
func (p Params) Validate() error {
	if p.Q < 2 || p.Q&(p.Q-1) != 0 {
		return fmt.Errorf("%w: Q must be a power of two ≥ 2, got %d", ErrBadParams, p.Q)
	}
	if p.H < 1 {
		return fmt.Errorf("%w: H must be positive, got %d", ErrBadParams, p.H)
	}
	if p.KeyBits < 8 || p.KeyBits > 256 {
		return fmt.Errorf("%w: KeyBits must be in [8,256], got %d", ErrBadParams, p.KeyBits)
	}
	if p.H*p.digitBits() < p.KeyBits {
		return fmt.Errorf("%w: Q^H = 2^%d does not cover 2^%d keys",
			ErrBadParams, p.H*p.digitBits(), p.KeyBits)
	}
	if p.ModulusBits < 256 {
		return fmt.Errorf("%w: modulus too small: %d bits", ErrBadParams, p.ModulusBits)
	}
	return nil
}

// digitBits returns log2(Q).
func (p Params) digitBits() int {
	bits := 0
	for q := p.Q; q > 1; q >>= 1 {
		bits++
	}
	return bits
}

// CRS is the common reference string: tree geometry plus the q-mercurial
// commitment key. DE-Sword's trusted proxy runs CRSGen and publishes the
// result as the public parameter ps.
type CRS struct {
	Params Params                `json:"params"`
	Key    *qmercurial.PublicKey `json:"key"`

	// pm caches the proof timing histograms for this geometry (metrics.go).
	pm atomic.Pointer[proofMetrics]
}

// CRSGen generates a common reference string for the given geometry
// (the paper's CRS-Gen(λ) → σ).
func CRSGen(p Params) (*CRS, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	key, err := qmercurial.KGen(p.Q, slotMessageBits, p.ModulusBits)
	if err != nil {
		return nil, fmt.Errorf("zkedb: generating qTMC key: %w", err)
	}
	return &CRS{Params: p, Key: key}, nil
}

// Rehydrate restores cached key material after JSON decoding.
func (c *CRS) Rehydrate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Key == nil {
		return errors.New("zkedb: CRS missing commitment key")
	}
	return c.Key.Rehydrate()
}

// Commitment is the constant-size database commitment (the root node's
// q-mercurial commitment).
type Commitment struct {
	Root qmercurial.Commitment `json:"root"`
}

// Equal reports whether two commitments are identical.
func (c Commitment) Equal(o Commitment) bool { return c.Root.Equal(o.Root) }

// Bytes returns a canonical encoding of the commitment.
func (c Commitment) Bytes() []byte { return c.Root.Bytes() }

// digest hashes a key to its KeyBits-bit digest.
func (c *CRS) digest(key string) []byte {
	sum := sha256.Sum256([]byte("zkedb/key/" + key))
	nBytes := (c.Params.KeyBits + 7) / 8
	d := sum[:nBytes]
	// Mask trailing bits beyond KeyBits so the digest is exactly KeyBits wide.
	if rem := c.Params.KeyBits % 8; rem != 0 {
		masked := make([]byte, nBytes)
		copy(masked, d)
		masked[nBytes-1] &= byte(0xff << (8 - rem))
		return masked
	}
	out := make([]byte, nBytes)
	copy(out, d)
	return out
}

// digits expands a digest into H base-Q digits, MSB first. Bit positions at
// or beyond KeyBits read as zero.
func (c *CRS) digits(digest []byte) []int {
	b := c.Params.digitBits()
	out := make([]int, c.Params.H)
	for level := 0; level < c.Params.H; level++ {
		v := 0
		for k := 0; k < b; k++ {
			bitPos := level*b + k
			bit := 0
			if byteIdx := bitPos / 8; byteIdx < len(digest) {
				bit = int(digest[byteIdx]>>(7-bitPos%8)) & 1
			}
			v = v<<1 | bit
		}
		out[level] = v
	}
	return out
}

// slotHash binds a child commitment into its parent's vector slot: the
// truncated hash of the child's canonical encoding.
func slotHash(child mercurial.Commitment) *big.Int {
	sum := sha256.Sum256(child.Bytes())
	return new(big.Int).SetBytes(sum[:slotMessageBits/8])
}

// leafMessage is the mercurial message a present leaf hard-commits to.
func (c *CRS) leafMessage(key string, value []byte) *big.Int {
	return c.Key.TMC.Group().HashToScalar([]byte("zkedb/leaf"), []byte(key), value)
}

// absentMessage is the designated tease message for an absent leaf.
func (c *CRS) absentMessage(key string) *big.Int {
	return c.Key.TMC.Group().HashToScalar([]byte("zkedb/absent"), []byte(key))
}

// node is a hydrated tree node. Internal nodes (level < H) carry a hard
// q-mercurial commitment and the sorted list of occupied child slots; the
// leaf level (level == H) carries a hard mercurial commitment to the
// key/value. Children are NOT held by pointer: the prover resolves them by
// tree position through the node store, hydrating lazily during proofs.
// Nodes are immutable once built — Update replaces touched nodes wholesale.
type node struct {
	level int
	leaf  bool
	slots []int // sorted occupied child slots (internal nodes only)

	qCom qmercurial.Commitment
	qDec qmercurial.HardDecommit

	leafCom   mercurial.Commitment
	leafDec   mercurial.HardDecommit
	leafKey   string
	leafValue []byte
}

// hasSlot reports whether the internal node has a committed child at slot.
func (n *node) hasSlot(slot int) bool {
	i := sort.SearchInts(n.slots, slot)
	return i < len(n.slots) && n.slots[i] == slot
}

// commitment returns the node's mercurial-layer commitment regardless of
// whether it is internal or a leaf.
func (n *node) commitment() mercurial.Commitment {
	if n.leaf {
		return n.leafCom
	}
	return n.qCom.MC
}

// softEntry is a soft commitment pinned to a tree position, created either at
// commit time (empty child slots of materialized nodes) or lazily during
// non-ownership proofs.
type softEntry struct {
	com mercurial.Commitment
	dec mercurial.SoftDecommit
}

// cacheSlot is one resident entry of the hydrated-state LRU: a node or a
// soft entry, keyed by namespaced store key.
type cacheSlot struct {
	key string
	n   *node
	s   *softEntry
}

// Decommitment is the prover's secret state (the paper's Dec / DE-Sword's
// DPOC): the committed tree and database, resident in a pluggable node
// store, plus a bounded cache of hydrated nodes and position-pinned soft
// commitments. Safe for concurrent Prove calls; Update excludes proofs via
// an internal tree lock.
type Decommitment struct {
	crs  *CRS
	kv   store.KV
	seed []byte

	// treeMu orders tree mutation against readers: Prove and MarshalJSON
	// hold it shared, Update exclusively.
	treeMu sync.RWMutex

	// mu guards the hydrated-state cache below (and soft-entry creation).
	mu    sync.Mutex
	bound int                      // max resident cache entries; 0 = unbounded
	ll    *list.List               // guarded by mu; front = most recently used
	ents  map[string]*list.Element // guarded by mu
	root  *node                    // pinned: never evicted, resolved without the store
	cm    *cacheMetrics
}

// Params exposes the tree geometry this decommitment was committed under,
// for callers annotating telemetry about proofs they hold.
func (d *Decommitment) Params() Params { return d.crs.Params }

// Store exposes the node store backing this decommitment.
func (d *Decommitment) Store() store.KV { return d.kv }

// Commitment returns the database commitment this decommitment opens — the
// root node's q-mercurial commitment. It reflects the latest Update.
func (d *Decommitment) Commitment() Commitment {
	d.treeMu.RLock()
	defer d.treeMu.RUnlock()
	return Commitment{Root: d.root.qCom}
}

// newDecommitment wires an empty prover state over kv.
func newDecommitment(crs *CRS, kv store.KV, seed []byte, bound int) *Decommitment {
	return &Decommitment{
		crs:   crs,
		kv:    kv,
		seed:  seed,
		bound: bound,
		ll:    list.New(),
		ents:  make(map[string]*list.Element),
		cm:    cacheMetricsFor(kv.Name()),
	}
}

type keyItem struct {
	key    string
	value  []byte
	digits []int
}

// CommitOptions configures Commit. The zero value selects the defaults:
// one worker per CPU, fresh crypto/rand commitment randomness, an in-memory
// node store, and an unbounded hydrated-node cache.
type CommitOptions struct {
	// Workers bounds the worker pool fanning the q-ary subtree build out
	// across slots. 0 selects runtime.GOMAXPROCS(0); 1 forces the serial
	// build.
	Workers int
	// Seed, when non-nil, derives every commitment's randomness from a
	// deterministic generator keyed by (Seed, tree position) instead of
	// crypto/rand, making the build reproducible bit for bit at any worker
	// count. Position keying means no draw depends on build order, which is
	// what lets the parallel build match the serial one exactly — and what
	// lets Update recompute a touched path to the same bytes a fresh build
	// would produce. A seeded commitment forfeits hiding against anyone
	// holding the seed; it exists for tests and byte-identity pinning, not
	// production. The seed is retained in the decommitment state (it is as
	// secret as the decommitment itself).
	Seed []byte
	// Store, when non-nil, is the node store the committed tree is written
	// to — typically a *store.File so the tree survives restarts and can be
	// reopened with OpenDecommitment. nil selects a fresh in-memory store.
	// The store must be empty: committing into a store that already holds a
	// tree returns ErrStoreInUse.
	Store store.KV
	// CacheNodes bounds the resident hydrated-state cache (nodes + soft
	// entries). 0 keeps everything resident (the legacy behaviour, right
	// for the in-memory backend); with a file store a bound keeps peak
	// memory proportional to the working set instead of the tree.
	CacheNodes int
}

// workerCount resolves the effective pool size.
func (o CommitOptions) workerCount() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Commit commits to the database db (the paper's EDB-commit(D, σ) →
// (Com, Dec)). The commitment hides everything about db, including its size.
// Subtrees of each node build in parallel on a bounded worker pool; per-slot
// openings are independent (Catalano–Fiore), so the fan-out changes nothing
// about the output. Pass CommitOptions{} for the defaults.
func (c *CRS) Commit(db map[string][]byte, opts CommitOptions) (Commitment, *Decommitment, error) {
	kv := opts.Store
	if kv == nil {
		kv = store.NewMem()
	}
	if _, ok, err := kv.Get(metaParamsKey); err != nil {
		return Commitment{}, nil, fmt.Errorf("zkedb: probing store: %w", err)
	} else if ok {
		return Commitment{}, nil, ErrStoreInUse
	}
	items := make([]keyItem, 0, len(db))
	for k, v := range db {
		items = append(items, keyItem{key: k, value: v, digits: c.digits(c.digest(k))})
	}
	// Deterministic build order keeps error behaviour reproducible.
	sort.Slice(items, func(i, j int) bool { return items[i].key < items[j].key })
	dec := newDecommitment(c, kv, opts.Seed, opts.CacheNodes)
	if err := dec.writeMeta(); err != nil {
		return Commitment{}, nil, err
	}
	for _, it := range items {
		cp := make([]byte, len(it.value))
		copy(cp, it.value)
		if err := kv.Put(dbStoreKey(it.key), cp); err != nil {
			return Commitment{}, nil, fmt.Errorf("zkedb: storing db entry: %w", err)
		}
	}
	b := &builder{crs: c, dec: dec, seed: opts.Seed}
	if spare := opts.workerCount() - 1; spare > 0 {
		b.sem = make(chan struct{}, spare)
	}
	root, err := b.build(0, nil, items)
	if err != nil {
		return Commitment{}, nil, err
	}
	dec.root = root
	if err := kv.Flush(); err != nil {
		return Commitment{}, nil, fmt.Errorf("zkedb: flushing store: %w", err)
	}
	return Commitment{Root: root.qCom}, dec, nil
}

// builder carries the per-build state shared by Commit and Update: the
// worker-pool semaphore and the randomness mode.
type builder struct {
	crs  *CRS
	dec  *Decommitment
	seed []byte
	// sem holds the spare worker tokens (pool size minus the calling
	// goroutine). Child builds try-acquire a token and fall back to building
	// inline, so recursion can never deadlock on pool exhaustion.
	sem chan struct{}
}

// rnd returns the randomness source for the commitment pinned at the given
// tree position: crypto/rand by default, a position-keyed deterministic
// stream in seeded mode. Exactly one commitment is ever drawn per position
// (a slot holds either a child subtree or a pinned soft commitment), so
// streams are never shared.
func (b *builder) rnd(prefix []int) io.Reader {
	if b.seed == nil {
		return rand.Reader
	}
	return newCommitDRBG(b.seed, prefix)
}

// build materializes the subtree at the given level/prefix covering items,
// registering every built node (and pinned soft commitment) in the
// decommitment's store and cache.
func (b *builder) build(level int, prefix []int, items []keyItem) (*node, error) {
	c := b.crs
	if level == c.Params.H {
		if len(items) != 1 {
			return nil, fmt.Errorf("%w: %d keys at leaf %v", ErrDigestCollision, len(items), prefix)
		}
		it := items[0]
		com, leafDec := c.Key.TMC.HComFrom(b.rnd(prefix), c.leafMessage(it.key, it.value))
		n := &node{
			level:     level,
			leaf:      true,
			leafCom:   com,
			leafDec:   leafDec,
			leafKey:   it.key,
			leafValue: it.value,
		}
		if err := b.dec.putNode(prefixKey(prefix), n); err != nil {
			return nil, err
		}
		return n, nil
	}
	bySlot := make(map[int][]keyItem)
	for _, it := range items {
		d := it.digits[level]
		bySlot[d] = append(bySlot[d], it)
	}
	n := &node{level: level, slots: make([]int, 0, len(bySlot))}
	messages := make([]*big.Int, c.Params.Q)
	// Children land in a slice, not the cache map, so spawned workers write
	// disjoint indices; slot messages are filled after the join below.
	children := make([]*node, c.Params.Q)
	errs := make([]error, c.Params.Q)
	var wg sync.WaitGroup
	for slot := 0; slot < c.Params.Q; slot++ {
		childPrefix := append(append(make([]int, 0, level+1), prefix...), slot)
		slotItems, ok := bySlot[slot]
		if !ok {
			// Empty subtree: pin a soft commitment to this position now so the
			// parent's vector is fixed; non-ownership proofs extend from here.
			com, sdec := c.Key.TMC.SComFrom(b.rnd(childPrefix))
			if err := b.dec.putSoft(prefixKey(childPrefix), &softEntry{com: com, dec: sdec}); err != nil {
				errs[slot] = err
				continue
			}
			messages[slot] = slotHash(com)
			continue
		}
		n.slots = append(n.slots, slot)
		if b.sem != nil {
			select {
			case b.sem <- struct{}{}:
				wg.Add(1)
				go func(slot int, childPrefix []int, slotItems []keyItem) {
					defer wg.Done()
					defer func() { <-b.sem }()
					children[slot], errs[slot] = b.build(level+1, childPrefix, slotItems)
				}(slot, childPrefix, slotItems)
				continue
			default:
				// Pool saturated: build inline rather than queue, so the
				// calling goroutine always makes progress.
			}
		}
		children[slot], errs[slot] = b.build(level+1, childPrefix, slotItems)
	}
	wg.Wait()
	for _, err := range errs {
		// The lowest failing slot wins, matching the serial build's
		// first-error behaviour at any worker count.
		if err != nil {
			return nil, err
		}
	}
	for slot, child := range children {
		if child == nil {
			continue
		}
		messages[slot] = slotHash(child.commitment())
	}
	qCom, qDec, err := c.Key.HComFrom(b.rnd(prefix), messages)
	if err != nil {
		return nil, fmt.Errorf("zkedb: committing node at level %d: %w", level, err)
	}
	n.qCom = qCom
	n.qDec = qDec
	if err := b.dec.putNode(prefixKey(prefix), n); err != nil {
		return nil, err
	}
	return n, nil
}

// prefixKey encodes a digit path as a store/cache key.
func prefixKey(prefix []int) string {
	buf := make([]byte, len(prefix))
	for i, d := range prefix {
		buf[i] = byte(d)
	}
	return string(buf)
}

// ProofKind distinguishes ownership from non-ownership proofs.
type ProofKind int

// Proof kinds. Following the repository style, enum values start at 1 so the
// zero value is invalid.
const (
	ProofOwnership ProofKind = iota + 1
	ProofNonOwnership
)

// String implements fmt.Stringer.
func (k ProofKind) String() string {
	switch k {
	case ProofOwnership:
		return "ownership"
	case ProofNonOwnership:
		return "non-ownership"
	default:
		return fmt.Sprintf("ProofKind(%d)", int(k))
	}
}

// LevelOpening opens one internal level of the proof path and presents the
// next commitment on the path.
type LevelOpening struct {
	Hard  *qmercurial.HardOpening `json:"hard,omitempty"`
	Soft  *qmercurial.SoftOpening `json:"soft,omitempty"`
	Child mercurial.Commitment    `json:"child"`
}

// Proof is an ownership or non-ownership proof for one key (the paper's
// ZK-π_x). Ownership proofs hard-open every level and carry the value;
// non-ownership proofs tease every level and end in an "absent" leaf tease.
type Proof struct {
	Kind      ProofKind              `json:"kind"`
	Value     []byte                 `json:"value,omitempty"`
	Levels    []LevelOpening         `json:"levels"`
	LeafHard  *mercurial.HardOpening `json:"leaf_hard,omitempty"`
	LeafTease *mercurial.Tease       `json:"leaf_tease,omitempty"`
}

// proveStats accumulates per-proof store activity for span attributes.
type proveStats struct {
	loaded  int // nodes/softs hydrated from the store during this proof
	created int // soft entries lazily created during this proof
}

// Prove generates the proof for key (the paper's EDB-proof): an ownership
// proof when the key is in the committed database, a non-ownership proof
// otherwise. When ctx carries an active trace span, generation is recorded
// as a "zkedb.prove" child span tagged with the tree geometry, the store
// backend, the number of nodes hydrated from the store, the proof kind, and
// any attributes attached via WithProveAttrs. ctx cancellation is honoured
// between tree levels, so an expired deadline aborts a proof mid-walk
// instead of paying for the remaining openings.
func (d *Decommitment) Prove(ctx context.Context, key string) (*Proof, error) {
	attrs := append([]trace.Attr{
		trace.Int("q", d.crs.Params.Q), trace.Int("h", d.crs.Params.H),
		trace.String("store", d.kv.Name()),
	}, proveAttrs(ctx)...)
	_, span := trace.Default.StartChild(ctx, "zkedb.prove", attrs...)
	timer := obs.StartTimer()
	st := &proveStats{}
	d.treeMu.RLock()
	proof, err := d.prove(ctx, key, st)
	if err == nil && st.created > 0 {
		// A non-ownership proof extended a soft chain: commit it so the
		// commitments just shown to a verifier survive a restart (repeat
		// queries must answer with the same chain).
		err = d.kv.Flush()
	}
	d.treeMu.RUnlock()
	span.SetAttr(trace.Int("loaded_nodes", st.loaded))
	if err == nil {
		d.crs.metrics().prove(proof.Kind).ObserveTimer(timer)
		span.SetAttr(trace.String("kind", proof.Kind.String()))
	} else {
		span.SetError(err)
	}
	span.End()
	return proof, err
}

func (d *Decommitment) prove(ctx context.Context, key string, st *proveStats) (*Proof, error) {
	// The tree is immutable between Updates (excluded by treeMu); only the
	// hydrated-state cache mutates, under its own lock. Proofs for different
	// keys therefore run concurrently without serializing on d.mu.
	present, err := d.hasKey(key)
	if err != nil {
		return nil, err
	}
	if present {
		return d.proveOwnership(ctx, key, st)
	}
	return d.proveNonOwnership(ctx, key, st)
}

// hasKey reports whether key is in the committed database.
func (d *Decommitment) hasKey(key string) (bool, error) {
	_, ok, err := d.kv.Get(dbStoreKey(key))
	if err != nil {
		return false, fmt.Errorf("zkedb: reading db entry for %q: %w", key, err)
	}
	return ok, nil
}

// checkCtx reports a proof-aborting cancellation, wrapped so callers can
// errors.Is against context.Canceled / DeadlineExceeded.
func checkCtx(ctx context.Context, key string, level int) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("zkedb: proving %q cancelled at level %d: %w", key, level, err)
	}
	return nil
}

func (d *Decommitment) proveOwnership(ctx context.Context, key string, st *proveStats) (*Proof, error) {
	c := d.crs
	digits := c.digits(c.digest(key))
	proof := &Proof{Kind: ProofOwnership, Levels: make([]LevelOpening, 0, c.Params.H)}
	cur := d.root
	for level := 0; level < c.Params.H; level++ {
		if err := checkCtx(ctx, key, level); err != nil {
			return nil, err
		}
		slot := digits[level]
		if !cur.hasSlot(slot) {
			return nil, fmt.Errorf("%w: %q (tree path broken at level %d)", ErrUnknownKey, key, level)
		}
		child, err := d.childAt(digits[:level+1], st)
		if err != nil {
			return nil, err
		}
		op, err := c.Key.HOpen(cur.qDec, slot)
		if err != nil {
			return nil, fmt.Errorf("zkedb: opening level %d: %w", level, err)
		}
		proof.Levels = append(proof.Levels, LevelOpening{Hard: &op, Child: child.commitment()})
		cur = child
	}
	if cur.leafKey != key {
		return nil, fmt.Errorf("%w: leaf holds %q, wanted %q", ErrDigestCollision, cur.leafKey, key)
	}
	leafOpen := c.Key.TMC.HOpen(cur.leafDec)
	proof.LeafHard = &leafOpen
	proof.Value = cur.leafValue
	return proof, nil
}

func (d *Decommitment) proveNonOwnership(ctx context.Context, key string, st *proveStats) (*Proof, error) {
	c := d.crs
	digits := c.digits(c.digest(key))
	proof := &Proof{Kind: ProofNonOwnership, Levels: make([]LevelOpening, 0, c.Params.H)}

	// Hard segment: tease materialized hard nodes along the path.
	cur := d.root
	level := 0
	for ; level < c.Params.H; level++ {
		if err := checkCtx(ctx, key, level); err != nil {
			return nil, err
		}
		slot := digits[level]
		if !cur.hasSlot(slot) {
			break // transition to the soft segment
		}
		child, err := d.childAt(digits[:level+1], st)
		if err != nil {
			return nil, err
		}
		op, err := c.Key.SOpenHard(cur.qDec, slot)
		if err != nil {
			return nil, fmt.Errorf("zkedb: teasing level %d: %w", level, err)
		}
		proof.Levels = append(proof.Levels, LevelOpening{Soft: &op, Child: child.commitment()})
		cur = child
	}
	if level == c.Params.H {
		return nil, fmt.Errorf("zkedb: key %q is present; cannot prove non-ownership", key)
	}

	// The child slot at `level` is empty: its pinned soft commitment was
	// created at commit time. Tease the hard node toward it, then descend a
	// (cached) chain of soft commitments to the leaf.
	slot := digits[level]
	entry, err := d.softAt(digits[:level+1], st)
	if err != nil {
		return nil, err
	}
	op, err := c.Key.SOpenHard(cur.qDec, slot)
	if err != nil {
		return nil, fmt.Errorf("zkedb: teasing level %d: %w", level, err)
	}
	proof.Levels = append(proof.Levels, LevelOpening{Soft: &op, Child: entry.com})
	level++

	for ; level < c.Params.H; level++ {
		if err := checkCtx(ctx, key, level); err != nil {
			return nil, err
		}
		next, err := d.softAt(digits[:level+1], st)
		if err != nil {
			return nil, err
		}
		sop, err := c.Key.SOpenSoft(
			qmercurial.SoftDecommit{MCDec: entry.dec}, digits[level], slotHash(next.com))
		if err != nil {
			return nil, fmt.Errorf("zkedb: soft-opening level %d: %w", level, err)
		}
		proof.Levels = append(proof.Levels, LevelOpening{Soft: &sop, Child: next.com})
		entry = next
	}

	tease, err := c.Key.TMC.SOpenSoft(entry.dec, c.absentMessage(key))
	if err != nil {
		return nil, fmt.Errorf("zkedb: teasing absent leaf: %w", err)
	}
	proof.LeafTease = &tease
	return proof, nil
}

// Verify checks a proof for key against a commitment (the paper's
// EDB-Verify(σ, Com, x, π) → y / ⊥ / bad). On success it returns the proven
// value and present=true for ownership proofs, or (nil, false) for
// non-ownership proofs. Any inconsistency yields ErrBadProof.
func (c *CRS) Verify(com Commitment, key string, proof *Proof) (value []byte, present bool, err error) {
	if proof == nil {
		return nil, false, fmt.Errorf("%w: nil proof", ErrBadProof)
	}
	if proof.Kind != ProofOwnership && proof.Kind != ProofNonOwnership {
		return nil, false, fmt.Errorf("%w: unknown proof kind %d", ErrBadProof, proof.Kind)
	}
	defer c.metrics().verify(proof.Kind).ObserveTimer(obs.StartTimer())
	if len(proof.Levels) != c.Params.H {
		return nil, false, fmt.Errorf("%w: %d levels, want %d", ErrBadProof, len(proof.Levels), c.Params.H)
	}
	digits := c.digits(c.digest(key))
	cur := com.Root
	for level, lo := range proof.Levels {
		want := slotHash(lo.Child)
		switch proof.Kind {
		case ProofOwnership:
			if lo.Hard == nil {
				return nil, false, fmt.Errorf("%w: level %d missing hard opening", ErrBadProof, level)
			}
			if lo.Hard.Slot != digits[level] {
				return nil, false, fmt.Errorf("%w: level %d opens slot %d, want %d",
					ErrBadProof, level, lo.Hard.Slot, digits[level])
			}
			if lo.Hard.Message == nil || lo.Hard.Message.Cmp(want) != 0 {
				return nil, false, fmt.Errorf("%w: level %d slot message does not bind child", ErrBadProof, level)
			}
			if !c.Key.VerHOpen(cur, *lo.Hard) {
				return nil, false, fmt.Errorf("%w: level %d hard opening invalid", ErrBadProof, level)
			}
		case ProofNonOwnership:
			if lo.Soft == nil {
				return nil, false, fmt.Errorf("%w: level %d missing soft opening", ErrBadProof, level)
			}
			if lo.Soft.Slot != digits[level] {
				return nil, false, fmt.Errorf("%w: level %d opens slot %d, want %d",
					ErrBadProof, level, lo.Soft.Slot, digits[level])
			}
			if lo.Soft.Message == nil || lo.Soft.Message.Cmp(want) != 0 {
				return nil, false, fmt.Errorf("%w: level %d slot message does not bind child", ErrBadProof, level)
			}
			if !c.Key.VerSOpen(cur, *lo.Soft) {
				return nil, false, fmt.Errorf("%w: level %d soft opening invalid", ErrBadProof, level)
			}
		}
		cur = qmercurial.Commitment{MC: lo.Child}
	}
	leafCom := cur.MC
	if proof.Kind == ProofOwnership {
		if proof.LeafHard == nil {
			return nil, false, fmt.Errorf("%w: missing leaf opening", ErrBadProof)
		}
		wantMsg := c.leafMessage(key, proof.Value)
		if proof.LeafHard.M == nil || proof.LeafHard.M.Cmp(wantMsg) != 0 {
			return nil, false, fmt.Errorf("%w: leaf message does not bind key/value", ErrBadProof)
		}
		if !c.Key.TMC.VerHOpen(leafCom, *proof.LeafHard) {
			return nil, false, fmt.Errorf("%w: leaf hard opening invalid", ErrBadProof)
		}
		return proof.Value, true, nil
	}
	if proof.LeafTease == nil {
		return nil, false, fmt.Errorf("%w: missing leaf tease", ErrBadProof)
	}
	wantMsg := c.absentMessage(key)
	if proof.LeafTease.M == nil || proof.LeafTease.M.Cmp(wantMsg) != 0 {
		return nil, false, fmt.Errorf("%w: leaf tease does not bind key", ErrBadProof)
	}
	if !c.Key.TMC.VerSOpen(leafCom, *proof.LeafTease) {
		return nil, false, fmt.Errorf("%w: leaf tease invalid", ErrBadProof)
	}
	return nil, false, nil
}
