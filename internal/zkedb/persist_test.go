package zkedb

import (
	"context"
	"encoding/json"
	"testing"
)

func TestDecommitmentRoundTrip(t *testing.T) {
	crs := testCRS(t)
	db := testDB(6)
	com, dec, err := crs.Commit(db, CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Force some lazily created soft-chain entries into the cache first, so
	// their pinning survives the round trip.
	preRestart, err := dec.Prove(context.Background(), "ghost-key")
	if err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(dec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	restored, err := RestoreDecommitment(crs, data)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}

	// Ownership proofs from the restored state must verify against the
	// ORIGINAL commitment — the whole point of persistence.
	for key, want := range db {
		proof, err := restored.Prove(context.Background(), key)
		if err != nil {
			t.Fatalf("Prove(%q) after restore: %v", key, err)
		}
		value, present, err := crs.Verify(com, key, proof)
		if err != nil || !present || string(value) != string(want) {
			t.Fatalf("restored proof for %q failed: %v", key, err)
		}
	}

	// Non-ownership proofs must reuse the same pinned soft chain: the child
	// commitments shown before and after the restart must be identical.
	postRestart, err := restored.Prove(context.Background(), "ghost-key")
	if err != nil {
		t.Fatal(err)
	}
	for i := range preRestart.Levels {
		if !preRestart.Levels[i].Child.Equal(postRestart.Levels[i].Child) {
			t.Fatalf("level %d soft chain changed across restart", i)
		}
	}
	if _, _, err := crs.Verify(com, "ghost-key", postRestart); err != nil {
		t.Fatalf("restored non-ownership proof failed: %v", err)
	}
}

func TestRestoreRejectsWrongGeometry(t *testing.T) {
	crs := testCRS(t)
	_, dec, err := crs.Commit(testDB(2), CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(dec)
	if err != nil {
		t.Fatal(err)
	}
	other, err := CRSGen(Params{Q: 4, H: 12, KeyBits: 24, ModulusBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreDecommitment(other, data); err == nil {
		t.Fatal("geometry mismatch must be rejected")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	crs := testCRS(t)
	if _, err := RestoreDecommitment(crs, []byte("not json")); err == nil {
		t.Fatal("non-JSON must be rejected")
	}
	if _, err := RestoreDecommitment(crs, []byte(`{"params":{}}`)); err == nil {
		t.Fatal("missing fields must be rejected")
	}
}

func TestRestoreRejectsTamperedState(t *testing.T) {
	crs := testCRS(t)
	_, dec, err := crs.Commit(testDB(2), CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(dec)
	if err != nil {
		t.Fatal(err)
	}
	var state map[string]any
	if err := json.Unmarshal(data, &state); err != nil {
		t.Fatal(err)
	}
	state["root"] = map[string]any{"level": 0}
	tampered, err := json.Marshal(state)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreDecommitment(crs, tampered); err == nil {
		t.Fatal("incomplete root must be rejected")
	}
}

func TestEmptyDatabaseRoundTrip(t *testing.T) {
	crs := testCRS(t)
	com, dec, err := crs.Commit(nil, CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(dec)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreDecommitment(crs, data)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := restored.Prove(context.Background(), "anything")
	if err != nil {
		t.Fatal(err)
	}
	if _, present, err := crs.Verify(com, "anything", proof); err != nil || present {
		t.Fatalf("restored empty DB must prove absence: %v", err)
	}
}
