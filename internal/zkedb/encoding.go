package zkedb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"desword/internal/group"
	"desword/internal/mercurial"
	"desword/internal/qmercurial"
	"desword/internal/rsavc"
)

// This file provides a compact binary proof encoding. The paper's Table II
// reports ownership / non-ownership proof sizes in kilobytes; JSON would
// inflate them ~2.5× with hex and field names, so sizes are accounted (and
// proofs shipped over TCP) in this format.

// ErrBadEncoding reports a malformed binary proof.
var ErrBadEncoding = errors.New("zkedb: malformed proof encoding")

const (
	levelFlagHard byte = 1
	levelFlagSoft byte = 2
)

type encBuf struct {
	buf []byte
}

func (e *encBuf) writeByte(b byte) { e.buf = append(e.buf, b) }

func (e *encBuf) writeUvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *encBuf) writeBytes(b []byte) {
	e.writeUvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encBuf) writeBigInt(x *big.Int) {
	if x == nil {
		e.writeBytes(nil)
		return
	}
	e.writeBytes(x.Bytes())
}

func (e *encBuf) writeCommitment(c mercurial.Commitment) {
	e.writeBytes(c.C0.Bytes())
	e.writeBytes(c.C1.Bytes())
}

type decBuf struct {
	buf []byte
	off int
}

func (d *decBuf) readByte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, ErrBadEncoding
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decBuf) readUvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrBadEncoding
	}
	d.off += n
	return v, nil
}

func (d *decBuf) readBytes() ([]byte, error) {
	n, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.off) {
		return nil, ErrBadEncoding
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+int(n)])
	d.off += int(n)
	return out, nil
}

func (d *decBuf) readBigInt() (*big.Int, error) {
	b, err := d.readBytes()
	if err != nil {
		return nil, err
	}
	return new(big.Int).SetBytes(b), nil
}

func (d *decBuf) readCommitment() (mercurial.Commitment, error) {
	grp := group.P256()
	b0, err := d.readBytes()
	if err != nil {
		return mercurial.Commitment{}, err
	}
	c0, err := grp.DecodePoint(b0)
	if err != nil {
		return mercurial.Commitment{}, fmt.Errorf("%w: %w", ErrBadEncoding, err)
	}
	b1, err := d.readBytes()
	if err != nil {
		return mercurial.Commitment{}, err
	}
	c1, err := grp.DecodePoint(b1)
	if err != nil {
		return mercurial.Commitment{}, fmt.Errorf("%w: %w", ErrBadEncoding, err)
	}
	return mercurial.Commitment{C0: c0, C1: c1}, nil
}

// MarshalBinary encodes the proof compactly.
func (p *Proof) MarshalBinary() ([]byte, error) {
	var e encBuf
	e.writeByte(byte(p.Kind))
	e.writeBytes(p.Value)
	e.writeUvarint(uint64(len(p.Levels)))
	for i, lo := range p.Levels {
		switch {
		case lo.Hard != nil:
			e.writeByte(levelFlagHard)
			e.writeUvarint(uint64(lo.Hard.Slot))
			e.writeBigInt(lo.Hard.Message)
			e.writeBigInt(lo.Hard.V)
			e.writeBigInt(lo.Hard.Witness.Lambda)
			e.writeBigInt(lo.Hard.MCOpen.M)
			e.writeBigInt(lo.Hard.MCOpen.R0)
			e.writeBigInt(lo.Hard.MCOpen.R1)
		case lo.Soft != nil:
			e.writeByte(levelFlagSoft)
			e.writeUvarint(uint64(lo.Soft.Slot))
			e.writeBigInt(lo.Soft.Message)
			e.writeBigInt(lo.Soft.V)
			e.writeBigInt(lo.Soft.Witness.Lambda)
			e.writeBigInt(lo.Soft.MCTease.M)
			e.writeBigInt(lo.Soft.MCTease.Tau)
		default:
			return nil, fmt.Errorf("zkedb: level %d has no opening", i)
		}
		e.writeCommitment(lo.Child)
	}
	switch {
	case p.LeafHard != nil:
		e.writeByte(levelFlagHard)
		e.writeBigInt(p.LeafHard.M)
		e.writeBigInt(p.LeafHard.R0)
		e.writeBigInt(p.LeafHard.R1)
	case p.LeafTease != nil:
		e.writeByte(levelFlagSoft)
		e.writeBigInt(p.LeafTease.M)
		e.writeBigInt(p.LeafTease.Tau)
	default:
		return nil, errors.New("zkedb: proof missing leaf opening")
	}
	return e.buf, nil
}

// UnmarshalBinary decodes a proof produced by MarshalBinary.
func (p *Proof) UnmarshalBinary(data []byte) error {
	d := &decBuf{buf: data}
	kind, err := d.readByte()
	if err != nil {
		return err
	}
	p.Kind = ProofKind(kind)
	if p.Kind != ProofOwnership && p.Kind != ProofNonOwnership {
		return fmt.Errorf("%w: kind %d", ErrBadEncoding, kind)
	}
	if p.Value, err = d.readBytes(); err != nil {
		return err
	}
	if len(p.Value) == 0 {
		p.Value = nil
	}
	nLevels, err := d.readUvarint()
	if err != nil {
		return err
	}
	if nLevels > 1<<16 {
		return fmt.Errorf("%w: implausible level count %d", ErrBadEncoding, nLevels)
	}
	p.Levels = make([]LevelOpening, 0, nLevels)
	for i := uint64(0); i < nLevels; i++ {
		flag, err := d.readByte()
		if err != nil {
			return err
		}
		var lo LevelOpening
		switch flag {
		case levelFlagHard:
			op := &qmercurial.HardOpening{}
			slot, err := d.readUvarint()
			if err != nil {
				return err
			}
			op.Slot = int(slot)
			if op.Message, err = d.readBigInt(); err != nil {
				return err
			}
			if op.V, err = d.readBigInt(); err != nil {
				return err
			}
			var lambda *big.Int
			if lambda, err = d.readBigInt(); err != nil {
				return err
			}
			op.Witness = rsavc.Witness{Lambda: lambda}
			if op.MCOpen.M, err = d.readBigInt(); err != nil {
				return err
			}
			if op.MCOpen.R0, err = d.readBigInt(); err != nil {
				return err
			}
			if op.MCOpen.R1, err = d.readBigInt(); err != nil {
				return err
			}
			lo.Hard = op
		case levelFlagSoft:
			op := &qmercurial.SoftOpening{}
			slot, err := d.readUvarint()
			if err != nil {
				return err
			}
			op.Slot = int(slot)
			if op.Message, err = d.readBigInt(); err != nil {
				return err
			}
			if op.V, err = d.readBigInt(); err != nil {
				return err
			}
			var lambda *big.Int
			if lambda, err = d.readBigInt(); err != nil {
				return err
			}
			op.Witness = rsavc.Witness{Lambda: lambda}
			if op.MCTease.M, err = d.readBigInt(); err != nil {
				return err
			}
			if op.MCTease.Tau, err = d.readBigInt(); err != nil {
				return err
			}
			lo.Soft = op
		default:
			return fmt.Errorf("%w: level flag %d", ErrBadEncoding, flag)
		}
		if lo.Child, err = d.readCommitment(); err != nil {
			return err
		}
		p.Levels = append(p.Levels, lo)
	}
	flag, err := d.readByte()
	if err != nil {
		return err
	}
	switch flag {
	case levelFlagHard:
		op := &mercurial.HardOpening{}
		if op.M, err = d.readBigInt(); err != nil {
			return err
		}
		if op.R0, err = d.readBigInt(); err != nil {
			return err
		}
		if op.R1, err = d.readBigInt(); err != nil {
			return err
		}
		p.LeafHard = op
	case levelFlagSoft:
		ts := &mercurial.Tease{}
		if ts.M, err = d.readBigInt(); err != nil {
			return err
		}
		if ts.Tau, err = d.readBigInt(); err != nil {
			return err
		}
		p.LeafTease = ts
	default:
		return fmt.Errorf("%w: leaf flag %d", ErrBadEncoding, flag)
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadEncoding, len(d.buf)-d.off)
	}
	return nil
}

// Size returns the compact encoded size of the proof in bytes; it is the
// quantity Table II reports.
func (p *Proof) Size() (int, error) {
	data, err := p.MarshalBinary()
	if err != nil {
		return 0, err
	}
	return len(data), nil
}
