package zkedb

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests over randomized databases: for any committed database,
// every present key yields a verifying ownership proof recovering its exact
// value, and every absent key yields a verifying non-ownership proof —
// including adversarially similar key names.

func TestPropertyCommitProveVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in short mode")
	}
	crs := testCRS(t)
	prop := func(seed int64, sizeByte uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(sizeByte)%12 + 1
		db := make(map[string][]byte, size)
		for i := 0; i < size; i++ {
			key := fmt.Sprintf("k%d-%d", rng.Int63(), i)
			val := make([]byte, rng.Intn(48))
			rng.Read(val)
			db[key] = val
		}
		com, dec, err := crs.Commit(db, CommitOptions{})
		if err != nil {
			t.Logf("commit: %v", err)
			return false
		}
		for key, want := range db {
			proof, err := dec.Prove(context.Background(), key)
			if err != nil {
				t.Logf("prove %q: %v", key, err)
				return false
			}
			got, present, err := crs.Verify(com, key, proof)
			if err != nil || !present || string(got) != string(want) {
				t.Logf("verify %q: %v", key, err)
				return false
			}
			// A near-collision key (same prefix, one char appended) must be
			// provably absent.
			near := key + "x"
			if _, inDB := db[near]; inDB {
				continue
			}
			nProof, err := dec.Prove(context.Background(), near)
			if err != nil {
				t.Logf("prove absent %q: %v", near, err)
				return false
			}
			if _, present, err := crs.Verify(com, near, nProof); err != nil || present {
				t.Logf("verify absent %q: %v", near, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyProofsNeverCrossVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in short mode")
	}
	crs := testCRS(t)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dbA := map[string][]byte{fmt.Sprintf("a-%d", rng.Int63()): []byte("va")}
		dbB := map[string][]byte{fmt.Sprintf("b-%d", rng.Int63()): []byte("vb")}
		comA, decA, err := crs.Commit(dbA, CommitOptions{})
		if err != nil {
			return false
		}
		comB, _, err := crs.Commit(dbB, CommitOptions{})
		if err != nil {
			return false
		}
		var keyA string
		for k := range dbA {
			keyA = k
		}
		proofA, err := decA.Prove(context.Background(), keyA)
		if err != nil {
			return false
		}
		// Must verify under its own commitment, never under B's.
		if _, _, err := crs.Verify(comA, keyA, proofA); err != nil {
			return false
		}
		if _, _, err := crs.Verify(comB, keyA, proofA); err == nil {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBinaryEncodingTotal(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in short mode")
	}
	crs := testCRS(t)
	_, dec, err := crs.Commit(map[string][]byte{"k": []byte("v")}, CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(key string) bool {
		if key == "" {
			key = "empty"
		}
		proof, err := dec.Prove(context.Background(), key)
		if err != nil {
			return false
		}
		data, err := proof.MarshalBinary()
		if err != nil {
			return false
		}
		var back Proof
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		re, err := back.MarshalBinary()
		if err != nil {
			return false
		}
		return string(re) == string(data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
