package zkedb

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"desword/internal/zkedb/store"
)

// openFileStore opens a file-backed store under t.TempDir.
func openFileStore(t *testing.T, name string) (*store.File, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	kv, err := store.OpenFile(path, store.FileOptions{})
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	t.Cleanup(func() { _ = kv.Close() })
	return kv, path
}

// proveBytes returns the compact encoding of a proof for key.
func proveBytes(t *testing.T, dec *Decommitment, key string) []byte {
	t.Helper()
	proof, err := dec.Prove(context.Background(), key)
	if err != nil {
		t.Fatalf("Prove(%q): %v", key, err)
	}
	out, err := proof.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary(%q): %v", key, err)
	}
	return out
}

// requireSameChain asserts two non-ownership proofs for key show the same
// commitment chain and leaf tease. The per-level openings fabricate fresh
// hiding randomness on every call (rsavc.Fabricate), so full proof bytes are
// never comparable for absent keys; the deterministic invariant — what
// repeat-query consistency and cross-backend identity require — is the
// sequence of child commitments the verifier is shown, plus the teased leaf.
func requireSameChain(t *testing.T, a, b *Decommitment, key string) {
	t.Helper()
	pa, err := a.Prove(context.Background(), key)
	if err != nil {
		t.Fatalf("Prove(%q): %v", key, err)
	}
	pb, err := b.Prove(context.Background(), key)
	if err != nil {
		t.Fatalf("Prove(%q): %v", key, err)
	}
	requireSameChainProofs(t, pa, pb, key)
}

func requireSameChainProofs(t *testing.T, pa, pb *Proof, key string) {
	t.Helper()
	if pa.Kind != ProofNonOwnership || pb.Kind != ProofNonOwnership {
		t.Fatalf("expected non-ownership proofs for %q", key)
	}
	if len(pa.Levels) != len(pb.Levels) {
		t.Fatalf("chain length differs for %q: %d vs %d", key, len(pa.Levels), len(pb.Levels))
	}
	for i := range pa.Levels {
		if !pa.Levels[i].Child.Equal(pb.Levels[i].Child) {
			t.Fatalf("soft chain for %q differs at level %d", key, i)
		}
	}
	if pa.LeafTease.M.Cmp(pb.LeafTease.M) != 0 || pa.LeafTease.Tau.Cmp(pb.LeafTease.Tau) != 0 {
		t.Fatalf("leaf tease for %q differs", key)
	}
}

// TestCrossBackendByteIdentity pins the backend-transparency invariant: the
// same seeded database committed into the mem and file backends yields the
// byte-identical commitment, byte-identical ownership and non-ownership
// proofs, and the byte-identical serialized decommitment.
func TestCrossBackendByteIdentity(t *testing.T) {
	crs := testCRS(t)
	db := testDB(9)
	seed := []byte("cross-backend-seed")

	memCom, memDec, err := crs.Commit(db, CommitOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	kv, _ := openFileStore(t, "cross.kv")
	fileCom, fileDec, err := crs.Commit(db, CommitOptions{Seed: seed, Store: kv})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(memCom.Bytes(), fileCom.Bytes()) {
		t.Fatal("commitment differs between mem and file backends")
	}
	for _, key := range []string{"product-000", "product-004", "product-008"} {
		if !bytes.Equal(proveBytes(t, memDec, key), proveBytes(t, fileDec, key)) {
			t.Fatalf("ownership proof for %q differs between backends", key)
		}
	}
	for _, key := range []string{"absent-x", "absent-y"} {
		requireSameChain(t, memDec, fileDec, key)
	}
	memJSON, err := json.Marshal(memDec)
	if err != nil {
		t.Fatal(err)
	}
	fileJSON, err := json.Marshal(fileDec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(memJSON, fileJSON) {
		t.Fatal("serialized decommitment differs between backends")
	}
}

// TestUpdateMatchesFreshRebuild pins the incremental-commit invariant: a
// seeded tree updated with a delta — new keys and overwrites alike — reaches
// the byte-identical commitment, proofs and serialized state of a fresh
// seeded Commit over the merged database.
func TestUpdateMatchesFreshRebuild(t *testing.T) {
	crs := testCRS(t)
	seed := []byte("update-rebuild-seed")
	db := testDB(8)
	_, dec, err := crs.Commit(db, CommitOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	delta := map[string][]byte{
		"update-new-1": []byte("fresh value 1"),
		"update-new-2": []byte("fresh value 2"),
		"product-003":  []byte("overwritten value"), // existing key
	}
	updatedCom, err := dec.Update(context.Background(), delta)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}

	merged := make(map[string][]byte, len(db)+len(delta))
	for k, v := range db {
		merged[k] = v
	}
	for k, v := range delta {
		merged[k] = v
	}
	rebuiltCom, rebuiltDec, err := crs.Commit(merged, CommitOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(updatedCom.Bytes(), rebuiltCom.Bytes()) {
		t.Fatal("updated commitment differs from fresh rebuild")
	}
	for key := range merged {
		if !bytes.Equal(proveBytes(t, dec, key), proveBytes(t, rebuiltDec, key)) {
			t.Fatalf("proof for %q differs between update and rebuild", key)
		}
	}
	requireSameChain(t, dec, rebuiltDec, "still-absent")
	updatedJSON, err := json.Marshal(dec)
	if err != nil {
		t.Fatal(err)
	}
	rebuiltJSON, err := json.Marshal(rebuiltDec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(updatedJSON, rebuiltJSON) {
		t.Fatal("serialized state differs between update and rebuild")
	}
}

// TestUpdatePropertyEquivalence is the randomized version: arbitrary split
// of a key set into base and delta batches must converge to the fresh-build
// commitment, whatever the batch boundaries.
func TestUpdatePropertyEquivalence(t *testing.T) {
	crs := testCRS(t)
	seed := []byte("update-property-seed")
	const total = 12
	for _, splits := range [][]int{{6, 3, 3}, {1, 11}, {11, 1}, {4, 4, 4}} {
		t.Run(fmt.Sprintf("splits=%v", splits), func(t *testing.T) {
			all := make(map[string][]byte, total)
			next := 0
			take := func(n int) map[string][]byte {
				batch := make(map[string][]byte, n)
				for i := 0; i < n; i++ {
					key := fmt.Sprintf("prop-key-%02d", next)
					val := []byte(fmt.Sprintf("prop-val-%02d", next))
					batch[key] = val
					all[key] = val
					next++
				}
				return batch
			}
			_, dec, err := crs.Commit(take(splits[0]), CommitOptions{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			var com Commitment
			for _, n := range splits[1:] {
				if com, err = dec.Update(context.Background(), take(n)); err != nil {
					t.Fatalf("Update: %v", err)
				}
			}
			want, _, err := crs.Commit(all, CommitOptions{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(com.Bytes(), want.Bytes()) {
				t.Fatal("incremental batches diverged from fresh build")
			}
		})
	}
}

// TestUpdateEdgeCases covers the non-happy paths: empty deltas are no-ops,
// cancelled contexts abort, and invalid keys are rejected.
func TestUpdateEdgeCases(t *testing.T) {
	crs := testCRS(t)
	com, dec, err := crs.Commit(testDB(4), CommitOptions{Seed: []byte("edge-seed")})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Update(context.Background(), nil)
	if err != nil {
		t.Fatalf("empty Update: %v", err)
	}
	if !bytes.Equal(got.Bytes(), com.Bytes()) {
		t.Fatal("empty Update changed the commitment")
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dec.Update(cancelled, map[string][]byte{"k": []byte("v")}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Update = %v, want context.Canceled", err)
	}
	// The failed update must not have corrupted the tree.
	proof, err := dec.Prove(context.Background(), "product-000")
	if err != nil {
		t.Fatal(err)
	}
	if _, present, err := crs.Verify(com, "product-000", proof); err != nil || !present {
		t.Fatalf("tree broken after cancelled update: present=%v err=%v", present, err)
	}
}

// TestOpenDecommitmentReopen pins the cold-open path: a file-backed tree
// closed and reopened through OpenDecommitment proves against the original
// commitment, lazily and with a bounded cache, and keeps non-ownership soft
// chains identical across the restart.
func TestOpenDecommitmentReopen(t *testing.T) {
	crs := testCRS(t)
	db := testDB(7)
	seed := []byte("reopen-seed")
	kv, path := openFileStore(t, "reopen.kv")
	com, dec, err := crs.Commit(db, CommitOptions{Seed: seed, Store: kv})
	if err != nil {
		t.Fatal(err)
	}
	preRestart, err := dec.Prove(context.Background(), "ghost-key")
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := store.OpenFile(path, store.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	cold, err := OpenDecommitment(crs, reopened, 8)
	if err != nil {
		t.Fatalf("OpenDecommitment: %v", err)
	}
	for key, want := range db {
		proof, err := cold.Prove(context.Background(), key)
		if err != nil {
			t.Fatalf("Prove(%q) after reopen: %v", key, err)
		}
		value, present, err := crs.Verify(com, key, proof)
		if err != nil || !present || string(value) != string(want) {
			t.Fatalf("reopened proof for %q failed: present=%v err=%v", key, present, err)
		}
	}
	postRestart, err := cold.Prove(context.Background(), "ghost-key")
	if err != nil {
		t.Fatal(err)
	}
	requireSameChainProofs(t, preRestart, postRestart, "ghost-key")
	if got := cold.ResidentNodes(); got > 8 {
		t.Fatalf("ResidentNodes = %d, want <= cache bound 8", got)
	}
}

// TestOpenDecommitmentRejects pins the failure modes of the cold open:
// empty stores, wrong geometry.
func TestOpenDecommitmentRejects(t *testing.T) {
	crs := testCRS(t)
	if _, err := OpenDecommitment(crs, store.NewMem(), 0); err == nil {
		t.Fatal("OpenDecommitment on empty store succeeded")
	}
	otherParams := Params{Q: 16, H: 8, KeyBits: 32, ModulusBits: 512}
	otherCRS, err := CRSGen(otherParams)
	if err != nil {
		t.Fatal(err)
	}
	kv := store.NewMem()
	if _, _, err := otherCRS.Commit(testDB(3), CommitOptions{Store: kv}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDecommitment(crs, kv, 0); err == nil {
		t.Fatal("OpenDecommitment with mismatched geometry succeeded")
	}
}

// TestCommitRefusesDirtyStore pins ErrStoreInUse: committing into a store
// that already holds a tree must fail rather than interleave two trees.
func TestCommitRefusesDirtyStore(t *testing.T) {
	crs := testCRS(t)
	kv := store.NewMem()
	if _, _, err := crs.Commit(testDB(2), CommitOptions{Store: kv}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := crs.Commit(testDB(2), CommitOptions{Store: kv}); !errors.Is(err, ErrStoreInUse) {
		t.Fatalf("second Commit = %v, want ErrStoreInUse", err)
	}
}

// TestSaveFileAtomic pins the snapshot path of satellite durability: the
// write goes through a temp file and rename, leaves no temp debris, replaces
// an existing snapshot in place, and the result loads back verifying.
func TestSaveFileAtomic(t *testing.T) {
	crs := testCRS(t)
	db := testDB(5)
	com, dec, err := crs.Commit(db, CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.json")
	// Pre-existing stale content must be replaced, not appended or mixed.
	if err := os.WriteFile(path, []byte("stale"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := dec.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("expected only the snapshot in %s, found %d entries", dir, len(entries))
	}
	loaded, err := LoadDecommitmentFile(crs, path)
	if err != nil {
		t.Fatalf("LoadDecommitmentFile: %v", err)
	}
	proof, err := loaded.Prove(context.Background(), "product-002")
	if err != nil {
		t.Fatal(err)
	}
	if _, present, err := crs.Verify(com, "product-002", proof); err != nil || !present {
		t.Fatalf("loaded snapshot proof failed: present=%v err=%v", present, err)
	}

	// Failure path: an unwritable target directory errors without leaving
	// temp debris next to the destination.
	if err := dec.SaveFile(filepath.Join(dir, "missing-subdir", "x.json")); err == nil {
		t.Fatal("SaveFile into missing directory succeeded")
	}
}

// TestStoreSmoke is the CI smoke: commit through the file backend with a
// small batch size, update incrementally, reopen cold, and verify ownership
// and non-ownership proofs against the updated commitment — the full
// lifecycle a durable participant goes through.
func TestStoreSmoke(t *testing.T) {
	crs := testCRS(t)
	db := testDB(6)
	seed := []byte("store-smoke-seed")
	path := filepath.Join(t.TempDir(), "smoke.kv")
	kv, err := store.OpenFile(path, store.FileOptions{BatchPuts: 16})
	if err != nil {
		t.Fatal(err)
	}
	_, dec, err := crs.Commit(db, CommitOptions{Seed: seed, Store: kv})
	if err != nil {
		t.Fatal(err)
	}
	com, err := dec.Update(context.Background(), map[string][]byte{
		"smoke-extra": []byte("late arrival"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := store.OpenFile(path, store.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	cold, err := OpenDecommitment(crs, reopened, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"product-000", "smoke-extra"} {
		proof, err := cold.Prove(context.Background(), key)
		if err != nil {
			t.Fatalf("Prove(%q): %v", key, err)
		}
		if _, present, err := crs.Verify(com, key, proof); err != nil || !present {
			t.Fatalf("smoke proof for %q failed: present=%v err=%v", key, present, err)
		}
	}
	proof, err := cold.Prove(context.Background(), "smoke-absent")
	if err != nil {
		t.Fatal(err)
	}
	if _, present, err := crs.Verify(com, "smoke-absent", proof); err != nil || present {
		t.Fatalf("smoke non-ownership failed: present=%v err=%v", present, err)
	}
}
