package zkedb

import (
	"context"

	"desword/internal/trace"
)

// ProveCtx is Prove with distributed-trace instrumentation: when ctx carries
// an active span, proof generation is recorded as a "zkedb.prove" child span
// tagged with the tree geometry and the resulting proof kind. Without an
// active span it is exactly Prove — no allocation, no extra work.
func (d *Decommitment) ProveCtx(ctx context.Context, key string) (*Proof, error) {
	_, span := trace.Default.StartChild(ctx, "zkedb.prove",
		trace.Int("q", d.crs.Params.Q), trace.Int("h", d.crs.Params.H))
	proof, err := d.Prove(key)
	if err != nil {
		span.SetError(err)
	} else {
		span.SetAttr(trace.String("kind", proof.Kind.String()))
	}
	span.End()
	return proof, err
}

// VerifyCtx is Verify with distributed-trace instrumentation: when ctx
// carries an active span, verification is recorded as a "zkedb.verify" child
// span tagged with the tree geometry and proof kind.
func (c *CRS) VerifyCtx(ctx context.Context, com Commitment, key string, proof *Proof) (value []byte, present bool, err error) {
	_, span := trace.Default.StartChild(ctx, "zkedb.verify",
		trace.Int("q", c.Params.Q), trace.Int("h", c.Params.H))
	if span != nil && proof != nil {
		span.SetAttr(trace.String("kind", proof.Kind.String()))
	}
	value, present, err = c.Verify(com, key, proof)
	span.SetError(err)
	span.End()
	return value, present, err
}
