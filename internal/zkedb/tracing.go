package zkedb

import (
	"context"

	"desword/internal/trace"
)

// proveAttrsKey carries caller-supplied span attributes for Prove.
type proveAttrsKey struct{}

// WithProveAttrs returns a ctx whose "zkedb.prove" spans carry the extra
// attributes. Layers above the ZK-EDB use it to annotate proof generation
// without this package knowing about them — the proof cache in internal/poc
// tags the spans of cache misses this way, so per-hop timelines distinguish
// recomputed proofs from cached ones.
func WithProveAttrs(ctx context.Context, attrs ...trace.Attr) context.Context {
	if len(attrs) == 0 {
		return ctx
	}
	return context.WithValue(ctx, proveAttrsKey{}, attrs)
}

// proveAttrs extracts attributes attached via WithProveAttrs.
func proveAttrs(ctx context.Context) []trace.Attr {
	attrs, _ := ctx.Value(proveAttrsKey{}).([]trace.Attr)
	return attrs
}

// VerifyCtx is Verify with distributed-trace instrumentation: when ctx
// carries an active span, verification is recorded as a "zkedb.verify" child
// span tagged with the tree geometry and proof kind.
func (c *CRS) VerifyCtx(ctx context.Context, com Commitment, key string, proof *Proof) (value []byte, present bool, err error) {
	_, span := trace.Default.StartChild(ctx, "zkedb.verify",
		trace.Int("q", c.Params.Q), trace.Int("h", c.Params.H))
	if span != nil && proof != nil {
		span.SetAttr(trace.String("kind", proof.Kind.String()))
	}
	value, present, err = c.Verify(com, key, proof)
	span.SetError(err)
	span.End()
	return value, present, err
}
