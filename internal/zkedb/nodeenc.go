package zkedb

import (
	"fmt"
	"math/big"

	"desword/internal/mercurial"
	"desword/internal/qmercurial"
)

// This file defines the node store's key layout and record encodings
// (DESIGN.md §13). Keys follow the merkledb idiom of a generalized tree
// index: a short namespace prefix plus the digit-path of the tree position
// (prefixKey: one byte per digit, so a key's length is its level and lexical
// order is tree order). Records are compact binary (the encBuf/decBuf
// machinery proofs already use), not JSON — a production tree holds millions
// of nodes and the store is their primary residence, not a debug snapshot.
//
// Namespaces:
//
//	n/<path> → encoded tree node (internal or leaf)
//	s/<path> → encoded soft entry pinned at an empty position
//	d/<key>  → database value (presence = key committed)
//	m/...    → metadata (geometry echo, build seed)

// Store key namespaces.
const (
	nsNode = "n/"
	nsSoft = "s/"
	nsDB   = "d/"

	metaParamsKey = "m/params"
	metaSeedKey   = "m/seed"
)

// nodeStoreKey maps a digit-path key to its node record key.
func nodeStoreKey(pk string) string { return nsNode + pk }

// softStoreKey maps a digit-path key to its soft-entry record key.
func softStoreKey(pk string) string { return nsSoft + pk }

// dbStoreKey maps a database key to its value record key.
func dbStoreKey(key string) string { return nsDB + key }

// Record format versions and kinds.
const (
	nodeEncVersion byte = 1
	softEncVersion byte = 1

	nodeKindInternal byte = 1
	nodeKindLeaf     byte = 2
)

// encodeNodeRecord serializes a tree node for the store.
func encodeNodeRecord(n *node) []byte {
	var e encBuf
	e.writeByte(nodeEncVersion)
	if n.leaf {
		e.writeByte(nodeKindLeaf)
		e.writeUvarint(uint64(n.level))
		e.writeCommitment(n.leafCom)
		e.writeBigInt(n.leafDec.M)
		e.writeBigInt(n.leafDec.R0)
		e.writeBigInt(n.leafDec.R1)
		e.writeBytes([]byte(n.leafKey))
		e.writeBytes(n.leafValue)
		return e.buf
	}
	e.writeByte(nodeKindInternal)
	e.writeUvarint(uint64(n.level))
	e.writeUvarint(uint64(len(n.slots)))
	for _, slot := range n.slots {
		e.writeUvarint(uint64(slot))
	}
	e.writeCommitment(n.qCom.MC)
	e.writeUvarint(uint64(len(n.qDec.Messages)))
	for _, m := range n.qDec.Messages {
		e.writeBigInt(m)
	}
	e.writeBigInt(n.qDec.Hiding)
	e.writeBigInt(n.qDec.V)
	e.writeBigInt(n.qDec.MCDec.M)
	e.writeBigInt(n.qDec.MCDec.R0)
	e.writeBigInt(n.qDec.MCDec.R1)
	return e.buf
}

// decodeNodeRecord deserializes a node record, validating it against the
// tree geometry.
func decodeNodeRecord(data []byte, params Params) (*node, error) {
	d := &decBuf{buf: data}
	ver, err := d.readByte()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated node record", ErrBadState)
	}
	if ver != nodeEncVersion {
		return nil, fmt.Errorf("%w: node record version %d", ErrBadState, ver)
	}
	kind, err := d.readByte()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated node record", ErrBadState)
	}
	level, err := d.readUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated node record", ErrBadState)
	}
	if level > uint64(params.H) {
		return nil, fmt.Errorf("%w: node level %d beyond height %d", ErrBadState, level, params.H)
	}
	n := &node{level: int(level)}
	switch kind {
	case nodeKindLeaf:
		n.leaf = true
		if n.leafCom, err = d.readCommitment(); err != nil {
			return nil, fmt.Errorf("%w: leaf commitment: %w", ErrBadState, err)
		}
		var dec mercurial.HardDecommit
		if dec.M, err = d.readBigInt(); err != nil {
			return nil, fmt.Errorf("%w: leaf decommit: %w", ErrBadState, err)
		}
		if dec.R0, err = d.readBigInt(); err != nil {
			return nil, fmt.Errorf("%w: leaf decommit: %w", ErrBadState, err)
		}
		if dec.R1, err = d.readBigInt(); err != nil {
			return nil, fmt.Errorf("%w: leaf decommit: %w", ErrBadState, err)
		}
		n.leafDec = dec
		keyBytes, err := d.readBytes()
		if err != nil {
			return nil, fmt.Errorf("%w: leaf key: %w", ErrBadState, err)
		}
		if len(keyBytes) == 0 {
			return nil, fmt.Errorf("%w: leaf with empty key", ErrBadState)
		}
		n.leafKey = string(keyBytes)
		if n.leafValue, err = d.readBytes(); err != nil {
			return nil, fmt.Errorf("%w: leaf value: %w", ErrBadState, err)
		}
	case nodeKindInternal:
		nSlots, err := d.readUvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: slot count: %w", ErrBadState, err)
		}
		if nSlots > uint64(params.Q) {
			return nil, fmt.Errorf("%w: %d occupied slots with Q=%d", ErrBadState, nSlots, params.Q)
		}
		n.slots = make([]int, nSlots)
		for i := range n.slots {
			s, err := d.readUvarint()
			if err != nil {
				return nil, fmt.Errorf("%w: slot list: %w", ErrBadState, err)
			}
			if s >= uint64(params.Q) {
				return nil, fmt.Errorf("%w: slot %d out of range", ErrBadState, s)
			}
			if i > 0 && int(s) <= n.slots[i-1] {
				return nil, fmt.Errorf("%w: slot list not strictly sorted", ErrBadState)
			}
			n.slots[i] = int(s)
		}
		mc, err := d.readCommitment()
		if err != nil {
			return nil, fmt.Errorf("%w: node commitment: %w", ErrBadState, err)
		}
		n.qCom = qmercurial.Commitment{MC: mc}
		nMsgs, err := d.readUvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: message count: %w", ErrBadState, err)
		}
		if nMsgs != uint64(params.Q) {
			return nil, fmt.Errorf("%w: %d slot messages with Q=%d", ErrBadState, nMsgs, params.Q)
		}
		n.qDec.Messages = make([]*big.Int, nMsgs)
		for i := range n.qDec.Messages {
			if n.qDec.Messages[i], err = d.readBigInt(); err != nil {
				return nil, fmt.Errorf("%w: slot message: %w", ErrBadState, err)
			}
		}
		if n.qDec.Hiding, err = d.readBigInt(); err != nil {
			return nil, fmt.Errorf("%w: node decommit: %w", ErrBadState, err)
		}
		if n.qDec.V, err = d.readBigInt(); err != nil {
			return nil, fmt.Errorf("%w: node decommit: %w", ErrBadState, err)
		}
		if n.qDec.MCDec.M, err = d.readBigInt(); err != nil {
			return nil, fmt.Errorf("%w: node decommit: %w", ErrBadState, err)
		}
		if n.qDec.MCDec.R0, err = d.readBigInt(); err != nil {
			return nil, fmt.Errorf("%w: node decommit: %w", ErrBadState, err)
		}
		if n.qDec.MCDec.R1, err = d.readBigInt(); err != nil {
			return nil, fmt.Errorf("%w: node decommit: %w", ErrBadState, err)
		}
	default:
		return nil, fmt.Errorf("%w: node kind %d", ErrBadState, kind)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes in node record", ErrBadState, len(d.buf)-d.off)
	}
	return n, nil
}

// encodeSoftRecord serializes a soft entry for the store.
func encodeSoftRecord(e *softEntry) []byte {
	var b encBuf
	b.writeByte(softEncVersion)
	b.writeCommitment(e.com)
	b.writeBigInt(e.dec.R0)
	b.writeBigInt(e.dec.R1)
	return b.buf
}

// decodeSoftRecord deserializes a soft-entry record.
func decodeSoftRecord(data []byte) (*softEntry, error) {
	d := &decBuf{buf: data}
	ver, err := d.readByte()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated soft record", ErrBadState)
	}
	if ver != softEncVersion {
		return nil, fmt.Errorf("%w: soft record version %d", ErrBadState, ver)
	}
	e := &softEntry{}
	if e.com, err = d.readCommitment(); err != nil {
		return nil, fmt.Errorf("%w: soft commitment: %w", ErrBadState, err)
	}
	if e.dec.R0, err = d.readBigInt(); err != nil {
		return nil, fmt.Errorf("%w: soft decommit: %w", ErrBadState, err)
	}
	if e.dec.R1, err = d.readBigInt(); err != nil {
		return nil, fmt.Errorf("%w: soft decommit: %w", ErrBadState, err)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes in soft record", ErrBadState, len(d.buf)-d.off)
	}
	return e, nil
}
