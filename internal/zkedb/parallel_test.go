package zkedb

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
)

// TestCommitParallelByteIdentical pins the contract that makes the worker
// pool safe to ship: under a fixed seed, the commitment AND the full
// decommitment state are byte-for-byte identical at every worker count.
// Position-keyed randomness (drbg.go) is what guarantees this — any code
// change that makes a randomness draw depend on build order fails here.
func TestCommitParallelByteIdentical(t *testing.T) {
	crs := testCRS(t)
	seed := []byte("parallel-commit-determinism-seed")
	db := testDB(9) // spans several subtrees at TestParams geometry

	type build struct {
		com Commitment
		dec []byte
	}
	builds := make(map[int]build)
	for _, workers := range []int{1, 2, 8} {
		com, dec, err := crs.Commit(db, CommitOptions{Workers: workers, Seed: seed})
		if err != nil {
			t.Fatalf("Commit(workers=%d): %v", workers, err)
		}
		decJSON, err := json.Marshal(dec)
		if err != nil {
			t.Fatalf("marshal dec (workers=%d): %v", workers, err)
		}
		builds[workers] = build{com: com, dec: decJSON}
	}

	serial := builds[1]
	for _, workers := range []int{2, 8} {
		got := builds[workers]
		if !bytes.Equal(serial.com.Bytes(), got.com.Bytes()) {
			t.Errorf("workers=%d: commitment differs from serial build", workers)
		}
		if !bytes.Equal(serial.dec, got.dec) {
			t.Errorf("workers=%d: decommitment state differs from serial build", workers)
		}
	}
}

// TestCommitParallelProofsVerify exercises the pool end to end: a commitment
// built with many workers must yield ownership and non-ownership proofs that
// verify — i.e. parallelism must not just reproduce bytes under a seed, it
// must produce a sound tree with fresh randomness too.
func TestCommitParallelProofsVerify(t *testing.T) {
	crs := testCRS(t)
	com, dec, err := crs.Commit(testDB(5), CommitOptions{Workers: 8})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	for _, key := range []string{"product-003", "never-committed"} {
		proof, err := dec.Prove(context.Background(), key)
		if err != nil {
			t.Fatalf("Prove(%s): %v", key, err)
		}
		if _, _, err := crs.Verify(com, key, proof); err != nil {
			t.Fatalf("Verify(%s): %v", key, err)
		}
	}
}

// TestCommitConcurrentBuilds runs several parallel commits against one shared
// CRS at once; combined with the race detector (make race) this pins that the
// builder keeps all its mutable state build-local.
func TestCommitConcurrentBuilds(t *testing.T) {
	crs := testCRS(t)
	db := testDB(4)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, dec, err := crs.Commit(db, CommitOptions{Workers: 4})
			if err == nil {
				_, err = dec.Prove(context.Background(), "product-001")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent build %d: %v", i, err)
		}
	}
}

// TestProveCancelled pins the ctx-first contract: a cancelled context aborts
// proof generation between tree levels with a wrapped context error.
func TestProveCancelled(t *testing.T) {
	crs := testCRS(t)
	_, dec, err := crs.Commit(testDB(2), CommitOptions{})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dec.Prove(ctx, "product-000"); err == nil {
		t.Fatal("Prove with cancelled ctx succeeded")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("Prove error %v does not wrap context.Canceled", err)
	}
}
