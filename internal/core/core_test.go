package core

import (
	"context"
	"fmt"
	"testing"

	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/zkedb"
)

var _corePS *poc.PublicParams

func corePS(t *testing.T) *poc.PublicParams {
	t.Helper()
	if _corePS == nil {
		ps, err := poc.PSGen(zkedb.TestParams())
		if err != nil {
			t.Fatalf("PSGen: %v", err)
		}
		_corePS = ps
	}
	return _corePS
}

// fixture wires a full honest deployment on the Figure 1 digraph.
type fixture struct {
	ps      *poc.PublicParams
	graph   *supplychain.Graph
	members map[poc.ParticipantID]*Member
	proxy   *Proxy
	dist    *DistributionResult
}

func newFixture(t *testing.T, products int) *fixture {
	t.Helper()
	ps := corePS(t)
	g := supplychain.FigureOneGraph()
	members := make(map[poc.ParticipantID]*Member)
	for _, v := range g.Participants() {
		members[v] = NewMember(ps, supplychain.NewParticipant(v))
	}
	tags, err := supplychain.MintTags("id", products)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := RunDistribution(ps, g, members, "v0", tags, nil, supplychain.RoundRobinSplitter, "task-1")
	if err != nil {
		t.Fatalf("RunDistribution: %v", err)
	}
	resolver := func(v poc.ParticipantID) (Responder, error) {
		m, ok := members[v]
		if !ok {
			return nil, fmt.Errorf("no member %s", v)
		}
		return m, nil
	}
	proxy := NewProxy(ps, reputation.DefaultStrategy(), resolver)
	if err := proxy.RegisterList(dist.TaskID, dist.List); err != nil {
		t.Fatalf("RegisterList: %v", err)
	}
	return &fixture{ps: ps, graph: g, members: members, proxy: proxy, dist: dist}
}

func TestHonestGoodQueryRecoversExactPath(t *testing.T) {
	fx := newFixture(t, 8)
	for id, wantPath := range fx.dist.Ground.Paths {
		result, err := fx.proxy.QueryPath(context.Background(), id, Good)
		if err != nil {
			t.Fatalf("QueryPath(%s): %v", id, err)
		}
		if len(result.Violations) != 0 {
			t.Fatalf("honest run must yield no violations, got %+v", result.Violations)
		}
		if !result.Complete {
			t.Fatalf("query for %s must reach a leaf", id)
		}
		if len(result.Path) != len(wantPath) {
			t.Fatalf("path for %s = %v, want %v", id, result.Path, wantPath)
		}
		for i := range wantPath {
			if result.Path[i] != wantPath[i] {
				t.Fatalf("path for %s = %v, want %v", id, result.Path, wantPath)
			}
		}
		// Every hop must have recovered the exact committed trace.
		for _, v := range wantPath {
			tr, ok := result.Traces[v]
			if !ok {
				t.Fatalf("no trace recovered from %s for %s", v, id)
			}
			wantTr, _ := fx.members[v].Participant().Trace(id)
			if string(tr.Data) != string(wantTr.Data) {
				t.Fatalf("trace from %s differs from database", v)
			}
		}
		if len(result.PathInfo()) != len(wantPath) {
			t.Fatalf("PathInfo must cover the full path")
		}
	}
}

func TestHonestBadQueryRecoversExactPath(t *testing.T) {
	fx := newFixture(t, 4)
	for id, wantPath := range fx.dist.Ground.Paths {
		result, err := fx.proxy.QueryPath(context.Background(), id, Bad)
		if err != nil {
			t.Fatalf("QueryPath(%s): %v", id, err)
		}
		if len(result.Violations) != 0 {
			t.Fatalf("honest run must yield no violations, got %+v", result.Violations)
		}
		if len(result.Path) != len(wantPath) {
			t.Fatalf("path for %s = %v, want %v", id, result.Path, wantPath)
		}
	}
}

func TestReputationDoubleEdge(t *testing.T) {
	fx := newFixture(t, 8)
	var goodID, badID poc.ProductID
	for id := range fx.dist.Ground.Paths {
		if goodID == "" {
			goodID = id
		} else if badID == "" {
			badID = id
			break
		}
	}
	goodRes, err := fx.proxy.QueryPath(context.Background(), goodID, Good)
	if err != nil {
		t.Fatal(err)
	}
	badRes, err := fx.proxy.QueryPath(context.Background(), badID, Bad)
	if err != nil {
		t.Fatal(err)
	}
	ledger := fx.proxy.Ledger()
	for _, v := range goodRes.Path {
		onBadPath := false
		for _, b := range badRes.Path {
			if v == b {
				onBadPath = true
			}
		}
		if !onBadPath && ledger.Score(v) <= 0 {
			t.Fatalf("%s on good path only must have positive score, got %v", v, ledger.Score(v))
		}
	}
}

func TestQueryUnknownProductFindsNoStart(t *testing.T) {
	fx := newFixture(t, 2)
	result, err := fx.proxy.QueryPath(context.Background(), "never-distributed", Good)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Path) != 0 || result.TaskID != "" {
		t.Fatalf("unknown product must identify nobody, got %+v", result)
	}
	// Bad case: every initial clears itself with a valid non-ownership proof.
	result, err = fx.proxy.QueryPath(context.Background(), "never-distributed", Bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Path) != 0 || len(result.Violations) != 0 {
		t.Fatalf("unknown product in bad case must clear all initials, got %+v", result)
	}
}

func TestQueryInvalidQuality(t *testing.T) {
	fx := newFixture(t, 2)
	if _, err := fx.proxy.QueryPath(context.Background(), "id1", Quality(0)); err == nil {
		t.Fatal("invalid quality must be rejected")
	}
}

func TestRegisterListValidation(t *testing.T) {
	fx := newFixture(t, 2)
	if err := fx.proxy.RegisterList(fx.dist.TaskID, fx.dist.List); err == nil {
		t.Fatal("duplicate task registration must be rejected")
	}
	bad := poc.NewList()
	bad.AddPair("x", "y")
	if err := fx.proxy.RegisterList("task-bad", bad); err == nil {
		t.Fatal("invalid list must be rejected")
	}
	if got := fx.proxy.Tasks(); len(got) != 1 || got[0] != "task-1" {
		t.Fatalf("Tasks() = %v", got)
	}
}

func TestMultiDistributionTasks(t *testing.T) {
	// Two tasks from the two initial participants; queries must locate the
	// right task through the POC queues (§IV.D).
	ps := corePS(t)
	g := supplychain.FigureOneGraph()
	members := make(map[poc.ParticipantID]*Member)
	for _, v := range g.Participants() {
		members[v] = NewMember(ps, supplychain.NewParticipant(v))
	}
	resolver := func(v poc.ParticipantID) (Responder, error) { return members[v], nil }
	proxy := NewProxy(ps, reputation.DefaultStrategy(), resolver)

	tagsA, err := supplychain.MintTags("a", 4)
	if err != nil {
		t.Fatal(err)
	}
	distA, err := RunDistribution(ps, g, members, "v0", tagsA, nil, supplychain.RoundRobinSplitter, "task-A")
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.RegisterList("task-A", distA.List); err != nil {
		t.Fatal(err)
	}

	tagsB, err := supplychain.MintTags("b", 4)
	if err != nil {
		t.Fatal(err)
	}
	distB, err := RunDistribution(ps, g, members, "v1", tagsB, nil, supplychain.RoundRobinSplitter, "task-B")
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.RegisterList("task-B", distB.List); err != nil {
		t.Fatal(err)
	}

	for id, wantPath := range distB.Ground.Paths {
		result, err := proxy.QueryPath(context.Background(), id, Good)
		if err != nil {
			t.Fatal(err)
		}
		if result.TaskID != "task-B" {
			t.Fatalf("product %s must resolve to task-B, got %q", id, result.TaskID)
		}
		if len(result.Path) != len(wantPath) {
			t.Fatalf("path for %s = %v, want %v", id, result.Path, wantPath)
		}
		if len(result.Violations) != 0 {
			t.Fatalf("honest multi-task query must be clean: %+v", result.Violations)
		}
	}
	// Bad-product flavour across tasks, too (§IV.D bad case).
	for id := range distA.Ground.Paths {
		result, err := proxy.QueryPath(context.Background(), id, Bad)
		if err != nil {
			t.Fatal(err)
		}
		if result.TaskID != "task-A" {
			t.Fatalf("product %s must resolve to task-A, got %q", id, result.TaskID)
		}
		break
	}
}

func TestMemberTaskStateValidation(t *testing.T) {
	ps := corePS(t)
	m := NewMember(ps, supplychain.NewParticipant("vX"))
	if _, err := m.Query(context.Background(), "no-task", "id1", Good); err == nil {
		t.Fatal("query for uncommitted task must error")
	}
	if _, err := m.DemandOwnership(context.Background(), "no-task", "id1"); err == nil {
		t.Fatal("demand for uncommitted task must error")
	}
	if err := m.SetNextHop("no-task", "id1", "vY"); err == nil {
		t.Fatal("next hop for uncommitted task must error")
	}
	if _, err := m.POC("no-task"); err == nil {
		t.Fatal("POC for uncommitted task must error")
	}
	if _, err := m.CommitTask("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.POC("t"); err != nil {
		t.Fatal(err)
	}
}

func TestHonestMemberResponses(t *testing.T) {
	ps := corePS(t)
	m := NewMember(ps, supplychain.NewParticipant("vX"))
	if err := m.Participant().RecordTrace(poc.Trace{Product: "id1", Data: []byte("d")}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CommitTask("t"); err != nil {
		t.Fatal(err)
	}
	if err := m.SetNextHop("t", "id1", "vY"); err != nil {
		t.Fatal(err)
	}

	resp, err := m.Query(context.Background(), "t", "id1", Good)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Claim != ClaimProcessed || resp.Proof.Kind != poc.Ownership || resp.Next != "vY" {
		t.Fatalf("unexpected response %+v", resp)
	}

	resp, err = m.Query(context.Background(), "t", "id2", Bad)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Claim != ClaimNotProcessed || resp.Proof.Kind != poc.NonOwnership {
		t.Fatalf("unexpected response %+v", resp)
	}

	resp, err = m.DemandOwnership(context.Background(), "t", "id1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Claim != ClaimProcessed || resp.Proof.Kind != poc.Ownership {
		t.Fatalf("unexpected demand response %+v", resp)
	}
	resp, err = m.DemandOwnership(context.Background(), "t", "id2")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Claim != ClaimNotProcessed {
		t.Fatalf("honest member must not claim unprocessed products: %+v", resp)
	}
}

func TestUnreachableParticipantRecorded(t *testing.T) {
	fx := newFixture(t, 4)
	// Break the resolver for one mid-path participant.
	var victim poc.ParticipantID
	var productID poc.ProductID
	for id, path := range fx.dist.Ground.Paths {
		if len(path) >= 3 {
			victim = path[1]
			productID = id
			break
		}
	}
	if victim == "" {
		t.Skip("no path long enough")
	}
	resolver := func(v poc.ParticipantID) (Responder, error) {
		if v == victim {
			return nil, fmt.Errorf("participant offline")
		}
		return fx.members[v], nil
	}
	proxy := NewProxy(fx.ps, reputation.DefaultStrategy(), resolver)
	if err := proxy.RegisterList(fx.dist.TaskID, fx.dist.List); err != nil {
		t.Fatal(err)
	}
	result, err := proxy.QueryPath(context.Background(), productID, Good)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Violated(ViolationUnreachable) {
		t.Fatalf("offline participant must be recorded as unreachable: %+v", result.Violations)
	}
}

func TestStringers(t *testing.T) {
	if ClaimProcessed.String() != "processed" || ClaimNotProcessed.String() != "not-processed" {
		t.Fatal("claim strings wrong")
	}
	if Claim(9).String() == "" || ViolationType(9).String() == "" {
		t.Fatal("unknown enum values must render non-empty")
	}
	for _, vt := range []ViolationType{
		ViolationClaimProcessing, ViolationClaimNonProcessing,
		ViolationNoValidProof, ViolationWrongNextHop, ViolationUnreachable,
	} {
		if vt.String() == "" {
			t.Fatalf("violation type %d must render", vt)
		}
	}
}

func TestMemberTaskPersistence(t *testing.T) {
	// A participant daemon restart: export the task state, rebuild the
	// member from scratch, import, and keep answering queries that verify
	// against the POC the proxy already holds.
	fx := newFixture(t, 4)
	var productID poc.ProductID
	var victim poc.ParticipantID
	for id, path := range fx.dist.Ground.Paths {
		if len(path) >= 2 {
			productID = id
			victim = path[1]
			break
		}
	}
	state, err := fx.members[victim].ExportTask(fx.dist.TaskID)
	if err != nil {
		t.Fatalf("ExportTask: %v", err)
	}

	reborn := NewMember(fx.ps, supplychain.NewParticipant(victim))
	if err := reborn.ImportTask(fx.dist.TaskID, state); err != nil {
		t.Fatalf("ImportTask: %v", err)
	}
	fx.members[victim] = reborn

	result, err := fx.proxy.QueryPath(context.Background(), productID, Good)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Violations) != 0 || !result.Complete {
		t.Fatalf("restarted member must answer seamlessly: %+v", result.Violations)
	}
	found := false
	for _, v := range result.Path {
		if v == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("restarted member %s missing from path %v", victim, result.Path)
	}
}

func TestImportTaskValidation(t *testing.T) {
	fx := newFixture(t, 2)
	var someone poc.ParticipantID
	for _, v := range fx.dist.Ground.Involved {
		someone = v
		break
	}
	state, err := fx.members[someone].ExportTask(fx.dist.TaskID)
	if err != nil {
		t.Fatal(err)
	}
	imposter := NewMember(fx.ps, supplychain.NewParticipant("imposter"))
	if err := imposter.ImportTask(fx.dist.TaskID, state); err == nil {
		t.Fatal("importing another participant's state must be rejected")
	}
	if err := imposter.ImportTask("t", []byte("garbage")); err == nil {
		t.Fatal("garbage state must be rejected")
	}
	if _, err := fx.members[someone].ExportTask("no-such-task"); err == nil {
		t.Fatal("exporting an unknown task must error")
	}
}
