package core

import (
	"context"
	"fmt"
	"math/rand"

	"desword/internal/poc"
)

// This file implements the proxy's self-issued sampling queries: "the proxy
// can also adjust the query frequency by sampling products from the market,
// and issue queries for them by itself" (§II.C). Sampling is what arms the
// double edge — participants cannot predict which products the proxy will
// pick, so good products carry real reward probability and bad ones real
// penalty probability.

// QualityCheck is the proxy's product quality inspection: given a sampled
// product, it reports whether the physical check found it good or bad.
type QualityCheck func(id poc.ProductID) Quality

// SampleReport summarizes one sampling campaign.
type SampleReport struct {
	// Sampled lists the products the campaign actually queried.
	Sampled []poc.ProductID
	// Results holds one query result per sampled product, in order.
	Results []*Result
	// GoodCount and BadCount tally the inspected qualities.
	GoodCount int
	BadCount  int
}

// SampleAndQuery draws each market product independently with the given
// rate, inspects its quality, and issues the corresponding good/bad path
// query. The caller supplies the randomness source so campaigns are
// reproducible in tests and experiments.
func (px *Proxy) SampleAndQuery(ctx context.Context, rng *rand.Rand, market []poc.ProductID, rate float64, check QualityCheck) (*SampleReport, error) {
	if rng == nil {
		return nil, fmt.Errorf("core: sampling requires a randomness source")
	}
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("core: sampling rate %v outside [0,1]", rate)
	}
	if check == nil {
		return nil, fmt.Errorf("core: sampling requires a quality check")
	}
	report := &SampleReport{}
	for _, id := range market {
		if rng.Float64() >= rate {
			continue
		}
		quality := check(id)
		result, err := px.QueryPath(ctx, id, quality)
		if err != nil {
			return nil, fmt.Errorf("core: sampling query for %s: %w", id, err)
		}
		report.Sampled = append(report.Sampled, id)
		report.Results = append(report.Results, result)
		switch quality {
		case Good:
			report.GoodCount++
		case Bad:
			report.BadCount++
		}
	}
	return report, nil
}
