package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"desword/internal/events"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/trace"
)

// Proxy is DE-Sword's trustworthy query proxy (e.g. the FDA): it generates
// the public parameter, stores submitted POC lists, maintains one POC-queue
// per initial participant (§IV.D), answers product path information queries,
// and maintains the public reputation ledger.
//
// Internally the proxy is a sharded tier (ProxyConfig.Shards): query-path
// state is partitioned across N shard workers by product-id hash, concurrent
// queries for the same product coalesce onto one walk, and an optional
// admission gate sheds excess load at the front door instead of queueing it
// into timeouts. The single-shard default behaves exactly like the
// historical proxy.
type Proxy struct {
	cfg      ProxyConfig
	ps       *poc.PublicParams
	strategy reputation.Strategy
	resolve  Resolver
	events   *events.Sink
	gate     *Gate
	router   *shardRouter

	counters statsCounter
}

// DefaultProbeFanout bounds how many children are probed concurrently when a
// walk loses the named next hop.
const DefaultProbeFanout = 4

// ProxyOption configures a Proxy.
//
// Deprecated: the variadic options are superseded by ProxyConfig, which
// carries every proxy-tier knob (shards, fan-outs, admission control) in one
// struct shared by desword-proxy and tests. They remain as thin adapters
// over the config for existing callers.
type ProxyOption func(*ProxyConfig)

// WithProbeFanout sets how many candidate children probeChildren interrogates
// concurrently. 1 restores the fully serial walk; non-positive values keep
// the default. The observable outcome is identical at any fan-out — see
// probeChildren.
//
// Deprecated: set ProxyConfig.ProbeFanout instead.
func WithProbeFanout(n int) ProxyOption {
	return func(cfg *ProxyConfig) {
		if n > 0 {
			cfg.ProbeFanout = n
		}
	}
}

// WithEventSink makes the proxy emit one canonical wide event per completed
// query into the flight recorder. The event is assembled (and attached to
// Result.Event) with or without a sink; the sink adds the ring/journal
// destinations.
//
// Deprecated: set ProxyConfig.EventSink instead.
func WithEventSink(s *events.Sink) ProxyOption {
	return func(cfg *ProxyConfig) { cfg.EventSink = s }
}

// queueEntry is one element of an initial participant's POC-queue: the pair
// (ps, POC_v̄) of §IV.D, tagged with the task whose list contains it.
type queueEntry struct {
	taskID     string
	credential poc.POC
}

// NewProxy creates a single-flavour proxy from the deprecated variadic
// options. The resolver supplies reachable endpoints for participants; the
// strategy configures the double-edged award.
//
// Deprecated: use NewProxyWithConfig, which exposes the full proxy tier
// (sharding, batch fan-out, admission control).
func NewProxy(ps *poc.PublicParams, strategy reputation.Strategy, resolve Resolver, opts ...ProxyOption) *Proxy {
	var cfg ProxyConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewProxyWithConfig(ps, strategy, resolve, cfg)
}

// NewProxyWithConfig creates a proxy tier from one options struct. The zero
// ProxyConfig reproduces the historical single-shard, ungated proxy.
func NewProxyWithConfig(ps *poc.PublicParams, strategy reputation.Strategy, resolve Resolver, cfg ProxyConfig) *Proxy {
	resolved := cfg.withDefaults()
	px := &Proxy{
		cfg:      resolved,
		ps:       ps,
		strategy: strategy,
		resolve:  resolve,
		events:   resolved.EventSink,
		router:   newShardRouter(resolved.Shards),
	}
	if resolved.gated() {
		px.gate = NewGate("proxy", resolved.AdmissionWorkers, resolved.AdmissionQueue)
	}
	return px
}

// Config returns the proxy's resolved configuration.
func (px *Proxy) Config() ProxyConfig { return px.cfg }

// PublicParams returns the public parameter ps that participants use to
// build POCs.
func (px *Proxy) PublicParams() *poc.PublicParams { return px.ps }

// Ledger returns shard 0's reputation ledger. With one shard (the default)
// this is the whole public ledger, exactly as before sharding.
//
// Deprecated: a sharded proxy settles each product's awards on the ledger of
// the shard owning the product; use Scores, Score and AuditShards, which
// aggregate across shards.
func (px *Proxy) Ledger() *reputation.Ledger { return px.router.shards[0].ledger }

// Score returns a participant's reputation score summed across every
// shard ledger. Awards are additive deltas, so the sum over the partition
// equals the single-ledger score of the unsharded proxy.
func (px *Proxy) Score(v poc.ParticipantID) float64 {
	var total float64
	for _, sh := range px.router.shards {
		total += sh.ledger.Score(v)
	}
	return total
}

// Scores returns the public reputation table: every participant's score
// summed across the shard ledgers.
func (px *Proxy) Scores() map[poc.ParticipantID]float64 {
	out := make(map[poc.ParticipantID]float64)
	for _, sh := range px.router.shards {
		for v, s := range sh.ledger.Scores() {
			out[v] += s
		}
	}
	return out
}

// AuditShards returns each shard's tamper-evident score history alongside
// its pinned head, in shard order. Each shard chain verifies independently
// with reputation.VerifyAuditChain; the union of the replayed chains yields
// the public score table.
func (px *Proxy) AuditShards() []reputation.ShardChain {
	out := make([]reputation.ShardChain, len(px.router.shards))
	for i, sh := range px.router.shards {
		head, count := sh.ledger.Head()
		out[i] = reputation.ShardChain{
			Shard:   i,
			Entries: sh.ledger.AuditLog(),
			Head:    head,
			Count:   count,
		}
	}
	return out
}

// RegisterList stores a POC list submitted by an initial participant at the
// end of a distribution task, and inserts (ps, POC_v̄) into the POC-queue of
// each of the list's initial participants (§IV.D). The list fans out to
// every shard worker: a list is immutable task metadata any product's walk
// may need, so each shard keeps its own pointer-level index and the query
// path never crosses a shard boundary for it.
func (px *Proxy) RegisterList(taskID string, list *poc.List) error {
	if err := list.Validate(); err != nil {
		return fmt.Errorf("core: rejecting POC list for %s: %w", taskID, err)
	}
	// Pre-resolve the initials' credentials once; per-shard insertion below
	// is then infallible, so a duplicate cannot leave shards half-updated.
	initials := list.Initials()
	credentials := make([]poc.POC, len(initials))
	for i, initial := range initials {
		credential, err := list.POC(initial)
		if err != nil {
			return err
		}
		credentials[i] = credential
	}
	// The first shard arbitrates duplicates: every registration takes the
	// shards in order, so a taskID either lands on all shards or none.
	first := px.router.shards[0]
	first.mu.Lock()
	if _, dup := first.lists[taskID]; dup {
		first.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrAlreadyRegistered, taskID)
	}
	first.insertListLocked(taskID, list, initials, credentials)
	first.mu.Unlock()
	for _, sh := range px.router.shards[1:] {
		sh.mu.Lock()
		sh.insertListLocked(taskID, list, initials, credentials)
		sh.mu.Unlock()
	}
	px.counters.addTask()
	mTasksRegistered.Inc()
	return nil
}

// insertListLocked indexes one validated list on the shard. Callers hold
// sh.mu.
func (sh *proxyShard) insertListLocked(taskID string, list *poc.List, initials []poc.ParticipantID, credentials []poc.POC) {
	sh.lists[taskID] = list
	for i, initial := range initials {
		sh.queues[initial] = append(sh.queues[initial], queueEntry{taskID: taskID, credential: credentials[i]})
	}
}

// Tasks returns the registered task ids, sorted. Every shard indexes every
// list, so shard 0's view is the proxy's view.
func (px *Proxy) Tasks() []string {
	sh := px.router.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	out := make([]string, 0, len(sh.lists))
	for id := range sh.lists {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// QueryPath runs a full product path information query (§IV.C/§IV.D): it
// locates the distribution task through the POC-queues of the initial
// participants, walks the path hop by hop verifying proofs against the POC
// list, detects the dishonest behaviours of §III.B, and applies the
// double-edged reputation award to the identified path.
//
// QueryPath is the batch=1 case of the proxy's one query path: admission at
// the front door, product-hash routing to the owning shard, single-flight
// coalescing with concurrent queries for the same product, then the walk.
// Shed queries return an error wrapping ErrLoadShed.
func (px *Proxy) QueryPath(ctx context.Context, id poc.ProductID, quality Quality) (*Result, error) {
	if quality != Good && quality != Bad {
		return nil, fmt.Errorf("core: invalid quality %v", quality)
	}
	item := px.queryItem(ctx, id, quality)
	return item.Result, item.Err
}

// queryItem is the shared single-product path both QueryPath and
// QueryPathBatch drive: admission gate, shard routing, coalescing, walk.
func (px *Proxy) queryItem(ctx context.Context, id poc.ProductID, quality Quality) BatchItem {
	item := BatchItem{Product: id}
	release, err := px.gate.Acquire(ctx)
	if err != nil {
		item.Err = err
		item.Shed = true
		px.emitShedEvent(id, quality, err)
		return item
	}
	defer release()
	sh := px.router.shardFor(id)
	item.Result, item.Err = sh.queryCoalesced(ctx, flightKey{product: id, quality: quality}, func() (*Result, error) {
		return px.runQuery(ctx, sh, id, quality)
	})
	return item
}

// emitShedEvent records a load-shed query in the flight recorder: the query
// never ran, but overload must be visible in the same stream as the work it
// displaced.
func (px *Proxy) emitShedEvent(id poc.ProductID, quality Quality, err error) {
	ev := events.New(events.KindQuery, time.Now())
	ev.Product = string(id)
	ev.Quality = quality.String()
	ev.Outcome = events.OutcomeLoadShed
	ev.Error = err.Error()
	px.events.Emit(ev)
}

// runQuery performs one walk on the owning shard. It is always entered
// through the shard's single-flight table, so at most one walk per
// (product, quality) runs at a time.
func (px *Proxy) runQuery(ctx context.Context, sh *proxyShard, id poc.ProductID, quality Quality) (*Result, error) {
	ctx, span := trace.Default.Start(ctx, "proxy.query_path",
		trace.String("product", string(id)), trace.String("quality", quality.String()),
		trace.Int("shard", sh.id))
	defer span.End()
	qStart := time.Now()
	// Sampled queries stamp their trace id on the latency observation, so
	// the slowest path walks are one click from their traces on statusz.
	defer func() {
		queryLatency(quality).ObserveWithExemplar(time.Since(qStart).Seconds(), span.TraceID())
	}()
	px.counters.addQuery(quality)
	countQuery(quality)
	result := &Result{
		Product: id,
		Quality: quality,
		Traces:  make(map[poc.ParticipantID]poc.Trace),
		TraceID: span.TraceID(),
	}
	// The query's scope rides the context into every hop: proof-cache and
	// pool-transport instrumentation attribute their counters to THIS query,
	// and finishEvent copies them onto the wide event. Innermost scope wins,
	// so a node-server scope further out never swallows them.
	scope := events.NewScope()
	ctx = events.WithScope(ctx, scope)

	start, entry, firstNext := px.findStart(ctx, sh, id, quality, result)
	if start == "" {
		// No initial participant admits processing the product in any task.
		span.SetAttr(trace.Int("hops", 0), trace.Int("violations", len(result.Violations)))
		px.settle(sh, result)
		px.finishEvent(result, scope, qStart)
		return result, nil
	}
	result.TaskID = entry.taskID

	sh.mu.RLock()
	list := sh.lists[entry.taskID]
	sh.mu.RUnlock()
	px.walk(ctx, list, entry.taskID, start, firstNext, id, quality, result)
	span.SetAttr(trace.String("task", entry.taskID),
		trace.Int("hops", len(result.Path)), trace.Int("violations", len(result.Violations)),
		trace.Bool("complete", result.Complete))
	px.settle(sh, result)
	px.finishEvent(result, scope, qStart)
	return result, nil
}

// finishEvent assembles the query's canonical wide event from everything the
// walk accumulated and emits it into the flight recorder when a sink is
// configured. The event is attached to the result either way, so local and
// remote queriers (desword-query -json) see the same record the proxy kept.
func (px *Proxy) finishEvent(result *Result, scope *events.Scope, start time.Time) {
	ev := events.New(events.KindQuery, start)
	ev.DurationUS = time.Since(start).Microseconds()
	ev.TraceID = result.TraceID
	ev.Product = string(result.Product)
	ev.Quality = result.Quality.String()
	ev.TaskID = result.TaskID
	ev.PathLen = len(result.Path)
	ev.Complete = result.Complete
	switch {
	case result.TaskID == "":
		ev.Outcome = events.OutcomeNoOrigin
	case result.Complete:
		ev.Outcome = events.OutcomeComplete
	default:
		ev.Outcome = events.OutcomeIncomplete
	}
	for _, h := range result.hops {
		ev.AddHop(h)
	}
	for _, v := range result.Violations {
		ev.Violations = append(ev.Violations, events.Violation{
			Participant: string(v.Participant),
			Type:        v.Type.String(),
			Detail:      v.Detail,
		})
	}
	ev.RepDeltas = result.repDeltas
	scope.Fill(ev)
	result.Event = ev
	px.events.Emit(ev)
}

// recordHop appends one committed query interaction to the result's hop list.
// It is called exactly where the interaction counters are updated — at commit
// time — so discarded speculative probes never appear (see probeChildren).
func recordHop(result *Result, v poc.ParticipantID, o identifyOutcome) {
	result.hops = append(result.hops, events.Hop{
		Participant: string(v),
		Identified:  o.identified,
		IdentifyUS:  o.timing.identifyUS,
		ProveUS:     o.timing.proveUS,
		VerifyUS:    o.timing.verifyUS,
		DemandUS:    o.timing.demandUS,
		Violations:  len(o.violations),
	})
}

// findStart probes each initial participant's POC-queue (§IV.D) and returns
// the first initial identified as having processed the product, along with
// the queue entry that anchored the identification.
func (px *Proxy) findStart(ctx context.Context, sh *proxyShard, id poc.ProductID, quality Quality, result *Result) (poc.ParticipantID, queueEntry, poc.ParticipantID) {
	ctx, span := trace.Default.StartChild(ctx, "poc_queue.find_start")
	defer span.End()
	sh.mu.RLock()
	initials := make([]poc.ParticipantID, 0, len(sh.queues))
	for v := range sh.queues {
		initials = append(initials, v)
	}
	sort.Slice(initials, func(i, j int) bool { return initials[i] < initials[j] })
	queues := make(map[poc.ParticipantID][]queueEntry, len(sh.queues))
	for v, q := range sh.queues {
		queues[v] = append([]queueEntry(nil), q...)
	}
	sh.mu.RUnlock()

	for _, initial := range initials {
		for _, entry := range queues[initial] {
			outcome := px.identify(ctx, entry.taskID, entry.credential, initial, id, quality)
			px.counters.addInteraction(outcome.identified)
			recordHop(result, initial, outcome)
			result.Violations = append(result.Violations, outcome.violations...)
			if outcome.identified {
				if outcome.trace != nil {
					result.Traces[initial] = *outcome.trace
				}
				result.Path = append(result.Path, initial)
				return initial, entry, outcome.next
			}
		}
	}
	return "", queueEntry{}, ""
}

// hopTiming carries the proxy-side wall-clock breakdown of one query
// interaction, in microseconds: the whole interaction (identify), the query
// round trip (prove — dominated by the participant's proof generation), the
// proxy-side proof verifications (verify), and the ownership-demand round
// trip of the bad-product case (demand).
type hopTiming struct {
	identifyUS, proveUS, verifyUS, demandUS int64
}

// identifyOutcome is the result of one query interaction with a participant.
type identifyOutcome struct {
	identified bool
	trace      *poc.Trace
	next       poc.ParticipantID
	violations []Violation
	timing     hopTiming
}

// identify runs one query interaction (§IV.C step 1–2) with participant v
// under its POC for the given task.
func (px *Proxy) identify(ctx context.Context, taskID string, credential poc.POC, v poc.ParticipantID, id poc.ProductID, quality Quality) (outcome identifyOutcome) {
	hopStart := time.Now()
	ctx, span := trace.Default.StartChild(ctx, "hop.identify",
		trace.String("participant", string(v)), trace.String("task", taskID))
	defer func() {
		outcome.timing.identifyUS = time.Since(hopStart).Microseconds()
		span.SetAttr(trace.Bool("identified", outcome.identified),
			trace.Int("violations", len(outcome.violations)))
		span.End()
	}()
	// Interaction counters are updated by the callers at commit time, not
	// here: speculative child probes whose outcome is discarded (see
	// probeChildren) must not show up in Stats.
	responder, err := px.resolve(v)
	if err != nil {
		span.SetError(err)
		return identifyOutcome{violations: []Violation{{
			Participant: v, Type: ViolationUnreachable,
			Detail: fmt.Sprintf("resolving endpoint: %v", err),
		}}}
	}
	queryStart := time.Now()
	resp, err := responder.Query(ctx, taskID, id, quality)
	proveUS := time.Since(queryStart).Microseconds()
	if err != nil || resp == nil {
		span.SetError(err)
		outcome = identifyOutcome{violations: []Violation{{
			Participant: v, Type: ViolationUnreachable,
			Detail: fmt.Sprintf("query failed: %v", err),
		}}}
		outcome.timing.proveUS = proveUS
		return outcome
	}

	switch quality {
	case Good:
		outcome = px.identifyGood(ctx, credential, v, id, resp)
	default:
		outcome = px.identifyBad(ctx, taskID, credential, v, id, resp, responder)
	}
	outcome.timing.proveUS = proveUS
	return outcome
}

// identifyGood implements the good-product interaction: only a valid
// ownership proof identifies v (§IV.C good case).
func (px *Proxy) identifyGood(ctx context.Context, credential poc.POC, v poc.ParticipantID, id poc.ProductID, resp *Response) identifyOutcome {
	if resp.Claim != ClaimProcessed {
		// Not identified; in the good case a participant renouncing its
		// positive score needs no proof.
		return identifyOutcome{}
	}
	if resp.Proof == nil || resp.Proof.Kind != poc.Ownership {
		return identifyOutcome{violations: []Violation{{
			Participant: v, Type: ViolationClaimProcessing,
			Detail: "claimed processing without an ownership proof",
		}}}
	}
	verifyStart := time.Now()
	tr, err := poc.Verify(ctx, px.ps, credential, id, resp.Proof)
	verifyUS := time.Since(verifyStart).Microseconds()
	if err != nil {
		return identifyOutcome{
			violations: []Violation{{
				Participant: v, Type: ViolationClaimProcessing,
				Detail: fmt.Sprintf("ownership proof rejected: %v", err),
			}},
			timing: hopTiming{verifyUS: verifyUS},
		}
	}
	return identifyOutcome{identified: true, trace: tr, next: resp.Next,
		timing: hopTiming{verifyUS: verifyUS}}
}

// identifyBad implements the bad-product interaction: a valid non-ownership
// proof clears v; anything else identifies it, with an ownership demand to
// recover the trace (§IV.C bad case).
func (px *Proxy) identifyBad(ctx context.Context, taskID string, credential poc.POC, v poc.ParticipantID, id poc.ProductID, resp *Response, responder Responder) identifyOutcome {
	var t hopTiming
	// verify wraps poc.Verify, accumulating verification time for the hop's
	// wide-event breakdown (the bad case can verify up to two proofs).
	verify := func(proof *poc.Proof) (*poc.Trace, error) {
		verifyStart := time.Now()
		tr, err := poc.Verify(ctx, px.ps, credential, id, proof)
		t.verifyUS += time.Since(verifyStart).Microseconds()
		return tr, err
	}
	if resp.Claim == ClaimNotProcessed {
		if resp.Proof != nil && resp.Proof.Kind == poc.NonOwnership {
			if _, err := verify(resp.Proof); err == nil {
				return identifyOutcome{timing: t} // cleared
			}
		}
		// The non-ownership claim did not hold up: demand an ownership proof.
		demandStart := time.Now()
		demand, err := responder.DemandOwnership(ctx, taskID, id)
		t.demandUS = time.Since(demandStart).Microseconds()
		if err == nil && demand != nil && demand.Proof != nil && demand.Proof.Kind == poc.Ownership {
			if tr, verr := verify(demand.Proof); verr == nil {
				return identifyOutcome{
					identified: true,
					trace:      tr,
					next:       demand.Next,
					violations: []Violation{{
						Participant: v, Type: ViolationClaimNonProcessing,
						Detail: "claimed non-processing but holds a committed trace",
					}},
					timing: t,
				}
			}
		}
		// Neither proof verified: impossible for an honest holder of a
		// correct POC. Identify v as dishonest without a trace.
		return identifyOutcome{
			identified: true,
			violations: []Violation{{
				Participant: v, Type: ViolationNoValidProof,
				Detail: "produced neither a valid ownership nor non-ownership proof",
			}},
			timing: t,
		}
	}
	// Claims processing in the bad case: verify the ownership proof.
	if resp.Proof != nil && resp.Proof.Kind == poc.Ownership {
		if tr, err := verify(resp.Proof); err == nil {
			return identifyOutcome{identified: true, trace: tr, next: resp.Next, timing: t}
		}
	}
	return identifyOutcome{
		identified: true,
		violations: []Violation{{
			Participant: v, Type: ViolationNoValidProof,
			Detail: "claimed processing with an invalid ownership proof",
		}},
		timing: t,
	}
}

// walk continues the query from the identified start down the POC list,
// hop by hop (§IV.C step 3), with the next-hop checks of §III.B.
func (px *Proxy) walk(ctx context.Context, list *poc.List, taskID string, start, firstNext poc.ParticipantID, id poc.ProductID, quality Quality, result *Result) {
	visited := map[poc.ParticipantID]bool{start: true}
	cur := start
	next := firstNext
	for {
		if next == "" {
			// No next hop named. If the POC list records children, the
			// product may still have moved on — probe them.
			child, childNext := px.probeChildren(ctx, list, taskID, cur, id, quality, visited, result)
			if child == "" {
				result.Complete = len(list.Children(cur)) == 0
				return
			}
			result.Violations = append(result.Violations, Violation{
				Participant: cur, Type: ViolationWrongNextHop,
				Detail: fmt.Sprintf("omitted next hop; %s identified among children", child),
			})
			cur = child
			next = childNext
			continue
		}
		if !list.HasPair(cur, next) {
			// §III.B "wrong participant", case 2: the named next is not a
			// recorded child of cur.
			result.Violations = append(result.Violations, Violation{
				Participant: cur, Type: ViolationWrongNextHop,
				Detail: fmt.Sprintf("named %s, which is not a recorded child", next),
			})
			next = ""
			continue
		}
		if visited[next] {
			result.Violations = append(result.Violations, Violation{
				Participant: cur, Type: ViolationWrongNextHop,
				Detail: fmt.Sprintf("named already-visited %s", next),
			})
			next = ""
			continue
		}
		credential, err := list.POC(next)
		if err != nil {
			result.Violations = append(result.Violations, Violation{
				Participant: cur, Type: ViolationWrongNextHop,
				Detail: fmt.Sprintf("named %s, which holds no POC", next),
			})
			next = ""
			continue
		}
		visited[next] = true
		outcome := px.identify(ctx, taskID, credential, next, id, quality)
		px.counters.addInteraction(outcome.identified)
		recordHop(result, next, outcome)
		result.Violations = append(result.Violations, outcome.violations...)
		if !outcome.identified {
			// §III.B "wrong participant", case 1: the named next provably
			// did not process the product.
			result.Violations = append(result.Violations, Violation{
				Participant: cur, Type: ViolationWrongNextHop,
				Detail: fmt.Sprintf("named %s, which did not process the product", next),
			})
			next = ""
			continue
		}
		result.Path = append(result.Path, next)
		if outcome.trace != nil {
			result.Traces[next] = *outcome.trace
		}
		cur = next
		next = outcome.next
	}
}

// probeChildren asks each recorded child of cur (not yet visited) whether it
// processed the product, returning the first identified child and that
// child's claimed next hop.
//
// Probes run speculatively with a bounded fan-out (ProxyConfig.ProbeFanout),
// but the outcome is committed strictly in list order, so the result is
// identical to the serial walk at any fan-out: the first identified child in
// list order wins; violations land in stable order; probes launched past the
// winner are cancelled and their outcomes discarded entirely — not marked
// visited, not counted, not recorded — exactly as if they had never been
// interrogated. Speculation is safe because the probe interaction is
// read-only on the participant side (query and, in the bad case, the
// ownership demand both answer from the committed DPOC).
func (px *Proxy) probeChildren(ctx context.Context, list *poc.List, taskID string, cur poc.ParticipantID, id poc.ProductID, quality Quality, visited map[poc.ParticipantID]bool, result *Result) (poc.ParticipantID, poc.ParticipantID) {
	type candidate struct {
		child      poc.ParticipantID
		credential poc.POC
	}
	var cands []candidate
	for _, child := range list.Children(cur) {
		if visited[child] {
			continue
		}
		credential, err := list.POC(child)
		if err != nil {
			continue
		}
		cands = append(cands, candidate{child: child, credential: credential})
	}

	commit := func(c candidate, outcome identifyOutcome) (poc.ParticipantID, poc.ParticipantID, bool) {
		visited[c.child] = true
		px.counters.addInteraction(outcome.identified)
		recordHop(result, c.child, outcome)
		result.Violations = append(result.Violations, outcome.violations...)
		if !outcome.identified {
			return "", "", false
		}
		result.Path = append(result.Path, c.child)
		if outcome.trace != nil {
			result.Traces[c.child] = *outcome.trace
		}
		return c.child, outcome.next, true
	}

	if px.cfg.ProbeFanout <= 1 || len(cands) <= 1 {
		for _, c := range cands {
			outcome := px.identify(ctx, taskID, c.credential, c.child, id, quality)
			if child, next, ok := commit(c, outcome); ok {
				return child, next
			}
		}
		return "", ""
	}

	probeCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, px.cfg.ProbeFanout)
	outcomes := make([]chan identifyOutcome, len(cands))
	for i := range cands {
		outcomes[i] = make(chan identifyOutcome, 1)
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			outcomes[i] <- px.identify(probeCtx, taskID, cands[i].credential, cands[i].child, id, quality)
		}(i)
	}
	for i, c := range cands {
		outcome := <-outcomes[i]
		if child, next, ok := commit(c, outcome); ok {
			// Later probes are cancelled and never read: their outcomes are
			// discarded, matching the serial walk, which would not have
			// interrogated them.
			return child, next
		}
	}
	return "", ""
}

// settle applies the double-edged award to the identified path and penalizes
// every detected violation (§II.C) on the shard that owns the product. It
// records the net score change of every affected participant on the result,
// so the query's wide event carries the reputation consequences alongside
// the detection that caused them. Award deltas are state-independent, so
// settling on the owning shard's ledger sums to exactly the single-ledger
// outcome.
func (px *Proxy) settle(sh *proxyShard, result *Result) {
	px.counters.addViolations(result.Violations)
	countOutcome(result)
	affected := make(map[poc.ParticipantID]float64, len(result.Path)+len(result.Violations))
	for _, v := range result.Path {
		affected[v] = sh.ledger.Score(v)
	}
	for _, vio := range result.Violations {
		if _, ok := affected[vio.Participant]; !ok {
			affected[vio.Participant] = sh.ledger.Score(vio.Participant)
		}
	}
	px.strategy.AwardPath(sh.ledger, result.Product, result.Quality, result.Path)
	for _, v := range result.Violations {
		px.strategy.PenalizeViolation(sh.ledger, v.Participant, result.Product, result.Quality, v.Detail)
	}
	for v, before := range affected {
		if delta := sh.ledger.Score(v) - before; delta != 0 {
			if result.repDeltas == nil {
				result.repDeltas = make(map[string]float64, len(affected))
			}
			result.repDeltas[string(v)] = delta
		}
	}
}
