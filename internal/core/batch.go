package core

import (
	"context"
	"fmt"
	"sync"

	"desword/internal/poc"
	"desword/internal/trace"
)

// This file is the proxy's batch query API. A batch is the first-class unit:
// QueryPath is the batch=1 case of the same options-driven path (admission,
// shard routing, coalescing, walk), so there is exactly one code path to
// reason about. Batches have partial-failure semantics — each product id
// carries its own result, error, or shed marker; one bad id never fails its
// neighbours.

// BatchOptions tunes one QueryPathBatch call.
type BatchOptions struct {
	// Fanout bounds how many distinct products are in flight at once.
	// 0 selects the proxy's configured BatchFanout.
	Fanout int
}

// BatchItem is the outcome for one product id of a batch: exactly one of
// Result or Err is meaningful. Shed marks admission-control rejection
// (Err wraps ErrLoadShed) so callers can separate overload from failure.
type BatchItem struct {
	Product poc.ProductID
	Result  *Result
	Err     error
	Shed    bool
}

// BatchResult is one batch query's outcome: per-id items in request order
// under the batch's trace id.
type BatchResult struct {
	// TraceID identifies the batch span; each item's Result carries its own
	// per-walk trace id beneath it.
	TraceID string
	// Items holds one outcome per requested id, in request order. Duplicate
	// ids share one walk and one settlement: they point at the same Result.
	Items []BatchItem
}

// QueryPathBatch runs one path query per product id with bounded fan-out and
// partial-failure semantics. Duplicate ids are deduplicated before dispatch —
// each distinct (product, quality) is walked and settled exactly once, and
// every duplicate index shares the winner's Result pointer — so a batch
// containing an id N times awards reputation once, matching one query.
// Distinct products additionally coalesce with any concurrently running
// queries for the same product via the shard single-flight table.
//
// The batch as a whole only errors on invalid arguments; per-id failures
// (including load sheds) land on their BatchItem.
func (px *Proxy) QueryPathBatch(ctx context.Context, ids []poc.ProductID, quality Quality, opts BatchOptions) (*BatchResult, error) {
	if quality != Good && quality != Bad {
		return nil, fmt.Errorf("core: invalid quality %v", quality)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	fanout := opts.Fanout
	if fanout <= 0 {
		fanout = px.cfg.BatchFanout
	}
	ctx, span := trace.Default.Start(ctx, "proxy.query_path_batch",
		trace.Int("batch_size", len(ids)), trace.String("quality", quality.String()),
		trace.Int("fanout", fanout))
	defer span.End()

	// Dedup before dispatch: quality is uniform across the batch, so the id
	// alone keys the unique work. first maps each distinct id to the index
	// of its first occurrence; duplicates copy that slot's outcome after the
	// barrier below.
	out := &BatchResult{TraceID: span.TraceID(), Items: make([]BatchItem, len(ids))}
	first := make(map[poc.ProductID]int, len(ids))
	var unique []int
	for i, id := range ids {
		if _, dup := first[id]; !dup {
			first[id] = i
			unique = append(unique, i)
		}
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, fanout)
	for _, i := range unique {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out.Items[i] = px.queryItem(ctx, ids[i], quality)
		}(i)
	}
	wg.Wait()

	mBatchQueries.Inc()
	var shed int
	for i, id := range ids {
		if w := first[id]; w != i {
			out.Items[i] = out.Items[w]
		}
		if out.Items[i].Shed {
			shed++
		}
	}
	span.SetAttr(trace.Int("unique", len(unique)), trace.Int("shed", shed))
	return out, nil
}
