package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"desword/internal/obs"
)

// This file implements admission control for the proxy front door and the
// node servers: a bounded wait queue in front of a bounded worker pool, with
// deadline-aware drop. Under overload the system sheds excess work
// immediately — an explicit, cheap load_shed outcome — instead of queueing
// it until every caller times out, which is how one saturated proxy turns
// into a fleet-wide outage.

// ErrLoadShed reports that admission control rejected work before it ran.
// Callers match it with errors.Is; the message carries the reason.
var ErrLoadShed = errors.New("core: load shed")

// DefaultAdmissionWorkers bounds concurrently admitted requests when a gate
// is configured with a non-positive worker count.
const DefaultAdmissionWorkers = 16

// Gate is a bounded admission controller: at most Workers requests run at
// once, at most Queue more wait for a slot, and a waiter whose context
// deadline provably cannot be met — the predicted queue drain time already
// overshoots it — is rejected immediately rather than parked until it
// expires. A nil *Gate admits everything; all methods are nil-safe.
type Gate struct {
	slots   chan struct{} // buffered semaphore: capacity = workers
	queue   int           // waiters allowed beyond the running workers
	queued  atomic.Int64  // current waiters
	ewmaUS  atomic.Int64  // EWMA of service time, microseconds
	workers int

	admitted  *obs.Counter
	shedQueue *obs.Counter
	shedDL    *obs.Counter
	depth     *obs.Gauge
	wait      *obs.Histogram
}

// NewGate builds a gate for a component ("proxy", "node_participant", …).
// workers <= 0 selects DefaultAdmissionWorkers; queue < 0 means no waiting
// room at all (shed the moment every worker is busy), queue == 0 keeps a
// default waiting room of 2×workers.
func NewGate(component string, workers, queue int) *Gate {
	if workers <= 0 {
		workers = DefaultAdmissionWorkers
	}
	switch {
	case queue < 0:
		queue = 0
	case queue == 0:
		queue = 2 * workers
	}
	return &Gate{
		slots:   make(chan struct{}, workers),
		queue:   queue,
		workers: workers,
		admitted: obs.Default.Counter("desword_admission_admitted_total",
			"Requests admitted past the admission gate, by component.",
			"component", component),
		shedQueue: obs.Default.Counter("desword_admission_shed_total",
			"Requests shed by the admission gate, by component and reason.",
			"component", component, "reason", "queue_full"),
		shedDL: obs.Default.Counter("desword_admission_shed_total",
			"Requests shed by the admission gate, by component and reason.",
			"component", component, "reason", "deadline"),
		depth: obs.Default.Gauge("desword_admission_queue_depth",
			"Requests currently waiting for an admission slot, by component.",
			"component", component),
		wait: obs.Default.Histogram("desword_admission_wait_seconds",
			"Time admitted requests spent waiting for an admission slot, by component.",
			nil, "component", component),
	}
}

// Acquire admits the caller or sheds it. On admission it returns a release
// function the caller must invoke when the work completes; on shedding it
// returns an error wrapping ErrLoadShed. The deadline-aware drop: a caller
// whose ctx deadline is closer than the predicted wait for a slot is
// rejected immediately — parking it would only burn a queue slot on work
// that is already dead.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	start := time.Now()
	// Fast path: a free worker slot, no queueing.
	select {
	case g.slots <- struct{}{}:
		g.admitted.Inc()
		g.wait.Observe(0)
		return g.releaseFunc(start), nil
	default:
	}
	// Every worker is busy: decide whether to wait. The queue is bounded,
	// and a deadline that the predicted drain time already overshoots is a
	// guaranteed timeout — reject it now, while rejecting is still cheap.
	waiters := g.queued.Load()
	if int(waiters) >= g.queue {
		g.shedQueue.Inc()
		return nil, fmt.Errorf("%w: admission queue full (%d waiting)", ErrLoadShed, waiters)
	}
	if dl, ok := ctx.Deadline(); ok {
		if wait := g.predictWait(waiters); wait > 0 && time.Now().Add(wait).After(dl) {
			g.shedDL.Inc()
			return nil, fmt.Errorf("%w: deadline %s away, predicted queue wait %s",
				ErrLoadShed, time.Until(dl).Round(time.Millisecond), wait.Round(time.Millisecond))
		}
	}
	g.queued.Add(1)
	g.depth.Inc()
	defer func() {
		g.queued.Add(-1)
		g.depth.Dec()
	}()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Inc()
		g.wait.ObserveSince(start)
		return g.releaseFunc(start), nil
	case <-ctx.Done():
		g.shedDL.Inc()
		return nil, fmt.Errorf("%w: %w while queued", ErrLoadShed, ctx.Err())
	}
}

// predictWait estimates how long a new waiter would queue: the waiters ahead
// of it plus itself, drained at one EWMA service time per worker.
func (g *Gate) predictWait(waiters int64) time.Duration {
	ewma := g.ewmaUS.Load()
	if ewma <= 0 {
		return 0 // no history yet: admit optimistically
	}
	return time.Duration((waiters+1)*ewma/int64(g.workers)) * time.Microsecond
}

// releaseFunc frees the caller's slot and feeds the observed service time
// into the EWMA that drives the deadline-aware drop.
func (g *Gate) releaseFunc(start time.Time) func() {
	return func() {
		us := time.Since(start).Microseconds()
		prev := g.ewmaUS.Load()
		if prev == 0 {
			g.ewmaUS.Store(us)
		} else {
			// α=1/8: smooth enough to ignore one outlier, fresh enough to
			// track a load-shift within a few requests. A CAS loop is not
			// worth it — a lost update just weights a concurrent sample.
			g.ewmaUS.Store(prev + (us-prev)/8)
		}
		<-g.slots
	}
}
