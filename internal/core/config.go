package core

import (
	"flag"

	"desword/internal/events"
)

// DefaultBatchFanout bounds how many of a batch's distinct products are in
// flight at once when BatchOptions.Fanout is left at zero.
const DefaultBatchFanout = 8

// ProxyConfig collapses the proxy's construction knobs into one options
// struct — the proxy counterpart of node.ClientConfig and zkedb.CommitOptions.
// The zero value reproduces the historical single-shard proxy with no
// admission gate. cmd binaries register it as flags; tests fill it directly.
type ProxyConfig struct {
	// Shards partitions the proxy's query-path state — POC directory,
	// path-level single-flight table, and reputation ledger — across this
	// many independent workers, routed by product-id hash. 0 or 1 keeps the
	// single-shard proxy.
	Shards int
	// ProbeFanout bounds concurrent child probes during a path walk
	// (1 = serial). 0 selects DefaultProbeFanout.
	ProbeFanout int
	// BatchFanout bounds how many distinct products of one batch query run
	// concurrently. 0 selects DefaultBatchFanout.
	BatchFanout int
	// AdmissionWorkers bounds concurrently admitted path queries at the
	// proxy front door. 0 disables the gate entirely (every query admitted,
	// the historical behaviour) unless AdmissionQueue is set, in which case
	// it selects DefaultAdmissionWorkers.
	AdmissionWorkers int
	// AdmissionQueue bounds queries waiting for an admission slot beyond
	// the running workers: negative means no waiting room (shed as soon as
	// every worker is busy), 0 keeps the default of 2×workers.
	AdmissionQueue int
	// EventSink, when set, receives one canonical wide event per completed
	// (or shed) query.
	EventSink *events.Sink
}

// withDefaults resolves the zero values into the effective configuration.
func (c ProxyConfig) withDefaults() ProxyConfig {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.ProbeFanout <= 0 {
		c.ProbeFanout = DefaultProbeFanout
	}
	if c.BatchFanout <= 0 {
		c.BatchFanout = DefaultBatchFanout
	}
	return c
}

// gated reports whether the configuration asks for a front-door admission
// gate at all.
func (c ProxyConfig) gated() bool {
	return c.AdmissionWorkers > 0 || c.AdmissionQueue != 0
}

// RegisterFlags registers the proxy-tier flags on fs (use flag.CommandLine
// in main). Zero values keep the package defaults. The event sink is wired
// by the binary, not a flag.
func (c *ProxyConfig) RegisterFlags(fs *flag.FlagSet) {
	if c.ProbeFanout == 0 {
		c.ProbeFanout = DefaultProbeFanout
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	fs.IntVar(&c.Shards, "shards", c.Shards,
		"proxy shard workers partitioning directory, single-flight table and ledger by product-id hash")
	fs.IntVar(&c.ProbeFanout, "probe-fanout", c.ProbeFanout,
		"concurrent child probes during a path walk (1 = serial)")
	fs.IntVar(&c.BatchFanout, "batch-fanout", c.BatchFanout,
		"concurrent products per batch query (0 = default)")
	fs.IntVar(&c.AdmissionWorkers, "admission-workers", c.AdmissionWorkers,
		"concurrently admitted path queries at the proxy front door (0 = gate disabled)")
	fs.IntVar(&c.AdmissionQueue, "admission-queue", c.AdmissionQueue,
		"queries waiting for an admission slot (negative = none, 0 = 2x workers)")
}
