package core

import "desword/internal/obs"

// Query-phase metric handles, fetched once at package init so the query path
// pays only atomic updates. They complement the per-proxy Stats snapshot:
// Stats is the per-instance JSON view, these are the process-wide Prometheus
// series the admin listener exposes.
var (
	mQueryLatencyGood = obs.Default.Histogram("desword_query_latency_seconds",
		"Full product path query latency at the proxy by query flavour.", nil,
		"quality", "good")
	mQueryLatencyBad = obs.Default.Histogram("desword_query_latency_seconds",
		"Full product path query latency at the proxy by query flavour.", nil,
		"quality", "bad")
	mQueriesGood = obs.Default.Counter("desword_queries_total",
		"Product path queries by flavour.", "quality", "good")
	mQueriesBad = obs.Default.Counter("desword_queries_total",
		"Product path queries by flavour.", "quality", "bad")
	mHops = obs.Default.Counter("desword_query_hops_total",
		"Path hops identified across all queries.")
	mIncomplete = obs.Default.Counter("desword_query_incomplete_total",
		"Queries whose walk did not reach a leaf of the POC list.")
	mTasksRegistered = obs.Default.Counter("desword_tasks_registered_total",
		"Accepted POC-list registrations.")
	mBatchQueries = obs.Default.Counter("desword_batch_queries_total",
		"Batch path queries served (each batch counts once; its per-product walks count in desword_queries_total).")
	mViolations = buildViolationCounters()
)

// buildViolationCounters pre-creates one counter per violation type.
func buildViolationCounters() map[ViolationType]*obs.Counter {
	types := []ViolationType{
		ViolationClaimProcessing, ViolationClaimNonProcessing,
		ViolationNoValidProof, ViolationWrongNextHop, ViolationUnreachable,
	}
	m := make(map[ViolationType]*obs.Counter, len(types))
	for _, t := range types {
		m[t] = obs.Default.Counter("desword_violations_total",
			"Dishonest behaviours detected during queries, by type.",
			"type", t.String())
	}
	return m
}

// queryLatency selects the latency histogram for a query flavour.
func queryLatency(q Quality) *obs.Histogram {
	if q == Bad {
		return mQueryLatencyBad
	}
	return mQueryLatencyGood
}

// countQuery records one query start.
func countQuery(q Quality) {
	if q == Bad {
		mQueriesBad.Inc()
	} else {
		mQueriesGood.Inc()
	}
}

// countOutcome records a settled query's outcome: hops walked, completeness
// and detected violations.
func countOutcome(result *Result) {
	mHops.Add(uint64(len(result.Path)))
	if !result.Complete {
		mIncomplete.Inc()
	}
	for _, v := range result.Violations {
		if c, ok := mViolations[v.Type]; ok {
			c.Inc()
		}
	}
}
