package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"desword/internal/poc"
	"desword/internal/rfid"
	"desword/internal/supplychain"
	"desword/internal/trace"
	"desword/internal/zkedb/store"
)

// Member is a DE-Sword participant runtime: a supply-chain participant plus
// its cryptographic state — one DPOC and next-hop table per distribution
// task. A Member answers queries honestly; the adversary package wraps it to
// implement the threat model.
type Member struct {
	ps     *poc.PublicParams
	part   *supplychain.Participant
	agg    poc.AggOptions
	stores StoreFactory

	mu    sync.RWMutex
	tasks map[string]*memberTask
}

// StoreFactory opens the node store backing one task's commitment tree.
// CommitTask calls it once per task; the returned store must be empty (a
// factory re-committing a task is expected to discard the task's previous
// store first).
type StoreFactory func(taskID string) (store.KV, error)

// memberTask is the per-distribution-task state a member keeps.
type memberTask struct {
	credential poc.POC
	dpoc       *poc.DPOC
	next       map[poc.ProductID]poc.ParticipantID
}

// MemberOption customizes a Member at construction time.
type MemberOption func(*Member)

// WithAggOptions sets the POC aggregation options every CommitTask uses:
// the commit worker-pool width and the proof-cache size. The zero value of
// poc.AggOptions (the default) selects a GOMAXPROCS-wide pool and a
// default-sized cache.
func WithAggOptions(opts poc.AggOptions) MemberOption {
	return func(m *Member) { m.agg = opts }
}

// WithTaskStores makes CommitTask back each task's commitment tree with a
// store from the factory instead of the default in-memory map — the
// file-backed path that keeps a trace database larger than RAM provable
// (DESIGN.md §13). nil restores the default.
func WithTaskStores(f StoreFactory) MemberOption {
	return func(m *Member) { m.stores = f }
}

// NewMember wraps a supply-chain participant with DE-Sword state.
func NewMember(ps *poc.PublicParams, part *supplychain.Participant, opts ...MemberOption) *Member {
	m := &Member{ps: ps, part: part, tasks: make(map[string]*memberTask)}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// ID returns the member's participant identity.
func (m *Member) ID() poc.ParticipantID { return m.part.ID() }

// Participant exposes the underlying supply-chain participant.
func (m *Member) Participant() *supplychain.Participant { return m.part }

// CommitTask aggregates the member's current trace database into a POC for
// the given task and stores the DPOC (distribution phase, §IV.B). The traces
// snapshot is taken at call time, so any dishonest database mutation must
// happen before this call — exactly the paper's threat window.
func (m *Member) CommitTask(taskID string) (poc.POC, error) {
	agg := m.agg
	if m.stores != nil {
		kv, err := m.stores(taskID)
		if err != nil {
			return poc.POC{}, fmt.Errorf("core: %s opening store for task %s: %w", m.part.ID(), taskID, err)
		}
		agg.Commit.Store = kv
	}
	credential, dpoc, err := poc.Agg(m.ps, m.part.ID(), m.part.Traces(), agg)
	if err != nil {
		if agg.Commit.Store != nil {
			agg.Commit.Store.Close()
		}
		return poc.POC{}, fmt.Errorf("core: %s committing task %s: %w", m.part.ID(), taskID, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tasks[taskID] = &memberTask{
		credential: credential,
		dpoc:       dpoc,
		next:       make(map[poc.ProductID]poc.ParticipantID),
	}
	return credential, nil
}

// UpdateTask advances an already-committed task with newly processed traces
// (a follow-on distribution handing this member more product ids): the
// DPOC's commitment tree is revised incrementally along only the touched
// paths — not rebuilt — and the refreshed credential is returned for
// re-registration with the proxy. Queries in flight complete against the
// old credential.
func (m *Member) UpdateTask(ctx context.Context, taskID string, traces []poc.Trace) (poc.POC, error) {
	entry, err := m.task(taskID)
	if err != nil {
		return poc.POC{}, err
	}
	credential, err := entry.dpoc.Update(ctx, traces)
	if err != nil {
		return poc.POC{}, fmt.Errorf("core: %s updating task %s: %w", m.part.ID(), taskID, err)
	}
	m.mu.Lock()
	entry.credential = credential
	m.mu.Unlock()
	return credential, nil
}

// SetNextHop records which child received the product after this member in
// the given task — the knowledge a real participant has from its own
// shipping manifests.
func (m *Member) SetNextHop(taskID string, id poc.ProductID, next poc.ParticipantID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	entry, ok := m.tasks[taskID]
	if !ok {
		return fmt.Errorf("%w: %s at %s", ErrNotCommitted, taskID, m.part.ID())
	}
	entry.next[id] = next
	return nil
}

// POC returns the member's credential for a task.
func (m *Member) POC(taskID string) (poc.POC, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	entry, ok := m.tasks[taskID]
	if !ok {
		return poc.POC{}, fmt.Errorf("%w: %s at %s", ErrNotCommitted, taskID, m.part.ID())
	}
	return entry.credential, nil
}

func (m *Member) task(taskID string) (*memberTask, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	entry, ok := m.tasks[taskID]
	if !ok {
		return nil, fmt.Errorf("%w: %s at %s", ErrNotCommitted, taskID, m.part.ID())
	}
	return entry, nil
}

// Query implements Responder honestly: it proves ownership when it holds a
// committed trace for the product and non-ownership when it does not, and
// names the recorded next hop.
func (m *Member) Query(ctx context.Context, taskID string, id poc.ProductID, quality Quality) (*Response, error) {
	ctx, span := trace.Default.StartChild(ctx, "member.query",
		trace.String("participant", string(m.part.ID())))
	defer span.End()
	entry, err := m.task(taskID)
	if err != nil {
		span.SetError(err)
		return nil, err
	}
	proof, err := entry.dpoc.Prove(ctx, id)
	if err != nil {
		span.SetError(err)
		return nil, fmt.Errorf("core: %s proving %s: %w", m.part.ID(), id, err)
	}
	resp := &Response{Proof: proof}
	if proof.Kind == poc.Ownership {
		resp.Claim = ClaimProcessed
		m.mu.RLock()
		resp.Next = entry.next[id]
		m.mu.RUnlock()
	} else {
		resp.Claim = ClaimNotProcessed
	}
	return resp, nil
}

// DemandOwnership implements Responder honestly.
func (m *Member) DemandOwnership(ctx context.Context, taskID string, id poc.ProductID) (*Response, error) {
	ctx, span := trace.Default.StartChild(ctx, "member.demand_ownership",
		trace.String("participant", string(m.part.ID())))
	defer span.End()
	entry, err := m.task(taskID)
	if err != nil {
		span.SetError(err)
		return nil, err
	}
	proof, err := entry.dpoc.Prove(ctx, id)
	if err != nil {
		span.SetError(err)
		return nil, fmt.Errorf("core: %s proving %s: %w", m.part.ID(), id, err)
	}
	if proof.Kind != poc.Ownership {
		// An honest member that holds no trace answers truthfully.
		return &Response{Claim: ClaimNotProcessed, Proof: proof}, nil
	}
	m.mu.RLock()
	next := entry.next[id]
	m.mu.RUnlock()
	return &Response{Claim: ClaimProcessed, Proof: proof, Next: next}, nil
}

var _ Responder = (*Member)(nil)

// memberTaskState is the serialized image of one task's member state.
type memberTaskState struct {
	Credential poc.POC                             `json:"credential"`
	DPOC       json.RawMessage                     `json:"dpoc"`
	Next       map[poc.ProductID]poc.ParticipantID `json:"next"`
}

// ExportTask serializes the member's state for one task — credential, DPOC
// and next-hop table — so a participant daemon can survive restarts without
// re-aggregating (which would orphan the POC the proxy already stores). The
// output contains all of the participant's secrets for the task.
func (m *Member) ExportTask(taskID string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	entry, ok := m.tasks[taskID]
	if !ok {
		return nil, fmt.Errorf("%w: %s at %s", ErrNotCommitted, taskID, m.part.ID())
	}
	dpoc, err := json.Marshal(entry.dpoc)
	if err != nil {
		return nil, fmt.Errorf("core: exporting task %s: %w", taskID, err)
	}
	return json.Marshal(memberTaskState{
		Credential: entry.credential,
		DPOC:       dpoc,
		Next:       entry.next,
	})
}

// ImportTask restores task state produced by ExportTask. The imported
// credential must belong to this member.
func (m *Member) ImportTask(taskID string, data []byte) error {
	var state memberTaskState
	if err := json.Unmarshal(data, &state); err != nil {
		return fmt.Errorf("core: parsing task state: %w", err)
	}
	if state.Credential.Participant != m.part.ID() {
		return fmt.Errorf("core: task state belongs to %s, not %s",
			state.Credential.Participant, m.part.ID())
	}
	dpoc, err := poc.RestoreDPOC(m.ps, state.DPOC)
	if err != nil {
		return fmt.Errorf("core: importing task %s: %w", taskID, err)
	}
	next := state.Next
	if next == nil {
		next = make(map[poc.ProductID]poc.ParticipantID)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tasks[taskID] = &memberTask{
		credential: state.Credential,
		dpoc:       dpoc,
		next:       next,
	}
	return nil
}

// DistributionResult bundles everything the distribution phase produces.
type DistributionResult struct {
	// TaskID names the distribution task.
	TaskID string
	// List is the POC list the initial participant submits to the proxy.
	List *poc.List
	// Ground is the ground-truth task outcome, used by tests and experiments
	// (the deployed system has no global observer).
	Ground *supplychain.TaskResult
}

// RunDistribution executes a full honest distribution phase: the products
// flow through the supply chain (each participant processing and recording
// traces), then every involved member commits its POC and the POC list is
// assembled (§IV.B).
func RunDistribution(
	ps *poc.PublicParams,
	g *supplychain.Graph,
	members map[poc.ParticipantID]*Member,
	initial poc.ParticipantID,
	tags []*rfid.Tag,
	data supplychain.TraceData,
	split supplychain.Splitter,
	taskID string,
) (*DistributionResult, error) {
	parts := make(map[supplychain.ParticipantID]*supplychain.Participant, len(members))
	for id, m := range members {
		parts[id] = m.Participant()
	}
	ground, err := supplychain.RunTask(g, parts, initial, tags, data, split)
	if err != nil {
		return nil, fmt.Errorf("core: distribution task %s: %w", taskID, err)
	}
	list, err := BuildPOCList(members, ground, taskID)
	if err != nil {
		return nil, err
	}
	return &DistributionResult{TaskID: taskID, List: list, Ground: ground}, nil
}

// BuildPOCList runs the commitment half of the distribution phase for an
// already-executed task: each involved member aggregates its traces into a
// POC, records its per-product next hops, and the POC pairs are assembled
// into the list the initial participant submits. It is split from
// RunDistribution so adversaries can mutate trace databases in between —
// the deletion/addition/modification window of §III.A.
func BuildPOCList(
	members map[poc.ParticipantID]*Member,
	ground *supplychain.TaskResult,
	taskID string,
) (*poc.List, error) {
	list := poc.NewList()
	for _, v := range ground.Involved {
		m, ok := members[v]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoResponder, v)
		}
		credential, err := m.CommitTask(taskID)
		if err != nil {
			return nil, err
		}
		if err := list.AddPOC(credential); err != nil {
			return nil, err
		}
	}
	for _, e := range ground.UsedEdges {
		list.AddPair(e.From, e.To)
	}
	for id, path := range ground.Paths {
		for i := 0; i+1 < len(path); i++ {
			if err := members[path[i]].SetNextHop(taskID, id, path[i+1]); err != nil {
				return nil, err
			}
		}
	}
	if err := list.Validate(); err != nil {
		return nil, fmt.Errorf("core: assembling POC list for %s: %w", taskID, err)
	}
	return list, nil
}
