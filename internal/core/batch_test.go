package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"desword/internal/events"
	"desword/internal/poc"
	"desword/internal/reputation"
)

// canonicalResult is the deterministic slice of a Result: everything the
// protocol pins, nothing timing-dependent (Event and TraceID vary run to
// run). encoding/json sorts map keys, so the encoding is byte-stable.
type canonicalResult struct {
	Product    poc.ProductID                   `json:"product"`
	Quality    Quality                         `json:"quality"`
	TaskID     string                          `json:"task_id"`
	Path       []poc.ParticipantID             `json:"path"`
	Traces     map[poc.ParticipantID]poc.Trace `json:"traces"`
	Violations []Violation                     `json:"violations"`
	Complete   bool                            `json:"complete"`
}

func canonical(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(canonicalResult{
		Product: r.Product, Quality: r.Quality, TaskID: r.TaskID,
		Path: r.Path, Traces: r.Traces, Violations: r.Violations,
		Complete: r.Complete,
	})
	if err != nil {
		t.Fatalf("canonicalizing result: %v", err)
	}
	return string(b)
}

// shardedProxy builds a second proxy over the fixture's deployment with the
// given shard count; members answer from committed DPOCs, so any number of
// proxies can query the same deployment.
func (fx *fixture) shardedProxy(t *testing.T, shards int) *Proxy {
	t.Helper()
	resolver := func(v poc.ParticipantID) (Responder, error) {
		m, ok := fx.members[v]
		if !ok {
			return nil, fmt.Errorf("no member %s", v)
		}
		return m, nil
	}
	px := NewProxyWithConfig(fx.ps, reputation.DefaultStrategy(), resolver,
		ProxyConfig{Shards: shards})
	if err := px.RegisterList(fx.dist.TaskID, fx.dist.List); err != nil {
		t.Fatalf("RegisterList: %v", err)
	}
	return px
}

func sortedProducts(fx *fixture) []poc.ProductID {
	ids := make([]poc.ProductID, 0, len(fx.dist.Ground.Paths))
	for id := range fx.dist.Ground.Paths {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestBatchEquivalentToSerial pins the batch API's core contract: a batch of
// N ids returns byte-identical per-id results and an identical reputation
// table to N serial QueryPath calls, at any shard count.
func TestBatchEquivalentToSerial(t *testing.T) {
	fx := newFixture(t, 8)
	ids := sortedProducts(fx)
	for _, quality := range []Quality{Good, Bad} {
		for _, shards := range []int{1, 2, 3, 5} {
			serial := fx.shardedProxy(t, 1)
			batched := fx.shardedProxy(t, shards)

			want := make([]string, len(ids))
			for i, id := range ids {
				r, err := serial.QueryPath(context.Background(), id, quality)
				if err != nil {
					t.Fatalf("serial QueryPath(%s): %v", id, err)
				}
				want[i] = canonical(t, r)
			}
			batch, err := batched.QueryPathBatch(context.Background(), ids, quality, BatchOptions{})
			if err != nil {
				t.Fatalf("QueryPathBatch(shards=%d): %v", shards, err)
			}
			if len(batch.Items) != len(ids) {
				t.Fatalf("batch returned %d items, want %d", len(batch.Items), len(ids))
			}
			// batch.TraceID is empty unless the batch span was sampled —
			// the same contract as Result.TraceID on single queries.
			for i, item := range batch.Items {
				if item.Err != nil {
					t.Fatalf("batch item %s errored: %v", item.Product, item.Err)
				}
				if got := canonical(t, item.Result); got != want[i] {
					t.Errorf("shards=%d quality=%v product=%s:\n batch  %s\n serial %s",
						shards, quality, ids[i], got, want[i])
				}
			}
			wantScores := serial.Scores()
			gotScores := batched.Scores()
			if len(wantScores) != len(gotScores) {
				t.Fatalf("score table sizes differ: %d vs %d", len(gotScores), len(wantScores))
			}
			for v, s := range wantScores {
				if gotScores[v] != s {
					t.Errorf("shards=%d quality=%v score[%s] = %v, want %v",
						shards, quality, v, gotScores[v], s)
				}
			}
		}
	}
}

// TestBatchDuplicatesSettleOnce pins the dedup contract: a batch naming an
// id k times walks and settles it once — duplicate indexes share the very
// same Result — so reputation matches one query per distinct id.
func TestBatchDuplicatesSettleOnce(t *testing.T) {
	fx := newFixture(t, 4)
	distinct := sortedProducts(fx)
	var ids []poc.ProductID
	for _, id := range distinct {
		ids = append(ids, id, id, id)
	}
	reference := fx.shardedProxy(t, 1)
	for _, id := range distinct {
		if _, err := reference.QueryPath(context.Background(), id, Good); err != nil {
			t.Fatalf("reference QueryPath(%s): %v", id, err)
		}
	}
	px := fx.shardedProxy(t, 3)
	batch, err := px.QueryPathBatch(context.Background(), ids, Good, BatchOptions{})
	if err != nil {
		t.Fatalf("QueryPathBatch: %v", err)
	}
	for i := 0; i < len(batch.Items); i += 3 {
		if batch.Items[i].Result == nil {
			t.Fatalf("item %d has no result", i)
		}
		if batch.Items[i].Result != batch.Items[i+1].Result || batch.Items[i].Result != batch.Items[i+2].Result {
			t.Fatalf("duplicates of %s do not share one result", batch.Items[i].Product)
		}
	}
	want, got := reference.Scores(), px.Scores()
	for v, s := range want {
		if got[v] != s {
			t.Errorf("score[%s] = %v, want %v (duplicates must settle once)", v, got[v], s)
		}
	}
	stats := px.ShardStats()
	var walks, coalesced uint64
	for _, s := range stats {
		walks += s.Queries
		coalesced += s.Coalesced
	}
	if walks != uint64(len(distinct)) {
		t.Errorf("shards led %d walks, want %d (one per distinct id)", walks, len(distinct))
	}
	if coalesced != 0 {
		t.Errorf("pre-dispatch dedup should leave nothing to coalesce, got %d", coalesced)
	}
}

// TestCoalescedConcurrentQueriesSettleOnce pins the single-flight contract:
// overlapping queries for one (product, quality) share one walk and one
// settlement, while serial repeats still settle every time.
func TestCoalescedConcurrentQueriesSettleOnce(t *testing.T) {
	fx := newFixture(t, 2)
	id := sortedProducts(fx)[0]

	gate := make(chan struct{})
	var once sync.Once
	blockingResolve := func(v poc.ParticipantID) (Responder, error) {
		// The leader's first resolve parks until every follower had time to
		// join the flight, guaranteeing overlap without sleeps.
		once.Do(func() { <-gate })
		m, ok := fx.members[v]
		if !ok {
			return nil, fmt.Errorf("no member %s", v)
		}
		return m, nil
	}
	px := NewProxyWithConfig(fx.ps, reputation.DefaultStrategy(), blockingResolve, ProxyConfig{})
	if err := px.RegisterList(fx.dist.TaskID, fx.dist.List); err != nil {
		t.Fatalf("RegisterList: %v", err)
	}

	const followers = 4
	results := make([]*Result, followers+1)
	errs := make([]error, followers+1)
	var wg sync.WaitGroup
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = px.QueryPath(context.Background(), id, Good)
		}(i)
	}
	// Wait until all five are either leading (blocked in resolve) or parked
	// on the flight, then release the leader.
	deadline := time.After(5 * time.Second)
	for {
		stats := px.ShardStats()
		if stats[0].Coalesced == followers {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("followers never joined the flight: %+v", stats)
		case <-time.After(time.Millisecond):
		}
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatal("coalesced queries must share the leader's result")
		}
	}
	// One walk, one settlement: the ledger has exactly one path's worth of
	// events, identical to a single query.
	if _, count := px.Ledger().Head(); count != uint64(len(results[0].Path)) {
		t.Fatalf("ledger has %d events, want %d (one settlement)", count, len(results[0].Path))
	}
	// Non-overlapping repeats settle again: coalescing never spans time.
	if _, err := px.QueryPath(context.Background(), id, Good); err != nil {
		t.Fatal(err)
	}
	if _, count := px.Ledger().Head(); count != 2*uint64(len(results[0].Path)) {
		t.Fatalf("serial repeat did not settle: %d events", count)
	}
}

// blockedResponder parks every query until released, simulating a saturated
// backend so admission tests can fill the gate deterministically. entered is
// closed when the first query arrives — i.e. once its caller holds a gate
// slot.
type blockedResponder struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (b *blockedResponder) Query(ctx context.Context, taskID string, id poc.ProductID, quality Quality) (*Response, error) {
	b.once.Do(func() { close(b.entered) })
	select {
	case <-b.release:
	case <-ctx.Done():
	}
	return nil, fmt.Errorf("blocked responder")
}

func (b *blockedResponder) DemandOwnership(ctx context.Context, taskID string, id poc.ProductID) (*Response, error) {
	return nil, fmt.Errorf("blocked responder")
}

// TestAdmissionShedsInsteadOfTimingOut pins the protection tentpole: with
// one admission worker and no waiting room, a saturated proxy sheds the
// overflow query immediately with ErrLoadShed — it does not park it until a
// timeout — and the shed shows up as a load_shed wide event.
func TestAdmissionShedsInsteadOfTimingOut(t *testing.T) {
	fx := newFixture(t, 2)
	ids := sortedProducts(fx)
	blocked := &blockedResponder{entered: make(chan struct{}), release: make(chan struct{})}
	sink := events.NewSink("test", events.NewRing(64), nil)
	px := NewProxyWithConfig(fx.ps, reputation.DefaultStrategy(),
		func(poc.ParticipantID) (Responder, error) { return blocked, nil },
		ProxyConfig{AdmissionWorkers: 1, AdmissionQueue: -1, EventSink: sink})
	if err := px.RegisterList(fx.dist.TaskID, fx.dist.List); err != nil {
		t.Fatalf("RegisterList: %v", err)
	}

	// Occupy the single worker: this query blocks inside the walk, holding
	// its gate slot. entered closing proves it is past the gate.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = px.QueryPath(context.Background(), ids[0], Good)
	}()
	select {
	case <-blocked.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("occupier never reached the blocked responder")
	}

	shedStart := time.Now()
	item := px.queryItem(context.Background(), ids[1], Good)
	elapsed := time.Since(shedStart)
	if !item.Shed {
		t.Fatalf("saturated proxy admitted the query (err=%v)", item.Err)
	}
	if !errors.Is(item.Err, ErrLoadShed) {
		t.Fatalf("err = %v, want ErrLoadShed", item.Err)
	}
	if elapsed > time.Second {
		t.Fatalf("shed took %v; shedding must be immediate, not a timeout", elapsed)
	}
	shedEvents := sink.Ring().Query(events.Filter{Kind: events.KindQuery, Outcome: events.OutcomeLoadShed}, 10)
	if len(shedEvents) == 0 {
		t.Fatal("no load_shed wide event recorded")
	}
	if shedEvents[0].Product != string(ids[1]) {
		t.Fatalf("shed event names %q, want %q", shedEvents[0].Product, ids[1])
	}
	close(blocked.release)
	<-done
}

// TestShardRouterDeterministic pins the routing function: the owner of an id
// depends only on (id, N), never on instance or history.
func TestShardRouterDeterministic(t *testing.T) {
	a, b := newShardRouter(4), newShardRouter(4)
	for i := 0; i < 100; i++ {
		id := poc.ProductID(fmt.Sprintf("product-%d", i))
		if a.shardFor(id).id != b.shardFor(id).id {
			t.Fatalf("shardFor(%s) differs across router instances", id)
		}
	}
	spread := make(map[int]int)
	for i := 0; i < 1000; i++ {
		spread[a.shardFor(poc.ProductID(fmt.Sprintf("id-%d", i))).id]++
	}
	for shard := 0; shard < 4; shard++ {
		if spread[shard] == 0 {
			t.Fatalf("shard %d never selected over 1000 ids: %v", shard, spread)
		}
	}
}

// TestBatchRejectsInvalidInput pins the batch argument contract.
func TestBatchRejectsInvalidInput(t *testing.T) {
	fx := newFixture(t, 2)
	px := fx.shardedProxy(t, 2)
	if _, err := px.QueryPathBatch(context.Background(), nil, Good, BatchOptions{}); err == nil {
		t.Fatal("empty batch must error")
	}
	if _, err := px.QueryPathBatch(context.Background(), []poc.ProductID{"x"}, Quality(9), BatchOptions{}); err == nil {
		t.Fatal("invalid quality must error")
	}
}
