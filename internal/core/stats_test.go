package core

import (
	"context"
	"testing"

	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
)

// denyingResponder wraps a member and denies processing one product in bad
// queries (a minimal in-package stand-in for the adversary package, which
// cannot be imported here without a test import cycle).
type denyingResponder struct {
	*Member
	deny poc.ProductID
}

func (d *denyingResponder) Query(ctx context.Context, taskID string, id poc.ProductID, quality Quality) (*Response, error) {
	resp, err := d.Member.Query(ctx, taskID, id, quality)
	if err != nil {
		return nil, err
	}
	if quality == Bad && id == d.deny && resp.Claim == ClaimProcessed {
		forged := *resp.Proof
		forged.Kind = poc.NonOwnership
		return &Response{Claim: ClaimNotProcessed, Proof: &forged}, nil
	}
	return resp, nil
}

func TestStatsCountQueriesAndInteractions(t *testing.T) {
	fx := newFixture(t, 4)
	var productID poc.ProductID
	var pathLen int
	for id, path := range fx.dist.Ground.Paths {
		productID = id
		pathLen = len(path)
		break
	}
	if _, err := fx.proxy.QueryPath(context.Background(), productID, Good); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.proxy.QueryPath(context.Background(), productID, Bad); err != nil {
		t.Fatal(err)
	}
	stats := fx.proxy.Stats()
	if stats.TasksRegistered != 1 {
		t.Fatalf("TasksRegistered = %d", stats.TasksRegistered)
	}
	if stats.GoodQueries != 1 || stats.BadQueries != 1 {
		t.Fatalf("query counts = %d/%d", stats.GoodQueries, stats.BadQueries)
	}
	// Each query identifies exactly the path hops (plus possibly non-start
	// initials probed first); identified hops must be 2× the path length.
	if stats.IdentifiedHops != uint64(2*pathLen) {
		t.Fatalf("IdentifiedHops = %d, want %d", stats.IdentifiedHops, 2*pathLen)
	}
	if stats.Interactions < stats.IdentifiedHops {
		t.Fatal("interactions must include all identification attempts")
	}
	if len(stats.Violations) != 0 {
		t.Fatalf("honest run must count no violations: %v", stats.Violations)
	}
}

func TestStatsCountViolations(t *testing.T) {
	ps := corePS(t)
	g, parts := supplychain.LineGraph(3)
	members := make(map[poc.ParticipantID]*Member, 3)
	for id, p := range parts {
		members[id] = NewMember(ps, p)
	}
	tags, err := supplychain.MintTags("s", 1)
	if err != nil {
		t.Fatal(err)
	}
	ground, err := supplychain.RunTask(g, parts, "p0", tags, nil, supplychain.FirstChildSplitter)
	if err != nil {
		t.Fatal(err)
	}
	list, err := BuildPOCList(members, ground, "task-s")
	if err != nil {
		t.Fatal(err)
	}
	liar := &denyingResponder{Member: members["p1"], deny: "s1"}
	resolver := func(v poc.ParticipantID) (Responder, error) {
		if v == "p1" {
			return liar, nil
		}
		return members[v], nil
	}
	proxy := NewProxy(ps, reputation.DefaultStrategy(), resolver)
	if err := proxy.RegisterList("task-s", list); err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.QueryPath(context.Background(), "s1", Bad); err != nil {
		t.Fatal(err)
	}
	stats := proxy.Stats()
	if stats.Violations[ViolationClaimNonProcessing] != 1 {
		t.Fatalf("violation counter = %v", stats.Violations)
	}
}

func TestStatsSnapshotIsolated(t *testing.T) {
	fx := newFixture(t, 2)
	a := fx.proxy.Stats()
	a.Violations[ViolationUnreachable] = 99
	b := fx.proxy.Stats()
	if b.Violations[ViolationUnreachable] == 99 {
		t.Fatal("Stats must return an isolated copy")
	}
}
