package core

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"desword/internal/poc"
	"desword/internal/zkedb"
	"desword/internal/zkedb/store"
)

// CryptoConfig is the shared crypto-engine configuration of the cmd
// binaries: one set of commit/prove/store flags, one translation to
// aggregation and member options — the crypto counterpart of
// node.ClientConfig for the transport.
type CryptoConfig struct {
	// CommitWorkers bounds the ZK-EDB commit worker pool. 0 selects one
	// worker per CPU; 1 forces the serial build.
	CommitWorkers int
	// ProofCache bounds the per-task POC proof cache in entries. 0 selects
	// poc.DefaultProofCacheSize; negative disables caching.
	ProofCache int
	// Store selects the node-store backend each task's commitment tree
	// lives in: "mem" (the default in-process map) or "file" (append-only
	// log under StoreDir, durable across restarts). Empty means "mem".
	Store string
	// StoreDir is the directory file-backed trees are kept in, one store
	// file per task. Defaults to "desword-store".
	StoreDir string
	// StoreBatch bounds how many staged records a file store accumulates
	// before auto-committing a batch. 0 selects store.DefaultBatchPuts;
	// negative commits only on explicit flushes.
	StoreBatch int
	// StoreCacheNodes bounds the resident hydrated-node cache per tree.
	// 0 keeps every node resident (always the case for "mem").
	StoreCacheNodes int
}

// RegisterFlags registers the crypto flags on fs (use flag.CommandLine in
// main). Zero values keep the package defaults.
func (c *CryptoConfig) RegisterFlags(fs *flag.FlagSet) {
	fs.IntVar(&c.CommitWorkers, "commit-workers", c.CommitWorkers,
		"ZK-EDB commit worker pool size (0 = one per CPU, 1 = serial)")
	fs.IntVar(&c.ProofCache, "proof-cache", c.ProofCache,
		"POC proof cache entries per task (0 = default, negative = disabled)")
	fs.StringVar(&c.Store, "store", c.Store,
		`ZK-EDB node store backend: "mem" or "file"`)
	fs.StringVar(&c.StoreDir, "store-dir", c.StoreDir,
		"directory for file-backed ZK-EDB stores, one file per task")
	fs.IntVar(&c.StoreBatch, "store-batch", c.StoreBatch,
		"staged records per file-store batch before auto-commit (0 = default)")
	fs.IntVar(&c.StoreCacheNodes, "store-cache-nodes", c.StoreCacheNodes,
		"resident hydrated tree nodes per task store (0 = unbounded)")
}

// AggOptions translates the configuration into POC aggregation options.
// The node store itself is per task, so it is wired by Member through
// TaskStores, not here.
func (c *CryptoConfig) AggOptions() poc.AggOptions {
	return poc.AggOptions{
		Commit: zkedb.CommitOptions{
			Workers:    c.CommitWorkers,
			CacheNodes: c.StoreCacheNodes,
		},
		ProofCacheSize: c.ProofCache,
	}
}

// TaskStores translates the configuration into a per-task store factory:
// nil for the in-memory default, a FileTaskStores factory for "file".
func (c *CryptoConfig) TaskStores() (StoreFactory, error) {
	switch c.Store {
	case "", "mem":
		return nil, nil
	case "file":
		dir := c.StoreDir
		if dir == "" {
			dir = "desword-store"
		}
		return FileTaskStores(dir, c.StoreBatch), nil
	default:
		return nil, fmt.Errorf("core: unknown store backend %q (want mem or file)", c.Store)
	}
}

// MemberOptions translates the configuration into Member options.
func (c *CryptoConfig) MemberOptions() ([]MemberOption, error) {
	opts := []MemberOption{WithAggOptions(c.AggOptions())}
	factory, err := c.TaskStores()
	if err != nil {
		return nil, err
	}
	if factory != nil {
		opts = append(opts, WithTaskStores(factory))
	}
	return opts, nil
}

// FileTaskStores returns a StoreFactory keeping one append-only store file
// per task under dir (created on first use, mode 0700 — the tree holds
// every secret the participant has). Re-committing a task discards the
// task's previous file first: a fresh Commit means a fresh tree, and
// zkedb refuses to commit into a non-empty store.
func FileTaskStores(dir string, batchPuts int) StoreFactory {
	return func(taskID string) (store.KV, error) {
		if err := os.MkdirAll(dir, 0o700); err != nil {
			return nil, fmt.Errorf("core: creating store dir: %w", err)
		}
		path := filepath.Join(dir, "task-"+storeFileName(taskID)+".kv")
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("core: clearing previous store: %w", err)
		}
		kv, err := store.OpenFile(path, store.FileOptions{BatchPuts: batchPuts})
		if err != nil {
			return nil, fmt.Errorf("core: opening task store: %w", err)
		}
		return kv, nil
	}
}

// storeFileName maps an arbitrary task ID onto a safe file-name fragment.
func storeFileName(taskID string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '-' || r == '_' || r == '.':
			return r
		default:
			return '_'
		}
	}, taskID)
}
