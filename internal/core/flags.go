package core

import (
	"flag"

	"desword/internal/poc"
	"desword/internal/zkedb"
)

// CryptoConfig is the shared crypto-engine configuration of the cmd
// binaries: one set of commit/prove flags, one translation to aggregation
// options — the crypto counterpart of node.ClientConfig for the transport.
type CryptoConfig struct {
	// CommitWorkers bounds the ZK-EDB commit worker pool. 0 selects one
	// worker per CPU; 1 forces the serial build.
	CommitWorkers int
	// ProofCache bounds the per-task POC proof cache in entries. 0 selects
	// poc.DefaultProofCacheSize; negative disables caching.
	ProofCache int
}

// RegisterFlags registers the crypto flags on fs (use flag.CommandLine in
// main). Zero values keep the package defaults.
func (c *CryptoConfig) RegisterFlags(fs *flag.FlagSet) {
	fs.IntVar(&c.CommitWorkers, "commit-workers", c.CommitWorkers,
		"ZK-EDB commit worker pool size (0 = one per CPU, 1 = serial)")
	fs.IntVar(&c.ProofCache, "proof-cache", c.ProofCache,
		"POC proof cache entries per task (0 = default, negative = disabled)")
}

// AggOptions translates the configuration into POC aggregation options.
func (c *CryptoConfig) AggOptions() poc.AggOptions {
	return poc.AggOptions{
		Commit:         zkedb.CommitOptions{Workers: c.CommitWorkers},
		ProofCacheSize: c.ProofCache,
	}
}

// MemberOptions translates the configuration into Member options.
func (c *CryptoConfig) MemberOptions() []MemberOption {
	return []MemberOption{WithAggOptions(c.AggOptions())}
}
