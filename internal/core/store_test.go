package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"desword/internal/poc"
	"desword/internal/supplychain"
)

// TestMemberFileTaskStores pins the durable-member path: CommitTask through
// a FileTaskStores factory lands the tree in a per-task store file, queries
// prove against it, and re-committing the task replaces the previous file
// instead of tripping the non-empty-store guard.
func TestMemberFileTaskStores(t *testing.T) {
	ps := corePS(t)
	dir := t.TempDir()
	m := NewMember(ps, supplychain.NewParticipant("v1"),
		WithTaskStores(FileTaskStores(dir, 0)))
	if err := m.Participant().RecordTrace(poc.Trace{Product: "id-1", Data: []byte("op=process")}); err != nil {
		t.Fatal(err)
	}
	credential, err := m.CommitTask("task/1")
	if err != nil {
		t.Fatalf("CommitTask: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !strings.HasPrefix(entries[0].Name(), "task-") {
		t.Fatalf("expected one task store file in %s, got %v", dir, entries)
	}
	if strings.ContainsAny(entries[0].Name(), "/\\") {
		t.Fatalf("unsanitized store file name %q", entries[0].Name())
	}
	resp, err := m.Query(context.Background(), "task/1", "id-1", Good)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if resp.Claim != ClaimProcessed {
		t.Fatalf("Claim = %v, want processed", resp.Claim)
	}
	if _, err := poc.Verify(context.Background(), ps, credential, "id-1", resp.Proof); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	// Re-commit of the same task must discard the old file, not collide.
	if _, err := m.CommitTask("task/1"); err != nil {
		t.Fatalf("re-CommitTask: %v", err)
	}
}

// TestMemberUpdateTask pins the incremental-commit path at the member layer:
// UpdateTask revises the committed tree with late-arriving traces, returns a
// refreshed credential, and both old and new products prove against it.
func TestMemberUpdateTask(t *testing.T) {
	ps := corePS(t)
	m := NewMember(ps, supplychain.NewParticipant("v2"))
	if err := m.Participant().RecordTrace(poc.Trace{Product: "id-old", Data: []byte("op=old")}); err != nil {
		t.Fatal(err)
	}
	oldCred, err := m.CommitTask("task-1")
	if err != nil {
		t.Fatal(err)
	}
	newCred, err := m.UpdateTask(context.Background(), "task-1",
		[]poc.Trace{{Product: "id-new", Data: []byte("op=new")}})
	if err != nil {
		t.Fatalf("UpdateTask: %v", err)
	}
	if newCred.Equal(oldCred) {
		t.Fatal("UpdateTask returned the stale credential")
	}
	got, err := m.POC("task-1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(newCred) {
		t.Fatal("member kept the stale credential after UpdateTask")
	}
	for id, wantData := range map[poc.ProductID]string{"id-old": "op=old", "id-new": "op=new"} {
		resp, err := m.Query(context.Background(), "task-1", id, Good)
		if err != nil {
			t.Fatalf("Query(%s): %v", id, err)
		}
		tr, err := poc.Verify(context.Background(), ps, newCred, id, resp.Proof)
		if err != nil {
			t.Fatalf("Verify(%s) against updated credential: %v", id, err)
		}
		if tr == nil || string(tr.Data) != wantData {
			t.Fatalf("Verify(%s) recovered %v, want %q", id, tr, wantData)
		}
	}
	// Duplicate product ids within one batch must be rejected, like Agg
	// rejects them within one database.
	if _, err := m.UpdateTask(context.Background(), "task-1", []poc.Trace{
		{Product: "id-dup", Data: []byte("a")},
		{Product: "id-dup", Data: []byte("b")},
	}); !errors.Is(err, poc.ErrDuplicateTrace) {
		t.Fatalf("duplicate UpdateTask = %v, want ErrDuplicateTrace", err)
	}
	// Re-recording an already-committed product is an amendment, not an
	// error: the trace value is replaced along its path.
	amended, err := m.UpdateTask(context.Background(), "task-1",
		[]poc.Trace{{Product: "id-old", Data: []byte("op=amended")}})
	if err != nil {
		t.Fatalf("amending UpdateTask: %v", err)
	}
	resp, err := m.Query(context.Background(), "task-1", "id-old", Good)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := poc.Verify(context.Background(), ps, amended, "id-old", resp.Proof)
	if err != nil || tr == nil || string(tr.Data) != "op=amended" {
		t.Fatalf("amended trace verify = (%v, %v), want op=amended", tr, err)
	}
	// Uncommitted tasks cannot be updated.
	if _, err := m.UpdateTask(context.Background(), "task-none", nil); !errors.Is(err, ErrNotCommitted) {
		t.Fatalf("UpdateTask on missing task = %v, want ErrNotCommitted", err)
	}
}

// TestCryptoConfigStoreFlags pins the flag translation: backend names map to
// factories (or errors), and MemberOptions carries them through.
func TestCryptoConfigStoreFlags(t *testing.T) {
	var c CryptoConfig
	if f, err := c.TaskStores(); err != nil || f != nil {
		t.Fatalf("default TaskStores = (%v, %v), want (nil, nil)", f, err)
	}
	c.Store = "mem"
	if f, err := c.TaskStores(); err != nil || f != nil {
		t.Fatalf("mem TaskStores = (%v, %v), want (nil, nil)", f, err)
	}
	c.Store = "bogus"
	if _, err := c.TaskStores(); err == nil {
		t.Fatal("bogus backend accepted")
	}
	if _, err := c.MemberOptions(); err == nil {
		t.Fatal("MemberOptions swallowed the bad backend")
	}
	c.Store = "file"
	c.StoreDir = filepath.Join(t.TempDir(), "stores")
	factory, err := c.TaskStores()
	if err != nil || factory == nil {
		t.Fatalf("file TaskStores = (%v, %v)", factory, err)
	}
	kv, err := factory("task 1:weird/id")
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	defer kv.Close()
	entries, err := os.ReadDir(c.StoreDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || strings.ContainsAny(entries[0].Name(), " /:") {
		t.Fatalf("expected one sanitized store file, got %v", entries)
	}
	opts, err := c.MemberOptions()
	if err != nil {
		t.Fatalf("MemberOptions: %v", err)
	}
	if len(opts) != 2 {
		t.Fatalf("MemberOptions returned %d options, want agg + stores", len(opts))
	}
}
