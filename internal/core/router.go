package core

import (
	"context"
	"errors"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"

	"desword/internal/obs"
	"desword/internal/poc"
	"desword/internal/reputation"
)

// This file is the proxy's embedded shard router. Query-path state — the POC
// directory (task lists and per-initial POC-queues), the path-level
// single-flight table, and the reputation ledger — is partitioned across N
// independent shard workers, routed by product-id hash, so concurrent
// queries for different products never contend on one lock or one ledger.
// List registration fans out to every shard (a list is shared, immutable
// task metadata; each shard keeps its own pointer-level index), while all
// per-query mutable state lives strictly inside the owning shard.

// proxyShard is one shard worker: a full, self-contained query-path state
// partition. Everything a walk touches lives here, so two queries on
// different shards share nothing mutable.
type proxyShard struct {
	id int

	mu     sync.RWMutex
	lists  map[string]*poc.List               // task id → POC list; guarded by mu
	queues map[poc.ParticipantID][]queueEntry // guarded by mu

	// Path-level single-flight: concurrent queries for the same
	// (product, quality) coalesce onto one walk, the PR 5 proof-cache idiom
	// lifted to whole path queries. Entries live only while the leader runs.
	fmu     sync.Mutex
	flights map[flightKey]*pathFlight // guarded by fmu

	ledger *reputation.Ledger

	// Per-instance tallies for ShardStats: the obs series below are
	// process-wide (every proxy in the process shares the shard-0 series),
	// so a proxy's own snapshot needs its own counters.
	nQueries   atomic.Uint64
	nCoalesced atomic.Uint64

	queries   *obs.Counter // walks led by this shard index, process-wide
	coalesced *obs.Counter // queries coalesced on this shard index, process-wide
}

// newProxyShard builds one empty shard worker.
func newProxyShard(id int) *proxyShard {
	shard := strconv.Itoa(id)
	return &proxyShard{
		id:      id,
		lists:   make(map[string]*poc.List),
		queues:  make(map[poc.ParticipantID][]queueEntry),
		flights: make(map[flightKey]*pathFlight),
		ledger:  reputation.NewLedger(),
		queries: obs.Default.Counter("desword_shard_queries_total",
			"Path-query walks led, by owning shard.", "shard", shard),
		coalesced: obs.Default.Counter("desword_shard_coalesced_total",
			"Path queries coalesced onto a concurrent walk for the same product, by owning shard.",
			"shard", shard),
	}
}

// shardRouter deterministically maps product ids onto shard workers.
type shardRouter struct {
	shards []*proxyShard
}

// newShardRouter builds n shard workers (n >= 1).
func newShardRouter(n int) *shardRouter {
	r := &shardRouter{shards: make([]*proxyShard, n)}
	for i := range r.shards {
		r.shards[i] = newProxyShard(i)
	}
	return r
}

// shardFor returns the shard owning a product id: FNV-1a over the id, mod N.
// The mapping is pure — any process, any restart, any shard count N computes
// the same owner — so routing needs no coordination state.
func (r *shardRouter) shardFor(id poc.ProductID) *proxyShard {
	if len(r.shards) == 1 {
		return r.shards[0]
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return r.shards[h.Sum32()%uint32(len(r.shards))]
}

// flightKey identifies one coalescable walk: the product and the query
// flavour (a good and a bad query for the same id are different walks with
// different reputation consequences and must not coalesce).
type flightKey struct {
	product poc.ProductID
	quality Quality
}

// pathFlight is one in-flight walk. result/err are written once by the
// leader before ready is closed; followers read them only after <-ready.
type pathFlight struct {
	ready  chan struct{}
	result *Result
	err    error
}

// queryCoalesced runs one path query on the shard with single-flight
// coalescing: the first caller for a (product, quality) becomes the leader
// and performs the walk via run; concurrent callers for the same key park on
// the flight and share the leader's result — one walk, one settlement, one
// wide event, no matter how many callers asked. The entry is removed the
// moment the leader finishes, so coalescing never spans non-overlapping
// queries: N serial queries still award N times, exactly like the unsharded
// proxy. Followers of a ctx-cancelled leader retry as leader (the PR 5
// proof-cache rule) so one impatient caller cannot poison the rest.
func (sh *proxyShard) queryCoalesced(ctx context.Context, key flightKey, run func() (*Result, error)) (*Result, error) {
	for {
		sh.fmu.Lock()
		if fl, ok := sh.flights[key]; ok {
			sh.fmu.Unlock()
			sh.nCoalesced.Add(1)
			sh.coalesced.Inc()
			mCoalesced.Inc()
			select {
			case <-fl.ready:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if fl.err != nil && errors.Is(fl.err, context.Canceled) && ctx.Err() == nil {
				continue // leader was cancelled, we were not: take over
			}
			return fl.result, fl.err
		}
		fl := &pathFlight{ready: make(chan struct{})}
		sh.flights[key] = fl
		sh.fmu.Unlock()
		return sh.lead(key, fl, run)
	}
}

// lead runs the walk as the flight's leader and publishes the outcome: the
// entry is removed before ready is closed, so a caller arriving after the
// close starts a fresh flight rather than reading a settled one.
func (sh *proxyShard) lead(key flightKey, fl *pathFlight, run func() (*Result, error)) (*Result, error) {
	sh.nQueries.Add(1)
	sh.queries.Inc()
	fl.result, fl.err = run()
	sh.fmu.Lock()
	delete(sh.flights, key)
	sh.fmu.Unlock()
	close(fl.ready)
	return fl.result, fl.err
}

// mCoalesced is the process-wide companion of the per-shard coalesced
// counters, for dashboards that do not care about the shard dimension.
var mCoalesced = obs.Default.Counter("desword_coalesced_queries_total",
	"Path queries coalesced onto a concurrent walk for the same product.")

// ShardStats is one shard's operational snapshot.
type ShardStats struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Queries counts walks this shard led.
	Queries uint64 `json:"queries"`
	// Coalesced counts queries served by joining a concurrent walk.
	Coalesced uint64 `json:"coalesced"`
	// Tasks counts POC lists registered on this shard (every shard indexes
	// every list, so this matches the proxy-wide task count).
	Tasks int `json:"tasks"`
	// AuditEntries counts chained ledger events settled on this shard.
	AuditEntries uint64 `json:"audit_entries"`
}

// ShardStats returns one snapshot per shard worker, in shard order.
func (px *Proxy) ShardStats() []ShardStats {
	out := make([]ShardStats, len(px.router.shards))
	for i, sh := range px.router.shards {
		sh.mu.RLock()
		tasks := len(sh.lists)
		sh.mu.RUnlock()
		_, count := sh.ledger.Head()
		out[i] = ShardStats{
			Shard:        i,
			Queries:      sh.nQueries.Load(),
			Coalesced:    sh.nCoalesced.Load(),
			Tasks:        tasks,
			AuditEntries: count,
		}
	}
	return out
}
