// Package core implements DE-Sword itself — the incentivized verifiable
// product path query system of the paper (§II, §IV). It glues the POC scheme
// onto the supply-chain substrate and drives both phases:
//
//   - the distribution phase, in which the involved participants commit their
//     RFID-traces into POCs, link them into a POC list mirroring the
//     distribution sub-digraph, and submit the list to the trusted proxy; and
//   - the query phase, in which the proxy walks a product's path hop by hop,
//     verifying ownership / non-ownership proofs against the POC list and
//     assigning double-edged reputation scores to the identified
//     participants.
//
// Participants are reached through the Responder interface, so the same
// protocol logic drives in-process members (package core) and TCP nodes
// (package node).
package core

import (
	"context"
	"errors"
	"fmt"

	"desword/internal/events"
	"desword/internal/poc"
	"desword/internal/reputation"
)

// Quality re-exports the product quality type used by the award strategy.
type Quality = reputation.Quality

// Re-exported quality values, so core callers need not import reputation.
const (
	Good = reputation.Good
	Bad  = reputation.Bad
)

// Errors reported by the core protocol.
var (
	ErrUnknownTask       = errors.New("core: unknown distribution task")
	ErrNotCommitted      = errors.New("core: participant has not committed this task")
	ErrNoResponder       = errors.New("core: no responder for participant")
	ErrNoStart           = errors.New("core: no initial participant admits processing the product")
	ErrAlreadyRegistered = errors.New("core: task already registered")
)

// Claim is a participant's self-declaration during a query interaction.
type Claim int

// Claim values start at 1 so the zero value is invalid.
const (
	// ClaimProcessed means the participant claims it processed the product.
	ClaimProcessed Claim = iota + 1
	// ClaimNotProcessed means the participant claims it did not.
	ClaimNotProcessed
)

// String implements fmt.Stringer.
func (c Claim) String() string {
	switch c {
	case ClaimProcessed:
		return "processed"
	case ClaimNotProcessed:
		return "not-processed"
	default:
		return fmt.Sprintf("Claim(%d)", int(c))
	}
}

// Response is a participant's answer to one query interaction: its claim,
// the supporting proof, and — when it admits processing — the identity of
// the next participant that processed the product ("" for none).
type Response struct {
	Claim Claim             `json:"claim"`
	Proof *poc.Proof        `json:"proof,omitempty"`
	Next  poc.ParticipantID `json:"next,omitempty"`
}

// Responder is a reachable participant endpoint. Implementations: Member
// (in-process, honest), the adversary wrappers, and node.ResponderClient
// (TCP). The context carries cancellation and the active trace span, so one
// distributed trace follows a query across process boundaries.
type Responder interface {
	// Query asks for the participant's response for product id within a
	// distribution task. The quality tells the participant which proof the
	// proxy expects first (ownership for good products, non-ownership for
	// bad ones).
	Query(ctx context.Context, taskID string, id poc.ProductID, quality Quality) (*Response, error)
	// DemandOwnership is the proxy's follow-up in the bad-product case when
	// a claimed non-ownership proof fails to verify: reveal a valid
	// ownership proof (§IV.C bad case, step 2).
	DemandOwnership(ctx context.Context, taskID string, id poc.ProductID) (*Response, error)
}

// Resolver maps a participant identity to a reachable endpoint.
type Resolver func(poc.ParticipantID) (Responder, error)

// ViolationType enumerates the query-phase dishonest behaviours of §III.B as
// the proxy detects them.
type ViolationType int

// Violation types start at 1 so the zero value is invalid.
const (
	// ViolationClaimProcessing: claimed to have processed the product but
	// could not produce a valid ownership proof (good-product case).
	ViolationClaimProcessing ViolationType = iota + 1
	// ViolationClaimNonProcessing: claimed not to have processed the product
	// but could not produce a valid non-ownership proof, and a subsequent
	// ownership demand succeeded (bad-product case).
	ViolationClaimNonProcessing
	// ViolationNoValidProof: produced neither a valid ownership nor a valid
	// non-ownership proof — impossible for an honest holder of a correct POC.
	ViolationNoValidProof
	// ViolationWrongNextHop: named a next participant that either is not a
	// recorded child in the POC list (case 2 of §III.B) or provably did not
	// process the product (case 1), or omitted a next hop that exists.
	ViolationWrongNextHop
	// ViolationUnreachable: the participant failed to respond at all.
	ViolationUnreachable
)

// String implements fmt.Stringer.
func (t ViolationType) String() string {
	switch t {
	case ViolationClaimProcessing:
		return "claim-processing"
	case ViolationClaimNonProcessing:
		return "claim-non-processing"
	case ViolationNoValidProof:
		return "no-valid-proof"
	case ViolationWrongNextHop:
		return "wrong-next-hop"
	case ViolationUnreachable:
		return "unreachable"
	default:
		return fmt.Sprintf("ViolationType(%d)", int(t))
	}
}

// Violation records one detected dishonest behaviour.
type Violation struct {
	Participant poc.ParticipantID `json:"participant"`
	Type        ViolationType     `json:"type"`
	Detail      string            `json:"detail"`
}

// Result is the outcome of one product path information query.
type Result struct {
	// Product is the queried product.
	Product poc.ProductID
	// Quality is the checked quality that selected the query flavour.
	Quality Quality
	// TaskID is the distribution task whose POC list anchored the query
	// ("" when no starting participant was identified).
	TaskID string
	// Path lists the identified participants in path order.
	Path []poc.ParticipantID
	// Traces maps identified participants to the recovered RFID-traces.
	// Participants identified only through a violation have no entry.
	Traces map[poc.ParticipantID]poc.Trace
	// Violations lists every dishonest behaviour detected during the query.
	Violations []Violation
	// Complete reports whether the walk ended at a leaf of the POC list.
	Complete bool
	// TraceID names the distributed trace recorded for this query ("" when
	// the query was not sampled). The full span timeline is retrievable
	// from the proxy's /debug/traces/<id> admin endpoint.
	TraceID string
	// Event is the canonical wide event the proxy assembled for this query:
	// outcome, per-hop timings, resource counters, violations, reputation
	// deltas. Always populated by Proxy.QueryPath (whether or not a sink is
	// configured), and carried across the wire to remote queriers.
	Event *events.Event

	// hops accumulates the committed query interactions in walk order;
	// finishEvent copies them onto Event.
	hops []events.Hop
	// repDeltas is filled by settle: the net score change per affected
	// participant.
	repDeltas map[string]float64
}

// PathInfo assembles the ordered trace list — the product's path information
// as defined in §II.A.
func (r *Result) PathInfo() []poc.Trace {
	out := make([]poc.Trace, 0, len(r.Path))
	for _, v := range r.Path {
		if tr, ok := r.Traces[v]; ok {
			out = append(out, tr)
		}
	}
	return out
}

// Violated reports whether any violation of the given type was detected.
func (r *Result) Violated(t ViolationType) bool {
	for _, v := range r.Violations {
		if v.Type == t {
			return true
		}
	}
	return false
}
