package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"desword/internal/events"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
)

// nextOmitter strips the next-hop pointer from every answer, forcing the
// proxy to fall back to probing the POC list's recorded children at each hop
// — the code path the concurrent fan-out accelerates.
type nextOmitter struct {
	Responder
}

func (o nextOmitter) Query(ctx context.Context, taskID string, id poc.ProductID, quality Quality) (*Response, error) {
	resp, err := o.Responder.Query(ctx, taskID, id, quality)
	if resp != nil {
		resp.Next = ""
	}
	return resp, err
}

func (o nextOmitter) DemandOwnership(ctx context.Context, taskID string, id poc.ProductID) (*Response, error) {
	resp, err := o.Responder.DemandOwnership(ctx, taskID, id)
	if resp != nil {
		resp.Next = ""
	}
	return resp, err
}

// omittingFixture deploys the Figure 1 digraph with every participant
// omitting its next hop, behind a proxy with the given probe fan-out.
func omittingFixture(t *testing.T, products int, fanout int) (*Proxy, *DistributionResult) {
	t.Helper()
	ps := corePS(t)
	g := supplychain.FigureOneGraph()
	members := make(map[poc.ParticipantID]*Member)
	for _, v := range g.Participants() {
		members[v] = NewMember(ps, supplychain.NewParticipant(v))
	}
	tags, err := supplychain.MintTags("fo", products)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := RunDistribution(ps, g, members, "v0", tags, nil, supplychain.RoundRobinSplitter, "task-fanout")
	if err != nil {
		t.Fatal(err)
	}
	resolver := func(v poc.ParticipantID) (Responder, error) {
		m, ok := members[v]
		if !ok {
			return nil, fmt.Errorf("no member %s", v)
		}
		return nextOmitter{Responder: m}, nil
	}
	proxy := NewProxy(ps, reputation.DefaultStrategy(), resolver, WithProbeFanout(fanout))
	if err := proxy.RegisterList(dist.TaskID, dist.List); err != nil {
		t.Fatal(err)
	}
	return proxy, dist
}

// stripNondeterminism clears what legitimately differs between two runs of
// the same query — trace ids and wall-clock timings — so DeepEqual pins
// everything else: path, violations, traces, hop sequence, rep deltas.
func stripNondeterminism(r *Result) {
	r.TraceID = ""
	zeroHops := func(hops []events.Hop) {
		for i := range hops {
			hops[i].IdentifyUS, hops[i].ProveUS = 0, 0
			hops[i].VerifyUS, hops[i].DemandUS = 0, 0
		}
	}
	zeroHops(r.hops)
	if r.Event != nil {
		r.Event.Time = time.Time{}
		r.Event.TraceID = ""
		r.Event.DurationUS = 0
		zeroHops(r.Event.Hops)
		// Resource counters legitimately depend on the fan-out: a discarded
		// speculative probe still computed (and cached) its proof, and those
		// costs are attributed to the query that spent them.
		r.Event.CacheHits, r.Event.CacheMisses = 0, 0
		r.Event.PoolReused, r.Event.PoolRetries = 0, 0
	}
}

// TestProbeFanoutPreservesSerialOutcome pins the determinism argument of the
// concurrent child probing: at any fan-out, every query must produce exactly
// the result — path, violation sequence, traces, completeness — and the same
// Stats counters as the fully serial walk.
func TestProbeFanoutPreservesSerialOutcome(t *testing.T) {
	const products = 6
	serial, dist := omittingFixture(t, products, 1)
	parallel, _ := omittingFixture(t, products, 8)

	for id := range dist.Ground.Paths {
		for _, quality := range []Quality{Good, Bad} {
			want, err := serial.QueryPath(context.Background(), id, quality)
			if err != nil {
				t.Fatalf("serial QueryPath(%s, %v): %v", id, quality, err)
			}
			got, err := parallel.QueryPath(context.Background(), id, quality)
			if err != nil {
				t.Fatalf("parallel QueryPath(%s, %v): %v", id, quality, err)
			}
			// Trace ids and wall-clock timings differ per run; everything
			// else observable must not.
			stripNondeterminism(want)
			stripNondeterminism(got)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("fan-out changed the outcome for %s (%v):\nserial:   %+v\nparallel: %+v",
					id, quality, want, got)
			}
			if len(want.Path) == 0 {
				t.Fatalf("omitted next hops must still be recoverable via child probes: %+v", want)
			}
		}
	}

	ss, ps := serial.Stats(), parallel.Stats()
	if !reflect.DeepEqual(ss, ps) {
		t.Fatalf("fan-out changed the interaction accounting:\nserial:   %+v\nparallel: %+v", ss, ps)
	}
	if ss.Violations[ViolationWrongNextHop] == 0 {
		t.Fatal("omitted next hops must register as wrong-next-hop violations")
	}
}

// TestProbeFanoutOptionBounds pins the option's guard rails.
func TestProbeFanoutOptionBounds(t *testing.T) {
	px := NewProxy(corePS(t), reputation.DefaultStrategy(), nil)
	if px.cfg.ProbeFanout != DefaultProbeFanout {
		t.Fatalf("default fan-out = %d, want %d", px.cfg.ProbeFanout, DefaultProbeFanout)
	}
	px = NewProxy(corePS(t), reputation.DefaultStrategy(), nil, WithProbeFanout(0), WithProbeFanout(-3))
	if px.cfg.ProbeFanout != DefaultProbeFanout {
		t.Fatalf("non-positive fan-out must keep the default, got %d", px.cfg.ProbeFanout)
	}
	px = NewProxy(corePS(t), reputation.DefaultStrategy(), nil, WithProbeFanout(2))
	if px.cfg.ProbeFanout != 2 {
		t.Fatalf("fan-out = %d, want 2", px.cfg.ProbeFanout)
	}
}
