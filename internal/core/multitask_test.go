package core

import (
	"context"
	"testing"

	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
)

// TestPOCQueueSameInitial exercises §IV.D precisely: ONE initial participant
// accumulates several entries in its POC-queue (one per distribution task),
// and the proxy must check the queried product against each entry — in the
// bad case by demanding a non-ownership proof per queue entry.
func TestPOCQueueSameInitial(t *testing.T) {
	ps := corePS(t)
	g, parts := supplychain.LineGraph(3)
	members := make(map[poc.ParticipantID]*Member, 3)
	for id, p := range parts {
		members[id] = NewMember(ps, p)
	}
	resolver := func(v poc.ParticipantID) (Responder, error) { return members[v], nil }
	proxy := NewProxy(ps, reputation.DefaultStrategy(), resolver)

	// Three tasks, all starting at p0, each distributing one distinct
	// product. p0's POC-queue ends with three entries.
	taskIDs := []string{"lot-1", "lot-2", "lot-3"}
	prefixes := []string{"alpha", "bravo", "charlie"}
	for i, taskID := range taskIDs {
		tags, err := supplychain.MintTags(prefixes[i], 1)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := RunDistribution(ps, g, members, "p0", tags, nil,
			supplychain.FirstChildSplitter, taskID)
		if err != nil {
			t.Fatal(err)
		}
		if err := proxy.RegisterList(taskID, dist.List); err != nil {
			t.Fatal(err)
		}
	}

	// Bad-product query for the LAST lot: the proxy sweeps p0's queue; the
	// first two entries clear p0 with valid non-ownership proofs, the third
	// identifies it.
	result, err := proxy.QueryPath(context.Background(), "charlie1", Bad)
	if err != nil {
		t.Fatal(err)
	}
	if result.TaskID != "lot-3" {
		t.Fatalf("resolved to %q, want lot-3", result.TaskID)
	}
	if len(result.Path) != 3 || !result.Complete {
		t.Fatalf("path = %v complete=%v", result.Path, result.Complete)
	}
	if len(result.Violations) != 0 {
		t.Fatalf("honest sweep must record no violations: %+v", result.Violations)
	}

	// Good-product flavour across the same queue.
	result, err = proxy.QueryPath(context.Background(), "bravo1", Good)
	if err != nil {
		t.Fatal(err)
	}
	if result.TaskID != "lot-2" || len(result.Path) != 3 {
		t.Fatalf("resolved to %q with path %v", result.TaskID, result.Path)
	}

	// A product in no lot clears all three queue entries.
	result, err = proxy.QueryPath(context.Background(), "delta1", Bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Path) != 0 || len(result.Violations) != 0 {
		t.Fatalf("unknown product must clear the whole queue: %+v", result)
	}
}

// TestDynamicDigraphAcrossTasks exercises the paper's dynamic supply chain
// (§II.A): edges and participants change between distribution tasks, and
// queries against old tasks keep answering from their frozen POC lists.
func TestDynamicDigraphAcrossTasks(t *testing.T) {
	ps := corePS(t)
	g := supplychain.NewGraph()
	for _, v := range []supplychain.ParticipantID{"a", "b", "c"} {
		g.AddParticipant(v)
	}
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("b", "c"); err != nil {
		t.Fatal(err)
	}
	members := map[poc.ParticipantID]*Member{
		"a": NewMember(ps, supplychain.NewParticipant("a")),
		"b": NewMember(ps, supplychain.NewParticipant("b")),
		"c": NewMember(ps, supplychain.NewParticipant("c")),
	}
	resolver := func(v poc.ParticipantID) (Responder, error) {
		m, ok := members[v]
		if !ok {
			return nil, ErrNoResponder
		}
		return m, nil
	}
	proxy := NewProxy(ps, reputation.DefaultStrategy(), resolver)

	tags1, err := supplychain.MintTags("old", 1)
	if err != nil {
		t.Fatal(err)
	}
	dist1, err := RunDistribution(ps, g, members, "a", tags1, nil, supplychain.FirstChildSplitter, "before")
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.RegisterList("before", dist1.List); err != nil {
		t.Fatal(err)
	}

	// The chain evolves: b is replaced by a new participant d.
	g.RemoveParticipant("b")
	g.AddParticipant("d")
	if err := g.AddEdge("a", "d"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("d", "c"); err != nil {
		t.Fatal(err)
	}
	members["d"] = NewMember(ps, supplychain.NewParticipant("d"))

	tags2, err := supplychain.MintTags("new", 1)
	if err != nil {
		t.Fatal(err)
	}
	dist2, err := RunDistribution(ps, g, members, "a", tags2, nil, supplychain.FirstChildSplitter, "after")
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.RegisterList("after", dist2.List); err != nil {
		t.Fatal(err)
	}

	// Old product still resolves through the departed participant b (its POC
	// list is frozen), new product flows through d.
	oldResult, err := proxy.QueryPath(context.Background(), "old1", Good)
	if err != nil {
		t.Fatal(err)
	}
	if oldResult.TaskID != "before" || len(oldResult.Path) != 3 || oldResult.Path[1] != "b" {
		t.Fatalf("old product path = %v (task %s)", oldResult.Path, oldResult.TaskID)
	}
	newResult, err := proxy.QueryPath(context.Background(), "new1", Good)
	if err != nil {
		t.Fatal(err)
	}
	if newResult.TaskID != "after" || len(newResult.Path) != 3 || newResult.Path[1] != "d" {
		t.Fatalf("new product path = %v (task %s)", newResult.Path, newResult.TaskID)
	}
}
