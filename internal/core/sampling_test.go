package core

import (
	"context"
	"math/rand"
	"testing"

	"desword/internal/poc"
)

func TestSampleAndQuery(t *testing.T) {
	fx := newFixture(t, 8)
	market := make([]poc.ProductID, 0, len(fx.dist.Ground.Paths))
	for id := range fx.dist.Ground.Paths {
		market = append(market, id)
	}
	// Deterministic inspection: id3 is bad, everything else good.
	check := func(id poc.ProductID) Quality {
		if id == "id3" {
			return Bad
		}
		return Good
	}
	rng := rand.New(rand.NewSource(7))
	report, err := fx.proxy.SampleAndQuery(context.Background(), rng, market, 1.0, check)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Sampled) != len(market) {
		t.Fatalf("rate 1.0 must sample everything: %d/%d", len(report.Sampled), len(market))
	}
	if report.BadCount != 1 || report.GoodCount != len(market)-1 {
		t.Fatalf("counts = good %d bad %d", report.GoodCount, report.BadCount)
	}
	for i, res := range report.Results {
		if len(res.Path) == 0 || !res.Complete {
			t.Fatalf("sampled query %d incomplete: %+v", i, res)
		}
	}
	// The double edge landed: every involved participant was scored at least
	// once (positive and negative awards may net out for participants on
	// both kinds of path), and the bad path produced negative events.
	ledger := fx.proxy.Ledger()
	scoredBy := make(map[poc.ParticipantID]int)
	negative := 0
	for _, e := range ledger.Events() {
		scoredBy[e.Participant]++
		if e.Delta < 0 {
			negative++
		}
	}
	for _, v := range fx.dist.Ground.Involved {
		if scoredBy[v] == 0 {
			t.Fatalf("sampled campaign must have scored %s", v)
		}
	}
	if negative != len(fx.dist.Ground.Paths["id3"]) {
		t.Fatalf("bad path must produce one negative event per hop, got %d", negative)
	}
}

func TestSampleAndQueryRateZero(t *testing.T) {
	fx := newFixture(t, 2)
	rng := rand.New(rand.NewSource(1))
	report, err := fx.proxy.SampleAndQuery(context.Background(), rng, []poc.ProductID{"id1", "id2"}, 0,
		func(poc.ProductID) Quality { return Good })
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Sampled) != 0 {
		t.Fatal("rate 0 must sample nothing")
	}
}

func TestSampleAndQueryPartialRateDeterministic(t *testing.T) {
	fx := newFixture(t, 8)
	market := make([]poc.ProductID, 0, 8)
	for id := range fx.dist.Ground.Paths {
		market = append(market, id)
	}
	check := func(poc.ProductID) Quality { return Good }
	a, err := fx.proxy.SampleAndQuery(context.Background(), rand.New(rand.NewSource(42)), market, 0.5, check)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fx.proxy.SampleAndQuery(context.Background(), rand.New(rand.NewSource(42)), market, 0.5, check)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sampled) != len(b.Sampled) {
		t.Fatal("same seed must sample the same subset")
	}
}

func TestSampleAndQueryValidation(t *testing.T) {
	fx := newFixture(t, 2)
	check := func(poc.ProductID) Quality { return Good }
	rng := rand.New(rand.NewSource(1))
	if _, err := fx.proxy.SampleAndQuery(context.Background(), nil, nil, 0.5, check); err == nil {
		t.Fatal("nil rng must be rejected")
	}
	if _, err := fx.proxy.SampleAndQuery(context.Background(), rng, nil, 1.5, check); err == nil {
		t.Fatal("rate > 1 must be rejected")
	}
	if _, err := fx.proxy.SampleAndQuery(context.Background(), rng, nil, 0.5, nil); err == nil {
		t.Fatal("nil quality check must be rejected")
	}
}
