package core

import "sync"

// Stats are the proxy's operational counters — what an operator dashboards:
// query volume by flavour, per-participant interactions, and detected
// violations by type.
type Stats struct {
	// TasksRegistered counts accepted POC lists.
	TasksRegistered uint64 `json:"tasks_registered"`
	// Queries counts path queries by flavour.
	GoodQueries uint64 `json:"good_queries"`
	BadQueries  uint64 `json:"bad_queries"`
	// Interactions counts individual proxy↔participant query interactions.
	Interactions uint64 `json:"interactions"`
	// IdentifiedHops counts interactions that identified the participant.
	IdentifiedHops uint64 `json:"identified_hops"`
	// Violations tallies detections by type.
	Violations map[ViolationType]uint64 `json:"violations"`
}

// statsCounter is the mutable, locked version embedded in the proxy.
type statsCounter struct {
	mu    sync.Mutex
	stats Stats
}

func (s *statsCounter) addTask() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.TasksRegistered++
}

func (s *statsCounter) addQuery(q Quality) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch q {
	case Good:
		s.stats.GoodQueries++
	case Bad:
		s.stats.BadQueries++
	}
}

func (s *statsCounter) addInteraction(identified bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Interactions++
	if identified {
		s.stats.IdentifiedHops++
	}
}

func (s *statsCounter) addViolations(violations []Violation) {
	if len(violations) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stats.Violations == nil {
		s.stats.Violations = make(map[ViolationType]uint64)
	}
	for _, v := range violations {
		s.stats.Violations[v.Type]++
	}
}

// snapshot returns a deep copy.
func (s *statsCounter) snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.Violations = make(map[ViolationType]uint64, len(s.stats.Violations))
	for k, v := range s.stats.Violations {
		out.Violations[k] = v
	}
	return out
}

// Stats returns a snapshot of the proxy's counters.
func (px *Proxy) Stats() Stats { return px.counters.snapshot() }
