package core

import (
	"context"
	"sync"
	"testing"

	"desword/internal/poc"
)

// TestConcurrentQueries runs many path queries against one proxy in
// parallel: the protocol engine, the members' DPOC provers and the
// reputation ledger must all tolerate concurrent use.
func TestConcurrentQueries(t *testing.T) {
	fx := newFixture(t, 8)
	products := make([]poc.ProductID, 0, len(fx.dist.Ground.Paths))
	for id := range fx.dist.Ground.Paths {
		products = append(products, id)
	}
	errCh := make(chan error, len(products)*4)
	// Reps run back to back (products concurrent within each rep): two
	// overlapping queries for the same (product, quality) would coalesce onto
	// one walk and one settlement, making the exact event count below
	// timing-dependent. Coalescing semantics are pinned by their own tests.
	for rep := 0; rep < 4; rep++ {
		quality := Good
		if rep%2 == 1 {
			quality = Bad
		}
		var wg sync.WaitGroup
		for _, id := range products {
			wg.Add(1)
			go func(id poc.ProductID, q Quality) {
				defer wg.Done()
				result, err := fx.proxy.QueryPath(context.Background(), id, q)
				if err != nil {
					errCh <- err
					return
				}
				if len(result.Violations) != 0 || !result.Complete {
					errCh <- &incompleteError{id: id}
				}
			}(id, quality)
		}
		wg.Wait()
	}
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Ledger sanity: every query produced per-hop awards; total event count
	// must equal 4 × Σ path lengths.
	wantEvents := 0
	for _, path := range fx.dist.Ground.Paths {
		wantEvents += 4 * len(path)
	}
	if got := len(fx.proxy.Ledger().Events()); got != wantEvents {
		t.Fatalf("ledger recorded %d events, want %d", got, wantEvents)
	}
}

type incompleteError struct{ id poc.ProductID }

func (e *incompleteError) Error() string { return "incomplete result for " + string(e.id) }

// TestConcurrentProofsOneDPOC hammers a single member's prover from many
// goroutines — the soft-chain cache behind non-ownership proofs is shared
// mutable state and must stay consistent.
func TestConcurrentProofsOneDPOC(t *testing.T) {
	fx := newFixture(t, 4)
	var member *Member
	for _, m := range fx.members {
		if m.Participant().TraceCount() > 0 {
			member = m
			break
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				id := poc.ProductID("ghost-shared") // same absent key from all goroutines
				if (i+j)%2 == 0 {
					id = poc.ProductID("ghost-other")
				}
				resp, err := member.Query(context.Background(), fx.dist.TaskID, id, Bad)
				if err != nil {
					errCh <- err
					return
				}
				credential, err := member.POC(fx.dist.TaskID)
				if err != nil {
					errCh <- err
					return
				}
				if _, err := poc.Verify(context.Background(), fx.ps, credential, id, resp.Proof); err != nil {
					errCh <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestConcurrentRegisterAndQuery interleaves list registrations with queries.
func TestConcurrentRegisterAndQuery(t *testing.T) {
	fx := newFixture(t, 4)
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := fx.proxy.QueryPath(context.Background(), "id1", Good); err != nil {
				errCh <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		// Re-registrations of the same task must fail cleanly, never race.
		for i := 0; i < 8; i++ {
			if err := fx.proxy.RegisterList(fx.dist.TaskID, fx.dist.List); err == nil {
				errCh <- &incompleteError{id: "duplicate-registration-accepted"}
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
