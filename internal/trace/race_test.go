package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRecorderConcurrentMergeAndEviction hammers one small recorder ring from
// many goroutines: half record fresh traces (forcing evictions), half record
// additional fragments of a shared set of trace ids (forcing cross-fragment
// merges, possibly into entries being evicted), and readers walk the ring the
// whole time. Run under -race this pins the recorder's locking discipline.
func TestRecorderConcurrentMergeAndEviction(t *testing.T) {
	r := NewRecorder(8)
	now := time.Now()
	span := func(traceID string, i int) []SpanData {
		return []SpanData{{
			TraceID: traceID,
			SpanID:  fmt.Sprintf("%016x", i+1),
			Name:    "op",
			Start:   now,
			End:     now.Add(time.Duration(i+1) * time.Microsecond),
		}}
	}

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	// Shared trace ids: fragments from every worker merge into the same
	// entries while the evictors churn the ring past capacity.
	shared := make([]string, 4)
	for i := range shared {
		shared[i] = fmt.Sprintf("%032x", i+1)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w%2 == 0 {
					// Fresh trace: unique id, evicts the oldest beyond cap.
					id := fmt.Sprintf("%016x%08x%08x", w, i, i)
					r.record(id, "fresh", span(id, i))
				} else {
					// Fragment of a shared trace: merge path.
					id := shared[i%len(shared)]
					r.record(id, "merge", span(id, w*perWorker+i))
				}
			}
		}(w)
	}
	// Readers race the writers across every accessor.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Recent()
				r.Snapshot()
				for _, id := range shared {
					if td, ok := r.Get(id); ok {
						_ = td.Summary()
						_ = td.Tree()
					}
				}
			}
		}()
	}
	wg.Wait()

	if got := r.Len(); got > 8 {
		t.Fatalf("ring grew past capacity: %d", got)
	}
	// Any shared trace still resident must have deduplicated its merged
	// fragments by span id. (A shared entry may have been evicted and
	// recreated during the churn; survival itself is not guaranteed.)
	for _, id := range shared {
		td, ok := r.Get(id)
		if !ok {
			continue
		}
		seen := make(map[string]bool, len(td.Spans))
		for _, s := range td.Spans {
			if seen[s.SpanID] {
				t.Fatalf("trace %s holds duplicate span %s", id, s.SpanID)
			}
			seen[s.SpanID] = true
		}
	}
	// One more merge after the dust settles must land and be readable.
	r.record(shared[0], "merge", span(shared[0], workers*perWorker+1))
	if _, ok := r.Get(shared[0]); !ok {
		t.Fatal("post-churn record did not land in the ring")
	}
}
