package trace

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultCapacity bounds the recorder ring when a non-positive capacity is
// requested.
const DefaultCapacity = 256

// TraceData is one completed trace: every span recorded locally plus any
// adopted from peers, in completion order.
type TraceData struct {
	TraceID string     `json:"trace_id"`
	Name    string     `json:"name"`
	Start   time.Time  `json:"start"`
	End     time.Time  `json:"end"`
	Spans   []SpanData `json:"spans"`
}

// Summary is the list view of a completed trace.
type Summary struct {
	TraceID  string    `json:"trace_id"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	Duration string    `json:"duration"`
	Spans    int       `json:"spans"`
	Errors   int       `json:"errors"`
}

// Summary renders the trace's list view.
func (td *TraceData) Summary() Summary {
	errs := 0
	for _, s := range td.Spans {
		if s.Error != "" {
			errs++
		}
	}
	return Summary{
		TraceID:  td.TraceID,
		Name:     td.Name,
		Start:    td.Start,
		Duration: td.End.Sub(td.Start).String(),
		Spans:    len(td.Spans),
		Errors:   errs,
	}
}

// SpanNode is one node of the span tree /debug/traces/<id> serves: the span
// plus its children ordered by start time.
type SpanNode struct {
	SpanData
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree assembles the trace's spans into parent→child trees. Spans whose
// parent is not part of this trace's recorded fragment (e.g. a participant's
// local root, parented to a proxy-side span) surface as additional roots.
func (td *TraceData) Tree() []*SpanNode {
	nodes := make(map[string]*SpanNode, len(td.Spans))
	for _, s := range td.Spans {
		nodes[s.SpanID] = &SpanNode{SpanData: s}
	}
	var roots []*SpanNode
	for _, n := range nodes {
		if parent, ok := nodes[n.ParentID]; ok && n.ParentID != n.SpanID {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range nodes {
		sortNodes(n.Children)
	}
	return roots
}

// sortNodes orders sibling spans chronologically (span id breaks ties so the
// order is deterministic).
func sortNodes(ns []*SpanNode) {
	sort.Slice(ns, func(i, j int) bool {
		if !ns[i].Start.Equal(ns[j].Start) {
			return ns[i].Start.Before(ns[j].Start)
		}
		return ns[i].SpanID < ns[j].SpanID
	})
}

// Recorder is a bounded ring of recent completed traces. Two fragments of
// the same trace completing in one process (e.g. a participant answering a
// query and then an ownership demand of the same path query) merge into one
// entry.
type Recorder struct {
	mu     sync.Mutex
	cap    int
	traces map[string]*TraceData // guarded by mu
	order  []string              // guarded by mu; completion order, oldest first
}

// NewRecorder builds a recorder holding up to capacity traces.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{cap: capacity, traces: make(map[string]*TraceData)}
}

// record stores one completed trace fragment, merging into an existing entry
// with the same trace id and evicting the oldest entry beyond capacity.
func (r *Recorder) record(traceID, name string, spans []SpanData) {
	if len(spans) == 0 {
		return
	}
	start, end := spans[0].Start, spans[0].End
	for _, s := range spans[1:] {
		if s.Start.Before(start) {
			start = s.Start
		}
		if s.End.After(end) {
			end = s.End
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if td, ok := r.traces[traceID]; ok {
		// Merging dedupes by span id: when caller and callee share one
		// process (tests, bench, embedded deployments) a participant-side
		// span is recorded locally and adopted back by the caller — the
		// first copy recorded wins.
		seen := make(map[string]bool, len(td.Spans))
		for _, s := range td.Spans {
			seen[s.SpanID] = true
		}
		for _, s := range spans {
			if seen[s.SpanID] {
				continue
			}
			seen[s.SpanID] = true
			td.Spans = append(td.Spans, s)
		}
		if start.Before(td.Start) {
			td.Start = start
		}
		if end.After(td.End) {
			td.End = end
		}
		return
	}
	r.traces[traceID] = &TraceData{TraceID: traceID, Name: name, Start: start, End: end, Spans: spans}
	r.order = append(r.order, traceID)
	for len(r.order) > r.cap {
		delete(r.traces, r.order[0])
		r.order = r.order[1:]
	}
}

// Len returns the number of stored traces.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces)
}

// Recent lists stored traces, newest first.
func (r *Recorder) Recent() []Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Summary, 0, len(r.order))
	for i := len(r.order) - 1; i >= 0; i-- {
		out = append(out, r.traces[r.order[i]].Summary())
	}
	return out
}

// Get returns a copy of one stored trace.
func (r *Recorder) Get(traceID string) (*TraceData, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	td, ok := r.traces[traceID]
	if !ok {
		return nil, false
	}
	cp := *td
	cp.Spans = append([]SpanData(nil), td.Spans...)
	return &cp, true
}

// Snapshot copies every stored trace, oldest first.
func (r *Recorder) Snapshot() []*TraceData {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TraceData, 0, len(r.order))
	for _, id := range r.order {
		td := r.traces[id]
		cp := *td
		cp.Spans = append([]SpanData(nil), td.Spans...)
		out = append(out, &cp)
	}
	return out
}

// WriteJSON dumps every stored trace as one JSON array — the format
// desword-bench -trace-out emits next to its metrics snapshots.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
