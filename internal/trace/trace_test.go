package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
)

func TestStartRootsSampledTrace(t *testing.T) {
	tr := New("test", 1, 8)
	ctx, root := tr.Start(context.Background(), "op", String("k", "v"))
	if root == nil {
		t.Fatal("rate 1 must sample every locally-rooted trace")
	}
	if !ValidTraceID(root.TraceID()) {
		t.Fatalf("trace id %q is not 32 lowercase hex chars", root.TraceID())
	}
	if !ValidSpanID(root.SpanID()) {
		t.Fatalf("span id %q is not 16 lowercase hex chars", root.SpanID())
	}
	if got := FromContext(ctx); got != root {
		t.Fatal("returned context does not carry the span")
	}

	_, child := tr.StartChild(ctx, "child")
	if child == nil {
		t.Fatal("StartChild under an active span must record")
	}
	if child.TraceID() != root.TraceID() {
		t.Fatal("child span left the parent's trace")
	}
	child.End()
	root.End()

	td, ok := tr.Recorder().Get(root.TraceID())
	if !ok {
		t.Fatal("completed trace missing from recorder")
	}
	if len(td.Spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(td.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range td.Spans {
		byName[s.Name] = s
	}
	if byName["child"].ParentID != root.SpanID() {
		t.Fatal("child span not parented to root")
	}
	if byName["op"].Service != "test" {
		t.Fatalf("root span service = %q, want %q", byName["op"].Service, "test")
	}
	if len(byName["op"].Attrs) != 1 || byName["op"].Attrs[0].Key != "k" {
		t.Fatalf("root attrs = %v", byName["op"].Attrs)
	}
}

func TestUnsampledPathIsInert(t *testing.T) {
	tr := New("test", 0, 8)
	ctx, span := tr.Start(context.Background(), "op")
	if span != nil {
		t.Fatal("rate 0 must not sample")
	}
	if FromContext(ctx) != nil {
		t.Fatal("unsampled context must stay empty")
	}
	_, child := tr.StartChild(ctx, "child")
	if child != nil {
		t.Fatal("StartChild with no active span must return nil")
	}

	// The nil span is fully inert: every method is a safe no-op.
	span.SetAttr(String("k", "v"))
	span.SetError(errors.New("boom"))
	span.Adopt([]SpanData{{TraceID: "x"}})
	span.End()
	if span.TraceID() != "" || span.SpanID() != "" || span.Drain() != nil {
		t.Fatal("nil span accessors must return zero values")
	}
	if tr.Recorder().Len() != 0 {
		t.Fatal("unsampled request recorded a trace")
	}
}

func TestUnsampledHotPathAllocs(t *testing.T) {
	tr := New("test", 0, 8)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, s := tr.Start(ctx, "op")
		_, s2 := tr.StartChild(c, "child")
		s2.End()
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("unsampled Start/StartChild allocated %.1f times per run, want 0", allocs)
	}
}

func TestSampleRateClampAndStatistics(t *testing.T) {
	tr := New("test", -3, 8)
	if got := tr.SampleRate(); got != 0 {
		t.Fatalf("rate -3 clamped to %v, want 0", got)
	}
	tr.SetSampleRate(7)
	if got := tr.SampleRate(); got != 1 {
		t.Fatalf("rate 7 clamped to %v, want 1", got)
	}

	tr.SetSampleRate(0.5)
	hits := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if tr.sample() {
			hits++
		}
	}
	// Binomial(4000, 0.5): ±6σ ≈ ±190. A bound loose enough to never flake.
	if hits < n/2-200 || hits > n/2+200 {
		t.Fatalf("rate 0.5 sampled %d of %d", hits, n)
	}
}

func TestStartRemoteContinuesTraceAndBypassesSampling(t *testing.T) {
	tr := New("participant", 0, 8)
	traceID, parentID := newTraceID(), newSpanID()
	ctx, span := tr.StartRemote(context.Background(), "server.query", traceID, parentID)
	if span == nil {
		t.Fatal("remote-parented span must bypass the local rate")
	}
	if span.TraceID() != traceID {
		t.Fatalf("remote span trace id %q, want %q", span.TraceID(), traceID)
	}

	_, child := tr.StartChild(ctx, "zkedb.prove")
	child.End()
	span.End()

	frag := span.Drain()
	if len(frag) != 2 {
		t.Fatalf("drained %d spans, want 2", len(frag))
	}
	for _, s := range frag {
		if s.TraceID != traceID {
			t.Fatalf("drained span carries trace %q, want %q", s.TraceID, traceID)
		}
	}
	// The fragment also lands in the local recorder for this process's own
	// /debug/traces explorer.
	if _, ok := tr.Recorder().Get(traceID); !ok {
		t.Fatal("remote fragment missing from local recorder")
	}

	// Empty trace id falls back to Start, which at rate 0 declines.
	if _, s := tr.StartRemote(context.Background(), "server.query", "", ""); s != nil {
		t.Fatal("StartRemote with no remote context must obey the local rate")
	}
}

func TestAdoptGraftsOnlyMatchingTrace(t *testing.T) {
	tr := New("proxy", 1, 8)
	_, root := tr.Start(context.Background(), "op")
	good := SpanData{TraceID: root.TraceID(), SpanID: "a", Name: "peer"}
	evil := SpanData{TraceID: "ffffffffffffffffffffffffffffffff", SpanID: "b", Name: "intruder"}
	root.Adopt([]SpanData{good, evil})
	root.End()

	td, ok := tr.Recorder().Get(root.TraceID())
	if !ok {
		t.Fatal("trace missing")
	}
	var names []string
	for _, s := range td.Spans {
		names = append(names, s.Name)
		if s.Name == "peer" && !s.Remote {
			t.Fatal("adopted span not marked remote")
		}
	}
	if len(names) != 2 {
		t.Fatalf("spans %v, want [peer op] in some order", names)
	}
	for _, n := range names {
		if n == "intruder" {
			t.Fatal("span from a foreign trace was adopted")
		}
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := New("test", 1, 8)
	_, root := tr.Start(context.Background(), "op")
	root.End()
	root.End()
	td, _ := tr.Recorder().Get(root.TraceID())
	if len(td.Spans) != 1 {
		t.Fatalf("double End recorded %d spans, want 1", len(td.Spans))
	}
}

func TestSetErrorRecords(t *testing.T) {
	tr := New("test", 1, 8)
	_, root := tr.Start(context.Background(), "op")
	root.SetError(nil) // no-op
	root.SetError(errors.New("proof rejected"))
	root.End()
	td, _ := tr.Recorder().Get(root.TraceID())
	if td.Spans[0].Error != "proof rejected" {
		t.Fatalf("span error = %q", td.Spans[0].Error)
	}
	if sum := td.Summary(); sum.Errors != 1 {
		t.Fatalf("summary errors = %d, want 1", sum.Errors)
	}
}

func TestRecorderEvictsOldestAndMergesFragments(t *testing.T) {
	rec := NewRecorder(2)
	mk := func(id string) []SpanData {
		return []SpanData{{TraceID: id, SpanID: "s" + id, Name: "op"}}
	}
	rec.record("a", "op", mk("a"))
	rec.record("b", "op", mk("b"))
	rec.record("c", "op", mk("c"))
	if rec.Len() != 2 {
		t.Fatalf("ring holds %d traces, want 2", rec.Len())
	}
	if _, ok := rec.Get("a"); ok {
		t.Fatal("oldest trace not evicted")
	}

	// A second fragment of trace "c" (e.g. the same participant answering a
	// later interaction of the same query) merges rather than evicting "b".
	rec.record("c", "op", []SpanData{{TraceID: "c", SpanID: "s2", Name: "op2"}})
	if rec.Len() != 2 {
		t.Fatalf("merge changed ring size to %d", rec.Len())
	}
	td, _ := rec.Get("c")
	if len(td.Spans) != 2 {
		t.Fatalf("merged trace holds %d spans, want 2", len(td.Spans))
	}

	recent := rec.Recent()
	if len(recent) != 2 || recent[0].TraceID != "c" || recent[1].TraceID != "b" {
		t.Fatalf("Recent order %v, want [c b]", recent)
	}
}

func TestTreeAssemblesParentLinks(t *testing.T) {
	tr := New("proxy", 1, 8)
	ctx, root := tr.Start(context.Background(), "proxy.query_path")
	hctx, hop := tr.StartChild(ctx, "hop.identify")
	_, wire := tr.StartChild(hctx, "wire.query")
	// A participant-side fragment: its local root parented to the wire span.
	wire.Adopt([]SpanData{{
		TraceID: root.TraceID(), SpanID: "feedfeedfeedfeed",
		ParentID: wire.SpanID(), Name: "server.query", Remote: true,
	}})
	wire.End()
	hop.End()
	root.End()

	td, _ := tr.Recorder().Get(root.TraceID())
	roots := td.Tree()
	if len(roots) != 1 || roots[0].Name != "proxy.query_path" {
		t.Fatalf("tree roots = %v", roots)
	}
	hopNode := roots[0].Children[0]
	if hopNode.Name != "hop.identify" || len(hopNode.Children) != 1 {
		t.Fatalf("hop node %+v", hopNode)
	}
	wireNode := hopNode.Children[0]
	if wireNode.Name != "wire.query" || len(wireNode.Children) != 1 {
		t.Fatalf("wire node %+v", wireNode)
	}
	if wireNode.Children[0].Name != "server.query" {
		t.Fatalf("remote fragment not grafted under its wire span: %+v", wireNode.Children[0])
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	tr := New("bench", 1, 8)
	_, root := tr.Start(context.Background(), "op", Int("hops", 3), Bool("ok", true))
	root.End()
	var buf bytes.Buffer
	if err := tr.Recorder().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump []TraceData
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("trace dump is not valid JSON: %v", err)
	}
	if len(dump) != 1 || dump[0].TraceID != root.TraceID() {
		t.Fatalf("dump %+v", dump)
	}
}

func TestIDValidation(t *testing.T) {
	cases := []struct {
		id    string
		trace bool
		span  bool
	}{
		{newTraceID(), true, false},
		{newSpanID(), false, true},
		{"", false, false},
		{"UPPERCASEUPPERCASEUPPERCASEUPPER", false, false},
		{"zzzzzzzzzzzzzzzz", false, false},
		{"0123456789abcdef0123456789abcdef", true, false},
		{"0123456789abcdef", false, true},
	}
	for _, c := range cases {
		if got := ValidTraceID(c.id); got != c.trace {
			t.Errorf("ValidTraceID(%q) = %v, want %v", c.id, got, c.trace)
		}
		if got := ValidSpanID(c.id); got != c.span {
			t.Errorf("ValidSpanID(%q) = %v, want %v", c.id, got, c.span)
		}
	}
}

func TestIDUniqueness(t *testing.T) {
	seen := make(map[string]bool, 2000)
	for i := 0; i < 1000; i++ {
		for _, id := range []string{newTraceID(), newSpanID()} {
			key := fmt.Sprintf("%d:%s", len(id), id)
			if seen[key] {
				t.Fatalf("duplicate id %s", id)
			}
			seen[key] = true
		}
	}
}

func TestAttrConstructors(t *testing.T) {
	cases := []struct {
		attr Attr
		want string
	}{
		{String("s", "v"), "v"},
		{Int("i", 42), "42"},
		{Bool("b", true), "true"},
		{Duration("d", 1500000000), "1.5s"},
	}
	for _, c := range cases {
		if c.attr.Value != c.want {
			t.Errorf("attr %s = %q, want %q", c.attr.Key, c.attr.Value, c.want)
		}
	}
}
