// Package trace is DE-Sword's zero-dependency distributed tracing layer:
// trace and span identifiers, parent links, wall-clock timestamps, typed
// attributes, head-based sampling, and a bounded in-memory ring of recent
// completed traces with JSON export.
//
// The design follows the repository's observability conventions (package
// obs): stdlib only, a process-wide Default tracer the instrumented packages
// share, and an allocation-free fast path — when a request is not sampled,
// Start/StartChild return a nil *Span whose methods are all no-op, so the
// query hot path pays one context lookup and one atomic load per call site.
//
// A trace follows one product path query end to end: the proxy roots a span
// per query, each hop's query interaction becomes a child span, wire round
// trips and ZK-EDB proof generation/verification nest below that, and remote
// peers continue the same trace via the trace_id/span_id envelope headers
// (package wire). Completed participant-side spans travel back to the caller
// on the response envelope, so the proxy's trace holds the full cross-process
// timeline.
package trace

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one typed span attribute. Values are kept as strings in the
// exported form; the constructors (String, Int, Bool, Duration) perform the
// conversion once, at record time.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: strconv.Itoa(value)} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: strconv.FormatBool(value)} }

// Duration builds a duration attribute.
func Duration(key string, value time.Duration) Attr {
	return Attr{Key: key, Value: value.String()}
}

// SpanData is the exported, JSON-ready form of one completed span. It is
// what the recorder stores, what /debug/traces serves, and what travels on
// response envelopes between processes.
type SpanData struct {
	TraceID  string    `json:"trace_id"`
	SpanID   string    `json:"span_id"`
	ParentID string    `json:"parent_id,omitempty"`
	Name     string    `json:"name"`
	Service  string    `json:"service,omitempty"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	Attrs    []Attr    `json:"attrs,omitempty"`
	Error    string    `json:"error,omitempty"`
	// Remote marks a span adopted from a peer's response envelope rather
	// than recorded locally.
	Remote bool `json:"remote,omitempty"`
}

// DurationSeconds returns the span duration in seconds.
func (d *SpanData) DurationSeconds() float64 { return d.End.Sub(d.Start).Seconds() }

// collector accumulates the completed spans of one locally-rooted trace.
type collector struct {
	tracer *Tracer

	mu      sync.Mutex
	traceID string
	spans   []SpanData // guarded by mu
}

func (c *collector) add(data SpanData) {
	c.mu.Lock()
	c.spans = append(c.spans, data)
	c.mu.Unlock()
}

// snapshot copies the spans collected so far.
func (c *collector) snapshot() []SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanData(nil), c.spans...)
}

// Span is one live span. A nil *Span is valid and inert — every method is
// nil-safe — which is how unsampled requests stay allocation-free.
type Span struct {
	col  *collector
	root bool

	mu    sync.Mutex
	ended bool
	data  SpanData
}

// TraceID returns the span's trace identifier ("" for a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// SpanID returns the span's own identifier ("" for a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.data.SpanID
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Attrs = append(s.data.Attrs, attrs...)
	s.mu.Unlock()
}

// SetError records a non-nil error on the span.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.data.Error = err.Error()
	s.mu.Unlock()
}

// Adopt merges completed spans received from a peer (a response envelope's
// spans field) into this span's trace. Spans whose trace id does not match
// are dropped — a peer cannot graft foreign data into the timeline.
func (s *Span) Adopt(spans []SpanData) {
	if s == nil || len(spans) == 0 {
		return
	}
	for _, sd := range spans {
		if sd.TraceID != s.data.TraceID {
			continue
		}
		sd.Remote = true
		s.col.add(sd)
	}
}

// End completes the span: it stamps the end time and moves the span into the
// trace's collector. Ending the root span hands the completed trace to the
// tracer's recorder. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.End = time.Now()
	data := s.data
	s.mu.Unlock()
	s.col.add(data)
	if s.root {
		s.col.tracer.recorder.record(s.col.traceID, data.Name, s.col.snapshot())
	}
}

// Drain returns a copy of every span collected in this span's trace so far.
// Servers call it after End to attach their fragment of a remote trace to
// the response envelope.
func (s *Span) Drain() []SpanData {
	if s == nil {
		return nil
	}
	return s.col.snapshot()
}

// spanKey is the context key the active span lives under.
type spanKey struct{}

// FromContext returns the active span, or nil when the context carries none.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ContextWithSpan returns a context carrying the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// Tracer creates spans and hands completed traces to its recorder. All
// methods are safe for concurrent use.
type Tracer struct {
	service  atomic.Pointer[string]
	rate     atomic.Uint64 // math.Float64bits of the head-sampling rate
	recorder *Recorder
}

// New builds a tracer recording up to capacity completed traces. A rate of 0
// disables locally-rooted traces; remote-parented spans are always honored,
// so the sampling decision made at the edge of the system wins.
func New(service string, rate float64, capacity int) *Tracer {
	t := &Tracer{recorder: NewRecorder(capacity)}
	t.SetService(service)
	t.SetSampleRate(rate)
	return t
}

// Default is the process-wide tracer the instrumented packages (core, node,
// poc, zkedb) record into. It starts disabled (rate 0); binaries enable it
// via -trace-sample.
var Default = New("", 0, 256)

// SetService names the process in every span this tracer records (e.g.
// "proxy", "participant:v2").
func (t *Tracer) SetService(service string) { t.service.Store(&service) }

// Service returns the configured service name.
func (t *Tracer) Service() string { return *t.service.Load() }

// SetSampleRate sets the head-based sampling rate in [0, 1]. Out-of-range
// values are clamped.
func (t *Tracer) SetSampleRate(rate float64) {
	t.rate.Store(math.Float64bits(math.Min(1, math.Max(0, rate))))
}

// SampleRate returns the current head-sampling rate.
func (t *Tracer) SampleRate() float64 { return math.Float64frombits(t.rate.Load()) }

// Recorder returns the ring of recent completed traces.
func (t *Tracer) Recorder() *Recorder { return t.recorder }

// sample makes one head-based sampling decision.
func (t *Tracer) sample() bool {
	rate := t.SampleRate()
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	// 53 random mantissa bits → uniform in [0, 1).
	return float64(nextRand()>>11)/(1<<53) < rate
}

// Start begins a span: a child of the context's active span when one exists,
// otherwise a new locally-rooted span subject to the sampling rate. The
// returned context carries the span; the returned *Span is nil (and the
// context unchanged) when the request is not sampled.
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		s := t.child(parent, name, attrs)
		return context.WithValue(ctx, spanKey{}, s), s
	}
	if !t.sample() {
		return ctx, nil
	}
	s := t.newSpan(nil, true, newTraceID(), "", name, attrs)
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartChild begins a span only when the context already carries one — it
// never roots a new trace. Wire round trips and proof operations use it so
// incidental calls outside a traced request record nothing.
func (t *Tracer) StartChild(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := t.child(parent, name, attrs)
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartRemote continues a trace whose context arrived over the wire: the new
// span becomes a local root (its completed fragment lands in this process's
// recorder and can be drained onto the response) parented to the remote span
// id. Remote-parented spans bypass the sampling rate — the edge that rooted
// the trace already decided. With an empty traceID it falls back to Start.
func (t *Tracer) StartRemote(ctx context.Context, name, traceID, parentID string, attrs ...Attr) (context.Context, *Span) {
	if traceID == "" {
		return t.Start(ctx, name, attrs...)
	}
	s := t.newSpan(nil, true, traceID, parentID, name, attrs)
	return context.WithValue(ctx, spanKey{}, s), s
}

// child builds a span under parent, sharing its collector.
func (t *Tracer) child(parent *Span, name string, attrs []Attr) *Span {
	return t.newSpan(parent.col, false, parent.data.TraceID, parent.data.SpanID, name, attrs)
}

// newSpan builds a live span; a nil col allocates a fresh collector (root).
func (t *Tracer) newSpan(col *collector, root bool, traceID, parentID, name string, attrs []Attr) *Span {
	if col == nil {
		col = &collector{tracer: t, traceID: traceID}
	}
	return &Span{
		col:  col,
		root: root,
		data: SpanData{
			TraceID:  traceID,
			SpanID:   newSpanID(),
			ParentID: parentID,
			Name:     name,
			Service:  t.Service(),
			Start:    time.Now(),
			Attrs:    attrs,
		},
	}
}

// randState is the lock-free splitmix64 state behind trace/span ids and
// sampling decisions, seeded once from crypto/rand.
var randState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := cryptorand.Read(seed[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to
		// a fixed seed rather than crashing an observability layer.
		binary.BigEndian.PutUint64(seed[:], 0x9e3779b97f4a7c15)
	}
	randState.Store(binary.BigEndian.Uint64(seed[:]))
}

// nextRand advances the splitmix64 generator one step.
func nextRand() uint64 {
	z := randState.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// newTraceID returns a 16-byte random trace id in hex.
func newTraceID() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], nextRand())
	binary.BigEndian.PutUint64(b[8:], nextRand())
	return hex.EncodeToString(b[:])
}

// newSpanID returns an 8-byte random span id in hex.
func newSpanID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], nextRand())
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether s looks like a trace id this package
// generated: 32 lowercase hex characters. Wire headers are checked with it
// so a malicious peer cannot inject arbitrary strings into logs and the
// trace explorer.
func ValidTraceID(s string) bool { return validHex(s, 32) }

// ValidSpanID reports whether s looks like a span id: 16 lowercase hex
// characters.
func ValidSpanID(s string) bool { return validHex(s, 16) }

func validHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
