package mercurial

import (
	"math/big"
	"testing"
	"testing/quick"

	"desword/internal/group"
)

func msg(s string) *big.Int {
	return group.P256().HashToScalar([]byte(s))
}

func TestHardCommitHardOpenRoundTrip(t *testing.T) {
	pk := KGen()
	c, dec := pk.HCom(msg("hello"))
	if !pk.VerHOpen(c, pk.HOpen(dec)) {
		t.Fatal("honest hard opening must verify")
	}
}

func TestHardCommitSoftOpenRoundTrip(t *testing.T) {
	pk := KGen()
	c, dec := pk.HCom(msg("hello"))
	if !pk.VerSOpen(c, pk.SOpenHard(dec)) {
		t.Fatal("honest tease of a hard commitment must verify")
	}
}

func TestSoftCommitTeasesToAnything(t *testing.T) {
	pk := KGen()
	c, dec := pk.SCom()
	for _, m := range []string{"alpha", "beta", "gamma"} {
		ts, err := pk.SOpenSoft(dec, msg(m))
		if err != nil {
			t.Fatalf("soft opening to %q: %v", m, err)
		}
		if !pk.VerSOpen(c, ts) {
			t.Fatalf("tease of soft commitment to %q must verify", m)
		}
	}
}

func TestHardOpeningWrongMessageRejected(t *testing.T) {
	pk := KGen()
	c, dec := pk.HCom(msg("real"))
	op := pk.HOpen(dec)
	op.M = msg("forged")
	if pk.VerHOpen(c, op) {
		t.Fatal("hard opening with a substituted message must fail")
	}
}

func TestTeaseWrongMessageRejected(t *testing.T) {
	pk := KGen()
	c, dec := pk.HCom(msg("real"))
	ts := pk.SOpenHard(dec)
	ts.M = msg("forged")
	if pk.VerSOpen(c, ts) {
		t.Fatal("tease of a hard commitment to a different message must fail")
	}
}

func TestHardOpeningAgainstWrongCommitmentRejected(t *testing.T) {
	pk := KGen()
	_, dec := pk.HCom(msg("one"))
	c2, _ := pk.HCom(msg("two"))
	if pk.VerHOpen(c2, pk.HOpen(dec)) {
		t.Fatal("an opening must not verify against another commitment")
	}
}

func TestSoftCommitmentCannotBeHardOpenedNaively(t *testing.T) {
	pk := KGen()
	c, dec := pk.SCom()
	// The only plausible cheat without the trapdoor: present the soft
	// randomness as if it were a hard opening.
	forged := HardOpening{M: msg("forged"), R0: dec.R0, R1: dec.R1}
	if pk.VerHOpen(c, forged) {
		t.Fatal("soft commitment must not hard-open from its own randomness")
	}
}

func TestNilFieldsRejected(t *testing.T) {
	pk := KGen()
	c, dec := pk.HCom(msg("x"))
	if pk.VerHOpen(c, HardOpening{}) {
		t.Fatal("empty hard opening must fail")
	}
	if pk.VerSOpen(c, Tease{}) {
		t.Fatal("empty tease must fail")
	}
	op := pk.HOpen(dec)
	op.R1 = nil
	if pk.VerHOpen(c, op) {
		t.Fatal("hard opening with nil randomness must fail")
	}
}

func TestTrapdoorEquivocation(t *testing.T) {
	pk, td := KGenWithTrapdoor()
	c, dec := pk.SCom()
	op, err := pk.HEquivocate(td, dec, msg("anything"))
	if err != nil {
		t.Fatalf("equivocating: %v", err)
	}
	if !pk.VerHOpen(c, op) {
		t.Fatal("trapdoor equivocation must produce a verifying hard opening")
	}
	// And to a second, different message: full equivocation.
	op2, err := pk.HEquivocate(td, dec, msg("something else"))
	if err != nil {
		t.Fatalf("equivocating twice: %v", err)
	}
	if !pk.VerHOpen(c, op2) {
		t.Fatal("second equivocation must also verify")
	}
}

func TestHardAndSoftCommitmentsLookAlike(t *testing.T) {
	// Structural indistinguishability smoke test: both flavours are a pair of
	// non-identity group elements with no flavour marker.
	pk := KGen()
	hc, _ := pk.HCom(msg("m"))
	sc, _ := pk.SCom()
	for _, c := range []Commitment{hc, sc} {
		if c.C0.IsIdentity() || c.C1.IsIdentity() {
			t.Fatal("commitments must consist of non-identity elements")
		}
		if len(c.Bytes()) != 130 {
			t.Fatalf("unexpected commitment encoding length %d", len(c.Bytes()))
		}
	}
}

func TestCommitmentHidingAcrossMessages(t *testing.T) {
	// Fresh randomness must make commitments to the same message differ.
	pk := KGen()
	c1, _ := pk.HCom(msg("same"))
	c2, _ := pk.HCom(msg("same"))
	if c1.Equal(c2) {
		t.Fatal("two commitments to the same message must differ (hiding)")
	}
}

func TestPropertyRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in short mode")
	}
	pk := KGen()
	prop := func(seed int64) bool {
		m := pk.Group().ReduceScalar(big.NewInt(seed))
		c, dec := pk.HCom(m)
		if !pk.VerHOpen(c, pk.HOpen(dec)) {
			return false
		}
		if !pk.VerSOpen(c, pk.SOpenHard(dec)) {
			return false
		}
		sc, sdec := pk.SCom()
		ts, err := pk.SOpenSoft(sdec, m)
		return err == nil && pk.VerSOpen(sc, ts)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTeaseBindingForHardCommitments(t *testing.T) {
	// Exhaustively check that perturbing τ or M breaks verification — the
	// computational claim (teasing to a different message needs log_G H) is
	// spot-checked by these algebraic probes.
	pk := KGen()
	c, dec := pk.HCom(msg("bound"))
	ts := pk.SOpenHard(dec)
	perturbed := ts
	perturbed.Tau = new(big.Int).Add(ts.Tau, big.NewInt(1))
	if pk.VerSOpen(c, perturbed) {
		t.Fatal("perturbed τ must not verify")
	}
	perturbed = ts
	perturbed.M = new(big.Int).Add(ts.M, big.NewInt(1))
	if pk.VerSOpen(c, perturbed) {
		t.Fatal("perturbed message must not verify")
	}
}

// Micro-benchmarks for the seven TMC algorithms (paper §VI.A, experiment E1).

func BenchmarkTMCKGen(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KGen()
	}
}

func BenchmarkTMCHCom(b *testing.B) {
	pk := KGen()
	m := msg("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk.HCom(m)
	}
}

func BenchmarkTMCSCom(b *testing.B) {
	pk := KGen()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk.SCom()
	}
}

func BenchmarkTMCHOpen(b *testing.B) {
	pk := KGen()
	_, dec := pk.HCom(msg("bench"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk.HOpen(dec)
	}
}

func BenchmarkTMCSOpen(b *testing.B) {
	pk := KGen()
	_, dec := pk.SCom()
	m := msg("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pk.SOpenSoft(dec, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTMCVerHOpen(b *testing.B) {
	pk := KGen()
	c, dec := pk.HCom(msg("bench"))
	op := pk.HOpen(dec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pk.VerHOpen(c, op) {
			b.Fatal("verification failed")
		}
	}
}

func BenchmarkTMCVerSOpen(b *testing.B) {
	pk := KGen()
	c, dec := pk.HCom(msg("bench"))
	ts := pk.SOpenHard(dec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pk.VerSOpen(c, ts) {
			b.Fatal("verification failed")
		}
	}
}
