// Package mercurial implements a trapdoor mercurial commitment (TMC) scheme
// in the style of Chase, Healy, Lysyanskaya, Malkin and Reyzin
// ("Mercurial commitments with applications to zero-knowledge sets",
// EUROCRYPT 2005), instantiated over the P-256 group.
//
// A mercurial commitment supports two flavours of commitments and two
// flavours of openings:
//
//   - A hard commitment binds to a single message. It can be hard-opened
//     (a full opening) or soft-opened ("teased") — but only to the committed
//     message.
//   - A soft commitment commits to nothing. It can never be hard-opened, but
//     can be soft-opened to any message of the committer's choice.
//
// DE-Sword (ICDCS 2017, §VI.A) micro-benchmarks the seven algorithms of this
// scheme: key generation, hard commit, soft commit, hard open, soft open,
// hard-opening verification, and soft-opening verification. All seven are
// exported here with exactly those semantics.
//
// Construction (discrete-log based): with generators G, H of a prime-order
// group where log_G H is unknown,
//
//	HCom(m; r0, r1) = (m·G + r0·C1, C1)   where C1 = r1·H
//	SCom(; r0, r1)  = (r0·G, r1·G)
//
// A hard opening reveals (m, r0, r1); a tease reveals (m, τ) with
// C0 = m·G + τ·C1. Teasing a hard commitment to a different message, or
// hard-opening a soft commitment, requires computing log_G H.
package mercurial

import (
	"crypto/rand"
	"errors"
	"io"
	"math/big"

	"desword/internal/group"
)

// Errors returned by opening helpers.
var (
	// ErrSoftHasNoHardOpening reports an attempt to hard-open a soft
	// commitment without the trapdoor: the scheme forbids it by design.
	ErrSoftHasNoHardOpening = errors.New("mercurial: soft commitments cannot be hard-opened")
	// ErrDegenerateRandomness reports soft-commitment randomness for which a
	// tease cannot be computed (r1 = 0); KGen-produced randomness never hits it.
	ErrDegenerateRandomness = errors.New("mercurial: degenerate soft-commitment randomness")
)

// PublicKey holds the commitment key: the group and its two generators.
type PublicKey struct {
	grp *group.Group
	g   group.Point
	h   group.Point
}

// Trapdoor is the simulation trapdoor t = log_G H. It exists only for keys
// made by KGenWithTrapdoor and enables equivocation of soft commitments.
type Trapdoor struct {
	t *big.Int
}

// Commitment is a (hard or soft) mercurial commitment. The two flavours are
// indistinguishable to anyone not holding the decommitment.
type Commitment struct {
	C0 group.Point `json:"c0"`
	C1 group.Point `json:"c1"`
}

// HardDecommit is the committer's secret state for a hard commitment.
type HardDecommit struct {
	M  *big.Int
	R0 *big.Int
	R1 *big.Int
}

// SoftDecommit is the committer's secret state for a soft commitment.
type SoftDecommit struct {
	R0 *big.Int
	R1 *big.Int
}

// HardOpening is a full opening of a hard commitment.
type HardOpening struct {
	M  *big.Int `json:"m"`
	R0 *big.Int `json:"r0"`
	R1 *big.Int `json:"r1"`
}

// Tease is a soft opening: it convinces the verifier the commitment *could*
// open to M, without certifying the commitment is hard.
type Tease struct {
	M   *big.Int `json:"m"`
	Tau *big.Int `json:"tau"`
}

// KGen generates the standard (trapdoor-free) public key: H is derived by
// hashing into the curve, so nobody knows log_G H.
func KGen() *PublicKey {
	grp := group.P256()
	return &PublicKey{grp: grp, g: grp.Generator(), h: grp.GeneratorH()}
}

// KGenWithTrapdoor generates a key together with the simulation trapdoor
// t = log_G H. Only simulators (and tests demonstrating equivocation) should
// hold the trapdoor.
func KGenWithTrapdoor() (*PublicKey, *Trapdoor) {
	grp := group.P256()
	t := grp.RandomScalar()
	return &PublicKey{grp: grp, g: grp.Generator(), h: grp.ScalarBaseMult(t)},
		&Trapdoor{t: t}
}

// Group exposes the underlying group, for callers that need to hash messages
// to scalars consistently with this key.
func (pk *PublicKey) Group() *group.Group { return pk.grp }

// HCom produces a hard commitment to message m (a scalar) and its secret
// decommitment.
func (pk *PublicKey) HCom(m *big.Int) (Commitment, HardDecommit) {
	return pk.HComFrom(rand.Reader, m)
}

// HComFrom is HCom with the commitment randomness drawn from rnd, so seeded
// builds (zkedb's deterministic commit mode) can reproduce commitments.
func (pk *PublicKey) HComFrom(rnd io.Reader, m *big.Int) (Commitment, HardDecommit) {
	r0 := pk.grp.RandomScalarFrom(rnd)
	r1 := pk.grp.RandomScalarFrom(rnd)
	c1 := pk.grp.ScalarMult(pk.h, r1)
	c0 := pk.grp.Add(pk.grp.ScalarBaseMult(m), pk.grp.ScalarMult(c1, r0))
	return Commitment{C0: c0, C1: c1},
		HardDecommit{M: pk.grp.ReduceScalar(m), R0: r0, R1: r1}
}

// SCom produces a soft commitment (committing to nothing) and its secret
// decommitment.
func (pk *PublicKey) SCom() (Commitment, SoftDecommit) {
	return pk.SComFrom(rand.Reader)
}

// SComFrom is SCom with the commitment randomness drawn from rnd.
func (pk *PublicKey) SComFrom(rnd io.Reader) (Commitment, SoftDecommit) {
	r0 := pk.grp.RandomScalarFrom(rnd)
	r1 := pk.grp.RandomScalarFrom(rnd)
	return Commitment{
		C0: pk.grp.ScalarBaseMult(r0),
		C1: pk.grp.ScalarBaseMult(r1),
	}, SoftDecommit{R0: r0, R1: r1}
}

// HOpen produces the hard opening of a hard commitment.
func (pk *PublicKey) HOpen(dec HardDecommit) HardOpening {
	return HardOpening{M: dec.M, R0: dec.R0, R1: dec.R1}
}

// SOpenHard teases a hard commitment. A hard commitment can only ever be
// teased to its committed message.
func (pk *PublicKey) SOpenHard(dec HardDecommit) Tease {
	return Tease{M: dec.M, Tau: dec.R0}
}

// SOpenSoft teases a soft commitment to an arbitrary message m: this is the
// defining "mercurial" capability.
func (pk *PublicKey) SOpenSoft(dec SoftDecommit, m *big.Int) (Tease, error) {
	inv, err := pk.grp.InvertScalar(dec.R1)
	if err != nil {
		return Tease{}, ErrDegenerateRandomness
	}
	// C0 = r0·G and C1 = r1·G, so τ = (r0 - m)/r1 satisfies C0 = m·G + τ·C1.
	tau := new(big.Int).Sub(dec.R0, m)
	tau.Mul(tau, inv)
	return Tease{M: pk.grp.ReduceScalar(m), Tau: pk.grp.ReduceScalar(tau)}, nil
}

// VerHOpen verifies a hard opening against a commitment.
func (pk *PublicKey) VerHOpen(c Commitment, op HardOpening) bool {
	if op.M == nil || op.R0 == nil || op.R1 == nil {
		return false
	}
	if !c.C1.Equal(pk.grp.ScalarMult(pk.h, op.R1)) {
		return false
	}
	want := pk.grp.Add(pk.grp.ScalarBaseMult(op.M), pk.grp.ScalarMult(c.C1, op.R0))
	return c.C0.Equal(want)
}

// VerSOpen verifies a tease against a commitment (hard or soft).
func (pk *PublicKey) VerSOpen(c Commitment, ts Tease) bool {
	if ts.M == nil || ts.Tau == nil {
		return false
	}
	want := pk.grp.Add(pk.grp.ScalarBaseMult(ts.M), pk.grp.ScalarMult(c.C1, ts.Tau))
	return c.C0.Equal(want)
}

// HEquivocate hard-opens a *soft* commitment to an arbitrary message using
// the trapdoor. It exists to demonstrate the simulation (zero-knowledge)
// property; honest protocol participants never call it.
func (pk *PublicKey) HEquivocate(td *Trapdoor, dec SoftDecommit, m *big.Int) (HardOpening, error) {
	// C1 = r1·G = (r1/t)·H and C0 = r0·G = m·G + r0'·C1 with r0' = (r0-m)/r1.
	invT, err := pk.grp.InvertScalar(td.t)
	if err != nil {
		return HardOpening{}, ErrDegenerateRandomness
	}
	invR1, err := pk.grp.InvertScalar(dec.R1)
	if err != nil {
		return HardOpening{}, ErrDegenerateRandomness
	}
	r1 := new(big.Int).Mul(dec.R1, invT)
	r0 := new(big.Int).Sub(dec.R0, m)
	r0.Mul(r0, invR1)
	return HardOpening{
		M:  pk.grp.ReduceScalar(m),
		R0: pk.grp.ReduceScalar(r0),
		R1: pk.grp.ReduceScalar(r1),
	}, nil
}

// Equal reports whether two commitments are identical.
func (c Commitment) Equal(o Commitment) bool {
	return c.C0.Equal(o.C0) && c.C1.Equal(o.C1)
}

// Bytes returns a canonical encoding of the commitment, suitable for hashing
// into parent nodes of the ZK-EDB tree.
func (c Commitment) Bytes() []byte {
	b0 := c.C0.Bytes()
	b1 := c.C1.Bytes()
	out := make([]byte, 0, len(b0)+len(b1))
	out = append(out, b0...)
	return append(out, b1...)
}
