package baseline

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"desword/internal/poc"
)

func sampleTraces(n int) []poc.Trace {
	out := make([]poc.Trace, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, poc.Trace{
			Product: poc.ProductID(fmt.Sprintf("id-%02d", i)),
			Data:    []byte(fmt.Sprintf("secret production record %02d", i)),
		})
	}
	return out
}

func TestBuildAndQuery(t *testing.T) {
	signer, err := NewSigner("v1")
	if err != nil {
		t.Fatal(err)
	}
	traces := sampleTraces(4)
	credential, err := signer.BuildPOC(traces)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[poc.ProductID]poc.Trace, len(traces))
	for _, tr := range traces {
		byID[tr.Product] = tr
	}
	fetch := func(id poc.ProductID) *poc.Trace {
		tr, ok := byID[id]
		if !ok {
			return nil
		}
		return &tr
	}
	got, err := Query(signer.PublicKey(), &credential, "id-02", fetch)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != string(byID["id-02"].Data) {
		t.Fatal("query must return the signed trace")
	}
}

func TestRefusalContradictedByBinding(t *testing.T) {
	signer, err := NewSigner("v1")
	if err != nil {
		t.Fatal(err)
	}
	credential, err := signer.BuildPOC(sampleTraces(2))
	if err != nil {
		t.Fatal(err)
	}
	refuse := func(poc.ProductID) *poc.Trace { return nil }
	if _, err := Query(signer.PublicKey(), &credential, "id-01", refuse); err == nil {
		t.Fatal("refusal must be reported against the binding signature")
	}
}

func TestWrongTraceRejected(t *testing.T) {
	signer, err := NewSigner("v1")
	if err != nil {
		t.Fatal(err)
	}
	credential, err := signer.BuildPOC(sampleTraces(2))
	if err != nil {
		t.Fatal(err)
	}
	forged := func(id poc.ProductID) *poc.Trace {
		return &poc.Trace{Product: id, Data: []byte("forged")}
	}
	if _, err := Query(signer.PublicKey(), &credential, "id-00", forged); err == nil {
		t.Fatal("a substituted trace must fail σ_t verification")
	}
}

func TestCrossSignerRejected(t *testing.T) {
	a, err := NewSigner("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSigner("b")
	if err != nil {
		t.Fatal(err)
	}
	credential, err := a.BuildPOC(sampleTraces(1))
	if err != nil {
		t.Fatal(err)
	}
	entry := credential.Entries[0]
	if err := VerifyBinding(b.PublicKey(), entry); err == nil {
		t.Fatal("binding must not verify under another key")
	}
}

func TestMissingEntry(t *testing.T) {
	signer, err := NewSigner("v1")
	if err != nil {
		t.Fatal(err)
	}
	credential, err := signer.BuildPOC(sampleTraces(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := credential.Entry("ghost"); err == nil {
		t.Fatal("missing entries must error")
	}
}

func TestStrawmanLeaksProductIDs(t *testing.T) {
	// The structural privacy failure the paper rejects the strawman for: a
	// serialized baseline POC contains every processed product id in the
	// clear. (The ZK-EDB POC counterpart is checked in zkedb's privacy test.)
	signer, err := NewSigner("v1")
	if err != nil {
		t.Fatal(err)
	}
	credential, err := signer.BuildPOC(sampleTraces(3))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(credential)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("id-01")) {
		t.Fatal("fixture broken: expected leak not present")
	}
	if got := credential.Products(); len(got) != 3 {
		t.Fatalf("Products() = %v", got)
	}
}

func TestPOCSizeGrowsLinearly(t *testing.T) {
	signer, err := NewSigner("v1")
	if err != nil {
		t.Fatal(err)
	}
	small, err := signer.BuildPOC(sampleTraces(2))
	if err != nil {
		t.Fatal(err)
	}
	large, err := signer.BuildPOC(sampleTraces(20))
	if err != nil {
		t.Fatal(err)
	}
	smallJSON, err := json.Marshal(small)
	if err != nil {
		t.Fatal(err)
	}
	largeJSON, err := json.Marshal(large)
	if err != nil {
		t.Fatal(err)
	}
	if len(largeJSON) < 5*len(smallJSON) {
		t.Fatalf("baseline POC must grow linearly: %dB vs %dB", len(smallJSON), len(largeJSON))
	}
}
