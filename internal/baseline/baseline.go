// Package baseline implements the digital-signature POC strawman that
// DE-Sword's design challenge section (§II.C) describes and rejects — the
// comparison target for experiment E6.
//
// For each RFID-trace t_v^id the participant v (1) signs the trace, σ_t, and
// (2) signs the binding v‖id‖σ_t, σ_v, then submits all signed messages
// (v‖id‖σ_t, σ_v) as its POC. The proxy can later verify returned traces
// against σ_t, and a refusal to answer is contradicted by σ_v.
//
// The strawman's two structural failures, which the experiments quantify:
//
//   - No privacy: the POC enumerates every processed product id in the clear
//     (and its size grows linearly with the trace count), whereas a ZK-EDB
//     POC is a constant-size commitment revealing nothing.
//   - No non-ownership proofs: the scheme cannot prove that a participant
//     did NOT process a product, so the bad-product query flow of §IV.C has
//     no verification path, and omitted entries (deletion) are silently
//     undetectable with no double-edged incentive hook.
package baseline

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"desword/internal/poc"
)

// Errors reported by this package.
var (
	ErrBadSignature = errors.New("baseline: signature verification failed")
	ErrNoEntry      = errors.New("baseline: POC has no entry for product")
)

// Signer holds a participant's ECDSA key pair.
type Signer struct {
	id  poc.ParticipantID
	key *ecdsa.PrivateKey
}

// NewSigner generates a P-256 key pair for a participant.
func NewSigner(id poc.ParticipantID) (*Signer, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("baseline: generating key: %w", err)
	}
	return &Signer{id: id, key: key}, nil
}

// ID returns the signer's participant identity.
func (s *Signer) ID() poc.ParticipantID { return s.id }

// PublicKey returns the verification key.
func (s *Signer) PublicKey() *ecdsa.PublicKey { return &s.key.PublicKey }

// Entry is one signed message (v‖id‖σ_t, σ_v) of the strawman POC. Note the
// product id travels in the clear.
type Entry struct {
	Participant poc.ParticipantID `json:"participant"`
	Product     poc.ProductID     `json:"product"`
	SigTrace    []byte            `json:"sig_trace"`
	SigBinding  []byte            `json:"sig_binding"`
}

// POC is the strawman credential: one entry per trace, size Θ(n).
type POC struct {
	Participant poc.ParticipantID `json:"participant"`
	Entries     []Entry           `json:"entries"`
}

func traceDigest(tr poc.Trace) []byte {
	h := sha256.New()
	h.Write([]byte("baseline/trace/"))
	h.Write([]byte(tr.Product))
	h.Write([]byte{0})
	h.Write(tr.Data)
	return h.Sum(nil)
}

func bindingDigest(v poc.ParticipantID, id poc.ProductID, sigTrace []byte) []byte {
	h := sha256.New()
	h.Write([]byte("baseline/binding/"))
	h.Write([]byte(v))
	h.Write([]byte{0})
	h.Write([]byte(id))
	h.Write([]byte{0})
	h.Write(sigTrace)
	return h.Sum(nil)
}

// BuildPOC signs every trace into the strawman POC.
func (s *Signer) BuildPOC(traces []poc.Trace) (POC, error) {
	credential := POC{Participant: s.id, Entries: make([]Entry, 0, len(traces))}
	for _, tr := range traces {
		sigTrace, err := ecdsa.SignASN1(rand.Reader, s.key, traceDigest(tr))
		if err != nil {
			return POC{}, fmt.Errorf("baseline: signing trace %s: %w", tr.Product, err)
		}
		sigBinding, err := ecdsa.SignASN1(rand.Reader, s.key, bindingDigest(s.id, tr.Product, sigTrace))
		if err != nil {
			return POC{}, fmt.Errorf("baseline: signing binding %s: %w", tr.Product, err)
		}
		credential.Entries = append(credential.Entries, Entry{
			Participant: s.id,
			Product:     tr.Product,
			SigTrace:    sigTrace,
			SigBinding:  sigBinding,
		})
	}
	return credential, nil
}

// Entry looks up the POC entry for a product — trivially possible because
// the strawman leaks every processed product id.
func (p *POC) Entry(id poc.ProductID) (Entry, error) {
	for _, e := range p.Entries {
		if e.Product == id {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("%w: %s", ErrNoEntry, id)
}

// Products lists every product id the POC reveals.
func (p *POC) Products() []poc.ProductID {
	out := make([]poc.ProductID, 0, len(p.Entries))
	for _, e := range p.Entries {
		out = append(out, e.Product)
	}
	return out
}

// VerifyBinding checks σ_v: the participant's commitment that it processed
// the product. The proxy uses it to contradict a refusal to answer.
func VerifyBinding(pub *ecdsa.PublicKey, e Entry) error {
	if !ecdsa.VerifyASN1(pub, bindingDigest(e.Participant, e.Product, e.SigTrace), e.SigBinding) {
		return fmt.Errorf("%w: binding for %s", ErrBadSignature, e.Product)
	}
	return nil
}

// VerifyTrace checks a returned trace against σ_t.
func VerifyTrace(pub *ecdsa.PublicKey, e Entry, tr poc.Trace) error {
	if tr.Product != e.Product {
		return fmt.Errorf("%w: trace is for %s, entry for %s", ErrBadSignature, tr.Product, e.Product)
	}
	if !ecdsa.VerifyASN1(pub, traceDigest(tr), e.SigTrace) {
		return fmt.Errorf("%w: trace for %s", ErrBadSignature, tr.Product)
	}
	return nil
}

// Query runs the strawman's query interaction for one product against one
// participant's POC: fetch the entry, obtain the trace from the participant
// (here: a callback), and verify it. A nil trace models refusal, which the
// binding signature contradicts.
func Query(pub *ecdsa.PublicKey, credential *POC, id poc.ProductID, fetch func(poc.ProductID) *poc.Trace) (*poc.Trace, error) {
	entry, err := credential.Entry(id)
	if err != nil {
		return nil, err
	}
	if err := VerifyBinding(pub, entry); err != nil {
		return nil, err
	}
	tr := fetch(id)
	if tr == nil {
		return nil, fmt.Errorf("baseline: %s refuses to answer for %s, contradicted by its binding signature",
			credential.Participant, id)
	}
	if err := VerifyTrace(pub, entry, *tr); err != nil {
		return nil, err
	}
	return tr, nil
}
