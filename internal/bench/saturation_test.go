package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"desword/internal/zkedb"
)

// TestSaturationSmoke runs a miniature E14 end to end: a real TCP
// deployment, open-loop load at two levels, sharded and unsharded proxies,
// and a forced-overload pass. It then re-reads the JSON report the run
// recorded and asserts the two signals the experiment exists for: the shed
// counters fired, and the per-shard metrics show the partition actually
// spreading work.
func TestSaturationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation smoke drives a TCP deployment")
	}
	out := filepath.Join(t.TempDir(), "BENCH_saturation.json")
	table, err := RunSaturation(zkedb.TestParams(), []int{1, 2}, []int{50, 200}, 3, 16,
		300*time.Millisecond, out)
	if err != nil {
		t.Fatalf("RunSaturation: %v", err)
	}
	if len(table.Rows) != 5 { // 2 shard counts × 2 levels + 1 forced
		t.Fatalf("table has %d rows, want 5", len(table.Rows))
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var report SaturationReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("parsing report: %v", err)
	}
	if len(report.Runs) != 3 {
		t.Fatalf("report has %d runs, want 3", len(report.Runs))
	}

	// Every non-forced level must have completed real queries.
	for _, run := range report.Runs[:2] {
		for _, p := range run.Points {
			if p.Done == 0 {
				t.Fatalf("shards=%d qps=%d completed no queries", run.Shards, p.OfferedQPS)
			}
			if p.P50MS <= 0 || p.P99MS < p.P50MS {
				t.Fatalf("shards=%d qps=%d quantiles p50=%v p99=%v", run.Shards, p.OfferedQPS, p.P50MS, p.P99MS)
			}
		}
	}

	// The 2-shard run's per-shard metrics must show the partition at work:
	// two shard entries whose led walks sum to every completed query (minus
	// coalesced joins, which ride a leader's walk).
	sharded := report.Runs[1]
	if sharded.Shards != 2 || len(sharded.ShardStats) != 2 {
		t.Fatalf("sharded run stats = %+v", sharded.ShardStats)
	}
	var walks, coalesced, done uint64
	for _, s := range sharded.ShardStats {
		walks += s.Queries
		coalesced += s.Coalesced
	}
	for _, p := range sharded.Points {
		done += uint64(p.Done)
	}
	if walks == 0 {
		t.Fatal("sharded run led no walks")
	}
	if walks+coalesced != done {
		t.Fatalf("walks(%d) + coalesced(%d) != done(%d)", walks, coalesced, done)
	}
	for _, s := range sharded.ShardStats {
		if s.Queries == 0 {
			t.Fatalf("shard %d never led a walk: %+v", s.Shard, sharded.ShardStats)
		}
	}

	// The forced-overload pass (one admission worker, no waiting room, max
	// offered load) must have shed.
	forced := report.Runs[2]
	if !forced.Forced {
		t.Fatal("final run is not the forced-overload pass")
	}
	var shed int
	for _, p := range forced.Points {
		shed += p.Shed
	}
	if shed == 0 {
		t.Fatalf("forced overload shed nothing: %+v", forced.Points)
	}
}
