package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"desword/internal/core"
	"desword/internal/node"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/zkedb"
)

// This file implements experiment E14: proxy-tier saturation. An open-loop
// generator offers a fixed query rate against a real TCP deployment and
// records p50/p99 latency, achieved throughput, and load sheds — sharded vs
// unsharded — then repeats one deliberately overloaded level against a
// minimal admission gate, so the shedding path itself lands in the record.

// SaturationReport is the machine-readable E14 record (BENCH_saturation.json).
type SaturationReport struct {
	Title      string          `json:"title"`
	Chain      int             `json:"chain"`
	Products   int             `json:"products"`
	DurationMS int64           `json:"duration_ms"`
	Runs       []SaturationRun `json:"runs"`
}

// SaturationRun is one proxy deployment (shard count + admission gate) swept
// across the offered-load levels.
type SaturationRun struct {
	Shards           int               `json:"shards"`
	AdmissionWorkers int               `json:"admission_workers"`
	AdmissionQueue   int               `json:"admission_queue"`
	Forced           bool              `json:"forced_overload,omitempty"`
	Points           []SaturationPoint `json:"points"`
	ShardStats       []core.ShardStats `json:"shard_stats"`
}

// SaturationPoint is one offered-load level: latency quantiles over the
// completed queries plus the shed/error triage.
type SaturationPoint struct {
	OfferedQPS  int     `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	Sent        int     `json:"sent"`
	Done        int     `json:"done"`
	Shed        int     `json:"shed"`
	Errors      int     `json:"errors"`
}

// saturationFixture keeps one set of participant servers alive across the
// proxy deployments (the proxy tier is what varies, not the supply chain).
type saturationFixture struct {
	ps       *poc.PublicParams
	dist     *core.DistributionResult
	dir      map[poc.ParticipantID]string
	products []poc.ProductID
	cleanup  []func() error
}

func (fx *saturationFixture) Close() error {
	var first error
	for i := len(fx.cleanup) - 1; i >= 0; i-- {
		if err := fx.cleanup[i](); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func newSaturationFixture(params zkedb.Params, chain, products int) (*saturationFixture, error) {
	ps, err := poc.PSGen(params)
	if err != nil {
		return nil, err
	}
	g, parts := supplychain.LineGraph(chain)
	members := make(map[poc.ParticipantID]*core.Member, chain)
	for id, p := range parts {
		members[id] = core.NewMember(ps, p)
	}
	tags, err := supplychain.MintTags("sat", products)
	if err != nil {
		return nil, err
	}
	dist, err := core.RunDistribution(ps, g, members, "p0", tags, nil, supplychain.FirstChildSplitter, "task-sat")
	if err != nil {
		return nil, err
	}
	fx := &saturationFixture{ps: ps, dist: dist, dir: make(map[poc.ParticipantID]string, chain)}
	for id := range dist.Ground.Paths {
		fx.products = append(fx.products, id)
	}
	sort.Slice(fx.products, func(i, j int) bool { return fx.products[i] < fx.products[j] })
	for id, m := range members {
		srv, serr := node.ServeParticipant(context.Background(), "127.0.0.1:0", m)
		if serr != nil {
			_ = fx.Close()
			return nil, serr
		}
		fx.cleanup = append(fx.cleanup, srv.Close)
		fx.dir[id] = srv.Addr()
	}
	return fx, nil
}

// runSaturationLevel offers qps for duration against the client, open-loop:
// the generator never slows down for a lagging proxy, which is exactly what
// saturates it.
func runSaturationLevel(client *node.ProxyClient, products []poc.ProductID, qps int, duration time.Duration) SaturationPoint {
	point := SaturationPoint{OfferedQPS: qps}
	interval := time.Second / time.Duration(qps)
	var mu sync.Mutex
	var latencies []time.Duration
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; time.Since(start) < duration; i++ {
		point.Sent++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := products[i%len(products)]
			qStart := time.Now()
			_, err := client.QueryPath(context.Background(), id, core.Good)
			elapsed := time.Since(qStart)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				point.Done++
				latencies = append(latencies, elapsed)
			case strings.Contains(err.Error(), "load shed"):
				point.Shed++
			default:
				point.Errors++
			}
		}(i)
		time.Sleep(time.Until(start.Add(time.Duration(i+1) * interval)))
	}
	wg.Wait()
	wall := time.Since(start)
	point.AchievedQPS = float64(point.Done) / wall.Seconds()
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		point.P50MS = float64(latencies[len(latencies)/2].Microseconds()) / 1000
		point.P99MS = float64(latencies[len(latencies)*99/100].Microseconds()) / 1000
	}
	return point
}

// runSaturationRun deploys one proxy flavour over the shared fixture and
// sweeps it across the offered-load levels.
func runSaturationRun(fx *saturationFixture, cfg core.ProxyConfig, qpsLevels []int, duration time.Duration, forced bool) (run SaturationRun, err error) {
	run = SaturationRun{
		Shards:           cfg.Shards,
		AdmissionWorkers: cfg.AdmissionWorkers,
		AdmissionQueue:   cfg.AdmissionQueue,
		Forced:           forced,
	}
	directory := node.DirectoryResolver(fx.dir)
	defer func() {
		if cerr := directory.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	proxy := core.NewProxyWithConfig(fx.ps, reputation.DefaultStrategy(), directory.Resolver(), cfg)
	proxySrv, err := node.ServeProxy(context.Background(), "127.0.0.1:0", proxy)
	if err != nil {
		return run, err
	}
	defer func() {
		if cerr := proxySrv.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	client := node.NewProxyClient(proxySrv.Addr(), node.WithPoolSize(64), node.WithRetries(0))
	defer client.Close()
	// rerr, not err: the named result feeds the deferred Close handlers
	// (desword/shadow).
	if rerr := client.RegisterList(context.Background(), "task-sat", fx.dist.List); rerr != nil {
		return run, rerr
	}
	for _, qps := range qpsLevels {
		run.Points = append(run.Points, runSaturationLevel(client, fx.products, qps, duration))
	}
	run.ShardStats = proxy.ShardStats()
	return run, nil
}

// RunSaturation runs E14: every shard count over every offered-load level
// behind a generous admission gate, then one forced-overload pass (one
// admission worker, no waiting room) that guarantees the shedding path is
// exercised and recorded. When outPath is non-empty the machine-readable
// report lands there as JSON.
func RunSaturation(params zkedb.Params, shardCounts, qpsLevels []int, chain, products int, duration time.Duration, outPath string) (*Table, error) {
	t := &Table{
		Title: "E14: proxy saturation — latency vs offered load, sharded vs unsharded",
		Note: fmt.Sprintf("chain=%d products=%d, open-loop %s per level over TCP (localhost); final row forces overload through a 1-worker gate",
			chain, products, duration),
		Headers: []string{"shards", "offered qps", "achieved qps", "p50", "p99", "shed", "errors"},
	}
	fx, err := newSaturationFixture(params, chain, products)
	if err != nil {
		return nil, fmt.Errorf("bench: saturation fixture: %w", err)
	}
	defer fx.Close()

	report := &SaturationReport{
		Title:      t.Title,
		Chain:      chain,
		Products:   products,
		DurationMS: duration.Milliseconds(),
	}
	addRows := func(run SaturationRun) {
		label := fmt.Sprint(run.Shards)
		if run.Forced {
			label += " (forced)"
		}
		for _, p := range run.Points {
			t.AddRow(label, fmt.Sprint(p.OfferedQPS), fmt.Sprintf("%.0f", p.AchievedQPS),
				fmt.Sprintf("%.2f ms", p.P50MS), fmt.Sprintf("%.2f ms", p.P99MS),
				fmt.Sprint(p.Shed), fmt.Sprint(p.Errors))
		}
	}
	for _, shards := range shardCounts {
		cfg := core.ProxyConfig{Shards: shards, AdmissionWorkers: 32, AdmissionQueue: 64}
		run, err := runSaturationRun(fx, cfg, qpsLevels, duration, false)
		if err != nil {
			return nil, fmt.Errorf("bench: saturation shards=%d: %w", shards, err)
		}
		report.Runs = append(report.Runs, run)
		addRows(run)
	}
	// Forced overload: one worker, no waiting room — any overlap sheds.
	maxShards := shardCounts[len(shardCounts)-1]
	maxQPS := qpsLevels[len(qpsLevels)-1]
	forcedCfg := core.ProxyConfig{Shards: maxShards, AdmissionWorkers: 1, AdmissionQueue: -1}
	forced, err := runSaturationRun(fx, forcedCfg, []int{maxQPS}, duration, true)
	if err != nil {
		return nil, fmt.Errorf("bench: saturation forced overload: %w", err)
	}
	report.Runs = append(report.Runs, forced)
	addRows(forced)

	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("bench: writing saturation report: %w", err)
		}
	}
	return t, nil
}
