package bench

import (
	"context"
	"fmt"
	"time"

	"desword/internal/poc"
	"desword/internal/zkedb"
)

// This file implements experiment E10: the crypto-engine ablation for the
// two PR-5 mechanisms — the parallel commit worker pool and the DPOC proof
// cache. Serial vs parallel isolates what the per-level fan-out buys
// POC-Agg (the q-ary subtree build is embarrassingly parallel across
// slots); cold vs warm isolates what the single-flight LRU buys a
// participant answering repeated demands for a hot product.

// RunCryptoCommit times POC-Agg at increasing worker counts against the
// serial build and reports the speedup per count.
func RunCryptoCommit(params zkedb.Params, dbSize int, workers []int, reps int) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("E10a: parallel commit worker pool (q=%d h=%d)", params.Q, params.H),
		Note: fmt.Sprintf("%d committed traces, mean over %d runs; identical commitments at every width (seeded builds are byte-identical)",
			dbSize, reps),
		Headers: []string{"workers", "POC-Agg", "speedup"},
	}
	ps, err := poc.PSGen(params)
	if err != nil {
		return nil, err
	}
	traces := cryptoTraces(dbSize)
	var serial time.Duration
	for _, w := range workers {
		opts := poc.AggOptions{Commit: zkedb.CommitOptions{Workers: w}}
		elapsed := Measure(reps, func() {
			if _, _, err := poc.Agg(ps, "vE", traces, opts); err != nil {
				panic(err)
			}
		})
		if serial == 0 {
			serial = elapsed
		}
		t.AddRow(fmt.Sprint(w), Ms(elapsed),
			fmt.Sprintf("%.2fx", float64(serial)/float64(elapsed)))
	}
	return t, nil
}

// RunCryptoProofCache times ownership proofs cold (cache disabled, every
// call recomputes the mercurial openings) and warm (cache enabled, repeats
// served from the single-flight LRU).
func RunCryptoProofCache(params zkedb.Params, dbSize, reps int) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("E10b: DPOC proof cache, cold vs warm (q=%d h=%d)", params.Q, params.H),
		Note: fmt.Sprintf("%d committed traces, mean over %d runs; warm repeats skip proof construction entirely",
			dbSize, reps),
		Headers: []string{"proof", "cold (no cache)", "warm (cached)", "speedup"},
	}
	ps, err := poc.PSGen(params)
	if err != nil {
		return nil, err
	}
	traces := cryptoTraces(dbSize)
	_, cold, err := poc.Agg(ps, "vE", traces, poc.AggOptions{ProofCacheSize: -1})
	if err != nil {
		return nil, err
	}
	_, warm, err := poc.Agg(ps, "vE", traces, poc.AggOptions{})
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		kind string
		id   poc.ProductID
	}{
		{"ownership", traces[0].Product},
		{"non-ownership", "crypto-absent"},
	} {
		// Prime the warm DPOC so the measured loop is all hits.
		if _, err := warm.Prove(context.Background(), row.id); err != nil {
			return nil, err
		}
		coldTime := Measure(reps, func() {
			if _, err := cold.Prove(context.Background(), row.id); err != nil {
				panic(err)
			}
		})
		warmTime := Measure(reps, func() {
			if _, err := warm.Prove(context.Background(), row.id); err != nil {
				panic(err)
			}
		})
		speedup := "-"
		if warmTime > 0 {
			speedup = fmt.Sprintf("%.0fx", float64(coldTime)/float64(warmTime))
		}
		// Warm hits are sub-millisecond, so Ms would render them as 0.00ms.
		warmStr := fmt.Sprintf("%.1fµs", float64(warmTime.Nanoseconds())/1000)
		t.AddRow(row.kind, Ms(coldTime), warmStr, speedup)
	}
	return t, nil
}

// cryptoTraces builds the E10 trace database.
func cryptoTraces(n int) []poc.Trace {
	traces := make([]poc.Trace, 0, n)
	for i := 0; i < n; i++ {
		traces = append(traces, poc.Trace{
			Product: poc.ProductID(fmt.Sprintf("crypto-id-%03d", i)),
			Data:    []byte(fmt.Sprintf("participant=vE;product=crypto-id-%03d;op=process", i)),
		})
	}
	return traces
}
