package bench

import (
	"fmt"
	"math/big"

	"desword/internal/mercurial"
	"desword/internal/qmercurial"
)

// This file regenerates the micro-benchmarks of §VI.A: the TMC scheme's
// seven algorithms (E1) and the qTMC scheme's hard/soft algorithm costs as a
// function of q (E2 = Fig. 4a, E3 = Fig. 4b).

// RunTMCMicro measures the seven TMC algorithms (experiment E1). The paper
// reports all seven lightweight, with HCom the most expensive at ~34 ms on
// its Java/pairing stack.
func RunTMCMicro(reps int) *Table {
	pk := mercurial.KGen()
	m := pk.Group().HashToScalar([]byte("bench-message"))
	com, dec := pk.HCom(m)
	hop := pk.HOpen(dec)
	tease := pk.SOpenHard(dec)
	_, sdec := pk.SCom()

	t := &Table{
		Title:   "E1: TMC micro-benchmark (§VI.A; seven algorithms)",
		Note:    fmt.Sprintf("mean over %d runs; paper: all lightweight, HCom ≈ 34 ms on jPBC", reps),
		Headers: []string{"algorithm", "mean time"},
	}
	t.AddRow("KGen", Ms(Measure(reps, func() { mercurial.KGen() })))
	t.AddRow("HCom", Ms(Measure(reps, func() { pk.HCom(m) })))
	t.AddRow("SCom", Ms(Measure(reps, func() { pk.SCom() })))
	t.AddRow("HOpen", Ms(Measure(reps, func() { pk.HOpen(dec) })))
	t.AddRow("SOpen", Ms(Measure(reps, func() {
		if _, err := pk.SOpenSoft(sdec, m); err != nil {
			panic(err)
		}
	})))
	t.AddRow("VerHOpen", Ms(Measure(reps, func() {
		if !pk.VerHOpen(com, hop) {
			panic("verification failed")
		}
	})))
	t.AddRow("VerSOpen", Ms(Measure(reps, func() {
		if !pk.VerSOpen(com, tease) {
			panic("verification failed")
		}
	})))
	return t
}

// qtmcVector builds a q-length message vector for benching.
func qtmcVector(pk *qmercurial.PublicKey) []*big.Int {
	ms := make([]*big.Int, pk.Q())
	max := pk.VC.MaxMessage()
	for i := range ms {
		v := big.NewInt(int64(i)*7919 + 13)
		ms[i] = v.Mod(v, max)
	}
	return ms
}

// RunFig4a measures the qTMC algorithms that touch hard commitments — key
// generation, hard commit, hard opening, and soft opening of a hard
// commitment — across the paper's q sweep. The paper's finding: all grow
// linearly with q (Fig. 4a), reaching ~1.3 s at q=128 on its stack.
func RunFig4a(qs []int, messageBits, modulusBits, reps int) (*Table, error) {
	t := &Table{
		Title:   "E2 (Fig. 4a): qTMC hard-commitment algorithms vs q",
		Note:    fmt.Sprintf("mean over %d runs, %d-bit RSA modulus; paper shape: linear in q", reps, modulusBits),
		Headers: []string{"q", "qKGen", "qHCom", "qHOpen", "qSOpen(hard)"},
	}
	for _, q := range qs {
		pk, err := qmercurial.KGen(q, messageBits, modulusBits)
		if err != nil {
			return nil, err
		}
		ms := qtmcVector(pk)
		_, dec, err := pk.HCom(ms)
		if err != nil {
			return nil, err
		}
		kgen := Measure(1, func() {
			if _, err := qmercurial.KGen(q, messageBits, modulusBits); err != nil {
				panic(err)
			}
		})
		hcom := Measure(reps, func() {
			if _, _, err := pk.HCom(ms); err != nil {
				panic(err)
			}
		})
		hopen := Measure(reps, func() {
			if _, err := pk.HOpen(dec, q/2); err != nil {
				panic(err)
			}
		})
		sopen := Measure(reps, func() {
			if _, err := pk.SOpenHard(dec, q/2); err != nil {
				panic(err)
			}
		})
		t.AddRow(fmt.Sprint(q), Ms(kgen), Ms(hcom), Ms(hopen), Ms(sopen))
	}
	return t, nil
}

// RunFig4b measures the qTMC algorithms that touch only soft commitments —
// soft commit, soft opening of a soft commitment, and both verifications —
// across the q sweep. The paper's finding: all constant in q (Fig. 4b).
func RunFig4b(qs []int, messageBits, modulusBits, reps int) (*Table, error) {
	t := &Table{
		Title:   "E3 (Fig. 4b): qTMC soft-commitment algorithms vs q",
		Note:    fmt.Sprintf("mean over %d runs, %d-bit RSA modulus; paper shape: constant in q", reps, modulusBits),
		Headers: []string{"q", "qSCom", "qSOpen(soft)", "qVerHOpen", "qVerSOpen"},
	}
	for _, q := range qs {
		pk, err := qmercurial.KGen(q, messageBits, modulusBits)
		if err != nil {
			return nil, err
		}
		ms := qtmcVector(pk)
		hcomC, hdec, err := pk.HCom(ms)
		if err != nil {
			return nil, err
		}
		hop, err := pk.HOpen(hdec, 1)
		if err != nil {
			return nil, err
		}
		scomC, sdec := pk.SCom()
		sop, err := pk.SOpenSoft(sdec, 1, big.NewInt(42))
		if err != nil {
			return nil, err
		}
		scom := Measure(reps, func() { pk.SCom() })
		sopen := Measure(reps, func() {
			if _, err := pk.SOpenSoft(sdec, 1, big.NewInt(42)); err != nil {
				panic(err)
			}
		})
		verH := Measure(reps, func() {
			if !pk.VerHOpen(hcomC, hop) {
				panic("verification failed")
			}
		})
		verS := Measure(reps, func() {
			if !pk.VerSOpen(scomC, sop) {
				panic("verification failed")
			}
		})
		t.AddRow(fmt.Sprint(q), Ms(scom), Ms(sopen), Ms(verH), Ms(verS))
	}
	return t, nil
}
