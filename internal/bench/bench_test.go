package bench

import (
	"strconv"
	"strings"
	"testing"

	"desword/internal/sim"
	"desword/internal/zkedb"
)

// The shape tests below re-run the experiments at reduced cost (small RSA
// modulus, few reps) and assert the qualitative findings the paper reports —
// the directions and orderings EXPERIMENTS.md records.

const shapeModulus = 512

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Note: "n", Headers: []string{"a", "bee"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "a", "bee", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureAndFormat(t *testing.T) {
	d := Measure(3, func() {})
	if d < 0 {
		t.Fatal("duration must be non-negative")
	}
	if Measure(0, func() {}) < 0 {
		t.Fatal("reps < 1 must be clamped")
	}
	if !strings.HasSuffix(Ms(d), "ms") {
		t.Fatal("Ms must format milliseconds")
	}
	if KB(2048) != "2.00KB" {
		t.Fatalf("KB(2048) = %s", KB(2048))
	}
}

func TestPaperSweepsMatchPaper(t *testing.T) {
	rows := PaperQH()
	if len(rows) != 5 || rows[0] != (QH{8, 43}) || rows[4] != (QH{128, 19}) {
		t.Fatalf("PaperQH() = %v", rows)
	}
	for _, qh := range rows {
		// q^h must cover the 128-bit id space.
		bits := 0
		for q := qh.Q; q > 1; q >>= 1 {
			bits++
		}
		if bits*qh.H < 128 {
			t.Fatalf("(%d,%d) does not cover 2^128", qh.Q, qh.H)
		}
	}
	if len(PaperQs()) != 5 {
		t.Fatalf("PaperQs() = %v", PaperQs())
	}
}

func TestRunTMCMicro(t *testing.T) {
	tb := RunTMCMicro(3)
	if len(tb.Rows) != 7 {
		t.Fatalf("TMC micro must report all seven algorithms, got %d", len(tb.Rows))
	}
}

func parseMs(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "ms"), 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", cell, err)
	}
	return v
}

func parseKB(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "KB"), 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", cell, err)
	}
	return v
}

func TestFig4aHardOpsGrowWithQ(t *testing.T) {
	if testing.Short() {
		t.Skip("timing shape test skipped in short mode")
	}
	tb, err := RunFig4a([]int{8, 128}, 128, shapeModulus, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// qHCom and qHOpen at q=128 must clearly exceed q=8 (theory: 16×; we
	// assert a generous 2× to stay robust on loaded machines).
	for col, name := range map[int]string{2: "qHCom", 3: "qHOpen"} {
		small := parseMs(t, tb.Rows[0][col])
		large := parseMs(t, tb.Rows[1][col])
		if large < 2*small {
			t.Errorf("%s must grow with q: q=8 %vms vs q=128 %vms", name, small, large)
		}
	}
}

func TestFig4bSoftOpsFlatInQ(t *testing.T) {
	if testing.Short() {
		t.Skip("timing shape test skipped in short mode")
	}
	tb, err := RunFig4b([]int{8, 128}, 128, shapeModulus, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Soft commitment and soft opening must not scale with q: allow 5×
	// noise but reject the 16× a linear dependence would show.
	for col, name := range map[int]string{1: "qSCom", 2: "qSOpen(soft)"} {
		small := parseMs(t, tb.Rows[0][col])
		large := parseMs(t, tb.Rows[1][col])
		if small == 0 {
			continue // below timer resolution — certainly not growing
		}
		if large > 8*small {
			t.Errorf("%s must stay flat in q: q=8 %vms vs q=128 %vms", name, small, large)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows := []QH{{8, 43}, {32, 26}, {128, 19}}
	tb, err := RunTable2(rows, shapeModulus, 2)
	if err != nil {
		t.Fatal(err)
	}
	prevOwn := -1.0
	for i, row := range tb.Rows {
		own := parseKB(t, row[2])
		nOwn := parseKB(t, row[3])
		// Paper shape 1: ownership proofs exceed non-ownership proofs.
		if own <= nOwn {
			t.Errorf("row %v: own (%v) must exceed n-own (%v)", row[:2], own, nOwn)
		}
		// Paper shape 2: proof size falls as h falls (larger q).
		if i > 0 && own >= prevOwn {
			t.Errorf("own proof size must fall with h: %v then %v", prevOwn, own)
		}
		prevOwn = own
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing shape test skipped in short mode")
	}
	rows := []QH{{8, 43}, {128, 19}}
	tb, err := RunFig5(rows, shapeModulus, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: generation is far more expensive than verification. In
	// this RSA instantiation the gap is driven by q (witness exponents grow
	// with q, verification does not), so it is asserted at q=128; at q=8 the
	// elliptic-curve verification cost masks it (recorded in EXPERIMENTS.md).
	last := tb.Rows[len(tb.Rows)-1]
	gen128 := parseMs(t, last[2])
	verify128 := parseMs(t, last[3])
	if gen128 <= 2*verify128 {
		t.Errorf("(q=128,h=19): gen (%v) must clearly exceed verify (%v)", gen128, verify128)
	}
	// And generation per proof must grow with q even though h shrinks.
	gen8 := parseMs(t, tb.Rows[0][2])
	if gen128 <= gen8 {
		t.Errorf("gen at q=128 (%v) must exceed gen at q=8 (%v)", gen128, gen8)
	}
}

func TestBaselineComparisonTable(t *testing.T) {
	tb, err := RunBaselineComparison(zkedb.TestParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Strawman must be reported as unable to prove non-ownership.
	found := false
	for _, row := range tb.Rows {
		if row[0] == "non-ownership proof" && row[1] == "impossible" {
			found = true
		}
	}
	if !found {
		t.Fatal("comparison must state the strawman cannot prove non-ownership")
	}
}

func TestIncentiveTable(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Trials = 200
	tb, err := RunIncentive(cfg, []float64{0.01, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if _, err := RunIncentive(cfg, []float64{3}); err == nil {
		t.Fatal("invalid sweep point must be rejected")
	}
}

func TestE2ESmallChains(t *testing.T) {
	tb, err := RunE2E(zkedb.TestParams(), []int{2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if parseMs(t, row[1]) < 0 || parseMs(t, row[2]) < 0 {
			t.Fatal("latencies must be non-negative")
		}
	}
}

func TestAblationDBSizeShape(t *testing.T) {
	tb, err := RunAblationDBSize(zkedb.TestParams(), []int{1, 16}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Proof size must be independent of the database size.
	if tb.Rows[0][4] != tb.Rows[1][4] {
		t.Fatalf("proof size must not depend on db size: %v vs %v", tb.Rows[0][4], tb.Rows[1][4])
	}
	// Commit cost must grow with the database size.
	small := parseMs(t, tb.Rows[0][1])
	large := parseMs(t, tb.Rows[1][1])
	if large <= small {
		t.Fatalf("commit cost must grow with traces: %v vs %v", small, large)
	}
}

func TestAblationModulusShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing shape test skipped in short mode")
	}
	tb, err := RunAblationModulus(8, 43, []int{512, 1024}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Proof size must grow with the modulus.
	if parseKB(t, tb.Rows[1][4]) <= parseKB(t, tb.Rows[0][4]) {
		t.Fatalf("proof size must grow with modulus: %v vs %v", tb.Rows[0][4], tb.Rows[1][4])
	}
}

func TestAblationSoftCacheConsistency(t *testing.T) {
	tb, err := RunAblationSoftCache(zkedb.TestParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[1][2] != "yes" {
		t.Fatalf("repeated non-ownership proofs must reuse the pinned chain: %v", tb.Rows[1][2])
	}
}

func TestAblationTreeSchemeShape(t *testing.T) {
	rows := []QH{{Q: 8, H: 43}, {Q: 128, H: 19}}
	tb, err := RunAblationTreeScheme(rows, shapeModulus, 1)
	if err != nil {
		t.Fatal(err)
	}
	// CHLMR proofs must GROW with q (Θ(q·h), q·h = 344 → 2432) while qTMC
	// proofs shrink (Θ(h)) — the inversion that motivates reference [11].
	chlmrSmall := parseKB(t, tb.Rows[0][2])
	chlmrLarge := parseKB(t, tb.Rows[1][2])
	if chlmrLarge <= chlmrSmall {
		t.Fatalf("CHLMR proofs must grow with q: %v vs %v", chlmrSmall, chlmrLarge)
	}
	qSmall := parseKB(t, tb.Rows[0][3])
	qLarge := parseKB(t, tb.Rows[1][3])
	if qLarge >= qSmall {
		t.Fatalf("qTMC proofs must shrink with h: %v vs %v", qSmall, qLarge)
	}
}
