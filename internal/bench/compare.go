package bench

import (
	"context"
	"encoding/json"
	"fmt"

	"desword/internal/baseline"
	"desword/internal/poc"
	"desword/internal/sim"
	"desword/internal/zkedb"
)

// This file implements the extension experiments: the signature-strawman
// comparison (E6) and the double-edged incentive sweep (E7).

// RunBaselineComparison contrasts the §II.C signature strawman with the
// ZK-EDB POC on credential size, proof size, and capability (experiment E6).
// The strawman is cheaper on every performance axis — which is exactly the
// paper's point: it buys that speed by leaking every processed product id
// and by being unable to prove non-ownership at all, so the bad-product
// query flow and the double-edged incentive cannot be built on it.
func RunBaselineComparison(params zkedb.Params, nTraces int) (*Table, error) {
	traces := make([]poc.Trace, 0, nTraces)
	for i := 0; i < nTraces; i++ {
		traces = append(traces, poc.Trace{
			Product: poc.ProductID(fmt.Sprintf("cmp-id-%03d", i)),
			Data:    []byte(fmt.Sprintf("record-%03d", i)),
		})
	}

	// Strawman.
	signer, err := baseline.NewSigner("vC")
	if err != nil {
		return nil, err
	}
	var strawPOC baseline.POC
	strawBuild := Measure(1, func() {
		var berr error
		strawPOC, berr = signer.BuildPOC(traces)
		if berr != nil {
			panic(berr)
		}
	})
	strawJSON, err := json.Marshal(strawPOC)
	if err != nil {
		return nil, err
	}

	// ZK-EDB POC.
	ps, err := poc.PSGen(params)
	if err != nil {
		return nil, err
	}
	var cred poc.POC
	var dpoc *poc.DPOC
	zkBuild := Measure(1, func() {
		var aerr error
		cred, dpoc, aerr = poc.Agg(ps, "vC", traces, poc.AggOptions{})
		if aerr != nil {
			panic(aerr)
		}
	})
	credJSON, err := json.Marshal(cred)
	if err != nil {
		return nil, err
	}
	own, err := dpoc.Prove(context.Background(), traces[0].Product)
	if err != nil {
		return nil, err
	}
	ownSize, err := own.ZK.Size()
	if err != nil {
		return nil, err
	}
	nOwn, err := dpoc.Prove(context.Background(), "cmp-absent")
	if err != nil {
		return nil, err
	}
	nOwnSize, err := nOwn.ZK.Size()
	if err != nil {
		return nil, err
	}
	entry, err := strawPOC.Entry(traces[0].Product)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   fmt.Sprintf("E6: signature strawman (§II.C) vs ZK-EDB POC, %d traces", nTraces),
		Note:    "the strawman is faster and smaller — at the cost of leaking all ids and having no non-ownership proofs",
		Headers: []string{"metric", "strawman (ECDSA)", "ZK-EDB POC"},
	}
	t.AddRow("POC build time", Ms(strawBuild), Ms(zkBuild))
	t.AddRow("POC size", KB(len(strawJSON)), KB(len(credJSON)))
	t.AddRow("POC size growth", "Θ(n) — linear in traces", "Θ(1) — constant")
	t.AddRow("ownership proof size", fmt.Sprintf("%dB (σ_t)", len(entry.SigTrace)), KB(ownSize))
	t.AddRow("non-ownership proof", "impossible", KB(nOwnSize))
	t.AddRow("ids leaked by POC", fmt.Sprintf("all %d", nTraces), "none")
	return t, nil
}

// RunIncentive sweeps the bad-product probability through the incentive
// simulator (experiment E7, quantifying Figure 3). The double edge shows as
// (a) honest ≥ deleter in the mean while committed traces pay off, (b)
// adder ≤ honest once bad products are hunted, and (c) wider risk bands for
// every deviation near the break-even surface.
func RunIncentive(cfg sim.Config, pBads []float64) (*Table, error) {
	rows, err := sim.SweepPBad(cfg, pBads)
	if err != nil {
		return nil, err
	}
	return IncentiveTable(cfg, rows), nil
}

// IncentiveTable renders already-computed sweep rows as the E7 table.
// Split from RunIncentive so desword-sim can journal each row as a campaign
// event and still print the same table without re-running the sweep.
func IncentiveTable(cfg sim.Config, rows []sim.SweepRow) *Table {
	t := &Table{
		Title: "E7 (Fig. 3 quantified): double-edged incentive, reputation per epoch",
		Note: fmt.Sprintf("%d products/epoch, %d trials; q_good=%.2f q_bad=%.2f u+=%.1f u-=%.1f; break-even p_bad=%.4f",
			cfg.Products, cfg.Trials, cfg.QueryRateGood, cfg.QueryRateBad,
			cfg.PositiveUnit, cfg.NegativeUnit, cfg.BreakEvenPBad()),
		Headers: []string{"p_bad", "honest mean±std", "deleter mean±std", "adder mean±std", "adder 5-95%"},
	}
	for _, row := range rows {
		h := row.Outcomes[sim.Honest]
		d := row.Outcomes[sim.Deleter]
		a := row.Outcomes[sim.Adder]
		t.AddRow(
			fmt.Sprintf("%.3f", row.PBad),
			fmt.Sprintf("%.1f±%.1f", h.Mean, h.Std),
			fmt.Sprintf("%.1f±%.1f", d.Mean, d.Std),
			fmt.Sprintf("%.1f±%.1f", a.Mean, a.Std),
			fmt.Sprintf("[%.1f, %.1f]", a.P05, a.P95),
		)
	}
	return t
}
