package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"desword/internal/core"
	"desword/internal/events"
	"desword/internal/node"
	"desword/internal/obs"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/zkedb"
)

// This file implements experiment E12: the cost of the query flight
// recorder. Every completed query assembles one wide event (hop timings,
// scope counters, rep deltas) and every node request another; E12 runs the
// same TCP workload with recording off, with the in-memory ring only, and
// with the JSONL journal appending on both the proxy and every participant,
// and reports what that does to end-to-end query latency. The event is
// assembled either way (it rides the wire in the path result), so "off"
// isolates the sink cost: ring insertion, JSON encoding, journal writes.

// eventsMode selects one E12 measurement cell.
type eventsMode int

const (
	eventsOff eventsMode = iota
	eventsRing
	eventsJournal
)

func (m eventsMode) String() string {
	switch m {
	case eventsRing:
		return "ring"
	case eventsJournal:
		return "journal"
	default:
		return "off"
	}
}

// RunEvents deploys a linear chain over TCP and times good-path queries
// under the three recording modes. The outcome lands in the registry too
// (desword_bench_events_*), so -metrics-out snapshots carry it; overheads
// are in basis points because the gauges are integral.
func RunEvents(params zkedb.Params, n, reps int) (*Table, error) {
	t := &Table{
		Title: "E12: query flight recorder overhead (localhost TCP)",
		Note: fmt.Sprintf("chain of %d, mean over %d runs; journal mode appends one JSONL line per query and per node request (fsync=never)",
			n, reps),
		Headers: []string{"recording", "good query", "overhead", "events"},
	}
	ps, err := poc.PSGen(params)
	if err != nil {
		return nil, err
	}

	var baseline time.Duration
	for _, mode := range []eventsMode{eventsOff, eventsRing, eventsJournal} {
		elapsed, emitted, err := runEventsChain(ps, n, reps, mode)
		if err != nil {
			return nil, fmt.Errorf("bench: events %s: %w", mode, err)
		}
		overhead := "—"
		overheadPct := 0.0
		if mode == eventsOff {
			baseline = elapsed
		} else if baseline > 0 {
			overheadPct = (float64(elapsed) - float64(baseline)) / float64(baseline) * 100
			overhead = fmt.Sprintf("%+.2f%%", overheadPct)
		}
		t.AddRow(mode.String(), Ms(elapsed), overhead, fmt.Sprintf("%d", emitted))
		switch mode {
		case eventsOff:
			obs.Default.Gauge("desword_bench_events_off_us",
				"E12 mean good-query latency with no event sink, microseconds.").Set(elapsed.Microseconds())
		case eventsRing:
			obs.Default.Gauge("desword_bench_events_ring_us",
				"E12 mean good-query latency with the ring-only sink, microseconds.").Set(elapsed.Microseconds())
			obs.Default.Gauge("desword_bench_events_ring_overhead_bp",
				"E12 ring-only recording overhead in basis points (100 bp = 1%).").Set(int64(overheadPct * 100))
		case eventsJournal:
			obs.Default.Gauge("desword_bench_events_journal_us",
				"E12 mean good-query latency with ring plus JSONL journal, microseconds.").Set(elapsed.Microseconds())
			obs.Default.Gauge("desword_bench_events_journal_overhead_bp",
				"E12 journaling overhead in basis points (100 bp = 1%).").Set(int64(overheadPct * 100))
		}
	}
	return t, nil
}

// runEventsChain runs the E8-style workload once under one recording mode
// and reports the mean good-query latency plus the events the proxy-side
// sink captured (ring total; zero in off mode).
func runEventsChain(ps *poc.PublicParams, n, reps int, mode eventsMode) (good time.Duration, emitted uint64, err error) {
	g, parts := supplychain.LineGraph(n)
	members := make(map[poc.ParticipantID]*core.Member, n)
	for id, p := range parts {
		members[id] = core.NewMember(ps, p)
	}
	tags, err := supplychain.MintTags("ev", 1)
	if err != nil {
		return 0, 0, err
	}
	dist, err := core.RunDistribution(ps, g, members, "p0", tags, nil, supplychain.FirstChildSplitter, "task-ev")
	if err != nil {
		return 0, 0, err
	}

	// One sink per serving process stand-in: the proxy's and a shared one
	// for the participants, like a fleet where every daemon journals.
	var proxySink, partSink *events.Sink
	if mode != eventsOff {
		var base string
		if mode == eventsJournal {
			if base, err = os.MkdirTemp("", "desword-bench-events-*"); err != nil {
				return 0, 0, err
			}
			defer os.RemoveAll(base)
		}
		build := func(service string) (*events.Sink, error) {
			cfg := events.Config{RingSize: events.DefaultRingSize}
			if base != "" {
				cfg.Dir = filepath.Join(base, service)
			}
			return cfg.Build(service)
		}
		if proxySink, err = build("proxy"); err != nil {
			return 0, 0, err
		}
		defer proxySink.Close()
		if partSink, err = build("participant"); err != nil {
			return 0, 0, err
		}
		defer partSink.Close()
	}

	dir := make(map[poc.ParticipantID]string, n)
	servers := make([]*node.ParticipantServer, 0, n)
	defer func() {
		for _, s := range servers {
			if cerr := s.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}()
	for id, m := range members {
		opts := []node.Option{}
		if partSink != nil {
			opts = append(opts, node.WithEventSink(partSink))
		}
		srv, serr := node.ServeParticipant(context.Background(), "127.0.0.1:0", m, opts...)
		if serr != nil {
			return 0, 0, serr
		}
		servers = append(servers, srv)
		dir[id] = srv.Addr()
	}
	directory := node.DirectoryResolver(dir)
	defer directory.Close()
	proxyOpts := []core.ProxyOption{}
	if proxySink != nil {
		proxyOpts = append(proxyOpts, core.WithEventSink(proxySink))
	}
	proxy := core.NewProxy(ps, reputation.DefaultStrategy(), directory.Resolver(), proxyOpts...)
	srvOpts := []node.Option{}
	if proxySink != nil {
		srvOpts = append(srvOpts, node.WithEventSink(proxySink))
	}
	proxySrv, err := node.ServeProxy(context.Background(), "127.0.0.1:0", proxy, srvOpts...)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if cerr := proxySrv.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	client := node.NewProxyClient(proxySrv.Addr())
	defer client.Close()
	if rerr := client.RegisterList(context.Background(), "task-ev", dist.List); rerr != nil {
		return 0, 0, rerr
	}

	const product = poc.ProductID("ev1")
	// One untimed warmup fills the proof caches and dials the pools, so the
	// measured cells compare steady-state sink cost, not cold-start noise.
	if _, werr := client.QueryPath(context.Background(), product, core.Good); werr != nil {
		return 0, 0, werr
	}
	good = Measure(reps, func() {
		result, qerr := client.QueryPath(context.Background(), product, core.Good)
		if qerr != nil {
			panic(qerr)
		}
		if len(result.Path) != n {
			panic(fmt.Sprintf("query identified %d of %d hops", len(result.Path), n))
		}
	})
	if proxySink != nil {
		emitted = proxySink.Ring().Total() + partSink.Ring().Total()
	}
	return good, emitted, nil
}
