// Package bench is the experiment harness behind cmd/desword-bench: it
// regenerates every table and figure of the paper's evaluation section
// (§VI) plus the repository's extension experiments, printing aligned text
// tables with the same rows/series the paper reports. See DESIGN.md §5 for
// the experiment index.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
	"unicode/utf8"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if cw := utf8.RuneCountInString(cell); i < len(widths) && cw > widths[i] {
				widths[i] = cw
			}
		}
	}
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	if t.Note != "" {
		b.WriteString(t.Note + "\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - utf8.RuneCountInString(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Measure runs f reps times and returns the mean duration. The paper smooths
// every experiment over 50 runs; callers pass the rep count they can afford.
func Measure(reps int, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Since(start) / time.Duration(reps)
}

// Ms formats a duration in milliseconds with two decimals, the unit the
// paper's figures use.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

// KB formats a byte count in binary kilobytes with two decimals, matching
// Table II's unit.
func KB(n int) string {
	return fmt.Sprintf("%.2fKB", float64(n)/1024)
}

// QH is one (breaching factor, tree height) point of the macro sweeps, with
// q^h covering the 128-bit product-id space.
type QH struct {
	Q int
	H int
}

// PaperQH returns the exact (q, h) rows of the paper's Table II and Fig. 5.
func PaperQH() []QH {
	return []QH{{8, 43}, {16, 32}, {32, 26}, {64, 22}, {128, 19}}
}

// PaperQs returns the q sweep of the paper's Fig. 4.
func PaperQs() []int { return []int{8, 16, 32, 64, 128} }
