package bench

import (
	"context"
	"fmt"

	"desword/internal/poc"
	"desword/internal/zkedb"
)

// This file regenerates the macro-benchmarks of §VI.B: the communication
// overhead of ownership / non-ownership proofs (E4 = Table II) and the
// computation overhead of ownership proof generation vs verification
// (E5 = Fig. 5), across the paper's (q, h) sweep with q^h ≥ 2^128.

// macroFixture is one (q,h) deployment: a CRS and a committed trace set.
type macroFixture struct {
	ps      *poc.PublicParams
	cred    poc.POC
	dpoc    *poc.DPOC
	present poc.ProductID
	absent  poc.ProductID
}

// newMacroFixture builds the CRS for one (q,h) row and commits dbSize traces.
func newMacroFixture(qh QH, modulusBits, dbSize int) (*macroFixture, error) {
	params := zkedb.Params{Q: qh.Q, H: qh.H, KeyBits: 128, ModulusBits: modulusBits}
	ps, err := poc.PSGen(params)
	if err != nil {
		return nil, fmt.Errorf("bench: CRS for q=%d h=%d: %w", qh.Q, qh.H, err)
	}
	traces := make([]poc.Trace, 0, dbSize)
	for i := 0; i < dbSize; i++ {
		traces = append(traces, poc.Trace{
			Product: poc.ProductID(fmt.Sprintf("macro-id-%03d", i)),
			Data:    []byte(fmt.Sprintf("participant=vM;product=macro-id-%03d;op=process", i)),
		})
	}
	// The macro experiments measure cold proof-generation cost, so the proof
	// cache must be out of the loop — memoized repeats would read as zero.
	cred, dpoc, err := poc.Agg(ps, "vM", traces, poc.AggOptions{ProofCacheSize: -1})
	if err != nil {
		return nil, fmt.Errorf("bench: aggregating q=%d h=%d: %w", qh.Q, qh.H, err)
	}
	return &macroFixture{
		ps:      ps,
		cred:    cred,
		dpoc:    dpoc,
		present: traces[0].Product,
		absent:  "macro-absent-product",
	}, nil
}

// RunTable2 measures the compact encoded size of ownership and
// non-ownership proofs at each (q,h) (experiment E4). The paper's shape:
// size ∝ h and independent of q, so larger q (smaller h) gives smaller
// proofs, with ownership proofs slightly larger than non-ownership ones.
func RunTable2(rows []QH, modulusBits, dbSize int) (*Table, error) {
	t := &Table{
		Title: "E4 (Table II): communication overhead of the POC scheme",
		Note: fmt.Sprintf("%d committed traces, %d-bit RSA modulus; paper: 8.94KB→3.97KB own, 8.08KB→3.58KB n-own",
			dbSize, modulusBits),
		Headers: []string{"q", "h", "Own proof", "N-Own proof"},
	}
	for _, qh := range rows {
		fx, err := newMacroFixture(qh, modulusBits, dbSize)
		if err != nil {
			return nil, err
		}
		own, err := fx.dpoc.Prove(context.Background(), fx.present)
		if err != nil {
			return nil, err
		}
		nOwn, err := fx.dpoc.Prove(context.Background(), fx.absent)
		if err != nil {
			return nil, err
		}
		ownSize, err := own.ZK.Size()
		if err != nil {
			return nil, err
		}
		nOwnSize, err := nOwn.ZK.Size()
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(qh.Q), fmt.Sprint(qh.H), KB(ownSize), KB(nOwnSize))
	}
	return t, nil
}

// RunFig5 measures ownership proof generation and verification time at each
// (q,h) (experiment E5). The paper's shape: generation cost grows with q
// (and dwarfs verification); verification cost tracks h only, so it falls
// as q grows.
func RunFig5(rows []QH, modulusBits, dbSize, reps int) (*Table, error) {
	t := &Table{
		Title: "E5 (Fig. 5): computation overhead of ownership proofs",
		Note: fmt.Sprintf("%d committed traces, %d-bit RSA modulus, mean over %d runs; paper: gen ≫ verify",
			dbSize, modulusBits, reps),
		Headers: []string{"q", "h", "proof gen", "proof verify", "commit (POC-Agg)"},
	}
	for _, qh := range rows {
		fx, err := newMacroFixture(qh, modulusBits, dbSize)
		if err != nil {
			return nil, err
		}
		proof, err := fx.dpoc.Prove(context.Background(), fx.present)
		if err != nil {
			return nil, err
		}
		gen := Measure(reps, func() {
			if _, err := fx.dpoc.Prove(context.Background(), fx.present); err != nil {
				panic(err)
			}
		})
		verify := Measure(reps, func() {
			if _, err := poc.Verify(context.Background(), fx.ps, fx.cred, fx.present, proof); err != nil {
				panic(err)
			}
		})
		traces := make([]poc.Trace, 0, dbSize)
		for i := 0; i < dbSize; i++ {
			traces = append(traces, poc.Trace{
				Product: poc.ProductID(fmt.Sprintf("macro-id-%03d", i)),
				Data:    []byte("re-commit bench"),
			})
		}
		commit := Measure(1, func() {
			if _, _, err := poc.Agg(fx.ps, "vM", traces, poc.AggOptions{}); err != nil {
				panic(err)
			}
		})
		t.AddRow(fmt.Sprint(qh.Q), fmt.Sprint(qh.H), Ms(gen), Ms(verify), Ms(commit))
	}
	return t, nil
}
