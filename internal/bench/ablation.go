package bench

import (
	"context"
	"fmt"

	"desword/internal/chlmr"
	"desword/internal/poc"
	"desword/internal/zkedb"
)

// This file holds ablation experiments for the design choices DESIGN.md §3
// documents: the commitment tree's amortization across database sizes (A1),
// the RSA modulus size — the knob our pairing substitution introduces (A2),
// the soft-chain cache for non-ownership proofs (A3), and the plain-TMC
// CHLMR tree against the paper's q-mercurial tree (A4).

// RunAblationDBSize varies the number of committed traces at fixed geometry
// (experiment A1). Expected: POC-Agg grows roughly linearly with the trace
// count (≈ n·h tree nodes), while proof generation, verification and proof
// size are independent of it — the property that makes a constant-size POC
// usable for arbitrarily large trace databases.
func RunAblationDBSize(params zkedb.Params, sizes []int, reps int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("A1 (ablation): database size at fixed q=%d h=%d", params.Q, params.H),
		Note:    "commit scales with traces; proof cost and size must not",
		Headers: []string{"traces", "POC-Agg", "proof gen", "proof verify", "own proof size"},
	}
	ps, err := poc.PSGen(params)
	if err != nil {
		return nil, err
	}
	for _, n := range sizes {
		traces := make([]poc.Trace, 0, n)
		for i := 0; i < n; i++ {
			traces = append(traces, poc.Trace{
				Product: poc.ProductID(fmt.Sprintf("abl-%04d", i)),
				Data:    []byte(fmt.Sprintf("record %04d", i)),
			})
		}
		var cred poc.POC
		var dpoc *poc.DPOC
		commit := Measure(1, func() {
			var aerr error
			cred, dpoc, aerr = poc.Agg(ps, "vA", traces, poc.AggOptions{ProofCacheSize: -1})
			if aerr != nil {
				panic(aerr)
			}
		})
		target := traces[n/2].Product
		proof, err := dpoc.Prove(context.Background(), target)
		if err != nil {
			return nil, err
		}
		gen := Measure(reps, func() {
			if _, err := dpoc.Prove(context.Background(), target); err != nil {
				panic(err)
			}
		})
		verify := Measure(reps, func() {
			if _, err := poc.Verify(context.Background(), ps, cred, target, proof); err != nil {
				panic(err)
			}
		})
		size, err := proof.ZK.Size()
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(n), Ms(commit), Ms(gen), Ms(verify), KB(size))
	}
	return t, nil
}

// RunAblationModulus varies the RSA modulus at fixed geometry (experiment
// A2). The modulus is the security/cost knob introduced by substituting an
// RSA vector commitment for the paper's pairings: times scale roughly
// quadratically and proof sizes linearly with modulus bits.
func RunAblationModulus(q, h int, moduli []int, reps int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("A2 (ablation): RSA modulus size at fixed q=%d h=%d", q, h),
		Note:    "the cost of the pairing-free substitution as security scales",
		Headers: []string{"modulus bits", "POC-Agg", "proof gen", "proof verify", "own proof size"},
	}
	for _, bits := range moduli {
		fx, err := newMacroFixture(QH{Q: q, H: h}, bits, 4)
		if err != nil {
			return nil, err
		}
		proof, err := fx.dpoc.Prove(context.Background(), fx.present)
		if err != nil {
			return nil, err
		}
		traces := []poc.Trace{{Product: "re", Data: []byte("re")}}
		commit := Measure(1, func() {
			if _, _, err := poc.Agg(fx.ps, "vA", traces, poc.AggOptions{}); err != nil {
				panic(err)
			}
		})
		gen := Measure(reps, func() {
			if _, err := fx.dpoc.Prove(context.Background(), fx.present); err != nil {
				panic(err)
			}
		})
		verify := Measure(reps, func() {
			if _, err := poc.Verify(context.Background(), fx.ps, fx.cred, fx.present, proof); err != nil {
				panic(err)
			}
		})
		size, err := proof.ZK.Size()
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(bits), Ms(commit), Ms(gen), Ms(verify), KB(size))
	}
	return t, nil
}

// RunAblationSoftCache measures first vs repeated non-ownership proofs for
// the same absent key (experiment A3). The first query materializes and pins
// the soft-commitment chain down to the queried leaf; repeats reuse it —
// saving the per-level commitment generation and, crucially, exposing
// byte-identical commitments on every query (consistency across verifiers).
func RunAblationSoftCache(params zkedb.Params, reps int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("A3 (ablation): soft-chain cache for non-ownership proofs (q=%d h=%d)", params.Q, params.H),
		Note:    "first query builds the soft chain; repeats reuse the pinned commitments",
		Headers: []string{"query", "proof gen", "chain reused"},
	}
	ps, err := poc.PSGen(params)
	if err != nil {
		return nil, err
	}
	_, dpoc, err := poc.Agg(ps, "vA", []poc.Trace{{Product: "present", Data: []byte("x")}}, poc.AggOptions{ProofCacheSize: -1})
	if err != nil {
		return nil, err
	}
	var first *poc.Proof
	firstTime := Measure(1, func() {
		var perr error
		first, perr = dpoc.Prove(context.Background(), "absent-key")
		if perr != nil {
			panic(perr)
		}
	})
	var repeat *poc.Proof
	repeatTime := Measure(reps, func() {
		var perr error
		repeat, perr = dpoc.Prove(context.Background(), "absent-key")
		if perr != nil {
			panic(perr)
		}
	})
	reused := "yes"
	for i := range first.ZK.Levels {
		if !first.ZK.Levels[i].Child.Equal(repeat.ZK.Levels[i].Child) {
			reused = "NO (bug)"
			break
		}
	}
	t.AddRow("first (cold)", Ms(firstTime), "-")
	t.AddRow("repeat (warm)", Ms(repeatTime), reused)
	return t, nil
}

// RunAblationTreeScheme compares the two ZK-EDB instantiations — the
// plain-TMC CHLMR tree (package chlmr, Θ(q·h) proofs) against the
// q-mercurial tree the paper builds on (package zkedb, Θ(h) proofs) —
// across the Table II (q,h) sweep (experiment A4). This reproduces the
// motivation of the paper's reference [11]: with plain mercurial
// commitments, growing q makes proofs larger and the Table II trend
// inverts; concise vector commitments are what make large q pay off.
func RunAblationTreeScheme(rows []QH, modulusBits int, reps int) (*Table, error) {
	t := &Table{
		Title:   "A4 (ablation): plain-TMC tree (CHLMR) vs q-mercurial tree (paper)",
		Note:    "own-proof size and generation; the qTMC construction flips the q trend",
		Headers: []string{"q", "h", "CHLMR size", "qTMC size", "CHLMR gen", "qTMC gen"},
	}
	for _, qh := range rows {
		// CHLMR instance.
		plainCRS, err := chlmr.CRSGen(chlmr.Params{Q: qh.Q, H: qh.H, KeyBits: 128})
		if err != nil {
			return nil, err
		}
		db := map[string][]byte{"abl-key": []byte("abl-value")}
		_, plainDec, err := plainCRS.Commit(db)
		if err != nil {
			return nil, err
		}
		plainProof, err := plainDec.Prove("abl-key")
		if err != nil {
			return nil, err
		}
		plainGen := Measure(reps, func() {
			if _, err := plainDec.Prove("abl-key"); err != nil {
				panic(err)
			}
		})

		// qTMC instance.
		fx, err := newMacroFixture(qh, modulusBits, 1)
		if err != nil {
			return nil, err
		}
		qProof, err := fx.dpoc.Prove(context.Background(), fx.present)
		if err != nil {
			return nil, err
		}
		qSize, err := qProof.ZK.Size()
		if err != nil {
			return nil, err
		}
		qGen := Measure(reps, func() {
			if _, err := fx.dpoc.Prove(context.Background(), fx.present); err != nil {
				panic(err)
			}
		})
		t.AddRow(fmt.Sprint(qh.Q), fmt.Sprint(qh.H),
			KB(plainProof.Size()), KB(qSize), Ms(plainGen), Ms(qGen))
	}
	return t, nil
}
