package bench

import (
	"context"
	"fmt"
	"time"

	"desword/internal/core"
	"desword/internal/node"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/zkedb"
)

// This file implements experiment E8: end-to-end good/bad product path query
// latency over a real TCP deployment as a function of path length — the
// whole-protocol cost a supply-chain application observes.

// RunE2E deploys linear chains of the given lengths on localhost and times
// full path queries through proxy and participant servers.
func RunE2E(params zkedb.Params, lengths []int, reps int) (*Table, error) {
	t := &Table{
		Title: "E8: end-to-end path query latency over TCP (localhost)",
		Note: fmt.Sprintf("q=%d h=%d, one product per chain, mean over %d runs; grows linearly with path length",
			params.Q, params.H, reps),
		Headers: []string{"path length", "good query", "bad query", "proof bytes/hop (own)"},
	}
	ps, err := poc.PSGen(params)
	if err != nil {
		return nil, err
	}
	for _, n := range lengths {
		good, bad, proofBytes, err := runE2EChain(ps, n, reps)
		if err != nil {
			return nil, fmt.Errorf("bench: e2e chain of %d: %w", n, err)
		}
		t.AddRow(fmt.Sprint(n), Ms(good), Ms(bad), KB(proofBytes))
	}
	return t, nil
}

func runE2EChain(ps *poc.PublicParams, n, reps int) (good, bad time.Duration, proofBytes int, err error) {
	g, parts := supplychain.LineGraph(n)
	members := make(map[poc.ParticipantID]*core.Member, n)
	for id, p := range parts {
		members[id] = core.NewMember(ps, p)
	}
	tags, err := supplychain.MintTags("e2e", 1)
	if err != nil {
		return 0, 0, 0, err
	}
	dist, err := core.RunDistribution(ps, g, members, "p0", tags, nil, supplychain.FirstChildSplitter, "task-e2e")
	if err != nil {
		return 0, 0, 0, err
	}

	dir := make(map[poc.ParticipantID]string, n)
	servers := make([]*node.ParticipantServer, 0, n)
	defer func() {
		for _, s := range servers {
			if cerr := s.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}()
	for id, m := range members {
		srv, serr := node.ServeParticipant(context.Background(), "127.0.0.1:0", m)
		if serr != nil {
			return 0, 0, 0, serr
		}
		servers = append(servers, srv)
		dir[id] = srv.Addr()
	}
	directory := node.DirectoryResolver(dir)
	defer directory.Close()
	proxy := core.NewProxy(ps, reputation.DefaultStrategy(), directory.Resolver())
	proxySrv, err := node.ServeProxy(context.Background(), "127.0.0.1:0", proxy)
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() {
		if cerr := proxySrv.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	client := node.NewProxyClient(proxySrv.Addr())
	defer client.Close()
	// rerr, not err: the named result is read by the deferred Close
	// handler above, and shadowing it here would be a footgun
	// (desword/shadow).
	if rerr := client.RegisterList(context.Background(), "task-e2e", dist.List); rerr != nil {
		return 0, 0, 0, rerr
	}

	const product = poc.ProductID("e2e1")
	good = Measure(reps, func() {
		result, qerr := client.QueryPath(context.Background(), product, core.Good)
		if qerr != nil {
			panic(qerr)
		}
		if len(result.Path) != n {
			panic(fmt.Sprintf("good query identified %d of %d hops", len(result.Path), n))
		}
	})
	bad = Measure(reps, func() {
		result, qerr := client.QueryPath(context.Background(), product, core.Bad)
		if qerr != nil {
			panic(qerr)
		}
		if len(result.Path) != n {
			panic(fmt.Sprintf("bad query identified %d of %d hops", len(result.Path), n))
		}
	})

	proof, err := members["p0"].Query(context.Background(), "task-e2e", product, core.Good)
	if err != nil {
		return 0, 0, 0, err
	}
	proofBytes, err = proof.Proof.ZK.Size()
	if err != nil {
		return 0, 0, 0, err
	}
	return good, bad, proofBytes, nil
}
