package bench

import (
	"context"
	"fmt"
	"time"

	"desword/internal/core"
	"desword/internal/node"
	"desword/internal/obs"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/telemetry"
	"desword/internal/zkedb"
)

// This file implements experiment E11: the cost of continuous telemetry
// collection. The collector walks the whole metrics registry on every tick
// (atomic loads under the registry lock) and the fleet monitor adds a wire
// round trip per peer per poll — E11 measures what that does to end-to-end
// query latency by running the same TCP workload with telemetry off and with
// an aggressively fast collector+monitor loop, far faster than any production
// interval.

// telemetryBenchInterval is deliberately aggressive: production defaults
// tick every 5s, the bench every 250ms — 20× the deployed collection and
// poll frequency — so the measured overhead is an upper bound on the
// deployed cost while staying a realistic operating point (sub-100ms polls
// re-marshal every peer's full registry faster than any dashboard reads it).
const telemetryBenchInterval = 250 * time.Millisecond

// RunTelemetry deploys a linear chain over TCP and times good-path queries
// with the telemetry pipeline disabled, then enabled at the punishing bench
// interval. The result lands in the registry too (desword_bench_telemetry_*),
// so -metrics-out snapshots carry it.
func RunTelemetry(params zkedb.Params, n, reps int) (*Table, error) {
	t := &Table{
		Title: "E11: telemetry collection overhead (localhost TCP)",
		Note: fmt.Sprintf("chain of %d, mean over %d runs; collector+monitor ticking every %s vs production default %s",
			n, reps, telemetryBenchInterval, telemetry.DefaultInterval),
		Headers: []string{"telemetry", "good query", "overhead"},
	}
	ps, err := poc.PSGen(params)
	if err != nil {
		return nil, err
	}

	baseline, err := runTelemetryChain(ps, n, reps, false)
	if err != nil {
		return nil, fmt.Errorf("bench: telemetry baseline: %w", err)
	}
	telemetered, err := runTelemetryChain(ps, n, reps, true)
	if err != nil {
		return nil, fmt.Errorf("bench: telemetry enabled: %w", err)
	}

	overheadPct := 0.0
	if baseline > 0 {
		overheadPct = (float64(telemetered) - float64(baseline)) / float64(baseline) * 100
	}
	t.AddRow("off", Ms(baseline), "—")
	t.AddRow(fmt.Sprintf("on (%s ticks)", telemetryBenchInterval), Ms(telemetered),
		fmt.Sprintf("%+.2f%%", overheadPct))

	// Publish the outcome as registry series so BENCH_telemetry.json records
	// it: latencies in microseconds, overhead in basis points (the gauges
	// are integral).
	obs.Default.Gauge("desword_bench_telemetry_baseline_us",
		"E11 mean good-query latency without telemetry, microseconds.").Set(baseline.Microseconds())
	obs.Default.Gauge("desword_bench_telemetry_enabled_us",
		"E11 mean good-query latency with 250ms telemetry ticks, microseconds.").Set(telemetered.Microseconds())
	obs.Default.Gauge("desword_bench_telemetry_overhead_bp",
		"E11 telemetry overhead in basis points (100 bp = 1%).").Set(int64(overheadPct * 100))
	return t, nil
}

// runTelemetryChain runs the E8-style workload once, optionally with the full
// telemetry pipeline (collector + runtime sampler + SLO engine + fleet
// monitor over the wire) running at the bench interval.
func runTelemetryChain(ps *poc.PublicParams, n, reps int, telemetered bool) (good time.Duration, err error) {
	g, parts := supplychain.LineGraph(n)
	members := make(map[poc.ParticipantID]*core.Member, n)
	for id, p := range parts {
		members[id] = core.NewMember(ps, p)
	}
	tags, err := supplychain.MintTags("tel", 1)
	if err != nil {
		return 0, err
	}
	dist, err := core.RunDistribution(ps, g, members, "p0", tags, nil, supplychain.FirstChildSplitter, "task-tel")
	if err != nil {
		return 0, err
	}

	dir := make(map[poc.ParticipantID]string, n)
	servers := make([]*node.ParticipantServer, 0, n)
	defer func() {
		for _, s := range servers {
			if cerr := s.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}()
	for id, m := range members {
		srv, serr := node.ServeParticipant(context.Background(), "127.0.0.1:0", m)
		if serr != nil {
			return 0, serr
		}
		servers = append(servers, srv)
		dir[id] = srv.Addr()
	}
	directory := node.DirectoryResolver(dir)
	defer directory.Close()
	proxy := core.NewProxy(ps, reputation.DefaultStrategy(), directory.Resolver())
	proxySrv, err := node.ServeProxy(context.Background(), "127.0.0.1:0", proxy)
	if err != nil {
		return 0, err
	}
	defer func() {
		if cerr := proxySrv.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	client := node.NewProxyClient(proxySrv.Addr())
	defer client.Close()
	if rerr := client.RegisterList(context.Background(), "task-tel", dist.List); rerr != nil {
		return 0, rerr
	}

	if telemetered {
		objectives, perr := telemetry.ParseSLO("p99(desword_query_latency_seconds)<10s")
		if perr != nil {
			return 0, perr
		}
		collector := telemetry.NewCollector(obs.Default, "bench",
			telemetry.WithInterval(telemetryBenchInterval),
			telemetry.WithSLO(telemetry.NewEngine(objectives, 0)))
		collector.Start()
		defer collector.Stop()
		monitor := telemetry.NewMonitor(
			telemetry.WithPollInterval(telemetryBenchInterval),
			telemetry.WithObjectives(objectives))
		monitor.AddLocal("bench", collector)
		proxyClient := node.NewProxyClient(proxySrv.Addr())
		defer proxyClient.Close()
		monitor.AddPeer("proxy", proxyClient.Telemetry)
		for id, addr := range dir {
			rc := node.NewResponderClient(addr)
			defer rc.Close()
			monitor.AddPeer(string(id), rc.Telemetry)
		}
		monitor.Start()
		defer monitor.Stop()
	}

	const product = poc.ProductID("tel1")
	good = Measure(reps, func() {
		result, qerr := client.QueryPath(context.Background(), product, core.Good)
		if qerr != nil {
			panic(qerr)
		}
		if len(result.Path) != n {
			panic(fmt.Sprintf("query identified %d of %d hops", len(result.Path), n))
		}
	})
	return good, nil
}
