package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"desword/internal/zkedb"
	"desword/internal/zkedb/store"
)

// This file implements experiment E13: the node-store ablation for the
// pluggable ZK-EDB storage layer (DESIGN.md §13). E13a isolates what
// incremental Update buys a participant handed k new product ids over a
// large already-committed tree — the paper's distribution phase repeated,
// where a full POC-Agg rebuild is the strawman. E13b isolates what lazy
// hydration buys a file-backed prover: proofs stay correct after a cold
// reopen while the resident node count stays bounded far below the tree.

// storeSeed makes every E13 build deterministic, which is what lets the
// incremental-vs-rebuild comparison assert byte-identical commitments
// rather than just similar timings.
var storeSeed = []byte("desword-bench-store-seed")

// storeDB builds n distinct trace values keyed with the given prefix.
func storeDB(prefix string, n int) map[string][]byte {
	db := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%s-%05d", prefix, i)
		db[key] = []byte("participant=vS;product=" + key + ";op=process")
	}
	return db
}

// RunStoreIncremental times incremental Update batches of k new ids against
// the full Commit rebuild a participant would otherwise pay, on one growing
// tree of base keys. The deltas accumulate, and the finale recommits the
// final database from scratch with the same seed and asserts the updated
// tree reached the byte-identical commitment.
func RunStoreIncremental(params zkedb.Params, base int, ks []int) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("E13a: incremental Update vs full Commit (q=%d h=%d)", params.Q, params.H),
		Note: fmt.Sprintf("%d committed keys; Update(k) revises only the k touched root-to-leaf paths; seeded builds, so the finale checks byte-identity against a fresh rebuild",
			base),
		Headers: []string{"operation", "keys touched", "time", "vs full Commit"},
	}
	crs, err := zkedb.CRSGen(params)
	if err != nil {
		return nil, err
	}
	db := storeDB("store-id", base)
	start := time.Now()
	_, dec, err := crs.Commit(db, zkedb.CommitOptions{Seed: storeSeed})
	if err != nil {
		return nil, err
	}
	full := time.Since(start)
	t.AddRow(fmt.Sprintf("full Commit (%d keys)", base), fmt.Sprint(base), Ms(full), "1.00x")

	var com zkedb.Commitment
	for _, k := range ks {
		delta := storeDB(fmt.Sprintf("store-upd%d", k), k)
		for key, val := range delta {
			db[key] = val
		}
		start = time.Now()
		com, err = dec.Update(context.Background(), delta)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		t.AddRow(fmt.Sprintf("Update (k=%d)", k), fmt.Sprint(k), Ms(elapsed),
			fmt.Sprintf("%.0fx faster", float64(full)/float64(elapsed)))
	}

	start = time.Now()
	rebuilt, _, err := crs.Commit(db, zkedb.CommitOptions{Seed: storeSeed})
	if err != nil {
		return nil, err
	}
	rebuildTime := time.Since(start)
	identical := "byte-identical: true"
	if !rebuilt.Equal(com) {
		identical = "byte-identical: FALSE"
	}
	t.AddRow(fmt.Sprintf("full rebuild (%d keys)", len(db)), fmt.Sprint(len(db)),
		Ms(rebuildTime), identical)
	if !rebuilt.Equal(com) {
		return t, fmt.Errorf("bench: updated commitment diverged from fresh rebuild")
	}
	return t, nil
}

// RunStoreLazy times proofs against the same seeded tree on the in-memory
// backend (everything resident) and on a file backend reopened cold with a
// bounded hydration cache, verifying every proof and reporting how many
// nodes stay resident relative to the stored tree.
func RunStoreLazy(params zkedb.Params, base, cacheNodes, reps int) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("E13b: lazy file-backed proving (q=%d h=%d)", params.Q, params.H),
		Note: fmt.Sprintf("%d committed keys, mean over %d proofs, all verified; the file tree is reopened cold so every path hydrates through the store",
			base, reps),
		Headers: []string{"backend", "prove own", "prove non-own", "resident nodes", "stored records"},
	}
	crs, err := zkedb.CRSGen(params)
	if err != nil {
		return nil, err
	}
	db := storeDB("store-id", base)
	ownKey := "store-id-00000"
	absentKey := "store-id-absent"

	// In-memory baseline: the legacy configuration, whole tree resident.
	memCom, memDec, err := crs.Commit(db, zkedb.CommitOptions{Seed: storeSeed})
	if err != nil {
		return nil, err
	}
	memOwn, memNon, err := measureProofs(crs, memCom, memDec, ownKey, absentKey, reps)
	if err != nil {
		return nil, err
	}
	memTotal, err := storedRecords(memDec.Store())
	if err != nil {
		return nil, err
	}
	t.AddRow("mem (unbounded)", Ms(memOwn), Ms(memNon),
		fmt.Sprint(memDec.ResidentNodes()), fmt.Sprint(memTotal))

	// File backend: commit, close, reopen cold, prove lazily.
	dir, err := os.MkdirTemp("", "desword-bench-store")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "tree.kv")
	kv, err := store.OpenFile(path, store.FileOptions{})
	if err != nil {
		return nil, err
	}
	fileCom, fileDec, err := crs.Commit(db, zkedb.CommitOptions{Seed: storeSeed, Store: kv})
	if err != nil {
		return nil, err
	}
	if !fileCom.Equal(memCom) {
		return nil, fmt.Errorf("bench: file-backed commitment diverged from mem")
	}
	_ = fileDec
	if err := kv.Close(); err != nil {
		return nil, err
	}
	reopened, err := store.OpenFile(path, store.FileOptions{})
	if err != nil {
		return nil, err
	}
	defer reopened.Close()
	coldDec, err := zkedb.OpenDecommitment(crs, reopened, cacheNodes)
	if err != nil {
		return nil, err
	}
	fileOwn, fileNon, err := measureProofs(crs, fileCom, coldDec, ownKey, absentKey, reps)
	if err != nil {
		return nil, err
	}
	fileTotal, err := storedRecords(reopened)
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("file (cache=%d)", cacheNodes), Ms(fileOwn), Ms(fileNon),
		fmt.Sprint(coldDec.ResidentNodes()), fmt.Sprint(fileTotal))
	return t, nil
}

// measureProofs times reps ownership and non-ownership proofs, verifying
// each against the commitment.
func measureProofs(crs *zkedb.CRS, com zkedb.Commitment, dec *zkedb.Decommitment, ownKey, absentKey string, reps int) (own, non time.Duration, err error) {
	prove := func(key string, wantPresent bool) (time.Duration, error) {
		elapsed := Measure(reps, func() {
			proof, perr := dec.Prove(context.Background(), key)
			if perr != nil {
				panic(perr)
			}
			_, present, verr := crs.Verify(com, key, proof)
			if verr != nil {
				panic(verr)
			}
			if present != wantPresent {
				panic(fmt.Sprintf("bench: key %q present=%v, want %v", key, present, wantPresent))
			}
		})
		return elapsed, nil
	}
	if own, err = prove(ownKey, true); err != nil {
		return 0, 0, err
	}
	if non, err = prove(absentKey, false); err != nil {
		return 0, 0, err
	}
	return own, non, nil
}

// storedRecords counts the tree records (nodes + soft entries) a store
// holds — the denominator for the resident-nodes bound.
func storedRecords(kv store.KV) (int, error) {
	nodes, err := kv.List("n/")
	if err != nil {
		return 0, err
	}
	softs, err := kv.List("s/")
	if err != nil {
		return 0, err
	}
	return len(nodes) + len(softs), nil
}
