package bench

import (
	"context"
	"fmt"
	"time"

	"desword/internal/core"
	"desword/internal/node"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/zkedb"
)

// This file implements experiment E9: the transport ablation. It deploys the
// same linear chain twice — once queried through pooled persistent
// connections, once with a fresh dial per request — and compares full
// path-query wall time. The delta isolates what connection reuse buys the
// walk: a query over an n-hop chain performs n+1 round trips (client→proxy
// plus one per participant), so dial-per-request pays n+1 TCP handshakes per
// query that the pool pays only on first contact.

// RunTransport times path queries over TCP with pooled versus
// dial-per-request transports and reports the connection-reuse ratio the
// pool achieved.
func RunTransport(params zkedb.Params, lengths []int, reps int) (*Table, error) {
	t := &Table{
		Title: "E9: pooled vs dial-per-request transport (localhost TCP)",
		Note: fmt.Sprintf("q=%d h=%d, good query over a linear chain, mean over %d runs; reuse = reuses/(dials+reuses) across all participant pools",
			params.Q, params.H, reps),
		Headers: []string{"path length", "pooled", "dial-per-request", "speedup", "reuse"},
	}
	ps, err := poc.PSGen(params)
	if err != nil {
		return nil, err
	}
	for _, n := range lengths {
		pooled, dialed, reuse, err := runTransportChain(ps, n, reps)
		if err != nil {
			return nil, fmt.Errorf("bench: transport chain of %d: %w", n, err)
		}
		t.AddRow(fmt.Sprint(n), Ms(pooled), Ms(dialed),
			fmt.Sprintf("%.2fx", float64(dialed)/float64(pooled)),
			fmt.Sprintf("%.0f%%", reuse*100))
	}
	return t, nil
}

func runTransportChain(ps *poc.PublicParams, n, reps int) (pooled, dialed time.Duration, reuse float64, err error) {
	g, parts := supplychain.LineGraph(n)
	members := make(map[poc.ParticipantID]*core.Member, n)
	for id, p := range parts {
		members[id] = core.NewMember(ps, p)
	}
	tags, err := supplychain.MintTags("tr", 1)
	if err != nil {
		return 0, 0, 0, err
	}
	dist, err := core.RunDistribution(ps, g, members, "p0", tags, nil, supplychain.FirstChildSplitter, "task-transport")
	if err != nil {
		return 0, 0, 0, err
	}

	dir := make(map[poc.ParticipantID]string, n)
	servers := make([]*node.ParticipantServer, 0, n)
	defer func() {
		for _, s := range servers {
			if cerr := s.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}()
	for id, m := range members {
		srv, serr := node.ServeParticipant(context.Background(), "127.0.0.1:0", m)
		if serr != nil {
			return 0, 0, 0, serr
		}
		servers = append(servers, srv)
		dir[id] = srv.Addr()
	}

	const product = poc.ProductID("tr1")
	// Each mode gets its own proxy stack so pools never bleed across modes.
	run := func(opts ...node.Option) (perQuery time.Duration, dirStats node.PoolStats, err error) {
		directory := node.DirectoryResolver(dir, opts...)
		defer directory.Close()
		proxy := core.NewProxy(ps, reputation.DefaultStrategy(), directory.Resolver())
		proxySrv, err := node.ServeProxy(context.Background(), "127.0.0.1:0", proxy)
		if err != nil {
			return 0, node.PoolStats{}, err
		}
		defer func() {
			if cerr := proxySrv.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		client := node.NewProxyClient(proxySrv.Addr(), opts...)
		defer client.Close()
		// rerr, not err: the named result is read by the deferred Close
		// handler above (desword/shadow).
		if rerr := client.RegisterList(context.Background(), "task-transport", dist.List); rerr != nil {
			return 0, node.PoolStats{}, rerr
		}
		perQuery = Measure(reps, func() {
			result, qerr := client.QueryPath(context.Background(), product, core.Good)
			if qerr != nil {
				panic(qerr)
			}
			if len(result.Path) != n {
				panic(fmt.Sprintf("query identified %d of %d hops", len(result.Path), n))
			}
		})
		for _, addr := range dir {
			if c := directory.Client(addr); c != nil {
				s := c.Pool().Stats()
				dirStats.Dials += s.Dials
				dirStats.Reuses += s.Reuses
			}
		}
		return perQuery, dirStats, nil
	}

	pooled, stats, err := run()
	if err != nil {
		return 0, 0, 0, err
	}
	if total := stats.Dials + stats.Reuses; total > 0 {
		reuse = float64(stats.Reuses) / float64(total)
	}
	dialed, _, err = run(node.WithDialPerRequest())
	if err != nil {
		return 0, 0, 0, err
	}
	return pooled, dialed, reuse, nil
}
