package node

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"desword/internal/core"
	"desword/internal/events"
	"desword/internal/poc"
	"desword/internal/wire"
)

// TestNetworkBatchQuery runs a batch over real TCP: known ids resolve, a
// duplicate shares its twin's outcome, and an unknown id degrades to a
// no-origin result — never failing the rest of the batch.
func TestNetworkBatchQuery(t *testing.T) {
	d := deploy(t, 4, nil)
	ids := []poc.ProductID{d.product, "no-such-product", d.product}
	batch, err := d.client.QueryPathBatch(context.Background(), ids, core.Good)
	if err != nil {
		t.Fatalf("QueryPathBatch over TCP: %v", err)
	}
	if len(batch.Items) != len(ids) {
		t.Fatalf("batch returned %d items, want %d", len(batch.Items), len(ids))
	}
	want := d.dist.Ground.Paths[d.product]
	for _, i := range []int{0, 2} {
		item := batch.Items[i]
		if item.Err != nil {
			t.Fatalf("item %d errored: %v", i, item.Err)
		}
		if len(item.Result.Path) != len(want) || !item.Result.Complete {
			t.Fatalf("item %d path = %v (complete=%v), want %v", i, item.Result.Path, item.Result.Complete, want)
		}
	}
	missing := batch.Items[1]
	if missing.Err != nil {
		t.Fatalf("unknown product must yield a no-origin result, not an error: %v", missing.Err)
	}
	if len(missing.Result.Path) != 0 || missing.Result.TaskID != "" {
		t.Fatalf("unknown product resolved a path: %+v", missing.Result)
	}
}

// TestNetworkBatchAgainstShardedProxy runs the same batch against a 3-shard
// proxy over TCP and cross-checks the per-id results and the shard-aware
// score/audit accessors end to end.
func TestNetworkBatchAgainstShardedProxy(t *testing.T) {
	d := deployWithConfig(t, 4, nil, core.ProxyConfig{Shards: 3})
	batch, err := d.client.QueryPathBatch(context.Background(), []poc.ProductID{d.product}, core.Good)
	if err != nil {
		t.Fatalf("QueryPathBatch: %v", err)
	}
	result := batch.Items[0].Result
	if result == nil || !result.Complete {
		t.Fatalf("batch item did not complete: %+v", batch.Items[0])
	}
	scores, err := d.client.Scores(context.Background())
	if err != nil {
		t.Fatalf("Scores: %v", err)
	}
	for _, v := range result.Path {
		if scores[v] <= 0 {
			t.Fatalf("path member %s has score %v, want > 0", v, scores[v])
		}
	}
	// AuditLog must verify the per-shard chains client-side and return the
	// union: one entry per awarded hop.
	entries, err := d.client.AuditLog(context.Background())
	if err != nil {
		t.Fatalf("AuditLog against sharded proxy: %v", err)
	}
	if len(entries) != len(result.Path) {
		t.Fatalf("audit log has %d entries, want %d", len(entries), len(result.Path))
	}
}

// TestNetworkBatchSchemaRejected pins the envelope compat contract: a batch
// request stamped with a future schema version is rejected loudly, not
// half-understood.
func TestNetworkBatchSchemaRejected(t *testing.T) {
	d := deploy(t, 3, nil)
	conn, err := net.Dial("tcp", d.client.Pool().Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteMessage(conn, wire.TypeQueryPathBatch, wire.QueryPathBatchRequest{
		Schema:   wire.BatchSchemaVersion + 1,
		Products: []poc.ProductID{d.product},
		Quality:  int(core.Good),
	}); err != nil {
		t.Fatal(err)
	}
	env, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != wire.TypeError {
		t.Fatalf("future schema answered with %q, want error", env.Type)
	}
	var er wire.ErrorResponse
	if err := env.Decode(&er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Message, "schema") {
		t.Fatalf("error %q does not name the schema mismatch", er.Message)
	}
}

// stalledResponder blocks every query until its context expires, so a server
// admission test can saturate the worker pool deterministically.
type stalledResponder struct {
	entered chan struct{}
	once    sync.Once
}

func (r *stalledResponder) Query(ctx context.Context, taskID string, id poc.ProductID, quality core.Quality) (*core.Response, error) {
	r.once.Do(func() { close(r.entered) })
	<-ctx.Done()
	return nil, ctx.Err()
}

func (r *stalledResponder) DemandOwnership(ctx context.Context, taskID string, id poc.ProductID) (*core.Response, error) {
	return nil, errors.New("stalled")
}

// TestServerAdmissionSheds pins the node-server half of the protection
// tentpole: a server whose single admission worker is busy answers the next
// request with a load-shed error immediately — long before the request
// timeout — and records a load_shed node_request event.
func TestServerAdmissionSheds(t *testing.T) {
	responder := &stalledResponder{entered: make(chan struct{})}
	sink := events.NewSink("test", events.NewRing(64), nil)
	srv, err := ServeParticipant(context.Background(), "127.0.0.1:0", responder,
		WithAdmission(1, -1), WithTimeout(2*time.Second), WithEventSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	occupier := NewResponderClient(srv.Addr(), WithRetries(0), WithTimeout(2*time.Second))
	defer occupier.Close()
	go func() {
		_, _ = occupier.Query(context.Background(), "task", "p", core.Good)
	}()
	select {
	case <-responder.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("occupier never reached the responder")
	}

	victim := NewResponderClient(srv.Addr(), WithRetries(0), WithTimeout(2*time.Second))
	defer victim.Close()
	start := time.Now()
	_, qerr := victim.Query(context.Background(), "task", "p", core.Good)
	elapsed := time.Since(start)
	if qerr == nil {
		t.Fatal("saturated server admitted the query")
	}
	if !strings.Contains(qerr.Error(), "load shed") {
		t.Fatalf("err = %v, want a load-shed rejection", qerr)
	}
	if elapsed > time.Second {
		t.Fatalf("shed took %v; must be immediate, not a timeout", elapsed)
	}
	shed := sink.Ring().Query(events.Filter{Kind: events.KindNodeRequest, Outcome: events.OutcomeLoadShed}, 10)
	if len(shed) == 0 {
		t.Fatal("no load_shed node_request event recorded")
	}
	if shed[0].MsgType != wire.TypeQuery {
		t.Fatalf("shed event msg_type = %q, want %q", shed[0].MsgType, wire.TypeQuery)
	}
}
