// Package node deploys DE-Sword over TCP: a proxy server, participant
// servers, and dial-per-request clients. The same protocol logic as the
// in-process engine runs here — node.ResponderClient implements
// core.Responder, so a core.Proxy can drive remote participants, and
// node.ProxyServer exposes the proxy to applications and initial
// participants.
package node

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"desword/internal/core"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/wire"
)

// DefaultTimeout bounds each dial and each request/response exchange.
const DefaultTimeout = 10 * time.Second

// ErrServerClosed reports use of a closed server.
var ErrServerClosed = errors.New("node: server closed")

// server is the shared accept-loop machinery.
type server struct {
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

func (s *server) start(ln net.Listener, handle func(*wire.Envelope) (string, any)) {
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer func() {
					if cerr := conn.Close(); cerr != nil {
						_ = cerr // already answering or tearing down
					}
				}()
				s.serveConn(conn, handle)
			}()
		}
	}()
}

// serveConn answers framed requests on one connection until the peer hangs
// up or sends garbage.
func (s *server) serveConn(conn net.Conn, handle func(*wire.Envelope) (string, any)) {
	for {
		if err := conn.SetReadDeadline(time.Now().Add(DefaultTimeout)); err != nil {
			return
		}
		env, err := wire.ReadMessage(conn)
		if err != nil {
			return
		}
		respType, payload := handle(env)
		if err := conn.SetWriteDeadline(time.Now().Add(DefaultTimeout)); err != nil {
			return
		}
		if err := wire.WriteMessage(conn, respType, payload); err != nil {
			return
		}
	}
}

// Addr returns the server's listen address.
func (s *server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for in-flight connections to finish.
func (s *server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// ParticipantServer exposes one participant endpoint (honest member or
// adversary wrapper) over TCP.
type ParticipantServer struct {
	server
	responder core.Responder
}

// ServeParticipant listens on addr (use "127.0.0.1:0" for an ephemeral port)
// and serves query interactions against the responder.
func ServeParticipant(addr string, responder core.Responder) (*ParticipantServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: listening on %s: %w", addr, err)
	}
	s := &ParticipantServer{responder: responder}
	s.start(ln, s.handle)
	return s, nil
}

func (s *ParticipantServer) handle(env *wire.Envelope) (string, any) {
	switch env.Type {
	case wire.TypeQuery:
		var req wire.QueryRequest
		if err := env.Decode(&req); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		resp, err := s.responder.Query(req.TaskID, req.Product, core.Quality(req.Quality))
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		encoded, err := wire.EncodeResponse(resp)
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		return wire.TypeResponse, encoded
	case wire.TypeDemandOwnership:
		var req wire.DemandRequest
		if err := env.Decode(&req); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		resp, err := s.responder.DemandOwnership(req.TaskID, req.Product)
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		encoded, err := wire.EncodeResponse(resp)
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		return wire.TypeResponse, encoded
	default:
		return wire.TypeError, wire.ErrorResponse{Message: "unknown message type " + env.Type}
	}
}

// ResponderClient reaches a remote participant; it implements
// core.Responder, so the proxy's resolver can hand it straight to the
// protocol engine.
type ResponderClient struct {
	addr    string
	timeout time.Duration
}

// NewResponderClient creates a client for one participant address.
func NewResponderClient(addr string) *ResponderClient {
	return &ResponderClient{addr: addr, timeout: DefaultTimeout}
}

var _ core.Responder = (*ResponderClient)(nil)

// Query implements core.Responder over TCP.
func (c *ResponderClient) Query(taskID string, id poc.ProductID, quality core.Quality) (*core.Response, error) {
	return c.roundTrip(wire.TypeQuery, wire.QueryRequest{
		TaskID: taskID, Product: id, Quality: int(quality),
	})
}

// DemandOwnership implements core.Responder over TCP.
func (c *ResponderClient) DemandOwnership(taskID string, id poc.ProductID) (*core.Response, error) {
	return c.roundTrip(wire.TypeDemandOwnership, wire.DemandRequest{
		TaskID: taskID, Product: id,
	})
}

func (c *ResponderClient) roundTrip(msgType string, payload any) (*core.Response, error) {
	env, err := exchange(c.addr, c.timeout, msgType, payload)
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypeResponse {
		return nil, remoteError(env)
	}
	var resp wire.QueryResponse
	if err := env.Decode(&resp); err != nil {
		return nil, err
	}
	return wire.DecodeResponse(&resp)
}

// DirectoryResolver builds a core.Resolver from a participant→address map.
func DirectoryResolver(dir map[poc.ParticipantID]string) core.Resolver {
	return func(v poc.ParticipantID) (core.Responder, error) {
		addr, ok := dir[v]
		if !ok {
			return nil, fmt.Errorf("node: no address for participant %s", v)
		}
		return NewResponderClient(addr), nil
	}
}

// ProxyServer exposes a core.Proxy over TCP to applications and initial
// participants.
type ProxyServer struct {
	server
	proxy *core.Proxy
}

// ServeProxy listens on addr and serves the proxy protocol.
func ServeProxy(addr string, proxy *core.Proxy) (*ProxyServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: listening on %s: %w", addr, err)
	}
	s := &ProxyServer{proxy: proxy}
	s.start(ln, s.handle)
	return s, nil
}

func (s *ProxyServer) handle(env *wire.Envelope) (string, any) {
	switch env.Type {
	case wire.TypeGetParams:
		return wire.TypeParams, s.proxy.PublicParams()
	case wire.TypeRegisterList:
		var req wire.RegisterListRequest
		if err := env.Decode(&req); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		if req.List == nil {
			return wire.TypeError, wire.ErrorResponse{Message: "missing POC list"}
		}
		if err := s.proxy.RegisterList(req.TaskID, req.List); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		return wire.TypeAck, nil
	case wire.TypeQueryPath:
		var req wire.QueryPathRequest
		if err := env.Decode(&req); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		result, err := s.proxy.QueryPath(req.Product, core.Quality(req.Quality))
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		return wire.TypePathResult, wire.EncodePathResult(result)
	case wire.TypeScores:
		return wire.TypeScoreTable, wire.ScoreTable{Scores: s.proxy.Ledger().Scores()}
	case wire.TypeAuditLog:
		head, count := s.proxy.Ledger().Head()
		return wire.TypeAuditChain, wire.AuditChain{
			Entries: s.proxy.Ledger().AuditLog(),
			Head:    head[:],
			Count:   count,
		}
	default:
		return wire.TypeError, wire.ErrorResponse{Message: "unknown message type " + env.Type}
	}
}

// ProxyClient reaches a remote proxy.
type ProxyClient struct {
	addr    string
	timeout time.Duration
}

// NewProxyClient creates a client for a proxy address.
func NewProxyClient(addr string) *ProxyClient {
	return &ProxyClient{addr: addr, timeout: DefaultTimeout}
}

// GetParams fetches and rehydrates the public parameter ps.
func (c *ProxyClient) GetParams() (*poc.PublicParams, error) {
	env, err := exchange(c.addr, c.timeout, wire.TypeGetParams, struct{}{})
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypeParams {
		return nil, remoteError(env)
	}
	var ps poc.PublicParams
	if err := env.Decode(&ps); err != nil {
		return nil, err
	}
	if err := ps.Rehydrate(); err != nil {
		return nil, fmt.Errorf("node: rehydrating params: %w", err)
	}
	return &ps, nil
}

// RegisterList submits a POC list on behalf of an initial participant.
func (c *ProxyClient) RegisterList(taskID string, list *poc.List) error {
	env, err := exchange(c.addr, c.timeout, wire.TypeRegisterList,
		wire.RegisterListRequest{TaskID: taskID, List: list})
	if err != nil {
		return err
	}
	if env.Type != wire.TypeAck {
		return remoteError(env)
	}
	return nil
}

// QueryPath runs a full product path query at the proxy.
func (c *ProxyClient) QueryPath(id poc.ProductID, quality core.Quality) (*core.Result, error) {
	env, err := exchange(c.addr, c.timeout, wire.TypeQueryPath,
		wire.QueryPathRequest{Product: id, Quality: int(quality)})
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypePathResult {
		return nil, remoteError(env)
	}
	var result wire.PathResult
	if err := env.Decode(&result); err != nil {
		return nil, err
	}
	return wire.DecodePathResult(&result), nil
}

// Scores fetches the public reputation table.
func (c *ProxyClient) Scores() (map[poc.ParticipantID]float64, error) {
	env, err := exchange(c.addr, c.timeout, wire.TypeScores, struct{}{})
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypeScoreTable {
		return nil, remoteError(env)
	}
	var table wire.ScoreTable
	if err := env.Decode(&table); err != nil {
		return nil, err
	}
	return table.Scores, nil
}

// AuditLog fetches the proxy's chained score history and verifies it
// end-to-end before returning it — a customer-side audit in one call.
func (c *ProxyClient) AuditLog() ([]reputation.AuditEntry, error) {
	env, err := exchange(c.addr, c.timeout, wire.TypeAuditLog, struct{}{})
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypeAuditChain {
		return nil, remoteError(env)
	}
	var chain wire.AuditChain
	if err := env.Decode(&chain); err != nil {
		return nil, err
	}
	var head [32]byte
	if len(chain.Head) != len(head) {
		return nil, fmt.Errorf("node: malformed audit head (%d bytes)", len(chain.Head))
	}
	copy(head[:], chain.Head)
	if err := reputation.VerifyAuditChain(chain.Entries, head, chain.Count); err != nil {
		return nil, fmt.Errorf("node: proxy published a broken audit chain: %w", err)
	}
	return chain.Entries, nil
}

// exchange performs one dial-request-response cycle.
func exchange(addr string, timeout time.Duration, msgType string, payload any) (*wire.Envelope, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("node: dialing %s: %w", addr, err)
	}
	defer func() {
		if cerr := conn.Close(); cerr != nil {
			_ = cerr // response already in hand
		}
	}()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, fmt.Errorf("node: setting deadline: %w", err)
	}
	if err := wire.WriteMessage(conn, msgType, payload); err != nil {
		return nil, err
	}
	return wire.ReadMessage(conn)
}

// remoteError converts an unexpected envelope into an error.
func remoteError(env *wire.Envelope) error {
	if env.Type == wire.TypeError {
		var er wire.ErrorResponse
		if err := env.Decode(&er); err == nil {
			return fmt.Errorf("node: remote error: %s", er.Message)
		}
	}
	return fmt.Errorf("node: unexpected response type %q", env.Type)
}
