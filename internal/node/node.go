// Package node deploys DE-Sword over TCP: a proxy server, participant
// servers, and pooled persistent clients. The same protocol logic as the
// in-process engine runs here — node.ResponderClient implements
// core.Responder, so a core.Proxy can drive remote participants, and
// node.ProxyServer exposes the proxy to applications and initial
// participants. Clients draw connections from a per-endpoint Pool (reuse,
// retry with backoff, endpoint health fast-fail); see pool.go.
package node

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"desword/internal/core"
	"desword/internal/events"
	"desword/internal/obs"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/telemetry"
	"desword/internal/trace"
	"desword/internal/wire"
)

// DefaultTimeout bounds each dial and each request/response exchange.
const DefaultTimeout = 10 * time.Second

// DefaultDrainGrace bounds how long Close waits for in-flight connections to
// finish before force-closing them.
const DefaultDrainGrace = 5 * time.Second

// ErrServerClosed reports use of a closed server.
var ErrServerClosed = errors.New("node: server closed")

// options collects the tunables shared by clients and servers.
type options struct {
	timeout    time.Duration
	drainGrace time.Duration
	eventSink  *events.Sink

	// Admission control (servers only); see WithAdmission.
	admissionWorkers int
	admissionQueue   int

	// Pooled-transport tunables (clients only).
	pooled        bool
	poolSize      int
	idleTimeout   time.Duration
	retries       int
	backoff       time.Duration
	failThreshold int
	cooldown      time.Duration
}

// Option configures a client or server.
type Option func(*options)

// WithTimeout sets the per-attempt dial/IO timeout (clients) and the
// per-request read/write deadline (servers). Non-positive values keep the
// default.
func WithTimeout(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.timeout = d
		}
	}
}

// WithDrainGrace sets how long a server's Close waits for in-flight
// connections before force-closing them. Non-positive values keep the
// default.
func WithDrainGrace(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.drainGrace = d
		}
	}
}

// WithEventSink makes a server emit one node_request wide event per handled
// request into the flight recorder (servers only; clients ignore it).
func WithEventSink(s *events.Sink) Option {
	return func(o *options) { o.eventSink = s }
}

// WithAdmission puts a bounded admission gate in front of a server's request
// handling: at most workers requests run at once, at most queue more wait
// (negative queue = no waiting room, 0 = 2×workers), and requests that
// provably cannot meet their deadline are shed immediately with a load_shed
// outcome instead of queueing into a timeout. Servers only; the default (no
// call) admits everything, the historical behaviour.
func WithAdmission(workers, queue int) Option {
	return func(o *options) {
		if workers <= 0 {
			workers = core.DefaultAdmissionWorkers
		}
		o.admissionWorkers = workers
		o.admissionQueue = queue
	}
}

// WithPoolSize bounds the open connections a client keeps per endpoint.
// Non-positive values keep the default.
func WithPoolSize(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.poolSize = n
		}
	}
}

// WithIdleTimeout sets how long a pooled connection may sit idle before it
// is reaped instead of reused. Keep it below the server-side timeout, or
// reuse will mostly find connections the server already closed.
// Non-positive values keep the default.
func WithIdleTimeout(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.idleTimeout = d
		}
	}
}

// WithRetries sets how many times a failed exchange is retried after the
// first attempt (0 disables retries). Negative values keep the default.
func WithRetries(n int) Option {
	return func(o *options) {
		if n >= 0 {
			o.retries = n
		}
	}
}

// WithRetryBackoff sets the sleep before the first retry; it doubles per
// attempt. Non-positive values keep the default.
func WithRetryBackoff(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.backoff = d
		}
	}
}

// WithFailThreshold sets how many consecutive transport failures mark an
// endpoint down (fail-fast). Non-positive values keep the default.
func WithFailThreshold(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.failThreshold = n
		}
	}
}

// WithCooldown sets how long a down endpoint fails fast before the next
// real dial is attempted. Non-positive values keep the default.
func WithCooldown(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.cooldown = d
		}
	}
}

// WithDialPerRequest disables connection reuse: every exchange dials a
// fresh connection and closes it afterwards, reproducing the historical
// transport. Kept for A/B measurement (desword-bench -exp transport) and as
// an escape hatch behind middleboxes that dislike long-lived connections.
func WithDialPerRequest() Option {
	return func(o *options) { o.pooled = false }
}

func applyOptions(opts []Option) options {
	o := options{
		timeout:       DefaultTimeout,
		drainGrace:    DefaultDrainGrace,
		pooled:        true,
		poolSize:      DefaultPoolSize,
		idleTimeout:   DefaultIdleTimeout,
		retries:       DefaultRetries,
		backoff:       DefaultRetryBackoff,
		failThreshold: DefaultFailThreshold,
		cooldown:      DefaultCooldown,
	}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// server is the shared accept-loop machinery.
type server struct {
	ln      net.Listener
	opts    options
	role    string
	metrics *serverMetrics
	gate    *core.Gate // nil unless WithAdmission: nil admits everything

	// baseCtx is the root of every request handler's context, derived from
	// the ctx the caller handed to ServeParticipant/ServeProxy and canceled
	// by Close. Minting context.Background() per request would detach
	// handlers from the process lifetime (desword/ctxfirst).
	baseCtx    context.Context
	baseCancel context.CancelFunc

	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]*connState
}

// connState tracks whether a connection is mid-request. Close cuts idle
// connections immediately — persistent clients park idle keep-alive
// connections here, and waiting out the drain grace for them would stall
// every shutdown — while busy ones get the grace to finish.
type connState struct {
	busy bool
}

func (s *server) start(ctx context.Context, ln net.Listener, role string, o options, handle func(context.Context, *wire.Envelope) (string, any)) {
	s.ln = ln
	s.opts = o
	s.role = role
	s.baseCtx, s.baseCancel = context.WithCancel(ctx)
	s.metrics = newServerMetrics(role)
	if o.admissionWorkers > 0 {
		s.gate = core.NewGate("node_"+role, o.admissionWorkers, o.admissionQueue)
	}
	s.conns = make(map[net.Conn]*connState)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			if !s.track(conn) {
				// Close raced the accept: drop the connection.
				_ = conn.Close()
				return
			}
			s.metrics.conns.Inc()
			s.metrics.inflight.Inc()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer s.metrics.inflight.Dec()
				defer s.untrack(conn)
				s.serveConn(conn, handle)
			}()
		}
	}()
}

// track registers a live connection; it reports false when the server is
// already closed.
func (s *server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = &connState{}
	return true
}

// markBusy flags a connection as mid-request; it reports false when the
// server already cut the connection (Close raced the read), in which case the
// request is dropped — the framing guarantees the peer sees a broken
// connection, and idempotent clients retry elsewhere.
func (s *server) markBusy(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.conns[conn]
	if !ok {
		return false
	}
	st.busy = true
	return true
}

// markIdle flags a connection as between requests; it reports whether the
// server is closing, in which case the serve loop should exit instead of
// waiting for another request that would stall the drain.
func (s *server) markIdle(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.conns[conn]; ok {
		st.busy = false
	}
	return s.closed
}

// untrack closes and forgets a connection.
func (s *server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	if cerr := conn.Close(); cerr != nil {
		_ = cerr // already answering or tearing down
	}
}

// serveConn answers framed requests on one connection until the peer hangs
// up or sends garbage. A request envelope carrying trace context continues
// the caller's distributed trace: the handler runs under a local root span,
// the completed local fragment (handler, proof generation, …) rides back to
// the caller on the response envelope, and the request is logged with the
// trace id via the context-aware slog handler.
func (s *server) serveConn(conn net.Conn, handle func(context.Context, *wire.Envelope) (string, any)) {
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.opts.timeout)); err != nil {
			return
		}
		env, err := wire.ReadMessage(conn)
		if err != nil {
			// A clean hang-up between requests, the idle-reap read deadline,
			// and a shutdown cutting the idle connection are the normal ends
			// of a keep-alive exchange, not errors.
			var nerr net.Error
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) &&
				!(errors.As(err, &nerr) && nerr.Timeout()) {
				s.metrics.errRead.Inc()
			}
			return
		}
		if !s.markBusy(conn) {
			return // Close cut this connection as the request arrived
		}
		start := time.Now()
		ctx := s.baseCtx
		var span *trace.Span
		if traceID, spanID := env.TraceContext(); traceID != "" {
			ctx, span = trace.Default.StartRemote(ctx, "server."+env.Type, traceID, spanID,
				trace.String("role", s.role), trace.String("peer", conn.RemoteAddr().String()))
		}
		// With a flight recorder attached, a per-request scope attributes
		// handler-side resource counters (participant proof-cache hits, …) to
		// this request's node_request event. A proxy's query_path handler
		// installs its own, innermost scope for the query event.
		var reqScope *events.Scope
		if s.opts.eventSink != nil {
			reqScope = events.NewScope()
			ctx = events.WithScope(ctx, reqScope)
		}
		// Admission: with a gate configured, the handler runs under a real
		// deadline (the server's request timeout) so the gate's
		// deadline-aware drop has something to predict against, and overload
		// is answered with a cheap load_shed error instead of a queued
		// timeout. Without a gate this is one nil check.
		var respType string
		var payload any
		var shed bool
		handlerCtx, cancel := ctx, context.CancelFunc(nil)
		if s.gate != nil {
			handlerCtx, cancel = context.WithTimeout(ctx, s.opts.timeout)
		}
		if release, aerr := s.gate.Acquire(handlerCtx); aerr != nil {
			shed = true
			respType, payload = wire.TypeError, wire.ErrorResponse{Message: aerr.Error()}
			span.SetAttr(trace.Bool("load_shed", true))
		} else {
			respType, payload = handle(handlerCtx, env)
			release()
			if respType == wire.TypeError {
				s.metrics.errHandle.Inc()
				span.SetAttr(trace.Bool("error", true))
			}
		}
		if cancel != nil {
			cancel()
		}
		if s.opts.eventSink != nil {
			s.emitRequestEvent(env, conn, span, respType, payload, reqScope, start, shed)
		}
		if span != nil {
			slog.InfoContext(ctx, "traced request handled",
				"role", s.role, "type", env.Type, "resp", respType,
				"elapsed", time.Since(start))
		}
		if err := conn.SetWriteDeadline(time.Now().Add(s.opts.timeout)); err != nil {
			span.End()
			return
		}
		respEnv, err := wire.NewEnvelope(respType, payload)
		if err != nil {
			span.End()
			s.metrics.errWrite.Inc()
			return
		}
		// Echo the request id so pooled clients can verify the response
		// belongs to their request; requests without one (old peers) get
		// none back.
		respEnv.ReqID = env.RequestID()
		// End the handler span before draining so the fragment shipped to
		// the caller includes it; the local recorder keeps a copy too.
		span.End()
		if span != nil {
			respEnv.TraceID = span.TraceID()
			respEnv.SpanID = span.SpanID()
			respEnv.Spans = span.Drain()
		}
		if err := wire.WriteEnvelope(conn, respEnv); err != nil {
			s.metrics.errWrite.Inc()
			return
		}
		// Traced requests attach their trace id to the latency observation,
		// so a slow quantile on statusz links straight to its trace.
		s.metrics.requestLatency(env.Type).ObserveWithExemplar(
			time.Since(start).Seconds(), span.TraceID())
		if s.markIdle(conn) {
			return // server closing: deliver the response, then hang up
		}
	}
}

// emitRequestEvent records one handled request as a node_request wide event:
// message type, peer, outcome, duration, and whatever resource counters the
// handler accumulated in the request scope.
func (s *server) emitRequestEvent(env *wire.Envelope, conn net.Conn, span *trace.Span, respType string, payload any, scope *events.Scope, start time.Time, shed bool) {
	ev := events.New(events.KindNodeRequest, start)
	ev.DurationUS = time.Since(start).Microseconds()
	ev.MsgType = env.Type
	ev.Peer = conn.RemoteAddr().String()
	ev.TraceID = span.TraceID()
	switch {
	case shed:
		// Admission control rejected the request before it ran: overload,
		// not failure — dashboards must tell the two apart.
		ev.Outcome = events.OutcomeLoadShed
		if er, ok := payload.(wire.ErrorResponse); ok {
			ev.Error = er.Message
		}
	case respType == wire.TypeError:
		ev.Outcome = events.OutcomeError
		if er, ok := payload.(wire.ErrorResponse); ok {
			ev.Error = er.Message
		}
	default:
		ev.Outcome = events.OutcomeOK
	}
	scope.Fill(ev)
	s.opts.eventSink.Emit(ev)
}

// Addr returns the server's listen address.
func (s *server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and drains in-flight connections, waiting up to the
// drain grace before force-closing whatever is still open. It is idempotent:
// every call (including concurrent ones) waits for the drain and returns
// without error.
func (s *server) Close() error {
	if s.baseCancel != nil {
		// Cancel the handler root context once the drain completes: in-flight
		// requests get the full drain grace, but anything still holding the
		// context afterwards observes cancellation.
		defer s.baseCancel()
	}
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	// Cut idle connections immediately: pooled clients park keep-alive
	// connections between requests, and only in-flight work deserves the
	// drain grace. Forgetting them here makes markBusy drop a request whose
	// read raced the cut.
	for conn, st := range s.conns {
		if !st.busy {
			_ = conn.Close()
			delete(s.conns, conn)
		}
	}
	s.mu.Unlock()
	var err error
	if !alreadyClosed {
		err = s.ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.opts.drainGrace):
		// Grace expired: cut the remaining connections so their serve
		// goroutines unblock, then wait for them to exit.
		s.mu.Lock()
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}

// ParticipantServer exposes one participant endpoint (honest member or
// adversary wrapper) over TCP.
type ParticipantServer struct {
	server
	responder core.Responder
}

// ServeParticipant listens on addr (use "127.0.0.1:0" for an ephemeral port)
// and serves query interactions against the responder. ctx is the root of
// every request handler's context: cancel it (or Close the server) to tear
// the endpoint down.
func ServeParticipant(ctx context.Context, addr string, responder core.Responder, opts ...Option) (*ParticipantServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: listening on %s: %w", addr, err)
	}
	s := &ParticipantServer{responder: responder}
	s.start(ctx, ln, "participant", applyOptions(opts), s.handle)
	return s, nil
}

func (s *ParticipantServer) handle(ctx context.Context, env *wire.Envelope) (string, any) {
	switch env.Type {
	case wire.TypeTelemetry:
		return wire.TypeTelemetrySnapshot, telemetry.TakeSnapshot(obs.Default, s.role)
	case wire.TypeQuery:
		var req wire.QueryRequest
		if err := env.Decode(&req); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		resp, err := s.responder.Query(ctx, req.TaskID, req.Product, core.Quality(req.Quality))
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		encoded, err := wire.EncodeResponse(resp)
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		return wire.TypeResponse, encoded
	case wire.TypeDemandOwnership:
		var req wire.DemandRequest
		if err := env.Decode(&req); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		resp, err := s.responder.DemandOwnership(ctx, req.TaskID, req.Product)
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		encoded, err := wire.EncodeResponse(resp)
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		return wire.TypeResponse, encoded
	default:
		return wire.TypeError, wire.ErrorResponse{Message: "unknown message type " + env.Type}
	}
}

// ResponderClient reaches a remote participant; it implements
// core.Responder, so the proxy's resolver can hand it straight to the
// protocol engine. It draws connections from a persistent per-endpoint pool;
// see Pool for the reuse, retry, and health semantics.
type ResponderClient struct {
	pool *Pool
}

// NewResponderClient creates a client for one participant address.
func NewResponderClient(addr string, opts ...Option) *ResponderClient {
	return &ResponderClient{pool: NewPool(addr, opts...)}
}

var _ core.Responder = (*ResponderClient)(nil)

// Pool exposes the client's transport pool for stats and tuning.
func (c *ResponderClient) Pool() *Pool { return c.pool }

// Close releases the client's pooled connections.
func (c *ResponderClient) Close() error { return c.pool.Close() }

// Query implements core.Responder over TCP.
func (c *ResponderClient) Query(ctx context.Context, taskID string, id poc.ProductID, quality core.Quality) (*core.Response, error) {
	return c.roundTrip(ctx, wire.TypeQuery, wire.QueryRequest{
		TaskID: taskID, Product: id, Quality: int(quality),
	})
}

// DemandOwnership implements core.Responder over TCP.
func (c *ResponderClient) DemandOwnership(ctx context.Context, taskID string, id poc.ProductID) (*core.Response, error) {
	return c.roundTrip(ctx, wire.TypeDemandOwnership, wire.DemandRequest{
		TaskID: taskID, Product: id,
	})
}

func (c *ResponderClient) roundTrip(ctx context.Context, msgType string, payload any) (*core.Response, error) {
	env, err := c.pool.Exchange(ctx, msgType, payload)
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypeResponse {
		return nil, remoteError(env)
	}
	var resp wire.QueryResponse
	if err := env.Decode(&resp); err != nil {
		return nil, err
	}
	return wire.DecodeResponse(&resp)
}

// Telemetry fetches a snapshot of the remote participant's metrics registry.
func (c *ResponderClient) Telemetry(ctx context.Context) (*telemetry.Snapshot, error) {
	return fetchTelemetry(ctx, c.pool)
}

// fetchTelemetry runs the idempotent telemetry exchange over a pool.
func fetchTelemetry(ctx context.Context, p *Pool) (*telemetry.Snapshot, error) {
	env, err := p.Exchange(ctx, wire.TypeTelemetry, struct{}{})
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypeTelemetrySnapshot {
		return nil, remoteError(env)
	}
	var snap telemetry.Snapshot
	if err := env.Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// DirectoryResolver builds a core.Resolver from a participant→address map.
// Options (e.g. WithTimeout, WithPoolSize) apply to every client it creates.
// One client — and therefore one connection pool — is cached per address, so
// repeated resolutions of the same participant across queries reuse its live
// connections instead of redialing. Call Close on the returned Directory to
// release the pools.
func DirectoryResolver(dir map[poc.ParticipantID]string, opts ...Option) *Directory {
	d := &Directory{
		dir:     dir,
		opts:    opts,
		clients: make(map[string]*ResponderClient),
	}
	return d
}

// Directory is an address-book resolver that caches one pooled client per
// participant address. Safe for concurrent use.
type Directory struct {
	dir  map[poc.ParticipantID]string
	opts []Option

	mu      sync.Mutex
	clients map[string]*ResponderClient
}

// Resolve returns the cached client for a participant, creating it on first
// use. It satisfies core.Resolver via Directory.Resolver.
func (d *Directory) Resolve(v poc.ParticipantID) (core.Responder, error) {
	addr, ok := d.dir[v]
	if !ok {
		return nil, fmt.Errorf("node: no address for participant %s", v)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.clients[addr]
	if !ok {
		c = NewResponderClient(addr, d.opts...)
		d.clients[addr] = c
	}
	return c, nil
}

// Resolver adapts the directory to the core.Resolver function type.
func (d *Directory) Resolver() core.Resolver { return d.Resolve }

// Client returns the cached pooled client for an address, if one exists —
// handy for inspecting Pool.Stats in tests and benches.
func (d *Directory) Client(addr string) *ResponderClient {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clients[addr]
}

// Close releases every cached client's pooled connections.
func (d *Directory) Close() error {
	d.mu.Lock()
	clients := make([]*ResponderClient, 0, len(d.clients))
	for _, c := range d.clients {
		clients = append(clients, c)
	}
	d.mu.Unlock()
	for _, c := range clients {
		_ = c.Close()
	}
	return nil
}

// ProxyServer exposes a core.Proxy over TCP to applications and initial
// participants.
type ProxyServer struct {
	server
	proxy *core.Proxy
}

// ServeProxy listens on addr and serves the proxy protocol. ctx is the
// root of every request handler's context: cancel it (or Close the server)
// to tear the endpoint down.
func ServeProxy(ctx context.Context, addr string, proxy *core.Proxy, opts ...Option) (*ProxyServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: listening on %s: %w", addr, err)
	}
	s := &ProxyServer{proxy: proxy}
	s.start(ctx, ln, "proxy", applyOptions(opts), s.handle)
	return s, nil
}

func (s *ProxyServer) handle(ctx context.Context, env *wire.Envelope) (string, any) {
	switch env.Type {
	case wire.TypeTelemetry:
		return wire.TypeTelemetrySnapshot, telemetry.TakeSnapshot(obs.Default, s.role)
	case wire.TypeGetParams:
		return wire.TypeParams, s.proxy.PublicParams()
	case wire.TypeRegisterList:
		var req wire.RegisterListRequest
		if err := env.Decode(&req); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		if req.List == nil {
			return wire.TypeError, wire.ErrorResponse{Message: "missing POC list"}
		}
		if err := s.proxy.RegisterList(req.TaskID, req.List); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		return wire.TypeAck, nil
	case wire.TypeQueryPath:
		var req wire.QueryPathRequest
		if err := env.Decode(&req); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		result, err := s.proxy.QueryPath(ctx, req.Product, core.Quality(req.Quality))
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		return wire.TypePathResult, wire.EncodePathResult(result)
	case wire.TypeQueryPathBatch:
		var req wire.QueryPathBatchRequest
		if err := env.Decode(&req); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		if req.Schema > wire.BatchSchemaVersion {
			return wire.TypeError, wire.ErrorResponse{Message: fmt.Sprintf(
				"batch schema %d newer than supported %d", req.Schema, wire.BatchSchemaVersion)}
		}
		result, err := s.proxy.QueryPathBatch(ctx, req.Products, core.Quality(req.Quality), core.BatchOptions{})
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		return wire.TypeBatchResult, wire.EncodeBatchResult(result)
	case wire.TypeScores:
		return wire.TypeScoreTable, wire.ScoreTable{Scores: s.proxy.Scores()}
	case wire.TypeAuditLog:
		return wire.TypeAuditChain, encodeAuditChains(s.proxy.AuditShards())
	default:
		return wire.TypeError, wire.ErrorResponse{Message: "unknown message type " + env.Type}
	}
}

// encodeAuditChains renders the proxy's shard ledgers in the wire form.
// One shard emits the legacy single-chain encoding unchanged; more shards
// emit per-shard chains with the top level pinning only the total count, so
// a pre-shard verifier fails loudly instead of accepting an empty history
// (see wire.AuditChain).
func encodeAuditChains(shards []reputation.ShardChain) wire.AuditChain {
	if len(shards) == 1 {
		return wire.AuditChain{
			Entries: shards[0].Entries,
			Head:    shards[0].Head[:],
			Count:   shards[0].Count,
		}
	}
	out := wire.AuditChain{Head: make([]byte, 32), Shards: make([]wire.AuditChain, len(shards))}
	for i, sc := range shards {
		out.Count += sc.Count
		out.Shards[i] = wire.AuditChain{Entries: sc.Entries, Head: sc.Head[:], Count: sc.Count}
	}
	return out
}

// ProxyClient reaches a remote proxy through a persistent connection pool;
// see Pool for the reuse, retry, and health semantics.
type ProxyClient struct {
	pool *Pool
}

// NewProxyClient creates a client for a proxy address.
func NewProxyClient(addr string, opts ...Option) *ProxyClient {
	return &ProxyClient{pool: NewPool(addr, opts...)}
}

// Pool exposes the client's transport pool for stats and tuning.
func (c *ProxyClient) Pool() *Pool { return c.pool }

// Close releases the client's pooled connections.
func (c *ProxyClient) Close() error { return c.pool.Close() }

// GetParams fetches and rehydrates the public parameter ps.
func (c *ProxyClient) GetParams(ctx context.Context) (*poc.PublicParams, error) {
	env, err := c.pool.Exchange(ctx, wire.TypeGetParams, struct{}{})
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypeParams {
		return nil, remoteError(env)
	}
	var ps poc.PublicParams
	if err := env.Decode(&ps); err != nil {
		return nil, err
	}
	if err := ps.Rehydrate(); err != nil {
		return nil, fmt.Errorf("node: rehydrating params: %w", err)
	}
	return &ps, nil
}

// RegisterList submits a POC list on behalf of an initial participant.
func (c *ProxyClient) RegisterList(ctx context.Context, taskID string, list *poc.List) error {
	env, err := c.pool.Exchange(ctx, wire.TypeRegisterList,
		wire.RegisterListRequest{TaskID: taskID, List: list})
	if err != nil {
		return err
	}
	if env.Type != wire.TypeAck {
		return remoteError(env)
	}
	return nil
}

// QueryPath runs a full product path query at the proxy. When ctx carries an
// active trace span, the proxy continues the same trace; either way, the
// returned result names the proxy-side trace id when the query was sampled.
func (c *ProxyClient) QueryPath(ctx context.Context, id poc.ProductID, quality core.Quality) (*core.Result, error) {
	env, err := c.pool.Exchange(ctx, wire.TypeQueryPath,
		wire.QueryPathRequest{Product: id, Quality: int(quality)})
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypePathResult {
		return nil, remoteError(env)
	}
	var result wire.PathResult
	if err := env.Decode(&result); err != nil {
		return nil, err
	}
	return wire.DecodePathResult(&result), nil
}

// QueryPathBatch runs one path query per product id at the proxy with
// partial-failure semantics: the call errors only when the batch as a whole
// could not run; per-id failures and load sheds land on their BatchItem.
// Quality applies to the whole batch.
func (c *ProxyClient) QueryPathBatch(ctx context.Context, ids []poc.ProductID, quality core.Quality) (*core.BatchResult, error) {
	env, err := c.pool.Exchange(ctx, wire.TypeQueryPathBatch, wire.QueryPathBatchRequest{
		Schema:   wire.BatchSchemaVersion,
		Products: ids,
		Quality:  int(quality),
	})
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypeBatchResult {
		return nil, remoteError(env)
	}
	var result wire.BatchResult
	if err := env.Decode(&result); err != nil {
		return nil, err
	}
	if len(result.Items) != len(ids) {
		return nil, fmt.Errorf("node: batch returned %d items for %d products", len(result.Items), len(ids))
	}
	return wire.DecodeBatchResult(&result), nil
}

// Telemetry fetches a snapshot of the remote proxy's metrics registry.
func (c *ProxyClient) Telemetry(ctx context.Context) (*telemetry.Snapshot, error) {
	return fetchTelemetry(ctx, c.pool)
}

// Scores fetches the public reputation table.
func (c *ProxyClient) Scores(ctx context.Context) (map[poc.ParticipantID]float64, error) {
	env, err := c.pool.Exchange(ctx, wire.TypeScores, struct{}{})
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypeScoreTable {
		return nil, remoteError(env)
	}
	var table wire.ScoreTable
	if err := env.Decode(&table); err != nil {
		return nil, err
	}
	return table.Scores, nil
}

// AuditLog fetches the proxy's chained score history and verifies it
// end-to-end before returning it — a customer-side audit in one call.
func (c *ProxyClient) AuditLog(ctx context.Context) ([]reputation.AuditEntry, error) {
	env, err := c.pool.Exchange(ctx, wire.TypeAuditLog, struct{}{})
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypeAuditChain {
		return nil, remoteError(env)
	}
	var chain wire.AuditChain
	if err := env.Decode(&chain); err != nil {
		return nil, err
	}
	// Sharded proxies publish one independent chain per shard ledger; each
	// verifies on its own, the top-level count must pin the total, and the
	// entries come back in shard order (awards are additive, so any
	// concatenation order replays to the same score table).
	if len(chain.Shards) > 0 {
		var total uint64
		var entries []reputation.AuditEntry
		for i, sc := range chain.Shards {
			head, err := auditHead(sc.Head)
			if err != nil {
				return nil, err
			}
			if err := reputation.VerifyAuditChain(sc.Entries, head, sc.Count); err != nil {
				return nil, fmt.Errorf("node: proxy published a broken audit chain (shard %d): %w", i, err)
			}
			total += sc.Count
			entries = append(entries, sc.Entries...)
		}
		if total != chain.Count {
			return nil, fmt.Errorf("node: shard chains carry %d entries, top level pins %d", total, chain.Count)
		}
		return entries, nil
	}
	head, err := auditHead(chain.Head)
	if err != nil {
		return nil, err
	}
	if err := reputation.VerifyAuditChain(chain.Entries, head, chain.Count); err != nil {
		return nil, fmt.Errorf("node: proxy published a broken audit chain: %w", err)
	}
	return chain.Entries, nil
}

// auditHead parses a wire audit head into its fixed-size form.
func auditHead(b []byte) ([32]byte, error) {
	var head [32]byte
	if len(b) != len(head) {
		return head, fmt.Errorf("node: malformed audit head (%d bytes)", len(b))
	}
	copy(head[:], b)
	return head, nil
}

// remoteError converts an unexpected envelope into an error.
func remoteError(env *wire.Envelope) error {
	if env.Type == wire.TypeError {
		var er wire.ErrorResponse
		if err := env.Decode(&er); err == nil {
			return fmt.Errorf("node: remote error: %s", er.Message)
		}
	}
	return fmt.Errorf("node: unexpected response type %q", env.Type)
}
