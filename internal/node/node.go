// Package node deploys DE-Sword over TCP: a proxy server, participant
// servers, and dial-per-request clients. The same protocol logic as the
// in-process engine runs here — node.ResponderClient implements
// core.Responder, so a core.Proxy can drive remote participants, and
// node.ProxyServer exposes the proxy to applications and initial
// participants.
package node

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"desword/internal/core"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/trace"
	"desword/internal/wire"
)

// DefaultTimeout bounds each dial and each request/response exchange.
const DefaultTimeout = 10 * time.Second

// DefaultDrainGrace bounds how long Close waits for in-flight connections to
// finish before force-closing them.
const DefaultDrainGrace = 5 * time.Second

// ErrServerClosed reports use of a closed server.
var ErrServerClosed = errors.New("node: server closed")

// options collects the tunables shared by clients and servers.
type options struct {
	timeout    time.Duration
	drainGrace time.Duration
}

// Option configures a client or server.
type Option func(*options)

// WithTimeout sets the per-exchange dial/IO timeout (clients) and the
// per-request read/write deadline (servers). Non-positive values keep the
// default.
func WithTimeout(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.timeout = d
		}
	}
}

// WithDrainGrace sets how long a server's Close waits for in-flight
// connections before force-closing them. Non-positive values keep the
// default.
func WithDrainGrace(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.drainGrace = d
		}
	}
}

func applyOptions(opts []Option) options {
	o := options{timeout: DefaultTimeout, drainGrace: DefaultDrainGrace}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// server is the shared accept-loop machinery.
type server struct {
	ln      net.Listener
	opts    options
	role    string
	metrics *serverMetrics

	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

func (s *server) start(ln net.Listener, role string, o options, handle func(context.Context, *wire.Envelope) (string, any)) {
	s.ln = ln
	s.opts = o
	s.role = role
	s.metrics = newServerMetrics(role)
	s.conns = make(map[net.Conn]struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			if !s.track(conn) {
				// Close raced the accept: drop the connection.
				_ = conn.Close()
				return
			}
			s.metrics.conns.Inc()
			s.metrics.inflight.Inc()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer s.metrics.inflight.Dec()
				defer s.untrack(conn)
				s.serveConn(conn, handle)
			}()
		}
	}()
}

// track registers a live connection; it reports false when the server is
// already closed.
func (s *server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

// untrack closes and forgets a connection.
func (s *server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	if cerr := conn.Close(); cerr != nil {
		_ = cerr // already answering or tearing down
	}
}

// serveConn answers framed requests on one connection until the peer hangs
// up or sends garbage. A request envelope carrying trace context continues
// the caller's distributed trace: the handler runs under a local root span,
// the completed local fragment (handler, proof generation, …) rides back to
// the caller on the response envelope, and the request is logged with the
// trace id via the context-aware slog handler.
func (s *server) serveConn(conn net.Conn, handle func(context.Context, *wire.Envelope) (string, any)) {
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.opts.timeout)); err != nil {
			return
		}
		env, err := wire.ReadMessage(conn)
		if err != nil {
			// A clean hang-up between requests and the idle-reap read
			// deadline are the normal ends of a dial-per-request exchange,
			// not errors.
			var nerr net.Error
			if !errors.Is(err, io.EOF) && !(errors.As(err, &nerr) && nerr.Timeout()) {
				s.metrics.errRead.Inc()
			}
			return
		}
		start := time.Now()
		ctx := context.Background()
		var span *trace.Span
		if traceID, spanID := env.TraceContext(); traceID != "" {
			ctx, span = trace.Default.StartRemote(ctx, "server."+env.Type, traceID, spanID,
				trace.String("role", s.role), trace.String("peer", conn.RemoteAddr().String()))
		}
		respType, payload := handle(ctx, env)
		if respType == wire.TypeError {
			s.metrics.errHandle.Inc()
			span.SetAttr(trace.Bool("error", true))
		}
		if span != nil {
			slog.InfoContext(ctx, "traced request handled",
				"role", s.role, "type", env.Type, "resp", respType,
				"elapsed", time.Since(start))
		}
		if err := conn.SetWriteDeadline(time.Now().Add(s.opts.timeout)); err != nil {
			span.End()
			return
		}
		respEnv, err := wire.NewEnvelope(respType, payload)
		if err != nil {
			span.End()
			s.metrics.errWrite.Inc()
			return
		}
		// End the handler span before draining so the fragment shipped to
		// the caller includes it; the local recorder keeps a copy too.
		span.End()
		if span != nil {
			respEnv.TraceID = span.TraceID()
			respEnv.SpanID = span.SpanID()
			respEnv.Spans = span.Drain()
		}
		if err := wire.WriteEnvelope(conn, respEnv); err != nil {
			s.metrics.errWrite.Inc()
			return
		}
		s.metrics.requestLatency(env.Type).ObserveSince(start)
	}
}

// Addr returns the server's listen address.
func (s *server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and drains in-flight connections, waiting up to the
// drain grace before force-closing whatever is still open. It is idempotent:
// every call (including concurrent ones) waits for the drain and returns
// without error.
func (s *server) Close() error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	var err error
	if !alreadyClosed {
		err = s.ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.opts.drainGrace):
		// Grace expired: cut the remaining connections so their serve
		// goroutines unblock, then wait for them to exit.
		s.mu.Lock()
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}

// ParticipantServer exposes one participant endpoint (honest member or
// adversary wrapper) over TCP.
type ParticipantServer struct {
	server
	responder core.Responder
}

// ServeParticipant listens on addr (use "127.0.0.1:0" for an ephemeral port)
// and serves query interactions against the responder.
func ServeParticipant(addr string, responder core.Responder, opts ...Option) (*ParticipantServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: listening on %s: %w", addr, err)
	}
	s := &ParticipantServer{responder: responder}
	s.start(ln, "participant", applyOptions(opts), s.handle)
	return s, nil
}

func (s *ParticipantServer) handle(ctx context.Context, env *wire.Envelope) (string, any) {
	switch env.Type {
	case wire.TypeQuery:
		var req wire.QueryRequest
		if err := env.Decode(&req); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		resp, err := s.responder.Query(ctx, req.TaskID, req.Product, core.Quality(req.Quality))
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		encoded, err := wire.EncodeResponse(resp)
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		return wire.TypeResponse, encoded
	case wire.TypeDemandOwnership:
		var req wire.DemandRequest
		if err := env.Decode(&req); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		resp, err := s.responder.DemandOwnership(ctx, req.TaskID, req.Product)
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		encoded, err := wire.EncodeResponse(resp)
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		return wire.TypeResponse, encoded
	default:
		return wire.TypeError, wire.ErrorResponse{Message: "unknown message type " + env.Type}
	}
}

// ResponderClient reaches a remote participant; it implements
// core.Responder, so the proxy's resolver can hand it straight to the
// protocol engine.
type ResponderClient struct {
	addr    string
	timeout time.Duration
}

// NewResponderClient creates a client for one participant address.
func NewResponderClient(addr string, opts ...Option) *ResponderClient {
	o := applyOptions(opts)
	return &ResponderClient{addr: addr, timeout: o.timeout}
}

var _ core.Responder = (*ResponderClient)(nil)

// Query implements core.Responder over TCP.
func (c *ResponderClient) Query(ctx context.Context, taskID string, id poc.ProductID, quality core.Quality) (*core.Response, error) {
	return c.roundTrip(ctx, wire.TypeQuery, wire.QueryRequest{
		TaskID: taskID, Product: id, Quality: int(quality),
	})
}

// DemandOwnership implements core.Responder over TCP.
func (c *ResponderClient) DemandOwnership(ctx context.Context, taskID string, id poc.ProductID) (*core.Response, error) {
	return c.roundTrip(ctx, wire.TypeDemandOwnership, wire.DemandRequest{
		TaskID: taskID, Product: id,
	})
}

func (c *ResponderClient) roundTrip(ctx context.Context, msgType string, payload any) (*core.Response, error) {
	env, err := exchange(ctx, c.addr, c.timeout, msgType, payload)
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypeResponse {
		return nil, remoteError(env)
	}
	var resp wire.QueryResponse
	if err := env.Decode(&resp); err != nil {
		return nil, err
	}
	return wire.DecodeResponse(&resp)
}

// DirectoryResolver builds a core.Resolver from a participant→address map.
// Options (e.g. WithTimeout) apply to every client it creates.
func DirectoryResolver(dir map[poc.ParticipantID]string, opts ...Option) core.Resolver {
	return func(v poc.ParticipantID) (core.Responder, error) {
		addr, ok := dir[v]
		if !ok {
			return nil, fmt.Errorf("node: no address for participant %s", v)
		}
		return NewResponderClient(addr, opts...), nil
	}
}

// ProxyServer exposes a core.Proxy over TCP to applications and initial
// participants.
type ProxyServer struct {
	server
	proxy *core.Proxy
}

// ServeProxy listens on addr and serves the proxy protocol.
func ServeProxy(addr string, proxy *core.Proxy, opts ...Option) (*ProxyServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: listening on %s: %w", addr, err)
	}
	s := &ProxyServer{proxy: proxy}
	s.start(ln, "proxy", applyOptions(opts), s.handle)
	return s, nil
}

func (s *ProxyServer) handle(ctx context.Context, env *wire.Envelope) (string, any) {
	switch env.Type {
	case wire.TypeGetParams:
		return wire.TypeParams, s.proxy.PublicParams()
	case wire.TypeRegisterList:
		var req wire.RegisterListRequest
		if err := env.Decode(&req); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		if req.List == nil {
			return wire.TypeError, wire.ErrorResponse{Message: "missing POC list"}
		}
		if err := s.proxy.RegisterList(req.TaskID, req.List); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		return wire.TypeAck, nil
	case wire.TypeQueryPath:
		var req wire.QueryPathRequest
		if err := env.Decode(&req); err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		result, err := s.proxy.QueryPath(ctx, req.Product, core.Quality(req.Quality))
		if err != nil {
			return wire.TypeError, wire.ErrorResponse{Message: err.Error()}
		}
		return wire.TypePathResult, wire.EncodePathResult(result)
	case wire.TypeScores:
		return wire.TypeScoreTable, wire.ScoreTable{Scores: s.proxy.Ledger().Scores()}
	case wire.TypeAuditLog:
		head, count := s.proxy.Ledger().Head()
		return wire.TypeAuditChain, wire.AuditChain{
			Entries: s.proxy.Ledger().AuditLog(),
			Head:    head[:],
			Count:   count,
		}
	default:
		return wire.TypeError, wire.ErrorResponse{Message: "unknown message type " + env.Type}
	}
}

// ProxyClient reaches a remote proxy.
type ProxyClient struct {
	addr    string
	timeout time.Duration
}

// NewProxyClient creates a client for a proxy address.
func NewProxyClient(addr string, opts ...Option) *ProxyClient {
	o := applyOptions(opts)
	return &ProxyClient{addr: addr, timeout: o.timeout}
}

// GetParams fetches and rehydrates the public parameter ps.
func (c *ProxyClient) GetParams() (*poc.PublicParams, error) {
	env, err := exchange(context.Background(), c.addr, c.timeout, wire.TypeGetParams, struct{}{})
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypeParams {
		return nil, remoteError(env)
	}
	var ps poc.PublicParams
	if err := env.Decode(&ps); err != nil {
		return nil, err
	}
	if err := ps.Rehydrate(); err != nil {
		return nil, fmt.Errorf("node: rehydrating params: %w", err)
	}
	return &ps, nil
}

// RegisterList submits a POC list on behalf of an initial participant.
func (c *ProxyClient) RegisterList(taskID string, list *poc.List) error {
	env, err := exchange(context.Background(), c.addr, c.timeout, wire.TypeRegisterList,
		wire.RegisterListRequest{TaskID: taskID, List: list})
	if err != nil {
		return err
	}
	if env.Type != wire.TypeAck {
		return remoteError(env)
	}
	return nil
}

// QueryPath runs a full product path query at the proxy. When ctx carries an
// active trace span, the proxy continues the same trace; either way, the
// returned result names the proxy-side trace id when the query was sampled.
func (c *ProxyClient) QueryPath(ctx context.Context, id poc.ProductID, quality core.Quality) (*core.Result, error) {
	env, err := exchange(ctx, c.addr, c.timeout, wire.TypeQueryPath,
		wire.QueryPathRequest{Product: id, Quality: int(quality)})
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypePathResult {
		return nil, remoteError(env)
	}
	var result wire.PathResult
	if err := env.Decode(&result); err != nil {
		return nil, err
	}
	return wire.DecodePathResult(&result), nil
}

// Scores fetches the public reputation table.
func (c *ProxyClient) Scores() (map[poc.ParticipantID]float64, error) {
	env, err := exchange(context.Background(), c.addr, c.timeout, wire.TypeScores, struct{}{})
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypeScoreTable {
		return nil, remoteError(env)
	}
	var table wire.ScoreTable
	if err := env.Decode(&table); err != nil {
		return nil, err
	}
	return table.Scores, nil
}

// AuditLog fetches the proxy's chained score history and verifies it
// end-to-end before returning it — a customer-side audit in one call.
func (c *ProxyClient) AuditLog() ([]reputation.AuditEntry, error) {
	env, err := exchange(context.Background(), c.addr, c.timeout, wire.TypeAuditLog, struct{}{})
	if err != nil {
		return nil, err
	}
	if env.Type != wire.TypeAuditChain {
		return nil, remoteError(env)
	}
	var chain wire.AuditChain
	if err := env.Decode(&chain); err != nil {
		return nil, err
	}
	var head [32]byte
	if len(chain.Head) != len(head) {
		return nil, fmt.Errorf("node: malformed audit head (%d bytes)", len(chain.Head))
	}
	copy(head[:], chain.Head)
	if err := reputation.VerifyAuditChain(chain.Entries, head, chain.Count); err != nil {
		return nil, fmt.Errorf("node: proxy published a broken audit chain: %w", err)
	}
	return chain.Entries, nil
}

// exchange performs one dial-request-response cycle. The connection is
// closed on every path — success and error alike — by the deferred Close.
// When ctx carries an active trace span, the exchange records a wire
// round-trip child span, sends the trace context on the request envelope,
// and grafts the spans the server returns on the response envelope into the
// local trace.
func exchange(ctx context.Context, addr string, timeout time.Duration, msgType string, payload any) (*wire.Envelope, error) {
	ctx, span := trace.Default.StartChild(ctx, "wire."+msgType,
		trace.String("addr", addr))
	env, err := exchangeEnv(ctx, span, addr, timeout, msgType, payload)
	span.SetError(err)
	span.End()
	return env, err
}

func exchangeEnv(ctx context.Context, span *trace.Span, addr string, timeout time.Duration, msgType string, payload any) (*wire.Envelope, error) {
	dialer := net.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: dialing %s: %w", addr, err)
	}
	defer func() {
		if cerr := conn.Close(); cerr != nil {
			_ = cerr // response already in hand
		}
	}()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, fmt.Errorf("node: setting deadline: %w", err)
	}
	req, err := wire.NewEnvelope(msgType, payload)
	if err != nil {
		return nil, err
	}
	req.TraceID = span.TraceID()
	req.SpanID = span.SpanID()
	if err := wire.WriteEnvelope(conn, req); err != nil {
		return nil, err
	}
	resp, err := wire.ReadMessage(conn)
	if err != nil {
		return nil, err
	}
	span.Adopt(resp.Spans)
	return resp, nil
}

// remoteError converts an unexpected envelope into an error.
func remoteError(env *wire.Envelope) error {
	if env.Type == wire.TypeError {
		var er wire.ErrorResponse
		if err := env.Decode(&er); err == nil {
			return fmt.Errorf("node: remote error: %s", er.Message)
		}
	}
	return fmt.Errorf("node: unexpected response type %q", env.Type)
}
