package node

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"desword/internal/core"
	"desword/internal/obs"
	"desword/internal/trace"
	"desword/internal/wire"
)

// syncBuffer lets concurrent server goroutines share one log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logLines decodes the captured JSON log records.
func (b *syncBuffer) logLines(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line %q is not JSON: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// TestNetworkQueryProducesDistributedTrace is the tracing acceptance test: a
// networked path query rooted at the client produces ONE trace whose span
// tree shows the proxy's per-hop timeline with wire round trips, the
// participants' server fragments, and ZK-EDB proof generation/verification —
// retrievable as JSON from /debug/traces/<id> — and the same trace id is
// stamped on proxy-side and participant-side slog output.
func TestNetworkQueryProducesDistributedTrace(t *testing.T) {
	logs := &syncBuffer{}
	oldLogger := slog.Default()
	slog.SetDefault(slog.New(obs.TraceHandler(slog.NewJSONHandler(logs, nil))))
	t.Cleanup(func() { slog.SetDefault(oldLogger) })

	trace.Default.SetSampleRate(1)
	t.Cleanup(func() { trace.Default.SetSampleRate(0) })

	const hops = 3
	d := deploy(t, hops, nil)

	ctx, root := trace.Default.Start(context.Background(), "customer.query")
	result, err := d.client.QueryPath(ctx, d.product, core.Good)
	root.End()
	if err != nil {
		t.Fatalf("QueryPath over TCP: %v", err)
	}

	if result.TraceID == "" {
		t.Fatal("result carries no trace id")
	}
	if !trace.ValidTraceID(result.TraceID) {
		t.Fatalf("result trace id %q is malformed", result.TraceID)
	}
	if result.TraceID != root.TraceID() {
		t.Fatalf("proxy rooted a fresh trace %s instead of continuing the client's %s",
			result.TraceID, root.TraceID())
	}

	td, ok := trace.Default.Recorder().Get(result.TraceID)
	if !ok {
		t.Fatalf("trace %s missing from recorder", result.TraceID)
	}
	count := func(prefix string) int {
		n := 0
		for _, s := range td.Spans {
			if strings.HasPrefix(s.Name, prefix) {
				n++
			}
		}
		return n
	}
	// One query root on the proxy, one identified hop span per participant on
	// the path, at least one wire round trip and one participant-side server
	// fragment per hop, and ZK-EDB proof work on both sides of each hop.
	if got := count("proxy.query_path"); got != 1 {
		t.Fatalf("%d proxy.query_path spans, want 1", got)
	}
	if got := count("hop.identify"); got < hops {
		t.Fatalf("%d hop.identify spans, want >= %d", got, hops)
	}
	if got := count("wire.query"); got < hops {
		t.Fatalf("%d wire.query spans, want >= %d", got, hops)
	}
	if got := count("server.query"); got < hops {
		t.Fatalf("%d participant server spans, want >= %d", got, hops)
	}
	if got := count("member.query"); got < hops {
		t.Fatalf("%d member.query spans, want >= %d", got, hops)
	}
	if got := count("zkedb.prove"); got < hops {
		t.Fatalf("%d zkedb.prove spans, want >= %d", got, hops)
	}
	if got := count("zkedb.verify"); got < hops {
		t.Fatalf("%d zkedb.verify spans, want >= %d", got, hops)
	}

	// The span tree hangs together: the proxy's query root sits under the
	// proxy server's remote-continued span, each hop span carries a wire
	// child, and proof generation nests below the participants' fragments.
	var proxyRoot *trace.SpanNode
	var findQueryPath func(ns []*trace.SpanNode)
	findQueryPath = func(ns []*trace.SpanNode) {
		for _, n := range ns {
			if n.Name == "proxy.query_path" {
				proxyRoot = n
				return
			}
			findQueryPath(n.Children)
		}
	}
	findQueryPath(td.Tree())
	if proxyRoot == nil {
		t.Fatal("proxy.query_path not reachable in the span tree")
	}
	hopsWithWire := 0
	var sawProve bool
	var walk func(n *trace.SpanNode, underHop bool)
	walk = func(n *trace.SpanNode, underHop bool) {
		isHop := n.Name == "hop.identify"
		if isHop {
			for _, c := range n.Children {
				if strings.HasPrefix(c.Name, "wire.") {
					hopsWithWire++
					break
				}
			}
		}
		if n.Name == "zkedb.prove" && underHop {
			sawProve = true
		}
		for _, c := range n.Children {
			walk(c, underHop || isHop)
		}
	}
	walk(proxyRoot, false)
	if hopsWithWire < hops {
		t.Fatalf("%d hop spans carry a wire child, want >= %d", hopsWithWire, hops)
	}
	if !sawProve {
		t.Fatal("no zkedb.prove span nests under a hop span: participant fragments were not grafted")
	}

	// The trace is retrievable from the admin endpoint's /debug/traces/<id>.
	admin := httptest.NewServer(obs.AdminMux(obs.Default))
	defer admin.Close()
	resp, err := http.Get(admin.URL + "/debug/traces/" + result.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s = %d", result.TraceID, resp.StatusCode)
	}
	var detail struct {
		TraceID string            `json:"trace_id"`
		Spans   int               `json:"spans"`
		Tree    []*trace.SpanNode `json:"tree"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatalf("decoding /debug/traces/%s: %v", result.TraceID, err)
	}
	if detail.TraceID != result.TraceID || detail.Spans != len(td.Spans) || len(detail.Tree) == 0 {
		t.Fatalf("explorer detail %+v does not match recorder (want %d spans)", detail, len(td.Spans))
	}

	// The list view names the trace too.
	listResp, err := http.Get(admin.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var summaries []trace.Summary
	if err := json.NewDecoder(listResp.Body).Decode(&summaries); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range summaries {
		if s.TraceID == result.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s missing from /debug/traces list", result.TraceID)
	}

	// Unknown and malformed ids are rejected cleanly.
	for path, want := range map[string]int{
		"/debug/traces/" + strings.Repeat("0", 32): http.StatusNotFound,
		"/debug/traces/NOT-A-TRACE-ID":             http.StatusBadRequest,
	} {
		r, err := admin.Client().Get(admin.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", path, r.StatusCode, want)
		}
	}

	// Both sides of the wire logged under the same trace id.
	roleSawTrace := map[string]bool{}
	for _, rec := range logs.logLines(t) {
		if rec["msg"] != "traced request handled" {
			continue
		}
		if rec["trace_id"] == result.TraceID {
			role, _ := rec["role"].(string)
			roleSawTrace[role] = true
		}
	}
	if !roleSawTrace["proxy"] {
		t.Fatal("no proxy-side log record carries the trace id")
	}
	if !roleSawTrace["participant"] {
		t.Fatal("no participant-side log record carries the trace id")
	}
}

// TestUntracedQueryStaysUntraced pins the rate-0 fast path end to end: with
// sampling off and an untraced client, a networked query records nothing and
// the result carries no trace id.
func TestUntracedQueryStaysUntraced(t *testing.T) {
	before := trace.Default.Recorder().Len()
	d := deploy(t, 3, nil)
	result, err := d.client.QueryPath(context.Background(), d.product, core.Good)
	if err != nil {
		t.Fatal(err)
	}
	if result.TraceID != "" {
		t.Fatalf("unsampled query carries trace id %q", result.TraceID)
	}
	if after := trace.Default.Recorder().Len(); after != before {
		t.Fatalf("unsampled query grew the recorder from %d to %d traces", before, after)
	}
}

// TestMaliciousTraceHeadersIgnored pins the validation on incoming wire
// headers: a peer cannot inject arbitrary strings into the trace explorer or
// the logs by forging trace context.
func TestMaliciousTraceHeadersIgnored(t *testing.T) {
	trace.Default.SetSampleRate(0)
	d := deploy(t, 2, nil)

	for i, hdr := range []struct{ traceID, spanID string }{
		{"<script>alert(1)</script>aaaaaaaa", "0123456789abcdef"},
		{strings.Repeat("a", 32), "not-hex"},
		{strings.Repeat("a", 31), "0123456789abcdef"},
	} {
		before := trace.Default.Recorder().Len()
		// Hand-roll the exchange so the forged headers reach the proxy server.
		env, err := forgeQuery(d, hdr.traceID, hdr.spanID)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if env.TraceID != "" || len(env.Spans) != 0 {
			t.Fatalf("case %d: response to forged headers carries trace context %q", i, env.TraceID)
		}
		if after := trace.Default.Recorder().Len(); after != before {
			t.Fatalf("case %d: forged headers recorded a trace", i)
		}
	}
}

// forgeQuery sends a query_path request with attacker-controlled trace
// headers straight over TCP, bypassing the client's header validation.
func forgeQuery(d *deployment, traceID, spanID string) (*wire.Envelope, error) {
	conn, err := net.Dial("tcp", d.client.Pool().Addr())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	req, err := wire.NewEnvelope(wire.TypeQueryPath,
		&wire.QueryPathRequest{Product: d.product, Quality: int(core.Good)})
	if err != nil {
		return nil, err
	}
	req.TraceID = traceID
	req.SpanID = spanID
	if err := wire.WriteEnvelope(conn, req); err != nil {
		return nil, err
	}
	return wire.ReadMessage(conn)
}
