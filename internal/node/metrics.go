package node

import (
	"desword/internal/obs"
	"desword/internal/wire"
)

// serverMetrics are one server role's handles into the default registry:
// per-request latency by message type, in-flight connections, and error
// counters by stage. Handles are fetched once per server, so the serve loop
// pays only atomic updates.
type serverMetrics struct {
	inflight     *obs.Gauge
	conns        *obs.Counter
	errRead      *obs.Counter
	errWrite     *obs.Counter
	errHandle    *obs.Counter
	latency      map[string]*obs.Histogram
	latencyOther *obs.Histogram
}

// requestTypes are the message types a server can be asked to handle.
var requestTypes = []string{
	wire.TypeQuery, wire.TypeDemandOwnership, wire.TypeGetParams,
	wire.TypeRegisterList, wire.TypeQueryPath, wire.TypeScores,
	wire.TypeAuditLog, wire.TypeTelemetry,
}

// newServerMetrics builds the handles for one server role ("proxy" or
// "participant").
func newServerMetrics(role string) *serverMetrics {
	m := &serverMetrics{
		inflight: obs.Default.Gauge("desword_connections_inflight",
			"Open server connections.", "server", role),
		conns: obs.Default.Counter("desword_connections_total",
			"Accepted server connections.", "server", role),
		errRead: obs.Default.Counter("desword_server_errors_total",
			"Server errors by stage.", "server", role, "stage", "read"),
		errWrite: obs.Default.Counter("desword_server_errors_total",
			"Server errors by stage.", "server", role, "stage", "write"),
		errHandle: obs.Default.Counter("desword_server_errors_total",
			"Server errors by stage.", "server", role, "stage", "handle"),
		latency: make(map[string]*obs.Histogram, len(requestTypes)),
	}
	for _, t := range requestTypes {
		m.latency[t] = obs.Default.Histogram("desword_request_latency_seconds",
			"Per-request server latency by message type.", nil,
			"server", role, "type", t)
	}
	m.latencyOther = obs.Default.Histogram("desword_request_latency_seconds",
		"Per-request server latency by message type.", nil,
		"server", role, "type", "other")
	return m
}

// requestLatency selects the latency histogram for a request type.
func (m *serverMetrics) requestLatency(msgType string) *obs.Histogram {
	if h, ok := m.latency[msgType]; ok {
		return h
	}
	return m.latencyOther
}

// poolMetrics aggregates the pooled transport across every Pool in the
// process. They are deliberately unlabelled: a proxy walking a long path
// holds one pool per participant, and per-endpoint label cardinality would
// grow with the supply chain. Per-pool numbers are available to tests and
// benches through Pool.Stats.
type poolMetrics struct {
	open      *obs.Gauge
	idle      *obs.Gauge
	dials     *obs.Counter
	reuses    *obs.Counter
	reaped    *obs.Counter
	retries   *obs.Counter
	fastFails *obs.Counter
	waits     *obs.Counter
}

var poolConns = &poolMetrics{
	open: obs.Default.Gauge("desword_pool_conns_open",
		"Open pooled client connections (in use + idle)."),
	idle: obs.Default.Gauge("desword_pool_conns_idle",
		"Idle pooled client connections awaiting reuse."),
	dials: obs.Default.Counter("desword_pool_dials_total",
		"Client connections dialed."),
	reuses: obs.Default.Counter("desword_pool_reuses_total",
		"Client exchanges served by a pooled connection."),
	reaped: obs.Default.Counter("desword_pool_reaped_total",
		"Idle pooled connections reaped past the idle timeout."),
	retries: obs.Default.Counter("desword_pool_retries_total",
		"Client exchange retry attempts."),
	fastFails: obs.Default.Counter("desword_pool_fastfails_total",
		"Client exchanges rejected while an endpoint cools down."),
	waits: obs.Default.Counter("desword_pool_waits_total",
		"Client exchanges that queued for a free pooled connection."),
}
