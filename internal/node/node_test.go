package node

import (
	"context"
	"testing"

	"fmt"
	"net"
	"sync"
	"time"

	"desword/internal/adversary"
	"desword/internal/apps"
	"desword/internal/core"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/zkedb"
)

// deployment spins up a full TCP deployment on localhost: one participant
// server per member, a proxy resolving over the directory, and a proxy
// server with its client.
type deployment struct {
	ps      *poc.PublicParams
	members map[poc.ParticipantID]*core.Member
	dist    *core.DistributionResult
	client  *ProxyClient
	product poc.ProductID
	servers map[poc.ParticipantID]*ParticipantServer
}

// stop takes one participant's server down mid-test.
func (d *deployment) stop(id poc.ParticipantID) error {
	srv, ok := d.servers[id]
	if !ok {
		return fmt.Errorf("no server for %s", id)
	}
	delete(d.servers, id)
	return srv.Close()
}

func deploy(t *testing.T, n int, dishonest map[poc.ParticipantID]core.Responder) *deployment {
	t.Helper()
	return deployWithConfig(t, n, dishonest, core.ProxyConfig{})
}

// deployWithConfig is deploy with an explicit proxy-tier configuration, for
// tests exercising sharding and admission over real TCP.
func deployWithConfig(t *testing.T, n int, dishonest map[poc.ParticipantID]core.Responder, cfg core.ProxyConfig) *deployment {
	t.Helper()
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	g, parts := supplychain.LineGraph(n)
	members := make(map[poc.ParticipantID]*core.Member, n)
	for id, p := range parts {
		members[id] = core.NewMember(ps, p)
	}
	tags, err := supplychain.MintTags("net", 1)
	if err != nil {
		t.Fatal(err)
	}
	ground, err := supplychain.RunTask(g, parts, "p0", tags, nil, supplychain.FirstChildSplitter)
	if err != nil {
		t.Fatal(err)
	}
	list, err := core.BuildPOCList(members, ground, "task-net")
	if err != nil {
		t.Fatal(err)
	}

	dir := make(map[poc.ParticipantID]string, n)
	servers := make(map[poc.ParticipantID]*ParticipantServer, n)
	for id, m := range members {
		responder := core.Responder(m)
		if d, ok := dishonest[id]; ok {
			responder = d
		}
		srv, err := ServeParticipant(context.Background(), "127.0.0.1:0", responder)
		if err != nil {
			t.Fatal(err)
		}
		servers[id] = srv
		t.Cleanup(func() {
			if cerr := srv.Close(); cerr != nil {
				t.Errorf("closing participant server: %v", cerr)
			}
		})
		dir[id] = srv.Addr()
	}

	resolver := DirectoryResolver(dir, WithRetryBackoff(time.Millisecond))
	t.Cleanup(func() {
		if cerr := resolver.Close(); cerr != nil {
			t.Errorf("closing resolver pools: %v", cerr)
		}
	})
	proxy := core.NewProxyWithConfig(ps, reputation.DefaultStrategy(), resolver.Resolver(), cfg)
	proxySrv, err := ServeProxy(context.Background(), "127.0.0.1:0", proxy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cerr := proxySrv.Close(); cerr != nil {
			t.Errorf("closing proxy server: %v", cerr)
		}
	})
	client := NewProxyClient(proxySrv.Addr())
	t.Cleanup(func() {
		if cerr := client.Close(); cerr != nil {
			t.Errorf("closing client pool: %v", cerr)
		}
	})

	// The initial participant submits the POC list over the wire, exercising
	// the registration path end to end.
	if err := client.RegisterList(context.Background(), "task-net", list); err != nil {
		t.Fatalf("RegisterList over TCP: %v", err)
	}
	return &deployment{
		ps:      ps,
		members: members,
		dist:    &core.DistributionResult{TaskID: "task-net", List: list, Ground: ground},
		client:  client,
		product: "net1",
		servers: servers,
	}
}

func TestNetworkEndToEndGoodQuery(t *testing.T) {
	d := deploy(t, 4, nil)
	result, err := d.client.QueryPath(context.Background(), d.product, core.Good)
	if err != nil {
		t.Fatalf("QueryPath over TCP: %v", err)
	}
	want := d.dist.Ground.Paths[d.product]
	if len(result.Path) != len(want) {
		t.Fatalf("path = %v, want %v", result.Path, want)
	}
	for i := range want {
		if result.Path[i] != want[i] {
			t.Fatalf("path = %v, want %v", result.Path, want)
		}
	}
	if len(result.Violations) != 0 || !result.Complete {
		t.Fatalf("honest network run must be clean and complete: %+v", result)
	}
	for _, v := range want {
		tr, ok := result.Traces[v]
		if !ok || len(tr.Data) == 0 {
			t.Fatalf("trace from %s must survive the wire", v)
		}
	}
}

func TestNetworkEndToEndBadQueryWithLiar(t *testing.T) {
	// One dishonest participant over the network: detection must survive
	// serialization.
	var liar *adversary.Dishonest
	d2 := deployWithLiar(t, &liar)
	result, err := d2.client.QueryPath(context.Background(), d2.product, core.Bad)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Violated(core.ViolationClaimNonProcessing) {
		t.Fatalf("lie must be detected across the network: %+v", result.Violations)
	}
	if !result.Complete {
		t.Fatalf("path must be recovered: %v", result.Path)
	}
}

// deployWithLiar deploys a 3-node line where p1 denies processing.
func deployWithLiar(t *testing.T, out **adversary.Dishonest) *deployment {
	t.Helper()
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	g, parts := supplychain.LineGraph(3)
	members := make(map[poc.ParticipantID]*core.Member, 3)
	for id, p := range parts {
		members[id] = core.NewMember(ps, p)
	}
	tags, err := supplychain.MintTags("net", 1)
	if err != nil {
		t.Fatal(err)
	}
	ground, err := supplychain.RunTask(g, parts, "p0", tags, nil, supplychain.FirstChildSplitter)
	if err != nil {
		t.Fatal(err)
	}
	list, err := core.BuildPOCList(members, ground, "task-liar")
	if err != nil {
		t.Fatal(err)
	}
	liar := adversary.NewDishonest(members["p1"])
	liar.DenyProcessing["net1"] = true
	*out = liar

	dir := make(map[poc.ParticipantID]string, 3)
	for id, m := range members {
		responder := core.Responder(m)
		if id == "p1" {
			responder = liar
		}
		srv, err := ServeParticipant(context.Background(), "127.0.0.1:0", responder)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			if cerr := srv.Close(); cerr != nil {
				t.Errorf("closing participant server: %v", cerr)
			}
		})
		dir[id] = srv.Addr()
	}
	proxy := core.NewProxy(ps, reputation.DefaultStrategy(), DirectoryResolver(dir).Resolver())
	proxySrv, err := ServeProxy(context.Background(), "127.0.0.1:0", proxy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cerr := proxySrv.Close(); cerr != nil {
			t.Errorf("closing proxy server: %v", cerr)
		}
	})
	client := NewProxyClient(proxySrv.Addr())
	if err := client.RegisterList(context.Background(), "task-liar", list); err != nil {
		t.Fatal(err)
	}
	return &deployment{ps: ps, members: members, client: client, product: "net1"}
}

func TestGetParamsOverWire(t *testing.T) {
	d := deploy(t, 2, nil)
	ps, err := d.client.GetParams(context.Background())
	if err != nil {
		t.Fatalf("GetParams: %v", err)
	}
	// The fetched parameters must be usable: aggregate and verify a proof.
	credential, dpoc, err := poc.Agg(ps, "vX", []poc.Trace{{Product: "w1", Data: []byte("d")}}, poc.AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dpoc.Prove(context.Background(), "w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := poc.Verify(context.Background(), d.ps, credential, "w1", proof); err != nil {
		t.Fatalf("proof under fetched params must verify under original params: %v", err)
	}
}

func TestScoresOverWire(t *testing.T) {
	d := deploy(t, 3, nil)
	if _, err := d.client.QueryPath(context.Background(), d.product, core.Good); err != nil {
		t.Fatal(err)
	}
	scores, err := d.client.Scores(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if scores["p0"] <= 0 {
		t.Fatalf("scores must be visible over the wire: %v", scores)
	}
}

func TestRegisterListErrorsPropagate(t *testing.T) {
	d := deploy(t, 2, nil)
	if err := d.client.RegisterList(context.Background(), "task-net", d.dist.List); err == nil {
		t.Fatal("duplicate registration must propagate as a remote error")
	}
	bad := poc.NewList()
	bad.AddPair("x", "y")
	if err := d.client.RegisterList(context.Background(), "task-bad", bad); err == nil {
		t.Fatal("invalid list must propagate as a remote error")
	}
}

func TestUnknownMessageTypeRejected(t *testing.T) {
	// A participant server does not understand proxy-side messages: it must
	// answer with an error envelope, which the client surfaces.
	m := core.NewMember(mustPS(t), supplychain.NewParticipant("solo"))
	srv, err := ServeParticipant(context.Background(), "127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cerr := srv.Close(); cerr != nil {
			t.Errorf("closing participant server: %v", cerr)
		}
	})
	c := NewProxyClient(srv.Addr())
	if _, err := c.Scores(context.Background()); err == nil {
		t.Fatal("participant server must reject proxy-side messages")
	}
}

func TestDialDeadAddressFails(t *testing.T) {
	c := NewResponderClient("127.0.0.1:1") // nothing listening
	if _, err := c.Query(context.Background(), "t", "x", core.Good); err == nil {
		t.Fatal("dialing a dead address must fail")
	}
	if _, err := c.DemandOwnership(context.Background(), "t", "x"); err == nil {
		t.Fatal("dialing a dead address must fail")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	m := core.NewMember(mustPS(t), supplychain.NewParticipant("solo"))
	srv, err := ServeParticipant(context.Background(), "127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second close must be a no-op")
	}
}

func mustPS(t *testing.T) *poc.PublicParams {
	t.Helper()
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestAuditLogOverWire(t *testing.T) {
	d := deploy(t, 3, nil)
	if _, err := d.client.QueryPath(context.Background(), d.product, core.Good); err != nil {
		t.Fatal(err)
	}
	entries, err := d.client.AuditLog(context.Background())
	if err != nil {
		t.Fatalf("AuditLog (client verifies the chain itself): %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("expected 3 audit entries (one per path hop), got %d", len(entries))
	}
	// Replay must match the published scores.
	replayed := reputation.ReplayScores(entries)
	scores, err := d.client.Scores(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range scores {
		if replayed[v] != want {
			t.Fatalf("replayed score for %s = %v, want %v", v, replayed[v], want)
		}
	}
}

// The TCP proxy client must satisfy the application-facing interface, so the
// same application code (package apps) runs embedded or distributed.
var _ apps.QueryClient = (*ProxyClient)(nil)

// TestServerSurvivesGarbageFrames writes raw garbage at a participant
// server: the connection must be dropped without taking the server down.
func TestServerSurvivesGarbageFrames(t *testing.T) {
	m := core.NewMember(mustPS(t), supplychain.NewParticipant("tough"))
	if _, err := m.CommitTask("t"); err != nil {
		t.Fatal(err)
	}
	srv, err := ServeParticipant(context.Background(), "127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cerr := srv.Close(); cerr != nil {
			t.Errorf("closing server: %v", cerr)
		}
	})

	for _, garbage := range [][]byte{
		{0xff, 0xff, 0xff, 0xff},              // oversized frame length
		{0, 0, 0, 5, 'j', 'u', 'n', 'k', '!'}, // non-JSON frame
		{0, 0, 0, 20, '{', '}'},               // truncated frame
	} {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(garbage); err != nil {
			t.Fatal(err)
		}
		if cerr := conn.Close(); cerr != nil {
			t.Fatal(cerr)
		}
	}

	// The server must still answer a well-formed request.
	client := NewResponderClient(srv.Addr())
	resp, err := client.Query(context.Background(), "t", "anything", core.Bad)
	if err != nil {
		t.Fatalf("server must survive garbage: %v", err)
	}
	if resp.Claim != core.ClaimNotProcessed {
		t.Fatalf("unexpected claim %v", resp.Claim)
	}
}

// TestConcurrentNetworkClients runs parallel full path queries through the
// TCP stack.
func TestConcurrentNetworkClients(t *testing.T) {
	d := deploy(t, 3, nil)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			result, err := d.client.QueryPath(context.Background(), d.product, core.Good)
			if err != nil {
				errCh <- err
				return
			}
			if len(result.Path) != 3 {
				errCh <- fmt.Errorf("path = %v", result.Path)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestTelemetryOverWire(t *testing.T) {
	d := deploy(t, 3, nil)
	if _, err := d.client.QueryPath(context.Background(), d.product, core.Good); err != nil {
		t.Fatal(err)
	}
	snap, err := d.client.Telemetry(context.Background())
	if err != nil {
		t.Fatalf("Telemetry over TCP: %v", err)
	}
	if snap.Service != "proxy" {
		t.Fatalf("snapshot service = %q, want proxy", snap.Service)
	}
	if snap.Time.IsZero() || snap.Start.IsZero() || len(snap.Samples) == 0 {
		t.Fatalf("snapshot incomplete: %+v", snap)
	}
	// The registry is shared process-wide, so the snapshot must include the
	// query the test just drove.
	found := false
	for _, s := range snap.Samples {
		if s.Name == "desword_queries_total" && s.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("snapshot missing desword_queries_total progress")
	}

	// Participants answer the same message through their responder client.
	for id := range d.servers {
		rc := NewResponderClient(d.servers[id].Addr())
		psnap, err := rc.Telemetry(context.Background())
		if cerr := rc.Close(); cerr != nil {
			t.Errorf("closing responder client: %v", cerr)
		}
		if err != nil {
			t.Fatalf("participant telemetry: %v", err)
		}
		if psnap.Service != "participant" || len(psnap.Samples) == 0 {
			t.Fatalf("participant snapshot = service %q, %d samples", psnap.Service, len(psnap.Samples))
		}
		break
	}
}
