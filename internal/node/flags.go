package node

import (
	"flag"
	"time"
)

// ClientConfig is the shared transport configuration of the cmd binaries:
// one set of pool/retry flags, one translation to client Options.
type ClientConfig struct {
	// Timeout bounds each dial and each request/response attempt.
	Timeout time.Duration
	// PoolSize bounds open connections per endpoint.
	PoolSize int
	// IdleTimeout reaps idle pooled connections.
	IdleTimeout time.Duration
	// Retries is the number of retry attempts after the first try.
	Retries int
	// RetryBackoff is the sleep before the first retry; doubles per attempt.
	RetryBackoff time.Duration
	// DialPerRequest disables connection reuse (the historical transport).
	DialPerRequest bool
}

// RegisterFlags registers the transport flags on fs (use flag.CommandLine in
// main). Zero-valued fields pick up the package defaults first, so a binary
// can pre-seed its own defaults before calling this.
func (c *ClientConfig) RegisterFlags(fs *flag.FlagSet) {
	if c.Timeout == 0 {
		c.Timeout = DefaultTimeout
	}
	if c.PoolSize == 0 {
		c.PoolSize = DefaultPoolSize
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.Retries == 0 {
		c.Retries = DefaultRetries
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	fs.DurationVar(&c.Timeout, "timeout", c.Timeout, "per-attempt dial/IO timeout")
	fs.IntVar(&c.PoolSize, "pool-size", c.PoolSize, "max open connections per endpoint")
	fs.DurationVar(&c.IdleTimeout, "pool-idle-timeout", c.IdleTimeout, "idle time before a pooled connection is reaped")
	fs.IntVar(&c.Retries, "retries", c.Retries, "retry attempts after a failed exchange")
	fs.DurationVar(&c.RetryBackoff, "retry-backoff", c.RetryBackoff, "sleep before the first retry (doubles per attempt)")
	fs.BoolVar(&c.DialPerRequest, "dial-per-request", c.DialPerRequest, "disable connection reuse: dial a fresh connection per exchange")
}

// Options translates the configuration into client Options.
func (c *ClientConfig) Options() []Option {
	opts := []Option{
		WithTimeout(c.Timeout),
		WithPoolSize(c.PoolSize),
		WithIdleTimeout(c.IdleTimeout),
		WithRetries(c.Retries),
		WithRetryBackoff(c.RetryBackoff),
	}
	if c.DialPerRequest {
		opts = append(opts, WithDialPerRequest())
	}
	return opts
}
