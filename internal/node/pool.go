package node

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"desword/internal/events"
	"desword/internal/trace"
	"desword/internal/wire"
)

// This file implements the client side of the wire protocol as a persistent,
// pooled transport. The servers in this package already answer many framed
// requests per connection; the Pool makes clients exploit that instead of
// paying a fresh TCP dial per request:
//
//   - a bounded per-endpoint pool of keep-alive connections with LIFO reuse
//     and idle reaping (idle connections are dropped before the server's own
//     read deadline would kill them anyway);
//   - per-attempt deadlines derived from the caller's context — an earlier
//     ctx deadline always wins over the flat per-exchange timeout, and every
//     retry attempt gets a fresh deadline rather than inheriting a stale
//     absolute one;
//   - retry with exponential backoff on transient dial/IO failures, gated by
//     message-type idempotency (see retrySafe);
//   - endpoint health tracking: after enough consecutive transport failures
//     the endpoint is marked down for a cooldown window and callers fail
//     fast with ErrEndpointDown instead of burning the full dial timeout on
//     every hop of a path walk.
//
// Every request carries a wire req_id header (stable across the retries of
// one logical request); servers echo it, and a mismatched echo poisons the
// connection — a reused connection can never hand a caller some other
// request's response.

// Pool tunables. The defaults suit the localhost and LAN deployments the
// repository targets; the cmd binaries expose them as flags.
const (
	// DefaultPoolSize bounds the open connections per endpoint (in-use plus
	// idle). Requests beyond the bound queue for a free connection.
	DefaultPoolSize = 4
	// DefaultIdleTimeout reaps idle pooled connections. It must stay below
	// the server-side read deadline (DefaultTimeout) or reuse would mostly
	// find connections the server already closed.
	DefaultIdleTimeout = 5 * time.Second
	// DefaultRetries is the number of retry attempts after the first try.
	DefaultRetries = 2
	// DefaultRetryBackoff is the sleep before the first retry; it doubles
	// per attempt, capped at maxRetryBackoff.
	DefaultRetryBackoff = 50 * time.Millisecond
	// DefaultFailThreshold is how many consecutive transport failures mark
	// an endpoint down.
	DefaultFailThreshold = 3
	// DefaultCooldown is how long a down endpoint fails fast before the
	// next real dial is attempted; it doubles per further failure, capped
	// at maxCooldown.
	DefaultCooldown = 2 * time.Second

	maxRetryBackoff = 2 * time.Second
	maxCooldown     = 30 * time.Second
)

// Errors reported by the pooled transport.
var (
	// ErrPoolClosed reports use of a closed pool.
	ErrPoolClosed = errors.New("node: connection pool closed")
	// ErrEndpointDown reports a fast-fail: the endpoint crossed the failure
	// threshold and is cooling down, so no dial was attempted.
	ErrEndpointDown = errors.New("node: endpoint marked down")
)

// PoolStats is a snapshot of one pool's counters, for tests and benches; the
// process-wide aggregates live in the obs registry (see poolMetrics).
type PoolStats struct {
	// Open counts live connections (in use + idle).
	Open int
	// Idle counts pooled connections awaiting reuse.
	Idle int
	// Dials counts connections established.
	Dials uint64
	// Reuses counts exchanges served by an already-open connection.
	Reuses uint64
	// Retries counts retry attempts (not first tries).
	Retries uint64
	// FastFails counts exchanges rejected during a cooldown window.
	FastFails uint64
	// Waits counts exchanges that had to queue for a free connection.
	Waits uint64
}

// pooledConn is one idle connection with its reuse bookkeeping.
type pooledConn struct {
	conn      net.Conn
	idleSince time.Time
}

// Pool is a persistent client transport for one endpoint. All methods are
// safe for concurrent use. The zero value is not usable; create pools with
// NewPool (or indirectly through NewResponderClient / NewProxyClient).
type Pool struct {
	addr string
	o    options

	// sem bounds open connections; nil in dial-per-request mode, where the
	// pool degrades to the historical one-dial-per-exchange behaviour.
	sem chan struct{}

	mu     sync.Mutex
	idle   []pooledConn // guarded by mu; LIFO: most recently used last
	open   int          // guarded by mu; live conns, in-use + idle
	closed bool         // guarded by mu

	// Endpoint health.
	fails     int       // guarded by mu; consecutive transport failures
	downUntil time.Time // guarded by mu; zero when the endpoint is considered up
	lastErr   error     // guarded by mu; last failure, reported by fast-fails

	// Per-pool counters (process-wide aggregates live in poolMetrics).
	dials, reuses, retries, fastFails, waits atomic.Uint64
}

// NewPool creates a pooled transport for one endpoint address.
func NewPool(addr string, opts ...Option) *Pool {
	o := applyOptions(opts)
	p := &Pool{addr: addr, o: o}
	if o.pooled {
		p.sem = make(chan struct{}, o.poolSize)
	}
	return p
}

// Addr returns the endpoint address the pool dials.
func (p *Pool) Addr() string { return p.addr }

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	open, idle := p.open, len(p.idle)
	p.mu.Unlock()
	return PoolStats{
		Open:      open,
		Idle:      idle,
		Dials:     p.dials.Load(),
		Reuses:    p.reuses.Load(),
		Retries:   p.retries.Load(),
		FastFails: p.fastFails.Load(),
		Waits:     p.waits.Load(),
	}
}

// Close releases the pool's idle connections and rejects further exchanges.
// Connections currently in use finish their exchange and are closed on
// release. Close is idempotent.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.open -= len(idle)
	p.mu.Unlock()
	for _, pc := range idle {
		_ = pc.conn.Close()
		poolConns.idle.Dec()
		poolConns.open.Dec()
	}
	return nil
}

// Exchange performs one logical request/response exchange: it draws a
// connection from the pool (or dials), applies a per-attempt deadline, and
// retries transient failures when the message type allows it. When ctx
// carries an active trace span, the exchange records a wire round-trip child
// span — tagged with the endpoint, whether the final attempt reused a pooled
// connection, and the attempt count — and grafts the spans the server
// returns into the local trace.
func (p *Pool) Exchange(ctx context.Context, msgType string, payload any) (*wire.Envelope, error) {
	ctx, span := trace.Default.StartChild(ctx, "wire."+msgType,
		trace.String("addr", p.addr))
	env, err := p.exchangeAttempts(ctx, span, msgType, payload)
	span.SetError(err)
	span.End()
	return env, err
}

// exchangeAttempts runs the retry loop around attempt.
func (p *Pool) exchangeAttempts(ctx context.Context, span *trace.Span, msgType string, payload any) (*wire.Envelope, error) {
	req, err := wire.NewEnvelope(msgType, payload)
	if err != nil {
		return nil, err
	}
	// One req_id per logical request, stable across retries, so server-side
	// logs correlate the attempts and the echo check below can catch a
	// desynchronized connection.
	req.ReqID = wire.NewRequestID()
	req.TraceID = span.TraceID()
	req.SpanID = span.SpanID()

	for attempt := 0; ; attempt++ {
		resp, reused, wrote, err := p.attempt(ctx, req)
		if err == nil {
			span.SetAttr(trace.Bool("reused", reused), trace.Int("attempt", attempt+1))
			if reused {
				events.ScopeFrom(ctx).PoolReuse()
			}
			p.noteSuccess()
			span.Adopt(resp.Spans)
			return resp, nil
		}
		if attempt >= p.o.retries || ctx.Err() != nil || !retrySafe(msgType, wrote) ||
			errors.Is(err, ErrEndpointDown) || errors.Is(err, ErrPoolClosed) {
			span.SetAttr(trace.Int("attempt", attempt+1))
			return nil, err
		}
		p.retries.Add(1)
		poolConns.retries.Inc()
		events.ScopeFrom(ctx).PoolRetry()
		if !sleepCtx(ctx, backoffDelay(p.o.backoff, attempt)) {
			return nil, fmt.Errorf("node: retrying %s to %s: %w (last error: %w)", msgType, p.addr, ctx.Err(), err)
		}
	}
}

// retrySafe reports whether a failed attempt may be retried. Query and
// demand-ownership interactions are idempotent by protocol design — a
// participant answers them from its committed, immutable DPOC, so replaying
// one cannot change state on either side — and the proxy's read-side
// messages (get_params, scores, audit_log) are plain reads. Those retry on
// any transport failure. register_list and query_path mutate proxy state
// (task registration, reputation settlement), so they are retried only while
// the request frame provably never reached the peer in full: a dial failure
// or an incomplete write. Length-prefixed framing guarantees a server never
// processes a partial frame, which is what makes the !wrote case safe.
func retrySafe(msgType string, wrote bool) bool {
	switch msgType {
	case wire.TypeQuery, wire.TypeDemandOwnership,
		wire.TypeGetParams, wire.TypeScores, wire.TypeAuditLog,
		wire.TypeTelemetry:
		return true
	}
	return !wrote
}

// backoffDelay is the exponential backoff before retry number attempt+1.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base << uint(min(attempt, 10))
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	return d
}

// sleepCtx sleeps for d unless ctx ends first; it reports whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// attempt performs one request/response round trip on one connection. wrote
// reports whether the full request frame was handed to the kernel — the
// input to the retry-safety decision for non-idempotent messages.
func (p *Pool) attempt(ctx context.Context, req *wire.Envelope) (resp *wire.Envelope, reused, wrote bool, err error) {
	conn, reused, err := p.get(ctx)
	if err != nil {
		return nil, reused, false, err
	}
	healthy := false
	defer func() { p.put(conn, healthy) }()

	// Per-attempt deadline: the flat timeout, tightened by an earlier ctx
	// deadline when the caller set one. Each attempt computes it afresh so
	// a retry is never strangled by the previous attempt's absolute stamp.
	deadline := time.Now().Add(p.o.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	// derr/werr, not err: this function's named result is still live and
	// shadowing it in the if-init scopes invites defer bugs (desword/shadow).
	if derr := conn.SetDeadline(deadline); derr != nil {
		return nil, reused, false, fmt.Errorf("node: setting deadline: %w", derr)
	}
	if werr := wire.WriteEnvelope(conn, req); werr != nil {
		p.noteFailureIfFresh(reused, werr)
		return nil, reused, false, werr
	}
	resp, err = wire.ReadMessage(conn)
	if err != nil {
		p.noteFailureIfFresh(reused, err)
		return nil, reused, true, err
	}
	if echo := resp.RequestID(); echo != "" && echo != req.ReqID {
		// The connection handed us some other request's response — it is
		// desynchronized and must not be reused. Old servers never echo, so
		// an empty echo stays acceptable.
		return nil, reused, true, fmt.Errorf("node: %s answered req_id %s with %s on a reused connection", p.addr, req.ReqID, echo)
	}
	healthy = true
	return resp, reused, true, nil
}

// get returns a connection to the endpoint: a pooled idle one when
// available, otherwise a fresh dial. It blocks when the pool is at its
// connection bound until a connection frees up or ctx ends.
func (p *Pool) get(ctx context.Context) (net.Conn, bool, error) {
	if err := p.checkHealth(); err != nil {
		return nil, false, err
	}
	if p.sem != nil {
		select {
		case p.sem <- struct{}{}:
		default:
			// Pool exhausted: queue for a slot.
			p.waits.Add(1)
			poolConns.waits.Inc()
			select {
			case p.sem <- struct{}{}:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
	}
	if conn := p.takeIdle(); conn != nil {
		p.reuses.Add(1)
		poolConns.reuses.Inc()
		return conn, true, nil
	}
	dialer := net.Dialer{Timeout: p.o.timeout}
	conn, err := dialer.DialContext(ctx, "tcp", p.addr)
	if err != nil {
		p.releaseSlot()
		p.noteFailure(err)
		return nil, false, fmt.Errorf("node: dialing %s: %w", p.addr, err)
	}
	p.dials.Add(1)
	poolConns.dials.Inc()
	poolConns.open.Inc()
	p.mu.Lock()
	p.open++
	p.mu.Unlock()
	return conn, false, nil
}

// takeIdle pops the most recently used idle connection, reaping stale ones
// on the way. LIFO keeps the working set warm and lets the tail age out.
func (p *Pool) takeIdle() net.Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	cutoff := time.Now().Add(-p.o.idleTimeout)
	// Reap from the cold end.
	for len(p.idle) > 0 && p.idle[0].idleSince.Before(cutoff) {
		pc := p.idle[0]
		p.idle = p.idle[1:]
		p.open--
		_ = pc.conn.Close()
		poolConns.idle.Dec()
		poolConns.open.Dec()
		poolConns.reaped.Inc()
	}
	if len(p.idle) == 0 {
		return nil
	}
	pc := p.idle[len(p.idle)-1]
	p.idle = p.idle[:len(p.idle)-1]
	poolConns.idle.Dec()
	return pc.conn
}

// put releases a connection after an exchange: healthy connections return to
// the idle set for reuse; anything else is closed.
func (p *Pool) put(conn net.Conn, healthy bool) {
	defer p.releaseSlot()
	if healthy && p.o.pooled {
		p.mu.Lock()
		if !p.closed {
			p.idle = append(p.idle, pooledConn{conn: conn, idleSince: time.Now()})
			p.mu.Unlock()
			poolConns.idle.Inc()
			return
		}
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.open--
	p.mu.Unlock()
	_ = conn.Close()
	poolConns.open.Dec()
}

// releaseSlot frees a semaphore slot (no-op in dial-per-request mode).
func (p *Pool) releaseSlot() {
	if p.sem != nil {
		<-p.sem
	}
}

// checkHealth fails fast while the endpoint is cooling down.
func (p *Pool) checkHealth() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	if !p.downUntil.IsZero() && time.Now().Before(p.downUntil) {
		p.fastFails.Add(1)
		poolConns.fastFails.Inc()
		return fmt.Errorf("%w: %s cooling down after %d failures: %w", ErrEndpointDown, p.addr, p.fails, p.lastErr)
	}
	return nil
}

// noteFailure records one transport failure toward the down threshold. Once
// crossed, the endpoint cools down for a window that doubles per further
// failure (capped), so a dead participant costs each caller one fast error
// instead of a full dial timeout.
func (p *Pool) noteFailure(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fails++
	p.lastErr = err
	if p.fails >= p.o.failThreshold {
		cool := p.o.cooldown << uint(min(p.fails-p.o.failThreshold, 10))
		if cool > maxCooldown || cool <= 0 {
			cool = maxCooldown
		}
		p.downUntil = time.Now().Add(cool)
	}
}

// noteFailureIfFresh records an IO failure on a freshly dialed connection.
// Failures on reused connections are expected staleness (the server reaps
// idle peers on its own clock) and say nothing about endpoint health.
func (p *Pool) noteFailureIfFresh(reused bool, err error) {
	if !reused {
		p.noteFailure(err)
	}
}

// noteSuccess resets the endpoint's failure accounting.
func (p *Pool) noteSuccess() {
	p.mu.Lock()
	p.fails = 0
	p.downUntil = time.Time{}
	p.lastErr = nil
	p.mu.Unlock()
}
