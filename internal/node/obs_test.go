package node

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"desword/internal/core"
	"desword/internal/obs"
	"desword/internal/poc"
	"desword/internal/supplychain"
)

// TestAdminExposesNodeMetrics runs a real path query through the TCP stack
// and asserts the admin listener serves the wire and query series an
// operator dashboards — the acceptance path of the observability layer.
func TestAdminExposesNodeMetrics(t *testing.T) {
	d := deploy(t, 3, nil)
	if _, err := d.client.QueryPath(context.Background(), d.product, core.Good); err != nil {
		t.Fatal(err)
	}

	admin, err := obs.ServeAdmin("127.0.0.1:0", obs.Default)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cerr := admin.Close(); cerr != nil {
			t.Errorf("closing admin: %v", cerr)
		}
	})

	resp, err := http.Get("http://" + admin.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Errorf("closing body: %v", cerr)
		}
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, series := range []string{
		`desword_wire_bytes_total{dir="write",type="query_path"}`,
		`desword_wire_frames_total{dir="read",type="response"}`,
		`desword_query_latency_seconds_bucket{quality="good",le="+Inf"}`,
		`desword_request_latency_seconds_bucket`,
		`desword_connections_total{server="proxy"}`,
		`desword_proof_verify_seconds`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	hresp, err := http.Get("http://" + admin.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := hresp.Body.Close(); cerr != nil {
			t.Errorf("closing body: %v", cerr)
		}
	}()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", hresp.StatusCode)
	}
}

// TestServerCloseDrainsBlockedConn holds a connection open without sending a
// request: Close must not hang on it past the drain grace, must force-close
// it, and must stay idempotent under concurrent calls.
func TestServerCloseDrainsBlockedConn(t *testing.T) {
	m := core.NewMember(mustPS(t), supplychain.NewParticipant("drain"))
	srv, err := ServeParticipant(context.Background(), "127.0.0.1:0", m,
		WithTimeout(30*time.Second), WithDrainGrace(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := conn.Close(); cerr != nil {
			_ = cerr // server already cut it
		}
	}()
	// Give the accept loop a moment to register the connection.
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if cerr := srv.Close(); cerr != nil {
				t.Errorf("concurrent close: %v", cerr)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("close took %v; the blocked connection was not force-closed", elapsed)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close after drain: %v", err)
	}
}

// TestClientTimeoutOption dials a server that accepts and then stays silent:
// the configured timeout must bound the exchange.
func TestClientTimeoutOption(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cerr := ln.Close(); cerr != nil {
			t.Errorf("closing listener: %v", cerr)
		}
	})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow the request and never answer.
			go func() { _, _ = io.Copy(io.Discard, conn) }()
		}
	}()

	c := NewResponderClient(ln.Addr().String(), WithTimeout(100*time.Millisecond))
	start := time.Now()
	_, err = c.Query(context.Background(), "t", "x", core.Good)
	if err == nil {
		t.Fatal("silent server must time the exchange out")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, want ~100ms", elapsed)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
}

// slowResponder delays every query so tests can hold handlers in flight
// while the server shuts down.
type slowResponder struct {
	core.Responder
	delay   time.Duration
	entered chan struct{}
}

func (s *slowResponder) Query(ctx context.Context, taskID string, id poc.ProductID, quality core.Quality) (*core.Response, error) {
	s.entered <- struct{}{}
	time.Sleep(s.delay)
	return s.Responder.Query(ctx, taskID, id, quality)
}

// TestServerCloseDrainsInFlightRequests shuts a participant server down while
// slow handlers are mid-request: every in-flight request must complete and
// deliver its response within the drain grace — shutdown loses no work that
// was already accepted.
func TestServerCloseDrainsInFlightRequests(t *testing.T) {
	ps := mustPS(t)
	m := core.NewMember(ps, supplychain.NewParticipant("drain-load"))
	if _, err := m.CommitTask("task-drain"); err != nil {
		t.Fatal(err)
	}
	const inflight = 4
	slow := &slowResponder{
		Responder: m,
		delay:     150 * time.Millisecond,
		entered:   make(chan struct{}, inflight),
	}
	srv, err := ServeParticipant(context.Background(), "127.0.0.1:0", slow,
		WithTimeout(30*time.Second), WithDrainGrace(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			client := NewResponderClient(srv.Addr())
			_, qerr := client.Query(context.Background(), "task-drain", "drain-product", core.Good)
			errCh <- qerr
		}()
	}
	for i := 0; i < inflight; i++ {
		select {
		case <-slow.entered:
		case <-time.After(5 * time.Second):
			t.Fatal("handlers never entered")
		}
	}

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("close under load: %v", err)
	}
	closeElapsed := time.Since(start)
	for i := 0; i < inflight; i++ {
		if qerr := <-errCh; qerr != nil {
			t.Errorf("in-flight request %d dropped during drain: %v", i, qerr)
		}
	}
	// The drain must end when the handlers do, not burn the whole grace.
	if closeElapsed > 5*time.Second {
		t.Fatalf("close took %v; drain did not track in-flight completion", closeElapsed)
	}
}

// TestServerCloseForceClosesStragglers shuts down while a handler outlasts
// the drain grace: the connection is cut (the caller sees an error rather
// than a hang) and Close returns as soon as the handler goroutine exits.
func TestServerCloseForceClosesStragglers(t *testing.T) {
	ps := mustPS(t)
	m := core.NewMember(ps, supplychain.NewParticipant("straggler"))
	if _, err := m.CommitTask("task-drain"); err != nil {
		t.Fatal(err)
	}
	slow := &slowResponder{
		Responder: m,
		delay:     700 * time.Millisecond,
		entered:   make(chan struct{}, 1),
	}
	srv, err := ServeParticipant(context.Background(), "127.0.0.1:0", slow,
		WithTimeout(30*time.Second), WithDrainGrace(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, 1)
	go func() {
		client := NewResponderClient(srv.Addr())
		_, qerr := client.Query(context.Background(), "task-drain", "drain-product", core.Good)
		errCh <- qerr
	}()
	select {
	case <-slow.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never entered")
	}

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("close with straggler: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("close took %v; straggler was not force-closed", elapsed)
	}
	select {
	case qerr := <-errCh:
		if qerr == nil {
			t.Fatal("request outlasting the grace must fail, not silently succeed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client still hanging after force-close")
	}
}
