package node

import (
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"desword/internal/core"
	"desword/internal/obs"
	"desword/internal/supplychain"
)

// TestAdminExposesNodeMetrics runs a real path query through the TCP stack
// and asserts the admin listener serves the wire and query series an
// operator dashboards — the acceptance path of the observability layer.
func TestAdminExposesNodeMetrics(t *testing.T) {
	d := deploy(t, 3, nil)
	if _, err := d.client.QueryPath(d.product, core.Good); err != nil {
		t.Fatal(err)
	}

	admin, err := obs.ServeAdmin("127.0.0.1:0", obs.Default)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cerr := admin.Close(); cerr != nil {
			t.Errorf("closing admin: %v", cerr)
		}
	})

	resp, err := http.Get("http://" + admin.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Errorf("closing body: %v", cerr)
		}
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, series := range []string{
		`desword_wire_bytes_total{dir="write",type="query_path"}`,
		`desword_wire_frames_total{dir="read",type="response"}`,
		`desword_query_latency_seconds_bucket{quality="good",le="+Inf"}`,
		`desword_request_latency_seconds_bucket`,
		`desword_connections_total{server="proxy"}`,
		`desword_proof_verify_seconds`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	hresp, err := http.Get("http://" + admin.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := hresp.Body.Close(); cerr != nil {
			t.Errorf("closing body: %v", cerr)
		}
	}()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", hresp.StatusCode)
	}
}

// TestServerCloseDrainsBlockedConn holds a connection open without sending a
// request: Close must not hang on it past the drain grace, must force-close
// it, and must stay idempotent under concurrent calls.
func TestServerCloseDrainsBlockedConn(t *testing.T) {
	m := core.NewMember(mustPS(t), supplychain.NewParticipant("drain"))
	srv, err := ServeParticipant("127.0.0.1:0", m,
		WithTimeout(30*time.Second), WithDrainGrace(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := conn.Close(); cerr != nil {
			_ = cerr // server already cut it
		}
	}()
	// Give the accept loop a moment to register the connection.
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if cerr := srv.Close(); cerr != nil {
				t.Errorf("concurrent close: %v", cerr)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("close took %v; the blocked connection was not force-closed", elapsed)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close after drain: %v", err)
	}
}

// TestClientTimeoutOption dials a server that accepts and then stays silent:
// the configured timeout must bound the exchange.
func TestClientTimeoutOption(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cerr := ln.Close(); cerr != nil {
			t.Errorf("closing listener: %v", cerr)
		}
	})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow the request and never answer.
			go func() { _, _ = io.Copy(io.Discard, conn) }()
		}
	}()

	c := NewResponderClient(ln.Addr().String(), WithTimeout(100*time.Millisecond))
	start := time.Now()
	_, err = c.Query("t", "x", core.Good)
	if err == nil {
		t.Fatal("silent server must time the exchange out")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, want ~100ms", elapsed)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
}
