package node

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"desword/internal/core"
	"desword/internal/supplychain"
	"desword/internal/wire"
)

// startWireServer runs a minimal framed-message server: every connection is
// answered by fn until the peer hangs up. It stands in for participants with
// arbitrary (including deliberately wrong) wire behaviour.
func startWireServer(t *testing.T, fn func(env *wire.Envelope) *wire.Envelope) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	conns := make(map[net.Conn]struct{})
	t.Cleanup(func() {
		_ = ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for c := range conns {
			_ = c.Close()
		}
	})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns[conn] = struct{}{}
			mu.Unlock()
			go func() {
				defer conn.Close()
				for {
					env, err := wire.ReadMessage(conn)
					if err != nil {
						return
					}
					resp := fn(env)
					if resp == nil {
						return // hang up without answering
					}
					if err := wire.WriteEnvelope(conn, resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// ackServer answers every request with an ack, echoing the request id the way
// a current server does.
func ackServer(t *testing.T) string {
	t.Helper()
	return startWireServer(t, func(env *wire.Envelope) *wire.Envelope {
		resp, err := wire.NewEnvelope(wire.TypeAck, nil)
		if err != nil {
			t.Errorf("building ack: %v", err)
			return nil
		}
		resp.ReqID = env.RequestID()
		return resp
	})
}

func TestPoolReusesConnections(t *testing.T) {
	addr := ackServer(t)
	p := NewPool(addr, WithPoolSize(2))
	defer p.Close()

	reusesBefore := poolConns.reuses.Value()
	for i := 0; i < 5; i++ {
		env, err := p.Exchange(context.Background(), wire.TypeGetParams, struct{}{})
		if err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
		if env.Type != wire.TypeAck {
			t.Fatalf("exchange %d answered %q", i, env.Type)
		}
	}
	st := p.Stats()
	if st.Dials != 1 {
		t.Fatalf("5 sequential exchanges must dial once, dialed %d", st.Dials)
	}
	if st.Reuses != 4 {
		t.Fatalf("reuses = %d, want 4", st.Reuses)
	}
	if st.Open != 1 || st.Idle != 1 {
		t.Fatalf("pool must hold the connection idle: open=%d idle=%d", st.Open, st.Idle)
	}
	// The acceptance signal the /metrics endpoint exposes: reuse ratio > 0.
	if got := poolConns.reuses.Value(); got <= reusesBefore {
		t.Fatalf("desword_pool_reuses_total did not advance: %d -> %d", reusesBefore, got)
	}
}

func TestPoolCloseReleasesConnections(t *testing.T) {
	addr := ackServer(t)
	p := NewPool(addr)
	if _, err := p.Exchange(context.Background(), wire.TypeGetParams, struct{}{}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal("second close must be a no-op")
	}
	st := p.Stats()
	if st.Open != 0 || st.Idle != 0 {
		t.Fatalf("closed pool must hold nothing: open=%d idle=%d", st.Open, st.Idle)
	}
	if _, err := p.Exchange(context.Background(), wire.TypeGetParams, struct{}{}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("exchange on closed pool = %v, want ErrPoolClosed", err)
	}
}

// TestPoolExhaustionQueues drives more concurrent exchanges than the pool
// bound allows: everything must still complete, over a single connection,
// with the overflow visibly queueing.
func TestPoolExhaustionQueues(t *testing.T) {
	addr := startWireServer(t, func(env *wire.Envelope) *wire.Envelope {
		time.Sleep(20 * time.Millisecond) // hold the connection long enough to collide
		resp, _ := wire.NewEnvelope(wire.TypeAck, nil)
		resp.ReqID = env.RequestID()
		return resp
	})
	p := NewPool(addr, WithPoolSize(1))
	defer p.Close()

	const workers = 4
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := p.Exchange(context.Background(), wire.TypeGetParams, struct{}{})
			errCh <- err
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Dials != 1 {
		t.Fatalf("bounded pool must serialize onto one connection, dialed %d", st.Dials)
	}
	if st.Reuses != workers-1 {
		t.Fatalf("reuses = %d, want %d", st.Reuses, workers-1)
	}
	if st.Waits == 0 {
		t.Fatal("overflow exchanges must register as waits")
	}
}

// TestRetryAfterServerDrain kills the server a pooled connection points at
// and brings a fresh one up on the same address: the next exchange must
// recover transparently by retrying on a fresh dial.
func TestRetryAfterServerDrain(t *testing.T) {
	m := core.NewMember(mustPS(t), supplychain.NewParticipant("drain-retry"))
	if _, err := m.CommitTask("t"); err != nil {
		t.Fatal(err)
	}
	srv, err := ServeParticipant(context.Background(), "127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	c := NewResponderClient(addr, WithRetryBackoff(time.Millisecond))
	defer c.Close()
	if _, err := c.Query(context.Background(), "t", "x", core.Good); err != nil {
		t.Fatalf("first query: %v", err)
	}
	if st := c.Pool().Stats(); st.Idle != 1 {
		t.Fatalf("connection must be pooled after the first query: %+v", st)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := ServeParticipant(context.Background(), addr, m)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	t.Cleanup(func() {
		if cerr := srv2.Close(); cerr != nil {
			t.Errorf("closing server: %v", cerr)
		}
	})

	if _, err := c.Query(context.Background(), "t", "x", core.Good); err != nil {
		t.Fatalf("query after server drain must recover by retrying: %v", err)
	}
	if st := c.Pool().Stats(); st.Retries == 0 && st.Dials < 2 {
		t.Fatalf("recovery must have redialed or retried: %+v", st)
	}
}

// TestEndpointDownFastFail pins the health tracking: once an endpoint crosses
// the failure threshold, callers get an immediate ErrEndpointDown instead of
// burning a dial timeout each.
func TestEndpointDownFastFail(t *testing.T) {
	p := NewPool("127.0.0.1:1", // nothing listening
		WithRetries(0), WithFailThreshold(1), WithCooldown(time.Minute))
	defer p.Close()

	if _, err := p.Exchange(context.Background(), wire.TypeQuery, struct{}{}); err == nil {
		t.Fatal("dialing a dead endpoint must fail")
	}
	start := time.Now()
	_, err := p.Exchange(context.Background(), wire.TypeQuery, struct{}{})
	if !errors.Is(err, ErrEndpointDown) {
		t.Fatalf("second exchange = %v, want ErrEndpointDown", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("fast-fail took %v", elapsed)
	}
	if st := p.Stats(); st.FastFails == 0 {
		t.Fatalf("fast-fail must be counted: %+v", st)
	}
}

// TestRequestIDMismatchPoisonsConnection serves a wrong (but well-formed)
// request-id echo: the exchange must fail rather than hand the caller some
// other request's response, and the desynchronized connection must not
// return to the pool.
func TestRequestIDMismatchPoisonsConnection(t *testing.T) {
	addr := startWireServer(t, func(env *wire.Envelope) *wire.Envelope {
		resp, _ := wire.NewEnvelope(wire.TypeAck, nil)
		resp.ReqID = "0000000000000000"
		return resp
	})
	p := NewPool(addr, WithRetries(0))
	defer p.Close()

	_, err := p.Exchange(context.Background(), wire.TypeGetParams, struct{}{})
	if err == nil {
		t.Fatal("mismatched req_id echo must fail the exchange")
	}
	if !strings.Contains(err.Error(), "req_id") {
		t.Fatalf("error must name the req_id mismatch: %v", err)
	}
	if st := p.Stats(); st.Idle != 0 || st.Open != 0 {
		t.Fatalf("poisoned connection must not be pooled: %+v", st)
	}
}

// TestOldServerWithoutRequestIDInteroperates answers without echoing the
// request id, the way a pre-req_id peer does: the pooled client must accept
// the response and keep reusing the connection.
func TestOldServerWithoutRequestIDInteroperates(t *testing.T) {
	addr := startWireServer(t, func(env *wire.Envelope) *wire.Envelope {
		resp, _ := wire.NewEnvelope(wire.TypeAck, nil)
		return resp // no ReqID: an old peer drops unknown headers
	})
	p := NewPool(addr)
	defer p.Close()

	for i := 0; i < 3; i++ {
		env, err := p.Exchange(context.Background(), wire.TypeGetParams, struct{}{})
		if err != nil {
			t.Fatalf("exchange %d against old peer: %v", i, err)
		}
		if env.Type != wire.TypeAck {
			t.Fatalf("exchange %d answered %q", i, env.Type)
		}
	}
	if st := p.Stats(); st.Reuses != 2 {
		t.Fatalf("old peers must still get connection reuse: %+v", st)
	}
}

// TestExchangeRespectsContextDeadline sets a ctx deadline far below the flat
// timeout against a server that never answers: the earlier deadline must win
// on the attempt.
func TestExchangeRespectsContextDeadline(t *testing.T) {
	addr := startWireServer(t, func(env *wire.Envelope) *wire.Envelope {
		time.Sleep(10 * time.Second)
		return nil
	})
	p := NewPool(addr, WithTimeout(30*time.Second), WithRetries(0))
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.Exchange(ctx, wire.TypeGetParams, struct{}{})
	if err == nil {
		t.Fatal("exchange must fail when the ctx deadline passes")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("ctx deadline of 100ms took %v; the flat timeout won", elapsed)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
}

// TestParticipantUnreachableMidWalk takes one participant server down between
// registration and query: the walk must degrade to an unreachable violation
// for that hop instead of failing the whole query.
func TestParticipantUnreachableMidWalk(t *testing.T) {
	d := deploy(t, 3, nil)
	// Find p1's server through the directory the deployment built and cut it.
	if err := d.stop("p1"); err != nil {
		t.Fatal(err)
	}
	result, err := d.client.QueryPath(context.Background(), d.product, core.Good)
	if err != nil {
		t.Fatalf("query with a dead hop must still answer: %v", err)
	}
	if !result.Violated(core.ViolationUnreachable) {
		t.Fatalf("dead participant must surface as unreachable: %+v", result.Violations)
	}
	if len(result.Path) != 1 {
		t.Fatalf("walk must stop at the dead hop: path=%v", result.Path)
	}
}

// TestSharedPoolConcurrentQueries hammers one shared proxy client (one pool)
// with concurrent full path queries — the race-detector workout for the
// pooled transport end to end.
func TestSharedPoolConcurrentQueries(t *testing.T) {
	d := deploy(t, 3, nil)
	const workers = 12
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			result, err := d.client.QueryPath(context.Background(), d.product, core.Good)
			if err == nil && len(result.Path) != 3 {
				err = errors.New("short path")
			}
			errCh <- err
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := d.client.Pool().Stats(); st.Open > DefaultPoolSize {
		t.Fatalf("pool bound violated: %+v", st)
	}
}

// BenchmarkPoolExchange compares the pooled transport against the historical
// dial-per-request behaviour on the same server.
func BenchmarkPoolExchange(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					env, err := wire.ReadMessage(conn)
					if err != nil {
						return
					}
					resp, _ := wire.NewEnvelope(wire.TypeAck, nil)
					resp.ReqID = env.RequestID()
					if err := wire.WriteEnvelope(conn, resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	addr := ln.Addr().String()

	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"pooled", nil},
		{"dial-per-request", []Option{WithDialPerRequest()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			p := NewPool(addr, mode.opts...)
			defer p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Exchange(context.Background(), wire.TypeGetParams, struct{}{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
