package supplychain

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestGraphJSONRoundTrip(t *testing.T) {
	g := FigureOneGraph()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(&back) {
		t.Fatal("graph must survive a JSON round trip")
	}
	// Deterministic output: re-marshaling yields identical bytes.
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatal("graph serialization must be deterministic")
	}
}

func TestGraphJSONRejectsBadEdges(t *testing.T) {
	var g Graph
	bad := `{"participants":["a"],"edges":[{"from":"a","to":"ghost"}]}`
	if err := json.Unmarshal([]byte(bad), &g); err == nil {
		t.Fatal("edge to unknown vertex must be rejected")
	}
	loop := `{"participants":["a"],"edges":[{"from":"a","to":"a"}]}`
	if err := json.Unmarshal([]byte(loop), &g); err == nil {
		t.Fatal("self-loop must be rejected")
	}
	empty := `{"participants":[""],"edges":[]}`
	if err := json.Unmarshal([]byte(empty), &g); err == nil {
		t.Fatal("empty participant id must be rejected")
	}
	if err := json.Unmarshal([]byte("not json"), &g); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestGraphEqual(t *testing.T) {
	a := FigureOneGraph()
	b := FigureOneGraph()
	if !a.Equal(b) {
		t.Fatal("identical graphs must compare equal")
	}
	b.RemoveEdge("v0", "v2")
	if a.Equal(b) {
		t.Fatal("edge removal must break equality")
	}
	c := FigureOneGraph()
	c.AddParticipant("extra")
	if a.Equal(c) {
		t.Fatal("extra vertex must break equality")
	}
}

func TestRandomSplitterCoversAllTags(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	split := RandomSplitter(rng)
	children := []ParticipantID{"a", "b", "c"}
	tags, err := MintTags("r", 30)
	if err != nil {
		t.Fatal(err)
	}
	out := split(children, tags)
	total := 0
	for child, batch := range out {
		found := false
		for _, c := range children {
			if c == child {
				found = true
			}
		}
		if !found {
			t.Fatalf("splitter routed to unknown child %s", child)
		}
		total += len(batch)
	}
	if total != 30 {
		t.Fatalf("splitter must assign every tag: %d/30", total)
	}
	if split(nil, tags) != nil {
		t.Fatal("no children must yield nil split")
	}
}

func TestRandomSplitterDeterministicWithSeed(t *testing.T) {
	tags, err := MintTags("d", 10)
	if err != nil {
		t.Fatal(err)
	}
	children := []ParticipantID{"a", "b"}
	a := RandomSplitter(rand.New(rand.NewSource(9)))(children, tags)
	b := RandomSplitter(rand.New(rand.NewSource(9)))(children, tags)
	for child := range a {
		if len(a[child]) != len(b[child]) {
			t.Fatal("same seed must reproduce the split")
		}
	}
}

func TestRandomSplitterNilRNGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil rng must panic")
		}
	}()
	RandomSplitter(nil)
}

func TestRunTaskWithRandomSplitter(t *testing.T) {
	g := FigureOneGraph()
	parts := NewParticipants(g)
	tags, err := MintTags("rnd", 6)
	if err != nil {
		t.Fatal(err)
	}
	result, err := RunTask(g, parts, "v0", tags, nil, RandomSplitter(rand.New(rand.NewSource(3))))
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Paths) != 6 {
		t.Fatalf("all products must have paths, got %d", len(result.Paths))
	}
	for id, path := range result.Paths {
		for i := 1; i < len(path); i++ {
			if !g.HasEdge(path[i-1], path[i]) {
				t.Fatalf("product %s hop %s→%s has no edge", id, path[i-1], path[i])
			}
		}
	}
}
