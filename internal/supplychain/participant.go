package supplychain

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"desword/internal/rfid"
)

// Errors reported by participant operations.
var (
	ErrTraceExists  = errors.New("supplychain: trace already recorded for product")
	ErrTraceMissing = errors.New("supplychain: no trace recorded for product")
)

// TraceData produces the production-information part da_v^id of an
// RFID-trace: process operation, ingredients, parameters, and so on.
type TraceData func(v ParticipantID, id ProductID) []byte

// DefaultTraceData is a simple production record generator used by examples
// and tests.
func DefaultTraceData(v ParticipantID, id ProductID) []byte {
	return []byte(fmt.Sprintf("participant=%s;product=%s;op=process;station=1", v, id))
}

// Participant is a supply-chain participant: it operates an RFID reader and
// keeps a private database of the RFID-traces it created. Safe for
// concurrent use.
type Participant struct {
	id     ParticipantID
	reader *rfid.Reader

	mu     sync.RWMutex
	traces map[ProductID]Trace
}

// NewParticipant creates a participant with an empty trace database.
func NewParticipant(id ParticipantID) *Participant {
	return &Participant{
		id:     id,
		reader: rfid.NewReader(string(id)),
		traces: make(map[ProductID]Trace),
	}
}

// ID returns the participant's identity.
func (p *Participant) ID() ParticipantID { return p.id }

// Reader returns the participant's RFID reader.
func (p *Participant) Reader() *rfid.Reader { return p.reader }

// Process receives a product batch: the participant reads every tag and
// records an RFID-trace for each product in its database (§II.A).
func (p *Participant) Process(batch []*rfid.Tag, data TraceData) error {
	if data == nil {
		data = DefaultTraceData
	}
	for _, obs := range p.reader.ReadBatch(batch) {
		id := ProductID(obs.TagID)
		if err := p.RecordTrace(Trace{Product: id, Data: data(p.id, id)}); err != nil {
			return err
		}
	}
	return nil
}

// RecordTrace stores one RFID-trace. A participant records at most one trace
// per product per distribution task.
func (p *Participant) RecordTrace(tr Trace) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.traces[tr.Product]; exists {
		return fmt.Errorf("%w: %s at %s", ErrTraceExists, tr.Product, p.id)
	}
	p.traces[tr.Product] = tr
	return nil
}

// Trace looks up the trace for one product.
func (p *Participant) Trace(id ProductID) (Trace, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	tr, ok := p.traces[id]
	return tr, ok
}

// Traces returns a sorted copy of the participant's trace database.
func (p *Participant) Traces() []Trace {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Trace, 0, len(p.traces))
	for _, tr := range p.traces {
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Product < out[j].Product })
	return out
}

// TraceCount returns the number of recorded traces.
func (p *Participant) TraceCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.traces)
}

// The three distribution-phase dishonest behaviours of §III.A operate
// directly on the trace database before POC construction. They are exposed
// so the adversary package can exercise the threat model; honest code never
// calls them.

// DeleteTrace removes the trace for id (the "Deletion" behaviour).
func (p *Participant) DeleteTrace(id ProductID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.traces[id]; !ok {
		return fmt.Errorf("%w: %s at %s", ErrTraceMissing, id, p.id)
	}
	delete(p.traces, id)
	return nil
}

// AddFakeTrace inserts a trace for a product the participant never processed
// (the "Addition" behaviour).
func (p *Participant) AddFakeTrace(tr Trace) error {
	return p.RecordTrace(tr)
}

// ModifyTrace rewrites the information part of an existing trace (the
// "Modification" behaviour).
func (p *Participant) ModifyTrace(id ProductID, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.traces[id]; !ok {
		return fmt.Errorf("%w: %s at %s", ErrTraceMissing, id, p.id)
	}
	p.traces[id] = Trace{Product: id, Data: data}
	return nil
}
