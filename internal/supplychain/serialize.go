package supplychain

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"desword/internal/rfid"
)

// graphJSON is the serialized digraph form: sorted vertices and edges, so
// output is deterministic and diff-friendly for ops tooling.
type graphJSON struct {
	Participants []ParticipantID `json:"participants"`
	Edges        []Edge          `json:"edges"`
}

// MarshalJSON serializes the digraph deterministically.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(graphJSON{
		Participants: g.Participants(),
		Edges:        g.Edges(),
	})
}

// UnmarshalJSON reconstructs a digraph, validating every edge.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var decoded graphJSON
	if err := json.Unmarshal(data, &decoded); err != nil {
		return fmt.Errorf("supplychain: parsing graph: %w", err)
	}
	fresh := NewGraph()
	for _, v := range decoded.Participants {
		if v == "" {
			return fmt.Errorf("supplychain: empty participant id in graph")
		}
		fresh.AddParticipant(v)
	}
	for _, e := range decoded.Edges {
		if err := fresh.AddEdge(e.From, e.To); err != nil {
			return fmt.Errorf("supplychain: graph edge %s→%s: %w", e.From, e.To, err)
		}
	}
	*g = Graph{nodes: fresh.nodes, succ: fresh.succ, pred: fresh.pred}
	return nil
}

// Equal reports whether two digraphs have the same vertices and edges.
func (g *Graph) Equal(o *Graph) bool {
	gp, op := g.Participants(), o.Participants()
	if len(gp) != len(op) {
		return false
	}
	for i := range gp {
		if gp[i] != op[i] {
			return false
		}
	}
	ge, oe := g.Edges(), o.Edges()
	if len(ge) != len(oe) {
		return false
	}
	for i := range ge {
		if ge[i] != oe[i] {
			return false
		}
	}
	return true
}

// RandomSplitter deals each tag to an independently, uniformly chosen child
// using the given source — the workload generator for randomized
// distribution experiments. A nil rng panics early rather than silently
// derandomizing.
func RandomSplitter(rng *rand.Rand) Splitter {
	if rng == nil {
		panic("supplychain: RandomSplitter requires a rand source")
	}
	return func(children []ParticipantID, batch []*rfid.Tag) map[ParticipantID][]*rfid.Tag {
		if len(children) == 0 {
			return nil
		}
		out := make(map[ParticipantID][]*rfid.Tag, len(children))
		for _, tag := range batch {
			child := children[rng.Intn(len(children))]
			out[child] = append(out[child], tag)
		}
		return out
	}
}
