package supplychain

import (
	"errors"
	"fmt"
	"sort"

	"desword/internal/rfid"
)

// This file implements distribution tasks (§II.A): a batch of products flows
// from an initial participant toward leaf participants along directed edges;
// every participant on a product's path processes it (reads its tag, records
// a trace) and splits its batch among its children.

// Errors reported by distribution tasks.
var (
	ErrNotInitial    = errors.New("supplychain: task must start at an initial participant")
	ErrNoParticipant = errors.New("supplychain: graph vertex has no participant runtime")
)

// Splitter decides how a participant divides its processed batch among its
// children. Implementations must assign every tag to exactly one child (or
// to none only if children is empty).
type Splitter func(children []ParticipantID, batch []*rfid.Tag) map[ParticipantID][]*rfid.Tag

// RoundRobinSplitter deals tags to children in rotation — the default batch
// division policy.
func RoundRobinSplitter(children []ParticipantID, batch []*rfid.Tag) map[ParticipantID][]*rfid.Tag {
	if len(children) == 0 {
		return nil
	}
	out := make(map[ParticipantID][]*rfid.Tag, len(children))
	for i, tag := range batch {
		child := children[i%len(children)]
		out[child] = append(out[child], tag)
	}
	return out
}

// FirstChildSplitter sends the whole batch to the first child, producing a
// single linear path — useful for path-length-controlled experiments.
func FirstChildSplitter(children []ParticipantID, batch []*rfid.Tag) map[ParticipantID][]*rfid.Tag {
	if len(children) == 0 {
		return nil
	}
	return map[ParticipantID][]*rfid.Tag{children[0]: batch}
}

// TaskResult is the ground truth of one distribution task, kept by the test
// harness and experiments (the real system has no global observer).
type TaskResult struct {
	// Initial is the participant the task started from.
	Initial ParticipantID
	// Paths maps every product to the ordered participant path it took.
	Paths map[ProductID][]ParticipantID
	// Involved lists every participant that processed at least one product.
	Involved []ParticipantID
	// UsedEdges lists every parent→child edge that carried at least one
	// product.
	UsedEdges []Edge
}

// PathOf returns the recorded path of one product.
func (r *TaskResult) PathOf(id ProductID) ([]ParticipantID, bool) {
	path, ok := r.Paths[id]
	return path, ok
}

// RunTask executes a distribution task: the initial participant receives the
// full batch, and batches propagate down the digraph with each participant
// processing then splitting. The graph must be acyclic and the initial
// participant must have no incoming edges.
func RunTask(
	g *Graph,
	participants map[ParticipantID]*Participant,
	initial ParticipantID,
	tags []*rfid.Tag,
	data TraceData,
	split Splitter,
) (*TaskResult, error) {
	if err := g.CheckAcyclic(); err != nil {
		return nil, err
	}
	if !g.HasParticipant(initial) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownParticipant, initial)
	}
	if len(g.Parents(initial)) != 0 {
		return nil, fmt.Errorf("%w: %s has parents", ErrNotInitial, initial)
	}
	if split == nil {
		split = RoundRobinSplitter
	}

	result := &TaskResult{
		Initial: initial,
		Paths:   make(map[ProductID][]ParticipantID, len(tags)),
	}
	involved := make(map[ParticipantID]bool)
	usedEdge := make(map[Edge]bool)

	type delivery struct {
		to    ParticipantID
		batch []*rfid.Tag
	}
	queue := []delivery{{to: initial, batch: tags}}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		if len(d.batch) == 0 {
			continue
		}
		p, ok := participants[d.to]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoParticipant, d.to)
		}
		if err := p.Process(d.batch, data); err != nil {
			return nil, fmt.Errorf("supplychain: %s processing batch: %w", d.to, err)
		}
		involved[d.to] = true
		for _, tag := range d.batch {
			result.Paths[ProductID(tag.ID())] = append(result.Paths[ProductID(tag.ID())], d.to)
		}
		children := g.Children(d.to)
		if len(children) == 0 {
			continue // leaf participant: products stop here
		}
		for child, subBatch := range split(children, d.batch) {
			if len(subBatch) == 0 {
				continue
			}
			if !g.HasEdge(d.to, child) {
				return nil, fmt.Errorf("supplychain: splitter routed %s→%s without an edge", d.to, child)
			}
			usedEdge[Edge{From: d.to, To: child}] = true
			queue = append(queue, delivery{to: child, batch: subBatch})
		}
	}

	result.Involved = sortedKeys(involved)
	for e := range usedEdge {
		result.UsedEdges = append(result.UsedEdges, e)
	}
	sort.Slice(result.UsedEdges, func(i, j int) bool {
		if result.UsedEdges[i].From != result.UsedEdges[j].From {
			return result.UsedEdges[i].From < result.UsedEdges[j].From
		}
		return result.UsedEdges[i].To < result.UsedEdges[j].To
	})
	return result, nil
}

// MintTags creates n product tags with ids prefix-1 … prefix-n.
func MintTags(prefix string, n int) ([]*rfid.Tag, error) {
	tags := make([]*rfid.Tag, 0, n)
	for i := 1; i <= n; i++ {
		tag, err := rfid.NewTag(fmt.Sprintf("%s%d", prefix, i))
		if err != nil {
			return nil, fmt.Errorf("supplychain: minting tag %d: %w", i, err)
		}
		tags = append(tags, tag)
	}
	return tags, nil
}

// LineGraph builds a linear chain p0→p1→…→p(n-1) with its participant
// runtimes — the fixture for path-length-controlled experiments.
func LineGraph(n int) (*Graph, map[ParticipantID]*Participant) {
	g := NewGraph()
	parts := make(map[ParticipantID]*Participant, n)
	var prev ParticipantID
	for i := 0; i < n; i++ {
		id := ParticipantID(fmt.Sprintf("p%d", i))
		g.AddParticipant(id)
		parts[id] = NewParticipant(id)
		if i > 0 {
			if err := g.AddEdge(prev, id); err != nil {
				panic(fmt.Sprintf("supplychain: building line graph: %v", err))
			}
		}
		prev = id
	}
	return g, parts
}

// NewParticipants builds participant runtimes for every vertex of a graph.
func NewParticipants(g *Graph) map[ParticipantID]*Participant {
	out := make(map[ParticipantID]*Participant)
	for _, v := range g.Participants() {
		out[v] = NewParticipant(v)
	}
	return out
}
