package supplychain

import (
	"testing"

	"desword/internal/rfid"
)

func TestGraphBasicOperations(t *testing.T) {
	g := NewGraph()
	g.AddParticipant("a")
	g.AddParticipant("b")
	g.AddParticipant("a") // idempotent
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge("a", "b") || g.HasEdge("b", "a") {
		t.Fatal("edges must be directed")
	}
	if err := g.AddEdge("a", "b"); err == nil {
		t.Fatal("duplicate edge must be rejected")
	}
	if err := g.AddEdge("a", "a"); err == nil {
		t.Fatal("self-loop must be rejected")
	}
	if err := g.AddEdge("a", "ghost"); err == nil {
		t.Fatal("edge to unknown vertex must be rejected")
	}
	if got := g.Children("a"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Children(a) = %v", got)
	}
	if got := g.Parents("b"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Parents(b) = %v", got)
	}
	g.RemoveEdge("a", "b")
	if g.HasEdge("a", "b") {
		t.Fatal("removed edge must be gone")
	}
}

func TestGraphRemoveParticipantCleansEdges(t *testing.T) {
	g := NewGraph()
	for _, v := range []ParticipantID{"a", "b", "c"} {
		g.AddParticipant(v)
	}
	mustEdge(t, g, "a", "b")
	mustEdge(t, g, "b", "c")
	g.RemoveParticipant("b")
	if g.HasParticipant("b") {
		t.Fatal("b must be removed")
	}
	if len(g.Children("a")) != 0 || len(g.Parents("c")) != 0 {
		t.Fatal("incident edges must be removed with the vertex")
	}
}

func mustEdge(t *testing.T, g *Graph, from, to ParticipantID) {
	t.Helper()
	if err := g.AddEdge(from, to); err != nil {
		t.Fatal(err)
	}
}

func TestInitialsAndLeaves(t *testing.T) {
	g := FigureOneGraph()
	initials := g.Initials()
	if len(initials) != 2 || initials[0] != "v0" || initials[1] != "v1" {
		t.Fatalf("Initials() = %v, want [v0 v1]", initials)
	}
	leaves := g.Leaves()
	want := []ParticipantID{"v5", "v7", "v8", "v9"}
	if len(leaves) != len(want) {
		t.Fatalf("Leaves() = %v, want %v", leaves, want)
	}
	for i := range want {
		if leaves[i] != want[i] {
			t.Fatalf("Leaves() = %v, want %v", leaves, want)
		}
	}
}

func TestFigureOnePathExists(t *testing.T) {
	g := FigureOneGraph()
	// The paper's example: id1 follows v0→v2→v5.
	if !g.HasEdge("v0", "v2") || !g.HasEdge("v2", "v5") {
		t.Fatal("Figure 1 path v0→v2→v5 must exist")
	}
	if !g.PathExists("v0", "v9") {
		t.Fatal("products from v0 must be able to reach v9")
	}
	if g.PathExists("v5", "v0") {
		t.Fatal("no backward paths")
	}
	if g.PathExists("ghost", "v0") {
		t.Fatal("unknown source must report no path")
	}
}

func TestCheckAcyclic(t *testing.T) {
	g := FigureOneGraph()
	if err := g.CheckAcyclic(); err != nil {
		t.Fatalf("Figure 1 graph must be acyclic: %v", err)
	}
	c := NewGraph()
	for _, v := range []ParticipantID{"a", "b", "c"} {
		c.AddParticipant(v)
	}
	mustEdge(t, c, "a", "b")
	mustEdge(t, c, "b", "c")
	mustEdge(t, c, "c", "a")
	if err := c.CheckAcyclic(); err == nil {
		t.Fatal("cycle must be detected")
	}
}

func TestEdgesSorted(t *testing.T) {
	g := FigureOneGraph()
	edges := g.Edges()
	if len(edges) != 12 {
		t.Fatalf("Figure 1 has 12 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		prev, cur := edges[i-1], edges[i]
		if prev.From > cur.From || (prev.From == cur.From && prev.To > cur.To) {
			t.Fatal("edges must be sorted")
		}
	}
}

func TestParticipantProcessRecordsTraces(t *testing.T) {
	p := NewParticipant("v2")
	tags, err := MintTags("id", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Process(tags, nil); err != nil {
		t.Fatal(err)
	}
	if p.TraceCount() != 3 {
		t.Fatalf("TraceCount() = %d", p.TraceCount())
	}
	tr, ok := p.Trace("id2")
	if !ok {
		t.Fatal("trace for id2 must exist")
	}
	if tr.Product != "id2" || len(tr.Data) == 0 {
		t.Fatalf("unexpected trace %+v", tr)
	}
	for _, tag := range tags {
		if tag.ReadCount() != 1 {
			t.Fatal("every tag must be read exactly once")
		}
	}
}

func TestParticipantDuplicateTraceRejected(t *testing.T) {
	p := NewParticipant("v2")
	if err := p.RecordTrace(Trace{Product: "id1", Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := p.RecordTrace(Trace{Product: "id1", Data: []byte("y")}); err == nil {
		t.Fatal("duplicate trace must be rejected")
	}
}

func TestParticipantDishonestMutations(t *testing.T) {
	p := NewParticipant("v2")
	if err := p.RecordTrace(Trace{Product: "id1", Data: []byte("real")}); err != nil {
		t.Fatal(err)
	}
	if err := p.DeleteTrace("id1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Trace("id1"); ok {
		t.Fatal("deleted trace must be gone")
	}
	if err := p.DeleteTrace("id1"); err == nil {
		t.Fatal("deleting a missing trace must error")
	}
	if err := p.AddFakeTrace(Trace{Product: "fake", Data: []byte("forged")}); err != nil {
		t.Fatal(err)
	}
	if err := p.ModifyTrace("fake", []byte("changed")); err != nil {
		t.Fatal(err)
	}
	tr, _ := p.Trace("fake")
	if string(tr.Data) != "changed" {
		t.Fatal("modified trace must carry new data")
	}
	if err := p.ModifyTrace("missing", nil); err == nil {
		t.Fatal("modifying a missing trace must error")
	}
}

func TestRunTaskFigureOne(t *testing.T) {
	g := FigureOneGraph()
	parts := NewParticipants(g)
	tags, err := MintTags("id", 8)
	if err != nil {
		t.Fatal(err)
	}
	result, err := RunTask(g, parts, "v0", tags, nil, RoundRobinSplitter)
	if err != nil {
		t.Fatalf("RunTask: %v", err)
	}
	if len(result.Paths) != 8 {
		t.Fatalf("all 8 products must have paths, got %d", len(result.Paths))
	}
	for id, path := range result.Paths {
		if path[0] != "v0" {
			t.Fatalf("product %s must start at v0", id)
		}
		last := path[len(path)-1]
		if len(g.Children(last)) != 0 {
			t.Fatalf("product %s must end at a leaf, ended at %s", id, last)
		}
		// Every hop must follow a real edge, and the participant must hold a
		// trace for the product.
		for i := 1; i < len(path); i++ {
			if !g.HasEdge(path[i-1], path[i]) {
				t.Fatalf("product %s hop %s→%s has no edge", id, path[i-1], path[i])
			}
		}
		for _, v := range path {
			if _, ok := parts[v].Trace(id); !ok {
				t.Fatalf("%s must hold a trace for %s", v, id)
			}
		}
	}
	for _, e := range result.UsedEdges {
		if !g.HasEdge(e.From, e.To) {
			t.Fatalf("used edge %v not in graph", e)
		}
	}
}

func TestRunTaskLineGraph(t *testing.T) {
	g, parts := LineGraph(5)
	tags, err := MintTags("id", 2)
	if err != nil {
		t.Fatal(err)
	}
	result, err := RunTask(g, parts, "p0", tags, nil, FirstChildSplitter)
	if err != nil {
		t.Fatal(err)
	}
	path, ok := result.PathOf("id1")
	if !ok || len(path) != 5 {
		t.Fatalf("line graph path must have 5 hops, got %v", path)
	}
	if len(result.Involved) != 5 {
		t.Fatalf("all 5 participants must be involved, got %v", result.Involved)
	}
}

func TestRunTaskValidation(t *testing.T) {
	g := FigureOneGraph()
	parts := NewParticipants(g)
	tags, err := MintTags("id", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTask(g, parts, "ghost", tags, nil, nil); err == nil {
		t.Fatal("unknown initial must be rejected")
	}
	if _, err := RunTask(g, parts, "v2", tags, nil, nil); err == nil {
		t.Fatal("non-initial start must be rejected")
	}
	delete(parts, "v2")
	if _, err := RunTask(g, parts, "v0", tags, nil, nil); err == nil {
		t.Fatal("missing participant runtime must be rejected")
	}
	// Cyclic graph.
	c := NewGraph()
	c.AddParticipant("a")
	c.AddParticipant("b")
	mustEdge(t, c, "a", "b")
	mustEdge(t, c, "b", "a")
	if _, err := RunTask(c, map[ParticipantID]*Participant{}, "a", tags, nil, nil); err == nil {
		t.Fatal("cyclic graph must be rejected")
	}
}

func TestSplitterRoutingWithoutEdgeRejected(t *testing.T) {
	g, parts := LineGraph(3)
	tags, err := MintTags("id", 1)
	if err != nil {
		t.Fatal(err)
	}
	evil := func(children []ParticipantID, batch []*rfid.Tag) map[ParticipantID][]*rfid.Tag {
		return map[ParticipantID][]*rfid.Tag{"p2": batch} // skips p1
	}
	if _, err := RunTask(g, parts, "p0", tags, nil, evil); err == nil {
		t.Fatal("routing without an edge must be rejected")
	}
}

func TestRoundRobinSplitterCoversAllTags(t *testing.T) {
	children := []ParticipantID{"a", "b", "c"}
	tags, err := MintTags("id", 7)
	if err != nil {
		t.Fatal(err)
	}
	split := RoundRobinSplitter(children, tags)
	total := 0
	for _, batch := range split {
		total += len(batch)
	}
	if total != 7 {
		t.Fatalf("splitter must assign every tag, assigned %d/7", total)
	}
	if RoundRobinSplitter(nil, tags) != nil {
		t.Fatal("no children must yield nil split")
	}
}
