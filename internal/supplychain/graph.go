// Package supplychain models the RFID-enabled supply chain of DE-Sword §II.A:
// a dynamic digraph of participants, products labeled with RFID tags,
// participant trace databases, and distribution tasks that move product
// batches from an initial participant down to leaf participants.
package supplychain

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ParticipantID names a supply-chain participant (a vertex of the digraph).
type ParticipantID string

// ProductID is the unique identifier carried in a product's RFID tag.
type ProductID string

// Trace is an RFID-trace t_v^id = (id, da_v^id): the record a participant
// creates in its database when a product flows through it.
type Trace struct {
	Product ProductID `json:"product"`
	Data    []byte    `json:"data"`
}

// Errors reported by graph operations.
var (
	ErrUnknownParticipant = errors.New("supplychain: unknown participant")
	ErrDuplicateEdge      = errors.New("supplychain: edge already exists")
	ErrSelfLoop           = errors.New("supplychain: self-loop not allowed")
	ErrCycle              = errors.New("supplychain: digraph contains a cycle")
)

// Edge is a directed edge vi→vj: products may proceed to vj after vi.
type Edge struct {
	From ParticipantID `json:"from"`
	To   ParticipantID `json:"to"`
}

// Graph is the dynamic participant digraph of Figure 1. Participants and
// edges can be added and removed at any time, matching the paper's dynamic
// supply chain. All methods are safe for concurrent use.
type Graph struct {
	mu    sync.RWMutex
	nodes map[ParticipantID]struct{}
	succ  map[ParticipantID]map[ParticipantID]struct{}
	pred  map[ParticipantID]map[ParticipantID]struct{}
}

// NewGraph returns an empty digraph.
func NewGraph() *Graph {
	return &Graph{
		nodes: make(map[ParticipantID]struct{}),
		succ:  make(map[ParticipantID]map[ParticipantID]struct{}),
		pred:  make(map[ParticipantID]map[ParticipantID]struct{}),
	}
}

// AddParticipant inserts a vertex; adding an existing vertex is a no-op.
func (g *Graph) AddParticipant(v ParticipantID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[v]; ok {
		return
	}
	g.nodes[v] = struct{}{}
	g.succ[v] = make(map[ParticipantID]struct{})
	g.pred[v] = make(map[ParticipantID]struct{})
}

// RemoveParticipant deletes a vertex and all incident edges.
func (g *Graph) RemoveParticipant(v ParticipantID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[v]; !ok {
		return
	}
	for child := range g.succ[v] {
		delete(g.pred[child], v)
	}
	for parent := range g.pred[v] {
		delete(g.succ[parent], v)
	}
	delete(g.nodes, v)
	delete(g.succ, v)
	delete(g.pred, v)
}

// AddEdge inserts a directed edge from→to.
func (g *Graph) AddEdge(from, to ParticipantID) error {
	if from == to {
		return fmt.Errorf("%w: %s", ErrSelfLoop, from)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownParticipant, from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownParticipant, to)
	}
	if _, ok := g.succ[from][to]; ok {
		return fmt.Errorf("%w: %s→%s", ErrDuplicateEdge, from, to)
	}
	g.succ[from][to] = struct{}{}
	g.pred[to][from] = struct{}{}
	return nil
}

// RemoveEdge deletes a directed edge; removing a missing edge is a no-op.
func (g *Graph) RemoveEdge(from, to ParticipantID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if m, ok := g.succ[from]; ok {
		delete(m, to)
	}
	if m, ok := g.pred[to]; ok {
		delete(m, from)
	}
}

// HasParticipant reports whether v is a vertex.
func (g *Graph) HasParticipant(v ParticipantID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.nodes[v]
	return ok
}

// HasEdge reports whether from→to is an edge.
func (g *Graph) HasEdge(from, to ParticipantID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.succ[from][to]
	return ok
}

// Children returns the direct successors of v, sorted.
func (g *Graph) Children(v ParticipantID) []ParticipantID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return sortedKeys(g.succ[v])
}

// Parents returns the direct predecessors of v, sorted.
func (g *Graph) Parents(v ParticipantID) []ParticipantID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return sortedKeys(g.pred[v])
}

// Participants returns all vertices, sorted.
func (g *Graph) Participants() []ParticipantID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return sortedKeys(g.nodes)
}

// Initials returns the participants with no incoming edges.
func (g *Graph) Initials() []ParticipantID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []ParticipantID
	for v := range g.nodes {
		if len(g.pred[v]) == 0 {
			out = append(out, v)
		}
	}
	sortIDs(out)
	return out
}

// Leaves returns the participants with no outgoing edges.
func (g *Graph) Leaves() []ParticipantID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []ParticipantID
	for v := range g.nodes {
		if len(g.succ[v]) == 0 {
			out = append(out, v)
		}
	}
	sortIDs(out)
	return out
}

// Edges returns all edges, sorted.
func (g *Graph) Edges() []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Edge
	for from, tos := range g.succ {
		for to := range tos {
			out = append(out, Edge{From: from, To: to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// CheckAcyclic verifies the digraph has no directed cycle; distribution
// tasks require acyclic flow.
func (g *Graph) CheckAcyclic() error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make(map[ParticipantID]int, len(g.nodes))
	var visit func(v ParticipantID) error
	visit = func(v ParticipantID) error {
		switch state[v] {
		case inStack:
			return fmt.Errorf("%w: through %s", ErrCycle, v)
		case done:
			return nil
		}
		state[v] = inStack
		for child := range g.succ[v] {
			if err := visit(child); err != nil {
				return err
			}
		}
		state[v] = done
		return nil
	}
	for v := range g.nodes {
		if err := visit(v); err != nil {
			return err
		}
	}
	return nil
}

// PathExists reports whether a directed path from→to exists.
func (g *Graph) PathExists(from, to ParticipantID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.nodes[from]; !ok {
		return false
	}
	seen := map[ParticipantID]bool{from: true}
	queue := []ParticipantID{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == to {
			return true
		}
		for child := range g.succ[v] {
			if !seen[child] {
				seen[child] = true
				queue = append(queue, child)
			}
		}
	}
	return false
}

func sortedKeys[M ~map[ParticipantID]V, V any](m M) []ParticipantID {
	out := make([]ParticipantID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []ParticipantID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// FigureOneGraph builds the 10-participant example digraph of the paper's
// Figure 1: initial participants v0 and v1, leaf participants v5, v7, v8 and
// v9, and the path v0→v2→v5 taken by product id1.
func FigureOneGraph() *Graph {
	g := NewGraph()
	for i := 0; i <= 9; i++ {
		g.AddParticipant(ParticipantID(fmt.Sprintf("v%d", i)))
	}
	edges := []Edge{
		{"v0", "v2"}, {"v0", "v3"},
		{"v1", "v3"}, {"v1", "v4"},
		{"v2", "v5"}, {"v2", "v6"},
		{"v3", "v6"}, {"v3", "v8"},
		{"v4", "v8"}, {"v4", "v9"},
		{"v6", "v7"}, {"v6", "v9"},
	}
	for _, e := range edges {
		if err := g.AddEdge(e.From, e.To); err != nil {
			// The edge list above is a fixed valid constant; failure here is
			// a programming error.
			panic(fmt.Sprintf("supplychain: building Figure 1 graph: %v", err))
		}
	}
	return g
}
