// Package adversary implements the dishonest-participant behaviours of
// DE-Sword's threat model (§III), for security tests and incentive
// experiments.
//
// Distribution-phase behaviours mutate a participant's trace database in the
// window between processing products and committing the POC — deletion,
// addition and modification of RFID-traces (§III.A). They are not
// cryptographically detectable (that is the point of the paper: the
// double-edged reputation incentive discourages them); the incentive
// simulator quantifies their expected cost.
//
// Query-phase behaviours wrap an honest core.Member with a lying Responder —
// claiming non-processing, claiming processing, returning wrong RFID-traces
// or wrong next participants, or refusing demands (§III.B). Given a correct
// POC list, every one of them is detected by the proxy through ZK-EDB
// soundness, which the package's tests assert one by one.
package adversary

import (
	"context"
	"fmt"

	"desword/internal/core"
	"desword/internal/poc"
	"desword/internal/supplychain"
)

// DistributionBehavior mutates a member's trace database before POC
// construction (§III.A).
type DistributionBehavior func(m *core.Member) error

// Deletion removes the RFID-traces of the given products — the participant
// hides that it processed them (Figure 3a).
func Deletion(ids ...poc.ProductID) DistributionBehavior {
	return func(m *core.Member) error {
		for _, id := range ids {
			if err := m.Participant().DeleteTrace(id); err != nil {
				return fmt.Errorf("adversary: deletion: %w", err)
			}
		}
		return nil
	}
}

// Addition inserts fake RFID-traces for products the participant never
// processed (Figure 3b).
func Addition(traces ...poc.Trace) DistributionBehavior {
	return func(m *core.Member) error {
		for _, tr := range traces {
			if err := m.Participant().AddFakeTrace(tr); err != nil {
				return fmt.Errorf("adversary: addition: %w", err)
			}
		}
		return nil
	}
}

// Modification rewrites the information part of an existing trace, e.g. to
// scrub sensitive production data before committing (§III.A).
func Modification(id poc.ProductID, data []byte) DistributionBehavior {
	return func(m *core.Member) error {
		if err := m.Participant().ModifyTrace(id, data); err != nil {
			return fmt.Errorf("adversary: modification: %w", err)
		}
		return nil
	}
}

// Apply runs distribution-phase behaviours against a member. Call it after
// the distribution task has executed but before BuildPOCList commits the
// POCs — the paper's threat window.
func Apply(m *core.Member, behaviors ...DistributionBehavior) error {
	for _, b := range behaviors {
		if err := b(m); err != nil {
			return err
		}
	}
	return nil
}

// Dishonest wraps an honest member with the query-phase behaviours of
// §III.B. Zero-valued fields leave the corresponding behaviour honest.
type Dishonest struct {
	// Member is the underlying honest runtime (its POC was committed
	// normally; lying happens only at query time).
	Member *core.Member

	// DenyProcessing lists products for which the participant claims
	// non-processing in bad-product queries although it committed a trace
	// ("claim non-processing").
	DenyProcessing map[poc.ProductID]bool
	// FakeProcessing lists products for which the participant claims
	// processing in good-product queries although it committed no trace
	// ("claim processing"). The forgery attempt relabels its non-ownership
	// proof as an ownership proof.
	FakeProcessing map[poc.ProductID]bool
	// WrongTrace substitutes the returned RFID-trace data for the listed
	// products ("return wrong RFID-trace").
	WrongTrace map[poc.ProductID][]byte
	// WrongNext substitutes the named next participant for the listed
	// products ("return the identity of a wrong participant").
	WrongNext map[poc.ProductID]supplychain.ParticipantID
	// RefuseDemand makes the participant ignore ownership demands after a
	// failed non-ownership claim, leaving the proxy with no valid proof.
	RefuseDemand bool
}

// NewDishonest wraps a member with no lying behaviours enabled.
func NewDishonest(m *core.Member) *Dishonest {
	return &Dishonest{
		Member:         m,
		DenyProcessing: make(map[poc.ProductID]bool),
		FakeProcessing: make(map[poc.ProductID]bool),
		WrongTrace:     make(map[poc.ProductID][]byte),
		WrongNext:      make(map[poc.ProductID]supplychain.ParticipantID),
	}
}

var _ core.Responder = (*Dishonest)(nil)

// Query implements core.Responder with the configured lies layered over the
// honest response.
func (d *Dishonest) Query(ctx context.Context, taskID string, id poc.ProductID, quality core.Quality) (*core.Response, error) {
	resp, err := d.Member.Query(ctx, taskID, id, quality)
	if err != nil {
		return nil, err
	}
	if quality == core.Bad && d.DenyProcessing[id] && resp.Claim == core.ClaimProcessed {
		// Claim non-processing: the best available forgery is to relabel the
		// ownership proof — ZK-EDB soundness guarantees no valid
		// non-ownership proof exists for a committed key.
		forged := *resp.Proof
		forged.Kind = poc.NonOwnership
		return &core.Response{Claim: core.ClaimNotProcessed, Proof: &forged}, nil
	}
	if quality == core.Good && d.FakeProcessing[id] && resp.Claim == core.ClaimNotProcessed {
		// Claim processing: relabel the non-ownership proof as ownership.
		forged := *resp.Proof
		forged.Kind = poc.Ownership
		return &core.Response{Claim: core.ClaimProcessed, Proof: &forged, Next: resp.Next}, nil
	}
	d.tamper(id, resp)
	return resp, nil
}

// DemandOwnership implements core.Responder.
func (d *Dishonest) DemandOwnership(ctx context.Context, taskID string, id poc.ProductID) (*core.Response, error) {
	if d.RefuseDemand {
		// Stonewall: answer with a bare denial and no proof.
		return &core.Response{Claim: core.ClaimNotProcessed}, nil
	}
	resp, err := d.Member.DemandOwnership(ctx, taskID, id)
	if err != nil {
		return nil, err
	}
	d.tamper(id, resp)
	return resp, nil
}

// tamper applies the wrong-trace and wrong-next substitutions to an honest
// response carrying an ownership proof.
func (d *Dishonest) tamper(id poc.ProductID, resp *core.Response) {
	if data, ok := d.WrongTrace[id]; ok && resp.Proof != nil && resp.Proof.Kind == poc.Ownership {
		forged := *resp.Proof
		forgedZK := *forged.ZK
		forgedZK.Value = data
		forged.ZK = &forgedZK
		resp.Proof = &forged
	}
	if next, ok := d.WrongNext[id]; ok && resp.Claim == core.ClaimProcessed {
		resp.Next = next
	}
}

// Collude applies the same query-phase configuration to every member of a
// path — the coordinated same-path attack the paper's threat model closes
// with ("participants on a same path may coordinate to adopt same types of
// dishonest behaviours").
func Collude(members []*core.Member, configure func(*Dishonest)) []*Dishonest {
	out := make([]*Dishonest, 0, len(members))
	for _, m := range members {
		d := NewDishonest(m)
		configure(d)
		out = append(out, d)
	}
	return out
}
