package adversary

import (
	"context"
	"fmt"
	"testing"

	"desword/internal/core"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/zkedb"
)

var _advPS *poc.PublicParams

func advPS(t *testing.T) *poc.PublicParams {
	t.Helper()
	if _advPS == nil {
		ps, err := poc.PSGen(zkedb.TestParams())
		if err != nil {
			t.Fatalf("PSGen: %v", err)
		}
		_advPS = ps
	}
	return _advPS
}

// lineFixture distributes one product down p0→p1→…→p(n-1) and returns the
// pieces needed to wire dishonest responders.
type lineFixture struct {
	ps      *poc.PublicParams
	members map[poc.ParticipantID]*core.Member
	dist    *core.DistributionResult
	product poc.ProductID
}

// newLineFixture runs the task but NOT the POC commitment when
// mutate != nil: the mutation executes inside the §III.A threat window.
func newLineFixture(t *testing.T, n int, mutate func(map[poc.ParticipantID]*core.Member)) *lineFixture {
	t.Helper()
	ps := advPS(t)
	g, parts := supplychain.LineGraph(n)
	members := make(map[poc.ParticipantID]*core.Member, n)
	for id, p := range parts {
		members[id] = core.NewMember(ps, p)
	}
	tags, err := supplychain.MintTags("prod", 1)
	if err != nil {
		t.Fatal(err)
	}
	ground, err := supplychain.RunTask(g, parts, "p0", tags, nil, supplychain.FirstChildSplitter)
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(members)
	}
	list, err := core.BuildPOCList(members, ground, "task-line")
	if err != nil {
		t.Fatal(err)
	}
	return &lineFixture{
		ps:      ps,
		members: members,
		dist:    &core.DistributionResult{TaskID: "task-line", List: list, Ground: ground},
		product: "prod1",
	}
}

// proxyWith builds a proxy whose resolver serves dishonest wrappers where
// configured and honest members elsewhere.
func (fx *lineFixture) proxyWith(t *testing.T, dishonest map[poc.ParticipantID]*Dishonest) *core.Proxy {
	t.Helper()
	resolver := func(v poc.ParticipantID) (core.Responder, error) {
		if d, ok := dishonest[v]; ok {
			return d, nil
		}
		if m, ok := fx.members[v]; ok {
			return m, nil
		}
		return nil, fmt.Errorf("no member %s", v)
	}
	proxy := core.NewProxy(fx.ps, reputation.DefaultStrategy(), resolver)
	if err := proxy.RegisterList(fx.dist.TaskID, fx.dist.List); err != nil {
		t.Fatal(err)
	}
	return proxy
}

// --- Query-phase behaviours (§III.B): all cryptographically detected. ---

func TestClaimNonProcessingDetected(t *testing.T) {
	fx := newLineFixture(t, 4, nil)
	liar := NewDishonest(fx.members["p1"])
	liar.DenyProcessing[fx.product] = true
	proxy := fx.proxyWith(t, map[poc.ParticipantID]*Dishonest{"p1": liar})

	result, err := proxy.QueryPath(context.Background(), fx.product, core.Bad)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Violated(core.ViolationClaimNonProcessing) {
		t.Fatalf("claim non-processing must be detected: %+v", result.Violations)
	}
	// The ownership demand recovers the trace and the walk continues to the
	// leaf despite the lie.
	if _, ok := result.Traces["p1"]; !ok {
		t.Fatal("demanded ownership proof must recover p1's trace")
	}
	if !result.Complete || len(result.Path) != 4 {
		t.Fatalf("path must survive the lie: %v", result.Path)
	}
	// And the liar is penalized beyond the ordinary negative award.
	honest := proxy.Ledger().Score("p2")
	if proxy.Ledger().Score("p1") >= honest {
		t.Fatal("the liar must score strictly worse than honest path members")
	}
}

func TestClaimNonProcessingWithStonewallDetected(t *testing.T) {
	fx := newLineFixture(t, 3, nil)
	liar := NewDishonest(fx.members["p1"])
	liar.DenyProcessing[fx.product] = true
	liar.RefuseDemand = true
	proxy := fx.proxyWith(t, map[poc.ParticipantID]*Dishonest{"p1": liar})

	result, err := proxy.QueryPath(context.Background(), fx.product, core.Bad)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Violated(core.ViolationNoValidProof) {
		t.Fatalf("stonewalling must be detected as no-valid-proof: %+v", result.Violations)
	}
	// p1 is identified (on the path, penalized) even without a trace.
	found := false
	for _, v := range result.Path {
		if v == "p1" {
			found = true
		}
	}
	if !found {
		t.Fatal("stonewalling participant must still be identified")
	}
	if _, ok := result.Traces["p1"]; ok {
		t.Fatal("no trace can be recovered from a stonewalling participant")
	}
}

func TestClaimProcessingDetected(t *testing.T) {
	// Graph: p0→p1, p1→{p2, imposter}; the product flows p0→p1→p2. The
	// dishonest p1 names imposter as next hop and the imposter claims
	// processing with a forged proof (good-product case).
	ps := advPS(t)
	g := supplychain.NewGraph()
	for _, v := range []supplychain.ParticipantID{"p0", "p1", "p2", "imposter"} {
		g.AddParticipant(v)
	}
	for _, e := range [][2]supplychain.ParticipantID{{"p0", "p1"}, {"p1", "p2"}, {"p1", "imposter"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	parts := supplychain.NewParticipants(g)
	members := make(map[poc.ParticipantID]*core.Member)
	for id, p := range parts {
		members[id] = core.NewMember(ps, p)
	}
	tags, err := supplychain.MintTags("prod", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin over sorted children {imposter, p2}: prod1→imposter,
	// prod2→p2. Query prod2 so the true path is p0→p1→p2.
	ground, err := supplychain.RunTask(g, parts, "p0", tags, nil, supplychain.RoundRobinSplitter)
	if err != nil {
		t.Fatal(err)
	}
	list, err := core.BuildPOCList(members, ground, "task-imp")
	if err != nil {
		t.Fatal(err)
	}

	target := poc.ProductID("prod2")
	if got := ground.Paths[target]; len(got) != 3 || got[2] != "p2" {
		t.Fatalf("fixture expectation broken: path of %s = %v", target, got)
	}

	misdirector := NewDishonest(members["p1"])
	misdirector.WrongNext[target] = "imposter"
	imposter := NewDishonest(members["imposter"])
	imposter.FakeProcessing[target] = true

	resolver := func(v poc.ParticipantID) (core.Responder, error) {
		switch v {
		case "p1":
			return misdirector, nil
		case "imposter":
			return imposter, nil
		default:
			return members[v], nil
		}
	}
	proxy := core.NewProxy(ps, reputation.DefaultStrategy(), resolver)
	if err := proxy.RegisterList("task-imp", list); err != nil {
		t.Fatal(err)
	}

	result, err := proxy.QueryPath(context.Background(), target, core.Good)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Violated(core.ViolationClaimProcessing) {
		t.Fatalf("forged ownership claim must be detected: %+v", result.Violations)
	}
	if !result.Violated(core.ViolationWrongNextHop) {
		t.Fatalf("the misdirection must be detected: %+v", result.Violations)
	}
	// The fallback child probe must still recover the true path.
	if len(result.Path) != 3 || result.Path[2] != "p2" {
		t.Fatalf("true path must be recovered: %v", result.Path)
	}
	if proxy.Ledger().Score("imposter") >= 0 {
		t.Fatal("the imposter must be penalized, not rewarded")
	}
}

func TestWrongTraceDetected(t *testing.T) {
	fx := newLineFixture(t, 3, nil)
	forger := NewDishonest(fx.members["p1"])
	forger.WrongTrace[fx.product] = []byte("laundered production record")
	proxy := fx.proxyWith(t, map[poc.ParticipantID]*Dishonest{"p1": forger})

	result, err := proxy.QueryPath(context.Background(), fx.product, core.Good)
	if err != nil {
		t.Fatal(err)
	}
	// Claim 2: no second valid ownership proof with different trace exists,
	// so the substituted value fails verification.
	if !result.Violated(core.ViolationClaimProcessing) {
		t.Fatalf("wrong trace must be detected: %+v", result.Violations)
	}
	if tr, ok := result.Traces["p1"]; ok && string(tr.Data) == "laundered production record" {
		t.Fatal("the forged trace must never be accepted")
	}
}

func TestWrongNextHopCase2Detected(t *testing.T) {
	fx := newLineFixture(t, 4, nil)
	misdirector := NewDishonest(fx.members["p1"])
	misdirector.WrongNext[fx.product] = "p3" // real child is p2; p3 is not a child of p1
	proxy := fx.proxyWith(t, map[poc.ParticipantID]*Dishonest{"p1": misdirector})

	result, err := proxy.QueryPath(context.Background(), fx.product, core.Good)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Violated(core.ViolationWrongNextHop) {
		t.Fatalf("naming a non-child must be detected: %+v", result.Violations)
	}
	// The child probe recovers the true continuation.
	if !result.Complete || len(result.Path) != 4 {
		t.Fatalf("true path must be recovered: %v", result.Path)
	}
}

func TestCollusionOnPathDetected(t *testing.T) {
	// Every participant on the path denies processing the bad product — the
	// paper's coordinated attack. Each is individually caught.
	fx := newLineFixture(t, 4, nil)
	colluders := Collude(
		[]*core.Member{fx.members["p0"], fx.members["p1"], fx.members["p2"], fx.members["p3"]},
		func(d *Dishonest) { d.DenyProcessing[fx.product] = true },
	)
	dis := make(map[poc.ParticipantID]*Dishonest, len(colluders))
	for _, d := range colluders {
		dis[d.Member.ID()] = d
	}
	proxy := fx.proxyWith(t, dis)

	result, err := proxy.QueryPath(context.Background(), fx.product, core.Bad)
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	for _, v := range result.Violations {
		if v.Type == core.ViolationClaimNonProcessing {
			caught++
		}
	}
	if caught != 4 {
		t.Fatalf("all 4 colluders must be caught, got %d: %+v", caught, result.Violations)
	}
	if !result.Complete || len(result.Path) != 4 {
		t.Fatalf("full path must be recovered despite collusion: %v", result.Path)
	}
}

// --- Distribution-phase behaviours (§III.A): the double edge. ---

func TestDeletionEscapesIdentificationBothWays(t *testing.T) {
	// p1 deletes its trace before committing its POC. It cannot be
	// identified afterwards — in the bad case it avoids the negative score,
	// in the good case it forfeits the positive score. Both edges.
	mutate := func(members map[poc.ParticipantID]*core.Member) {
		if err := Apply(members["p1"], Deletion("prod1")); err != nil {
			t.Fatal(err)
		}
	}

	for _, quality := range []core.Quality{core.Good, core.Bad} {
		fx := newLineFixture(t, 4, mutate)
		proxy := fx.proxyWith(t, nil)
		result, err := proxy.QueryPath(context.Background(), fx.product, quality)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range result.Path {
			if v == "p1" {
				t.Fatalf("deleter must not be identified (%v case)", quality)
			}
		}
		if proxy.Ledger().Score("p1") != 0 {
			t.Fatalf("deleter's score must be untouched in the %v case, got %v",
				quality, proxy.Ledger().Score("p1"))
		}
		// The deletion breaks the queryable path: downstream traces are lost.
		if result.Complete {
			t.Fatalf("deletion must break the path walk (%v case): %v", quality, result.Path)
		}
	}
}

func TestDeletionLosesPositiveScore(t *testing.T) {
	// Control: with everyone honest, p1 earns a positive score on a good
	// query; after deletion it earns nothing. The "lost opportunity" edge.
	honest := newLineFixture(t, 4, nil)
	proxyH := honest.proxyWith(t, nil)
	if _, err := proxyH.QueryPath(context.Background(), honest.product, core.Good); err != nil {
		t.Fatal(err)
	}
	honestScore := proxyH.Ledger().Score("p1")
	if honestScore <= 0 {
		t.Fatalf("honest p1 must earn a positive score, got %v", honestScore)
	}

	deleted := newLineFixture(t, 4, func(members map[poc.ParticipantID]*core.Member) {
		if err := Apply(members["p1"], Deletion("prod1")); err != nil {
			t.Fatal(err)
		}
	})
	proxyD := deleted.proxyWith(t, nil)
	if _, err := proxyD.QueryPath(context.Background(), deleted.product, core.Good); err != nil {
		t.Fatal(err)
	}
	if got := proxyD.Ledger().Score("p1"); got >= honestScore {
		t.Fatalf("deleter must earn less than honest self: %v vs %v", got, honestScore)
	}
}

func TestAdditionIsDoubleEdged(t *testing.T) {
	// An initial participant commits a fake trace for a product it never
	// distributed. When that product is queried good, the addition pays
	// (positive score); when bad, it backfires (negative score) — Figure 3b.
	ps := advPS(t)
	phantom := poc.ProductID("phantom-1")

	build := func(t *testing.T) (*core.Proxy, *core.Member) {
		t.Helper()
		g, parts := supplychain.LineGraph(2)
		members := make(map[poc.ParticipantID]*core.Member)
		for id, p := range parts {
			members[id] = core.NewMember(ps, p)
		}
		tags, err := supplychain.MintTags("real", 1)
		if err != nil {
			t.Fatal(err)
		}
		ground, err := supplychain.RunTask(g, parts, "p0", tags, nil, supplychain.FirstChildSplitter)
		if err != nil {
			t.Fatal(err)
		}
		if err := Apply(members["p0"], Addition(poc.Trace{Product: phantom, Data: []byte("forged record")})); err != nil {
			t.Fatal(err)
		}
		list, err := core.BuildPOCList(members, ground, "task-add")
		if err != nil {
			t.Fatal(err)
		}
		resolver := func(v poc.ParticipantID) (core.Responder, error) { return members[v], nil }
		proxy := core.NewProxy(ps, reputation.DefaultStrategy(), resolver)
		if err := proxy.RegisterList("task-add", list); err != nil {
			t.Fatal(err)
		}
		return proxy, members["p0"]
	}

	proxyGood, _ := build(t)
	resGood, err := proxyGood.QueryPath(context.Background(), phantom, core.Good)
	if err != nil {
		t.Fatal(err)
	}
	if len(resGood.Path) == 0 || resGood.Path[0] != "p0" {
		t.Fatalf("adder must be identified for its fake trace: %v", resGood.Path)
	}
	if proxyGood.Ledger().Score("p0") <= 0 {
		t.Fatal("good edge: addition must pay a positive score")
	}

	proxyBad, _ := build(t)
	resBad, err := proxyBad.QueryPath(context.Background(), phantom, core.Bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(resBad.Path) == 0 || resBad.Path[0] != "p0" {
		t.Fatalf("adder must be identified in the bad case too: %v", resBad.Path)
	}
	if proxyBad.Ledger().Score("p0") >= 0 {
		t.Fatal("bad edge: addition must cost a negative score")
	}
}

func TestModificationChangesCommittedTrace(t *testing.T) {
	// Modification before commit is binding: the query returns the modified
	// data (the proxy cannot tell — which is why the paper addresses the
	// modification motive with ZK privacy rather than detection).
	fx := newLineFixture(t, 3, func(members map[poc.ParticipantID]*core.Member) {
		if err := Apply(members["p1"], Modification("prod1", []byte("sanitized"))); err != nil {
			t.Fatal(err)
		}
	})
	proxy := fx.proxyWith(t, nil)
	result, err := proxy.QueryPath(context.Background(), fx.product, core.Good)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Violations) != 0 {
		t.Fatalf("pre-commit modification is not detectable: %+v", result.Violations)
	}
	if string(result.Traces["p1"].Data) != "sanitized" {
		t.Fatalf("query must return the committed (modified) trace, got %q", result.Traces["p1"].Data)
	}
}

func TestApplyPropagatesErrors(t *testing.T) {
	ps := advPS(t)
	m := core.NewMember(ps, supplychain.NewParticipant("x"))
	if err := Apply(m, Deletion("never-recorded")); err == nil {
		t.Fatal("deleting a missing trace must error")
	}
	if err := Apply(m, Modification("never-recorded", nil)); err == nil {
		t.Fatal("modifying a missing trace must error")
	}
	if err := Apply(m, Addition(poc.Trace{Product: "f", Data: nil})); err != nil {
		t.Fatal(err)
	}
	if err := Apply(m, Addition(poc.Trace{Product: "f", Data: nil})); err == nil {
		t.Fatal("double addition must error")
	}
}
