package qmercurial

import (
	"crypto/sha256"
	"math/big"
	"testing"
)

const (
	testQ           = 8
	testMessageBits = 64
	testModulusBits = 512
)

func testKey(t *testing.T) *PublicKey {
	t.Helper()
	pk, err := KGen(testQ, testMessageBits, testModulusBits)
	if err != nil {
		t.Fatalf("KGen: %v", err)
	}
	return pk
}

func testVector(pk *PublicKey, seed string) []*big.Int {
	ms := make([]*big.Int, pk.Q())
	for i := range ms {
		digest := sha256.Sum256([]byte(seed + string(rune('a'+i))))
		m := new(big.Int).SetBytes(digest[:])
		m.Mod(m, pk.VC.MaxMessage())
		ms[i] = m
	}
	return ms
}

func TestHardCommitHardOpenEverySlot(t *testing.T) {
	pk := testKey(t)
	ms := testVector(pk, "hard")
	c, dec, err := pk.HCom(ms)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pk.Q(); i++ {
		op, err := pk.HOpen(dec, i)
		if err != nil {
			t.Fatalf("HOpen slot %d: %v", i, err)
		}
		if !pk.VerHOpen(c, op) {
			t.Fatalf("hard opening of slot %d must verify", i)
		}
		if op.Message.Cmp(ms[i]) != 0 {
			t.Fatalf("slot %d opened to wrong message", i)
		}
	}
}

func TestHardCommitSoftOpen(t *testing.T) {
	pk := testKey(t)
	ms := testVector(pk, "tease")
	c, dec, err := pk.HCom(ms)
	if err != nil {
		t.Fatal(err)
	}
	op, err := pk.SOpenHard(dec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !pk.VerSOpen(c, op) {
		t.Fatal("tease of a hard q-commitment must verify")
	}
}

func TestSoftCommitSoftOpensToAnything(t *testing.T) {
	pk := testKey(t)
	c, dec := pk.SCom()
	for _, slot := range []int{0, 3, 7} {
		m := big.NewInt(int64(1000 + slot))
		op, err := pk.SOpenSoft(dec, slot, m)
		if err != nil {
			t.Fatalf("SOpenSoft slot %d: %v", slot, err)
		}
		if !pk.VerSOpen(c, op) {
			t.Fatalf("soft opening at slot %d must verify", slot)
		}
	}
}

func TestSoftCommitSameSlotDifferentMessages(t *testing.T) {
	// The defining mercurial capability: one soft commitment, multiple
	// inconsistent teases.
	pk := testKey(t)
	c, dec := pk.SCom()
	a, err := pk.SOpenSoft(dec, 2, big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := pk.SOpenSoft(dec, 2, big.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if !pk.VerSOpen(c, a) || !pk.VerSOpen(c, b) {
		t.Fatal("both inconsistent teases of a soft commitment must verify")
	}
}

func TestHardOpeningWrongMessageRejected(t *testing.T) {
	pk := testKey(t)
	ms := testVector(pk, "bind")
	c, dec, err := pk.HCom(ms)
	if err != nil {
		t.Fatal(err)
	}
	op, err := pk.HOpen(dec, 1)
	if err != nil {
		t.Fatal(err)
	}
	op.Message = new(big.Int).Add(op.Message, big.NewInt(1))
	if pk.VerHOpen(c, op) {
		t.Fatal("substituted slot message must not verify")
	}
}

func TestHardOpeningSubstitutedVRejected(t *testing.T) {
	pk := testKey(t)
	ms := testVector(pk, "bindV")
	c, dec, err := pk.HCom(ms)
	if err != nil {
		t.Fatal(err)
	}
	// Fabricate a V' that opens slot 1 to a forged message, then try to pass
	// it off inside a hard opening of the original commitment.
	forged := big.NewInt(31337)
	vPrime, wPrime, err := pk.VC.Fabricate(1, forged)
	if err != nil {
		t.Fatal(err)
	}
	op, err := pk.HOpen(dec, 1)
	if err != nil {
		t.Fatal(err)
	}
	op.V = vPrime
	op.Witness = wPrime
	op.Message = forged
	if pk.VerHOpen(c, op) {
		t.Fatal("hard opening with substituted V must not verify: the mercurial layer binds H(V)")
	}
}

func TestTeaseOfHardCommitmentBindsV(t *testing.T) {
	pk := testKey(t)
	ms := testVector(pk, "teasebind")
	c, dec, err := pk.HCom(ms)
	if err != nil {
		t.Fatal(err)
	}
	forged := big.NewInt(99)
	vPrime, wPrime, err := pk.VC.Fabricate(0, forged)
	if err != nil {
		t.Fatal(err)
	}
	op, err := pk.SOpenHard(dec, 0)
	if err != nil {
		t.Fatal(err)
	}
	op.V = vPrime
	op.Witness = wPrime
	op.Message = forged
	if pk.VerSOpen(c, op) {
		t.Fatal("tease of a hard commitment with substituted V must not verify")
	}
}

func TestSoftCommitmentCannotHardOpen(t *testing.T) {
	pk := testKey(t)
	c, dec := pk.SCom()
	// Best effort forgery: fabricate V and reuse the soft randomness as if it
	// were hard randomness.
	v, w, err := pk.VC.Fabricate(0, big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	forged := HardOpening{
		Slot:    0,
		Message: big.NewInt(7),
		V:       v,
		Witness: w,
	}
	forged.MCOpen.M = pk.hashV(v)
	forged.MCOpen.R0 = dec.MCDec.R0
	forged.MCOpen.R1 = dec.MCDec.R1
	if pk.VerHOpen(c, forged) {
		t.Fatal("soft q-commitment must not hard-open")
	}
}

func TestOpeningsRejectMalformed(t *testing.T) {
	pk := testKey(t)
	ms := testVector(pk, "malformed")
	c, dec, err := pk.HCom(ms)
	if err != nil {
		t.Fatal(err)
	}
	if pk.VerHOpen(c, HardOpening{}) {
		t.Fatal("empty hard opening must be rejected")
	}
	if pk.VerSOpen(c, SoftOpening{}) {
		t.Fatal("empty soft opening must be rejected")
	}
	if _, err := pk.HOpen(dec, -1); err == nil {
		t.Fatal("negative slot must be rejected")
	}
	if _, err := pk.HOpen(dec, pk.Q()); err == nil {
		t.Fatal("slot == q must be rejected")
	}
	if _, err := pk.SOpenHard(dec, pk.Q()); err == nil {
		t.Fatal("tease at slot == q must be rejected")
	}
	_, sdec := pk.SCom()
	if _, err := pk.SOpenSoft(sdec, pk.Q(), big.NewInt(1)); err == nil {
		t.Fatal("soft open at slot == q must be rejected")
	}
	if _, _, err := pk.HCom(ms[:2]); err == nil {
		t.Fatal("short vector must be rejected")
	}
}

func TestRehydrate(t *testing.T) {
	pk := testKey(t)
	clone := &PublicKey{VC: pk.VC}
	if err := clone.Rehydrate(); err != nil {
		t.Fatal(err)
	}
	ms := testVector(pk, "wire")
	c, dec, err := pk.HCom(ms)
	if err != nil {
		t.Fatal(err)
	}
	op, err := pk.HOpen(dec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !clone.VerHOpen(c, op) {
		t.Fatal("rehydrated key must verify openings from the original")
	}
	var empty PublicKey
	if err := empty.Rehydrate(); err == nil {
		t.Fatal("rehydrating empty key must fail")
	}
}

func TestCommitmentConstantSize(t *testing.T) {
	pk := testKey(t)
	ms := testVector(pk, "size")
	hc, _, err := pk.HCom(ms)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := pk.SCom()
	if len(hc.Bytes()) != len(sc.Bytes()) {
		t.Fatal("hard and soft commitments must be indistinguishable in size")
	}
}
