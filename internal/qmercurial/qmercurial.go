// Package qmercurial implements a trapdoor q-mercurial commitment (qTMC): a
// mercurial commitment to an ordered vector of q messages that can be opened
// (hard or soft) at a single position with a constant-size opening.
//
// The DE-Sword paper instantiates this with the pairing-based scheme of
// Libert and Yung (TCC 2010). The Go standard library has no pairings, so
// this package composes two stdlib-friendly layers with the same interface
// and cost profile (DESIGN.md §3):
//
//   - an RSA vector commitment V binding each slot with constant-size
//     witnesses (package rsavc), and
//   - a Pedersen-style trapdoor mercurial commitment to H(V) (package
//     mercurial) providing the hard/soft semantics.
//
// A hard q-commitment publishes only the mercurial commitment to H(V); V
// itself travels inside openings. A soft q-commitment is a bare soft
// mercurial commitment: when soft-opened at slot i to a message m, the
// committer fabricates a fresh V′ that opens slot i to m (rsavc.Fabricate)
// and teases the mercurial layer to H(V′). Soft q-commitments can never be
// hard-opened, and hard q-commitments can only be opened — hard or soft — to
// the slot values they committed, which is exactly the binding DE-Sword's
// Claims 1 and 2 rest on.
//
// The seven algorithms benchmarked in the paper's Fig. 4 map to: KGen, HCom,
// SCom, HOpen, SOpenHard/SOpenSoft, VerHOpen, VerSOpen.
package qmercurial

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"desword/internal/mercurial"
	"desword/internal/rsavc"
)

// Errors reported by this package.
var (
	ErrSlotOutOfRange = errors.New("qmercurial: slot index outside [0, q)")
	ErrVectorLength   = errors.New("qmercurial: vector length differs from q")
)

// PublicKey is the qTMC commitment key.
type PublicKey struct {
	VC  *rsavc.Params        `json:"vc"`
	TMC *mercurial.PublicKey `json:"-"`
}

// Commitment is a (hard or soft) q-mercurial commitment: constant size,
// flavour-hiding.
type Commitment struct {
	MC mercurial.Commitment `json:"mc"`
}

// HardDecommit is the committer's secret state for a hard q-commitment.
type HardDecommit struct {
	Messages []*big.Int
	Hiding   *big.Int
	V        *big.Int
	MCDec    mercurial.HardDecommit
}

// SoftDecommit is the committer's secret state for a soft q-commitment.
type SoftDecommit struct {
	MCDec mercurial.SoftDecommit
}

// HardOpening opens one slot of a hard q-commitment with full (hard)
// certainty.
type HardOpening struct {
	Slot    int                   `json:"slot"`
	Message *big.Int              `json:"message"`
	V       *big.Int              `json:"v"`
	Witness rsavc.Witness         `json:"witness"`
	MCOpen  mercurial.HardOpening `json:"mc_open"`
}

// SoftOpening opens one slot of a (hard or soft) q-commitment with tease
// semantics.
type SoftOpening struct {
	Slot    int             `json:"slot"`
	Message *big.Int        `json:"message"`
	V       *big.Int        `json:"v"`
	Witness rsavc.Witness   `json:"witness"`
	MCTease mercurial.Tease `json:"mc_tease"`
}

// KGen generates a qTMC key for vectors of length q over messageBits-bit
// messages, with an RSA modulus of modulusBits bits. It corresponds to the
// paper's qKGen and costs Θ(q).
func KGen(q, messageBits, modulusBits int) (*PublicKey, error) {
	vc, err := rsavc.Setup(q, messageBits, modulusBits)
	if err != nil {
		return nil, fmt.Errorf("qmercurial: %w", err)
	}
	return &PublicKey{VC: vc, TMC: mercurial.KGen()}, nil
}

// Rehydrate restores the non-serialized mercurial key after JSON decoding.
func (pk *PublicKey) Rehydrate() error {
	if pk.VC == nil {
		return errors.New("qmercurial: missing vector commitment parameters")
	}
	if err := pk.VC.Rehydrate(); err != nil {
		return err
	}
	pk.TMC = mercurial.KGen()
	return nil
}

// Q returns the vector length.
func (pk *PublicKey) Q() int { return pk.VC.Q }

// hashV maps the RSA commitment into the mercurial message space.
func (pk *PublicKey) hashV(v *big.Int) *big.Int {
	return pk.TMC.Group().HashToScalar([]byte("qmercurial/v"), v.Bytes())
}

// HCom hard-commits to the message vector ms.
func (pk *PublicKey) HCom(ms []*big.Int) (Commitment, HardDecommit, error) {
	return pk.HComFrom(rand.Reader, ms)
}

// HComFrom is HCom with all commitment randomness (the RSA hiding exponent
// and the mercurial layer's scalars) drawn from rnd, enabling seeded
// reproducible tree builds.
func (pk *PublicKey) HComFrom(rnd io.Reader, ms []*big.Int) (Commitment, HardDecommit, error) {
	if len(ms) != pk.VC.Q {
		return Commitment{}, HardDecommit{}, ErrVectorLength
	}
	r, err := pk.VC.RandomHidingFrom(rnd)
	if err != nil {
		return Commitment{}, HardDecommit{}, err
	}
	v, err := pk.VC.Commit(ms, r)
	if err != nil {
		return Commitment{}, HardDecommit{}, err
	}
	mc, mcDec := pk.TMC.HComFrom(rnd, pk.hashV(v))
	msCopy := make([]*big.Int, len(ms))
	copy(msCopy, ms)
	return Commitment{MC: mc}, HardDecommit{Messages: msCopy, Hiding: r, V: v, MCDec: mcDec}, nil
}

// SCom produces a soft q-commitment, committing to no vector at all.
func (pk *PublicKey) SCom() (Commitment, SoftDecommit) {
	return pk.SComFrom(rand.Reader)
}

// SComFrom is SCom with the commitment randomness drawn from rnd.
func (pk *PublicKey) SComFrom(rnd io.Reader) (Commitment, SoftDecommit) {
	mc, mcDec := pk.TMC.SComFrom(rnd)
	return Commitment{MC: mc}, SoftDecommit{MCDec: mcDec}
}

// HOpen hard-opens slot i of a hard q-commitment.
func (pk *PublicKey) HOpen(dec HardDecommit, i int) (HardOpening, error) {
	if i < 0 || i >= pk.VC.Q {
		return HardOpening{}, ErrSlotOutOfRange
	}
	w, err := pk.VC.Open(dec.Messages, dec.Hiding, i)
	if err != nil {
		return HardOpening{}, err
	}
	return HardOpening{
		Slot:    i,
		Message: dec.Messages[i],
		V:       dec.V,
		Witness: w,
		MCOpen:  pk.TMC.HOpen(dec.MCDec),
	}, nil
}

// SOpenHard soft-opens (teases) slot i of a hard q-commitment. Only the
// committed slot value can verify.
func (pk *PublicKey) SOpenHard(dec HardDecommit, i int) (SoftOpening, error) {
	if i < 0 || i >= pk.VC.Q {
		return SoftOpening{}, ErrSlotOutOfRange
	}
	w, err := pk.VC.Open(dec.Messages, dec.Hiding, i)
	if err != nil {
		return SoftOpening{}, err
	}
	return SoftOpening{
		Slot:    i,
		Message: dec.Messages[i],
		V:       dec.V,
		Witness: w,
		MCTease: pk.TMC.SOpenHard(dec.MCDec),
	}, nil
}

// SOpenSoft soft-opens slot i of a *soft* q-commitment to an arbitrary
// message m, fabricating a vector commitment on the fly. Its cost is
// independent of q, matching the flat curves of the paper's Fig. 4(b).
func (pk *PublicKey) SOpenSoft(dec SoftDecommit, i int, m *big.Int) (SoftOpening, error) {
	if i < 0 || i >= pk.VC.Q {
		return SoftOpening{}, ErrSlotOutOfRange
	}
	v, w, err := pk.VC.Fabricate(i, m)
	if err != nil {
		return SoftOpening{}, err
	}
	tease, err := pk.TMC.SOpenSoft(dec.MCDec, pk.hashV(v))
	if err != nil {
		return SoftOpening{}, err
	}
	return SoftOpening{Slot: i, Message: m, V: v, Witness: w, MCTease: tease}, nil
}

// VerHOpen verifies a hard opening of slot i against commitment c.
func (pk *PublicKey) VerHOpen(c Commitment, op HardOpening) bool {
	if op.V == nil || op.Message == nil {
		return false
	}
	if op.MCOpen.M == nil || op.MCOpen.M.Cmp(pk.hashV(op.V)) != 0 {
		return false
	}
	if !pk.TMC.VerHOpen(c.MC, op.MCOpen) {
		return false
	}
	return pk.VC.Verify(op.V, op.Slot, op.Message, op.Witness)
}

// VerSOpen verifies a soft opening of slot i against commitment c.
func (pk *PublicKey) VerSOpen(c Commitment, op SoftOpening) bool {
	if op.V == nil || op.Message == nil {
		return false
	}
	if op.MCTease.M == nil || op.MCTease.M.Cmp(pk.hashV(op.V)) != 0 {
		return false
	}
	if !pk.TMC.VerSOpen(c.MC, op.MCTease) {
		return false
	}
	return pk.VC.Verify(op.V, op.Slot, op.Message, op.Witness)
}

// Equal reports whether two commitments are identical.
func (c Commitment) Equal(o Commitment) bool { return c.MC.Equal(o.MC) }

// Bytes returns the canonical encoding used when hashing this commitment
// into a parent tree node.
func (c Commitment) Bytes() []byte { return c.MC.Bytes() }
