package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// This file is the Prometheus text-exposition conformance gate: a small
// stand-alone parser re-reads what WritePrometheus emits and checks the
// format invariants scrapers rely on — every series line parses, histogram
// bucket vectors are cumulative and end in a +Inf bucket that agrees with
// _count, and _count/_sum agree with the registry's own readings. The fuzz
// target below drives the same round trip with adversarial label values.

// parsedSeries is one parsed exposition line: name, sorted label string, value.
type parsedSeries struct {
	name   string
	labels string // canonical k="v" form, sorted, exemplar-free
	value  float64
}

// parseExposition parses the text format strictly enough to catch framing
// corruption: unknown line shapes, unterminated label quoting, or values that
// do not parse are errors.
func parseExposition(text string) (series []parsedSeries, types map[string]string, err error) {
	types = make(map[string]string)
	for lineNo, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo+1, line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		s, perr := parseSeriesLine(line)
		if perr != nil {
			return nil, nil, fmt.Errorf("line %d: %w", lineNo+1, perr)
		}
		series = append(series, s)
	}
	return series, types, nil
}

func parseSeriesLine(line string) (parsedSeries, error) {
	var s parsedSeries
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("value %q in %q: %w", rest, line, err)
	}
	s.value = v
	return s, nil
}

// parseLabels consumes a {k="v",...} block, unescaping values, and returns
// the canonical sorted label string plus the remainder of the line.
func parseLabels(in string) (string, string, error) {
	if !strings.HasPrefix(in, "{") {
		return "", "", fmt.Errorf("labels must start with {")
	}
	rest := in[1:]
	type kv struct{ k, v string }
	var pairs []kv
	for {
		if strings.HasPrefix(rest, "}") {
			rest = rest[1:]
			break
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return "", "", fmt.Errorf("label without = in %q", in)
		}
		key := rest[:eq]
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return "", "", fmt.Errorf("unquoted label value in %q", in)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return "", "", fmt.Errorf("dangling escape in %q", in)
				}
				i++
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", "", fmt.Errorf("unknown escape \\%c in %q", rest[i], in)
				}
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			if c == '\n' {
				return "", "", fmt.Errorf("raw newline inside label value in %q", in)
			}
			val.WriteByte(c)
		}
		if !closed {
			return "", "", fmt.Errorf("unterminated label value in %q", in)
		}
		pairs = append(pairs, kv{key, val.String()})
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String(), rest, nil
}

func parseValue(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkHistogramInvariants verifies, for every histogram family in the parsed
// series, that its bucket vector is cumulative, terminates in a +Inf bucket,
// and that the +Inf bucket equals the _count series.
func checkHistogramInvariants(t *testing.T, series []parsedSeries, types map[string]string) {
	t.Helper()
	// Group bucket lines by (family, labels-without-le).
	type hist struct {
		uppers []float64
		counts []float64
		count  float64
		sum    float64
		hasCnt bool
	}
	hists := make(map[string]*hist)
	get := func(key string) *hist {
		h, ok := hists[key]
		if !ok {
			h = &hist{}
			hists[key] = h
		}
		return h
	}
	for _, s := range series {
		switch {
		case strings.HasSuffix(s.name, "_bucket") && types[strings.TrimSuffix(s.name, "_bucket")] == "histogram":
			base := strings.TrimSuffix(s.name, "_bucket")
			le, rest := extractLE(s.labels)
			if le == "" {
				t.Fatalf("bucket line of %s without le label: %q", base, s.labels)
			}
			upper, err := parseValue(le)
			if err != nil {
				t.Fatalf("unparseable le %q: %v", le, err)
			}
			h := get(base + "{" + rest + "}")
			h.uppers = append(h.uppers, upper)
			h.counts = append(h.counts, s.value)
		case strings.HasSuffix(s.name, "_count") && types[strings.TrimSuffix(s.name, "_count")] == "histogram":
			h := get(strings.TrimSuffix(s.name, "_count") + "{" + s.labels + "}")
			h.count = s.value
			h.hasCnt = true
		case strings.HasSuffix(s.name, "_sum") && types[strings.TrimSuffix(s.name, "_sum")] == "histogram":
			get(strings.TrimSuffix(s.name, "_sum") + "{" + s.labels + "}").sum = s.value
		}
	}
	for key, h := range hists {
		if len(h.uppers) == 0 {
			t.Fatalf("%s: histogram without bucket lines", key)
		}
		for i := 1; i < len(h.uppers); i++ {
			if h.uppers[i] <= h.uppers[i-1] {
				t.Fatalf("%s: bucket uppers not increasing: %v", key, h.uppers)
			}
			if h.counts[i] < h.counts[i-1] {
				t.Fatalf("%s: bucket counts not cumulative: %v", key, h.counts)
			}
		}
		last := len(h.uppers) - 1
		if !math.IsInf(h.uppers[last], 1) {
			t.Fatalf("%s: terminal bucket is %v, want +Inf", key, h.uppers[last])
		}
		if !h.hasCnt {
			t.Fatalf("%s: histogram without _count", key)
		}
		if h.counts[last] != h.count {
			t.Fatalf("%s: +Inf bucket %v != _count %v", key, h.counts[last], h.count)
		}
	}
}

// extractLE splits the le label out of a canonical label string.
func extractLE(labels string) (le, rest string) {
	var kept []string
	for _, part := range splitTopLevel(labels) {
		if strings.HasPrefix(part, `le=`) {
			le = strings.Trim(strings.TrimPrefix(part, `le=`), `"`)
			continue
		}
		kept = append(kept, part)
	}
	return le, strings.Join(kept, ",")
}

// splitTopLevel splits a canonical label string on commas outside quotes.
func splitTopLevel(s string) []string {
	var parts []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		parts = append(parts, s[start:])
	}
	return parts
}

// TestExpositionRoundTrip registers a representative mix of series — hostile
// label values included — writes the exposition, parses it back, and checks
// both the histogram invariants and that every counter/gauge value survives
// the round trip.
func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt_requests_total", "requests", "peer", `quo"te`).Add(7)
	reg.Counter("rt_requests_total", "requests", "peer", "line\nbreak").Add(3)
	reg.Gauge("rt_inflight", "in flight").Set(-2)
	h := reg.Histogram("rt_latency_seconds", "latency", []float64{0.01, 0.1, 1}, "peer", `back\slash`)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	series, types, err := parseExposition(b.String())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
	checkHistogramInvariants(t, series, types)

	got := make(map[string]float64)
	for _, s := range series {
		got[s.name+"{"+s.labels+"}"] += s.value
	}
	if v := got[`rt_requests_total{peer="quo\"te"}`]; v != 7 {
		t.Fatalf("counter with quoted label round-tripped to %v, want 7", v)
	}
	if v := got[`rt_requests_total{peer="line\nbreak"}`]; v != 3 {
		t.Fatalf("counter with newline label round-tripped to %v, want 3", v)
	}
	if v := got[`rt_inflight{}`]; v != -2 {
		t.Fatalf("gauge round-tripped to %v, want -2", v)
	}
	if v := got[`rt_latency_seconds_count{peer="back\\slash"}`]; v != 3 {
		t.Fatalf("histogram count round-tripped to %v, want 3", v)
	}
	if v := got[`rt_latency_seconds_sum{peer="back\\slash"}`]; math.Abs(v-5.055) > 1e-9 {
		t.Fatalf("histogram sum round-tripped to %v, want 5.055", v)
	}
}

// FuzzExpositionLabelValues feeds arbitrary label values through a full
// registry→exposition→parser round trip: whatever bytes a peer smuggles into
// a label value, the exposition must stay parseable, the value must
// round-trip exactly, and the histogram invariants must hold.
func FuzzExpositionLabelValues(f *testing.F) {
	f.Add("plain", "other")
	f.Add(`with"quote`, `with\backslash`)
	f.Add("multi\nline", "ends with backslash\\")
	f.Add(`a="b",c="d"`, "},evil_total 42\n")
	f.Fuzz(func(t *testing.T, v1, v2 string) {
		reg := NewRegistry()
		reg.Counter("fz_events_total", "events", "peer", v1).Add(11)
		h := reg.Histogram("fz_latency_seconds", "latency", []float64{0.5}, "peer", v2)
		h.Observe(0.1)
		h.Observe(0.9)

		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		series, types, err := parseExposition(b.String())
		if err != nil {
			t.Fatalf("exposition broken by label values %q/%q: %v\n%s", v1, v2, err, b.String())
		}
		checkHistogramInvariants(t, series, types)
		var names []string
		for _, s := range series {
			names = append(names, s.name)
		}
		// Injection check: only the registered families (and histogram
		// sub-series) may appear.
		for _, n := range names {
			switch n {
			case "fz_events_total", "fz_latency_seconds_bucket",
				"fz_latency_seconds_count", "fz_latency_seconds_sum":
			default:
				t.Fatalf("unexpected series %q injected via label value", n)
			}
		}
		counterSeen := false
		for _, s := range series {
			if s.name == "fz_events_total" {
				counterSeen = true
				if s.value != 11 {
					t.Fatalf("counter value %v, want 11", s.value)
				}
				if want := labelKey([]string{"peer", v1}); canonicalize(s.labels) != canonicalize(want) {
					t.Fatalf("label %q round-tripped to %q", want, s.labels)
				}
			}
		}
		if !counterSeen {
			t.Fatal("counter series vanished from exposition")
		}
	})
}

// canonicalize re-parses a label string so escaping differences between the
// writer (escapeLabel) and the test parser (%q) do not cause false failures.
func canonicalize(labels string) string {
	got, _, err := parseLabels("{" + labels + "}")
	if err != nil {
		return "unparseable:" + labels
	}
	return got
}
