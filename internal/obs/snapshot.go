package obs

import "sort"

// Sample is the point-in-time image of one metric series, complete enough to
// recompute rates and quantiles downstream: counters and gauges carry Value,
// histograms carry their full cumulative bucket vector plus count, sum and
// exemplars. Samples are what the telemetry collector rings hold and what
// travels on the wire's telemetry message, so the JSON form must stay
// self-contained and finite (the +Inf bucket is implied by Count rather than
// serialized).
type Sample struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Labels string `json:"labels,omitempty"`
	// Value carries the counter or gauge reading.
	Value float64 `json:"value,omitempty"`
	// Histogram fields: Uppers are the finite bucket upper bounds and
	// Cumulative the matching cumulative counts; the implicit +Inf bucket's
	// cumulative count equals Count.
	Count      uint64     `json:"count,omitempty"`
	Sum        float64    `json:"sum,omitempty"`
	Uppers     []float64  `json:"uppers,omitempty"`
	Cumulative []uint64   `json:"cumulative,omitempty"`
	Exemplars  []Exemplar `json:"exemplars,omitempty"`
}

// Key identifies the series across snapshots: name plus canonical labels.
func (s *Sample) Key() string { return s.Name + "{" + s.Labels + "}" }

// Snapshot captures every series of the registry, families and series in
// sorted order, reading each value atomically. Concurrent updates during the
// walk are benign: each series is internally consistent, which is all the
// delta arithmetic downstream needs.
func (r *Registry) Snapshot() []Sample {
	// Series maps are mutated under the registry lock by lookup(), so the map
	// walks happen under the read lock too; only the atomic value reads run
	// outside it.
	type seriesRef struct {
		f *family
		s *series
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	refs := make([]seriesRef, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			refs = append(refs, seriesRef{f: f, s: f.series[k]})
		}
	}
	r.mu.RUnlock()

	out := make([]Sample, 0, len(refs))
	for _, ref := range refs {
		f, s := ref.f, ref.s
		sample := Sample{Name: f.name, Kind: f.kind.String(), Labels: s.labels}
		switch f.kind {
		case KindCounter:
			sample.Value = float64(s.counter.Value())
		case KindGauge:
			sample.Value = float64(s.gauge.Value())
		case KindHistogram:
			sample.Uppers = append([]float64(nil), s.hist.upper...)
			sample.Cumulative = make([]uint64, len(s.hist.upper))
			cum := uint64(0)
			for i := range s.hist.upper {
				cum += s.hist.counts[i].Load()
				sample.Cumulative[i] = cum
			}
			sample.Count = s.hist.Count()
			sample.Sum = s.hist.Sum()
			sample.Exemplars = s.hist.Exemplars()
			// The bucket and count reads are lock-free, so an observation
			// landing between them can leave the finite buckets ahead of the
			// count read. Clamp so every snapshot is internally consistent:
			// the implied +Inf bucket must never be negative.
			if n := len(sample.Cumulative); n > 0 && sample.Cumulative[n-1] > sample.Count {
				sample.Count = sample.Cumulative[n-1]
			}
		}
		out = append(out, sample)
	}
	return out
}
