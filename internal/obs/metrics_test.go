package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden locks down the exposition format end to end:
// family ordering, HELP/TYPE lines, label rendering, and the cumulative
// histogram form.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_requests_total", "Total requests.", "method", "get", "code", "200").Add(3)
	reg.Counter("test_requests_total", "", "method", "post", "code", "500").Inc()
	reg.Gauge("test_inflight", "In-flight requests.").Set(7)
	h := reg.Histogram("test_latency_seconds", "Latency.", []float64{0.5, 1}, "op", "read")
	h.Observe(0.25)
	h.Observe(0.5) // bucket bounds are upper-inclusive
	h.Observe(4)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_inflight In-flight requests.
# TYPE test_inflight gauge
test_inflight 7
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{op="read",le="0.5"} 2
test_latency_seconds_bucket{op="read",le="1"} 2
test_latency_seconds_bucket{op="read",le="+Inf"} 3
test_latency_seconds_sum{op="read"} 4.75
test_latency_seconds_count{op="read"} 3
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total{code="200",method="get"} 3
test_requests_total{code="500",method="post"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLabelEscaping checks the three escaped characters of the text format.
func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_escape_total", "", "path", "a\\b\"c\nd").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `test_escape_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped series %q missing from:\n%s", want, b.String())
	}
}

// TestHelpEscaping checks HELP text escaping: backslash and newline are
// escaped (quotes stay literal per the text format), so hostile or merely
// unlucky help strings cannot split a line and corrupt the exposition.
func TestHelpEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_help_escape_total", "line one\nline \\two \"quoted\"").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_help_escape_total line one\nline \\two "quoted"`
	if !strings.Contains(b.String(), want+"\n") {
		t.Errorf("escaped help %q missing from:\n%s", want, b.String())
	}
	// Every line of the exposition must still be parseable: no line may be a
	// bare continuation of smuggled help text.
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "test_") {
			t.Errorf("exposition line %q escaped its record", line)
		}
	}
}

// TestParticipantLabelWithQuotesSurvivesExposition drives a hostile
// participant id through a full family render: ids are attacker-chosen
// strings, and the scrape must stay parseable whatever they contain.
func TestParticipantLabelWithQuotesSurvivesExposition(t *testing.T) {
	reg := NewRegistry()
	hostile := `v0"} 999
injected_metric 1`
	reg.Counter("test_interactions_total", "Per-participant interactions.", "participant", hostile).Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "\ninjected_metric 1\n") {
		t.Fatalf("hostile participant id injected a series:\n%s", out)
	}
	want := `test_interactions_total{participant="v0\"} 999\ninjected_metric 1"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("escaped series %q missing from:\n%s", want, out)
	}
}

// TestRepeatedLookupReturnsSameSeries ensures callers that do not cache
// handles still hit the same underlying series.
func TestRepeatedLookupReturnsSameSeries(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("test_same_total", "", "k", "v")
	b := reg.Counter("test_same_total", "", "k", "v")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("value through second handle = %d, want 1", b.Value())
	}
}

// TestKindMismatchPanics: re-registering a name under a different kind is a
// programming error and must fail loudly.
func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_kind_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	reg.Gauge("test_kind_total", "")
}

// TestConcurrentIncrements hammers one registry from many goroutines —
// counters, gauges, histograms, fresh-series creation and scrapes at once —
// and then checks the totals. Run under -race this is the package's data
// race regression test.
func TestConcurrentIncrements(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Lookup on every iteration to race series creation too.
				reg.Counter("test_conc_total", "").Inc()
				reg.Gauge("test_conc_gauge", "").Add(1)
				reg.Histogram("test_conc_seconds", "", []float64{0.5}, "w", string(rune('a'+w))).Observe(0.25)
			}
		}(w)
	}
	// Scrape concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Errorf("concurrent scrape: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if got := reg.Counter("test_conc_total", "").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("test_conc_gauge", "").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	total := uint64(0)
	for w := 0; w < workers; w++ {
		total += reg.Histogram("test_conc_seconds", "", []float64{0.5}, "w", string(rune('a'+w))).Count()
	}
	if total != workers*perWorker {
		t.Errorf("histogram observations = %d, want %d", total, workers*perWorker)
	}
}

// TestHistogramSum checks the CAS-loop float accumulation.
func TestHistogramSum(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_sum_seconds", "", []float64{1})
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.Observe(0.5)
		}()
	}
	wg.Wait()
	if h.Sum() != n*0.5 {
		t.Errorf("sum = %v, want %v", h.Sum(), n*0.5)
	}
	if h.Count() != n {
		t.Errorf("count = %d, want %d", h.Count(), n)
	}
}
