package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"

	"desword/internal/trace"
)

// LogConfig is the shared logging configuration of the cmd binaries: one
// -log-format/-log-level flag pair, one handler setup.
type LogConfig struct {
	// Format selects the slog handler: "text" or "json".
	Format string
	// Level is the minimum level: "debug", "info", "warn" or "error".
	Level string
}

// RegisterFlags registers -log-format and -log-level on fs (use
// flag.CommandLine in main).
func (c *LogConfig) RegisterFlags(fs *flag.FlagSet) {
	if c.Format == "" {
		c.Format = "text"
	}
	if c.Level == "" {
		c.Level = "info"
	}
	fs.StringVar(&c.Format, "log-format", c.Format, "log output format: text|json")
	fs.StringVar(&c.Level, "log-level", c.Level, "minimum log level: debug|info|warn|error")
}

// NewLogger builds a slog.Logger writing to w under the configuration.
func (c *LogConfig) NewLogger(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(c.Level) {
	case "", "info":
		level = slog.LevelInfo
	case "debug":
		level = slog.LevelDebug
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", c.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch strings.ToLower(c.Format) {
	case "", "text":
		handler = slog.NewTextHandler(w, opts)
	case "json":
		handler = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", c.Format)
	}
	return slog.New(TraceHandler(handler)), nil
}

// TraceHandler wraps a slog.Handler so every record logged under a context
// carrying an active trace span is tagged with trace_id and span_id. That is
// what lets an operator grep one query's trace ID across the proxy's and
// every participant's logs and see the same distributed request.
func TraceHandler(inner slog.Handler) slog.Handler {
	return &traceHandler{inner: inner}
}

type traceHandler struct {
	inner slog.Handler
}

func (h *traceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if span := trace.FromContext(ctx); span != nil {
		r = r.Clone()
		r.AddAttrs(
			slog.String("trace_id", span.TraceID()),
			slog.String("span_id", span.SpanID()),
		)
	}
	return h.inner.Handle(ctx, r)
}

func (h *traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &traceHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *traceHandler) WithGroup(name string) slog.Handler {
	return &traceHandler{inner: h.inner.WithGroup(name)}
}

// Setup builds the logger, installs it as the slog default, and returns it.
func (c *LogConfig) Setup(w io.Writer) (*slog.Logger, error) {
	logger, err := c.NewLogger(w)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(logger)
	return logger, nil
}
