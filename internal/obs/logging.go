package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogConfig is the shared logging configuration of the cmd binaries: one
// -log-format/-log-level flag pair, one handler setup.
type LogConfig struct {
	// Format selects the slog handler: "text" or "json".
	Format string
	// Level is the minimum level: "debug", "info", "warn" or "error".
	Level string
}

// RegisterFlags registers -log-format and -log-level on fs (use
// flag.CommandLine in main).
func (c *LogConfig) RegisterFlags(fs *flag.FlagSet) {
	if c.Format == "" {
		c.Format = "text"
	}
	if c.Level == "" {
		c.Level = "info"
	}
	fs.StringVar(&c.Format, "log-format", c.Format, "log output format: text|json")
	fs.StringVar(&c.Level, "log-level", c.Level, "minimum log level: debug|info|warn|error")
}

// NewLogger builds a slog.Logger writing to w under the configuration.
func (c *LogConfig) NewLogger(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(c.Level) {
	case "", "info":
		level = slog.LevelInfo
	case "debug":
		level = slog.LevelDebug
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", c.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch strings.ToLower(c.Format) {
	case "", "text":
		handler = slog.NewTextHandler(w, opts)
	case "json":
		handler = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", c.Format)
	}
	return slog.New(handler), nil
}

// Setup builds the logger, installs it as the slog default, and returns it.
func (c *LogConfig) Setup(w io.Writer) (*slog.Logger, error) {
	logger, err := c.NewLogger(w)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(logger)
	return logger, nil
}
