package obs

import (
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSnapshotCarriesBucketsAndExemplars(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("snap_events_total", "events").Add(5)
	reg.Gauge("snap_depth", "depth").Set(-3)
	h := reg.Histogram("snap_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.ObserveWithExemplar(0.5, "0123456789abcdef0123456789abcdef")
	h.ObserveWithExemplar(0.05, "") // no trace: observation only

	samples := reg.Snapshot()
	byKey := make(map[string]Sample, len(samples))
	for _, s := range samples {
		byKey[s.Key()] = s
	}
	if got := byKey["snap_events_total{}"]; got.Value != 5 || got.Kind != "counter" {
		t.Fatalf("counter sample = %+v", got)
	}
	if got := byKey["snap_depth{}"]; got.Value != -3 {
		t.Fatalf("gauge sample = %+v", got)
	}
	hs := byKey["snap_latency_seconds{}"]
	if hs.Count != 3 {
		t.Fatalf("histogram count = %d, want 3", hs.Count)
	}
	if len(hs.Uppers) != 3 || len(hs.Cumulative) != 3 {
		t.Fatalf("bucket vectors = %v / %v", hs.Uppers, hs.Cumulative)
	}
	// 0.005 ≤ 0.01; 0.05 ≤ 0.1; 0.5 ≤ 1 → cumulative 1, 2, 3.
	if hs.Cumulative[0] != 1 || hs.Cumulative[1] != 2 || hs.Cumulative[2] != 3 {
		t.Fatalf("cumulative = %v", hs.Cumulative)
	}
	if len(hs.Exemplars) != 1 || hs.Exemplars[0].TraceID != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("exemplars = %+v", hs.Exemplars)
	}
}

func TestExemplarStoreKeepsSlowest(t *testing.T) {
	reg := NewRegistry()
	hh := reg.Histogram("ex_latency_seconds", "latency", []float64{1})
	for i := 0; i < MaxExemplars+4; i++ {
		hh.ObserveWithExemplar(float64(i), strings.Repeat("a", 32))
	}
	ex := hh.Exemplars()
	if len(ex) != MaxExemplars {
		t.Fatalf("store holds %d exemplars, want %d", len(ex), MaxExemplars)
	}
	// Slowest observations win: values MaxExemplars+3 … 4, descending.
	if ex[0].Value != float64(MaxExemplars+3) {
		t.Fatalf("slowest exemplar %v, want %v", ex[0].Value, MaxExemplars+3)
	}
	for i := 1; i < len(ex); i++ {
		if ex[i].Value > ex[i-1].Value {
			t.Fatalf("exemplars not sorted: %+v", ex)
		}
	}
	// A faster observation must not displace anything.
	hh.ObserveWithExemplar(0.5, strings.Repeat("b", 32))
	if got := hh.Exemplars(); got[len(got)-1].Value == 0.5 {
		t.Fatalf("fast observation displaced a slow exemplar: %+v", got)
	}
}

func TestRegisterProcessMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterProcessMetrics(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "desword_build_info{") || !strings.Contains(out, `go="go`) {
		t.Fatalf("build info missing from exposition:\n%s", out)
	}
	if !strings.Contains(out, "desword_process_start_time_seconds") {
		t.Fatalf("process start time missing from exposition:\n%s", out)
	}
	if got, want := ProcessStart().Unix(), time.Now().Unix(); got > want {
		t.Fatalf("process start %d after now %d", got, want)
	}
}

func TestHealthzReflectsHealthHook(t *testing.T) {
	reg := NewRegistry()
	var ok atomic.Bool
	ok.Store(true)
	srv, err := ServeAdmin("127.0.0.1:0", reg, WithHealth(func() HealthReport {
		return HealthReport{OK: ok.Load(), Detail: map[string]string{"slo": "fine"}}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy healthz = %d", resp.StatusCode)
	}
	ok.Store(false)
	resp, err = http.Get("http://" + srv.Addr() + "/healthz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz = %d, want 503", resp.StatusCode)
	}
}
