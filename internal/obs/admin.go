package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"desword/internal/trace"
)

// AdminServer is the opt-in HTTP admin listener of a DE-Sword binary,
// serving /metrics (Prometheus text format), /healthz and the net/http/pprof
// profile endpoints under /debug/pprof/.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// HealthReport is what a health hook returns: liveness plus an optional
// machine-readable detail block (e.g. per-SLO states) that /healthz renders
// as JSON under ?format=json.
type HealthReport struct {
	OK     bool `json:"ok"`
	Detail any  `json:"detail,omitempty"`
}

// adminOptions collects the optional admin-surface extensions.
type adminOptions struct {
	health func() HealthReport
	routes map[string]http.Handler
}

// AdminOption extends the admin route table.
type AdminOption func(*adminOptions)

// WithHealth installs a health hook: /healthz reports 503 "degraded" when the
// hook says not-OK (an SLO breach, typically), and serves the hook's detail
// as JSON under /healthz?format=json either way.
func WithHealth(f func() HealthReport) AdminOption {
	return func(o *adminOptions) { o.health = f }
}

// WithRoute mounts an extra handler on the admin mux (e.g. the telemetry
// monitor's /debug/statusz).
func WithRoute(pattern string, h http.Handler) AdminOption {
	return func(o *adminOptions) {
		if o.routes == nil {
			o.routes = make(map[string]http.Handler)
		}
		o.routes[pattern] = h
	}
}

// AdminMux builds the admin route table over a registry. The pprof handlers
// are registered explicitly so nothing leaks through http.DefaultServeMux.
func AdminMux(reg *Registry, opts ...AdminOption) *http.ServeMux {
	var o adminOptions
	for _, opt := range opts {
		opt(&o)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// The response is already partially written; nothing to repair.
			_ = err
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		report := HealthReport{OK: true}
		if o.health != nil {
			report = o.health()
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			if !report.OK {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(report)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !report.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "degraded")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/traces", TraceExplorer(trace.Default.Recorder()))
	mux.Handle("/debug/traces/", TraceExplorer(trace.Default.Recorder()))
	for pattern, h := range o.routes {
		mux.Handle(pattern, h)
	}
	return mux
}

// tracedTrace is the detail view /debug/traces/<id> serves: the trace header
// plus its spans assembled into parent→child trees.
type tracedTrace struct {
	TraceID string            `json:"trace_id"`
	Name    string            `json:"name"`
	Start   time.Time         `json:"start"`
	End     time.Time         `json:"end"`
	Spans   int               `json:"spans"`
	Tree    []*trace.SpanNode `json:"tree"`
}

// DefaultTraceIndexLimit caps the /debug/traces index when no explicit
// ?limit= is given: a recorder can hold thousands of traces, and the index
// exists to find recent ones, not to dump history.
const DefaultTraceIndexLimit = 100

// TraceExplorer serves the recorder's completed traces:
//
//	GET /debug/traces        → JSON list of trace summaries, newest first
//	                           (?limit=K caps the list, default 100;
//	                           ?n=K is an alias from the first revision)
//	GET /debug/traces/<id>   → JSON span tree of one trace
//
// It is mounted on every AdminMux; tests can mount it over a private
// recorder.
func TraceExplorer(rec *trace.Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/traces"), "/")
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id == "" {
			summaries := rec.Recent()
			limit := DefaultTraceIndexLimit
			for _, key := range []string{"n", "limit"} {
				if s := r.URL.Query().Get(key); s != "" {
					if v, err := strconv.Atoi(s); err == nil && v >= 0 {
						limit = v
					}
				}
			}
			if limit < len(summaries) {
				summaries = summaries[:limit]
			}
			_ = enc.Encode(summaries)
			return
		}
		if !trace.ValidTraceID(id) {
			http.Error(w, "malformed trace id", http.StatusBadRequest)
			return
		}
		td, ok := rec.Get(id)
		if !ok {
			http.Error(w, "trace not found (evicted or never sampled?)", http.StatusNotFound)
			return
		}
		_ = enc.Encode(tracedTrace{
			TraceID: td.TraceID,
			Name:    td.Name,
			Start:   td.Start,
			End:     td.End,
			Spans:   len(td.Spans),
			Tree:    td.Tree(),
		})
	})
}

// ServeAdmin starts the admin listener on addr (e.g. ":6060", or
// "127.0.0.1:0" for an ephemeral port) exposing reg. It returns once the
// listener is bound; requests are served in the background until Close.
func ServeAdmin(addr string, reg *Registry, opts ...AdminOption) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listener on %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           AdminMux(reg, opts...),
		ReadHeaderTimeout: 5 * time.Second,
	}
	a := &AdminServer{ln: ln, srv: srv}
	go func() {
		// Serve returns ErrServerClosed (or a listener error) on Close;
		// either way the goroutine is done.
		_ = srv.Serve(ln)
	}()
	return a, nil
}

// Addr returns the bound listen address.
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close stops the admin listener. Safe to call more than once.
func (a *AdminServer) Close() error {
	err := a.srv.Close()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}
