package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// AdminServer is the opt-in HTTP admin listener of a DE-Sword binary,
// serving /metrics (Prometheus text format), /healthz and the net/http/pprof
// profile endpoints under /debug/pprof/.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// AdminMux builds the admin route table over a registry. The pprof handlers
// are registered explicitly so nothing leaks through http.DefaultServeMux.
func AdminMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// The response is already partially written; nothing to repair.
			_ = err
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeAdmin starts the admin listener on addr (e.g. ":6060", or
// "127.0.0.1:0" for an ephemeral port) exposing reg. It returns once the
// listener is bound; requests are served in the background until Close.
func ServeAdmin(addr string, reg *Registry) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listener on %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           AdminMux(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	a := &AdminServer{ln: ln, srv: srv}
	go func() {
		// Serve returns ErrServerClosed (or a listener error) on Close;
		// either way the goroutine is done.
		_ = srv.Serve(ln)
	}()
	return a, nil
}

// Addr returns the bound listen address.
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close stops the admin listener. Safe to call more than once.
func (a *AdminServer) Close() error {
	err := a.srv.Close()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}
