package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// processStart is stamped at process init so every registry that registers
// process metrics reports the same start instant.
var processStart = time.Now()

// RegisterProcessMetrics registers the process-identity gauges every DE-Sword
// binary exposes:
//
//	desword_build_info{version="...",go="..."} 1
//	desword_process_start_time_seconds <unix seconds>
//
// version comes from the module build info when available (VCS revision or
// module version), falling back to "devel". The call is idempotent per
// registry in practice (the registry dedupes series), and cheap enough that
// binaries simply call it once in main.
func RegisterProcessMetrics(r *Registry) {
	r.Gauge("desword_build_info",
		"Build identity; the value is always 1, the labels carry the info.",
		"version", buildVersion(), "go", runtime.Version()).Set(1)
	r.Gauge("desword_process_start_time_seconds",
		"Unix time the process started, in seconds.").Set(processStart.Unix())
}

// buildVersion extracts the best available version string from the binary's
// embedded build info: an exact module version, else the VCS revision
// (truncated), else "devel".
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			return s.Value[:12]
		}
	}
	return "devel"
}

// ProcessStart returns the instant the process started, as stamped at init.
func ProcessStart() time.Time { return processStart }
