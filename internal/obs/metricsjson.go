package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// metricSample is the JSON image of one metric series: a flat, self-contained
// record so downstream tooling (jq, awk, the bench-smoke gate) can filter on
// name and read a value without reconstructing Prometheus families.
type metricSample struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Labels string `json:"labels,omitempty"`
	// Value carries the counter or gauge reading.
	Value *int64 `json:"value,omitempty"`
	// Count and Sum carry the histogram reading.
	Count *uint64  `json:"count,omitempty"`
	Sum   *float64 `json:"sum,omitempty"`
}

// WriteJSON writes the registry contents as a JSON array with one object per
// series, each on its own line, families and series in sorted order. It is
// the machine-readable sibling of WritePrometheus, used by desword-bench's
// -metrics-out when the file name ends in .json.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	samples := make([]metricSample, 0, len(fams))
	for _, f := range fams {
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			sample := metricSample{Name: f.name, Kind: f.kind.String(), Labels: s.labels}
			switch f.kind {
			case KindCounter:
				v := int64(s.counter.Value())
				sample.Value = &v
			case KindGauge:
				v := s.gauge.Value()
				sample.Value = &v
			case KindHistogram:
				count, sum := s.hist.Count(), s.hist.Sum()
				sample.Count = &count
				sample.Sum = &sum
			}
			samples = append(samples, sample)
		}
	}

	// One object per line keeps the array valid JSON and line-tools friendly.
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, sample := range samples {
		line, err := json.Marshal(sample)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(samples)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "  %s%s", line, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
