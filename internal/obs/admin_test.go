package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// get fetches a URL and returns status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Errorf("closing body: %v", cerr)
		}
	}()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_admin_total", "Admin test counter.").Add(42)

	srv, err := ServeAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := srv.Close(); cerr != nil {
			t.Errorf("closing admin server: %v", cerr)
		}
	}()
	base := "http://" + srv.Addr()

	status, body := get(t, base+"/healthz")
	if status != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", status, body)
	}

	status, body = get(t, base+"/metrics")
	if status != http.StatusOK {
		t.Errorf("/metrics status = %d", status)
	}
	if !strings.Contains(body, "test_admin_total 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	status, body = get(t, base+"/debug/pprof/")
	if status != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (body %d bytes)", status, len(body))
	}
}

func TestAdminCloseIdempotent(t *testing.T) {
	srv, err := ServeAdmin("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
