package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"desword/internal/trace"
)

// get fetches a URL and returns status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Errorf("closing body: %v", cerr)
		}
	}()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_admin_total", "Admin test counter.").Add(42)

	srv, err := ServeAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := srv.Close(); cerr != nil {
			t.Errorf("closing admin server: %v", cerr)
		}
	}()
	base := "http://" + srv.Addr()

	status, body := get(t, base+"/healthz")
	if status != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", status, body)
	}

	status, body = get(t, base+"/metrics")
	if status != http.StatusOK {
		t.Errorf("/metrics status = %d", status)
	}
	if !strings.Contains(body, "test_admin_total 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	status, body = get(t, base+"/debug/pprof/")
	if status != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (body %d bytes)", status, len(body))
	}
}

// TestTraceExplorerIndexLimit pins the /debug/traces index contract: newest
// first, capped at DefaultTraceIndexLimit unless ?limit= (or its historical
// alias ?n=) says otherwise.
func TestTraceExplorerIndexLimit(t *testing.T) {
	tr := trace.New("test", 1, 300)
	const total = DefaultTraceIndexLimit + 50
	for i := 0; i < total; i++ {
		_, span := tr.Start(context.Background(), fmt.Sprintf("t-%03d", i))
		span.End()
	}
	srv := httptest.NewServer(TraceExplorer(tr.Recorder()))
	defer srv.Close()

	index := func(query string) []trace.Summary {
		t.Helper()
		status, body := get(t, srv.URL+"/debug/traces"+query)
		if status != http.StatusOK {
			t.Fatalf("index%s status = %d", query, status)
		}
		var out []trace.Summary
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("decoding index%s: %v", query, err)
		}
		return out
	}

	got := index("")
	if len(got) != DefaultTraceIndexLimit {
		t.Fatalf("default index length = %d, want %d", len(got), DefaultTraceIndexLimit)
	}
	if got[0].Name != fmt.Sprintf("t-%03d", total-1) {
		t.Fatalf("index not newest-first: first entry %q", got[0].Name)
	}
	if got := index("?limit=5"); len(got) != 5 {
		t.Fatalf("?limit=5 returned %d entries", len(got))
	}
	if got := index("?n=3"); len(got) != 3 {
		t.Fatalf("?n=3 alias returned %d entries", len(got))
	}
	if got := index("?limit=0"); len(got) != 0 {
		t.Fatalf("?limit=0 returned %d entries", len(got))
	}
	if got := index(fmt.Sprintf("?limit=%d", total+100)); len(got) != total {
		t.Fatalf("oversized limit returned %d entries, want all %d", len(got), total)
	}
	if got := index("?limit=bogus"); len(got) != DefaultTraceIndexLimit {
		t.Fatalf("malformed limit returned %d entries, want default %d", len(got), DefaultTraceIndexLimit)
	}
}

func TestAdminCloseIdempotent(t *testing.T) {
	srv, err := ServeAdmin("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
