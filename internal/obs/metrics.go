// Package obs is DE-Sword's zero-dependency observability layer: a metrics
// registry (atomic counters, gauges and fixed-bucket histograms with label
// support and Prometheus text-format exposition), a shared log/slog handler
// setup for the cmd binaries, and an opt-in HTTP admin listener serving
// /metrics, /healthz and net/http/pprof.
//
// The package is stdlib-only, consistent with the repository's 3-line go.mod.
// Hot paths hold on to metric handles (obtained once via Registry.Counter,
// Registry.Gauge or Registry.Histogram) and update them with single atomic
// operations — no locks and no allocation per event.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind distinguishes the metric families a registry can hold.
type Kind int

// Metric kinds start at 1 so the zero value is invalid.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer with the Prometheus type names.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DefBuckets are the default latency buckets in seconds, spanning the range
// from sub-millisecond proof verifications under test parameters to
// multi-second path walks under production geometry.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing counter. The zero value is ready to
// use, but counters are normally obtained from a Registry so they appear in
// the exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer gauge that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat is a float64 updated with a compare-and-swap loop, so histogram
// sums stay race-free without a lock.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram of float64 observations (typically
// seconds). Bucket bounds are upper-inclusive, Prometheus style, with an
// implicit +Inf bucket.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last is +Inf
	sum    atomicFloat
	count  atomic.Uint64

	// Exemplar store: the few most interesting (slowest) recent observations
	// that carried a trace id, so a latency spike on this histogram links
	// straight to a concrete /debug/traces/<id> timeline. The store is tiny
	// and mutex-guarded; Observe never touches it — only observations that
	// actively carry a trace id pay the lock, and those sit on sampled (and
	// therefore already allocation-heavy) request paths.
	exMu      sync.Mutex
	exemplars []Exemplar // guarded by exMu
}

// MaxExemplars bounds the exemplar store of one histogram series.
const MaxExemplars = 4

// exemplarTTL is how long an exemplar defends its slot on value alone; past
// it, any fresh traced observation replaces it so the store follows current
// traffic instead of pinning an ancient outlier.
const exemplarTTL = 10 * time.Minute

// Exemplar is one recorded (observation, trace) pair of a histogram series.
type Exemplar struct {
	Value   float64   `json:"value"`
	TraceID string    `json:"trace_id"`
	Time    time.Time `json:"time"`
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// ObserveWithExemplar records one observation and, when traceID is non-empty,
// offers it to the series' exemplar store. With an empty traceID it is
// exactly Observe — callers can pass span.TraceID() unconditionally, and
// unsampled requests stay on the lock-free path.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	now := time.Now()
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if len(h.exemplars) < MaxExemplars {
		h.exemplars = append(h.exemplars, Exemplar{Value: v, TraceID: traceID, Time: now})
		return
	}
	// Full: replace the stalest expired entry first, else the smallest value
	// if the newcomer beats it — the store keeps the slowest recent traces.
	victim, stalest := -1, -1
	for i, ex := range h.exemplars {
		if now.Sub(ex.Time) > exemplarTTL && (stalest < 0 || ex.Time.Before(h.exemplars[stalest].Time)) {
			stalest = i
		}
		if victim < 0 || ex.Value < h.exemplars[victim].Value {
			victim = i
		}
	}
	switch {
	case stalest >= 0:
		h.exemplars[stalest] = Exemplar{Value: v, TraceID: traceID, Time: now}
	case v >= h.exemplars[victim].Value:
		h.exemplars[victim] = Exemplar{Value: v, TraceID: traceID, Time: now}
	}
}

// Exemplars returns a copy of the series' exemplar store, slowest first.
func (h *Histogram) Exemplars() []Exemplar {
	h.exMu.Lock()
	out := append([]Exemplar(nil), h.exemplars...)
	h.exMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Value > out[j].Value })
	return out
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// A Timer captures a start instant on behalf of packages that must stay
// free of direct wall-clock reads — the proof packages, where
// desword/determinism forbids time.Now so that proof generation and
// verification remain pure functions of their inputs. The clock is touched
// only here in obs, which is outside the enforced set.
type Timer struct{ start time.Time }

// StartTimer begins a latency measurement.
func StartTimer() Timer { return Timer{start: time.Now()} }

// ObserveTimer records the seconds elapsed since t started.
func (h *Histogram) ObserveTimer(t Timer) { h.ObserveSince(t.start) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// family groups every series of one metric name.
type family struct {
	name    string
	help    string
	kind    Kind
	buckets []float64
	series  map[string]*series // canonical label string → series
}

// series is one labelled instance of a family.
type series struct {
	labels  string // canonical `k1="v1",k2="v2"` form, "" for unlabelled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry is a named collection of metric families. All methods are safe
// for concurrent use; lookups take the registry lock, so callers on hot
// paths should fetch their handles once and keep them.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry that the instrumented packages
// (zkedb, wire, node, core, reputation) register into.
var Default = NewRegistry()

// Counter returns the counter for name and the given label pairs, creating
// it on first use. Labels are alternating key, value strings. It panics on
// malformed labels or if name is already registered with a different kind —
// both are programming errors.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.lookup(name, help, KindCounter, nil, labels)
	return s.counter
}

// Gauge returns the gauge for name and the given label pairs, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.lookup(name, help, KindGauge, nil, labels)
	return s.gauge
}

// Histogram returns the histogram for name and the given label pairs,
// creating it on first use. buckets are the upper bounds in increasing
// order; nil selects DefBuckets. All series of one family share the bucket
// layout fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	s := r.lookup(name, help, KindHistogram, buckets, labels)
	return s.hist
}

// lookup finds or creates the series for (name, labels).
func (r *Registry) lookup(name, help string, kind Kind, buckets []float64, labels []string) *series {
	key := labelKey(labels)
	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			r.mu.RUnlock()
			panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
		}
		if s, ok := f.series[key]; ok {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		if kind == KindHistogram && buckets == nil {
			buckets = DefBuckets
		}
		f = &family{
			name:    name,
			help:    help,
			kind:    kind,
			buckets: append([]float64(nil), buckets...),
			series:  make(map[string]*series),
		}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		switch kind {
		case KindCounter:
			s.counter = &Counter{}
		case KindGauge:
			s.gauge = &Gauge{}
		case KindHistogram:
			s.hist = &Histogram{
				upper:  f.buckets,
				counts: make([]atomic.Uint64, len(f.buckets)+1),
			}
		}
		f.series[key] = s
	}
	return s
}

// labelKey renders label pairs into the canonical, sorted
// `k1="v1",k2="v2"` form used both as the map key and in the exposition.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the Prometheus text-format escaping to a label value.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies the Prometheus text-format escaping to HELP text, where
// only backslash and newline are escaped (quotes stay literal). Unescaped, a
// newline smuggled into help text would split the line and corrupt the whole
// exposition.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry contents in the Prometheus text
// exposition format, families and series in sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// write renders one family. The registry lock is not held: series maps only
// grow, and values are read atomically, so a racing scrape sees a consistent
// point-in-time view of each series.
func (f *family) write(w io.Writer) error {
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := f.series[k].write(w, f); err != nil {
			return err
		}
	}
	return nil
}

// write renders one series.
func (s *series) write(w io.Writer, f *family) error {
	switch f.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name, s.labels), s.counter.Value())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name, s.labels), s.gauge.Value())
		return err
	case KindHistogram:
		cum := uint64(0)
		for i, upper := range s.hist.upper {
			cum += s.hist.counts[i].Load()
			le := s.labels
			if le != "" {
				le += ","
			}
			le += `le="` + formatFloat(upper) + `"`
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.name, le, cum); err != nil {
				return err
			}
		}
		count := s.hist.Count()
		le := s.labels
		if le != "" {
			le += ","
		}
		le += `le="+Inf"`
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.name, le, count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.name, bracket(s.labels), formatFloat(s.hist.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, bracket(s.labels), count)
		return err
	default:
		return fmt.Errorf("obs: unknown kind %v", f.kind)
	}
}

// seriesName renders `name` or `name{labels}`.
func seriesName(name, labels string) string {
	return name + bracket(labels)
}

// bracket wraps a non-empty canonical label string in braces.
func bracket(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}
