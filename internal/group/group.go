// Package group provides a prime-order group abstraction over the NIST P-256
// elliptic curve, used as the algebraic substrate for all commitment schemes
// in this repository (trapdoor mercurial commitments and the mercurial wrapper
// of the q-mercurial commitments).
//
// The package exposes two independent generators G (the standard base point)
// and H (derived by hashing a domain-separation tag to the curve, so that
// nobody knows log_G H). Scalars are integers modulo the group order.
package group

import (
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// domainTagH seeds the try-and-increment derivation of the secondary
// generator H. Changing it changes H and therefore every commitment key.
const domainTagH = "desword/group/generator-H/v1"

// ErrInvalidPoint reports that a decoded byte string is not a valid
// group element.
var ErrInvalidPoint = errors.New("group: invalid point encoding")

// Point is an element of the P-256 group. The zero value (or a Point with
// nil coordinates) is the identity element.
type Point struct {
	x, y *big.Int
}

// Group bundles the curve with its two generators. All methods are safe for
// concurrent use: the struct is immutable after construction.
type Group struct {
	curve elliptic.Curve
	order *big.Int
	g     Point
	h     Point
}

// P256 returns the shared P-256 group instance. The returned value is
// immutable and safe to share across goroutines.
func P256() *Group {
	return _p256
}

var _p256 = newP256()

func newP256() *Group {
	curve := elliptic.P256()
	params := curve.Params()
	grp := &Group{
		curve: curve,
		order: new(big.Int).Set(params.N),
		g:     Point{x: new(big.Int).Set(params.Gx), y: new(big.Int).Set(params.Gy)},
	}
	grp.h = grp.deriveH()
	return grp
}

// deriveH hashes the domain tag to a curve point by try-and-increment on the
// candidate x coordinate. The discrete log of H with respect to G is unknown,
// which the Pedersen-style schemes built on this package require.
func (g *Group) deriveH() Point {
	p := g.curve.Params().P
	for ctr := uint32(0); ; ctr++ {
		digest := sha256.Sum256([]byte(fmt.Sprintf("%s/%d", domainTagH, ctr)))
		x := new(big.Int).SetBytes(digest[:])
		x.Mod(x, p)
		// y^2 = x^3 - 3x + b (mod p)
		y2 := new(big.Int).Mul(x, x)
		y2.Mul(y2, x)
		threeX := new(big.Int).Lsh(x, 1)
		threeX.Add(threeX, x)
		y2.Sub(y2, threeX)
		y2.Add(y2, g.curve.Params().B)
		y2.Mod(y2, p)
		y := new(big.Int).ModSqrt(y2, p)
		if y == nil {
			continue
		}
		if !g.curve.IsOnCurve(x, y) {
			continue
		}
		return Point{x: x, y: y}
	}
}

// Order returns a copy of the group order.
func (g *Group) Order() *big.Int { return new(big.Int).Set(g.order) }

// Generator returns the primary generator G.
func (g *Group) Generator() Point { return g.g }

// GeneratorH returns the secondary generator H with unknown log_G H.
func (g *Group) GeneratorH() Point { return g.h }

// Identity returns the identity element.
func (g *Group) Identity() Point { return Point{} }

// IsIdentity reports whether p is the identity element.
func (p Point) IsIdentity() bool { return p.x == nil || p.y == nil }

// Equal reports whether two points are the same group element.
func (p Point) Equal(q Point) bool {
	if p.IsIdentity() || q.IsIdentity() {
		return p.IsIdentity() && q.IsIdentity()
	}
	return p.x.Cmp(q.x) == 0 && p.y.Cmp(q.y) == 0
}

// RandomScalar returns a uniformly random scalar in [1, order).
func (g *Group) RandomScalar() *big.Int {
	return g.RandomScalarFrom(rand.Reader)
}

// RandomScalarFrom returns a uniformly random scalar in [1, order) sampled
// from rnd. Production callers pass crypto/rand.Reader (or use RandomScalar);
// deterministic readers let seeded tree builds reproduce commitments bit for
// bit regardless of evaluation order.
func (g *Group) RandomScalarFrom(rnd io.Reader) *big.Int {
	for {
		k, err := rand.Int(rnd, g.order)
		if err != nil {
			// Randomness failure is unrecoverable for key material.
			panic(fmt.Sprintf("group: randomness source failed: %v", err))
		}
		if k.Sign() != 0 {
			return k
		}
	}
}

// HashToScalar hashes arbitrary byte strings into a scalar with domain
// separation between the individual inputs (length-prefixed).
func (g *Group) HashToScalar(parts ...[]byte) *big.Int {
	hsh := sha256.New()
	for _, part := range parts {
		var lenBuf [8]byte
		putUint64(lenBuf[:], uint64(len(part)))
		hsh.Write(lenBuf[:])
		hsh.Write(part)
	}
	out := new(big.Int).SetBytes(hsh.Sum(nil))
	return out.Mod(out, g.order)
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// ReduceScalar returns s mod order, never mutating s.
func (g *Group) ReduceScalar(s *big.Int) *big.Int {
	return new(big.Int).Mod(s, g.order)
}

// InvertScalar returns the multiplicative inverse of s modulo the group
// order. It returns an error when s ≡ 0.
func (g *Group) InvertScalar(s *big.Int) (*big.Int, error) {
	reduced := g.ReduceScalar(s)
	if reduced.Sign() == 0 {
		return nil, errors.New("group: cannot invert zero scalar")
	}
	return new(big.Int).ModInverse(reduced, g.order), nil
}

// ScalarBaseMult returns k·G.
func (g *Group) ScalarBaseMult(k *big.Int) Point {
	kb := g.ReduceScalar(k)
	if kb.Sign() == 0 {
		return Point{}
	}
	x, y := g.curve.ScalarBaseMult(kb.Bytes())
	return Point{x: x, y: y}
}

// ScalarMult returns k·P.
func (g *Group) ScalarMult(p Point, k *big.Int) Point {
	if p.IsIdentity() {
		return Point{}
	}
	kb := g.ReduceScalar(k)
	if kb.Sign() == 0 {
		return Point{}
	}
	x, y := g.curve.ScalarMult(p.x, p.y, kb.Bytes())
	return Point{x: x, y: y}
}

// Add returns p + q.
func (g *Group) Add(p, q Point) Point {
	if p.IsIdentity() {
		return q
	}
	if q.IsIdentity() {
		return p
	}
	if p.x.Cmp(q.x) == 0 {
		// elliptic.Curve.Add mishandles doubling and inverse points; route
		// explicitly.
		if p.y.Cmp(q.y) == 0 {
			x, y := g.curve.Double(p.x, p.y)
			return Point{x: x, y: y}
		}
		return Point{}
	}
	x, y := g.curve.Add(p.x, p.y, q.x, q.y)
	return Point{x: x, y: y}
}

// Neg returns -p.
func (g *Group) Neg(p Point) Point {
	if p.IsIdentity() {
		return p
	}
	negY := new(big.Int).Sub(g.curve.Params().P, p.y)
	negY.Mod(negY, g.curve.Params().P)
	return Point{x: new(big.Int).Set(p.x), y: negY}
}

// Sub returns p - q.
func (g *Group) Sub(p, q Point) Point { return g.Add(p, g.Neg(q)) }

// Commit2 returns a·P + b·Q, the workhorse of Pedersen-style verification.
func (g *Group) Commit2(p Point, a *big.Int, q Point, b *big.Int) Point {
	return g.Add(g.ScalarMult(p, a), g.ScalarMult(q, b))
}

// pointEncodingLen is the length of a marshaled non-identity point
// (uncompressed SEC1: 0x04 || X || Y for a 256-bit curve).
const pointEncodingLen = 65

// Bytes encodes the point. The identity encodes to a single zero byte so the
// encoding is unambiguous and fixed-prefix.
func (p Point) Bytes() []byte {
	if p.IsIdentity() {
		return []byte{0}
	}
	out := make([]byte, pointEncodingLen)
	out[0] = 4
	p.x.FillBytes(out[1:33])
	p.y.FillBytes(out[33:65])
	return out
}

// DecodePoint parses the encoding produced by Point.Bytes and checks curve
// membership.
func (g *Group) DecodePoint(b []byte) (Point, error) {
	if len(b) == 1 && b[0] == 0 {
		return Point{}, nil
	}
	if len(b) != pointEncodingLen || b[0] != 4 {
		return Point{}, ErrInvalidPoint
	}
	x := new(big.Int).SetBytes(b[1:33])
	y := new(big.Int).SetBytes(b[33:65])
	if !g.curve.IsOnCurve(x, y) {
		return Point{}, ErrInvalidPoint
	}
	return Point{x: x, y: y}, nil
}

// String renders a short hex prefix of the encoding, for logs and tests.
func (p Point) String() string {
	enc := p.Bytes()
	if len(enc) > 9 {
		enc = enc[:9]
	}
	return "P(" + hex.EncodeToString(enc) + "…)"
}

// MarshalJSON encodes the point as a hex string.
func (p Point) MarshalJSON() ([]byte, error) {
	return []byte(`"` + hex.EncodeToString(p.Bytes()) + `"`), nil
}

// UnmarshalJSON decodes the hex string form and validates membership.
func (p *Point) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return ErrInvalidPoint
	}
	raw, err := hex.DecodeString(string(data[1 : len(data)-1]))
	if err != nil {
		return fmt.Errorf("group: decoding point hex: %w", err)
	}
	pt, err := P256().DecodePoint(raw)
	if err != nil {
		return err
	}
	*p = pt
	return nil
}
