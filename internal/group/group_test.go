package group

import (
	"bytes"
	"encoding/json"
	"math/big"
	"testing"
	"testing/quick"
)

func TestGeneratorsDistinct(t *testing.T) {
	g := P256()
	if g.Generator().Equal(g.GeneratorH()) {
		t.Fatal("G and H must be distinct")
	}
	if g.Generator().IsIdentity() || g.GeneratorH().IsIdentity() {
		t.Fatal("generators must not be the identity")
	}
}

func TestDeriveHDeterministic(t *testing.T) {
	a := newP256()
	b := newP256()
	if !a.GeneratorH().Equal(b.GeneratorH()) {
		t.Fatal("H derivation must be deterministic")
	}
}

func TestScalarBaseMultMatchesScalarMult(t *testing.T) {
	g := P256()
	k := g.RandomScalar()
	p1 := g.ScalarBaseMult(k)
	p2 := g.ScalarMult(g.Generator(), k)
	if !p1.Equal(p2) {
		t.Fatal("ScalarBaseMult and ScalarMult disagree on G")
	}
}

func TestAddCommutativeAssociative(t *testing.T) {
	g := P256()
	p := g.ScalarBaseMult(g.RandomScalar())
	q := g.ScalarBaseMult(g.RandomScalar())
	r := g.ScalarBaseMult(g.RandomScalar())
	if !g.Add(p, q).Equal(g.Add(q, p)) {
		t.Fatal("addition must commute")
	}
	left := g.Add(g.Add(p, q), r)
	right := g.Add(p, g.Add(q, r))
	if !left.Equal(right) {
		t.Fatal("addition must associate")
	}
}

func TestAddDoubling(t *testing.T) {
	g := P256()
	k := g.RandomScalar()
	p := g.ScalarBaseMult(k)
	doubled := g.Add(p, p)
	two := new(big.Int).Lsh(k, 1)
	if !doubled.Equal(g.ScalarBaseMult(two)) {
		t.Fatal("P+P must equal 2k·G")
	}
}

func TestAddInverseGivesIdentity(t *testing.T) {
	g := P256()
	p := g.ScalarBaseMult(g.RandomScalar())
	sum := g.Add(p, g.Neg(p))
	if !sum.IsIdentity() {
		t.Fatal("P + (-P) must be the identity")
	}
}

func TestIdentityIsNeutral(t *testing.T) {
	g := P256()
	p := g.ScalarBaseMult(g.RandomScalar())
	if !g.Add(p, g.Identity()).Equal(p) || !g.Add(g.Identity(), p).Equal(p) {
		t.Fatal("identity must be neutral for addition")
	}
	if !g.ScalarMult(p, big.NewInt(0)).IsIdentity() {
		t.Fatal("0·P must be the identity")
	}
	if !g.ScalarMult(g.Identity(), big.NewInt(5)).IsIdentity() {
		t.Fatal("k·identity must be the identity")
	}
}

func TestSub(t *testing.T) {
	g := P256()
	a := g.RandomScalar()
	b := g.RandomScalar()
	diff := new(big.Int).Sub(a, b)
	want := g.ScalarBaseMult(diff)
	got := g.Sub(g.ScalarBaseMult(a), g.ScalarBaseMult(b))
	if !got.Equal(want) {
		t.Fatal("aG - bG must equal (a-b)G")
	}
}

func TestCommit2(t *testing.T) {
	g := P256()
	a, b := g.RandomScalar(), g.RandomScalar()
	got := g.Commit2(g.Generator(), a, g.GeneratorH(), b)
	want := g.Add(g.ScalarBaseMult(a), g.ScalarMult(g.GeneratorH(), b))
	if !got.Equal(want) {
		t.Fatal("Commit2 must equal aG + bH")
	}
}

func TestScalarMultDistributes(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in short mode")
	}
	g := P256()
	prop := func(seedA, seedB int64) bool {
		a := g.ReduceScalar(big.NewInt(seedA))
		b := g.ReduceScalar(big.NewInt(seedB))
		sum := new(big.Int).Add(a, b)
		left := g.ScalarBaseMult(sum)
		right := g.Add(g.ScalarBaseMult(a), g.ScalarBaseMult(b))
		return left.Equal(right)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPointEncodingRoundTrip(t *testing.T) {
	g := P256()
	p := g.ScalarBaseMult(g.RandomScalar())
	decoded, err := g.DecodePoint(p.Bytes())
	if err != nil {
		t.Fatalf("decoding valid point: %v", err)
	}
	if !decoded.Equal(p) {
		t.Fatal("round trip must preserve the point")
	}
}

func TestIdentityEncoding(t *testing.T) {
	g := P256()
	enc := g.Identity().Bytes()
	if !bytes.Equal(enc, []byte{0}) {
		t.Fatalf("identity must encode to a single zero byte, got %x", enc)
	}
	decoded, err := g.DecodePoint(enc)
	if err != nil || !decoded.IsIdentity() {
		t.Fatal("identity encoding must round-trip")
	}
}

func TestDecodeRejectsOffCurve(t *testing.T) {
	g := P256()
	p := g.ScalarBaseMult(g.RandomScalar())
	enc := p.Bytes()
	enc[10] ^= 0xff
	if _, err := g.DecodePoint(enc); err == nil {
		t.Fatal("off-curve encoding must be rejected")
	}
}

func TestDecodeRejectsBadLength(t *testing.T) {
	g := P256()
	if _, err := g.DecodePoint([]byte{4, 1, 2}); err == nil {
		t.Fatal("truncated encoding must be rejected")
	}
	if _, err := g.DecodePoint(nil); err == nil {
		t.Fatal("empty encoding must be rejected")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := P256()
	p := g.ScalarBaseMult(g.RandomScalar())
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Point
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !back.Equal(p) {
		t.Fatal("JSON round trip must preserve the point")
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	var p Point
	if err := json.Unmarshal([]byte(`"zznothex"`), &p); err == nil {
		t.Fatal("non-hex JSON must be rejected")
	}
	if err := json.Unmarshal([]byte(`123`), &p); err == nil {
		t.Fatal("non-string JSON must be rejected")
	}
}

func TestHashToScalarDomainSeparated(t *testing.T) {
	g := P256()
	a := g.HashToScalar([]byte("ab"), []byte("c"))
	b := g.HashToScalar([]byte("a"), []byte("bc"))
	if a.Cmp(b) == 0 {
		t.Fatal("length-prefixing must separate (ab,c) from (a,bc)")
	}
}

func TestHashToScalarInRange(t *testing.T) {
	g := P256()
	s := g.HashToScalar([]byte("payload"))
	if s.Sign() < 0 || s.Cmp(g.Order()) >= 0 {
		t.Fatal("hashed scalar must lie in [0, order)")
	}
}

func TestInvertScalar(t *testing.T) {
	g := P256()
	s := g.RandomScalar()
	inv, err := g.InvertScalar(s)
	if err != nil {
		t.Fatalf("inverting nonzero scalar: %v", err)
	}
	prod := new(big.Int).Mul(s, inv)
	prod.Mod(prod, g.Order())
	if prod.Cmp(big.NewInt(1)) != 0 {
		t.Fatal("s · s⁻¹ must be 1")
	}
	if _, err := g.InvertScalar(big.NewInt(0)); err == nil {
		t.Fatal("inverting zero must fail")
	}
	if _, err := g.InvertScalar(g.Order()); err == nil {
		t.Fatal("inverting a multiple of the order must fail")
	}
}

func TestRandomScalarRange(t *testing.T) {
	g := P256()
	for i := 0; i < 32; i++ {
		s := g.RandomScalar()
		if s.Sign() <= 0 || s.Cmp(g.Order()) >= 0 {
			t.Fatal("random scalar must lie in (0, order)")
		}
	}
}

func BenchmarkScalarBaseMult(b *testing.B) {
	g := P256()
	k := g.RandomScalar()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.ScalarBaseMult(k)
	}
}

func BenchmarkScalarMultH(b *testing.B) {
	g := P256()
	k := g.RandomScalar()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.ScalarMult(g.GeneratorH(), k)
	}
}
