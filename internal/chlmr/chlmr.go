// Package chlmr implements the classic Chase–Healy–Lysyanskaya–Malkin–Reyzin
// zero-knowledge elementary database: a q-ary commitment tree whose internal
// nodes carry a single plain trapdoor mercurial commitment to the hash of
// ALL q children, so that opening any one path position reveals every
// sibling commitment at every level.
//
// This is the construction the DE-Sword paper's reference [11]
// (Libert–Yung, "Concise Mercurial Vector Commitments and Independent
// Zero-Knowledge Sets with Short Proofs") improves upon: here proofs cost
// Θ(q·h) bytes and non-membership proof generation costs Θ(q·h) group
// operations, versus Θ(h) for the q-mercurial construction in package zkedb.
// The package exists as an ablation baseline (experiment A4): benchmarking
// the two side by side reproduces the motivation for vector commitments with
// constant-size openings — with plain mercurial commitments, growing q makes
// proofs *larger*, so the paper's Table II trend inverts.
//
// The external API mirrors package zkedb: CRSGen, Commit, Prove, Verify.
package chlmr

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"

	"desword/internal/mercurial"
)

// Errors reported by this package.
var (
	ErrBadParams       = errors.New("chlmr: invalid parameters")
	ErrDigestCollision = errors.New("chlmr: two keys share a digest path")
	ErrBadProof        = errors.New("chlmr: proof rejected")
)

// Params fixes the tree geometry (no RSA layer exists in this construction).
type Params struct {
	Q       int `json:"q"`
	H       int `json:"h"`
	KeyBits int `json:"key_bits"`
}

// TestParams returns a small geometry for fast tests.
func TestParams() Params { return Params{Q: 8, H: 8, KeyBits: 24} }

// Validate checks the geometry invariants.
func (p Params) Validate() error {
	if p.Q < 2 || p.Q&(p.Q-1) != 0 {
		return fmt.Errorf("%w: Q must be a power of two ≥ 2, got %d", ErrBadParams, p.Q)
	}
	if p.H < 1 {
		return fmt.Errorf("%w: H must be positive", ErrBadParams)
	}
	if p.KeyBits < 8 || p.KeyBits > 256 {
		return fmt.Errorf("%w: KeyBits must be in [8,256]", ErrBadParams)
	}
	if p.H*p.digitBits() < p.KeyBits {
		return fmt.Errorf("%w: Q^H does not cover 2^%d keys", ErrBadParams, p.KeyBits)
	}
	return nil
}

func (p Params) digitBits() int {
	bits := 0
	for q := p.Q; q > 1; q >>= 1 {
		bits++
	}
	return bits
}

// CRS is the common reference string: the geometry plus the mercurial key.
type CRS struct {
	Params Params
	Key    *mercurial.PublicKey
}

// CRSGen generates a CRS.
func CRSGen(p Params) (*CRS, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &CRS{Params: p, Key: mercurial.KGen()}, nil
}

// Commitment is the constant-size database commitment (the root's mercurial
// commitment).
type Commitment struct {
	Root mercurial.Commitment `json:"root"`
}

// Equal reports whether two commitments are identical.
func (c Commitment) Equal(o Commitment) bool { return c.Root.Equal(o.Root) }

func (c *CRS) digest(key string) []byte {
	sum := sha256.Sum256([]byte("chlmr/key/" + key))
	nBytes := (c.Params.KeyBits + 7) / 8
	out := make([]byte, nBytes)
	copy(out, sum[:nBytes])
	if rem := c.Params.KeyBits % 8; rem != 0 {
		out[nBytes-1] &= byte(0xff << (8 - rem))
	}
	return out
}

func (c *CRS) digits(digest []byte) []int {
	b := c.Params.digitBits()
	out := make([]int, c.Params.H)
	for level := 0; level < c.Params.H; level++ {
		v := 0
		for k := 0; k < b; k++ {
			bitPos := level*b + k
			bit := 0
			if byteIdx := bitPos / 8; byteIdx < len(digest) {
				bit = int(digest[byteIdx]>>(7-bitPos%8)) & 1
			}
			v = v<<1 | bit
		}
		out[level] = v
	}
	return out
}

// nodeMessage hashes the full ordered child commitment list into the
// mercurial message space — the defining Θ(q) step of this construction.
func (c *CRS) nodeMessage(children []mercurial.Commitment) *big.Int {
	parts := make([][]byte, 0, len(children)+1)
	parts = append(parts, []byte("chlmr/node"))
	for _, child := range children {
		parts = append(parts, child.Bytes())
	}
	return c.Key.Group().HashToScalar(parts...)
}

func (c *CRS) leafMessage(key string, value []byte) *big.Int {
	return c.Key.Group().HashToScalar([]byte("chlmr/leaf"), []byte(key), value)
}

func (c *CRS) absentMessage(key string) *big.Int {
	return c.Key.Group().HashToScalar([]byte("chlmr/absent"), []byte(key))
}

// node is a materialized prover-side tree node.
type node struct {
	children map[int]*node
	// siblings holds the full ordered child commitment list (materialized
	// children plus pinned soft commitments), needed verbatim in proofs.
	siblings []mercurial.Commitment

	com mercurial.Commitment
	dec mercurial.HardDecommit

	leafKey   string
	leafValue []byte
}

type softEntry struct {
	com mercurial.Commitment
	dec mercurial.SoftDecommit
}

// Decommitment is the prover's secret state.
type Decommitment struct {
	mu   sync.Mutex
	crs  *CRS
	db   map[string][]byte
	root *node
	soft map[string]*softEntry
}

type keyItem struct {
	key    string
	value  []byte
	digits []int
}

// Commit commits to the database.
func (c *CRS) Commit(db map[string][]byte) (Commitment, *Decommitment, error) {
	items := make([]keyItem, 0, len(db))
	for k, v := range db {
		items = append(items, keyItem{key: k, value: v, digits: c.digits(c.digest(k))})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].key < items[j].key })
	dec := &Decommitment{
		crs:  c,
		db:   make(map[string][]byte, len(db)),
		soft: make(map[string]*softEntry),
	}
	for k, v := range db {
		dec.db[k] = v
	}
	root, err := c.build(0, nil, items, dec)
	if err != nil {
		return Commitment{}, nil, err
	}
	dec.root = root
	return Commitment{Root: root.com}, dec, nil
}

func (c *CRS) build(level int, prefix []int, items []keyItem, dec *Decommitment) (*node, error) {
	if level == c.Params.H {
		if len(items) != 1 {
			return nil, fmt.Errorf("%w at %v", ErrDigestCollision, prefix)
		}
		it := items[0]
		com, leafDec := c.Key.HCom(c.leafMessage(it.key, it.value))
		return &node{com: com, dec: leafDec, leafKey: it.key, leafValue: it.value}, nil
	}
	bySlot := make(map[int][]keyItem)
	for _, it := range items {
		bySlot[it.digits[level]] = append(bySlot[it.digits[level]], it)
	}
	n := &node{
		children: make(map[int]*node, len(bySlot)),
		siblings: make([]mercurial.Commitment, c.Params.Q),
	}
	for slot := 0; slot < c.Params.Q; slot++ {
		childPrefix := append(append(make([]int, 0, level+1), prefix...), slot)
		if slotItems, ok := bySlot[slot]; ok {
			child, err := c.build(level+1, childPrefix, slotItems, dec)
			if err != nil {
				return nil, err
			}
			n.children[slot] = child
			n.siblings[slot] = child.com
			continue
		}
		com, sdec := c.Key.SCom()
		dec.soft[prefixKey(childPrefix)] = &softEntry{com: com, dec: sdec}
		n.siblings[slot] = com
	}
	com, hdec := c.Key.HCom(c.nodeMessage(n.siblings))
	n.com = com
	n.dec = hdec
	return n, nil
}

func prefixKey(prefix []int) string {
	buf := make([]byte, len(prefix))
	for i, d := range prefix {
		buf[i] = byte(d)
	}
	return string(buf)
}

// LevelOpening opens one internal level: the node's (hard or soft) opening
// to the hash of its children, plus ALL q child commitments — the Θ(q)
// per-level payload that motivates vector commitments.
type LevelOpening struct {
	Hard     *mercurial.HardOpening `json:"hard,omitempty"`
	Tease    *mercurial.Tease       `json:"tease,omitempty"`
	Children []mercurial.Commitment `json:"children"`
}

// Proof is an ownership or non-ownership proof.
type Proof struct {
	Present   bool                   `json:"present"`
	Value     []byte                 `json:"value,omitempty"`
	Levels    []LevelOpening         `json:"levels"`
	LeafHard  *mercurial.HardOpening `json:"leaf_hard,omitempty"`
	LeafTease *mercurial.Tease       `json:"leaf_tease,omitempty"`
}

// Size returns the canonical byte size of the proof (points and scalars at
// their wire sizes), the quantity experiment A4 compares against zkedb.
func (p *Proof) Size() int {
	const scalarLen = 32
	size := 1 + len(p.Value)
	for _, lo := range p.Levels {
		if lo.Hard != nil {
			size += 3 * scalarLen
		}
		if lo.Tease != nil {
			size += 2 * scalarLen
		}
		for _, child := range lo.Children {
			size += len(child.Bytes())
		}
	}
	if p.LeafHard != nil {
		size += 3 * scalarLen
	}
	if p.LeafTease != nil {
		size += 2 * scalarLen
	}
	return size
}

// Prove generates the proof for key: ownership when present, non-ownership
// otherwise.
func (d *Decommitment) Prove(key string) (*Proof, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.db[key]; ok {
		return d.proveOwnership(key)
	}
	return d.proveNonOwnership(key)
}

func (d *Decommitment) proveOwnership(key string) (*Proof, error) {
	c := d.crs
	digits := c.digits(c.digest(key))
	proof := &Proof{Present: true, Levels: make([]LevelOpening, 0, c.Params.H)}
	cur := d.root
	for level := 0; level < c.Params.H; level++ {
		child, ok := cur.children[digits[level]]
		if !ok {
			return nil, fmt.Errorf("chlmr: tree path broken at level %d", level)
		}
		op := c.Key.HOpen(cur.dec)
		proof.Levels = append(proof.Levels, LevelOpening{Hard: &op, Children: cur.siblings})
		cur = child
	}
	if cur.leafKey != key {
		return nil, fmt.Errorf("%w: leaf holds %q", ErrDigestCollision, cur.leafKey)
	}
	leafOp := c.Key.HOpen(cur.dec)
	proof.LeafHard = &leafOp
	proof.Value = cur.leafValue
	return proof, nil
}

func (d *Decommitment) proveNonOwnership(key string) (*Proof, error) {
	c := d.crs
	digits := c.digits(c.digest(key))
	proof := &Proof{Levels: make([]LevelOpening, 0, c.Params.H)}

	cur := d.root
	level := 0
	for ; level < c.Params.H; level++ {
		child, ok := cur.children[digits[level]]
		if !ok {
			break
		}
		tease := c.Key.SOpenHard(cur.dec)
		proof.Levels = append(proof.Levels, LevelOpening{Tease: &tease, Children: cur.siblings})
		cur = child
	}
	if level == c.Params.H {
		return nil, fmt.Errorf("chlmr: key %q is present", key)
	}

	// Hand over to the soft chain pinned at the empty slot.
	entry := d.softAt(digits[:level+1])
	tease := c.Key.SOpenHard(cur.dec)
	proof.Levels = append(proof.Levels, LevelOpening{Tease: &tease, Children: cur.siblings})
	level++

	// Below the materialized frontier the prover must fabricate FULL sibling
	// lists (q soft commitments per level) so the teased node message
	// verifies — the Θ(q·h) generation cost of this construction.
	for ; level < c.Params.H; level++ {
		siblings := make([]mercurial.Commitment, c.Params.Q)
		for slot := 0; slot < c.Params.Q; slot++ {
			sibPrefix := append(append(make([]int, 0, level+1), digits[:level]...), slot)
			siblings[slot] = d.softAt(sibPrefix).com
		}
		ts, err := c.Key.SOpenSoft(entry.dec, c.nodeMessage(siblings))
		if err != nil {
			return nil, fmt.Errorf("chlmr: soft-opening level %d: %w", level, err)
		}
		proof.Levels = append(proof.Levels, LevelOpening{Tease: &ts, Children: siblings})
		entry = d.softAt(digits[:level+1])
	}

	leafTease, err := c.Key.SOpenSoft(entry.dec, c.absentMessage(key))
	if err != nil {
		return nil, fmt.Errorf("chlmr: teasing absent leaf: %w", err)
	}
	proof.LeafTease = &leafTease
	return proof, nil
}

func (d *Decommitment) softAt(prefix []int) *softEntry {
	k := prefixKey(prefix)
	if entry, ok := d.soft[k]; ok {
		return entry
	}
	com, sdec := d.crs.Key.SCom()
	entry := &softEntry{com: com, dec: sdec}
	d.soft[k] = entry
	return entry
}

// Verify checks a proof for key against a commitment.
func (c *CRS) Verify(com Commitment, key string, proof *Proof) (value []byte, present bool, err error) {
	if proof == nil || len(proof.Levels) != c.Params.H {
		return nil, false, fmt.Errorf("%w: wrong shape", ErrBadProof)
	}
	digits := c.digits(c.digest(key))
	cur := com.Root
	for level, lo := range proof.Levels {
		if len(lo.Children) != c.Params.Q {
			return nil, false, fmt.Errorf("%w: level %d has %d children", ErrBadProof, level, len(lo.Children))
		}
		want := c.nodeMessage(lo.Children)
		switch {
		case proof.Present && lo.Hard != nil:
			if lo.Hard.M == nil || lo.Hard.M.Cmp(want) != 0 {
				return nil, false, fmt.Errorf("%w: level %d message mismatch", ErrBadProof, level)
			}
			if !c.Key.VerHOpen(cur, *lo.Hard) {
				return nil, false, fmt.Errorf("%w: level %d hard opening invalid", ErrBadProof, level)
			}
		case !proof.Present && lo.Tease != nil:
			if lo.Tease.M == nil || lo.Tease.M.Cmp(want) != 0 {
				return nil, false, fmt.Errorf("%w: level %d message mismatch", ErrBadProof, level)
			}
			if !c.Key.VerSOpen(cur, *lo.Tease) {
				return nil, false, fmt.Errorf("%w: level %d tease invalid", ErrBadProof, level)
			}
		default:
			return nil, false, fmt.Errorf("%w: level %d opening flavour mismatch", ErrBadProof, level)
		}
		cur = lo.Children[digits[level]]
	}
	if proof.Present {
		if proof.LeafHard == nil {
			return nil, false, fmt.Errorf("%w: missing leaf opening", ErrBadProof)
		}
		want := c.leafMessage(key, proof.Value)
		if proof.LeafHard.M == nil || proof.LeafHard.M.Cmp(want) != 0 {
			return nil, false, fmt.Errorf("%w: leaf message mismatch", ErrBadProof)
		}
		if !c.Key.VerHOpen(cur, *proof.LeafHard) {
			return nil, false, fmt.Errorf("%w: leaf opening invalid", ErrBadProof)
		}
		return proof.Value, true, nil
	}
	if proof.LeafTease == nil {
		return nil, false, fmt.Errorf("%w: missing leaf tease", ErrBadProof)
	}
	want := c.absentMessage(key)
	if proof.LeafTease.M == nil || proof.LeafTease.M.Cmp(want) != 0 {
		return nil, false, fmt.Errorf("%w: leaf tease mismatch", ErrBadProof)
	}
	if !c.Key.VerSOpen(cur, *proof.LeafTease) {
		return nil, false, fmt.Errorf("%w: leaf tease invalid", ErrBadProof)
	}
	return nil, false, nil
}
