package chlmr

import (
	"fmt"
	"math/big"
	"testing"
)

var _testCRS *CRS

func testCRS(t *testing.T) *CRS {
	t.Helper()
	if _testCRS == nil {
		crs, err := CRSGen(TestParams())
		if err != nil {
			t.Fatal(err)
		}
		_testCRS = crs
	}
	return _testCRS
}

func testDB(n int) map[string][]byte {
	db := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		db[fmt.Sprintf("key-%03d", i)] = []byte(fmt.Sprintf("value-%03d", i))
	}
	return db
}

func TestParamsValidate(t *testing.T) {
	if err := TestParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Q: 6, H: 8, KeyBits: 24},
		{Q: 8, H: 0, KeyBits: 24},
		{Q: 8, H: 2, KeyBits: 24},
		{Q: 8, H: 8, KeyBits: 300},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("%+v must be rejected", p)
		}
	}
}

func TestOwnershipRoundTrip(t *testing.T) {
	crs := testCRS(t)
	db := testDB(6)
	com, dec, err := crs.Commit(db)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range db {
		proof, err := dec.Prove(key)
		if err != nil {
			t.Fatalf("Prove(%q): %v", key, err)
		}
		value, present, err := crs.Verify(com, key, proof)
		if err != nil || !present || string(value) != string(want) {
			t.Fatalf("Verify(%q) = %q/%v/%v", key, value, present, err)
		}
	}
}

func TestNonOwnershipRoundTrip(t *testing.T) {
	crs := testCRS(t)
	com, dec, err := crs.Commit(testDB(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ghost-1", "ghost-2"} {
		proof, err := dec.Prove(key)
		if err != nil {
			t.Fatal(err)
		}
		if _, present, err := crs.Verify(com, key, proof); err != nil || present {
			t.Fatalf("Verify(%q): %v", key, err)
		}
	}
}

func TestEmptyDatabase(t *testing.T) {
	crs := testCRS(t)
	com, dec, err := crs.Commit(nil)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dec.Prove("anything")
	if err != nil {
		t.Fatal(err)
	}
	if _, present, err := crs.Verify(com, "anything", proof); err != nil || present {
		t.Fatalf("empty DB must prove absence: %v", err)
	}
}

func TestProofReplayRejected(t *testing.T) {
	crs := testCRS(t)
	com, dec, err := crs.Commit(testDB(4))
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dec.Prove("key-001")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := crs.Verify(com, "key-002", proof); err == nil {
		t.Fatal("replayed proof must fail")
	}
	com2, _, err := crs.Commit(testDB(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := crs.Verify(com2, "key-001", proof); err == nil {
		t.Fatal("proof against another commitment must fail")
	}
}

func TestTamperedProofRejected(t *testing.T) {
	crs := testCRS(t)
	com, dec, err := crs.Commit(testDB(4))
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dec.Prove("key-000")
	if err != nil {
		t.Fatal(err)
	}
	proof.Value = []byte("forged")
	if _, _, err := crs.Verify(com, "key-000", proof); err == nil {
		t.Fatal("forged value must be rejected")
	}
	proof, err = dec.Prove("key-000")
	if err != nil {
		t.Fatal(err)
	}
	proof.Levels[1].Hard.M = new(big.Int).Add(proof.Levels[1].Hard.M, big.NewInt(1))
	if _, _, err := crs.Verify(com, "key-000", proof); err == nil {
		t.Fatal("tampered level must be rejected")
	}
	proof, err = dec.Prove("key-000")
	if err != nil {
		t.Fatal(err)
	}
	proof.Levels[2].Children[3] = proof.Levels[2].Children[4]
	if _, _, err := crs.Verify(com, "key-000", proof); err == nil {
		t.Fatal("substituted sibling must be rejected")
	}
	if _, _, err := crs.Verify(com, "key-000", nil); err == nil {
		t.Fatal("nil proof must be rejected")
	}
}

func TestKindFlipRejected(t *testing.T) {
	crs := testCRS(t)
	com, dec, err := crs.Commit(testDB(2))
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dec.Prove("key-000")
	if err != nil {
		t.Fatal(err)
	}
	proof.Present = false
	if _, _, err := crs.Verify(com, "key-000", proof); err == nil {
		t.Fatal("flipped kind must be rejected")
	}
}

func TestRepeatedNonOwnershipConsistent(t *testing.T) {
	crs := testCRS(t)
	_, dec, err := crs.Commit(testDB(3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := dec.Prove("ghost")
	if err != nil {
		t.Fatal(err)
	}
	b, err := dec.Prove("ghost")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Levels {
		for j := range a.Levels[i].Children {
			if !a.Levels[i].Children[j].Equal(b.Levels[i].Children[j]) {
				t.Fatalf("level %d sibling %d differs across queries", i, j)
			}
		}
	}
}

func TestProofSizeGrowsWithQ(t *testing.T) {
	// The defining weakness vs the qTMC construction: proofs are Θ(q·h).
	small, err := CRSGen(Params{Q: 4, H: 12, KeyBits: 24})
	if err != nil {
		t.Fatal(err)
	}
	large, err := CRSGen(Params{Q: 64, H: 4, KeyBits: 24})
	if err != nil {
		t.Fatal(err)
	}
	db := map[string][]byte{"k": []byte("v")}
	_, decS, err := small.Commit(db)
	if err != nil {
		t.Fatal(err)
	}
	_, decL, err := large.Commit(db)
	if err != nil {
		t.Fatal(err)
	}
	pS, err := decS.Prove("k")
	if err != nil {
		t.Fatal(err)
	}
	pL, err := decL.Prove("k")
	if err != nil {
		t.Fatal(err)
	}
	// q·h: 4·12=48 vs 64·4=256 — the larger-q tree must have larger proofs
	// despite being much shallower (the inverse of zkedb's Table II trend).
	if pL.Size() <= pS.Size() {
		t.Fatalf("plain-TMC proofs must grow with q·h: q=4·h=12 %dB vs q=64·h=4 %dB",
			pS.Size(), pL.Size())
	}
}

func TestCommitmentConstantSize(t *testing.T) {
	crs := testCRS(t)
	c1, _, err := crs.Commit(testDB(1))
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := crs.Commit(testDB(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.Root.Bytes()) != len(c2.Root.Bytes()) {
		t.Fatal("commitment size must not depend on database size")
	}
}
