package sim

import (
	"time"

	"desword/internal/events"
)

// EmitCampaign records one sweep row as a durable campaign event: the full
// configuration that produced it plus the per-strategy outcome distributions.
// desword-sim emits one per swept p_bad into a per-campaign journal, so
// incentive experiments leave the same kind of offline evidence trail as
// production queries — scannable, diffable, and reproducible from the
// recorded seed. A nil sink records nothing.
func EmitCampaign(sink *events.Sink, cfg Config, row SweepRow, start time.Time) {
	ev := events.New(events.KindCampaign, start)
	ev.DurationUS = time.Since(start).Microseconds()
	ev.Outcome = events.OutcomeOK
	ev.SetField("p_bad", row.PBad)
	ev.SetField("products", cfg.Products)
	ev.SetField("trials", cfg.Trials)
	ev.SetField("seed", cfg.Seed)
	ev.SetField("q_good", cfg.QueryRateGood)
	ev.SetField("q_bad", cfg.QueryRateBad)
	ev.SetField("u_pos", cfg.PositiveUnit)
	ev.SetField("u_neg", cfg.NegativeUnit)
	ev.SetField("delete_frac", cfg.DeleteFrac)
	ev.SetField("add_frac", cfg.AddFrac)
	ev.SetField("break_even_p_bad", cfg.BreakEvenPBad())
	ev.SetField("honest", row.Outcomes[Honest])
	ev.SetField("deleter", row.Outcomes[Deleter])
	ev.SetField("adder", row.Outcomes[Adder])
	sink.Emit(ev)
}
