package sim

import (
	"math"
	"testing"
)

func TestRunDeterministicWithSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trials = 200
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Strategies() {
		if a[s] != b[s] {
			t.Fatalf("same seed must reproduce outcomes for %v", s)
		}
	}
}

func TestValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Products = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero products must be rejected")
	}
	bad = DefaultConfig()
	bad.PBad = 1.5
	if _, err := Run(bad); err == nil {
		t.Fatal("probability > 1 must be rejected")
	}
	bad = DefaultConfig()
	bad.AddFrac = -1
	if _, err := Run(bad); err == nil {
		t.Fatal("negative AddFrac must be rejected")
	}
	bad = DefaultConfig()
	bad.NegativeUnit = -1
	if _, err := Run(bad); err == nil {
		t.Fatal("negative unit must be rejected")
	}
}

func TestHonestBeatsDeleterWhenTracesPayOff(t *testing.T) {
	// With ExpectedPerTrace > 0, every deleted trace is a forfeited reward:
	// the honest strategy must dominate the deleter in the mean.
	cfg := DefaultConfig()
	cfg.PBad = 0.01 // well below break-even: committed traces pay
	cfg.Trials = 3000
	if cfg.ExpectedPerTrace() <= 0 {
		t.Fatalf("fixture broken: expected per-trace value %v", cfg.ExpectedPerTrace())
	}
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out[Honest].Mean <= out[Deleter].Mean {
		t.Fatalf("honest (%v) must out-earn deleter (%v)", out[Honest].Mean, out[Deleter].Mean)
	}
}

func TestAdditionBackfiresWhenBadProductsAreHunted(t *testing.T) {
	// Above break-even (bad products likely and heavily queried), each extra
	// committed trace has negative expected value: the adder must underperform.
	cfg := DefaultConfig()
	cfg.PBad = 0.2
	cfg.NegativeUnit = 2
	cfg.Trials = 3000
	if cfg.ExpectedPerTrace() >= 0 {
		t.Fatalf("fixture broken: expected per-trace value %v", cfg.ExpectedPerTrace())
	}
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out[Adder].Mean >= out[Honest].Mean {
		t.Fatalf("adder (%v) must underperform honest (%v)", out[Adder].Mean, out[Honest].Mean)
	}
}

func TestDeviationsWidenRiskAtBreakEven(t *testing.T) {
	// At the expectation-neutral point the double edge is pure risk: the
	// adder faces a wider outcome band than honest (it holds strictly more
	// lottery tickets), even though the means are close.
	cfg := DefaultConfig()
	cfg.PBad = cfg.BreakEvenPBad()
	cfg.Trials = 4000
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[Honest].Mean-out[Adder].Mean) > 3*out[Honest].Std {
		t.Fatalf("at break-even the means must be close: honest %v, adder %v",
			out[Honest].Mean, out[Adder].Mean)
	}
	if out[Adder].Std <= out[Honest].Std {
		t.Fatalf("adder must carry more variance: %v vs %v", out[Adder].Std, out[Honest].Std)
	}
}

func TestExpectedPerTraceFormula(t *testing.T) {
	cfg := Config{
		PBad: 0.1, QueryRateGood: 0.2, QueryRateBad: 0.5,
		PositiveUnit: 1, NegativeUnit: 2,
	}
	want := 0.2*0.9*1 - 0.5*0.1*2
	if got := cfg.ExpectedPerTrace(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExpectedPerTrace() = %v, want %v", got, want)
	}
}

func TestBreakEvenPBadIsNeutral(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PBad = cfg.BreakEvenPBad()
	if got := cfg.ExpectedPerTrace(); math.Abs(got) > 1e-12 {
		t.Fatalf("per-trace value at break-even must be 0, got %v", got)
	}
	zero := Config{}
	if zero.BreakEvenPBad() != 0 {
		t.Fatal("degenerate config must not divide by zero")
	}
}

func TestMonteCarloMatchesAnalyticMean(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trials = 5000
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(cfg.Products) * cfg.ExpectedPerTrace()
	tolerance := 4 * out[Honest].Std / math.Sqrt(float64(cfg.Trials))
	if math.Abs(out[Honest].Mean-want) > tolerance+1 {
		t.Fatalf("simulated mean %v too far from analytic %v", out[Honest].Mean, want)
	}
}

func TestSweepPBad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trials = 300
	rows, err := SweepPBad(cfg, []float64{0.01, 0.1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Monotonicity: everyone's mean falls as products get worse.
	for _, s := range Strategies() {
		if rows[0].Outcomes[s].Mean < rows[2].Outcomes[s].Mean {
			t.Fatalf("%v mean must fall as PBad rises", s)
		}
	}
	if _, err := SweepPBad(cfg, []float64{2}); err == nil {
		t.Fatal("invalid sweep point must be rejected")
	}
}

func TestOutcomeBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trials = 500
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s, o := range out {
		if o.Min > o.P05 || o.P05 > o.P95 || o.P95 > o.Max {
			t.Fatalf("%v: order Min ≤ P05 ≤ P95 ≤ Max violated: %+v", s, o)
		}
		if o.Std < 0 {
			t.Fatalf("%v: negative std", s)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if Honest.String() != "honest" || Deleter.String() != "deleter" || Adder.String() != "adder" {
		t.Fatal("strategy strings wrong")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy must render non-empty")
	}
}
