// Package sim quantifies DE-Sword's double-edged reputation incentive
// (§II.C, Figure 3) by Monte-Carlo simulation. The cryptographic layer is
// exercised elsewhere (core and adversary tests); here only the incentive
// arithmetic runs, so millions of product outcomes are cheap.
//
// Model. A participant processes Products products per epoch. Each product
// independently turns out bad with probability PBad. The proxy queries a
// good product with probability QueryRateGood (market sampling) and a bad
// product with probability QueryRateBad (complaints and recalls make bad
// products far more likely to be queried). An identified participant earns
// +PositiveUnit on a good query and -NegativeUnit on a bad query.
//
// Strategies:
//
//   - Honest commits every trace: it is identified whenever one of its
//     products is queried.
//   - Deleter omits a fraction DeleteFrac of its traces from the POC: it is
//     never identified for those products — forfeiting good-query rewards
//     and dodging bad-query penalties (Figure 3a).
//   - Adder additionally commits fake traces for AddFrac·Products products
//     it never processed: it collects rewards when they are queried good and
//     penalties when they are queried bad (Figure 3b).
//
// The simulator reports the reputation distribution per strategy; the
// experiment harness (E7) sweeps PBad to locate the region where deviation
// stops paying.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Strategy enumerates the simulated POC-construction strategies.
type Strategy int

// Strategies start at 1 so the zero value is invalid.
const (
	Honest Strategy = iota + 1
	Deleter
	Adder
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Honest:
		return "honest"
	case Deleter:
		return "deleter"
	case Adder:
		return "adder"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all simulated strategies in display order.
func Strategies() []Strategy { return []Strategy{Honest, Deleter, Adder} }

// Config parameterizes one simulation.
type Config struct {
	// Products processed per participant per epoch.
	Products int
	// PBad is the probability a product turns out bad.
	PBad float64
	// QueryRateGood is the probability a good product is queried (sampling).
	QueryRateGood float64
	// QueryRateBad is the probability a bad product is queried (recalls).
	QueryRateBad float64
	// PositiveUnit and NegativeUnit are the award magnitudes.
	PositiveUnit float64
	NegativeUnit float64
	// DeleteFrac is the fraction of traces the Deleter omits.
	DeleteFrac float64
	// AddFrac is the number of fake traces the Adder commits, as a fraction
	// of Products.
	AddFrac float64
	// Trials is the number of independent epochs simulated per strategy.
	Trials int
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultConfig models a pharmaceutical-style chain: bad products are rare
// (2%) but almost always investigated, while good products are sampled
// rarely.
func DefaultConfig() Config {
	return Config{
		Products:      200,
		PBad:          0.02,
		QueryRateGood: 0.05,
		QueryRateBad:  0.9,
		PositiveUnit:  1,
		NegativeUnit:  1,
		DeleteFrac:    0.5,
		AddFrac:       0.5,
		Trials:        2000,
		Seed:          1,
	}
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	if c.Products <= 0 || c.Trials <= 0 {
		return errors.New("sim: Products and Trials must be positive")
	}
	for _, p := range []float64{c.PBad, c.QueryRateGood, c.QueryRateBad, c.DeleteFrac} {
		if p < 0 || p > 1 {
			return fmt.Errorf("sim: probability %v outside [0,1]", p)
		}
	}
	if c.AddFrac < 0 {
		return errors.New("sim: AddFrac must be non-negative")
	}
	if c.PositiveUnit < 0 || c.NegativeUnit < 0 {
		return errors.New("sim: award units must be non-negative")
	}
	return nil
}

// Outcome summarizes a strategy's reputation distribution across trials.
type Outcome struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// P05 and P95 bound the middle 90% of outcomes — the "risk band" that
	// makes the double edge visible even when means are close.
	P05 float64 `json:"p05"`
	P95 float64 `json:"p95"`
}

// Run simulates every strategy under the configuration.
func Run(cfg Config) (map[Strategy]Outcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make(map[Strategy]Outcome, 3)
	for _, s := range Strategies() {
		samples := make([]float64, cfg.Trials)
		for t := range samples {
			samples[t] = cfg.epoch(rng, s)
		}
		out[s] = summarize(samples)
	}
	return out, nil
}

// epoch simulates one participant-epoch under a strategy and returns the
// reputation delta.
func (c Config) epoch(rng *rand.Rand, s Strategy) float64 {
	score := 0.0
	// Real products.
	for i := 0; i < c.Products; i++ {
		committed := true
		if s == Deleter && rng.Float64() < c.DeleteFrac {
			committed = false // trace omitted from the POC: never identified
		}
		score += c.productOutcome(rng, committed)
	}
	// Fake products (Adder only): committed although never processed.
	if s == Adder {
		fakes := int(math.Round(c.AddFrac * float64(c.Products)))
		for i := 0; i < fakes; i++ {
			score += c.productOutcome(rng, true)
		}
	}
	return score
}

// productOutcome rolls one product's quality and query lottery.
func (c Config) productOutcome(rng *rand.Rand, committed bool) float64 {
	if !committed {
		return 0 // not in the POC → cannot be identified either way
	}
	if rng.Float64() < c.PBad {
		if rng.Float64() < c.QueryRateBad {
			return -c.NegativeUnit
		}
		return 0
	}
	if rng.Float64() < c.QueryRateGood {
		return c.PositiveUnit
	}
	return 0
}

// ExpectedPerTrace returns the analytic expected reputation delta of one
// committed trace: q_g·(1-p)·u⁺ − q_b·p·u⁻. The Deleter forgoes it per
// deleted trace; the Adder collects it per fake trace. Its sign therefore
// decides which deviation pays in expectation — the published mechanism is
// expectation-neutral only on the q_g·(1-p)·u⁺ = q_b·p·u⁻ surface, and the
// simulator's risk bands show the variance cost away from it.
func (c Config) ExpectedPerTrace() float64 {
	return c.QueryRateGood*(1-c.PBad)*c.PositiveUnit - c.QueryRateBad*c.PBad*c.NegativeUnit
}

// BreakEvenPBad returns the bad-product probability at which one committed
// trace is expectation-neutral, holding the other parameters fixed.
func (c Config) BreakEvenPBad() float64 {
	denom := c.QueryRateGood*c.PositiveUnit + c.QueryRateBad*c.NegativeUnit
	if denom == 0 {
		return 0
	}
	return c.QueryRateGood * c.PositiveUnit / denom
}

func summarize(samples []float64) Outcome {
	n := float64(len(samples))
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	mean := sum / n
	varSum := 0.0
	minV, maxV := samples[0], samples[0]
	for _, v := range samples {
		d := v - mean
		varSum += d * d
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	return Outcome{
		Mean: mean,
		Std:  math.Sqrt(varSum / n),
		Min:  minV,
		Max:  maxV,
		P05:  percentile(sorted, 0.05),
		P95:  percentile(sorted, 0.95),
	}
}

// percentile reads the p-quantile from a sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// SweepPBad runs the simulation across a range of bad-product probabilities,
// returning one row per point — the data behind experiment E7's table.
type SweepRow struct {
	PBad     float64              `json:"p_bad"`
	Outcomes map[Strategy]Outcome `json:"outcomes"`
}

// SweepPBad sweeps cfg.PBad over the given values.
func SweepPBad(cfg Config, pBads []float64) ([]SweepRow, error) {
	rows := make([]SweepRow, 0, len(pBads))
	for _, p := range pBads {
		c := cfg
		c.PBad = p
		outcomes, err := Run(c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SweepRow{PBad: p, Outcomes: outcomes})
	}
	return rows, nil
}
