package rfid

import (
	"strings"
	"testing"
)

func TestNewTagValidation(t *testing.T) {
	if _, err := NewTag(""); err == nil {
		t.Fatal("empty id must be rejected")
	}
	if _, err := NewTag(strings.Repeat("x", MaxIDLength+1)); err == nil {
		t.Fatal("oversized id must be rejected")
	}
	if _, err := NewTagWithCapacity("ok", -1); err == nil {
		t.Fatal("negative capacity must be rejected")
	}
	tag, err := NewTag("id1")
	if err != nil {
		t.Fatal(err)
	}
	if tag.ID() != "id1" {
		t.Fatalf("ID() = %q", tag.ID())
	}
}

func TestTagMemoryLimit(t *testing.T) {
	tag, err := NewTagWithCapacity("id1", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tag.WriteMemory([]byte("12345678")); err != nil {
		t.Fatalf("write within capacity: %v", err)
	}
	if err := tag.WriteMemory([]byte("x")); err == nil {
		t.Fatal("overflow write must fail")
	}
	if got := string(tag.ReadMemory()); got != "12345678" {
		t.Fatalf("ReadMemory() = %q", got)
	}
}

func TestReadMemoryReturnsCopy(t *testing.T) {
	tag, err := NewTagWithCapacity("id1", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tag.WriteMemory([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	mem := tag.ReadMemory()
	mem[0] = 'z'
	if string(tag.ReadMemory()) != "abc" {
		t.Fatal("ReadMemory must return a defensive copy")
	}
}

func TestReaderReadsAndCounts(t *testing.T) {
	reader := NewReader("v0")
	if reader.Owner() != "v0" {
		t.Fatalf("Owner() = %q", reader.Owner())
	}
	tag, err := NewTag("id1")
	if err != nil {
		t.Fatal(err)
	}
	obs := reader.Read(tag)
	if obs.TagID != "id1" || obs.Reader != "v0" || obs.Seq != 1 {
		t.Fatalf("unexpected observation %+v", obs)
	}
	if tag.ReadCount() != 1 {
		t.Fatalf("ReadCount() = %d", tag.ReadCount())
	}
	reader.Read(tag)
	if tag.ReadCount() != 2 {
		t.Fatal("read counter must increment")
	}
}

func TestReadBatchPreservesOrder(t *testing.T) {
	reader := NewReader("v0")
	var tags []*Tag
	for _, id := range []string{"a", "b", "c"} {
		tag, err := NewTag(id)
		if err != nil {
			t.Fatal(err)
		}
		tags = append(tags, tag)
	}
	obs := reader.ReadBatch(tags)
	if len(obs) != 3 {
		t.Fatalf("got %d observations", len(obs))
	}
	for i, id := range []string{"a", "b", "c"} {
		if obs[i].TagID != id {
			t.Fatalf("observation %d = %q, want %q", i, obs[i].TagID, id)
		}
		if obs[i].Seq != uint64(i+1) {
			t.Fatalf("observation %d seq = %d", i, obs[i].Seq)
		}
	}
}
