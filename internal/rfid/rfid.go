// Package rfid simulates the RFID layer of the supply chain: passive tags
// carrying short unique product identifiers with a small amount of user
// memory, and readers that identify tags as products flow through a
// participant's facility.
//
// DE-Sword deliberately keeps this layer thin — the paper requires tags only
// to "carry short product identifiers and support basic read operation with
// RFID-reader" (§VI) — all protocol cost lives at the backend. The simulation
// still models the two tag constraints that shape the system: identifiers are
// short, and tag memory is tiny (production data therefore lives in
// participant databases, not on tags).
package rfid

import (
	"errors"
	"fmt"
	"sync"
)

// Tag memory limits. EPC Class-1 Gen-2 user memory is typically 32–512 bytes;
// the default models a 128-byte tag.
const (
	DefaultMemoryCapacity = 128
	// MaxIDLength bounds the identifier, mirroring a 96-bit EPC code plus
	// headroom for human-readable ids in examples.
	MaxIDLength = 64
)

// Errors reported by this package.
var (
	ErrMemoryFull = errors.New("rfid: tag memory full")
	ErrIDTooLong  = errors.New("rfid: identifier exceeds tag capacity")
)

// Tag is a passive RFID tag attached to one product.
type Tag struct {
	mu     sync.Mutex
	id     string
	memory []byte
	cap    int
	reads  int
}

// NewTag mints a tag with the given identifier and DefaultMemoryCapacity
// bytes of user memory.
func NewTag(id string) (*Tag, error) {
	return NewTagWithCapacity(id, DefaultMemoryCapacity)
}

// NewTagWithCapacity mints a tag with an explicit memory capacity.
func NewTagWithCapacity(id string, capacity int) (*Tag, error) {
	if len(id) == 0 || len(id) > MaxIDLength {
		return nil, fmt.Errorf("%w: %d bytes", ErrIDTooLong, len(id))
	}
	if capacity < 0 {
		return nil, fmt.Errorf("rfid: negative capacity %d", capacity)
	}
	return &Tag{id: id, cap: capacity}, nil
}

// ID returns the tag's product identifier.
func (t *Tag) ID() string { return t.id }

// WriteMemory appends data to the tag's user memory, failing when the tiny
// tag memory would overflow — the constraint that forces RFID-traces into
// backend databases.
func (t *Tag) WriteMemory(data []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.memory)+len(data) > t.cap {
		return fmt.Errorf("%w: %d/%d bytes used, writing %d",
			ErrMemoryFull, len(t.memory), t.cap, len(data))
	}
	t.memory = append(t.memory, data...)
	return nil
}

// ReadMemory returns a copy of the tag's user memory.
func (t *Tag) ReadMemory() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]byte, len(t.memory))
	copy(out, t.memory)
	return out
}

// ReadCount returns how many times the tag has been identified by a reader.
func (t *Tag) ReadCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reads
}

// Observation is the result of a reader identifying a tag.
type Observation struct {
	TagID  string `json:"tag_id"`
	Reader string `json:"reader"`
	Seq    uint64 `json:"seq"`
}

// Reader is an RFID reader installed at one participant's facility.
type Reader struct {
	mu    sync.Mutex
	owner string
	seq   uint64
}

// NewReader creates a reader owned by the named participant.
func NewReader(owner string) *Reader {
	return &Reader{owner: owner}
}

// Owner returns the participant operating this reader.
func (r *Reader) Owner() string { return r.owner }

// Read identifies a tag, incrementing both the tag's read counter and the
// reader's observation sequence.
func (r *Reader) Read(t *Tag) Observation {
	t.mu.Lock()
	t.reads++
	t.mu.Unlock()
	r.mu.Lock()
	r.seq++
	seq := r.seq
	r.mu.Unlock()
	return Observation{TagID: t.id, Reader: r.owner, Seq: seq}
}

// ReadBatch identifies every tag in a batch, in order.
func (r *Reader) ReadBatch(tags []*Tag) []Observation {
	out := make([]Observation, 0, len(tags))
	for _, t := range tags {
		out = append(out, r.Read(t))
	}
	return out
}
