// Package rsavc implements a vector commitment with constant-size position
// openings in the RSA setting, following the blueprint of Catalano and Fiore
// ("Vector Commitments and their Applications"). It replaces the
// pairing-based q-mercurial vector layer of Libert–Yung used by the DE-Sword
// paper, which cannot be built from the Go standard library; see DESIGN.md §3
// for why the substitution preserves the paper's cost shapes.
//
// Construction. The committer is given an RSA modulus N whose factorization
// was discarded by a trusted setup (DE-Sword's proxy), a base g ∈ QR_N, and q
// distinct public primes e_1..e_q, each larger than the message space. With
// P = ∏ e_j and bases g_j = g^{P/e_j}:
//
//	Commit(m_1..m_q; r) = g^{rP} · ∏_j g_j^{m_j} mod N
//	Witness for slot i:  Λ_i = g^{(rP + Σ_{j≠i} m_j·P/e_j)/e_i}
//	Verify:              Λ_i^{e_i} · g_i^{m_i} ≡ V (mod N)
//
// Two different openings of slot i yield an e_i-th root of g, contradicting
// the strong RSA assumption, so each position is computationally binding.
// Commit and Witness cost Θ(q) (the exponent grows linearly with q), while
// Verify is independent of q — exactly the asymmetry the paper measures in
// Fig. 4 and Fig. 5.
package rsavc

import (
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// DefaultModulusBits is the RSA modulus size used by production parameters.
// Benchmarks in the paper's regime use 1024-bit moduli to keep the sweep
// tractable; security-sensitive deployments should pass 2048.
const DefaultModulusBits = 1024

// hidingBits sizes the statistical hiding randomness r.
const hidingBits = 256

// Errors reported by this package.
var (
	ErrMessageOutOfRange  = errors.New("rsavc: message outside [0, 2^MessageBits)")
	ErrPositionOutOfRange = errors.New("rsavc: position outside [0, q)")
	ErrVectorLength       = errors.New("rsavc: vector length differs from q")
)

// Params is the public commitment key. It is immutable after Setup and safe
// for concurrent use.
type Params struct {
	N           *big.Int   // RSA modulus with unknown factorization
	G           *big.Int   // base in QR_N
	Q           int        // vector length
	MessageBits int        // messages lie in [0, 2^MessageBits)
	Primes      []*big.Int // q distinct primes > 2^MessageBits
	prodPrimes  *big.Int   // P = ∏ primes
	prodDiv     []*big.Int // P / e_i
	bases       []*big.Int // g_i = g^{P/e_i} mod N
}

// Witness is the constant-size opening for one vector slot.
type Witness struct {
	Lambda *big.Int `json:"lambda"`
}

// Setup generates parameters for vectors of length q with messages of
// messageBits bits, over a fresh RSA modulus of modulusBits bits. The modulus
// factorization is generated via crypto/rsa and immediately discarded; in
// DE-Sword the trusted proxy plays this role when producing the public
// parameter ps.
func Setup(q, messageBits, modulusBits int) (*Params, error) {
	if q < 1 {
		return nil, fmt.Errorf("rsavc: q must be positive, got %d", q)
	}
	if messageBits < 8 {
		return nil, fmt.Errorf("rsavc: messageBits too small: %d", messageBits)
	}
	key, err := rsa.GenerateKey(rand.Reader, modulusBits)
	if err != nil {
		return nil, fmt.Errorf("rsavc: generating modulus: %w", err)
	}
	n := new(big.Int).Set(key.N)
	// Base g: a random quadratic residue, so g generates a large subgroup.
	s, err := rand.Int(rand.Reader, n)
	if err != nil {
		return nil, fmt.Errorf("rsavc: sampling base: %w", err)
	}
	g := new(big.Int).Mul(s, s)
	g.Mod(g, n)
	if g.Sign() == 0 {
		g.SetInt64(4)
	}
	params := &Params{N: n, G: g, Q: q, MessageBits: messageBits}
	params.Primes = derivePrimes(q, messageBits)
	params.finalize()
	return params, nil
}

// derivePrimes deterministically derives q distinct primes just above
// 2^(messageBits+1), spaced far enough apart that the next-prime searches
// cannot collide. Public deterministic primes are standard for RSA vector
// commitments; binding rests solely on the modulus.
func derivePrimes(q, messageBits int) []*big.Int {
	primes := make([]*big.Int, 0, q)
	base := new(big.Int).Lsh(big.NewInt(1), uint(messageBits+1))
	spacing := new(big.Int).Lsh(big.NewInt(1), 24)
	for i := 0; i < q; i++ {
		start := new(big.Int).Mul(spacing, big.NewInt(int64(i)))
		start.Add(start, base)
		primes = append(primes, nextPrime(start))
	}
	return primes
}

// nextPrime returns the smallest probable prime ≥ start.
func nextPrime(start *big.Int) *big.Int {
	candidate := new(big.Int).Set(start)
	if candidate.Bit(0) == 0 {
		candidate.Add(candidate, big.NewInt(1))
	}
	two := big.NewInt(2)
	for !candidate.ProbablyPrime(32) {
		candidate.Add(candidate, two)
	}
	return candidate
}

// finalize derives the cached products and bases from N, G and Primes. It is
// also invoked after deserializing parameters from the wire.
func (p *Params) finalize() {
	p.prodPrimes = big.NewInt(1)
	for _, e := range p.Primes {
		p.prodPrimes.Mul(p.prodPrimes, e)
	}
	p.prodDiv = make([]*big.Int, p.Q)
	p.bases = make([]*big.Int, p.Q)
	for i, e := range p.Primes {
		p.prodDiv[i] = new(big.Int).Quo(p.prodPrimes, e)
		p.bases[i] = new(big.Int).Exp(p.G, p.prodDiv[i], p.N)
	}
}

// Rehydrate recomputes the cached fields after JSON decoding, validating the
// structural invariants first.
func (p *Params) Rehydrate() error {
	if p.N == nil || p.G == nil || p.Q < 1 || len(p.Primes) != p.Q {
		return errors.New("rsavc: malformed parameters")
	}
	for _, e := range p.Primes {
		if e == nil || e.BitLen() <= p.MessageBits {
			return errors.New("rsavc: prime not above message space")
		}
	}
	p.finalize()
	return nil
}

// MaxMessage returns 2^MessageBits, the exclusive message bound.
func (p *Params) MaxMessage() *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(p.MessageBits))
}

func (p *Params) checkMessage(m *big.Int) error {
	if m == nil || m.Sign() < 0 || m.BitLen() > p.MessageBits {
		return ErrMessageOutOfRange
	}
	return nil
}

// RandomHiding samples the hiding randomness r for a commitment.
func (p *Params) RandomHiding() (*big.Int, error) {
	return p.RandomHidingFrom(rand.Reader)
}

// RandomHidingFrom samples the hiding randomness r for a commitment from
// rnd. Production callers use RandomHiding (crypto/rand); deterministic
// readers support seeded, reproducible commitments.
func (p *Params) RandomHidingFrom(rnd io.Reader) (*big.Int, error) {
	bound := new(big.Int).Lsh(big.NewInt(1), hidingBits)
	r, err := rand.Int(rnd, bound)
	if err != nil {
		return nil, fmt.Errorf("rsavc: sampling hiding randomness: %w", err)
	}
	return r, nil
}

// Commit commits to the full vector ms (length Q) under hiding randomness r,
// returning V = g^{rP} · ∏ g_j^{m_j} mod N.
func (p *Params) Commit(ms []*big.Int, r *big.Int) (*big.Int, error) {
	if len(ms) != p.Q {
		return nil, ErrVectorLength
	}
	// Single aggregated exponent E = r·P + Σ m_j·(P/e_j): one modular
	// exponentiation whose exponent grows linearly with q.
	exp := new(big.Int).Mul(r, p.prodPrimes)
	term := new(big.Int)
	for j, m := range ms {
		if err := p.checkMessage(m); err != nil {
			return nil, fmt.Errorf("slot %d: %w", j, err)
		}
		term.Mul(m, p.prodDiv[j])
		exp.Add(exp, term)
	}
	return new(big.Int).Exp(p.G, exp, p.N), nil
}

// Open computes the constant-size witness for slot i of the committed vector.
func (p *Params) Open(ms []*big.Int, r *big.Int, i int) (Witness, error) {
	if len(ms) != p.Q {
		return Witness{}, ErrVectorLength
	}
	if i < 0 || i >= p.Q {
		return Witness{}, ErrPositionOutOfRange
	}
	// Exponent (rP + Σ_{j≠i} m_j·P/e_j) / e_i, which is integral because e_i
	// divides every remaining term.
	exp := new(big.Int).Mul(r, p.prodDiv[i])
	div := new(big.Int)
	term := new(big.Int)
	for j, m := range ms {
		if j == i {
			continue
		}
		if err := p.checkMessage(m); err != nil {
			return Witness{}, fmt.Errorf("slot %d: %w", j, err)
		}
		div.Quo(p.prodDiv[i], p.Primes[j])
		term.Mul(m, div)
		exp.Add(exp, term)
	}
	return Witness{Lambda: new(big.Int).Exp(p.G, exp, p.N)}, nil
}

// Verify checks that w opens slot i of commitment v to message m.
func (p *Params) Verify(v *big.Int, i int, m *big.Int, w Witness) bool {
	if v == nil || w.Lambda == nil || i < 0 || i >= p.Q {
		return false
	}
	if p.checkMessage(m) != nil {
		return false
	}
	if w.Lambda.Sign() <= 0 || w.Lambda.Cmp(p.N) >= 0 {
		return false
	}
	got := new(big.Int).Exp(w.Lambda, p.Primes[i], p.N)
	got.Mul(got, new(big.Int).Exp(p.bases[i], m, p.N))
	got.Mod(got, p.N)
	return got.Cmp(new(big.Int).Mod(v, p.N)) == 0
}

// Fabricate builds, in time independent of q, a fresh commitment V' that
// opens slot i to message m, without committing to any other slot. This is
// the equivocation path used when soft-opening a *soft* q-mercurial
// commitment: pick Λ' = g^s and set V' = Λ'^{e_i} · g_i^{m}.
func (p *Params) Fabricate(i int, m *big.Int) (*big.Int, Witness, error) {
	if i < 0 || i >= p.Q {
		return nil, Witness{}, ErrPositionOutOfRange
	}
	if err := p.checkMessage(m); err != nil {
		return nil, Witness{}, err
	}
	s, err := p.RandomHiding()
	if err != nil {
		return nil, Witness{}, err
	}
	lambda := new(big.Int).Exp(p.G, s, p.N)
	v := new(big.Int).Exp(lambda, p.Primes[i], p.N)
	v.Mul(v, new(big.Int).Exp(p.bases[i], m, p.N))
	v.Mod(v, p.N)
	return v, Witness{Lambda: lambda}, nil
}
