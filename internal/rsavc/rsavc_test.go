package rsavc

import (
	"crypto/sha256"
	"encoding/json"
	"math/big"
	"testing"
	"testing/quick"
)

// testModulusBits keeps unit tests fast; benchmarks use DefaultModulusBits.
const testModulusBits = 512

func testParams(t *testing.T, q, messageBits int) *Params {
	t.Helper()
	p, err := Setup(q, messageBits, testModulusBits)
	if err != nil {
		t.Fatalf("Setup(%d, %d): %v", q, messageBits, err)
	}
	return p
}

func randomVector(p *Params, seed string) []*big.Int {
	ms := make([]*big.Int, p.Q)
	for i := range ms {
		digest := sha256.Sum256([]byte(seed + string(rune(i))))
		m := new(big.Int).SetBytes(digest[:])
		m.Mod(m, p.MaxMessage())
		ms[i] = m
	}
	return ms
}

func TestCommitOpenVerifyAllSlots(t *testing.T) {
	p := testParams(t, 8, 64)
	ms := randomVector(p, "vec")
	r, err := p.RandomHiding()
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Commit(ms, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Q; i++ {
		w, err := p.Open(ms, r, i)
		if err != nil {
			t.Fatalf("opening slot %d: %v", i, err)
		}
		if !p.Verify(v, i, ms[i], w) {
			t.Fatalf("honest opening of slot %d must verify", i)
		}
	}
}

func TestVerifyRejectsWrongMessage(t *testing.T) {
	p := testParams(t, 4, 64)
	ms := randomVector(p, "vec")
	r, _ := p.RandomHiding()
	v, err := p.Commit(ms, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := p.Open(ms, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	wrong := new(big.Int).Add(ms[1], big.NewInt(1))
	if p.Verify(v, 1, wrong, w) {
		t.Fatal("witness must not verify a different message")
	}
}

func TestVerifyRejectsWrongSlot(t *testing.T) {
	p := testParams(t, 4, 64)
	ms := randomVector(p, "vec")
	r, _ := p.RandomHiding()
	v, err := p.Commit(ms, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := p.Open(ms, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Verify(v, 2, ms[1], w) {
		t.Fatal("witness for slot 1 must not verify at slot 2")
	}
}

func TestVerifyRejectsTamperedWitness(t *testing.T) {
	p := testParams(t, 4, 64)
	ms := randomVector(p, "vec")
	r, _ := p.RandomHiding()
	v, err := p.Commit(ms, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := p.Open(ms, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Lambda = new(big.Int).Add(w.Lambda, big.NewInt(1))
	if p.Verify(v, 0, ms[0], w) {
		t.Fatal("tampered witness must not verify")
	}
}

func TestVerifyRejectsMalformedInputs(t *testing.T) {
	p := testParams(t, 4, 64)
	ms := randomVector(p, "vec")
	r, _ := p.RandomHiding()
	v, _ := p.Commit(ms, r)
	w, _ := p.Open(ms, r, 0)
	if p.Verify(nil, 0, ms[0], w) {
		t.Fatal("nil commitment must be rejected")
	}
	if p.Verify(v, -1, ms[0], w) || p.Verify(v, p.Q, ms[0], w) {
		t.Fatal("out-of-range slot must be rejected")
	}
	if p.Verify(v, 0, ms[0], Witness{}) {
		t.Fatal("nil witness must be rejected")
	}
	if p.Verify(v, 0, new(big.Int).Neg(big.NewInt(1)), w) {
		t.Fatal("negative message must be rejected")
	}
	if p.Verify(v, 0, p.MaxMessage(), w) {
		t.Fatal("overlong message must be rejected")
	}
	if p.Verify(v, 0, ms[0], Witness{Lambda: big.NewInt(0)}) {
		t.Fatal("zero witness must be rejected")
	}
}

func TestCommitRejectsBadVectors(t *testing.T) {
	p := testParams(t, 4, 64)
	r, _ := p.RandomHiding()
	if _, err := p.Commit(make([]*big.Int, 3), r); err == nil {
		t.Fatal("short vector must be rejected")
	}
	ms := randomVector(p, "vec")
	ms[2] = p.MaxMessage()
	if _, err := p.Commit(ms, r); err == nil {
		t.Fatal("out-of-range slot value must be rejected")
	}
	if _, err := p.Open(ms, r, 5); err == nil {
		t.Fatal("out-of-range open position must be rejected")
	}
}

func TestFabricateOpensChosenSlot(t *testing.T) {
	p := testParams(t, 8, 64)
	m := big.NewInt(424242)
	v, w, err := p.Fabricate(3, m)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Verify(v, 3, m, w) {
		t.Fatal("fabricated commitment must verify at the chosen slot")
	}
}

func TestFabricateRejectsBadInputs(t *testing.T) {
	p := testParams(t, 4, 64)
	if _, _, err := p.Fabricate(9, big.NewInt(1)); err == nil {
		t.Fatal("out-of-range slot must be rejected")
	}
	if _, _, err := p.Fabricate(0, p.MaxMessage()); err == nil {
		t.Fatal("out-of-range message must be rejected")
	}
}

func TestPrimesDistinctAndAboveMessageSpace(t *testing.T) {
	p := testParams(t, 16, 64)
	seen := make(map[string]bool, len(p.Primes))
	for _, e := range p.Primes {
		if e.BitLen() <= p.MessageBits {
			t.Fatalf("prime %v not above message space", e)
		}
		if !e.ProbablyPrime(16) {
			t.Fatalf("%v is not prime", e)
		}
		key := e.String()
		if seen[key] {
			t.Fatalf("duplicate prime %v", e)
		}
		seen[key] = true
	}
}

func TestDerivePrimesDeterministic(t *testing.T) {
	a := derivePrimes(8, 64)
	b := derivePrimes(8, 64)
	for i := range a {
		if a[i].Cmp(b[i]) != 0 {
			t.Fatal("prime derivation must be deterministic")
		}
	}
}

func TestParamsJSONRoundTrip(t *testing.T) {
	p := testParams(t, 4, 64)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Params
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Rehydrate(); err != nil {
		t.Fatal(err)
	}
	ms := randomVector(p, "wire")
	r, _ := p.RandomHiding()
	v, err := p.Commit(ms, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := p.Open(ms, r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Verify(v, 2, ms[2], w) {
		t.Fatal("rehydrated params must verify openings from the original")
	}
}

func TestRehydrateRejectsMalformed(t *testing.T) {
	var p Params
	if err := p.Rehydrate(); err == nil {
		t.Fatal("empty params must be rejected")
	}
	bad := Params{N: big.NewInt(35), G: big.NewInt(4), Q: 1, MessageBits: 64,
		Primes: []*big.Int{big.NewInt(7)}}
	if err := bad.Rehydrate(); err == nil {
		t.Fatal("prime below message space must be rejected")
	}
}

func TestSetupRejectsBadArguments(t *testing.T) {
	if _, err := Setup(0, 64, testModulusBits); err == nil {
		t.Fatal("q=0 must be rejected")
	}
	if _, err := Setup(4, 2, testModulusBits); err == nil {
		t.Fatal("tiny message space must be rejected")
	}
}

func TestCommitmentHiding(t *testing.T) {
	p := testParams(t, 4, 64)
	ms := randomVector(p, "same")
	r1, _ := p.RandomHiding()
	r2, _ := p.RandomHiding()
	v1, _ := p.Commit(ms, r1)
	v2, _ := p.Commit(ms, r2)
	if v1.Cmp(v2) == 0 {
		t.Fatal("fresh hiding randomness must change the commitment")
	}
}

func TestPropertyCommitOpenVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in short mode")
	}
	p := testParams(t, 4, 32)
	prop := func(a, b, c, d uint32, slot uint8) bool {
		ms := []*big.Int{
			new(big.Int).SetUint64(uint64(a)),
			new(big.Int).SetUint64(uint64(b)),
			new(big.Int).SetUint64(uint64(c)),
			new(big.Int).SetUint64(uint64(d)),
		}
		i := int(slot) % p.Q
		r, err := p.RandomHiding()
		if err != nil {
			return false
		}
		v, err := p.Commit(ms, r)
		if err != nil {
			return false
		}
		w, err := p.Open(ms, r, i)
		if err != nil {
			return false
		}
		return p.Verify(v, i, ms[i], w)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
