package wire

import (
	"bytes"
	"context"
	"testing"

	"desword/internal/core"
	"desword/internal/poc"
	"desword/internal/zkedb"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, TypeQuery, QueryRequest{TaskID: "t", Product: "id1", Quality: 1}); err != nil {
		t.Fatal(err)
	}
	env, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != TypeQuery {
		t.Fatalf("type = %q", env.Type)
	}
	var req QueryRequest
	if err := env.Decode(&req); err != nil {
		t.Fatal(err)
	}
	if req.TaskID != "t" || req.Product != "id1" || req.Quality != 1 {
		t.Fatalf("decoded %+v", req)
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := WriteMessage(&buf, TypeAck, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		env, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if env.Type != TypeAck {
			t.Fatalf("frame %d type = %q", i, env.Type)
		}
	}
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("reading past the last frame must fail")
	}
}

func TestReadRejectsOversizedFrame(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadMessage(buf); err == nil {
		t.Fatal("oversized frame must be rejected before allocation")
	}
}

func TestReadRejectsTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, TypeAck, nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadMessage(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated frame must be rejected")
	}
}

func TestReadRejectsMissingType(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft an envelope without a type.
	frame := []byte(`{"payload":{}}`)
	buf.Write([]byte{0, 0, 0, byte(len(frame))})
	buf.Write(frame)
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("envelope without a type must be rejected")
	}
}

func TestDecodeEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, TypeAck, nil); err != nil {
		t.Fatal(err)
	}
	env, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var v struct{}
	if err := env.Decode(&v); err == nil {
		t.Fatal("decoding an empty payload must fail")
	}
}

func TestProofRoundTrip(t *testing.T) {
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	credential, dpoc, err := poc.Agg(ps, "v1", []poc.Trace{{Product: "id1", Data: []byte("d")}}, poc.AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, product := range []poc.ProductID{"id1", "missing"} {
		proof, err := dpoc.Prove(context.Background(), product)
		if err != nil {
			t.Fatal(err)
		}
		encoded, err := EncodeProof(proof)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeProof(encoded)
		if err != nil {
			t.Fatal(err)
		}
		if decoded.Kind != proof.Kind {
			t.Fatal("kind must survive the round trip")
		}
		if _, err := poc.Verify(context.Background(), ps, credential, product, decoded); err != nil {
			t.Fatalf("round-tripped proof must verify: %v", err)
		}
	}
	if p, err := EncodeProof(nil); err != nil || p != nil {
		t.Fatal("nil proof must encode to nil")
	}
	if p, err := DecodeProof(nil); err != nil || p != nil {
		t.Fatal("nil wire proof must decode to nil")
	}
	if _, err := DecodeProof(&Proof{Kind: 1, ZK: "!!!not-base64"}); err == nil {
		t.Fatal("bad base64 must be rejected")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	_, dpoc, err := poc.Agg(ps, "v1", []poc.Trace{{Product: "id1", Data: []byte("d")}}, poc.AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dpoc.Prove(context.Background(), "id1")
	if err != nil {
		t.Fatal(err)
	}
	resp := &core.Response{Claim: core.ClaimProcessed, Proof: proof, Next: "v2"}
	encoded, err := EncodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeResponse(encoded)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Claim != resp.Claim || decoded.Next != resp.Next || decoded.Proof.Kind != proof.Kind {
		t.Fatalf("decoded %+v", decoded)
	}
}

func TestPathResultRoundTrip(t *testing.T) {
	r := &core.Result{
		Product: "id1",
		Quality: core.Good,
		TaskID:  "t",
		Path:    []poc.ParticipantID{"a", "b"},
		Traces: map[poc.ParticipantID]poc.Trace{
			"a": {Product: "id1", Data: []byte("x")},
		},
		Violations: []core.Violation{{Participant: "b", Type: core.ViolationWrongNextHop, Detail: "d"}},
		Complete:   true,
	}
	back := DecodePathResult(EncodePathResult(r))
	if back.Product != r.Product || back.Quality != r.Quality || !back.Complete {
		t.Fatalf("decoded %+v", back)
	}
	if len(back.Path) != 2 || len(back.Violations) != 1 || string(back.Traces["a"].Data) != "x" {
		t.Fatalf("decoded %+v", back)
	}
}

func TestRequestIDRoundTrip(t *testing.T) {
	id := NewRequestID()
	if !ValidRequestID(id) {
		t.Fatalf("NewRequestID produced invalid id %q", id)
	}
	env, err := NewEnvelope(TypeQuery, QueryRequest{TaskID: "t", Product: "p", Quality: 1})
	if err != nil {
		t.Fatal(err)
	}
	env.ReqID = id
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, env); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.RequestID() != id {
		t.Fatalf("req_id %q round-tripped as %q", id, back.RequestID())
	}
}

func TestRequestIDValidation(t *testing.T) {
	for _, bad := range []string{
		"", "short", "0123456789abcde", "0123456789abcdef0", // wrong length
		"0123456789ABCDEF",    // uppercase
		"0123456789abcdeg",    // non-hex
		"../../../etc/passwd", // injection attempt
	} {
		if ValidRequestID(bad) {
			t.Errorf("ValidRequestID(%q) = true, want false", bad)
		}
		env := &Envelope{Type: TypeQuery, ReqID: bad}
		if got := env.RequestID(); got != "" {
			t.Errorf("RequestID() leaked invalid id %q as %q", bad, got)
		}
	}
	if !ValidRequestID("0123456789abcdef") {
		t.Error("well-formed request id rejected")
	}
}
