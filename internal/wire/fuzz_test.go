package wire

import (
	"bytes"
	"testing"
)

// FuzzReadMessage hammers the TCP frame parser with arbitrary byte streams:
// it must reject garbage with an error, never panic, and never allocate
// beyond the frame cap.
func FuzzReadMessage(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteMessage(&seed, TypeQuery, QueryRequest{TaskID: "t", Product: "p", Quality: 1}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		if env.Type == "" {
			t.Fatal("accepted envelope must carry a type")
		}
		// Accepted envelopes must re-frame.
		var out bytes.Buffer
		if err := WriteMessage(&out, env.Type, env.Payload); err != nil {
			t.Fatalf("re-framing accepted envelope: %v", err)
		}
	})
}

// FuzzDecodeProof hammers the base64+binary proof layer used inside query
// responses.
func FuzzDecodeProof(f *testing.F) {
	f.Add(1, "AQ==")
	f.Add(2, "")
	f.Add(0, "####")
	f.Fuzz(func(t *testing.T, kind int, zk string) {
		p, err := DecodeProof(&Proof{Kind: kind, ZK: zk})
		if err != nil {
			return
		}
		if p == nil {
			t.Fatal("nil proof with nil error")
		}
	})
}
