package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"desword/internal/trace"
)

// FuzzReadMessage hammers the TCP frame parser with arbitrary byte streams:
// it must reject garbage with an error, never panic, and never allocate
// beyond the frame cap.
func FuzzReadMessage(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteMessage(&seed, TypeQuery, QueryRequest{TaskID: "t", Product: "p", Quality: 1}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		if env.Type == "" {
			t.Fatal("accepted envelope must carry a type")
		}
		// Accepted envelopes must re-frame.
		var out bytes.Buffer
		if err := WriteMessage(&out, env.Type, env.Payload); err != nil {
			t.Fatalf("re-framing accepted envelope: %v", err)
		}
	})
}

// FuzzEnvelopeHeaderCompat pins old↔new envelope compatibility: an envelope
// whose JSON carries unknown or extra header fields (a newer peer), or omits
// the optional trace/request-id headers entirely (an older peer), must decode
// to the same type/payload either way, and whatever trace context or request
// id survives validation must round-trip.
func FuzzEnvelopeHeaderCompat(f *testing.F) {
	f.Add("query", `{"a":1}`, "00000000000000000000000000000000", "0123456789abcdef", "fedcba9876543210", "future_field", `"v2"`)
	f.Add("query_path", `null`, "", "", "", "spans", `[{"bogus":true}]`)
	f.Add("params", `{}`, "not-a-trace-id", "xyz", "not-a-req-id", "trace_flags", `7`)
	f.Add("error", `{"message":"x"}`, "ABCDEF", "", "0123456789abcdef", "", ``)

	f.Fuzz(func(t *testing.T, msgType, payload, traceID, spanID, reqID, extraKey, extraVal string) {
		if !json.Valid([]byte(payload)) {
			return
		}
		// Hand-assemble envelope JSON the way a peer with a newer schema
		// would: the known fields plus one arbitrary extra header.
		fields := []string{fmt.Sprintf(`"type":%q`, msgType)}
		if traceID != "" {
			fields = append(fields, fmt.Sprintf(`"trace_id":%q`, traceID))
		}
		if spanID != "" {
			fields = append(fields, fmt.Sprintf(`"span_id":%q`, spanID))
		}
		if reqID != "" {
			fields = append(fields, fmt.Sprintf(`"req_id":%q`, reqID))
		}
		fields = append(fields, `"payload":`+payload)
		if extraKey != "" && extraKey != "type" && extraKey != "trace_id" &&
			extraKey != "span_id" && extraKey != "payload" && extraKey != "spans" &&
			extraKey != "req_id" &&
			json.Valid([]byte(extraVal)) {
			keyJSON, err := json.Marshal(extraKey)
			if err != nil {
				return
			}
			fields = append(fields, string(keyJSON)+":"+extraVal)
		}
		raw := "{" + join(fields) + "}"
		if !json.Valid([]byte(raw)) {
			return
		}

		var frame bytes.Buffer
		if len(raw) > MaxMessageSize {
			return
		}
		frame.WriteByte(byte(len(raw) >> 24))
		frame.WriteByte(byte(len(raw) >> 16))
		frame.WriteByte(byte(len(raw) >> 8))
		frame.WriteByte(byte(len(raw)))
		frame.WriteString(raw)

		env, err := ReadMessage(&frame)
		if msgType == "" {
			if err == nil {
				t.Fatal("envelope without a type was accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("well-formed envelope with extra headers rejected: %v\n%s", err, raw)
		}
		if env.Type != msgType {
			t.Fatalf("type %q decoded as %q", msgType, env.Type)
		}

		// Trace context survives only when both halves validate — anything
		// else reads as "no context", exactly what an old peer sees.
		gotTrace, gotSpan := env.TraceContext()
		if trace.ValidTraceID(traceID) && trace.ValidSpanID(spanID) {
			if gotTrace != traceID || gotSpan != spanID {
				t.Fatalf("valid trace context %s/%s decoded as %s/%s", traceID, spanID, gotTrace, gotSpan)
			}
		} else if gotTrace != "" || gotSpan != "" {
			t.Fatalf("invalid trace context %q/%q leaked through as %q/%q", traceID, spanID, gotTrace, gotSpan)
		}

		// Same deal for the request id: only well-formed ids survive.
		if got := env.RequestID(); ValidRequestID(reqID) {
			if got != reqID {
				t.Fatalf("valid req_id %q decoded as %q", reqID, got)
			}
		} else if got != "" {
			t.Fatalf("invalid req_id %q leaked through as %q", reqID, got)
		}

		// An old peer re-framing this envelope (dropping fields it does not
		// know) must produce something the new code still reads.
		var old bytes.Buffer
		if err := WriteMessage(&old, env.Type, env.Payload); err != nil {
			t.Fatalf("old-style re-framing: %v", err)
		}
		back, err := ReadMessage(&old)
		if err != nil {
			t.Fatalf("re-reading old-style frame: %v", err)
		}
		if back.Type != env.Type {
			t.Fatalf("old-style round trip changed type %q → %q", env.Type, back.Type)
		}
		if bt, bs := back.TraceContext(); bt != "" || bs != "" {
			t.Fatal("old-style frame must carry no trace context")
		}
		if back.RequestID() != "" {
			t.Fatal("old-style frame must carry no request id")
		}
	})
}

func join(fields []string) string {
	out := ""
	for i, f := range fields {
		if i > 0 {
			out += ","
		}
		out += f
	}
	return out
}

// FuzzDecodeProof hammers the base64+binary proof layer used inside query
// responses.
func FuzzDecodeProof(f *testing.F) {
	f.Add(1, "AQ==")
	f.Add(2, "")
	f.Add(0, "####")
	f.Fuzz(func(t *testing.T, kind int, zk string) {
		p, err := DecodeProof(&Proof{Kind: kind, ZK: zk})
		if err != nil {
			return
		}
		if p == nil {
			t.Fatal("nil proof with nil error")
		}
	})
}
