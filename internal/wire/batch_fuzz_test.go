package wire

import (
	"encoding/json"
	"fmt"
	"testing"
)

// FuzzBatchRequestCompat pins the batch envelope's schema-versioned compat
// contract, the req_id fuzzing discipline applied to query_path_batch: a
// request JSON carrying unknown extra fields (a newer peer) must decode to
// the same schema/products/quality; the schema gate must be decidable from
// whatever decoded; and a decoded request must re-encode to JSON a peer can
// read back identically.
func FuzzBatchRequestCompat(f *testing.F) {
	f.Add(1, `["a","b","a"]`, 1, "hint", `"latency"`)
	f.Add(0, `[]`, 2, "", ``)
	f.Add(2, `["x"]`, 1, "deadline_ms", `2500`)
	f.Add(-3, `null`, 0, "schema", `9`)

	f.Fuzz(func(t *testing.T, schema int, productsJSON string, quality int, extraKey, extraVal string) {
		var products []string
		if err := json.Unmarshal([]byte(productsJSON), &products); err != nil {
			return
		}
		fields := []string{
			fmt.Sprintf(`"schema":%d`, schema),
			`"products":` + productsJSON,
			fmt.Sprintf(`"quality":%d`, quality),
		}
		if extraKey != "" && extraKey != "schema" && extraKey != "products" &&
			extraKey != "quality" && json.Valid([]byte(extraVal)) {
			keyJSON, err := json.Marshal(extraKey)
			if err != nil {
				return
			}
			fields = append(fields, string(keyJSON)+":"+extraVal)
		}
		raw := "{" + join(fields) + "}"
		if !json.Valid([]byte(raw)) {
			return
		}

		var req QueryPathBatchRequest
		if err := json.Unmarshal([]byte(raw), &req); err != nil {
			t.Fatalf("well-formed batch request rejected: %v\n%s", err, raw)
		}
		if req.Schema != schema || req.Quality != quality {
			t.Fatalf("schema/quality %d/%d decoded as %d/%d", schema, quality, req.Schema, req.Quality)
		}
		if len(req.Products) != len(products) {
			t.Fatalf("%d products decoded as %d", len(products), len(req.Products))
		}
		for i, p := range products {
			if string(req.Products[i]) != p {
				t.Fatalf("product %d: %q decoded as %q", i, p, req.Products[i])
			}
		}
		// The server's only version gate: a future schema must be detectable
		// from the decoded struct alone.
		_ = req.Schema > BatchSchemaVersion

		// Round trip: what this side re-encodes, an identical peer reads back
		// field for field (the extra field is dropped, as an older peer
		// would).
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encoding: %v", err)
		}
		var back QueryPathBatchRequest
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-reading re-encoded request: %v", err)
		}
		if back.Schema != req.Schema || back.Quality != req.Quality || len(back.Products) != len(req.Products) {
			t.Fatalf("round trip changed the request: %+v → %+v", req, back)
		}
	})
}

// FuzzBatchResultCompat hammers the batch result decoder with arbitrary item
// shapes: whatever decodes must convert to the core form without panicking,
// preserving the per-item partial-failure triage (result xor error, shed
// flag).
func FuzzBatchResultCompat(f *testing.F) {
	f.Add(1, "t1", `[{"product":"a","result":{"product":"a","quality":1,"complete":true}}]`)
	f.Add(1, "", `[{"product":"b","error":"boom","shed":true}]`)
	f.Add(7, "x", `[{"product":"c"},{"unknown_field":3}]`)
	f.Add(0, "", `[]`)

	f.Fuzz(func(t *testing.T, schema int, traceID, itemsJSON string) {
		raw := fmt.Sprintf(`{"schema":%d,"trace_id":%q,"items":%s}`, schema, traceID, itemsJSON)
		var wireResult BatchResult
		if err := json.Unmarshal([]byte(raw), &wireResult); err != nil {
			return
		}
		decoded := DecodeBatchResult(&wireResult)
		if decoded.TraceID != traceID {
			t.Fatalf("trace id %q decoded as %q", traceID, decoded.TraceID)
		}
		if len(decoded.Items) != len(wireResult.Items) {
			t.Fatalf("%d wire items decoded as %d", len(wireResult.Items), len(decoded.Items))
		}
		for i, item := range decoded.Items {
			w := wireResult.Items[i]
			if item.Shed != w.Shed {
				t.Fatalf("item %d shed flag lost", i)
			}
			if w.Error != "" && item.Err == nil {
				t.Fatalf("item %d error %q dropped", i, w.Error)
			}
			if w.Error == "" && w.Result != nil && item.Result == nil {
				t.Fatalf("item %d result dropped", i)
			}
		}
	})
}
