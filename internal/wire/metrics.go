package wire

import "desword/internal/obs"

// frameCounters is the (frames, bytes) counter pair of one direction and
// message type.
type frameCounters struct {
	frames *obs.Counter
	bytes  *obs.Counter
}

// knownTypes enumerates every message type of the protocol, so the hot-path
// counter lookup is a read-only map access with no lock and no allocation.
var knownTypes = []string{
	TypeQuery, TypeDemandOwnership, TypeResponse, TypeGetParams, TypeParams,
	TypeRegisterList, TypeQueryPath, TypePathResult, TypeScores,
	TypeScoreTable, TypeAuditLog, TypeAuditChain, TypeTelemetry,
	TypeTelemetrySnapshot, TypeAck, TypeError,
}

var (
	readCounters  = buildCounters("read")
	writeCounters = buildCounters("write")
)

func buildCounters(dir string) map[string]frameCounters {
	m := make(map[string]frameCounters, len(knownTypes))
	for _, t := range knownTypes {
		m[t] = newFrameCounters(dir, t)
	}
	return m
}

func newFrameCounters(dir, msgType string) frameCounters {
	return frameCounters{
		frames: obs.Default.Counter("desword_wire_frames_total",
			"Framed messages by direction and message type.",
			"dir", dir, "type", msgType),
		bytes: obs.Default.Counter("desword_wire_bytes_total",
			"Framed bytes on the wire (including the 4-byte length prefix) by direction and message type.",
			"dir", dir, "type", msgType),
	}
}

// countFrame records one framed message of n payload-frame bytes (the 4-byte
// length prefix is added here). Unknown message types — possible only for
// peers speaking a newer protocol — fall back to a registry lookup.
func countFrame(dir map[string]frameCounters, dirName, msgType string, frameLen int) {
	fc, ok := dir[msgType]
	if !ok {
		fc = newFrameCounters(dirName, msgType)
	}
	fc.frames.Inc()
	fc.bytes.Add(uint64(frameLen) + 4)
}
