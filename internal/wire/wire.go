// Package wire defines the message framing and payload types of DE-Sword's
// multi-party deployment: length-prefixed JSON envelopes over TCP, carrying
// query interactions between the proxy and participants, POC-list
// submissions, and public-parameter distribution. ZK-EDB proofs travel in
// their compact binary encoding inside the JSON envelope.
package wire

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"

	"desword/internal/core"
	"desword/internal/events"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/trace"
	"desword/internal/zkedb"
)

// MaxMessageSize bounds a single frame; anything larger is rejected before
// allocation, so a malicious peer cannot force huge buffers.
const MaxMessageSize = 16 << 20

// Message types exchanged between nodes.
const (
	// TypeQuery is a proxy→participant query interaction request.
	TypeQuery = "query"
	// TypeDemandOwnership is the proxy's follow-up ownership demand.
	TypeDemandOwnership = "demand_ownership"
	// TypeResponse is a participant's answer to either of the above.
	TypeResponse = "response"
	// TypeGetParams asks the proxy for the public parameter ps.
	TypeGetParams = "get_params"
	// TypeParams carries the public parameter ps.
	TypeParams = "params"
	// TypeRegisterList submits a POC list to the proxy.
	TypeRegisterList = "register_list"
	// TypeQueryPath asks the proxy to run a full path query (application →
	// proxy).
	TypeQueryPath = "query_path"
	// TypePathResult carries the outcome of a path query.
	TypePathResult = "path_result"
	// TypeQueryPathBatch asks the proxy to run one path query per product id
	// with partial-failure semantics (application → proxy).
	TypeQueryPathBatch = "query_path_batch"
	// TypeBatchResult carries the per-id outcomes of a batch path query.
	TypeBatchResult = "batch_result"
	// TypeScores asks the proxy for the public reputation scores.
	TypeScores = "scores"
	// TypeScoreTable carries the public reputation scores.
	TypeScoreTable = "score_table"
	// TypeAuditLog asks the proxy for the tamper-evident score history.
	TypeAuditLog = "audit_log"
	// TypeAuditChain carries the chained score history and its head.
	TypeAuditChain = "audit_chain"
	// TypeTelemetry asks a peer for a telemetry snapshot of its metrics
	// registry. A plain idempotent read: the payload is empty and answering
	// it changes no state, so clients may retry it freely.
	TypeTelemetry = "telemetry"
	// TypeTelemetrySnapshot carries a telemetry.Snapshot back.
	TypeTelemetrySnapshot = "telemetry_snapshot"
	// TypeAck acknowledges a request with no payload.
	TypeAck = "ack"
	// TypeError reports a failure.
	TypeError = "error"
)

// Errors reported by this package.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxMessageSize")
	ErrBadEnvelope   = errors.New("wire: malformed envelope")
)

// Envelope is the framed unit: a type tag plus a JSON payload. The trace
// fields are optional headers: requests carry the caller's trace context
// (TraceID/SpanID) so the peer continues the same distributed trace, and
// responses carry the server's completed span fragment (Spans) so the caller
// can graft the remote timeline into its own trace. ReqID is an optional
// request-correlation header: a client stamps one id per logical request
// (kept stable across retries of that request), and a server echoes it on
// the response so a client multiplexing requests over a pooled, reused
// connection can detect a desynchronized peer. Old peers ignore the fields;
// envelopes without them decode unchanged.
type Envelope struct {
	Type    string           `json:"type"`
	ReqID   string           `json:"req_id,omitempty"`
	TraceID string           `json:"trace_id,omitempty"`
	SpanID  string           `json:"span_id,omitempty"`
	Spans   []trace.SpanData `json:"spans,omitempty"`
	Payload json.RawMessage  `json:"payload,omitempty"`
}

// TraceContext returns the envelope's trace headers when both are
// well-formed ids, and empty strings otherwise — a peer cannot inject
// arbitrary strings into logs or the trace explorer.
func (e *Envelope) TraceContext() (traceID, spanID string) {
	if trace.ValidTraceID(e.TraceID) && trace.ValidSpanID(e.SpanID) {
		return e.TraceID, e.SpanID
	}
	return "", ""
}

// RequestID returns the envelope's request-correlation header when it is a
// well-formed id, and "" otherwise. Servers echo only validated ids, so a
// peer cannot reflect arbitrary strings through a response.
func (e *Envelope) RequestID() string {
	if ValidRequestID(e.ReqID) {
		return e.ReqID
	}
	return ""
}

// NewRequestID returns a fresh 8-byte request-correlation id in hex.
// Request ids only need to be unique among the requests a single client
// connection could confuse, so a process-local PRNG is plenty.
func NewRequestID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// ValidRequestID reports whether s looks like a request id this package
// generated: 16 lowercase hex characters.
func ValidRequestID(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// NewEnvelope builds an envelope around an encoded payload.
func NewEnvelope(msgType string, payload any) (*Envelope, error) {
	env := &Envelope{Type: msgType}
	if payload != nil {
		data, err := json.Marshal(payload)
		if err != nil {
			return nil, fmt.Errorf("wire: encoding %s payload: %w", msgType, err)
		}
		env.Payload = data
	}
	return env, nil
}

// WriteMessage frames and writes one message without trace context.
func WriteMessage(w io.Writer, msgType string, payload any) error {
	env, err := NewEnvelope(msgType, payload)
	if err != nil {
		return err
	}
	return WriteEnvelope(w, env)
}

// WriteEnvelope frames and writes one fully-formed envelope, trace headers
// included.
func WriteEnvelope(w io.Writer, env *Envelope) error {
	frame, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("wire: encoding envelope: %w", err)
	}
	if len(frame) > MaxMessageSize {
		return ErrFrameTooLarge
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("wire: writing frame length: %w", err)
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("wire: writing frame: %w", err)
	}
	countFrame(writeCounters, "write", env.Type, len(frame))
	return nil
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("wire: reading frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxMessageSize {
		return nil, ErrFrameTooLarge
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, fmt.Errorf("wire: reading frame: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(frame, &env); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadEnvelope, err)
	}
	if env.Type == "" {
		return nil, fmt.Errorf("%w: missing type", ErrBadEnvelope)
	}
	countFrame(readCounters, "read", env.Type, int(n))
	return &env, nil
}

// Decode unmarshals the envelope payload into v.
func (e *Envelope) Decode(v any) error {
	if len(e.Payload) == 0 {
		return fmt.Errorf("%w: empty %s payload", ErrBadEnvelope, e.Type)
	}
	if err := json.Unmarshal(e.Payload, v); err != nil {
		return fmt.Errorf("wire: decoding %s payload: %w", e.Type, err)
	}
	return nil
}

// QueryRequest is the proxy's (query request, id, POC_v) message; the POC is
// implied by the task id, which both sides resolve against the registered
// list.
type QueryRequest struct {
	TaskID  string        `json:"task_id"`
	Product poc.ProductID `json:"product"`
	Quality int           `json:"quality"`
}

// DemandRequest is the proxy's ownership demand.
type DemandRequest struct {
	TaskID  string        `json:"task_id"`
	Product poc.ProductID `json:"product"`
}

// Proof is the wire form of a poc.Proof: the kind tag plus the compact
// binary ZK-EDB proof, base64-encoded for JSON transport.
type Proof struct {
	Kind int    `json:"kind"`
	ZK   string `json:"zk"`
}

// EncodeProof converts a poc.Proof to its wire form.
func EncodeProof(p *poc.Proof) (*Proof, error) {
	if p == nil {
		return nil, nil
	}
	data, err := p.ZK.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("wire: encoding proof: %w", err)
	}
	return &Proof{Kind: int(p.Kind), ZK: base64.StdEncoding.EncodeToString(data)}, nil
}

// DecodeProof converts a wire proof back to a poc.Proof.
func DecodeProof(p *Proof) (*poc.Proof, error) {
	if p == nil {
		return nil, nil
	}
	data, err := base64.StdEncoding.DecodeString(p.ZK)
	if err != nil {
		return nil, fmt.Errorf("wire: decoding proof base64: %w", err)
	}
	var zk zkedb.Proof
	if err := zk.UnmarshalBinary(data); err != nil {
		return nil, fmt.Errorf("wire: decoding proof: %w", err)
	}
	return &poc.Proof{Kind: poc.ProofKind(p.Kind), ZK: &zk}, nil
}

// QueryResponse is a participant's wire answer to a query or demand.
type QueryResponse struct {
	Claim int               `json:"claim"`
	Proof *Proof            `json:"proof,omitempty"`
	Next  poc.ParticipantID `json:"next,omitempty"`
}

// EncodeResponse converts a core.Response to its wire form.
func EncodeResponse(r *core.Response) (*QueryResponse, error) {
	proof, err := EncodeProof(r.Proof)
	if err != nil {
		return nil, err
	}
	return &QueryResponse{Claim: int(r.Claim), Proof: proof, Next: r.Next}, nil
}

// DecodeResponse converts a wire response back to a core.Response.
func DecodeResponse(r *QueryResponse) (*core.Response, error) {
	proof, err := DecodeProof(r.Proof)
	if err != nil {
		return nil, err
	}
	return &core.Response{Claim: core.Claim(r.Claim), Proof: proof, Next: r.Next}, nil
}

// RegisterListRequest submits a POC list for a finished distribution task.
type RegisterListRequest struct {
	TaskID string    `json:"task_id"`
	List   *poc.List `json:"list"`
}

// QueryPathRequest asks the proxy to run a full product path query.
type QueryPathRequest struct {
	Product poc.ProductID `json:"product"`
	Quality int           `json:"quality"`
}

// BatchSchemaVersion stamps batch requests and results. A server rejects a
// request whose schema is newer than it understands — loudly, instead of
// silently ignoring fields it never heard of. Adding omitempty fields is
// compatible and needs no bump.
const BatchSchemaVersion = 1

// QueryPathBatchRequest asks the proxy to run one path query per product id
// with partial-failure semantics: each id succeeds, fails, or is shed on its
// own. Quality applies to the whole batch.
type QueryPathBatchRequest struct {
	Schema   int             `json:"schema"`
	Products []poc.ProductID `json:"products"`
	Quality  int             `json:"quality"`
}

// BatchItemResult is the wire outcome for one product id of a batch: Result
// on success, Error otherwise, with Shed marking admission-control rejection
// (overload, not failure).
type BatchItemResult struct {
	Product poc.ProductID `json:"product"`
	Result  *PathResult   `json:"result,omitempty"`
	Error   string        `json:"error,omitempty"`
	Shed    bool          `json:"shed,omitempty"`
}

// BatchResult carries a whole batch back: per-id items in request order
// under the batch's trace id.
type BatchResult struct {
	Schema  int               `json:"schema"`
	TraceID string            `json:"trace_id,omitempty"`
	Items   []BatchItemResult `json:"items"`
}

// EncodeBatchResult converts a core.BatchResult to its wire form.
func EncodeBatchResult(r *core.BatchResult) *BatchResult {
	out := &BatchResult{Schema: BatchSchemaVersion, TraceID: r.TraceID,
		Items: make([]BatchItemResult, len(r.Items))}
	for i, item := range r.Items {
		w := BatchItemResult{Product: item.Product, Shed: item.Shed}
		switch {
		case item.Err != nil:
			w.Error = item.Err.Error()
		case item.Result != nil:
			w.Result = EncodePathResult(item.Result)
		}
		out.Items[i] = w
	}
	return out
}

// DecodeBatchResult converts a wire batch result back to its core form.
// Per-item errors come back as remote error values (string messages; shed
// items additionally carry Shed=true).
func DecodeBatchResult(r *BatchResult) *core.BatchResult {
	out := &core.BatchResult{TraceID: r.TraceID,
		Items: make([]core.BatchItem, len(r.Items))}
	for i, item := range r.Items {
		c := core.BatchItem{Product: item.Product, Shed: item.Shed}
		switch {
		case item.Error != "":
			c.Err = errors.New(item.Error)
		case item.Result != nil:
			c.Result = DecodePathResult(item.Result)
		}
		out.Items[i] = c
	}
	return out
}

// PathResult is the wire form of a core.Result. Event is the canonical wide
// event the proxy assembled for the query, so remote queriers
// (desword-query -json) see the same flight-recorder record the proxy kept.
type PathResult struct {
	Product    poc.ProductID                   `json:"product"`
	Quality    int                             `json:"quality"`
	TaskID     string                          `json:"task_id"`
	Path       []poc.ParticipantID             `json:"path"`
	Traces     map[poc.ParticipantID]poc.Trace `json:"traces"`
	Violations []core.Violation                `json:"violations"`
	Complete   bool                            `json:"complete"`
	TraceID    string                          `json:"trace_id,omitempty"`
	Event      *events.Event                   `json:"event,omitempty"`
}

// EncodePathResult converts a core.Result to its wire form.
func EncodePathResult(r *core.Result) *PathResult {
	return &PathResult{
		Product:    r.Product,
		Quality:    int(r.Quality),
		TaskID:     r.TaskID,
		Path:       r.Path,
		Traces:     r.Traces,
		Violations: r.Violations,
		Complete:   r.Complete,
		TraceID:    r.TraceID,
		Event:      r.Event,
	}
}

// DecodePathResult converts a wire path result back to a core.Result.
func DecodePathResult(r *PathResult) *core.Result {
	return &core.Result{
		Product:    r.Product,
		Quality:    core.Quality(r.Quality),
		TaskID:     r.TaskID,
		Path:       r.Path,
		Traces:     r.Traces,
		Violations: r.Violations,
		Complete:   r.Complete,
		TraceID:    r.TraceID,
		Event:      r.Event,
	}
}

// ErrorResponse carries a remote failure.
type ErrorResponse struct {
	Message string `json:"message"`
}

// ScoreTable carries the public reputation scores.
type ScoreTable struct {
	Scores map[poc.ParticipantID]float64 `json:"scores"`
}

// AuditChain carries the proxy's chained score history: customers verify it
// with reputation.VerifyAuditChain against the pinned head.
//
// A sharded proxy publishes one independent chain per shard ledger in
// Shards, each verifying on its own. The top-level fields then pin the
// total: Entries is empty, Head stays zero, and Count carries the summed
// entry count — so a pre-shard client that ignores Shards fails its
// count-vs-entries check loudly ("0 entries, head pins N") instead of
// silently verifying an empty history. With one shard (the default) the
// legacy single-chain encoding is emitted unchanged and Shards is absent.
type AuditChain struct {
	Entries []reputation.AuditEntry `json:"entries"`
	Head    []byte                  `json:"head"`
	Count   uint64                  `json:"count"`
	Shards  []AuditChain            `json:"shards,omitempty"`
}
