package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ProfileSink captures CPU and heap profiles when an SLO transitions into
// breach, into a bounded on-disk ring: the -profile-dir directory keeps the
// N most recent capture pairs and prunes the rest. Capture runs in its own
// goroutine with an in-flight guard, so a flapping objective cannot stack
// profile sessions, and a capture costs at most one CPUDuration of profiling
// overhead per breach.
type ProfileSink struct {
	// Dir is the directory profiles are written into (created on demand).
	Dir string
	// Max is the number of capture pairs kept; older captures are pruned.
	Max int
	// CPUDuration is how long each CPU profile runs. Zero means 1s.
	CPUDuration time.Duration

	inFlight atomic.Bool
	wg       sync.WaitGroup // joins the async capture goroutine (Wait)
	mu       sync.Mutex     // serialises prune against concurrent captures
	seq      atomic.Uint64

	// now and onDone are test seams.
	now    func() time.Time
	onDone func(err error)
}

// NewProfileSink builds a sink. max ≤ 0 selects 4 retained captures.
func NewProfileSink(dir string, max int) *ProfileSink {
	if max <= 0 {
		max = 4
	}
	return &ProfileSink{Dir: dir, Max: max, CPUDuration: time.Second, now: time.Now}
}

// CaptureAsync starts a capture for the named breach unless one is already
// running. It returns immediately; reports whether a capture was started.
func (p *ProfileSink) CaptureAsync(reason string) bool {
	if p == nil || p.Dir == "" {
		return false
	}
	if !p.inFlight.CompareAndSwap(false, true) {
		return false
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		err := p.capture(reason)
		p.inFlight.Store(false)
		if p.onDone != nil {
			p.onDone(err)
		}
	}()
	return true
}

// Wait blocks until any in-flight async capture has finished. Shutdown
// paths call it so a capture never outlives the process teardown.
func (p *ProfileSink) Wait() {
	if p == nil {
		return
	}
	p.wg.Wait()
}

// Capture runs one capture synchronously (tests, CLI hooks).
func (p *ProfileSink) Capture(reason string) error {
	if !p.inFlight.CompareAndSwap(false, true) {
		return fmt.Errorf("telemetry: profile capture already in flight")
	}
	defer p.inFlight.Store(false)
	return p.capture(reason)
}

func (p *ProfileSink) capture(reason string) error {
	if err := os.MkdirAll(p.Dir, 0o755); err != nil {
		return err
	}
	stamp := fmt.Sprintf("%s-%04d", p.now().UTC().Format("20060102T150405"), p.seq.Add(1))
	slug := sanitizeReason(reason)

	cpuPath := filepath.Join(p.Dir, fmt.Sprintf("%s-%s.cpu.pprof", stamp, slug))
	f, err := os.Create(cpuPath)
	if err != nil {
		return err
	}
	dur := p.CPUDuration
	if dur <= 0 {
		dur = time.Second
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another profiler owns the CPU (e.g. a manual /debug/pprof/profile
		// fetch); still take the heap snapshot below.
		f.Close()
		os.Remove(cpuPath)
	} else {
		time.Sleep(dur)
		pprof.StopCPUProfile()
		f.Close()
	}

	heapPath := filepath.Join(p.Dir, fmt.Sprintf("%s-%s.heap.pprof", stamp, slug))
	hf, err := os.Create(heapPath)
	if err != nil {
		return err
	}
	err = pprof.Lookup("heap").WriteTo(hf, 0)
	hf.Close()
	if err != nil {
		return err
	}
	return p.prune()
}

// prune keeps the Max most recent capture stamps (a stamp may carry both a
// .cpu.pprof and a .heap.pprof file).
func (p *ProfileSink) prune() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	entries, err := os.ReadDir(p.Dir)
	if err != nil {
		return err
	}
	stamps := map[string][]string{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".pprof") {
			continue
		}
		// Stamp is everything up to the second dash-delimited field:
		// 20060102T150405-0001-<slug>.<kind>.pprof
		parts := strings.SplitN(name, "-", 3)
		if len(parts) < 3 {
			continue
		}
		stamp := parts[0] + "-" + parts[1]
		stamps[stamp] = append(stamps[stamp], name)
	}
	if len(stamps) <= p.Max {
		return nil
	}
	keys := make([]string, 0, len(stamps))
	for k := range stamps {
		keys = append(keys, k)
	}
	sort.Strings(keys) // stamps are lexically time-ordered
	for _, k := range keys[:len(keys)-p.Max] {
		for _, name := range stamps[k] {
			os.Remove(filepath.Join(p.Dir, name))
		}
	}
	return nil
}

// sanitizeReason turns an objective spec into a filesystem-safe slug.
func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('.')
		}
		if b.Len() >= 48 {
			break
		}
	}
	if b.Len() == 0 {
		return "breach"
	}
	return strings.Trim(b.String(), ".")
}
