package telemetry

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
)

// StatuszHandler serves the fleet view at /debug/statusz: an HTML table of
// per-endpoint rates, quantiles and SLO burn by default, the raw FleetStatus
// as JSON under ?format=json. Exemplar trace IDs link to /debug/traces/<id>
// on the same admin listener, so a slow quantile is one click from the trace
// that produced it.
func StatuszHandler(m *Monitor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		status := m.Status()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(status)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeStatuszHTML(w, status)
	})
}

func writeStatuszHTML(w http.ResponseWriter, status FleetStatus) {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html><head><title>desword statusz</title><style>
body { font-family: monospace; margin: 1.5em; }
table { border-collapse: collapse; margin-bottom: 1.5em; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.6em; text-align: right; }
th { background: #eee; }
td.name, th.name { text-align: left; }
.ok { color: #060; } .warn { color: #b60; } .breach { color: #b00; font-weight: bold; }
.err { color: #b00; }
h2 { margin-bottom: 0.2em; }
small { color: #666; }
</style></head><body>
<h1>desword fleet statusz</h1>
`)
	fmt.Fprintf(&b, "<p><small>as of %s · poll interval %.0fs · <a href=\"?format=json\">json</a></small></p>\n",
		html.EscapeString(status.Time.Format("2006-01-02 15:04:05 MST")), status.IntervalSeconds)

	for _, peer := range status.Peers {
		fmt.Fprintf(&b, "<h2>%s</h2>\n", html.EscapeString(peer.Name))
		if peer.Error != "" {
			fmt.Fprintf(&b, "<p class=\"err\">poll failed: %s</p>\n", html.EscapeString(peer.Error))
		}
		if !peer.Time.IsZero() {
			fmt.Fprintf(&b, "<p><small>uptime %.0fs · window %.1fs</small></p>\n",
				peer.UptimeSeconds, peer.WindowSeconds)
		}
		if len(peer.SLO) > 0 {
			b.WriteString("<table><tr><th class=\"name\">objective</th><th>state</th><th>value</th><th>threshold</th><th>burn</th></tr>\n")
			for _, o := range peer.SLO {
				fmt.Fprintf(&b,
					"<tr><td class=\"name\">%s</td><td class=\"%s\">%s</td><td>%.4g</td><td>%.4g</td><td>%.0f%%</td></tr>\n",
					html.EscapeString(o.Objective), o.State, o.State, o.Value, o.Threshold, o.Burn*100)
			}
			b.WriteString("</table>\n")
		}
		if len(peer.Stats) > 0 {
			b.WriteString("<table><tr><th class=\"name\">series</th><th>rate/s</th><th>value</th><th>p50</th><th>p90</th><th>p99</th><th class=\"name\">exemplars</th></tr>\n")
			for _, st := range peer.Stats {
				name := st.Name
				if st.Labels != "" {
					name += "{" + st.Labels + "}"
				}
				fmt.Fprintf(&b, "<tr><td class=\"name\">%s</td>", html.EscapeString(name))
				switch st.Kind {
				case "gauge":
					fmt.Fprintf(&b, "<td></td><td>%.4g</td><td></td><td></td><td></td>", st.Value)
				case "counter":
					fmt.Fprintf(&b, "<td>%.3g</td><td>%.4g</td><td></td><td></td><td></td>", st.Rate, st.Delta)
				default:
					fmt.Fprintf(&b, "<td>%.3g</td><td></td><td>%.4g</td><td>%.4g</td><td>%.4g</td>",
						st.Rate, st.P50, st.P90, st.P99)
				}
				b.WriteString(`<td class="name">`)
				for i, ex := range st.Exemplars {
					if i > 0 {
						b.WriteString(" · ")
					}
					fmt.Fprintf(&b, "<a href=\"/debug/traces/%s\">%s</a> (%.3gs)",
						html.EscapeString(ex.TraceID), html.EscapeString(shortID(ex.TraceID)), ex.Value)
				}
				b.WriteString("</td></tr>\n")
			}
			b.WriteString("</table>\n")
		}
	}
	b.WriteString("</body></html>\n")
	w.Write([]byte(b.String()))
}

// shortID abbreviates a trace ID for display.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12] + "…"
	}
	return id
}
