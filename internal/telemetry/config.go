package telemetry

import (
	"flag"
	"fmt"
	"time"

	"desword/internal/obs"
)

// Config is the shared telemetry configuration of the cmd binaries: one set
// of collector/SLO/profiling flags, one translation into a running Collector.
type Config struct {
	// Interval is the collector tick period.
	Interval time.Duration
	// SLO is the semicolon-separated objective spec (see ParseSLO).
	SLO string
	// ProfileDir enables on-breach pprof capture into this directory.
	ProfileDir string
	// ProfileMax bounds how many capture pairs ProfileDir retains.
	ProfileMax int
}

// RegisterFlags registers the telemetry flags on fs (use flag.CommandLine in
// main). Zero-valued fields pick up package defaults first, so a binary can
// pre-seed its own defaults before calling this.
func (c *Config) RegisterFlags(fs *flag.FlagSet) {
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.ProfileMax == 0 {
		c.ProfileMax = 4
	}
	fs.DurationVar(&c.Interval, "telemetry-interval", c.Interval, "telemetry collection tick period")
	fs.StringVar(&c.SLO, "slo", c.SLO, "semicolon-separated SLO spec, e.g. 'p99(desword_query_latency_seconds)<500ms;ratio(desword_server_errors_total/desword_requests_total)<0.01'")
	fs.StringVar(&c.ProfileDir, "profile-dir", c.ProfileDir, "directory for on-breach pprof captures (empty disables)")
	fs.IntVar(&c.ProfileMax, "profile-max", c.ProfileMax, "most recent pprof capture pairs kept in -profile-dir")
}

// Build assembles a collector over reg per the configuration, without
// starting it. The returned engine is nil when no SLO spec is set.
func (c *Config) Build(reg *obs.Registry, service string) (*Collector, *Engine, error) {
	objectives, err := ParseSLO(c.SLO)
	if err != nil {
		return nil, nil, fmt.Errorf("parsing -slo: %w", err)
	}
	opts := []CollectorOption{WithInterval(c.Interval)}
	var engine *Engine
	if len(objectives) > 0 {
		engine = NewEngine(objectives, 0)
		opts = append(opts, WithSLO(engine))
	}
	if c.ProfileDir != "" {
		opts = append(opts, WithProfileSink(NewProfileSink(c.ProfileDir, c.ProfileMax)))
	}
	return NewCollector(reg, service, opts...), engine, nil
}
