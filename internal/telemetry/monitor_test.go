package telemetry

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"desword/internal/obs"
)

func TestMonitorFleetStatus(t *testing.T) {
	objectives, err := ParseSLO("ratio(mon_errs_total/mon_reqs_total)<0.1")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(WithObjectives(objectives))

	// Peer A: a healthy fake whose counters advance between polls.
	regA := obs.NewRegistry()
	reqs := regA.Counter("mon_reqs_total", "r")
	lat := regA.Histogram("desword_query_latency_seconds", "l", nil)
	m.AddPeer("a", func(context.Context) (*Snapshot, error) {
		return TakeSnapshot(regA, "a"), nil
	})
	// Peer B: always down.
	m.AddPeer("b", func(context.Context) (*Snapshot, error) {
		return nil, errors.New("connection refused")
	})

	reqs.Add(10)
	lat.ObserveWithExemplar(0.25, strings.Repeat("c", 32))
	m.Poll(context.Background())
	reqs.Add(10)
	m.Poll(context.Background())

	status := m.Status()
	if len(status.Peers) != 2 {
		t.Fatalf("fleet has %d peers, want 2", len(status.Peers))
	}
	a, b := status.Peers[0], status.Peers[1]
	if a.Name != "a" || b.Name != "b" {
		t.Fatalf("peer order = %s, %s", a.Name, b.Name)
	}
	if b.Error == "" {
		t.Fatal("down peer carries no error")
	}
	if a.Error != "" || a.WindowSeconds <= 0 {
		t.Fatalf("healthy peer = %+v", a)
	}
	// mon_reqs_total is not a key family; the query latency histogram is,
	// and must surface its exemplar.
	for _, st := range a.Stats {
		if st.Name == "mon_reqs_total" {
			t.Fatalf("non-key family leaked into statusz: %+v", st)
		}
	}
	var sawExemplar bool
	for _, st := range a.Stats {
		if st.Name == "desword_query_latency_seconds" {
			for _, ex := range st.Exemplars {
				if ex.TraceID == strings.Repeat("c", 32) {
					sawExemplar = true
				}
			}
		}
	}
	if !sawExemplar {
		t.Fatal("key histogram lost its exemplar on the way to statusz")
	}
	if len(a.SLO) != 1 || a.SLO[0].State != StateOK {
		t.Fatalf("peer SLO = %+v", a.SLO)
	}
	if ok, _ := m.Healthy(); ok {
		t.Fatal("fleet with a down peer reported healthy")
	}
}

func TestMonitorPeerRestartResetsWindow(t *testing.T) {
	m := NewMonitor()
	regA := obs.NewRegistry()
	regA.Counter("mon_events_total", "e").Add(100)
	snapA := TakeSnapshot(regA, "p")
	m.AddPeer("p", func(context.Context) (*Snapshot, error) { return snapA, nil })
	m.Poll(context.Background())

	// The peer restarts: new registry, new process start, smaller counter.
	regB := obs.NewRegistry()
	regB.Counter("mon_events_total", "e").Add(5)
	snapB := TakeSnapshot(regB, "p")
	snapB.Start = snapA.Start.Add(time.Minute)
	snapB.Time = snapB.Start.Add(2 * time.Second)
	m.AddPeer("p", func(context.Context) (*Snapshot, error) { return snapB, nil })
	m.Poll(context.Background())

	status := m.Status()
	if got := status.Peers[0].WindowSeconds; got != 2 {
		t.Fatalf("restarted peer window = %vs, want the 2s uptime", got)
	}
}

func TestStatuszHandlerFormats(t *testing.T) {
	m := NewMonitor()
	reg := obs.NewRegistry()
	reg.Histogram("desword_query_latency_seconds", "l", nil).
		ObserveWithExemplar(1.5, strings.Repeat("d", 32))
	m.AddPeer("local", func(context.Context) (*Snapshot, error) {
		return TakeSnapshot(reg, "local"), nil
	})
	m.Poll(context.Background())

	h := StatuszHandler(m)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/statusz", nil))
	html := rec.Body.String()
	if !strings.Contains(html, "<html>") || !strings.Contains(html, "local") {
		t.Fatalf("statusz html missing peer section:\n%s", html)
	}
	if !strings.Contains(html, "/debug/traces/"+strings.Repeat("d", 32)) {
		t.Fatalf("statusz html missing exemplar trace link:\n%s", html)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/statusz?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("json content type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"peers"`) || !strings.Contains(body, `"p99"`) {
		t.Fatalf("statusz json missing fields:\n%s", body)
	}
}
