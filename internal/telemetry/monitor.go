package telemetry

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Fetcher obtains one telemetry snapshot from a peer. Remote peers fetch over
// the wire's idempotent telemetry message; the local process adapts its own
// collector. A fetch error marks the peer degraded but keeps its last stats.
type Fetcher func(ctx context.Context) (*Snapshot, error)

// Monitor polls a fleet of peers for telemetry snapshots, keeps the previous
// and current snapshot per peer, and derives per-peer window stats and SLO
// status from them. It is the data source behind /debug/statusz: the proxy
// runs one monitor over itself plus every directory participant.
type Monitor struct {
	interval   time.Duration
	objectives []Objective
	timeout    time.Duration

	mu    sync.Mutex
	names []string              // guarded by mu
	peers map[string]*peerState // guarded by mu

	started  bool // guarded by mu
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

type peerState struct {
	fetch  Fetcher
	prev   *Snapshot
	cur    *Snapshot
	stats  []SeriesStat
	engine *Engine
	err    string
	lastOK time.Time
}

// MonitorOption configures a Monitor.
type MonitorOption func(*Monitor)

// WithPollInterval sets the poll period (≤ 0 keeps DefaultInterval).
func WithPollInterval(d time.Duration) MonitorOption {
	return func(m *Monitor) {
		if d > 0 {
			m.interval = d
		}
	}
}

// WithObjectives gives every peer its own SLO evaluation over the shared
// objective set — fleet-wide objectives scored per endpoint.
func WithObjectives(objectives []Objective) MonitorOption {
	return func(m *Monitor) { m.objectives = objectives }
}

// WithFetchTimeout bounds each peer fetch within a poll (default 5s).
func WithFetchTimeout(d time.Duration) MonitorOption {
	return func(m *Monitor) {
		if d > 0 {
			m.timeout = d
		}
	}
}

// NewMonitor builds an empty monitor; add peers before Start.
func NewMonitor(opts ...MonitorOption) *Monitor {
	m := &Monitor{
		interval: DefaultInterval,
		timeout:  5 * time.Second,
		peers:    map[string]*peerState{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// AddPeer registers a named peer. Re-adding a name replaces its fetcher but
// keeps its history.
func (m *Monitor) AddPeer(name string, fetch Fetcher) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ps, ok := m.peers[name]; ok {
		ps.fetch = fetch
		return
	}
	ps := &peerState{fetch: fetch}
	if len(m.objectives) > 0 {
		ps.engine = NewEngine(m.objectives, 0)
	}
	m.peers[name] = ps
	m.names = append(m.names, name)
	sort.Strings(m.names)
}

// AddLocal registers the process's own collector as a peer: the freshest
// ring snapshot is served without any wire round trip.
func (m *Monitor) AddLocal(name string, c *Collector) {
	m.AddPeer(name, func(context.Context) (*Snapshot, error) {
		if snap := c.Latest(); snap != nil {
			return snap, nil
		}
		return c.Tick(), nil
	})
}

// Poll fetches every peer once, concurrently, and folds the results into
// per-peer windows. Blocks until all fetches return or time out.
func (m *Monitor) Poll(ctx context.Context) {
	m.mu.Lock()
	type job struct {
		name  string
		fetch Fetcher
	}
	jobs := make([]job, 0, len(m.names))
	for _, name := range m.names {
		jobs = append(jobs, job{name, m.peers[name].fetch})
	}
	m.mu.Unlock()

	type result struct {
		name string
		snap *Snapshot
		err  error
	}
	results := make(chan result, len(jobs))
	for _, j := range jobs {
		go func(j job) {
			fctx, cancel := context.WithTimeout(ctx, m.timeout)
			defer cancel()
			snap, err := j.fetch(fctx)
			results <- result{j.name, snap, err}
		}(j)
	}
	for range jobs {
		r := <-results
		m.fold(r.name, r.snap, r.err)
	}
}

// fold applies one fetch result to a peer's window state.
func (m *Monitor) fold(name string, snap *Snapshot, err error) {
	m.mu.Lock()
	ps, ok := m.peers[name]
	if !ok {
		m.mu.Unlock()
		return
	}
	if err != nil || snap == nil {
		if err != nil {
			ps.err = err.Error()
		} else {
			ps.err = "no snapshot"
		}
		m.mu.Unlock()
		return
	}
	ps.err = ""
	ps.lastOK = time.Now()
	ps.prev, ps.cur = ps.cur, snap
	if ps.prev != nil && snap.Start.After(ps.prev.Start.Add(time.Second)) {
		// Peer restarted: the old snapshot belongs to a dead process.
		ps.prev = nil
	}
	ps.stats = WindowStats(ps.prev, ps.cur)
	stats := ps.stats
	engine := ps.engine
	m.mu.Unlock()

	if engine != nil {
		engine.EvaluateStats(stats)
	}
}

// Start launches the poll loop. Stop ends it.
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.interval)
		defer t.Stop()
		ctx := context.Background()
		m.Poll(ctx)
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.Poll(ctx)
			}
		}
	}()
}

// Stop ends the poll loop and waits for it to exit.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.mu.Lock()
	started := m.started
	m.mu.Unlock()
	if started {
		<-m.done
	}
}

// PeerStatus is one peer's row in the fleet view.
type PeerStatus struct {
	Name string `json:"name"`
	// Error is set when the last poll failed; Stats then hold the last
	// successful window.
	Error         string    `json:"error,omitempty"`
	Time          time.Time `json:"time"`
	UptimeSeconds float64   `json:"uptime_seconds,omitempty"`
	WindowSeconds float64   `json:"window_seconds,omitempty"`
	// Stats is the key-family view of the peer's last window.
	Stats []SeriesStat `json:"stats,omitempty"`
	// SLO is per-objective status when the monitor carries objectives.
	SLO []ObjectiveStatus `json:"slo,omitempty"`
}

// FleetStatus is the aggregated statusz payload.
type FleetStatus struct {
	Time            time.Time    `json:"time"`
	IntervalSeconds float64      `json:"interval_seconds"`
	Peers           []PeerStatus `json:"peers"`
}

// Status assembles the current fleet view: per-peer key-family window stats
// and SLO readings, alphabetical by peer name.
func (m *Monitor) Status() FleetStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	fs := FleetStatus{Time: time.Now(), IntervalSeconds: m.interval.Seconds()}
	for _, name := range m.names {
		ps := m.peers[name]
		row := PeerStatus{Name: name, Error: ps.err}
		if ps.cur != nil {
			row.Time = ps.cur.Time
			row.UptimeSeconds = ps.cur.Time.Sub(ps.cur.Start).Seconds()
			if ps.prev != nil {
				row.WindowSeconds = ps.cur.Time.Sub(ps.prev.Time).Seconds()
			} else {
				row.WindowSeconds = row.UptimeSeconds
			}
			row.Stats = FilterKey(ps.stats)
		}
		if ps.engine != nil {
			row.SLO = ps.engine.Status()
		}
		fs.Peers = append(fs.Peers, row)
	}
	return fs
}

// Healthy reports fleet health for /healthz: false when any peer is
// unreachable or any peer objective is in breach.
func (m *Monitor) Healthy() (bool, []PeerStatus) {
	status := m.Status()
	ok := true
	for _, p := range status.Peers {
		if p.Error != "" {
			ok = false
		}
		for _, o := range p.SLO {
			if o.State == StateBreach {
				ok = false
			}
		}
	}
	return ok, status.Peers
}
