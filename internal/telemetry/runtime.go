package telemetry

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"desword/internal/obs"
)

// RuntimeSampler publishes Go-runtime and process health as desword_go_* /
// desword_process_* series in a registry, refreshed on every collector tick:
// heap and GC figures from runtime.ReadMemStats, goroutine count, and — on
// Linux — process CPU seconds and resident set size from /proc/self. The
// samples ride along in every telemetry snapshot, so the fleet monitor sees
// saturation, not just traffic.
type RuntimeSampler struct {
	goroutines *obs.Gauge
	heapAlloc  *obs.Gauge
	heapSys    *obs.Gauge
	gcCycles   *obs.Counter
	gcPause    *obs.Counter
	cpu        *obs.Counter
	rss        *obs.Gauge

	// Last seen cumulative values, so the counters advance by deltas. The
	// mutex serializes Sample callers: the collector's ticker loop and any
	// explicit Tick both land here.
	mu          sync.Mutex
	lastGC      uint32  // guarded by mu
	lastPauseNs uint64  // guarded by mu
	lastCPU     float64 // guarded by mu

	pageSize float64
	ticksPer float64
}

// NewRuntimeSampler registers the runtime series in reg and returns the
// sampler. Call Sample on every collection tick.
func NewRuntimeSampler(reg *obs.Registry) *RuntimeSampler {
	return &RuntimeSampler{
		goroutines: reg.Gauge("desword_go_goroutines",
			"Live goroutines."),
		heapAlloc: reg.Gauge("desword_go_heap_alloc_bytes",
			"Heap bytes allocated and in use."),
		heapSys: reg.Gauge("desword_go_heap_sys_bytes",
			"Heap bytes obtained from the OS."),
		gcCycles: reg.Counter("desword_go_gc_cycles_total",
			"Completed GC cycles."),
		gcPause: reg.Counter("desword_go_gc_pause_nanoseconds_total",
			"Cumulative GC stop-the-world pause time in nanoseconds."),
		cpu: reg.Counter("desword_process_cpu_seconds_total",
			"Process CPU time (user+system) in whole seconds, from /proc/self/stat."),
		rss: reg.Gauge("desword_process_rss_bytes",
			"Resident set size in bytes, from /proc/self/statm."),
		pageSize: float64(os.Getpagesize()),
		ticksPer: 100, // Linux USER_HZ; fixed at 100 on every supported arch
	}
}

// Sample refreshes every runtime series. Cheap enough for aggressive tick
// intervals: one ReadMemStats plus two small /proc reads.
func (r *RuntimeSampler) Sample() {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.goroutines.Set(int64(runtime.NumGoroutine()))
	r.heapAlloc.Set(int64(ms.HeapAlloc))
	r.heapSys.Set(int64(ms.HeapSys))
	if ms.NumGC >= r.lastGC {
		r.gcCycles.Add(uint64(ms.NumGC - r.lastGC))
	}
	r.lastGC = ms.NumGC
	if ms.PauseTotalNs >= r.lastPauseNs {
		r.gcPause.Add(ms.PauseTotalNs - r.lastPauseNs)
	}
	r.lastPauseNs = ms.PauseTotalNs

	if cpu, ok := readProcCPUSeconds(r.ticksPer); ok && cpu >= r.lastCPU {
		// The registry's counters are integral; track fractional seconds
		// locally and publish whole-second progress.
		r.cpu.Add(uint64(cpu) - uint64(r.lastCPU))
		r.lastCPU = cpu
	}
	if rssPages, ok := readProcRSSPages(); ok {
		r.rss.Set(int64(rssPages * r.pageSize))
	}
}

// readProcCPUSeconds reads utime+stime from /proc/self/stat, in seconds.
// Returns ok=false on any non-Linux host or parse trouble — runtime sampling
// degrades gracefully to the portable series.
func readProcCPUSeconds(ticksPerSec float64) (float64, bool) {
	data, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0, false
	}
	// The comm field (2nd) may contain spaces and parentheses; fields are
	// counted after the last ')'.
	s := string(data)
	close := strings.LastIndexByte(s, ')')
	if close < 0 {
		return 0, false
	}
	fields := strings.Fields(s[close+1:])
	// After ')': field 3 is state, so utime is index 11 and stime index 12
	// (1-based fields 14 and 15 of the full line).
	if len(fields) < 13 {
		return 0, false
	}
	utime, err1 := strconv.ParseFloat(fields[11], 64)
	stime, err2 := strconv.ParseFloat(fields[12], 64)
	if err1 != nil || err2 != nil || ticksPerSec <= 0 {
		return 0, false
	}
	return (utime + stime) / ticksPerSec, true
}

// readProcRSSPages reads the resident-set page count from /proc/self/statm.
func readProcRSSPages() (float64, bool) {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0, false
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0, false
	}
	rss, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return 0, false
	}
	return rss, true
}
