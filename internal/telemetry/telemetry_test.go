package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"desword/internal/obs"
)

func TestParseSLO(t *testing.T) {
	objectives, err := ParseSLO(" p99(desword_query_latency_seconds) < 500ms ; ratio(desword_server_errors_total/desword_queries_total)<0.01 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(objectives) != 2 {
		t.Fatalf("parsed %d objectives, want 2", len(objectives))
	}
	q := objectives[0]
	if q.Kind != KindQuantile || q.Metric != "desword_query_latency_seconds" || q.Quantile != 0.99 || q.Threshold != 0.5 {
		t.Fatalf("quantile objective = %+v", q)
	}
	r := objectives[1]
	if r.Kind != KindRatio || r.Metric != "desword_server_errors_total" || r.Denom != "desword_queries_total" || r.Threshold != 0.01 {
		t.Fatalf("ratio objective = %+v", r)
	}
	if got, _ := ParseSLO(""); len(got) != 0 {
		t.Fatalf("empty spec parsed to %+v", got)
	}
	for _, bad := range []string{"p75(x)<1s", "p99(x)<banana", "ratio(a/b)<fast", "latency<1s"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

// snapPair builds two snapshots dt apart with observations applied between.
func snapPair(t *testing.T, dt time.Duration, before, between func(reg *obs.Registry)) (*Snapshot, *Snapshot) {
	t.Helper()
	reg := obs.NewRegistry()
	if before != nil {
		before(reg)
	}
	prev := TakeSnapshot(reg, "test")
	if between != nil {
		between(reg)
	}
	cur := TakeSnapshot(reg, "test")
	cur.Time = prev.Time.Add(dt) // deterministic window
	return prev, cur
}

func TestWindowStatsRatesAndQuantiles(t *testing.T) {
	prev, cur := snapPair(t, 10*time.Second,
		func(reg *obs.Registry) {
			reg.Counter("events_total", "e").Add(100)
			h := reg.Histogram("lat_seconds", "l", []float64{0.1, 0.2, 0.4, 0.8})
			h.Observe(0.05)
		},
		func(reg *obs.Registry) {
			reg.Counter("events_total", "e").Add(50)
			reg.Gauge("depth", "d").Set(7)
			h := reg.Histogram("lat_seconds", "l", nil)
			// 90 obs in (0, 0.1], 10 in (0.2, 0.4] → p50 ≈ 0.056, p99 in the
			// (0.2, 0.4] bucket.
			for i := 0; i < 90; i++ {
				h.Observe(0.05)
			}
			for i := 0; i < 10; i++ {
				h.Observe(0.3)
			}
		})
	stats := WindowStats(prev, cur)
	byKey := map[string]SeriesStat{}
	for _, st := range stats {
		byKey[st.Name+"{"+st.Labels+"}"] = st
	}
	ev := byKey["events_total{}"]
	if ev.Delta != 50 || ev.Rate != 5 {
		t.Fatalf("counter window = %+v, want delta 50 rate 5", ev)
	}
	if g := byKey["depth{}"]; g.Value != 7 {
		t.Fatalf("gauge window = %+v", g)
	}
	lat := byKey["lat_seconds{}"]
	if lat.Count != 100 {
		t.Fatalf("histogram window count = %d, want 100", lat.Count)
	}
	if lat.Rate != 10 {
		t.Fatalf("histogram rate = %v, want 10", lat.Rate)
	}
	if lat.P50 <= 0 || lat.P50 > 0.1 {
		t.Fatalf("p50 = %v, want within (0, 0.1]", lat.P50)
	}
	if lat.P99 <= 0.2 || lat.P99 > 0.4 {
		t.Fatalf("p99 = %v, want within (0.2, 0.4]", lat.P99)
	}
	if lat.Mean <= 0.05 || lat.Mean >= 0.1 {
		t.Fatalf("mean = %v, want ≈ 0.075", lat.Mean)
	}
}

func TestWindowStatsCounterReset(t *testing.T) {
	// Simulate a restarted peer: cur below prev.
	regA := obs.NewRegistry()
	regA.Counter("events_total", "e").Add(100)
	prev := TakeSnapshot(regA, "p")
	regB := obs.NewRegistry()
	regB.Counter("events_total", "e").Add(30)
	cur := TakeSnapshot(regB, "p")
	cur.Time = prev.Time.Add(10 * time.Second)
	stats := WindowStats(prev, cur)
	if stats[0].Delta != 30 {
		t.Fatalf("reset delta = %v, want 30 (cur value)", stats[0].Delta)
	}
}

func TestWindowStatsNilPrevUsesUptime(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("events_total", "e").Add(10)
	cur := TakeSnapshot(reg, "p")
	cur.Start = cur.Time.Add(-5 * time.Second)
	stats := WindowStats(nil, cur)
	if stats[0].Delta != 10 || stats[0].Rate != 2 {
		t.Fatalf("uptime window = %+v, want delta 10 rate 2", stats[0])
	}
}

func TestEngineStateMachine(t *testing.T) {
	objectives, err := ParseSLO("p99(lat_seconds)<100ms")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(objectives, 4)
	slow := []SeriesStat{{Name: "lat_seconds", Kind: "histogram", Count: 10, P99: 0.5}}
	fast := []SeriesStat{{Name: "lat_seconds", Kind: "histogram", Count: 10, P99: 0.01}}
	idle := []SeriesStat{{Name: "lat_seconds", Kind: "histogram", Count: 0}}

	st, breaches := e.EvaluateStats(fast)
	if st[0].State != StateOK || len(breaches) != 0 {
		t.Fatalf("fast window = %+v", st[0])
	}
	// First violating window: burn 1/2 ≥ 0.5 would trigger at the second
	// sample; the very first violation (1 of 2 windows) is warn.
	st, breaches = e.EvaluateStats(slow)
	if st[0].State != StateWarn {
		t.Fatalf("first slow window state = %s, want warn", st[0].State)
	}
	if len(breaches) != 0 {
		t.Fatalf("warn must not report a breach")
	}
	// Second violating window: 2/3 of lookback violating → breach, reported once.
	st, breaches = e.EvaluateStats(slow)
	if st[0].State != StateBreach || len(breaches) != 1 {
		t.Fatalf("second slow window = %+v breaches=%v", st[0], breaches)
	}
	_, breaches = e.EvaluateStats(slow)
	if len(breaches) != 0 {
		t.Fatalf("ongoing breach reported again: %v", breaches)
	}
	// Idle windows freeze the verdict (no data ≠ recovery).
	st, _ = e.EvaluateStats(idle)
	if st[0].State != StateBreach {
		t.Fatalf("idle window changed state to %s", st[0].State)
	}
	// Fast windows drain the ring back to ok.
	for i := 0; i < 4; i++ {
		st, _ = e.EvaluateStats(fast)
	}
	if st[0].State != StateOK || st[0].Burn != 0 {
		t.Fatalf("after recovery = %+v", st[0])
	}
	if h := e.Health(); !h.OK {
		t.Fatalf("health after recovery = %+v", h)
	}
}

func TestEngineRatioObjective(t *testing.T) {
	objectives, err := ParseSLO("ratio(errs_total/reqs_total)<0.1")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(objectives, 4)
	bad := []SeriesStat{
		{Name: "errs_total", Kind: "counter", Delta: 5},
		{Name: "reqs_total", Kind: "counter", Delta: 20},
	}
	st, _ := e.EvaluateStats(bad)
	if st[0].State != StateWarn || st[0].Value != 0.25 {
		t.Fatalf("bad ratio window = %+v", st[0])
	}
	quiet := []SeriesStat{{Name: "reqs_total", Kind: "counter", Delta: 0}}
	st, _ = e.EvaluateStats(quiet)
	if st[0].State != StateWarn {
		t.Fatalf("zero-denominator window changed state: %+v", st[0])
	}
}

func TestCollectorRingAndStats(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCollector(reg, "unit", WithRing(3), WithInterval(time.Hour))
	events := reg.Counter("events_total", "e")
	for i := 0; i < 5; i++ {
		events.Add(10)
		c.Tick()
	}
	if c.RingLen() != 3 {
		t.Fatalf("ring holds %d snapshots, want 3", c.RingLen())
	}
	if c.Latest() == nil || c.Oldest() == nil {
		t.Fatal("ring endpoints missing")
	}
	if got := c.Latest().Service; got != "unit" {
		t.Fatalf("service = %q", got)
	}
	var ev *SeriesStat
	for i, st := range c.Stats() {
		if st.Name == "events_total" {
			ev = &c.Stats()[i]
		}
	}
	if ev == nil || ev.Delta != 10 {
		t.Fatalf("last window counter stat = %+v, want delta 10", ev)
	}
	// Runtime sampler series ride along in snapshots.
	found := false
	for _, s := range c.Latest().Samples {
		if s.Name == "desword_go_goroutines" && s.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("runtime series missing from snapshot")
	}
	c.Stop() // never started: must not hang
}

func TestCollectorBreachCapturesProfile(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	objectives, err := ParseSLO("p50(lat_seconds)<1ms")
	if err != nil {
		t.Fatal(err)
	}
	sink := NewProfileSink(dir, 2)
	sink.CPUDuration = 10 * time.Millisecond
	done := make(chan error, 4)
	sink.onDone = func(err error) { done <- err }
	c := NewCollector(reg, "unit", WithInterval(time.Hour),
		WithSLO(NewEngine(objectives, 2)), WithProfileSink(sink))
	h := reg.Histogram("lat_seconds", "l", nil)
	c.Tick()
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	c.Tick() // warn
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	c.Tick() // breach → capture
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("profile capture: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("profile capture never finished")
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.pprof"))
	if len(matches) == 0 {
		t.Fatal("no profiles written on breach")
	}
}

func TestProfileSinkPrunes(t *testing.T) {
	dir := t.TempDir()
	sink := NewProfileSink(dir, 2)
	sink.CPUDuration = time.Millisecond
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	tick := 0
	sink.now = func() time.Time { tick++; return base.Add(time.Duration(tick) * time.Minute) }
	for i := 0; i < 4; i++ {
		if err := sink.Capture("p99(lat)<1ms"); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	stamps := map[string]bool{}
	for _, e := range entries {
		parts := strings.SplitN(e.Name(), "-", 3)
		if len(parts) == 3 {
			stamps[parts[0]+"-"+parts[1]] = true
		}
	}
	if len(stamps) != 2 {
		t.Fatalf("retained %d capture stamps, want 2: %v", len(stamps), entries)
	}
}

func TestRegisterKeyFamilyFilter(t *testing.T) {
	RegisterKeyFamily("unit_test_only_total")
	stats := []SeriesStat{
		{Name: "unit_test_only_total", Kind: "counter"},
		{Name: "unregistered_series", Kind: "counter"},
	}
	kept := FilterKey(stats)
	if len(kept) != 1 || kept[0].Name != "unit_test_only_total" {
		t.Fatalf("FilterKey kept %+v", kept)
	}
}
