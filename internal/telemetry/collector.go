package telemetry

import (
	"sync"
	"time"

	"desword/internal/obs"
)

// DefaultInterval is the collector's default tick period.
const DefaultInterval = 5 * time.Second

// defaultRing is how many snapshots the collector retains. With the default
// interval that is about a minute of history — enough for rate windows and
// the SLO lookback without unbounded growth.
const defaultRing = 16

// Collector snapshots a registry on a ticker into a fixed-size ring, refreshes
// the runtime sampler first so every snapshot carries process health, and —
// when configured — drives the SLO engine and breach-triggered profiling. All
// public methods are safe for concurrent use; readers get immutable snapshots.
type Collector struct {
	reg     *obs.Registry
	service string

	interval time.Duration
	ringSize int
	engine   *Engine
	sink     *ProfileSink
	sampler  *RuntimeSampler

	mu    sync.Mutex
	ring  []*Snapshot  // guarded by mu; newest last, ≤ ringSize
	stats []SeriesStat // guarded by mu

	started  bool // guarded by mu
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// CollectorOption configures a Collector.
type CollectorOption func(*Collector)

// WithInterval sets the tick period (≤ 0 keeps DefaultInterval).
func WithInterval(d time.Duration) CollectorOption {
	return func(c *Collector) {
		if d > 0 {
			c.interval = d
		}
	}
}

// WithRing sets how many snapshots the ring retains (≤ 1 keeps the default).
func WithRing(n int) CollectorOption {
	return func(c *Collector) {
		if n > 1 {
			c.ringSize = n
		}
	}
}

// WithSLO attaches an SLO engine, evaluated on every tick.
func WithSLO(e *Engine) CollectorOption {
	return func(c *Collector) { c.engine = e }
}

// WithProfileSink attaches breach-triggered profile capture.
func WithProfileSink(s *ProfileSink) CollectorOption {
	return func(c *Collector) { c.sink = s }
}

// NewCollector builds a collector over reg, publishing snapshots under the
// service name. The runtime sampler is registered into reg immediately so
// even the first snapshot carries desword_go_* series.
func NewCollector(reg *obs.Registry, service string, opts ...CollectorOption) *Collector {
	c := &Collector{
		reg:      reg,
		service:  service,
		interval: DefaultInterval,
		ringSize: defaultRing,
		sampler:  NewRuntimeSampler(reg),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Engine returns the attached SLO engine (nil when none).
func (c *Collector) Engine() *Engine { return c.engine }

// Service returns the service name snapshots are published under.
func (c *Collector) Service() string { return c.service }

// Interval returns the collector's tick period.
func (c *Collector) Interval() time.Duration { return c.interval }

// Start launches the tick loop in its own goroutine and takes an immediate
// first snapshot so Latest never returns nil afterwards. Stop ends it.
func (c *Collector) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	c.Tick()
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.Tick()
			}
		}
	}()
}

// Stop ends the tick loop and waits for it to exit. Safe to call more than
// once, and before Start (the loop goroutine is only awaited if started).
func (c *Collector) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if started {
		<-c.done
	}
	if c.sink != nil {
		c.sink.Wait()
	}
}

// Tick performs one collection: runtime sample, registry snapshot into the
// ring, window stats refresh, SLO evaluation, and — on a fresh breach —
// profile capture. Exposed for tests and for the bench harness.
func (c *Collector) Tick() *Snapshot {
	c.sampler.Sample()
	cur := TakeSnapshot(c.reg, c.service)

	c.mu.Lock()
	var prev *Snapshot
	if n := len(c.ring); n > 0 {
		prev = c.ring[n-1]
	}
	c.ring = append(c.ring, cur)
	if len(c.ring) > c.ringSize {
		c.ring = c.ring[1:]
	}
	stats := WindowStats(prev, cur)
	c.stats = stats
	c.mu.Unlock()

	if c.engine != nil {
		_, breaches := c.engine.EvaluateStats(stats)
		if len(breaches) > 0 && c.sink != nil {
			c.sink.CaptureAsync(breaches[0])
		}
	}
	return cur
}

// Latest returns the newest snapshot, or nil before the first tick.
func (c *Collector) Latest() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.ring); n > 0 {
		return c.ring[n-1]
	}
	return nil
}

// Oldest returns the oldest retained snapshot, or nil before the first tick.
func (c *Collector) Oldest() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.ring) > 0 {
		return c.ring[0]
	}
	return nil
}

// Stats returns the latest tick's window stats (last interval's rates and
// quantiles), or nil before the second tick produces a window.
func (c *Collector) Stats() []SeriesStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// RingLen reports how many snapshots the ring currently holds.
func (c *Collector) RingLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ring)
}
