// Package telemetry turns the point-in-time metrics of package obs into
// operational visibility over time: an in-process collector that snapshots
// the registry on a ticker into bounded time-series rings (counter deltas →
// rates, histogram bucket deltas → p50/p90/p99 estimates), a runtime sampler
// publishing desword_go_* process metrics, a declarative SLO engine with
// budget-burn states feeding /healthz, bounded on-breach pprof capture, and a
// fleet monitor that pulls remote registries over the wire's idempotent
// telemetry message and serves the aggregated /debug/statusz view.
//
// Like obs and trace, the package is stdlib-only, and nothing here sits on a
// request hot path: collection is a ticker-driven registry walk (one lock
// acquisition plus atomic loads), and everything downstream operates on
// immutable Snapshot values.
package telemetry

import (
	"sort"
	"sync"
	"time"

	"desword/internal/obs"
)

// Snapshot is one point-in-time image of a process's telemetry: every metric
// series of its registry (histogram buckets and exemplars included) plus
// identity. It is immutable once taken, JSON-ready, and exactly what the wire
// telemetry message carries — the monitor derives rates and quantiles from
// consecutive snapshots of the same peer, so the message itself stays a plain
// idempotent read.
type Snapshot struct {
	Service string       `json:"service"`
	Time    time.Time    `json:"time"`
	Start   time.Time    `json:"start"`
	Samples []obs.Sample `json:"samples"`
}

// TakeSnapshot captures the registry under a service name.
func TakeSnapshot(reg *obs.Registry, service string) *Snapshot {
	return &Snapshot{
		Service: service,
		Time:    time.Now(),
		Start:   obs.ProcessStart(),
		Samples: reg.Snapshot(),
	}
}

// index maps series key → sample for delta matching.
func (s *Snapshot) index() map[string]*obs.Sample {
	m := make(map[string]*obs.Sample, len(s.Samples))
	for i := range s.Samples {
		m[s.Samples[i].Key()] = &s.Samples[i]
	}
	return m
}

// keyFamilies is the curated set of metric families the statusz view surfaces
// per endpoint; everything else stays available on /metrics but would drown
// the fleet table. Registration is append-only and names must be compile-time
// constants (enforced by the desword/metriclabel analyzer).
var (
	keyFamMu    sync.Mutex
	keyFamilies = map[string]bool{}
)

// RegisterKeyFamily marks metric families as key series for the statusz
// display. Safe for concurrent use; duplicate registrations are no-ops.
func RegisterKeyFamily(names ...string) {
	keyFamMu.Lock()
	defer keyFamMu.Unlock()
	for _, n := range names {
		keyFamilies[n] = true
	}
}

// isKeyFamily reports whether a family is on the statusz display list.
func isKeyFamily(name string) bool {
	keyFamMu.Lock()
	defer keyFamMu.Unlock()
	return keyFamilies[name]
}

func init() {
	RegisterKeyFamily(
		"desword_query_latency_seconds",
		"desword_queries_total",
		"desword_request_latency_seconds",
		"desword_server_errors_total",
		"desword_wire_frames_total",
		"desword_pool_reuses_total",
		"desword_pool_dials_total",
		"desword_violations_total",
		"desword_go_goroutines",
		"desword_go_heap_alloc_bytes",
		"desword_process_rss_bytes",
		"desword_process_cpu_seconds_total",
	)
}

// SeriesStat is the windowed reading of one metric series between two
// snapshots: counters carry Rate (events/second) and Delta, gauges carry the
// latest Value, histograms carry the window's count/rate, mean and quantile
// estimates plus any exemplars attached to the series.
type SeriesStat struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	Rate   float64 `json:"rate,omitempty"`
	Delta  float64 `json:"delta,omitempty"`
	Value  float64 `json:"value,omitempty"`
	Count  uint64  `json:"count,omitempty"`
	Mean   float64 `json:"mean,omitempty"`
	P50    float64 `json:"p50,omitempty"`
	P90    float64 `json:"p90,omitempty"`
	P99    float64 `json:"p99,omitempty"`

	Exemplars []obs.Exemplar `json:"exemplars,omitempty"`
}

// WindowStats computes per-series stats over the window (prev, cur]. prev may
// be nil, in which case the window runs from the peer's process start (every
// cumulative value is its own delta). Series present only in prev (a peer
// restart) are dropped; restarts also reset deltas to the cur value via the
// counter-reset guard below.
func WindowStats(prev, cur *Snapshot) []SeriesStat {
	if cur == nil {
		return nil
	}
	var prevIdx map[string]*obs.Sample
	window := cur.Time.Sub(cur.Start).Seconds()
	if prev != nil {
		prevIdx = prev.index()
		window = cur.Time.Sub(prev.Time).Seconds()
	}
	if window <= 0 {
		window = 1e-9
	}
	out := make([]SeriesStat, 0, len(cur.Samples))
	for i := range cur.Samples {
		s := &cur.Samples[i]
		st := SeriesStat{Name: s.Name, Labels: s.Labels, Kind: s.Kind}
		var base *obs.Sample
		if prevIdx != nil {
			base = prevIdx[s.Key()]
		}
		switch s.Kind {
		case "counter":
			st.Delta = counterDelta(s.Value, base, func(b *obs.Sample) float64 { return b.Value })
			st.Rate = st.Delta / window
		case "gauge":
			st.Value = s.Value
		case "histogram":
			var baseCount uint64
			var baseSum float64
			var baseCum []uint64
			if base != nil && base.Count <= s.Count {
				baseCount, baseSum, baseCum = base.Count, base.Sum, base.Cumulative
			}
			st.Count = s.Count - baseCount
			st.Rate = float64(st.Count) / window
			if st.Count > 0 {
				st.Mean = (s.Sum - baseSum) / float64(st.Count)
			}
			st.P50 = histogramQuantile(0.50, s.Uppers, s.Cumulative, baseCum, s.Count, baseCount)
			st.P90 = histogramQuantile(0.90, s.Uppers, s.Cumulative, baseCum, s.Count, baseCount)
			st.P99 = histogramQuantile(0.99, s.Uppers, s.Cumulative, baseCum, s.Count, baseCount)
			st.Exemplars = s.Exemplars
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// counterDelta handles the counter-reset case (peer restart): a cumulative
// value below the base means the counter restarted, so the current value is
// the whole delta.
func counterDelta(cur float64, base *obs.Sample, read func(*obs.Sample) float64) float64 {
	if base == nil {
		return cur
	}
	b := read(base)
	if cur < b {
		return cur
	}
	return cur - b
}

// histogramQuantile estimates quantile q from the window's bucket deltas,
// Prometheus histogram_quantile style: find the bucket holding the target
// rank and interpolate linearly inside it. Observations beyond the last
// finite bucket clamp to that bound (the estimate cannot exceed what the
// layout can resolve). Returns 0 when the window holds no observations.
func histogramQuantile(q float64, uppers []float64, cum, baseCum []uint64, count, baseCount uint64) float64 {
	total := float64(count - baseCount)
	if total <= 0 || len(uppers) == 0 {
		return 0
	}
	if len(baseCum) != len(cum) {
		baseCum = nil
	}
	rank := q * total
	lower := 0.0
	prevDelta := 0.0
	for i, upper := range uppers {
		d := float64(cum[i])
		if baseCum != nil {
			if cum[i] >= baseCum[i] {
				d = float64(cum[i] - baseCum[i])
			}
		}
		if d < prevDelta {
			d = prevDelta // racing snapshot: clamp to monotone
		}
		if d >= rank {
			// Interpolate within (lower, upper].
			bucketCount := d - prevDelta
			if bucketCount <= 0 {
				return upper
			}
			return lower + (upper-lower)*(rank-prevDelta)/bucketCount
		}
		lower = upper
		prevDelta = d
	}
	return uppers[len(uppers)-1]
}

// FilterKey keeps only the stats of registered key families — the statusz
// per-endpoint view.
func FilterKey(stats []SeriesStat) []SeriesStat {
	out := make([]SeriesStat, 0, len(stats))
	for _, st := range stats {
		if isKeyFamily(st.Name) {
			out = append(out, st)
		}
	}
	return out
}
