package telemetry

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"desword/internal/obs"
)

// TestCollectorSnapshotsRaceLiveUpdates runs the collector's tick loop at
// full speed while writers hammer every metric kind in the same registry —
// counters, gauges, histograms, and the exemplar store — and a monitor polls
// the collector concurrently. Run under -race this pins the snapshot path's
// synchronization against live updates.
func TestCollectorSnapshotsRaceLiveUpdates(t *testing.T) {
	reg := obs.NewRegistry()
	objectives, err := ParseSLO("p99(race_latency_seconds)<1h")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(reg, "race", WithInterval(time.Millisecond),
		WithRing(4), WithSLO(NewEngine(objectives, 0)))
	m := NewMonitor(WithPollInterval(time.Millisecond))
	m.AddLocal("race", c)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			events := reg.Counter("race_events_total", "e", "worker", fmt.Sprint(w))
			depth := reg.Gauge("race_depth", "d", "worker", fmt.Sprint(w))
			lat := reg.Histogram("race_latency_seconds", "l", nil, "worker", fmt.Sprint(w))
			traceID := strings.Repeat("a", 32)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				events.Inc()
				depth.Set(int64(i % 100))
				if i%7 == 0 {
					lat.ObserveWithExemplar(float64(i%50)/100, traceID)
				} else {
					lat.Observe(float64(i%50) / 100)
				}
			}
		}(w)
	}
	c.Start()
	m.Start()
	deadline := time.After(300 * time.Millisecond)
	// Readers consume snapshots and fleet status while everything churns.
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			c.Tick()
			_ = c.Stats()
			_ = m.Status()
			m.Poll(context.Background())
		}
	}
	m.Stop()
	c.Stop()
	close(stop)
	wg.Wait()

	snap := c.Latest()
	if snap == nil || len(snap.Samples) == 0 {
		t.Fatal("collector produced no snapshots")
	}
	// Snapshots taken mid-update must still be internally consistent:
	// cumulative bucket counts monotone and bounded by the series count.
	for _, s := range snap.Samples {
		if s.Kind != "histogram" {
			continue
		}
		var prev uint64
		for i, cum := range s.Cumulative {
			if cum < prev {
				t.Fatalf("series %s: cumulative buckets regress at %d: %v", s.Key(), i, s.Cumulative)
			}
			prev = cum
		}
		if prev > s.Count {
			t.Fatalf("series %s: finite buckets %d exceed count %d", s.Key(), prev, s.Count)
		}
	}
}
