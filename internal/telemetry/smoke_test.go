package telemetry_test

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"desword/internal/core"
	"desword/internal/node"
	"desword/internal/obs"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/telemetry"
	"desword/internal/trace"
	"desword/internal/zkedb"
)

// TestTelemetrySmoke is the CI end-to-end gate (make telemetry-smoke): it
// deploys a small chain over real TCP, runs traced queries, pulls every
// process's registry over the wire telemetry message into a fleet monitor,
// and asserts against the admin HTTP surface that
//
//   - /debug/statusz?format=json carries per-peer windowed stats (rates,
//     latency quantiles) and per-objective SLO states, and
//   - a slow-query exemplar's trace id resolves at /debug/traces/<id>.
//
// It lives in package telemetry_test because it imports node (which imports
// telemetry).
func TestTelemetrySmoke(t *testing.T) {
	trace.Default.SetService("smoke")
	trace.Default.SetSampleRate(1)
	defer trace.Default.SetSampleRate(0)

	// A 3-hop chain, committed and served over TCP.
	const hops = 3
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	g, parts := supplychain.LineGraph(hops)
	members := make(map[poc.ParticipantID]*core.Member, hops)
	for id, p := range parts {
		members[id] = core.NewMember(ps, p)
	}
	tags, err := supplychain.MintTags("smoke", 1)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := core.RunDistribution(ps, g, members, "p0", tags, nil, supplychain.FirstChildSplitter, "task-smoke")
	if err != nil {
		t.Fatal(err)
	}

	dir := make(map[poc.ParticipantID]string, hops)
	for id, m := range members {
		srv, err := node.ServeParticipant(context.Background(), "127.0.0.1:0", m)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		dir[id] = srv.Addr()
	}
	directory := node.DirectoryResolver(dir)
	defer directory.Close()
	proxy := core.NewProxy(ps, reputation.DefaultStrategy(), directory.Resolver())
	proxySrv, err := node.ServeProxy(context.Background(), "127.0.0.1:0", proxy)
	if err != nil {
		t.Fatal(err)
	}
	defer proxySrv.Close()
	client := node.NewProxyClient(proxySrv.Addr())
	defer client.Close()
	if err := client.RegisterList(context.Background(), "task-smoke", dist.List); err != nil {
		t.Fatal(err)
	}

	// Traced traffic: every query records a desword_query_latency_seconds
	// observation carrying its trace id as an exemplar.
	for i := 0; i < 3; i++ {
		result, err := client.QueryPath(context.Background(), poc.ProductID("smoke1"), core.Good)
		if err != nil {
			t.Fatal(err)
		}
		if len(result.Path) != hops {
			t.Fatalf("query identified %d of %d hops", len(result.Path), hops)
		}
	}

	// Fleet monitor: the proxy and every participant as wire peers, with an
	// SLO over query latency.
	objectives, err := telemetry.ParseSLO("p99(desword_query_latency_seconds)<10s")
	if err != nil {
		t.Fatal(err)
	}
	monitor := telemetry.NewMonitor(
		telemetry.WithPollInterval(50*time.Millisecond),
		telemetry.WithObjectives(objectives))
	proxyClient := node.NewProxyClient(proxySrv.Addr())
	defer proxyClient.Close()
	monitor.AddPeer("proxy", proxyClient.Telemetry)
	for id, addr := range dir {
		rc := node.NewResponderClient(addr)
		defer rc.Close()
		monitor.AddPeer(string(id), rc.Telemetry)
	}
	monitor.Poll(context.Background())

	adminSrv, err := obs.ServeAdmin("127.0.0.1:0", obs.Default,
		obs.WithRoute("/debug/statusz", telemetry.StatuszHandler(monitor)))
	if err != nil {
		t.Fatal(err)
	}
	defer adminSrv.Close()
	base := "http://" + adminSrv.Addr()

	// Fleet statusz JSON: every peer present, healthy, with SLO readings;
	// the proxy's stats must include query-latency quantiles.
	var fleet telemetry.FleetStatus
	getJSON(t, base+"/debug/statusz?format=json", &fleet)
	if len(fleet.Peers) != hops+1 {
		t.Fatalf("statusz lists %d peers, want %d", len(fleet.Peers), hops+1)
	}
	var exemplarID string
	for _, peer := range fleet.Peers {
		if peer.Error != "" {
			t.Fatalf("peer %s reports error: %s", peer.Name, peer.Error)
		}
		if len(peer.SLO) == 0 {
			t.Fatalf("peer %s has no SLO readings", peer.Name)
		}
		for _, st := range peer.SLO {
			if st.State == telemetry.StateBreach {
				t.Fatalf("peer %s breaches %s: value %v", peer.Name, st.Objective, st.Value)
			}
		}
		if peer.Name != "proxy" {
			continue
		}
		// The family has one series per query quality; only the good-path
		// series saw traffic, and it must carry quantiles and an exemplar.
		sawLatency := false
		for _, s := range peer.Stats {
			if s.Name != "desword_query_latency_seconds" || s.Count == 0 {
				continue
			}
			if s.P99 <= 0 {
				t.Fatalf("proxy query latency series lacks quantiles: %+v", s)
			}
			sawLatency = true
			for _, ex := range s.Exemplars {
				if ex.TraceID != "" {
					exemplarID = ex.TraceID
				}
			}
		}
		if !sawLatency {
			t.Fatal("proxy peer shows no populated query-latency series")
		}
	}
	if exemplarID == "" {
		t.Fatal("no query-latency exemplar with a trace id on the proxy peer")
	}

	// The exemplar must link to a resolvable trace.
	var td struct {
		TraceID string `json:"trace_id"`
		Spans   int    `json:"spans"`
	}
	getJSON(t, base+"/debug/traces/"+exemplarID, &td)
	if td.TraceID != exemplarID || td.Spans == 0 {
		t.Fatalf("exemplar trace %s did not resolve: %+v", exemplarID, td)
	}
}

// getJSON fetches url and decodes the 200 response into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}
