package telemetry

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"desword/internal/obs"
)

// The SLO engine evaluates declarative service-level objectives over the
// collector's sliding window. Two objective shapes cover the paper's service
// promises:
//
//	p99(desword_query_latency_seconds) < 500ms     — a latency quantile bound
//	ratio(desword_server_errors_total / desword_connections_total) < 0.01
//	                                               — an error-budget bound
//
// Objectives are evaluated per tick over the window between the two snapshots
// the engine is handed (all series of a family merged), and each keeps a ring
// of recent verdicts. The exported state machine:
//
//	ok     — the current window satisfies the objective
//	warn   — the current window violates it, but less than half of the
//	         lookback windows did (budget is burning, not yet burnt)
//	breach — the current window violates it and at least half of the
//	         lookback windows did (the error budget is gone)
//
// Burn is the violating fraction of the lookback ring, reported in every
// state so dashboards see budget pressure before the state flips.

// Objective states.
const (
	StateOK     = "ok"
	StateWarn   = "warn"
	StateBreach = "breach"
)

// ObjectiveKind distinguishes quantile and ratio objectives.
type ObjectiveKind int

const (
	// KindQuantile bounds a latency quantile of one histogram family.
	KindQuantile ObjectiveKind = iota + 1
	// KindRatio bounds the rate ratio of two counter families.
	KindRatio
)

// Objective is one parsed service-level objective.
type Objective struct {
	Raw       string        // the spec text, used as the display name
	Kind      ObjectiveKind //
	Metric    string        // histogram family (quantile) or numerator family (ratio)
	Denom     string        // denominator family (ratio only)
	Quantile  float64       // 0.5 / 0.9 / 0.99 (quantile only)
	Threshold float64       // seconds (quantile) or plain ratio
}

var (
	quantileRe = regexp.MustCompile(`^p(50|90|99)\(\s*([a-z_]+)\s*\)\s*<\s*(\S+)$`)
	ratioRe    = regexp.MustCompile(`^ratio\(\s*([a-z_]+)\s*/\s*([a-z_]+)\s*\)\s*<\s*(\S+)$`)
)

// ParseSLO parses a semicolon-separated objective list. An empty spec yields
// no objectives (SLO evaluation disabled).
func ParseSLO(spec string) ([]Objective, error) {
	var out []Objective
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if m := quantileRe.FindStringSubmatch(part); m != nil {
			q, _ := strconv.ParseFloat(m[1], 64)
			d, err := time.ParseDuration(m[3])
			if err != nil {
				return nil, fmt.Errorf("telemetry: objective %q: threshold %q is not a duration: %w", part, m[3], err)
			}
			out = append(out, Objective{
				Raw: part, Kind: KindQuantile, Metric: m[2],
				Quantile: q / 100, Threshold: d.Seconds(),
			})
			continue
		}
		if m := ratioRe.FindStringSubmatch(part); m != nil {
			th, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: objective %q: threshold %q is not a number: %w", part, m[3], err)
			}
			out = append(out, Objective{
				Raw: part, Kind: KindRatio, Metric: m[1], Denom: m[2], Threshold: th,
			})
			continue
		}
		return nil, fmt.Errorf("telemetry: cannot parse objective %q (want p50|p90|p99(family)<dur or ratio(a/b)<x)", part)
	}
	return out, nil
}

// ObjectiveStatus is one objective's current reading.
type ObjectiveStatus struct {
	Objective string  `json:"objective"`
	State     string  `json:"state"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Burn is the violating fraction of the lookback ring in [0,1].
	Burn float64 `json:"burn"`
}

// DefaultLookback is how many window verdicts the burn ring keeps.
const DefaultLookback = 12

// Engine evaluates a fixed objective set against successive snapshot windows.
// Safe for concurrent use: Evaluate is called by the collector/monitor tick,
// Status and Health by HTTP handlers.
type Engine struct {
	objectives []Objective
	lookback   int

	mu      sync.Mutex
	history [][]bool          // guarded by mu; per objective, newest last, ≤ lookback
	status  []ObjectiveStatus // guarded by mu
}

// NewEngine builds an engine. lookback ≤ 0 selects DefaultLookback.
func NewEngine(objectives []Objective, lookback int) *Engine {
	if lookback <= 0 {
		lookback = DefaultLookback
	}
	e := &Engine{
		objectives: objectives,
		lookback:   lookback,
		history:    make([][]bool, len(objectives)),
		status:     make([]ObjectiveStatus, len(objectives)),
	}
	for i, o := range objectives {
		e.status[i] = ObjectiveStatus{Objective: o.Raw, State: StateOK, Threshold: o.Threshold}
	}
	return e
}

// Objectives returns the engine's objective set.
func (e *Engine) Objectives() []Objective { return e.objectives }

// Evaluate scores every objective over the (prev, cur] window and returns the
// updated statuses. Objectives whose family saw no traffic in the window keep
// their previous verdict out of the burn ring (no data is not a violation,
// and not a recovery either). Newly transitioned-to-breach objectives are
// reported in the second return for profile capture.
func (e *Engine) Evaluate(prev, cur *Snapshot) (statuses []ObjectiveStatus, newBreaches []string) {
	stats := WindowStats(prev, cur)
	return e.EvaluateStats(stats)
}

// EvaluateStats is Evaluate over precomputed window stats (the collector
// already has them for statusz).
func (e *Engine) EvaluateStats(stats []SeriesStat) (statuses []ObjectiveStatus, newBreaches []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, o := range e.objectives {
		value, hasData := e.measure(o, stats)
		st := &e.status[i]
		if hasData {
			violating := value >= o.Threshold
			e.history[i] = append(e.history[i], violating)
			if len(e.history[i]) > e.lookback {
				e.history[i] = e.history[i][1:]
			}
			st.Value = value
			burnt := 0
			for _, v := range e.history[i] {
				if v {
					burnt++
				}
			}
			// Burn is measured against the full lookback capacity, so a
			// young ring cannot read as fully burnt off one bad window.
			st.Burn = float64(burnt) / float64(e.lookback)
			prevState := st.State
			switch {
			case violating && st.Burn >= 0.5:
				st.State = StateBreach
			case violating:
				st.State = StateWarn
			default:
				st.State = StateOK
			}
			if st.State == StateBreach && prevState != StateBreach {
				newBreaches = append(newBreaches, o.Raw)
			}
		}
		statuses = append(statuses, *st)
	}
	return statuses, newBreaches
}

// measure computes one objective's value from window stats, merging every
// series of the family. hasData reports whether the window carried any
// signal for the objective.
func (e *Engine) measure(o Objective, stats []SeriesStat) (value float64, hasData bool) {
	switch o.Kind {
	case KindQuantile:
		// Merge the family's series by combining their window histograms:
		// approximate by taking the count-weighted maximum quantile across
		// series — conservative (a breach in any flavour counts) and exact
		// in the common one-series case.
		var worst float64
		var count uint64
		for _, st := range stats {
			if st.Name != o.Metric || st.Kind != "histogram" || st.Count == 0 {
				continue
			}
			count += st.Count
			q := st.P50
			switch o.Quantile {
			case 0.9:
				q = st.P90
			case 0.99:
				q = st.P99
			}
			if q > worst {
				worst = q
			}
		}
		return worst, count > 0
	case KindRatio:
		var num, den float64
		var sawDen bool
		for _, st := range stats {
			if st.Kind != "counter" && st.Kind != "histogram" {
				continue
			}
			delta := st.Delta
			if st.Kind == "histogram" {
				delta = float64(st.Count)
			}
			if st.Name == o.Metric {
				num += delta
			}
			if st.Name == o.Denom {
				den += delta
				sawDen = true
			}
		}
		if !sawDen || den == 0 {
			// No denominator traffic: nothing happened, nothing violated.
			return 0, false
		}
		return num / den, true
	default:
		return 0, false
	}
}

// Status returns the latest per-objective readings.
func (e *Engine) Status() []ObjectiveStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]ObjectiveStatus(nil), e.status...)
}

// Health adapts the engine to the admin listener's health hook: not-OK as
// soon as any objective is in breach, with the full per-objective detail.
func (e *Engine) Health() obs.HealthReport {
	status := e.Status()
	ok := true
	for _, st := range status {
		if st.State == StateBreach {
			ok = false
		}
	}
	return obs.HealthReport{OK: ok, Detail: status}
}
