package poc

import (
	"errors"
	"fmt"
	"sort"
)

// This file implements the POC list of §IV.B: a sub-digraph whose vertices
// store the POCs of the participants involved in one distribution task. The
// initial participant composes it from the POC pairs its descendants send up
// and submits it to the proxy as (ps, {(POC_vi, POC_vj)}).

// Errors reported by List operations.
var (
	ErrUnknownParticipant = errors.New("poc: participant not in POC list")
	ErrDuplicatePOC       = errors.New("poc: participant already has a POC in the list")
	ErrDanglingPair       = errors.New("poc: POC pair references a participant without a POC")
)

// Pair records the parent→child relation between two POCs: the paper's POC
// pair (POC_vi, POC_vj) with vi the parent of vj.
type Pair struct {
	Parent ParticipantID `json:"parent"`
	Child  ParticipantID `json:"child"`
}

// List is the POC list for one distribution task.
type List struct {
	POCs  map[ParticipantID]POC `json:"pocs"`
	Pairs []Pair                `json:"pairs"`
}

// NewList returns an empty POC list.
func NewList() *List {
	return &List{POCs: make(map[ParticipantID]POC)}
}

// AddPOC inserts a participant's POC. Each participant appears at most once
// per distribution task.
func (l *List) AddPOC(credential POC) error {
	if _, exists := l.POCs[credential.Participant]; exists {
		return fmt.Errorf("%w: %s", ErrDuplicatePOC, credential.Participant)
	}
	l.POCs[credential.Participant] = credential
	return nil
}

// AddPair records that parent distributed products to child in this task.
func (l *List) AddPair(parent, child ParticipantID) {
	l.Pairs = append(l.Pairs, Pair{Parent: parent, Child: child})
}

// POC returns the credential of a participant.
func (l *List) POC(v ParticipantID) (POC, error) {
	credential, ok := l.POCs[v]
	if !ok {
		return POC{}, fmt.Errorf("%w: %s", ErrUnknownParticipant, v)
	}
	return credential, nil
}

// Has reports whether the participant has a POC in the list.
func (l *List) Has(v ParticipantID) bool {
	_, ok := l.POCs[v]
	return ok
}

// HasPair reports whether the list records child as a child of parent — the
// check the proxy runs when a queried participant names the next hop
// (§III.B, "return the identity of a wrong participant", case 2).
func (l *List) HasPair(parent, child ParticipantID) bool {
	for _, p := range l.Pairs {
		if p.Parent == parent && p.Child == child {
			return true
		}
	}
	return false
}

// Children returns the recorded children of a participant, sorted for
// determinism.
func (l *List) Children(parent ParticipantID) []ParticipantID {
	var out []ParticipantID
	for _, p := range l.Pairs {
		if p.Parent == parent {
			out = append(out, p.Child)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parents returns the recorded parents of a participant, sorted for
// determinism.
func (l *List) Parents(child ParticipantID) []ParticipantID {
	var out []ParticipantID
	for _, p := range l.Pairs {
		if p.Child == child {
			out = append(out, p.Parent)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Participants returns every participant holding a POC, sorted.
func (l *List) Participants() []ParticipantID {
	out := make([]ParticipantID, 0, len(l.POCs))
	for v := range l.POCs {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Initials returns the participants with no incoming pair — the initial
// participants of the distribution task.
func (l *List) Initials() []ParticipantID {
	hasParent := make(map[ParticipantID]bool)
	for _, p := range l.Pairs {
		hasParent[p.Child] = true
	}
	var out []ParticipantID
	for v := range l.POCs {
		if !hasParent[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks structural integrity: every pair endpoint must hold a POC
// and no pair may be self-referential.
func (l *List) Validate() error {
	for _, p := range l.Pairs {
		if p.Parent == p.Child {
			return fmt.Errorf("poc: self-loop at %s", p.Parent)
		}
		if !l.Has(p.Parent) {
			return fmt.Errorf("%w: parent %s", ErrDanglingPair, p.Parent)
		}
		if !l.Has(p.Child) {
			return fmt.Errorf("%w: child %s", ErrDanglingPair, p.Child)
		}
	}
	return nil
}
