package poc

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// countProofs installs a hook counting underlying proof computations on dp.
func countProofs(dp *DPOC) *atomic.Int64 {
	var n atomic.Int64
	dp.proveHook = func() { n.Add(1) }
	return &n
}

// TestProveSingleFlight pins the cache's headline guarantee: N concurrent
// Prove calls for one product id run the underlying proof computation at
// most once, and every caller gets the same proof.
func TestProveSingleFlight(t *testing.T) {
	ps := testPS(t)
	_, dpoc, err := Agg(ps, "v1", sampleTraces("v1", 2), AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	computed := countProofs(dpoc)

	const callers = 16
	var (
		start  = make(chan struct{})
		wg     sync.WaitGroup
		proofs [callers]*Proof
		errs   [callers]error
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			proofs[i], errs[i] = dpoc.Prove(context.Background(), "id-00")
		}(i)
	}
	close(start)
	wg.Wait()

	if got := computed.Load(); got != 1 {
		t.Errorf("underlying computation ran %d times, want 1", got)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if proofs[i] != proofs[0] {
			t.Errorf("caller %d received a different proof object", i)
		}
	}
}

// TestProveCacheHit pins that sequential repeats are served from cache while
// distinct ids each compute once.
func TestProveCacheHit(t *testing.T) {
	ps := testPS(t)
	_, dpoc, err := Agg(ps, "v1", sampleTraces("v1", 2), AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	computed := countProofs(dpoc)
	hits0 := cacheMetrics().hits.Value()

	for i := 0; i < 3; i++ {
		if _, err := dpoc.Prove(context.Background(), "id-00"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dpoc.Prove(context.Background(), "id-01"); err != nil {
		t.Fatal(err)
	}
	if got := computed.Load(); got != 2 {
		t.Errorf("computed %d proofs, want 2 (one per distinct id)", got)
	}
	if gotHits := cacheMetrics().hits.Value() - hits0; gotHits != 2 {
		t.Errorf("hit counter advanced by %d, want 2", gotHits)
	}
}

// TestProveCacheDisabled pins the AggOptions escape hatch: a negative cache
// size recomputes on every call.
func TestProveCacheDisabled(t *testing.T) {
	ps := testPS(t)
	_, dpoc, err := Agg(ps, "v1", sampleTraces("v1", 1), AggOptions{ProofCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	computed := countProofs(dpoc)
	for i := 0; i < 3; i++ {
		if _, err := dpoc.Prove(context.Background(), "id-00"); err != nil {
			t.Fatal(err)
		}
	}
	if got := computed.Load(); got != 3 {
		t.Errorf("computed %d proofs with cache disabled, want 3", got)
	}
}

// TestProveCacheEviction pins the LRU bound: a size-1 cache holds one entry,
// so alternating ids keep evicting and recomputing.
func TestProveCacheEviction(t *testing.T) {
	ps := testPS(t)
	_, dpoc, err := Agg(ps, "v1", sampleTraces("v1", 2), AggOptions{ProofCacheSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	computed := countProofs(dpoc)
	evictions0 := cacheMetrics().evictions.Value()

	for _, id := range []ProductID{"id-00", "id-01", "id-00"} {
		if _, err := dpoc.Prove(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	if got := computed.Load(); got != 3 {
		t.Errorf("computed %d proofs, want 3 (size-1 cache thrashes)", got)
	}
	if got := cacheMetrics().evictions.Value() - evictions0; got != 2 {
		t.Errorf("eviction counter advanced by %d, want 2", got)
	}
	if got := dpoc.cache.Load().len(); got != 1 {
		t.Errorf("cache holds %d entries, want 1", got)
	}
}

// TestProveErrorNotCached pins that a failed computation is not memoized: a
// Prove cancelled mid-flight must not poison the id for later callers.
func TestProveErrorNotCached(t *testing.T) {
	ps := testPS(t)
	_, dpoc, err := Agg(ps, "v1", sampleTraces("v1", 1), AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dpoc.Prove(cancelled, "id-00"); err == nil {
		t.Fatal("Prove with cancelled ctx succeeded")
	}
	if got := dpoc.cache.Load().len(); got != 0 {
		t.Fatalf("failed computation left %d cache entries", got)
	}
	if _, err := dpoc.Prove(context.Background(), "id-00"); err != nil {
		t.Fatalf("Prove after failed leader: %v", err)
	}
}
