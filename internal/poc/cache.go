package poc

import (
	"container/list"
	"sync"

	"desword/internal/obs"
)

// DefaultProofCacheSize bounds the per-DPOC proof cache when
// AggOptions.ProofCacheSize is left at zero.
const DefaultProofCacheSize = 128

// cacheCounters are the process-wide proof-cache metrics. Hits count proofs
// served without recomputation, misses count leader computations, evictions
// count LRU removals. They aggregate across every DPOC in the process.
type cacheCounters struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

var cacheMetrics = sync.OnceValue(func() *cacheCounters {
	return &cacheCounters{
		hits: obs.Default.Counter("desword_proofcache_hits",
			"POC proof cache hits: proofs served without recomputing the mercurial openings."),
		misses: obs.Default.Counter("desword_proofcache_misses",
			"POC proof cache misses: proofs computed and inserted by a single-flight leader."),
		evictions: obs.Default.Counter("desword_proofcache_evictions",
			"POC proof cache LRU evictions."),
	}
})

// proofCache is a bounded single-flight LRU over product ids. The first
// Prove for an id becomes the leader and computes; concurrent followers park
// on the entry's ready channel and share the result, so N simultaneous
// demands for one hot product cost one proof computation. Entries never go
// stale within a DPOC: the decommitment tree is immutable after Agg, so
// invalidation is structural — committing new task state mints a new DPOC
// and with it a fresh cache (DESIGN §10).
type proofCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[ProductID]*list.Element
}

// cacheEntry is one id's slot. proof/err are written once by the leader
// before ready is closed; followers read them only after <-ready.
type cacheEntry struct {
	id    ProductID
	ready chan struct{}
	proof *Proof
	err   error
}

// newProofCache translates the AggOptions knob: 0 selects the default size,
// negative disables caching entirely.
func newProofCache(size int) *proofCache {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = DefaultProofCacheSize
	}
	return &proofCache{
		max:     size,
		ll:      list.New(),
		entries: make(map[ProductID]*list.Element),
	}
}

// getOrLead returns the entry for id and whether the caller is its leader.
// Leaders must compute the proof and publish it via finish; followers wait
// on entry.ready. Inserting may evict the least recently used entries —
// including in-flight ones, whose waiters keep their reference and are
// unaffected.
func (pc *proofCache) getOrLead(id ProductID) (*cacheEntry, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[id]; ok {
		pc.ll.MoveToFront(el)
		return el.Value.(*cacheEntry), false
	}
	ent := &cacheEntry{id: id, ready: make(chan struct{})}
	el := pc.ll.PushFront(ent)
	pc.entries[id] = el
	for pc.ll.Len() > pc.max {
		oldest := pc.ll.Back()
		if oldest == el {
			break
		}
		pc.ll.Remove(oldest)
		delete(pc.entries, oldest.Value.(*cacheEntry).id)
		cacheMetrics().evictions.Inc()
	}
	return ent, true
}

// finish publishes the leader's result and wakes the followers. Failed
// computations are removed from the cache so the next Prove for the id
// retries instead of replaying the error forever.
func (pc *proofCache) finish(ent *cacheEntry, proof *Proof, err error) {
	pc.mu.Lock()
	ent.proof, ent.err = proof, err
	if err != nil {
		if el, ok := pc.entries[ent.id]; ok && el.Value == ent {
			pc.ll.Remove(el)
			delete(pc.entries, ent.id)
		}
	}
	pc.mu.Unlock()
	close(ent.ready)
}

// len reports the current entry count, for tests.
func (pc *proofCache) len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.ll.Len()
}
