package poc

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"desword/internal/zkedb"
)

var _testPS *PublicParams

func testPS(t *testing.T) *PublicParams {
	t.Helper()
	if _testPS == nil {
		ps, err := PSGen(zkedb.TestParams())
		if err != nil {
			t.Fatalf("PSGen: %v", err)
		}
		_testPS = ps
	}
	return _testPS
}

func sampleTraces(v ParticipantID, n int) []Trace {
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Trace{
			Product: ProductID(fmt.Sprintf("id-%02d", i)),
			Data:    []byte(fmt.Sprintf("%s processed id-%02d at station 7", v, i)),
		})
	}
	return out
}

func TestAggProveVerifyOwnership(t *testing.T) {
	ps := testPS(t)
	traces := sampleTraces("v1", 5)
	credential, dpoc, err := Agg(ps, "v1", traces, AggOptions{})
	if err != nil {
		t.Fatalf("Agg: %v", err)
	}
	if credential.Participant != "v1" {
		t.Fatal("POC must carry the participant identity")
	}
	for _, tr := range traces {
		proof, err := dpoc.Prove(context.Background(), tr.Product)
		if err != nil {
			t.Fatalf("Prove(%s): %v", tr.Product, err)
		}
		if proof.Kind != Ownership {
			t.Fatalf("expected ownership proof for %s", tr.Product)
		}
		got, err := Verify(context.Background(), ps, credential, tr.Product, proof)
		if err != nil {
			t.Fatalf("Verify(%s): %v", tr.Product, err)
		}
		if got == nil || got.Product != tr.Product || string(got.Data) != string(tr.Data) {
			t.Fatalf("Verify(%s) recovered wrong trace %+v", tr.Product, got)
		}
	}
}

func TestAggProveVerifyNonOwnership(t *testing.T) {
	ps := testPS(t)
	credential, dpoc, err := Agg(ps, "v1", sampleTraces("v1", 3), AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dpoc.Prove(context.Background(), "unprocessed-product")
	if err != nil {
		t.Fatal(err)
	}
	if proof.Kind != NonOwnership {
		t.Fatal("expected non-ownership proof")
	}
	got, err := Verify(context.Background(), ps, credential, "unprocessed-product", proof)
	if err != nil {
		t.Fatalf("valid non-ownership proof must verify: %v", err)
	}
	if got != nil {
		t.Fatal("non-ownership verification must not return a trace")
	}
}

func TestEmptyTraceSet(t *testing.T) {
	ps := testPS(t)
	credential, dpoc, err := Agg(ps, "leafless", nil, AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dpoc.Prove(context.Background(), "anything")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(context.Background(), ps, credential, "anything", proof); err != nil {
		t.Fatalf("empty POC must prove non-ownership of everything: %v", err)
	}
}

func TestDuplicateTraceRejected(t *testing.T) {
	ps := testPS(t)
	traces := []Trace{
		{Product: "dup", Data: []byte("a")},
		{Product: "dup", Data: []byte("b")},
	}
	if _, _, err := Agg(ps, "v1", traces, AggOptions{}); err == nil {
		t.Fatal("duplicate product ids must be rejected")
	}
}

func TestVerifyRejectsKindMismatch(t *testing.T) {
	ps := testPS(t)
	credential, dpoc, err := Agg(ps, "v1", sampleTraces("v1", 2), AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dpoc.Prove(context.Background(), "id-00")
	if err != nil {
		t.Fatal(err)
	}
	proof.Kind = NonOwnership // lie about the kind
	if _, err := Verify(context.Background(), ps, credential, "id-00", proof); err == nil {
		t.Fatal("relabeled proof kind must be rejected")
	}
	if _, err := Verify(context.Background(), ps, credential, "id-00", nil); err == nil {
		t.Fatal("nil proof must be rejected")
	}
	if _, err := Verify(context.Background(), ps, credential, "id-00", &Proof{Kind: ProofKind(5), ZK: proof.ZK}); err == nil {
		t.Fatal("unknown proof kind must be rejected")
	}
}

func TestVerifyRejectsCrossParticipantProof(t *testing.T) {
	// Claim 2 in action at the POC layer: v2 cannot answer a query with v1's
	// proof because the POC commits to the participant's own database.
	ps := testPS(t)
	_, dpoc1, err := Agg(ps, "v1", sampleTraces("v1", 2), AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	poc2, _, err := Agg(ps, "v2", sampleTraces("v2", 2), AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dpoc1.Prove(context.Background(), "id-00")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(context.Background(), ps, poc2, "id-00", proof); err == nil {
		t.Fatal("a proof against v1's POC must not verify against v2's")
	}
}

func TestProofKindString(t *testing.T) {
	if Ownership.String() != "Ow-proof" || NonOwnership.String() != "Now-proof" {
		t.Fatal("proof kind strings must match the paper's prefixes")
	}
	if ProofKind(9).String() == "" {
		t.Fatal("unknown kinds must render non-empty")
	}
}

func TestListAddAndLookup(t *testing.T) {
	ps := testPS(t)
	list := NewList()
	for _, v := range []ParticipantID{"v0", "v2", "v5"} {
		credential, _, err := Agg(ps, v, sampleTraces(v, 1), AggOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := list.AddPOC(credential); err != nil {
			t.Fatal(err)
		}
	}
	list.AddPair("v0", "v2")
	list.AddPair("v2", "v5")
	if err := list.Validate(); err != nil {
		t.Fatalf("valid list must validate: %v", err)
	}
	if !list.HasPair("v0", "v2") || list.HasPair("v2", "v0") {
		t.Fatal("HasPair must respect direction")
	}
	if got := list.Children("v0"); len(got) != 1 || got[0] != "v2" {
		t.Fatalf("Children(v0) = %v", got)
	}
	if got := list.Parents("v5"); len(got) != 1 || got[0] != "v2" {
		t.Fatalf("Parents(v5) = %v", got)
	}
	if got := list.Initials(); len(got) != 1 || got[0] != "v0" {
		t.Fatalf("Initials() = %v", got)
	}
	if got := list.Participants(); len(got) != 3 {
		t.Fatalf("Participants() = %v", got)
	}
	if _, err := list.POC("v2"); err != nil {
		t.Fatal(err)
	}
	if _, err := list.POC("missing"); err == nil {
		t.Fatal("missing participant must error")
	}
}

func TestListRejectsDuplicatesAndDangling(t *testing.T) {
	ps := testPS(t)
	list := NewList()
	credential, _, err := Agg(ps, "v0", nil, AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := list.AddPOC(credential); err != nil {
		t.Fatal(err)
	}
	if err := list.AddPOC(credential); err == nil {
		t.Fatal("duplicate POC must be rejected")
	}
	list.AddPair("v0", "ghost")
	if err := list.Validate(); err == nil {
		t.Fatal("dangling pair must fail validation")
	}
	list.Pairs = []Pair{{Parent: "v0", Child: "v0"}}
	if err := list.Validate(); err == nil {
		t.Fatal("self-loop must fail validation")
	}
}

func TestDPOCPersistence(t *testing.T) {
	ps := testPS(t)
	traces := sampleTraces("v1", 3)
	credential, dpoc, err := Agg(ps, "v1", traces, AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(dpoc)
	if err != nil {
		t.Fatalf("marshal DPOC: %v", err)
	}
	restored, err := RestoreDPOC(ps, data)
	if err != nil {
		t.Fatalf("restore DPOC: %v", err)
	}
	if restored.Participant != "v1" {
		t.Fatalf("restored participant = %s", restored.Participant)
	}
	// Proofs from the restored DPOC must verify against the original POC.
	proof, err := restored.Prove(context.Background(), "id-01")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Verify(context.Background(), ps, credential, "id-01", proof)
	if err != nil || got == nil {
		t.Fatalf("restored ownership proof failed: %v", err)
	}
	absent, err := restored.Prove(context.Background(), "never-processed")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(context.Background(), ps, credential, "never-processed", absent); err != nil {
		t.Fatalf("restored non-ownership proof failed: %v", err)
	}
}

func TestRestoreDPOCRejectsGarbage(t *testing.T) {
	ps := testPS(t)
	if _, err := RestoreDPOC(ps, []byte("junk")); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, err := RestoreDPOC(ps, []byte(`{"participant":"x","state":{}}`)); err == nil {
		t.Fatal("empty state must be rejected")
	}
}
