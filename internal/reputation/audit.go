package reputation

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"desword/internal/supplychain"
)

// This file makes the public ledger tamber-evident. The paper's incentive
// rests on scores being "publicly accessed by customers" (§II.C): a customer
// who cannot audit the score history has to trust the proxy's database
// blindly. Every adjustment is therefore chained into a running hash, so any
// retroactive edit, deletion or reordering of the history invalidates every
// later digest.

// ErrAuditChain reports a broken audit chain.
var ErrAuditChain = errors.New("reputation: audit chain broken")

// AuditEntry is one chained ledger event: digest_i = H(digest_{i-1} ‖ seq ‖
// canonical(event)).
type AuditEntry struct {
	Seq    uint64   `json:"seq"`
	Event  Event    `json:"event"`
	Digest [32]byte `json:"digest"`
}

// chainDigest computes the entry digest from the previous digest.
func chainDigest(prev [32]byte, seq uint64, e Event) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seq)
	h.Write(buf[:])
	writeField := func(s string) {
		binary.BigEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	writeField(string(e.Participant))
	writeField(string(e.Product))
	writeField(e.Reason)
	binary.BigEndian.PutUint64(buf[:], uint64(e.Quality))
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(int64(e.Delta*1e9)))
	h.Write(buf[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// AuditLog returns a copy of the chained history.
func (l *Ledger) AuditLog() []AuditEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]AuditEntry, len(l.audit))
	copy(out, l.audit)
	return out
}

// Head returns the latest chain digest and the number of entries; customers
// pin it (e.g. from a newspaper ad or transparency service) and audit any
// published history against it.
func (l *Ledger) Head() ([32]byte, uint64) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.audit) == 0 {
		return [32]byte{}, 0
	}
	last := l.audit[len(l.audit)-1]
	return last.Digest, last.Seq + 1
}

// VerifyAuditChain re-derives every digest of a published history and checks
// it reaches the pinned head. It is a pure function: customers run it
// without trusting the proxy.
func VerifyAuditChain(entries []AuditEntry, head [32]byte, count uint64) error {
	if uint64(len(entries)) != count {
		return fmt.Errorf("%w: %d entries, head pins %d", ErrAuditChain, len(entries), count)
	}
	var prev [32]byte
	for i, entry := range entries {
		if entry.Seq != uint64(i) {
			return fmt.Errorf("%w: entry %d carries seq %d", ErrAuditChain, i, entry.Seq)
		}
		want := chainDigest(prev, entry.Seq, entry.Event)
		if entry.Digest != want {
			return fmt.Errorf("%w: digest mismatch at entry %d", ErrAuditChain, i)
		}
		prev = entry.Digest
	}
	if count == 0 {
		if head != ([32]byte{}) {
			return fmt.Errorf("%w: empty history with nonzero head", ErrAuditChain)
		}
		return nil
	}
	if prev != head {
		return fmt.Errorf("%w: final digest does not reach the pinned head", ErrAuditChain)
	}
	return nil
}

// ShardChain is one shard ledger's published audit history: a sharded proxy
// settles each product's awards on the ledger of the shard owning the
// product, so the public history is a set of independent chains, one per
// shard. Each chain verifies on its own with VerifyAuditChain; the union of
// the replayed chains yields the public score table (awards are additive, so
// partition order does not matter).
type ShardChain struct {
	Shard   int          `json:"shard"`
	Entries []AuditEntry `json:"entries"`
	Head    [32]byte     `json:"head"`
	Count   uint64       `json:"count"`
}

// VerifyShardChains verifies every shard chain independently and returns the
// merged replayed score table.
func VerifyShardChains(chains []ShardChain) (map[supplychain.ParticipantID]float64, error) {
	out := make(map[supplychain.ParticipantID]float64)
	for _, c := range chains {
		if err := VerifyAuditChain(c.Entries, c.Head, c.Count); err != nil {
			return nil, fmt.Errorf("shard %d: %w", c.Shard, err)
		}
		for v, s := range ReplayScores(c.Entries) {
			out[v] += s
		}
	}
	return out, nil
}

// ReplayScores recomputes the score table implied by a verified history, so
// a customer can check the proxy's published scores against the audited
// events.
func ReplayScores(entries []AuditEntry) map[supplychain.ParticipantID]float64 {
	out := make(map[supplychain.ParticipantID]float64)
	for _, entry := range entries {
		out[entry.Event.Participant] += entry.Event.Delta
	}
	return out
}
