package reputation

import (
	"math"
	"testing"
)

func buildAuditedLedger() *Ledger {
	l := NewLedger()
	l.Adjust(Event{Participant: "a", Product: "p1", Quality: Good, Delta: 1, Reason: "good path"})
	l.Adjust(Event{Participant: "b", Product: "p1", Quality: Good, Delta: 1, Reason: "good path"})
	l.Adjust(Event{Participant: "a", Product: "p2", Quality: Bad, Delta: -1, Reason: "bad path"})
	l.Adjust(Event{Participant: "c", Product: "p2", Quality: Bad, Delta: -5, Reason: "violation: lied"})
	return l
}

func TestAuditChainVerifies(t *testing.T) {
	l := buildAuditedLedger()
	head, count := l.Head()
	if count != 4 {
		t.Fatalf("count = %d", count)
	}
	if err := VerifyAuditChain(l.AuditLog(), head, count); err != nil {
		t.Fatalf("honest history must verify: %v", err)
	}
}

func TestAuditChainEmptyLedger(t *testing.T) {
	l := NewLedger()
	head, count := l.Head()
	if count != 0 {
		t.Fatalf("count = %d", count)
	}
	if err := VerifyAuditChain(nil, head, 0); err != nil {
		t.Fatalf("empty history must verify: %v", err)
	}
	if err := VerifyAuditChain(nil, [32]byte{1}, 0); err == nil {
		t.Fatal("nonzero head with empty history must fail")
	}
}

func TestAuditChainDetectsTamperedDelta(t *testing.T) {
	l := buildAuditedLedger()
	head, count := l.Head()
	entries := l.AuditLog()
	entries[2].Event.Delta = +1 // flip the penalty into a reward
	if err := VerifyAuditChain(entries, head, count); err == nil {
		t.Fatal("tampered delta must break the chain")
	}
}

func TestAuditChainDetectsDeletion(t *testing.T) {
	l := buildAuditedLedger()
	head, count := l.Head()
	entries := l.AuditLog()
	// Drop the violation entry.
	shortened := entries[:3:3]
	if err := VerifyAuditChain(shortened, head, count); err == nil {
		t.Fatal("deleted entry must break the chain")
	}
	if err := VerifyAuditChain(shortened, shortened[2].Digest, 3); err != nil {
		t.Fatal("prefix must verify against its own head — truncation is only caught by head pinning")
	}
}

func TestAuditChainDetectsReordering(t *testing.T) {
	l := buildAuditedLedger()
	head, count := l.Head()
	entries := l.AuditLog()
	entries[0], entries[1] = entries[1], entries[0]
	if err := VerifyAuditChain(entries, head, count); err == nil {
		t.Fatal("reordered entries must break the chain")
	}
}

func TestAuditChainDetectsForgedSeq(t *testing.T) {
	l := buildAuditedLedger()
	head, count := l.Head()
	entries := l.AuditLog()
	entries[1].Seq = 7
	if err := VerifyAuditChain(entries, head, count); err == nil {
		t.Fatal("forged sequence number must break the chain")
	}
}

func TestReplayScoresMatchesLedger(t *testing.T) {
	l := buildAuditedLedger()
	replayed := ReplayScores(l.AuditLog())
	for v, want := range l.Scores() {
		if got := replayed[v]; math.Abs(got-want) > 1e-9 {
			t.Fatalf("replayed score for %s = %v, want %v", v, got, want)
		}
	}
}
