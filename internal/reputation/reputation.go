// Package reputation implements DE-Sword's double-edged reputation award
// strategy (§II.C, Figure 2): after a product path information query, the
// trusted proxy assigns positive reputation scores to the identified
// participants when the queried product is good, and negative scores when it
// is bad. Scores are public — customers read them — which is what makes the
// incentive bind.
//
// The package provides the score ledger, configurable award strategies
// (including the paper's "diverse positive/negative reputation scores based
// on the responsibilities of the identified participants"), and violation
// penalties for participants caught cheating during a query.
package reputation

import (
	"fmt"
	"sort"
	"sync"

	"desword/internal/obs"
	"desword/internal/supplychain"
)

// Award counters by sign: every ledger adjustment — path awards and
// violation penalties alike — lands in exactly one of these, so an operator
// can watch the double edge cut in real time.
var (
	mAwardsPositive = obs.Default.Counter("desword_reputation_awards_total",
		"Reputation ledger adjustments by sign.", "sign", "positive")
	mAwardsNegative = obs.Default.Counter("desword_reputation_awards_total",
		"Reputation ledger adjustments by sign.", "sign", "negative")
)

// Quality classifies a queried product. Products are usually good and
// occasionally bad — the unpredictability that powers the double edge.
type Quality int

// Quality values start at 1 so the zero value is invalid.
const (
	Good Quality = iota + 1
	Bad
)

// String implements fmt.Stringer.
func (q Quality) String() string {
	switch q {
	case Good:
		return "good"
	case Bad:
		return "bad"
	default:
		return fmt.Sprintf("Quality(%d)", int(q))
	}
}

// Event records one reputation adjustment, for public audit.
type Event struct {
	Participant supplychain.ParticipantID `json:"participant"`
	Product     supplychain.ProductID     `json:"product"`
	Quality     Quality                   `json:"quality"`
	Delta       float64                   `json:"delta"`
	Reason      string                    `json:"reason"`
}

// Ledger holds publicly accessible reputation scores. Safe for concurrent
// use.
type Ledger struct {
	mu     sync.RWMutex
	scores map[supplychain.ParticipantID]float64 // guarded by mu
	events []Event                               // guarded by mu
	audit  []AuditEntry                          // guarded by mu
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{scores: make(map[supplychain.ParticipantID]float64)}
}

// Adjust applies a score delta, records the audit event, and extends the
// tamper-evident hash chain.
func (l *Ledger) Adjust(e Event) {
	switch {
	case e.Delta > 0:
		mAwardsPositive.Inc()
	case e.Delta < 0:
		mAwardsNegative.Inc()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.scores[e.Participant] += e.Delta
	l.events = append(l.events, e)
	var prev [32]byte
	if n := len(l.audit); n > 0 {
		prev = l.audit[n-1].Digest
	}
	seq := uint64(len(l.audit))
	l.audit = append(l.audit, AuditEntry{
		Seq:    seq,
		Event:  e,
		Digest: chainDigest(prev, seq, e),
	})
}

// Score returns a participant's current reputation score.
func (l *Ledger) Score(v supplychain.ParticipantID) float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.scores[v]
}

// Scores returns a copy of all scores.
func (l *Ledger) Scores() map[supplychain.ParticipantID]float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[supplychain.ParticipantID]float64, len(l.scores))
	for k, v := range l.scores {
		out[k] = v
	}
	return out
}

// Events returns a copy of the audit log.
func (l *Ledger) Events() []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Ranking returns participants ordered by descending score (ties broken by
// id), the view a customer would consult.
func (l *Ledger) Ranking() []supplychain.ParticipantID {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]supplychain.ParticipantID, 0, len(l.scores))
	for v := range l.scores {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := l.scores[out[i]], l.scores[out[j]]
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// Weigher scales the award for the participant at position pos (0-based) of
// an identified path of length n, modelling "diverse reputation scores based
// on the responsibilities of the identified participants".
type Weigher func(pos, n int) float64

// UniformWeigher treats every participant on the path equally.
func UniformWeigher(pos, n int) float64 { return 1 }

// ResponsibilityWeigher weights upstream participants more heavily: the
// earlier a participant processed a bad product, the more of the path it
// contaminated (and symmetrically, the more of a good product's quality it
// established). Weights fall linearly from 1 at the head to 1/n at the tail.
func ResponsibilityWeigher(pos, n int) float64 {
	if n <= 0 {
		return 1
	}
	return float64(n-pos) / float64(n)
}

// Strategy is the proxy's double-edged award policy.
type Strategy struct {
	// PositiveUnit is the base score for each identified participant of a
	// good product's path.
	PositiveUnit float64
	// NegativeUnit is the base (positive-valued) penalty for each identified
	// participant of a bad product's path.
	NegativeUnit float64
	// ViolationPenalty is the extra penalty for a participant caught
	// cheating during the query itself.
	ViolationPenalty float64
	// Weigh scales awards by path responsibility; nil means uniform.
	Weigh Weigher
}

// DefaultStrategy mirrors the paper's symmetric double edge with a stiff
// penalty for detected protocol violations.
func DefaultStrategy() Strategy {
	return Strategy{PositiveUnit: 1, NegativeUnit: 1, ViolationPenalty: 5, Weigh: UniformWeigher}
}

// AwardPath applies the double-edged award to an identified path: positive
// scores for a good product, negative scores for a bad one (Figure 2).
func (s Strategy) AwardPath(l *Ledger, id supplychain.ProductID, q Quality, path []supplychain.ParticipantID) {
	weigh := s.Weigh
	if weigh == nil {
		weigh = UniformWeigher
	}
	for pos, v := range path {
		w := weigh(pos, len(path))
		var e Event
		switch q {
		case Good:
			e = Event{Participant: v, Product: id, Quality: q,
				Delta: s.PositiveUnit * w, Reason: "identified on good product path"}
		case Bad:
			e = Event{Participant: v, Product: id, Quality: q,
				Delta: -s.NegativeUnit * w, Reason: "identified on bad product path"}
		default:
			continue
		}
		l.Adjust(e)
	}
}

// PenalizeViolation applies the extra penalty for a participant whose
// dishonest behaviour was cryptographically detected during a query.
func (s Strategy) PenalizeViolation(l *Ledger, v supplychain.ParticipantID, id supplychain.ProductID, q Quality, reason string) {
	l.Adjust(Event{Participant: v, Product: id, Quality: q,
		Delta: -s.ViolationPenalty, Reason: "violation: " + reason})
}
