package reputation

import (
	"math"
	"sync"
	"testing"

	"desword/internal/supplychain"
)

func TestLedgerAdjustAndScore(t *testing.T) {
	l := NewLedger()
	l.Adjust(Event{Participant: "v1", Delta: 2})
	l.Adjust(Event{Participant: "v1", Delta: -0.5})
	l.Adjust(Event{Participant: "v2", Delta: 1})
	if got := l.Score("v1"); got != 1.5 {
		t.Fatalf("Score(v1) = %v", got)
	}
	if got := l.Score("unknown"); got != 0 {
		t.Fatalf("unknown participant must score 0, got %v", got)
	}
	if len(l.Events()) != 3 {
		t.Fatalf("Events() = %d entries", len(l.Events()))
	}
}

func TestLedgerScoresCopy(t *testing.T) {
	l := NewLedger()
	l.Adjust(Event{Participant: "v1", Delta: 1})
	scores := l.Scores()
	scores["v1"] = 99
	if l.Score("v1") != 1 {
		t.Fatal("Scores() must return a copy")
	}
}

func TestLedgerRanking(t *testing.T) {
	l := NewLedger()
	l.Adjust(Event{Participant: "low", Delta: -1})
	l.Adjust(Event{Participant: "high", Delta: 3})
	l.Adjust(Event{Participant: "mid", Delta: 1})
	l.Adjust(Event{Participant: "mid2", Delta: 1})
	rank := l.Ranking()
	if rank[0] != "high" || rank[len(rank)-1] != "low" {
		t.Fatalf("Ranking() = %v", rank)
	}
	// Ties broken by id.
	if rank[1] != "mid" || rank[2] != "mid2" {
		t.Fatalf("tie break wrong: %v", rank)
	}
}

func TestLedgerConcurrentAdjust(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Adjust(Event{Participant: "v", Delta: 1})
			}
		}()
	}
	wg.Wait()
	if got := l.Score("v"); got != 1600 {
		t.Fatalf("Score(v) = %v, want 1600", got)
	}
}

func TestAwardPathDoubleEdge(t *testing.T) {
	s := DefaultStrategy()
	path := []supplychain.ParticipantID{"a", "b", "c"}

	good := NewLedger()
	s.AwardPath(good, "id1", Good, path)
	for _, v := range path {
		if good.Score(v) <= 0 {
			t.Fatalf("good product must award positive score to %s", v)
		}
	}

	bad := NewLedger()
	s.AwardPath(bad, "id1", Bad, path)
	for _, v := range path {
		if bad.Score(v) >= 0 {
			t.Fatalf("bad product must award negative score to %s", v)
		}
	}
}

func TestAwardPathUnknownQualityNoop(t *testing.T) {
	s := DefaultStrategy()
	l := NewLedger()
	s.AwardPath(l, "id1", Quality(0), []supplychain.ParticipantID{"a"})
	if len(l.Events()) != 0 {
		t.Fatal("unknown quality must not award")
	}
}

func TestResponsibilityWeigher(t *testing.T) {
	n := 4
	prev := math.Inf(1)
	for pos := 0; pos < n; pos++ {
		w := ResponsibilityWeigher(pos, n)
		if w <= 0 || w > 1 {
			t.Fatalf("weight at pos %d out of range: %v", pos, w)
		}
		if w >= prev {
			t.Fatalf("weights must strictly decrease along the path")
		}
		prev = w
	}
	if ResponsibilityWeigher(0, 0) != 1 {
		t.Fatal("degenerate path must weigh 1")
	}
	if UniformWeigher(3, 9) != 1 {
		t.Fatal("uniform weigher must always return 1")
	}
}

func TestAwardPathWithResponsibilityWeights(t *testing.T) {
	s := Strategy{NegativeUnit: 2, Weigh: ResponsibilityWeigher}
	l := NewLedger()
	path := []supplychain.ParticipantID{"head", "mid", "tail"}
	s.AwardPath(l, "id1", Bad, path)
	if !(l.Score("head") < l.Score("mid") && l.Score("mid") < l.Score("tail")) {
		t.Fatalf("upstream participants must be penalized more: head=%v mid=%v tail=%v",
			l.Score("head"), l.Score("mid"), l.Score("tail"))
	}
}

func TestPenalizeViolation(t *testing.T) {
	s := DefaultStrategy()
	l := NewLedger()
	s.PenalizeViolation(l, "cheater", "id1", Bad, "claim non-processing")
	if got := l.Score("cheater"); got != -s.ViolationPenalty {
		t.Fatalf("Score(cheater) = %v", got)
	}
	events := l.Events()
	if len(events) != 1 || events[0].Reason == "" {
		t.Fatal("violation must be recorded with a reason")
	}
}

func TestQualityString(t *testing.T) {
	if Good.String() != "good" || Bad.String() != "bad" {
		t.Fatal("quality strings wrong")
	}
	if Quality(7).String() == "" {
		t.Fatal("unknown quality must render non-empty")
	}
}
