package events

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestConcurrentEmitAndQuery exercises the sink under the race detector:
// emitters, ring readers and a journal writer all at once — the shape of a
// proxy emitting query events while /debug/events is being polled.
func TestConcurrentEmitAndQuery(t *testing.T) {
	cfg := Config{Dir: t.TempDir(), RingSize: 32}
	sink, err := cfg.Build("race")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ev := New(KindQuery, time.Now())
				ev.Product = "race"
				ev.Outcome = OutcomeComplete
				ev.DurationUS = int64(i)
				sink.Emit(ev)
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sink.Ring().Query(Filter{Product: "race"}, 10)
				sink.Ring().Len()
			}
		}()
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := sink.Ring().Total(); got != writers*perWriter {
		t.Fatalf("ring Total = %d, want %d", got, writers*perWriter)
	}
	var scanned int
	if _, err := ScanDir(cfg.Dir, func(*Event) error { scanned++; return nil }); err != nil {
		t.Fatalf("ScanDir: %v", err)
	}
	if scanned != writers*perWriter {
		t.Fatalf("journal holds %d events, want %d", scanned, writers*perWriter)
	}
}

// TestScopeConcurrent mirrors speculative child probes incrementing one
// query's scope from several goroutines.
func TestScopeConcurrent(t *testing.T) {
	s := NewScope()
	ctx := WithScope(context.Background(), s)
	if ScopeFrom(ctx) != s {
		t.Fatal("ScopeFrom lost the scope")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := ScopeFrom(ctx)
			for i := 0; i < 100; i++ {
				sc.CacheHit()
				sc.CacheMiss()
				sc.PoolReuse()
				sc.PoolRetry()
			}
		}()
	}
	wg.Wait()
	var ev Event
	s.Fill(&ev)
	if ev.CacheHits != 800 || ev.CacheMisses != 800 || ev.PoolReused != 800 || ev.PoolRetries != 800 {
		t.Fatalf("scope counters = %+v, want 800 each", ev)
	}
}

func TestScopeNilSafety(t *testing.T) {
	var s *Scope
	s.CacheHit()
	s.CacheMiss()
	s.PoolReuse()
	s.PoolRetry()
	s.Fill(&Event{})
	if got := ScopeFrom(context.Background()); got != nil {
		t.Fatalf("ScopeFrom(empty ctx) = %v", got)
	}
	ctx := WithScope(context.Background(), nil)
	if got := ScopeFrom(ctx); got != nil {
		t.Fatalf("WithScope(nil) stored something: %v", got)
	}
}
