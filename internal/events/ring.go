package events

import (
	"strings"
	"sync"
	"time"
)

// DefaultRingSize bounds the in-memory event ring when a non-positive
// capacity is requested.
const DefaultRingSize = 512

// Ring is a bounded buffer of the most recent events, the in-memory half of
// the flight recorder: always on, queried by /debug/events. Events are
// stored by pointer and treated as frozen (see Event).
type Ring struct {
	mu    sync.Mutex
	buf   []*Event // guarded by mu
	next  int      // guarded by mu
	total uint64   // guarded by mu
}

// NewRing builds a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Ring{buf: make([]*Event, 0, capacity)}
}

// Add stores one event, evicting the oldest beyond capacity.
func (r *Ring) Add(ev *Event) {
	if ev == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
}

// Len returns the number of stored events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of events ever added, including evicted ones.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Filter selects events. Zero values match everything; string matches are
// exact except Product, which is a substring match (investigators grep by
// id fragments).
type Filter struct {
	Kind        Kind
	Outcome     Outcome
	Product     string
	MinDuration time.Duration
}

// Match reports whether the event passes the filter.
func (f Filter) Match(ev *Event) bool {
	if ev == nil {
		return false
	}
	if f.Kind != "" && ev.Kind != f.Kind {
		return false
	}
	if f.Outcome != "" && ev.Outcome != f.Outcome {
		return false
	}
	if f.Product != "" && !strings.Contains(ev.Product, f.Product) {
		return false
	}
	if f.MinDuration > 0 && time.Duration(ev.DurationUS)*time.Microsecond < f.MinDuration {
		return false
	}
	return true
}

// Query returns up to limit matching events, newest first. A non-positive
// limit returns every match.
func (r *Ring) Query(f Filter, limit int) []*Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Event, 0, min(len(r.buf), max(limit, 0)))
	for i := 0; i < len(r.buf); i++ {
		// Walk backwards from the newest slot.
		idx := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		if len(r.buf) < cap(r.buf) {
			// Ring not yet full: slots are in insertion order, next unused.
			idx = len(r.buf) - 1 - i
		}
		ev := r.buf[idx]
		if !f.Match(ev) {
			continue
		}
		out = append(out, ev)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}
