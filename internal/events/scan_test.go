package events

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeJournal materializes events as one journal segment under dir.
func writeJournal(t *testing.T, dir string, evs ...*Event) {
	t.Helper()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	for _, ev := range evs {
		line, err := ev.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if err := j.Append(line); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func queryEvent(product string, us int64, outcome Outcome) *Event {
	ev := New(KindQuery, time.Unix(1700000000, 0).UTC())
	ev.Product = product
	ev.Outcome = outcome
	ev.DurationUS = us
	ev.PathLen = 3
	ev.CacheHits = 2
	ev.CacheMisses = 1
	ev.PoolReused = 4
	ev.PoolRetries = 1
	return ev
}

func TestScanDirToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, queryEvent("a", 100, OutcomeComplete), queryEvent("b", 200, OutcomeComplete))
	segs, err := ListSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("ListSegments: %v (%d)", err, len(segs))
	}
	f, err := os.OpenFile(segs[0].Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.WriteString(`{"schema":1,"ki`); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	var got int
	stats, err := ScanDir(dir, func(*Event) error { got++; return nil })
	if err != nil {
		t.Fatalf("ScanDir: %v", err)
	}
	if got != 2 || stats.Lines != 2 || stats.Torn != 1 || stats.Malformed != 0 {
		t.Fatalf("got %d events, stats %+v; want 2 events, 1 torn", got, stats)
	}
}

func TestScanDirCountsMalformedLines(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, queryEvent("a", 100, OutcomeComplete))
	segs, _ := ListSegments(dir)
	f, err := os.OpenFile(segs[0].Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.WriteString("not json at all\n"); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var got int
	stats, err := ScanDir(dir, func(*Event) error { got++; return nil })
	if err != nil {
		t.Fatalf("ScanDir: %v", err)
	}
	if got != 1 || stats.Malformed != 1 {
		t.Fatalf("got %d events, stats %+v; want 1 event, 1 malformed", got, stats)
	}
}

func TestScanDirEmpty(t *testing.T) {
	if _, err := ScanDir(t.TempDir(), func(*Event) error { return nil }); err == nil {
		t.Fatal("ScanDir on an empty dir succeeded; want a no-segments error")
	}
	if _, err := ScanDir(filepath.Join(t.TempDir(), "missing"), func(*Event) error { return nil }); err == nil {
		t.Fatal("ScanDir on a missing dir succeeded")
	}
}

func TestSummarize(t *testing.T) {
	dir := t.TempDir()
	evs := []*Event{
		queryEvent("alpha", 100, OutcomeComplete),
		queryEvent("beta", 400, OutcomeComplete),
		queryEvent("gamma", 200, OutcomeIncomplete),
		queryEvent("delta", 800, OutcomeNoOrigin),
	}
	evs[2].Violations = []Violation{
		{Participant: "P_x", Type: "no-valid-proof"},
		{Participant: "P_y", Type: "wrong-next-hop"},
	}
	node := New(KindNodeRequest, time.Unix(1700000000, 0).UTC())
	node.Outcome = OutcomeOK
	node.DurationUS = 50
	writeJournal(t, dir, append(evs, node)...)

	s, err := Summarize(dir, Filter{}, 2)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.Total != 5 || s.Queries != 4 {
		t.Fatalf("Total=%d Queries=%d, want 5/4", s.Total, s.Queries)
	}
	if s.ByKind["query"] != 4 || s.ByKind["node_request"] != 1 {
		t.Fatalf("ByKind = %v", s.ByKind)
	}
	if s.ByOutcome["complete"] != 2 || s.ByOutcome["incomplete"] != 1 || s.ByOutcome["no_origin"] != 1 {
		t.Fatalf("ByOutcome = %v", s.ByOutcome)
	}
	if s.Hops != 12 {
		t.Fatalf("Hops = %d, want 12", s.Hops)
	}
	if s.Violations["no-valid-proof"] != 1 || s.Violations["wrong-next-hop"] != 1 {
		t.Fatalf("Violations = %v", s.Violations)
	}
	if s.CacheHits != 8 || s.CacheMisses != 4 || s.PoolReused != 16 || s.PoolRetries != 4 {
		t.Fatalf("counter sums wrong: %+v", s)
	}
	lat := s.QueryLatency
	if lat.Count != 4 || lat.MeanUS != 375 || lat.P50US != 200 || lat.MaxUS != 800 {
		t.Fatalf("latency = %+v", lat)
	}
	if len(s.Slowest) != 2 || s.Slowest[0].Product != "delta" || s.Slowest[1].Product != "beta" {
		t.Fatalf("Slowest = %+v", s.Slowest)
	}

	// Filtered view: outcome=complete only.
	fs, err := Summarize(dir, Filter{Outcome: OutcomeComplete}, 0)
	if err != nil {
		t.Fatalf("Summarize(filtered): %v", err)
	}
	if fs.Total != 2 || fs.Queries != 2 || len(fs.Slowest) != 0 {
		t.Fatalf("filtered summary = %+v", fs)
	}
}

func TestInsertSlowestOrder(t *testing.T) {
	var top []*Event
	for _, us := range []int64{300, 100, 900, 500, 700} {
		top = insertSlowest(top, queryEvent("p", us, OutcomeComplete), 3)
	}
	want := []int64{900, 700, 500}
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	for i, w := range want {
		if top[i].DurationUS != w {
			t.Fatalf("top[%d] = %d, want %d", i, top[i].DurationUS, w)
		}
	}
}

func TestDiff(t *testing.T) {
	a := &Summary{
		Total: 10, Queries: 10,
		QueryLatency: LatencyStats{MeanUS: 100, P50US: 90, P99US: 200, MaxUS: 250},
		Hops:         30,
		ByOutcome:    map[string]int{"complete": 9, "incomplete": 1},
		Violations:   map[string]int{"no-valid-proof": 2},
		CacheHits:    5,
	}
	b := &Summary{
		Total: 10, Queries: 10,
		QueryLatency: LatencyStats{MeanUS: 150, P50US: 90, P99US: 400, MaxUS: 500},
		Hops:         30,
		ByOutcome:    map[string]int{"complete": 10},
		Violations:   map[string]int{},
		CacheHits:    10,
	}
	rows := Diff(a, b)
	byMetric := make(map[string]DiffRow, len(rows))
	for _, r := range rows {
		byMetric[r.Metric] = r
	}
	if r := byMetric["query_latency_mean_us"]; r.A != 100 || r.B != 150 || r.DeltaPct != 50 {
		t.Fatalf("mean row = %+v", r)
	}
	if r := byMetric["violations"]; r.A != 2 || r.B != 0 || r.DeltaPct != -100 {
		t.Fatalf("violations row = %+v", r)
	}
	if r, ok := byMetric["outcome_incomplete"]; !ok || r.A != 1 || r.B != 0 {
		t.Fatalf("outcome_incomplete row = %+v (ok=%v)", r, ok)
	}
	if r := byMetric["cache_hits"]; r.DeltaPct != 100 {
		t.Fatalf("cache_hits row = %+v", r)
	}
}

func TestLatencyFromEmpty(t *testing.T) {
	if got := latencyFrom(nil); got != (LatencyStats{}) {
		t.Fatalf("latencyFrom(nil) = %+v", got)
	}
}
