package events

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func explorerFixture() *Ring {
	r := NewRing(16)
	fast := New(KindQuery, time.Unix(1700000000, 0).UTC())
	fast.Product = "widget-fast"
	fast.Outcome = OutcomeComplete
	fast.DurationUS = 2_000
	fast.TraceID = "trace_fast"
	r.Add(fast)
	slow := New(KindQuery, time.Unix(1700000001, 0).UTC())
	slow.Product = "widget-slow"
	slow.Outcome = OutcomeIncomplete
	slow.DurationUS = 90_000
	r.Add(slow)
	node := New(KindNodeRequest, time.Unix(1700000002, 0).UTC())
	node.Outcome = OutcomeOK
	node.MsgType = "query"
	r.Add(node)
	return r
}

func getPage(t *testing.T, h http.Handler, url string) explorerPage {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, rec.Code, rec.Body.String())
	}
	var page explorerPage
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return page
}

func TestExplorerListsNewestFirst(t *testing.T) {
	h := Explorer(explorerFixture())
	page := getPage(t, h, "/debug/events")
	if page.Count != 3 || len(page.Events) != 3 {
		t.Fatalf("count = %d, want 3", page.Count)
	}
	if page.Events[0].Kind != KindNodeRequest || page.Events[2].Product != "widget-fast" {
		t.Fatalf("order wrong: %+v", page.Events)
	}
}

func TestExplorerFilters(t *testing.T) {
	h := Explorer(explorerFixture())
	if page := getPage(t, h, "/debug/events?kind=query"); page.Count != 2 {
		t.Fatalf("kind filter: %d", page.Count)
	}
	if page := getPage(t, h, "/debug/events?outcome=incomplete"); page.Count != 1 || page.Events[0].Product != "widget-slow" {
		t.Fatalf("outcome filter wrong")
	}
	if page := getPage(t, h, "/debug/events?product=slow"); page.Count != 1 {
		t.Fatalf("product filter wrong")
	}
	if page := getPage(t, h, "/debug/events?min_ms=50"); page.Count != 1 || page.Events[0].Product != "widget-slow" {
		t.Fatalf("min_ms filter wrong")
	}
	if page := getPage(t, h, "/debug/events?limit=1"); page.Count != 1 {
		t.Fatalf("limit wrong")
	}
}

func TestExplorerTraceDeepLink(t *testing.T) {
	h := Explorer(explorerFixture())
	page := getPage(t, h, "/debug/events?product=fast")
	if page.Count != 1 {
		t.Fatalf("count = %d", page.Count)
	}
	if page.Events[0].TraceURL != "/debug/traces/trace_fast" {
		t.Fatalf("TraceURL = %q", page.Events[0].TraceURL)
	}
	// Events without a trace id get no link.
	page = getPage(t, h, "/debug/events?product=slow")
	if page.Events[0].TraceURL != "" {
		t.Fatalf("unexpected TraceURL %q", page.Events[0].TraceURL)
	}
}

func TestExplorerRejectsBadRequests(t *testing.T) {
	h := Explorer(explorerFixture())
	for _, url := range []string{"/debug/events?min_ms=x", "/debug/events?min_ms=-1", "/debug/events?limit=x", "/debug/events?limit=-2"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", url, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/events", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	Explorer(nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/events", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("nil ring: status %d, want 404", rec.Code)
	}
}

func TestConfigBuild(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, RingSize: 4}
	sink, err := cfg.Build("test")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if sink.Ring() == nil || sink.Journal() == nil {
		t.Fatal("Build with Dir must wire ring and journal")
	}
	ev := New(KindQuery, time.Now())
	ev.Outcome = OutcomeComplete
	sink.Emit(ev)
	if ev.Service != "test" || ev.Schema != SchemaVersion {
		t.Fatalf("Emit did not stamp service/schema: %+v", ev)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var got int
	if _, err := ScanDir(dir, func(*Event) error { got++; return nil }); err != nil {
		t.Fatalf("ScanDir: %v", err)
	}
	if got != 1 {
		t.Fatalf("journal holds %d events, want 1", got)
	}

	ringOnly := Config{}
	s2, err := ringOnly.Build("test")
	if err != nil {
		t.Fatalf("Build(ring only): %v", err)
	}
	if s2.Journal() != nil {
		t.Fatal("empty Dir must not open a journal")
	}
	bad := Config{Fsync: "sometimes"}
	if _, err := bad.Build("test"); err == nil {
		t.Fatal("Build accepted an unknown fsync policy")
	}
}

func TestNilSinkIsInert(t *testing.T) {
	var s *Sink
	s.Emit(New(KindQuery, time.Now()))
	if s.Ring() != nil || s.Journal() != nil {
		t.Fatal("nil sink leaked a handle")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}
