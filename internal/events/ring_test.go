package events

import (
	"testing"
	"time"
)

func ringEvent(product string, d time.Duration, outcome Outcome) *Event {
	ev := New(KindQuery, time.Unix(1700000000, 0).UTC())
	ev.Product = product
	ev.Outcome = outcome
	ev.DurationUS = d.Microseconds()
	return ev
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i, p := range []string{"a", "b", "c", "d", "e"} {
		r.Add(ringEvent(p, time.Duration(i)*time.Millisecond, OutcomeComplete))
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	got := r.Query(Filter{}, 0)
	if len(got) != 3 {
		t.Fatalf("Query returned %d events, want 3", len(got))
	}
	// Newest first, oldest two evicted.
	for i, want := range []string{"e", "d", "c"} {
		if got[i].Product != want {
			t.Fatalf("Query[%d].Product = %q, want %q", i, got[i].Product, want)
		}
	}
}

func TestRingQueryNewestFirstBeforeFull(t *testing.T) {
	r := NewRing(8)
	r.Add(ringEvent("first", time.Millisecond, OutcomeComplete))
	r.Add(ringEvent("second", time.Millisecond, OutcomeComplete))
	got := r.Query(Filter{}, 0)
	if len(got) != 2 || got[0].Product != "second" || got[1].Product != "first" {
		t.Fatalf("partial ring order wrong: %+v", got)
	}
}

func TestRingQueryLimit(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 6; i++ {
		r.Add(ringEvent("p", time.Millisecond, OutcomeComplete))
	}
	if got := r.Query(Filter{}, 2); len(got) != 2 {
		t.Fatalf("limit 2 returned %d events", len(got))
	}
}

func TestRingFilters(t *testing.T) {
	r := NewRing(16)
	r.Add(ringEvent("widget-1", 5*time.Millisecond, OutcomeComplete))
	r.Add(ringEvent("widget-2", 50*time.Millisecond, OutcomeIncomplete))
	node := New(KindNodeRequest, time.Unix(1700000000, 0).UTC())
	node.Outcome = OutcomeOK
	r.Add(node)

	if got := r.Query(Filter{Kind: KindQuery}, 0); len(got) != 2 {
		t.Fatalf("kind filter returned %d, want 2", len(got))
	}
	if got := r.Query(Filter{Outcome: OutcomeIncomplete}, 0); len(got) != 1 || got[0].Product != "widget-2" {
		t.Fatalf("outcome filter wrong: %+v", got)
	}
	if got := r.Query(Filter{Product: "idget"}, 0); len(got) != 2 {
		t.Fatalf("product substring filter returned %d, want 2", len(got))
	}
	if got := r.Query(Filter{MinDuration: 10 * time.Millisecond}, 0); len(got) != 1 || got[0].Product != "widget-2" {
		t.Fatalf("min-duration filter wrong: %+v", got)
	}
	if (Filter{}).Match(nil) {
		t.Fatal("nil event matched")
	}
}

func TestRingZeroCapacityDefaults(t *testing.T) {
	r := NewRing(0)
	for i := 0; i <= DefaultRingSize; i++ {
		r.Add(ringEvent("p", time.Millisecond, OutcomeComplete))
	}
	if r.Len() != DefaultRingSize {
		t.Fatalf("Len = %d, want default %d", r.Len(), DefaultRingSize)
	}
}

func TestEventAddHopTruncation(t *testing.T) {
	ev := New(KindQuery, time.Now())
	for i := 0; i < MaxHops+7; i++ {
		ev.AddHop(Hop{Participant: "p"})
	}
	if len(ev.Hops) != MaxHops {
		t.Fatalf("Hops = %d, want cap %d", len(ev.Hops), MaxHops)
	}
	if ev.HopsTruncated != 7 {
		t.Fatalf("HopsTruncated = %d, want 7", ev.HopsTruncated)
	}
}

func TestEventEncodeDecodeRoundTrip(t *testing.T) {
	ev := New(KindQuery, time.Unix(1700000000, 0).UTC())
	ev.Product = "widget"
	ev.Outcome = OutcomeComplete
	ev.TraceID = "abc"
	ev.AddHop(Hop{Participant: "P_one", Identified: true, IdentifyUS: 10, ProveUS: 7, VerifyUS: 2})
	ev.Violations = []Violation{{Participant: "P_two", Type: "no-valid-proof", Detail: "x"}}
	ev.RepDeltas = map[string]float64{"P_one": 1.5}
	ev.SetField("p_bad", 0.25)

	line, err := ev.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := Decode(line)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if back.Product != "widget" || back.TraceID != "abc" || len(back.Hops) != 1 ||
		back.Hops[0].ProveUS != 7 || back.Violations[0].Type != "no-valid-proof" ||
		back.RepDeltas["P_one"] != 1.5 || back.Fields["p_bad"] != 0.25 {
		t.Fatalf("round trip mangled event: %+v", back)
	}
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Fatal("Decode accepted garbage")
	}
}
