package events

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// DefaultExplorerLimit bounds the /debug/events list when no ?limit is
// given — the same default the /debug/traces index applies.
const DefaultExplorerLimit = 100

// explorerEntry is one served event plus its deep link into the trace
// explorer, so a slow or violated query on /debug/events is one click from
// its span timeline on /debug/traces/<id>.
type explorerEntry struct {
	*Event
	TraceURL string `json:"trace_url,omitempty"`
}

// explorerPage is the /debug/events response body.
type explorerPage struct {
	Count  int             `json:"count"`
	Events []explorerEntry `json:"events"`
}

// Explorer serves the ring's recent events:
//
//	GET /debug/events                → JSON list, newest first (limit 100)
//	  ?kind=query|node_request|campaign
//	  ?outcome=complete|incomplete|no_origin|ok|error
//	  ?product=SUBSTRING
//	  ?min_ms=N        (minimum duration)
//	  ?limit=N         (0 = everything in the ring)
//
// Events carrying a trace id get a trace_url deep link to
// /debug/traces/<id>. Mount it on the admin mux via obs.WithRoute.
func Explorer(ring *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if ring == nil {
			http.Error(w, "event recording disabled", http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		f := Filter{
			Kind:    Kind(q.Get("kind")),
			Outcome: Outcome(q.Get("outcome")),
			Product: q.Get("product"),
		}
		if ms := q.Get("min_ms"); ms != "" {
			n, err := strconv.Atoi(ms)
			if err != nil || n < 0 {
				http.Error(w, "malformed min_ms", http.StatusBadRequest)
				return
			}
			f.MinDuration = time.Duration(n) * time.Millisecond
		}
		limit := DefaultExplorerLimit
		if ls := q.Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n < 0 {
				http.Error(w, "malformed limit", http.StatusBadRequest)
				return
			}
			limit = n
		}
		matches := ring.Query(f, limit)
		page := explorerPage{Count: len(matches), Events: make([]explorerEntry, 0, len(matches))}
		for _, ev := range matches {
			entry := explorerEntry{Event: ev}
			if ev.TraceID != "" {
				entry.TraceURL = "/debug/traces/" + ev.TraceID
			}
			page.Events = append(page.Events, entry)
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(page)
	})
}
