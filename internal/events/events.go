// Package events is DE-Sword's query flight recorder: one canonical wide
// event per completed product path query (and per node request), durable
// beyond the trace ring. Where package trace answers "what did this one
// sampled request do, span by span", an event is the always-on, flat,
// append-friendly record of what a query saw — outcome, path length, per-hop
// identify/prove/verify timings, proof-cache and pool counters, violations,
// and the reputation deltas the proxy applied — so a dispute can be
// reconstructed after the fact, which is the paper's whole point.
//
// Events land in a bounded in-memory ring (served by /debug/events on the
// admin listener, deep-linking each event to /debug/traces/<id>) and,
// optionally, in an append-only JSONL journal with size-based rotation and a
// configurable fsync policy. The journal is crash-safe on reopen: a torn
// tail line from an interrupted write is truncated and counted, never
// parsed. desword-events scans journals offline for aggregates, top-N slow
// queries, and two-journal regression diffs.
//
// The package follows the repository's observability conventions: stdlib
// only, obs for metrics, nil-safe handles so disabled recording costs one
// branch.
package events

import (
	"encoding/json"
	"fmt"
	"time"
)

// SchemaVersion stamps every event so offline scanners can gate on the
// fields they understand. Bump it when a field changes meaning; adding
// omitempty fields is compatible and needs no bump.
const SchemaVersion = 1

// Kind discriminates the event flavours sharing the canonical schema.
type Kind string

// Event kinds.
const (
	// KindQuery is one completed product path query at the proxy.
	KindQuery Kind = "query"
	// KindNodeRequest is one request handled by a node server (participant
	// or proxy), as seen from the serving side.
	KindNodeRequest Kind = "node_request"
	// KindCampaign is one simulation-campaign cell (desword-sim): durable
	// evidence for incentive and adversary campaigns.
	KindCampaign Kind = "campaign"
)

// Outcome is the event's one-word verdict.
type Outcome string

// Outcomes. Query events use the first three; node requests and campaigns
// use ok/error.
const (
	// OutcomeComplete: the walk reached a leaf of the POC list.
	OutcomeComplete Outcome = "complete"
	// OutcomeIncomplete: a path was found but the walk stalled before a leaf.
	OutcomeIncomplete Outcome = "incomplete"
	// OutcomeNoOrigin: no initial participant admitted processing the product.
	OutcomeNoOrigin Outcome = "no_origin"
	// OutcomeOK: the request was handled without error.
	OutcomeOK Outcome = "ok"
	// OutcomeError: the request failed.
	OutcomeError Outcome = "error"
	// OutcomeLoadShed: admission control rejected the work before it ran —
	// the queue was full or the deadline could not be met. Distinct from
	// OutcomeError so overload shows up as shedding, not as failures.
	OutcomeLoadShed Outcome = "load_shed"
)

// Hop is one committed proxy↔participant query interaction. Timings are
// microseconds of proxy-side wall clock: IdentifyUS covers the whole
// interaction, ProveUS the query round trip (dominated by the participant's
// proof generation), VerifyUS the proxy-side proof verification, and
// DemandUS the ownership-demand round trip of the bad-product case.
// Speculative child probes whose outcome was discarded (probe fan-out) do
// not appear — the hop list matches the serial walk exactly, like Stats.
type Hop struct {
	Participant string `json:"participant"`
	Identified  bool   `json:"identified"`
	IdentifyUS  int64  `json:"identify_us"`
	ProveUS     int64  `json:"prove_us,omitempty"`
	VerifyUS    int64  `json:"verify_us,omitempty"`
	DemandUS    int64  `json:"demand_us,omitempty"`
	Violations  int    `json:"violations,omitempty"`
}

// Violation is the event form of a detected dishonest behaviour; the type
// travels as its string name so journals stay self-describing.
type Violation struct {
	Participant string `json:"participant"`
	Type        string `json:"type"`
	Detail      string `json:"detail"`
}

// MaxHops bounds the per-event hop list so one pathological walk cannot
// balloon a journal line; overflow is counted in HopsTruncated.
const MaxHops = 1024

// Event is the canonical wide event. One event carries everything known
// about one unit of work — queries fill the query section, node requests
// the request section, campaigns the extensible Fields map — so offline
// analysis never joins across files. An event is frozen once emitted:
// sinks, rings and explorers share the pointer and never mutate it.
type Event struct {
	Schema     int       `json:"schema"`
	Kind       Kind      `json:"kind"`
	Time       time.Time `json:"time"`
	Service    string    `json:"service,omitempty"`
	DurationUS int64     `json:"duration_us"`
	TraceID    string    `json:"trace_id,omitempty"`
	Outcome    Outcome   `json:"outcome"`
	Error      string    `json:"error,omitempty"`

	// Query section.
	Product       string             `json:"product,omitempty"`
	Quality       string             `json:"quality,omitempty"`
	TaskID        string             `json:"task_id,omitempty"`
	PathLen       int                `json:"path_len,omitempty"`
	Complete      bool               `json:"complete,omitempty"`
	Hops          []Hop              `json:"hops,omitempty"`
	HopsTruncated int                `json:"hops_truncated,omitempty"`
	Violations    []Violation        `json:"violations,omitempty"`
	RepDeltas     map[string]float64 `json:"rep_deltas,omitempty"`

	// Per-request resource counters, accumulated by the innermost Scope the
	// request context carried (see scope.go).
	CacheHits   uint64 `json:"cache_hits,omitempty"`
	CacheMisses uint64 `json:"cache_misses,omitempty"`
	PoolReused  uint64 `json:"pool_reused,omitempty"`
	PoolRetries uint64 `json:"pool_retries,omitempty"`

	// Node-request section.
	MsgType string `json:"msg_type,omitempty"`
	Peer    string `json:"peer,omitempty"`

	// Fields holds ad-hoc wide-event fields (campaign parameters and
	// results, mostly). Keys must be compile-time constants matching
	// ^[a-z_]+$ — enforced at vet time by the desword/eventfield analyzer —
	// so journals keep a closed, greppable vocabulary. encoding/json sorts
	// map keys, so serialized events stay byte-deterministic.
	Fields map[string]any `json:"fields,omitempty"`
}

// New builds an event of a kind with the schema version and start time
// stamped. The caller fills the sections it knows and emits via a Sink.
func New(kind Kind, start time.Time) *Event {
	return &Event{Schema: SchemaVersion, Kind: kind, Time: start}
}

// SetField sets one ad-hoc wide-event field. The name must be a
// compile-time constant matching ^[a-z_]+$ (desword/eventfield); values are
// anything encoding/json accepts.
func (e *Event) SetField(name string, value any) {
	if e.Fields == nil {
		e.Fields = make(map[string]any)
	}
	e.Fields[name] = value
}

// AddHop appends one committed interaction, honoring MaxHops.
func (e *Event) AddHop(h Hop) {
	if len(e.Hops) >= MaxHops {
		e.HopsTruncated++
		return
	}
	e.Hops = append(e.Hops, h)
}

// Encode renders the event as one JSONL line (no trailing newline).
func (e *Event) Encode() ([]byte, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("events: encoding %s event: %w", e.Kind, err)
	}
	return b, nil
}

// Decode parses one journal line back into an event.
func Decode(line []byte) (*Event, error) {
	var ev Event
	if err := json.Unmarshal(line, &ev); err != nil {
		return nil, fmt.Errorf("events: decoding journal line: %w", err)
	}
	return &ev, nil
}
