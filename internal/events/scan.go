package events

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// This file is the offline half of the flight recorder: scanning journal
// directories, aggregating them into summaries, and diffing two summaries —
// the machinery behind desword-events and the events-smoke CI gate.

// ScanStats reports what a journal scan encountered. Torn counts trailing
// partial lines (crash artifacts, skipped by design); Malformed counts
// complete lines that failed to decode (corruption — never expected).
type ScanStats struct {
	Files     int `json:"files"`
	Lines     int `json:"lines"`
	Torn      int `json:"torn"`
	Malformed int `json:"malformed"`
}

// maxScanLine bounds one journal line during a scan; it comfortably exceeds
// anything Emit writes (MaxHops caps the hop list).
const maxScanLine = 64 << 20

// ScanDir streams every complete event in dir's journal segments, oldest
// segment first, line order within a segment. A torn tail line is counted
// and skipped, mirroring what a journal reopen would drop. fn errors abort
// the scan.
func ScanDir(dir string, fn func(*Event) error) (ScanStats, error) {
	var stats ScanStats
	segs, err := ListSegments(dir)
	if err != nil {
		return stats, err
	}
	if len(segs) == 0 {
		return stats, fmt.Errorf("events: no journal segments under %s", dir)
	}
	for _, seg := range segs {
		if err := scanFile(seg.Path, &stats, fn); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// scanFile streams one segment. A final line without its '\n' terminator is
// a torn write from a crash: counted, never decoded — exactly what a journal
// reopen would truncate away.
func scanFile(path string, stats *ScanStats, fn func(*Event) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("events: opening journal segment: %w", err)
	}
	defer f.Close()
	stats.Files++
	r := bufio.NewReaderSize(f, 64<<10)
	for {
		line, rerr := r.ReadBytes('\n')
		if errors.Is(rerr, io.EOF) {
			if len(line) > 0 {
				stats.Torn++
			}
			return nil
		}
		if rerr != nil {
			return fmt.Errorf("events: scanning %s: %w", path, rerr)
		}
		line = line[:len(line)-1]
		if len(line) == 0 {
			continue
		}
		if len(line) > maxScanLine {
			stats.Malformed++
			continue
		}
		stats.Lines++
		ev, derr := Decode(line)
		if derr != nil {
			stats.Malformed++
			continue
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}

// LatencyStats summarizes a duration distribution in microseconds.
type LatencyStats struct {
	Count  int   `json:"count"`
	MeanUS int64 `json:"mean_us"`
	P50US  int64 `json:"p50_us"`
	P90US  int64 `json:"p90_us"`
	P99US  int64 `json:"p99_us"`
	MaxUS  int64 `json:"max_us"`
}

// latencyFrom summarizes a sample set (sorted in place).
func latencyFrom(samples []int64) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum int64
	for _, v := range samples {
		sum += v
	}
	q := func(p float64) int64 { return samples[int(p*float64(len(samples)-1))] }
	return LatencyStats{
		Count:  len(samples),
		MeanUS: sum / int64(len(samples)),
		P50US:  q(0.50),
		P90US:  q(0.90),
		P99US:  q(0.99),
		MaxUS:  samples[len(samples)-1],
	}
}

// Summary is the offline aggregate of one journal (or one filtered view of
// it): what desword-events prints and what the smoke gate compares against
// the proxy's live metrics.
type Summary struct {
	Stats     ScanStats      `json:"stats"`
	Total     int            `json:"total"`
	ByKind    map[string]int `json:"by_kind"`
	ByOutcome map[string]int `json:"by_outcome"`
	ByQuality map[string]int `json:"by_quality"`

	// Query-kind aggregates.
	Queries      int            `json:"queries"`
	QueryLatency LatencyStats   `json:"query_latency"`
	Hops         int            `json:"hops"`
	Violations   map[string]int `json:"violations"`
	CacheHits    uint64         `json:"cache_hits"`
	CacheMisses  uint64         `json:"cache_misses"`
	PoolReused   uint64         `json:"pool_reused"`
	PoolRetries  uint64         `json:"pool_retries"`

	// Slowest holds the top-N slowest query events, slowest first, when the
	// summarizer was asked to keep them.
	Slowest []*Event `json:"slowest,omitempty"`
}

// Summarize scans dir and aggregates every event passing the filter. topN
// keeps that many slowest query events for hop-breakdown display (0 keeps
// none).
func Summarize(dir string, f Filter, topN int) (*Summary, error) {
	s := &Summary{
		ByKind:     make(map[string]int),
		ByOutcome:  make(map[string]int),
		ByQuality:  make(map[string]int),
		Violations: make(map[string]int),
	}
	var durations []int64
	stats, err := ScanDir(dir, func(ev *Event) error {
		if !f.Match(ev) {
			return nil
		}
		s.Total++
		s.ByKind[string(ev.Kind)]++
		s.ByOutcome[string(ev.Outcome)]++
		if ev.Quality != "" {
			s.ByQuality[ev.Quality]++
		}
		if ev.Kind != KindQuery {
			return nil
		}
		s.Queries++
		durations = append(durations, ev.DurationUS)
		s.Hops += ev.PathLen
		for _, v := range ev.Violations {
			s.Violations[v.Type]++
		}
		s.CacheHits += ev.CacheHits
		s.CacheMisses += ev.CacheMisses
		s.PoolReused += ev.PoolReused
		s.PoolRetries += ev.PoolRetries
		if topN > 0 {
			s.Slowest = insertSlowest(s.Slowest, ev, topN)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.Stats = stats
	s.QueryLatency = latencyFrom(durations)
	return s, nil
}

// insertSlowest keeps the top-n events by duration, slowest first.
func insertSlowest(top []*Event, ev *Event, n int) []*Event {
	i := sort.Search(len(top), func(k int) bool { return top[k].DurationUS < ev.DurationUS })
	top = append(top, nil)
	copy(top[i+1:], top[i:])
	top[i] = ev
	if len(top) > n {
		top = top[:n]
	}
	return top
}

// DiffRow is one line of a two-journal comparison.
type DiffRow struct {
	Metric string  `json:"metric"`
	A      float64 `json:"a"`
	B      float64 `json:"b"`
	// DeltaPct is (B-A)/A·100; 0 when A is 0.
	DeltaPct float64 `json:"delta_pct"`
}

// Diff compares two summaries metric by metric — the regression-triage view
// behind desword-events -diff: run the same campaign before and after a
// change, diff the journals.
func Diff(a, b *Summary) []DiffRow {
	rows := []DiffRow{
		row("events_total", float64(a.Total), float64(b.Total)),
		row("queries", float64(a.Queries), float64(b.Queries)),
		row("query_latency_mean_us", float64(a.QueryLatency.MeanUS), float64(b.QueryLatency.MeanUS)),
		row("query_latency_p_50_us", float64(a.QueryLatency.P50US), float64(b.QueryLatency.P50US)),
		row("query_latency_p_99_us", float64(a.QueryLatency.P99US), float64(b.QueryLatency.P99US)),
		row("query_latency_max_us", float64(a.QueryLatency.MaxUS), float64(b.QueryLatency.MaxUS)),
		row("hops", float64(a.Hops), float64(b.Hops)),
		row("violations", float64(totalOf(a.Violations)), float64(totalOf(b.Violations))),
		row("cache_hits", float64(a.CacheHits), float64(b.CacheHits)),
		row("cache_misses", float64(a.CacheMisses), float64(b.CacheMisses)),
		row("pool_reused", float64(a.PoolReused), float64(b.PoolReused)),
		row("pool_retries", float64(a.PoolRetries), float64(b.PoolRetries)),
	}
	for _, outcome := range unionKeys(a.ByOutcome, b.ByOutcome) {
		rows = append(rows, row("outcome_"+outcome,
			float64(a.ByOutcome[outcome]), float64(b.ByOutcome[outcome])))
	}
	return rows
}

func row(metric string, a, b float64) DiffRow {
	r := DiffRow{Metric: metric, A: a, B: b}
	if a != 0 {
		r.DeltaPct = (b - a) / a * 100
	}
	return r
}

func totalOf(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

func unionKeys(a, b map[string]int) []string {
	seen := make(map[string]bool, len(a)+len(b))
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
