package events

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testEvent builds a minimal query event with a recognizable product id.
func testEvent(product string) *Event {
	ev := New(KindQuery, time.Unix(1700000000, 0).UTC())
	ev.Product = product
	ev.Outcome = OutcomeComplete
	ev.DurationUS = 1234
	return ev
}

func appendEvent(t *testing.T, j *Journal, product string) {
	t.Helper()
	line, err := testEvent(product).Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if err := j.Append(line); err != nil {
		t.Fatalf("Append: %v", err)
	}
}

func TestJournalAppendAndScan(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	for i := 0; i < 10; i++ {
		appendEvent(t, j, "p")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var got int
	stats, err := ScanDir(dir, func(*Event) error { got++; return nil })
	if err != nil {
		t.Fatalf("ScanDir: %v", err)
	}
	if got != 10 || stats.Lines != 10 || stats.Torn != 0 || stats.Malformed != 0 {
		t.Fatalf("scan saw %d events, stats %+v; want 10 clean lines", got, stats)
	}
}

// TestJournalCrashRecovery is the satellite-3 scenario: a process dies
// mid-write leaving a torn tail line. Reopen must keep every complete line,
// drop the torn tail, and count the drop in desword_events_dropped_total.
func TestJournalCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	for i := 0; i < 5; i++ {
		appendEvent(t, j, "survivor")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate the crash: a half-written line with no terminator.
	segs, err := ListSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("ListSegments: %v (%d segments)", err, len(segs))
	}
	f, err := os.OpenFile(segs[0].Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("opening segment: %v", err)
	}
	if _, err := f.WriteString(`{"schema":1,"kind":"query","pro`); err != nil {
		t.Fatalf("writing torn tail: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("closing segment: %v", err)
	}

	droppedBefore := mDropped.Value()
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	if got := mDropped.Value() - droppedBefore; got != 1 {
		t.Fatalf("desword_events_dropped_total rose by %d, want 1", got)
	}
	// The journal must resume the same segment, appendable as if the torn
	// write never happened.
	appendEvent(t, j2, "after-crash")
	if err := j2.Close(); err != nil {
		t.Fatalf("Close after recovery: %v", err)
	}

	var products []string
	stats, err := ScanDir(dir, func(ev *Event) error {
		products = append(products, ev.Product)
		return nil
	})
	if err != nil {
		t.Fatalf("ScanDir: %v", err)
	}
	if stats.Lines != 6 || stats.Torn != 0 || stats.Malformed != 0 {
		t.Fatalf("post-recovery stats %+v; want 6 clean lines", stats)
	}
	for i := 0; i < 5; i++ {
		if products[i] != "survivor" {
			t.Fatalf("line %d = %q, want survivor", i, products[i])
		}
	}
	if products[5] != "after-crash" {
		t.Fatalf("last line = %q, want after-crash", products[5])
	}
}

func TestJournalRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{RotateBytes: 1, KeepFiles: 3})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	// RotateBytes: 1 rotates after every append, so each event gets its own
	// segment and pruning must keep only the newest three files.
	for i := 0; i < 10; i++ {
		appendEvent(t, j, "r")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatalf("ListSegments: %v", err)
	}
	if len(segs) > 3 {
		t.Fatalf("prune kept %d segments, want at most 3", len(segs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Seq <= segs[i-1].Seq {
			t.Fatalf("segments out of order: %+v", segs)
		}
	}
}

func TestJournalResumesNewestSegment(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{RotateBytes: 1})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	appendEvent(t, j, "a") // rotates: seq 1 sealed, seq 2 active
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	appendEvent(t, j2, "b")
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatalf("ListSegments: %v", err)
	}
	last := segs[len(segs)-1]
	b, err := os.ReadFile(last.Path)
	if err != nil {
		t.Fatalf("reading newest segment: %v", err)
	}
	if !strings.Contains(string(b), `"b"`) {
		t.Fatalf("newest segment %s does not hold the resumed append: %q", last.Path, b)
	}
}

func TestJournalFsyncPolicies(t *testing.T) {
	for _, policy := range []string{FsyncNever, FsyncRotate, FsyncAlways} {
		t.Run(policy, func(t *testing.T) {
			dir := t.TempDir()
			j, err := OpenJournal(dir, JournalOptions{Fsync: policy, RotateBytes: 256})
			if err != nil {
				t.Fatalf("OpenJournal(%s): %v", policy, err)
			}
			for i := 0; i < 8; i++ {
				appendEvent(t, j, "f")
			}
			if err := j.Close(); err != nil {
				t.Fatalf("Close(%s): %v", policy, err)
			}
			var got int
			if _, err := ScanDir(dir, func(*Event) error { got++; return nil }); err != nil {
				t.Fatalf("ScanDir(%s): %v", policy, err)
			}
			if got != 8 {
				t.Fatalf("policy %s: scanned %d events, want 8", policy, got)
			}
		})
	}
	if _, err := OpenJournal(t.TempDir(), JournalOptions{Fsync: "sometimes"}); err == nil {
		t.Fatal("OpenJournal accepted an unknown fsync policy")
	}
}

func TestJournalAppendAfterClose(t *testing.T) {
	j, err := OpenJournal(t.TempDir(), JournalOptions{})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := j.Append([]byte("{}")); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestSegmentSeqParsing(t *testing.T) {
	cases := []struct {
		name string
		seq  int
		ok   bool
	}{
		{"events-000001.jsonl", 1, true},
		{"events-123456.jsonl", 123456, true},
		{"events-000000.jsonl", 0, false},
		{"events-abc.jsonl", 0, false},
		{"trace-000001.jsonl", 0, false},
		{"events-000001.json", 0, false},
	}
	for _, c := range cases {
		seq, ok := segmentSeq(c.name)
		if ok != c.ok || (ok && seq != c.seq) {
			t.Errorf("segmentSeq(%q) = %d,%v; want %d,%v", c.name, seq, ok, c.seq, c.ok)
		}
	}
	if got := segmentName(42); got != "events-000042.jsonl" {
		t.Errorf("segmentName(42) = %q", got)
	}
	if filepath.Ext(segmentName(1)) != ".jsonl" {
		t.Errorf("segment extension changed: %q", segmentName(1))
	}
}
