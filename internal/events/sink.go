package events

import (
	"log/slog"
	"time"

	"desword/internal/obs"
)

// Flight-recorder metrics. Dropped counts lines lost to torn-tail recovery
// at reopen and events that failed to encode — the offline aggregates are
// trustworthy only when it stays at zero.
var (
	mEmitted = obs.Default.Counter("desword_events_emitted_total",
		"Wide events emitted into the flight recorder, by all sinks in the process.")
	mDropped = obs.Default.Counter("desword_events_dropped_total",
		"Wide events lost: torn journal tails truncated at reopen and encode failures.")
	mRotations = obs.Default.Counter("desword_events_journal_rotations_total",
		"Journal segment rotations.")
	mJournalBytes = obs.Default.Gauge("desword_events_journal_bytes",
		"Bytes in the journal's active segment.")
)

// Sink is the destination wide events are emitted into: always a bounded
// in-memory ring (the /debug/events view), optionally an append-only JSONL
// journal. A nil *Sink is valid and inert, so instrumented code emits
// unconditionally.
type Sink struct {
	service string
	ring    *Ring
	journal *Journal
}

// NewSink builds a sink over a ring and an optional journal. The service
// name is stamped on events that do not carry one.
func NewSink(service string, ring *Ring, journal *Journal) *Sink {
	if ring == nil {
		ring = NewRing(0)
	}
	return &Sink{service: service, ring: ring, journal: journal}
}

// Ring exposes the sink's in-memory ring (the /debug/events explorer
// mounts it).
func (s *Sink) Ring() *Ring {
	if s == nil {
		return nil
	}
	return s.ring
}

// Journal exposes the sink's journal, nil when journaling is disabled.
func (s *Sink) Journal() *Journal {
	if s == nil {
		return nil
	}
	return s.journal
}

// Emit records one event: finalized, added to the ring, appended to the
// journal when one is configured. The event is frozen from here on. Journal
// write failures are logged and counted, never propagated — the flight
// recorder must not fail the query it records.
func (s *Sink) Emit(ev *Event) {
	if s == nil || ev == nil {
		return
	}
	if ev.Schema == 0 {
		ev.Schema = SchemaVersion
	}
	if ev.Service == "" {
		ev.Service = s.service
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	s.ring.Add(ev)
	mEmitted.Inc()
	if s.journal == nil {
		return
	}
	line, err := ev.Encode()
	if err != nil {
		mDropped.Inc()
		slog.Warn("events: dropping unencodable event", "kind", ev.Kind, "err", err)
		return
	}
	if err := s.journal.Append(line); err != nil {
		mDropped.Inc()
		slog.Warn("events: journal append failed", "err", err)
	}
}

// Close seals the journal, if any.
func (s *Sink) Close() error {
	if s == nil || s.journal == nil {
		return nil
	}
	return s.journal.Close()
}
