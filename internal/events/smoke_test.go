package events_test

import (
	"context"
	"testing"

	"desword/internal/core"
	"desword/internal/events"
	"desword/internal/node"
	"desword/internal/obs"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/zkedb"
)

// TestEventsSmoke is the CI end-to-end gate (make events-smoke): it deploys a
// small chain over real TCP with the flight recorder journaling on the proxy,
// runs good and bad queries, then scans the journal offline the way
// desword-events does and asserts the aggregates agree with the proxy's live
// metrics — the property that makes journals trustworthy evidence. It lives
// in package events_test because it imports node (which imports events).
func TestEventsSmoke(t *testing.T) {
	const hops = 3
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	g, parts := supplychain.LineGraph(hops)
	members := make(map[poc.ParticipantID]*core.Member, hops)
	for id, p := range parts {
		members[id] = core.NewMember(ps, p)
	}
	tags, err := supplychain.MintTags("evsmoke", 1)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := core.RunDistribution(ps, g, members, "p0", tags, nil, supplychain.FirstChildSplitter, "task-evsmoke")
	if err != nil {
		t.Fatal(err)
	}

	// The proxy journals into a per-test directory; participants run bare, as
	// a deployment where only the query authority keeps durable evidence.
	dir := t.TempDir()
	cfg := events.Config{Dir: dir}
	sink, err := cfg.Build("proxy")
	if err != nil {
		t.Fatal(err)
	}

	addrs := make(map[poc.ParticipantID]string, hops)
	for id, m := range members {
		srv, err := node.ServeParticipant(context.Background(), "127.0.0.1:0", m)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs[id] = srv.Addr()
	}
	directory := node.DirectoryResolver(addrs)
	defer directory.Close()
	proxy := core.NewProxy(ps, reputation.DefaultStrategy(), directory.Resolver(),
		core.WithEventSink(sink))
	proxySrv, err := node.ServeProxy(context.Background(), "127.0.0.1:0", proxy,
		node.WithEventSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	defer proxySrv.Close()
	client := node.NewProxyClient(proxySrv.Addr())
	defer client.Close()
	if err := client.RegisterList(context.Background(), "task-evsmoke", dist.List); err != nil {
		t.Fatal(err)
	}

	// Live-metric baseline: the registry is process-global and other tests
	// ran before this one, so everything below compares deltas.
	goodCtr := obs.Default.Counter("desword_queries_total", "Completed path queries.", "quality", "good")
	badCtr := obs.Default.Counter("desword_queries_total", "Completed path queries.", "quality", "bad")
	hopCtr := obs.Default.Counter("desword_query_hops_total", "Query interactions performed.")
	goodBefore, badBefore, hopsBefore := goodCtr.Value(), badCtr.Value(), hopCtr.Value()

	const goodQueries, badQueries = 3, 1
	for i := 0; i < goodQueries; i++ {
		result, err := client.QueryPath(context.Background(), poc.ProductID("evsmoke1"), core.Good)
		if err != nil {
			t.Fatal(err)
		}
		if len(result.Path) != hops {
			t.Fatalf("query identified %d of %d hops", len(result.Path), hops)
		}
		if result.Event == nil {
			t.Fatal("path result carried no wide event")
		}
	}
	if _, err := client.QueryPath(context.Background(), poc.ProductID("evsmoke1"), core.Bad); err != nil {
		t.Fatal(err)
	}

	// Seal the journal, then scan it offline exactly like desword-events.
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := events.Summarize(dir, events.Filter{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Stats.Torn != 0 || sum.Stats.Malformed != 0 {
		t.Fatalf("clean shutdown left damaged journal lines: %+v", sum.Stats)
	}

	// The journal's aggregates must agree with the proxy's live metrics.
	total := goodQueries + badQueries
	if sum.Queries != total {
		t.Fatalf("journal holds %d query events, want %d", sum.Queries, total)
	}
	if got := goodCtr.Value() - goodBefore; got != uint64(sum.ByQuality["good"]) {
		t.Fatalf("good queries: metrics %d, journal %d", got, sum.ByQuality["good"])
	}
	if got := badCtr.Value() - badBefore; got != uint64(sum.ByQuality["bad"]) {
		t.Fatalf("bad queries: metrics %d, journal %d", got, sum.ByQuality["bad"])
	}
	if got := hopCtr.Value() - hopsBefore; got != uint64(sum.Hops) {
		t.Fatalf("hops: metrics %d, journal %d", got, sum.Hops)
	}
	if sum.ByOutcome[string(events.OutcomeComplete)] != total {
		t.Fatalf("outcomes: %+v, want %d complete", sum.ByOutcome, total)
	}
	if n := len(sum.Violations); n != 0 {
		t.Fatalf("honest chain produced violations: %+v", sum.Violations)
	}

	// The proxy's node server journals its own handled requests too: at
	// least one query_path request per query must appear.
	if sum.ByKind["node_request"] < total {
		t.Fatalf("journal holds %d node_request events, want >= %d", sum.ByKind["node_request"], total)
	}
	if sum.ByKind["query"] != total {
		t.Fatalf("journal holds %d query events, want %d", sum.ByKind["query"], total)
	}

	// Top-N slow queries carry per-hop breakdowns an investigator can read.
	if len(sum.Slowest) != 2 {
		t.Fatalf("summarizer kept %d slowest, want 2", len(sum.Slowest))
	}
	for _, ev := range sum.Slowest {
		if len(ev.Hops) != hops {
			t.Fatalf("slow query has %d hops, want %d: %+v", len(ev.Hops), hops, ev)
		}
		for _, h := range ev.Hops {
			if h.Participant == "" || !h.Identified || h.IdentifyUS <= 0 {
				t.Fatalf("hop breakdown incomplete: %+v", h)
			}
		}
	}
}
