package events

import (
	"flag"
	"fmt"
)

// Config is the shared flight-recorder configuration of the cmd binaries:
// one set of flags, one translation into a running Sink.
type Config struct {
	// Dir enables the JSONL journal in this directory (empty: ring only).
	Dir string
	// RingSize bounds the in-memory event ring.
	RingSize int
	// Fsync is the journal fsync policy (never|rotate|always).
	Fsync string
	// RotateBytes rotates journal segments beyond this size.
	RotateBytes int64
	// KeepFiles bounds retained journal segments.
	KeepFiles int
}

// RegisterFlags registers the flight-recorder flags on fs (use
// flag.CommandLine in main). Zero-valued fields pick up package defaults
// first, so a binary can pre-seed its own defaults before calling this.
func (c *Config) RegisterFlags(fs *flag.FlagSet) {
	if c.RingSize == 0 {
		c.RingSize = DefaultRingSize
	}
	if c.Fsync == "" {
		c.Fsync = FsyncNever
	}
	if c.RotateBytes == 0 {
		c.RotateBytes = DefaultRotateBytes
	}
	if c.KeepFiles == 0 {
		c.KeepFiles = DefaultKeepFiles
	}
	fs.StringVar(&c.Dir, "events-dir", c.Dir, "append wide events to a JSONL journal in this directory (empty disables journaling; the in-memory ring stays on)")
	fs.IntVar(&c.RingSize, "events-ring", c.RingSize, "wide events kept in the in-memory ring served by /debug/events")
	fs.StringVar(&c.Fsync, "events-fsync", c.Fsync, "journal fsync policy: never|rotate|always")
	fs.Int64Var(&c.RotateBytes, "events-rotate", c.RotateBytes, "journal segment size in bytes before rotation")
	fs.IntVar(&c.KeepFiles, "events-keep", c.KeepFiles, "journal segments retained after rotation")
}

// Build assembles the sink: a ring always, a journal when Dir is set.
func (c *Config) Build(service string) (*Sink, error) {
	if c.Fsync == "" {
		c.Fsync = FsyncNever
	}
	if !ValidFsync(c.Fsync) {
		return nil, fmt.Errorf("events: -events-fsync %q: want %s|%s|%s",
			c.Fsync, FsyncNever, FsyncRotate, FsyncAlways)
	}
	var journal *Journal
	if c.Dir != "" {
		var err error
		journal, err = OpenJournal(c.Dir, JournalOptions{
			RotateBytes: c.RotateBytes,
			KeepFiles:   c.KeepFiles,
			Fsync:       c.Fsync,
		})
		if err != nil {
			return nil, err
		}
	}
	return NewSink(service, NewRing(c.RingSize), journal), nil
}
